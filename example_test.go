package stencilabft_test

import (
	"fmt"

	abft "stencilabft"
)

// ExampleBuild protects a small Jacobi run against a planned bit-flip with
// the online scheme and reports the repair — the whole lifecycle through
// the unified Spec/Build/Protector surface.
func ExampleBuild() {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](32, 32)
	init.Fill(300)

	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Online,
		Op2D:   op,
		Init:   init,
		Inject: abft.NewPlan(abft.Injection{Iteration: 3, X: 10, Y: 20, Bit: 30}),
	})
	if err != nil {
		panic(err)
	}
	p.Run(10)
	p.Finalize()
	s := p.Stats()
	fmt.Printf("detections=%d corrected=%d\n", s.Detections, s.CorrectedPoints)
	// Output: detections=1 corrected=1
}

// ExampleBuild_offline shows periodic verification with checkpoint
// rollback: the corruption is erased exactly. Only the Scheme (and the
// period) changes versus the online run.
func ExampleBuild_offline() {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](32, 32)
	init.Fill(300)

	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Offline,
		Op2D:   op,
		Init:   init,
		Period: 4,
		Inject: abft.NewPlan(abft.Injection{Iteration: 5, X: 7, Y: 8, Bit: 30}),
	})
	if err != nil {
		panic(err)
	}
	p.Run(12)
	p.Finalize()
	s := p.Stats()
	fmt.Printf("detections=%d rollbacks=%d recomputed=%d\n", s.Detections, s.Rollbacks, s.RecomputedIters)
	// Output: detections=1 rollbacks=1 recomputed=4
}

// ExampleBuild_cluster runs the distributed-memory deployment: the domain
// decomposed into row bands over simulated ranks, each protecting its own
// band with zero checksum communication. The rank owning the injected row
// repairs it locally.
func ExampleBuild_cluster() {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](32, 40)
	init.FillFunc(func(x, y int) float64 { return 250 + float64(y) })

	p, err := abft.Build(abft.Spec[float64]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op2D:       op,
		Init:       init,
		Ranks:      4,
		Detector:   abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		// Row 25 lies in rank 2's band (rows 20..29).
		Inject: abft.NewPlan(abft.Injection{Iteration: 6, X: 11, Y: 25, Bit: 59}),
	})
	if err != nil {
		panic(err)
	}
	p.Run(16)
	for i, s := range p.(*abft.Cluster[float64]).RankStats() {
		fmt.Printf("rank %d: detections=%d corrected=%d\n", i, s.Detections, s.CorrectedPoints)
	}
	g := p.Grid()
	fmt.Printf("gathered %dx%d\n", g.Nx(), g.Ny())
	// Output:
	// rank 0: detections=0 corrected=0
	// rank 1: detections=0 corrected=0
	// rank 2: detections=1 corrected=1
	// rank 3: detections=0 corrected=0
	// gathered 32x40
}

// ExampleCalibrateEpsilon measures the checksum noise floor of a
// configuration to pick a detection threshold.
func ExampleCalibrateEpsilon() {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](64, 64)
	init.Fill(300)

	cal, err := abft.CalibrateEpsilon(op, init, 16)
	if err != nil {
		panic(err)
	}
	fmt.Printf("floor below paper threshold: %v\n", cal.SuggestedEpsilon <= 1e-5)
	// Output: floor below paper threshold: true
}

// ExampleNewStencil builds a custom asymmetric kernel; exact boundary
// terms keep it false-positive free under clamp boundaries.
func ExampleNewStencil() {
	st := abft.NewStencil("upwind",
		abft.Point[float64]{DX: 0, DY: 0, W: 0.7},
		abft.Point[float64]{DX: -1, DY: 0, W: 0.2},
		abft.Point[float64]{DX: 0, DY: -1, W: 0.1},
	)
	op := &abft.Op2D[float64]{St: st, BC: abft.Clamp}
	init := abft.New[float64](48, 48)
	init.FillFunc(func(x, y int) float64 { return float64(x + y) })

	p, err := abft.Build(abft.Spec[float64]{
		Scheme:   abft.Online,
		Op2D:     op,
		Init:     init,
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
	})
	if err != nil {
		panic(err)
	}
	p.Run(50)
	fmt.Printf("false positives: %d\n", p.Stats().Detections)
	// Output: false positives: 0
}
