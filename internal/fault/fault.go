// Package fault implements the paper's fault-injection methodology
// (Section 5.1): a single bit-flip injected at a random stencil iteration,
// at a random point of the computational domain, at a random bit position
// of the IEEE-754 representation — applied during the sweep, after the
// point has been updated and before it is stored, so the corruption has an
// immediate and visible impact on the stencil results.
//
// All randomness is seeded, making every campaign reproducible.
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Injection describes one planned bit-flip.
type Injection struct {
	Iteration int // stencil iteration (0-based) during which to inject
	X, Y, Z   int // domain coordinates (Z = 0 for 2-D domains)
	Bit       int // IEEE-754 bit position (0 = LSB of the fraction)
}

// String formats the injection for logs.
func (in Injection) String() string {
	return fmt.Sprintf("flip bit %d at (%d,%d,%d) during iteration %d", in.Bit, in.X, in.Y, in.Z, in.Iteration)
}

// Plan is a set of injections for one run, indexed by iteration.
type Plan struct {
	byIter map[int][]Injection
	all    []Injection
}

// NewPlan builds a plan from explicit injections.
func NewPlan(injs ...Injection) *Plan {
	p := &Plan{byIter: make(map[int][]Injection, len(injs))}
	for _, in := range injs {
		p.byIter[in.Iteration] = append(p.byIter[in.Iteration], in)
		p.all = append(p.all, in)
	}
	return p
}

// Injections returns every planned injection.
func (p *Plan) Injections() []Injection { return p.all }

// ForIteration returns the injections scheduled for the given iteration
// (nil for most iterations, keeping the sweep hook-free on the fast path).
func (p *Plan) ForIteration(iter int) []Injection {
	if p == nil {
		return nil
	}
	return p.byIter[iter]
}

// RandomSingle draws the paper's random single bit-flip: uniform over
// iterations [0, iters), domain points [0,nx)x[0,ny)x[0,nz) and bit
// positions [0, bits). Pass nz = 1 for 2-D domains and bits = 32 for
// float32 state.
func RandomSingle(rng *rand.Rand, iters, nx, ny, nz, bits int) Injection {
	return Injection{
		Iteration: rng.Intn(iters),
		X:         rng.Intn(nx),
		Y:         rng.Intn(ny),
		Z:         rng.Intn(nz),
		Bit:       rng.Intn(bits),
	}
}

// FixedBit draws a random injection with the bit position held fixed — the
// campaign shape of the paper's Figure 10 (1,000 injections per bit
// position).
func FixedBit(rng *rand.Rand, iters, nx, ny, nz, bit int) Injection {
	return Injection{
		Iteration: rng.Intn(iters),
		X:         rng.Intn(nx),
		Y:         rng.Intn(ny),
		Z:         rng.Intn(nz),
		Bit:       bit,
	}
}

// Injector adapts a plan to the sweep engines' InjectFunc. It counts hits
// so tests and campaigns can assert the planned flips actually landed
// (e.g. an injection aimed at an out-of-range iteration never fires).
// The hit log is mutex-guarded because the parallel sweep engines invoke
// one hook from every worker of a row/layer partition concurrently.
type Injector[T num.Float] struct {
	plan *Plan
	mu   sync.Mutex
	hits []Injection
}

// Hits returns a snapshot of the injections applied so far.
func (in *Injector[T]) Hits() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.hits))
	copy(out, in.hits)
	return out
}

// NewInjector wraps a plan.
func NewInjector[T num.Float](plan *Plan) *Injector[T] {
	return &Injector[T]{plan: plan}
}

// HookFor returns the InjectFunc for the given iteration, or nil when the
// iteration has no scheduled injection — the nil lets the sweep engines
// skip the per-point hook branch entirely on clean iterations.
func (in *Injector[T]) HookFor(iter int) stencil.InjectFunc[T] {
	injs := in.plan.ForIteration(iter)
	if len(injs) == 0 {
		return nil
	}
	return func(x, y, z int, v T) T {
		for _, j := range injs {
			if j.X == x && j.Y == y && j.Z == z {
				in.mu.Lock()
				in.hits = append(in.hits, j)
				in.mu.Unlock()
				return num.FlipBit(v, j.Bit)
			}
		}
		return v
	}
}
