package fault

import (
	"math"
	"math/rand"
	"testing"

	"stencilabft/internal/num"
)

func TestPlanIndexesByIteration(t *testing.T) {
	p := NewPlan(
		Injection{Iteration: 3, X: 1, Y: 2, Bit: 5},
		Injection{Iteration: 3, X: 4, Y: 4, Bit: 6},
		Injection{Iteration: 7, X: 0, Y: 0, Bit: 31},
	)
	if len(p.ForIteration(3)) != 2 || len(p.ForIteration(7)) != 1 || p.ForIteration(5) != nil {
		t.Fatal("plan indexing wrong")
	}
	if len(p.Injections()) != 3 {
		t.Fatal("Injections() incomplete")
	}
	var nilPlan *Plan
	if nilPlan.ForIteration(0) != nil {
		t.Fatal("nil plan should yield no injections")
	}
}

func TestRandomSingleRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		inj := RandomSingle(rng, 128, 64, 32, 8, 32)
		if inj.Iteration < 0 || inj.Iteration >= 128 ||
			inj.X < 0 || inj.X >= 64 ||
			inj.Y < 0 || inj.Y >= 32 ||
			inj.Z < 0 || inj.Z >= 8 ||
			inj.Bit < 0 || inj.Bit >= 32 {
			t.Fatalf("out-of-range injection %+v", inj)
		}
	}
}

func TestRandomSingleDeterministic(t *testing.T) {
	a := RandomSingle(rand.New(rand.NewSource(9)), 10, 10, 10, 10, 32)
	b := RandomSingle(rand.New(rand.NewSource(9)), 10, 10, 10, 10, 32)
	if a != b {
		t.Fatal("same seed produced different injections")
	}
}

func TestFixedBitHoldsBit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		inj := FixedBit(rng, 64, 16, 16, 4, 23)
		if inj.Bit != 23 {
			t.Fatalf("bit drifted: %+v", inj)
		}
	}
}

func TestInjectorHooksOnlyTargetIteration(t *testing.T) {
	plan := NewPlan(Injection{Iteration: 5, X: 2, Y: 3, Bit: 31})
	in := NewInjector[float32](plan)
	if in.HookFor(4) != nil || in.HookFor(6) != nil {
		t.Fatal("hook returned for wrong iteration")
	}
	hook := in.HookFor(5)
	if hook == nil {
		t.Fatal("no hook for target iteration")
	}
	// Wrong point: value passes through.
	if got := hook(0, 0, 0, 1.5); got != 1.5 {
		t.Fatalf("non-target point modified: %g", got)
	}
	if len(in.Hits()) != 0 {
		t.Fatal("hit recorded for non-target point")
	}
	// Target point: sign bit flipped, hit recorded.
	if got := hook(2, 3, 0, 1.5); got != -1.5 {
		t.Fatalf("target point not flipped: %g", got)
	}
	if len(in.Hits()) != 1 {
		t.Fatal("hit not recorded")
	}
}

func TestInjectorFlipMatchesNumFlipBit(t *testing.T) {
	plan := NewPlan(Injection{Iteration: 0, X: 0, Y: 0, Z: 0, Bit: 30})
	in := NewInjector[float64](plan)
	hook := in.HookFor(0)
	v := 3.25
	if got, want := hook(0, 0, 0, v), num.FlipBit(v, 30); got != want {
		t.Fatalf("hook flip %g, FlipBit %g", got, want)
	}
}

func TestInjectionString(t *testing.T) {
	s := Injection{Iteration: 2, X: 1, Y: 3, Z: 0, Bit: 31}.String()
	if s == "" || math.MaxInt == 0 {
		t.Fatal("unreachable")
	}
	if want := "flip bit 31 at (1,3,0) during iteration 2"; s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
