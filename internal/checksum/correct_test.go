package checksum

import (
	"math"
	"math/rand"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// corruptAndDetect builds a clean grid, corrupts one cell, and returns the
// pieces the corrector needs: the corrupted grid, the direct (corrupted)
// checksums and the interpolated (clean) checksums.
func corruptAndDetect(rng *rand.Rand, nx, ny int, delta float64) (*grid.Grid[float64], Location, *Vectors[float64], []float64, []float64) {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 10 + rng.Float64() })
	clean := NewVectors[float64](nx, ny)
	clean.Compute(g)

	loc := Location{X: rng.Intn(nx), Y: rng.Intn(ny)}
	g.Set(loc.X, loc.Y, g.At(loc.X, loc.Y)+delta)
	direct := NewVectors[float64](nx, ny)
	direct.Compute(g)
	return g, loc, direct, clean.A, clean.B
}

func TestCorrectRestoresValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nx, ny := 4+rng.Intn(12), 4+rng.Intn(12)
		delta := 100 * (rng.Float64() - 0.5)
		g, loc, direct, interpA, interpB := corruptAndDetect(rng, nx, ny, delta)
		want := g.At(loc.X, loc.Y) - delta

		var c Corrector[float64]
		old, fixed := c.Correct(g, loc, direct, interpA, interpB)
		if old != want+delta {
			t.Fatalf("old value reported wrong")
		}
		if num.Abs(fixed-want) > 1e-9 {
			t.Fatalf("trial %d: corrected %.12g want %.12g", trial, fixed, want)
		}
		// Checksums must be patched consistently with the repaired grid.
		fresh := NewVectors[float64](nx, ny)
		fresh.Compute(g)
		if num.RelErr(direct.A[loc.X], fresh.A[loc.X], 1e-9) > 1e-12 ||
			num.RelErr(direct.B[loc.Y], fresh.B[loc.Y], 1e-9) > 1e-12 {
			t.Fatalf("trial %d: checksums not patched", trial)
		}
	}
}

func TestCorrectStableSurvivesOverflow(t *testing.T) {
	// Corrupt a cell to +Inf: the paper's literal Eq. 10 cannot recover
	// (checksum overflow, Section 5.3); the stable evaluation can.
	rng := rand.New(rand.NewSource(2))
	nx, ny := 8, 8
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 5 + rng.Float64() })
	clean := NewVectors[float64](nx, ny)
	clean.Compute(g)
	loc := Location{X: 3, Y: 4}
	want := g.At(loc.X, loc.Y)
	g.Set(loc.X, loc.Y, math.Inf(1))
	direct := NewVectors[float64](nx, ny)
	direct.Compute(g)

	c := Corrector[float64]{}
	_, fixed := c.Correct(g, loc, direct, clean.A, clean.B)
	if num.Abs(fixed-want) > 1e-9 {
		t.Fatalf("stable correction of Inf: got %g want %g", fixed, want)
	}
	if !num.IsFinite(direct.A[loc.X]) || !num.IsFinite(direct.B[loc.Y]) {
		t.Fatal("checksums not repaired after overflow")
	}
}

func TestCorrectPaperExactLosesPrecisionOnHugeCorruption(t *testing.T) {
	// Documents the failure mode the paper reports: with a 1e20-scale
	// corrupted value, a - u cancels catastrophically.
	rng := rand.New(rand.NewSource(3))
	nx, ny := 8, 8
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 5 + rng.Float64() })
	clean := NewVectors[float64](nx, ny)
	clean.Compute(g)
	loc := Location{X: 2, Y: 6}
	want := g.At(loc.X, loc.Y)
	g.Set(loc.X, loc.Y, 1e20)

	run := func(paperExact bool) float64 {
		gg := g.Clone()
		direct := NewVectors[float64](nx, ny)
		direct.Compute(gg)
		c := Corrector[float64]{PaperExact: paperExact}
		_, fixed := c.Correct(gg, loc, direct, clean.A, clean.B)
		return num.Abs(fixed - want)
	}
	stableErr := run(false)
	paperErr := run(true)
	if stableErr > 1e-9 {
		t.Fatalf("stable correction residual %g", stableErr)
	}
	if paperErr < 1 {
		t.Fatalf("expected the literal Eq. 10 to lose precision, residual %g", paperErr)
	}
}

func TestPairSingle(t *testing.T) {
	am := []Mismatch[float64]{{Index: 3, Residual: -5}}
	bm := []Mismatch[float64]{{Index: 7, Residual: -5}}
	locs := Pair(am, bm, PairByResidual)
	if len(locs) != 1 || locs[0] != (Location{X: 3, Y: 7}) {
		t.Fatalf("locs = %v", locs)
	}
}

func TestPairEmpty(t *testing.T) {
	if Pair[float64](nil, nil, PairByResidual) != nil {
		t.Fatal("empty pair should be nil")
	}
	am := []Mismatch[float64]{{Index: 1}}
	if Pair(am, nil, PairByIndex) != nil {
		t.Fatal("one-sided pair should be nil")
	}
}

func TestPairResidualBeatsIndexOnCrossPattern(t *testing.T) {
	// Errors at (1, 9) with residual -5 and (8, 2) with residual -40:
	// sorted index order pairs (1,2) and (8,9) — wrong. Residual
	// matching pairs correctly.
	am := []Mismatch[float64]{{Index: 1, Residual: -5}, {Index: 8, Residual: -40}}
	bm := []Mismatch[float64]{{Index: 2, Residual: -40}, {Index: 9, Residual: -5}}

	byIdx := Pair(am, bm, PairByIndex)
	if byIdx[0] == (Location{X: 1, Y: 9}) {
		t.Fatal("index pairing unexpectedly correct; test arrangement broken")
	}
	byRes := Pair(am, bm, PairByResidual)
	want := map[Location]bool{{X: 1, Y: 9}: true, {X: 8, Y: 2}: true}
	if !want[byRes[0]] || !want[byRes[1]] || byRes[0] == byRes[1] {
		t.Fatalf("residual pairing wrong: %v", byRes)
	}
}

func TestPairUnevenListsTruncate(t *testing.T) {
	am := []Mismatch[float64]{{Index: 1, Residual: -5}}
	bm := []Mismatch[float64]{{Index: 2, Residual: -5}, {Index: 3, Residual: -7}}
	locs := Pair(am, bm, PairByResidual)
	if len(locs) != 1 || locs[0] != (Location{X: 1, Y: 2}) {
		t.Fatalf("locs = %v", locs)
	}
}

func TestCorrectAllMultipleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny := 12, 10
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 20 + rng.Float64() })
	clean := NewVectors[float64](nx, ny)
	clean.Compute(g)
	wantRepaired := g.Clone()

	// Two corruptions in distinct rows and columns.
	g.Set(2, 7, g.At(2, 7)+50)
	g.Set(9, 1, g.At(9, 1)-30)
	direct := NewVectors[float64](nx, ny)
	direct.Compute(g)

	det := Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}
	am := det.Compare(direct.A, clean.A)
	bm := det.Compare(direct.B, clean.B)
	if len(am) != 2 || len(bm) != 2 {
		t.Fatalf("mismatch counts %d/%d", len(am), len(bm))
	}
	var c Corrector[float64]
	locs := c.CorrectAll(g, am, bm, PairByResidual, direct, clean.A, clean.B)
	if len(locs) != 2 {
		t.Fatalf("corrected %d locations", len(locs))
	}
	if d := g.MaxAbsDiff(wantRepaired); d > 1e-9 {
		t.Fatalf("repair residual %g", d)
	}
}

func TestVectorsComputeKahanMatchesPlainOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := grid.New[float64](6, 5)
	g.FillFunc(func(x, y int) float64 { return rng.Float64() })
	p := NewVectors[float64](6, 5)
	p.Compute(g)
	k := NewVectors[float64](6, 5)
	k.ComputeKahan(g)
	for i := range p.A {
		if num.Abs(p.A[i]-k.A[i]) > 1e-12 {
			t.Fatal("Kahan A diverges on small input")
		}
	}
	for i := range p.B {
		if num.Abs(p.B[i]-k.B[i]) > 1e-12 {
			t.Fatal("Kahan B diverges on small input")
		}
	}
}

func TestVectorsCloneAndCopy(t *testing.T) {
	v := NewVectors[float64](3, 2)
	v.A[1] = 5
	v.B[0] = 7
	c := v.Clone()
	if c.A[1] != 5 || c.B[0] != 7 {
		t.Fatal("clone lost data")
	}
	c.A[1] = 9
	if v.A[1] == 9 {
		t.Fatal("clone shares storage")
	}
	w := NewVectors[float64](3, 2)
	w.CopyFrom(v)
	if w.A[1] != 5 {
		t.Fatal("CopyFrom lost data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom length mismatch did not panic")
		}
	}()
	NewVectors[float64](2, 2).CopyFrom(v)
}
