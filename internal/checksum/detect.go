package checksum

import (
	"fmt"
	"math"

	"stencilabft/internal/num"
)

// Detector compares directly computed checksums against interpolated ones
// (the paper's Section 3.4): index i is flagged when the relative error
// |interp[i]/direct[i] - 1| exceeds Epsilon. AbsFloor guards the division:
// when |direct[i]| < AbsFloor the comparison falls back to the absolute
// difference scaled by 1/AbsFloor, so zero-sum lines neither divide by zero
// nor trigger spuriously.
type Detector[T num.Float] struct {
	Epsilon  T
	AbsFloor T
}

// NewDetector returns a detector with the paper's default threshold 1e-5
// and an absolute floor of 1 (checksums are sums of O(n) application-scale
// values, so |direct| < 1 means an essentially empty line).
func NewDetector[T num.Float]() Detector[T] {
	return Detector[T]{Epsilon: 1e-5, AbsFloor: 1}
}

// Mismatch is one flagged checksum entry.
type Mismatch[T num.Float] struct {
	Index    int // x for vector A, y for vector B
	Direct   T   // checksum computed from the domain
	Interp   T   // checksum interpolated from iteration t
	Residual T   // Interp - Direct (≈ clean - corrupted = -error magnitude)
}

// Compare scans the two vectors and returns the flagged entries in index
// order. direct and interp must have equal length. The returned slice is
// nil when the vectors agree everywhere — the error-free fast path
// allocates nothing.
func (d Detector[T]) Compare(direct, interp []T) []Mismatch[T] {
	if len(direct) != len(interp) {
		panic(fmt.Sprintf("checksum: compare length %d vs %d", len(direct), len(interp)))
	}
	var out []Mismatch[T]
	for i := range direct {
		if d.Exceeds(direct[i], interp[i]) {
			out = append(out, Mismatch[T]{
				Index:    i,
				Direct:   direct[i],
				Interp:   interp[i],
				Residual: interp[i] - direct[i],
			})
		}
	}
	return out
}

// Exceeds reports whether the (direct, interp) pair trips the threshold.
// Non-finite values (a bit-flip in the exponent can overflow a checksum to
// +Inf or NaN) always trip it, since relative error is meaningless there.
func (d Detector[T]) Exceeds(direct, interp T) bool {
	if !num.IsFinite(direct) || !num.IsFinite(interp) {
		// Two identical non-finite values still indicate corruption:
		// a healthy checksum is finite by construction.
		return true
	}
	return num.RelErr(interp, direct, d.AbsFloor) > d.Epsilon
}

// AnyMismatch reports whether any entry trips the threshold without
// materialising the mismatch list — the per-iteration hot path of the
// online protector. Entries whose absolute residual sits comfortably under
// half the scaled threshold are cleared by a division-free screen; only
// borderline or non-finite entries (a NaN residual fails the screen's
// comparison) pay the exact Exceeds evaluation, so the error-free steady
// state never divides.
func (d Detector[T]) AnyMismatch(direct, interp []T) bool {
	if len(direct) != len(interp) {
		panic(fmt.Sprintf("checksum: compare length %d vs %d", len(direct), len(interp)))
	}
	halfEps := d.Epsilon / 2
	for i := range direct {
		w := direct[i]
		diff, scale := num.Abs(interp[i]-w), num.Abs(w)
		if scale < d.AbsFloor {
			scale = d.AbsFloor
		}
		// diff == 0 needs both values finite (Inf-Inf and NaN residuals are
		// NaN); the strict < keeps an infinite scale (w = ±Inf) from
		// clearing the entry, since Inf < Inf is false.
		if diff == 0 || diff < halfEps*scale {
			continue
		}
		if d.Exceeds(w, interp[i]) {
			return true
		}
	}
	return false
}

// MaxRelErr returns the largest relative error over the vector pair, a
// diagnostic used to calibrate Epsilon against the floating-point
// interpolation noise of a given domain size (the paper notes the
// approximation error grows with the domain).
func (d Detector[T]) MaxRelErr(direct, interp []T) T {
	var m T
	for i := range direct {
		if !num.IsFinite(direct[i]) || !num.IsFinite(interp[i]) {
			return T(math.Inf(1))
		}
		e := num.RelErr(interp[i], direct[i], d.AbsFloor)
		if e > m {
			m = e
		}
	}
	return m
}
