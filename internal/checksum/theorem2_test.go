package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// TestTheorem2SingleErrorLocalised is the detection property: corrupt one
// freshly swept cell by a perturbation above the detection floor, and the
// comparison of direct-vs-interpolated checksums must flag exactly the
// corrupted row and column.
func TestTheorem2SingleErrorLocalised(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx := 5 + r.Intn(16)
		ny := 5 + r.Intn(16)
		st := randomStencil(r, 1+r.Intn(5), 1)
		bc := allBoundaries[r.Intn(len(allBoundaries))]
		op := &stencil.Op2D[float64]{St: st, BC: bc, BCValue: r.Float64()}
		if op.Validate(nx, ny) != nil {
			return true
		}
		src := randomGrid(r, nx, ny, 1, 4)
		dst := grid.New[float64](nx, ny)
		prev := NewVectors[float64](nx, ny)
		prev.Compute(src)
		op.Sweep(dst, src)

		// Corrupt one output cell well above the noise floor.
		ex, ey := r.Intn(nx), r.Intn(ny)
		clean := dst.At(ex, ey)
		delta := 10 + 100*r.Float64()
		if r.Intn(2) == 0 {
			delta = -delta
		}
		dst.Set(ex, ey, clean+delta)

		direct := NewVectors[float64](nx, ny)
		direct.Compute(dst)
		ip, err := NewInterp2D(op, nx, ny)
		if err != nil {
			return false
		}
		edges := LiveEdges(src, bc, op.BCValue)
		interpA := make([]float64, nx)
		interpB := make([]float64, ny)
		ip.InterpolateA(prev.A, edges, interpA)
		ip.InterpolateB(prev.B, edges, interpB)

		det := Detector[float64]{Epsilon: 1e-7, AbsFloor: 1}
		am := det.Compare(direct.A, interpA)
		bm := det.Compare(direct.B, interpB)
		if len(am) != 1 || len(bm) != 1 {
			return false
		}
		if am[0].Index != ex || bm[0].Index != ey {
			return false
		}
		// The residuals carry the perturbation itself.
		if num.Abs(am[0].Residual+delta) > 1e-6 || num.Abs(bm[0].Residual+delta) > 1e-6 {
			return false
		}
		// And the correction restores the clean value.
		var c Corrector[float64]
		_, fixed := c.Correct(dst, Location{X: ex, Y: ey}, direct, interpA, interpB)
		return num.Abs(fixed-clean) <= 1e-9*num.Max(1, num.Abs(clean))
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOfflineChainEqualsRepeatedOneStep: interpolating Δ steps in a chain
// must equal applying one-step interpolation Δ times against fresh domain
// states — the identity the offline mode's correctness rests on.
func TestOfflineChainEqualsRepeatedOneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	nx, ny := 18, 15
	st := randomStencil(rng, 5, 2) // radius-2: exercises the wider edge ring
	op := &stencil.Op2D[float64]{St: st, BC: grid.Clamp}
	if err := op.Validate(nx, ny); err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterp2D(op, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 6

	buf := grid.BufferFrom(randomGrid(rng, nx, ny, 0, 3))
	chain := make([]float64, ny)
	oneStep := make([]float64, ny)
	scratch := make([]float64, ny)
	stencil.ChecksumB(buf.Read, chain)
	copy(oneStep, chain)

	rings := make([]*EdgeSnapshot[float64], steps)
	for s := 0; s < steps; s++ {
		rings[s] = NewEdgeSnapshot[float64](nx, ny, ip.EdgeRadius(), grid.Clamp, 0)
		rings[s].Capture(buf.Read)

		// One-step interpolation from the live domain.
		ip.InterpolateB(oneStep, LiveEdges(buf.Read, grid.Clamp, 0), scratch)
		oneStep, scratch = scratch, oneStep

		op.Sweep(buf.Write, buf.Read)
		buf.Swap()
	}
	// Chain interpolation from the stored ring only.
	for s := 0; s < steps; s++ {
		ip.InterpolateB(chain, rings[s], scratch)
		chain, scratch = scratch, chain
	}
	direct := make([]float64, ny)
	stencil.ChecksumB(buf.Read, direct)
	for y := 0; y < ny; y++ {
		if chain[y] != oneStep[y] {
			t.Fatalf("chain[%d]=%.17g one-step %.17g", y, chain[y], oneStep[y])
		}
		if num.RelErr(chain[y], direct[y], 1e-9) > 1e-11 {
			t.Fatalf("chain[%d]=%.12g direct %.12g", y, chain[y], direct[y])
		}
	}
}
