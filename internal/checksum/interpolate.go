package checksum

import (
	"fmt"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Interp2D interpolates the checksum vectors of iteration t+1 from those of
// iteration t for a fixed 2-D stencil operator (Theorem 1). The constant-
// field line sums cA, cB are precomputed once (the paper notes c_x "is
// constant and can be pre-computed").
//
// Unlike the paper's example listings, the boundary terms alpha/beta are
// evaluated exactly from an EdgeSource, so the interpolation matches the
// direct checksums up to floating-point round-off for arbitrary weights and
// every supported boundary condition. Under Periodic boundaries the terms
// vanish and are skipped (paper Eqs. 8-9).
type Interp2D[T num.Float] struct {
	op     *stencil.Op2D[T]
	nx, ny int
	cA     []T // cA[x] = Σ_y C(x,y)
	cB     []T // cB[y] = Σ_x C(x,y)
	// ghostSumA/B are the 1-D Constant-boundary substitutes: a whole
	// ghost line sums to n*K.
	ghostSumA T // substitute for ã at out-of-range x: ny*K
	ghostSumB T // substitute for b̃ at out-of-range y: nx*K
	// DropBoundaryTerms reproduces the paper's simplified listings
	// (Figures 3 and 7), which omit alpha/beta. Exact only for Periodic
	// boundaries or weight-symmetric stencils; exposed for ablation A1.
	DropBoundaryTerms bool

	// betaDxs/betaLookup/betaTab back the TileEdges fast path of
	// InterpolateBBand: the distinct nonzero stencil DX offsets, a per-dx
	// view into the scratch table (indexed dx+RadiusX), and the table
	// itself — beta terms for yy in [-ry, ny+ry). Built lazily on first
	// use, so steady-state calls allocate nothing. betaPrimed marks tables
	// filled ahead of time by PrimeBetaTables, consumed by exactly the
	// next InterpolateBBand call; betaMidPrimed marks the tile-row entries
	// filled early by PrimeBetaTablesMid, leaving only the ghost rows.
	betaDxs       []int
	betaLookup    [][]T
	betaTab       []T
	betaPrimed    bool
	betaMidPrimed bool
	// betaLoJ/betaHiJ bound the table rows any interpolation actually
	// reads — [minDY, ny+maxDY) over the DX≠0 points, shifted by ry. A
	// star stencil's x-offset points all sit at DY=0, so its ghost-row
	// entries are never read and never filled.
	betaLoJ, betaHiJ int
}

// NewInterp2D precomputes an interpolator for op over an nx-by-ny domain.
func NewInterp2D[T num.Float](op *stencil.Op2D[T], nx, ny int) (*Interp2D[T], error) {
	if err := op.Validate(nx, ny); err != nil {
		return nil, err
	}
	ip := &Interp2D[T]{op: op, nx: nx, ny: ny, cA: make([]T, nx), cB: make([]T, ny)}
	if op.C != nil {
		v := NewVectors[T](nx, ny)
		v.Compute(op.C)
		copy(ip.cA, v.A)
		copy(ip.cB, v.B)
	}
	if op.BC == grid.Constant {
		ip.ghostSumA = T(ny) * op.BCValue
		ip.ghostSumB = T(nx) * op.BCValue
	}
	return ip, nil
}

// Nx returns the domain width the interpolator was built for.
func (ip *Interp2D[T]) Nx() int { return ip.nx }

// Ny returns the domain height the interpolator was built for.
func (ip *Interp2D[T]) Ny() int { return ip.ny }

// InterpolateB computes bNext[y] for every y from bPrev (the column
// checksums of iteration t) and the edge values of iteration t. bNext and
// bPrev must both have length ny and must not alias.
//
// Cost: O(ny * k * (1+r)) where k = |S| and r = RadiusX — the paper's
// O(k^2 * ny) with the alpha/beta inner loop made explicit.
func (ip *Interp2D[T]) InterpolateB(bPrev []T, edges EdgeSource[T], bNext []T) {
	if len(bPrev) != ip.ny || len(bNext) != ip.ny {
		panic(fmt.Sprintf("checksum: InterpolateB length %d/%d, want %d", len(bPrev), len(bNext), ip.ny))
	}
	bc := ip.op.BC
	for y := 0; y < ip.ny; y++ {
		v := ip.cB[y]
		for _, p := range ip.op.St.Points {
			yy := y + p.DY
			term := resolve1D(bPrev, yy, bc, ip.ghostSumB)
			if p.DX != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.beta(edges, p.DX, yy)
			}
			v += p.W * term
		}
		bNext[y] = v
	}
}

// InterpolateA computes aNext[x] for every x from aPrev (the row checksums
// of iteration t) and the edge values of iteration t.
func (ip *Interp2D[T]) InterpolateA(aPrev []T, edges EdgeSource[T], aNext []T) {
	if len(aPrev) != ip.nx || len(aNext) != ip.nx {
		panic(fmt.Sprintf("checksum: InterpolateA length %d/%d, want %d", len(aPrev), len(aNext), ip.nx))
	}
	bc := ip.op.BC
	for x := 0; x < ip.nx; x++ {
		v := ip.cA[x]
		for _, p := range ip.op.St.Points {
			xx := x + p.DX
			term := resolve1D(aPrev, xx, bc, ip.ghostSumA)
			if p.DY != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.alpha(edges, p.DY, xx)
			}
			v += p.W * term
		}
		aNext[x] = v
	}
}

// beta evaluates the paper's β_{dx,yy} boundary term: the difference
// between the ghost columns that enter the x-summation window when it
// shifts by dx and the domain columns that leave it. All values are from
// iteration t via the EdgeSource.
func (ip *Interp2D[T]) beta(edges EdgeSource[T], dx, yy int) T {
	var v T
	if dx < 0 {
		for x := dx; x < 0; x++ { // ghost columns entering on the left
			v += edges.At(x, yy)
		}
		for x := ip.nx + dx; x < ip.nx; x++ { // domain columns leaving on the right
			v -= edges.At(x, yy)
		}
	} else {
		for x := ip.nx; x < ip.nx+dx; x++ { // ghost columns entering on the right
			v += edges.At(x, yy)
		}
		for x := 0; x < dx; x++ { // domain columns leaving on the left
			v -= edges.At(x, yy)
		}
	}
	return v
}

// alpha evaluates the paper's α_{xx,dy} boundary term, the y-axis analogue
// of beta.
func (ip *Interp2D[T]) alpha(edges EdgeSource[T], dy, xx int) T {
	var v T
	if dy < 0 {
		for y := dy; y < 0; y++ {
			v += edges.At(xx, y)
		}
		for y := ip.ny + dy; y < ip.ny; y++ {
			v -= edges.At(xx, y)
		}
	} else {
		for y := ip.ny; y < ip.ny+dy; y++ {
			v += edges.At(xx, y)
		}
		for y := 0; y < dy; y++ {
			v -= edges.At(xx, y)
		}
	}
	return v
}

// EdgeRadius returns the snapshot radius the interpolator needs:
// max(RadiusX, RadiusY) of the stencil.
func (ip *Interp2D[T]) EdgeRadius() int {
	return max(ip.op.St.RadiusX(), ip.op.St.RadiusY())
}
