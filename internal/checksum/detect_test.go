package checksum

import (
	"math"
	"testing"
)

func TestCompareFlagsOnlyExceeding(t *testing.T) {
	d := Detector[float64]{Epsilon: 1e-6, AbsFloor: 1}
	direct := []float64{100, 200, 300, 400}
	interp := []float64{100, 200.001, 300, 400.0000001}
	ms := d.Compare(direct, interp)
	if len(ms) != 1 || ms[0].Index != 1 {
		t.Fatalf("mismatches = %+v", ms)
	}
	if ms[0].Residual != interp[1]-direct[1] {
		t.Fatal("residual wrong")
	}
}

func TestCompareCleanAllocatesNothing(t *testing.T) {
	d := NewDetector[float64]()
	direct := []float64{1, 2, 3}
	if ms := d.Compare(direct, direct); ms != nil {
		t.Fatalf("clean compare returned %v", ms)
	}
}

func TestAnyMismatch(t *testing.T) {
	d := Detector[float64]{Epsilon: 1e-6, AbsFloor: 1}
	if d.AnyMismatch([]float64{5, 5}, []float64{5, 5}) {
		t.Fatal("false positive")
	}
	if !d.AnyMismatch([]float64{5, 5}, []float64{5, 6}) {
		t.Fatal("missed mismatch")
	}
}

func TestDetectorZeroSumLines(t *testing.T) {
	// Near-zero checksums must neither divide by zero nor flag noise.
	d := Detector[float64]{Epsilon: 1e-5, AbsFloor: 1}
	if d.Exceeds(0, 1e-9) {
		t.Fatal("noise near zero flagged")
	}
	if !d.Exceeds(0, 0.5) {
		t.Fatal("real deviation near zero missed")
	}
}

func TestDetectorNonFinite(t *testing.T) {
	d := NewDetector[float64]()
	if !d.Exceeds(math.Inf(1), 100) {
		t.Fatal("Inf direct checksum not flagged")
	}
	if !d.Exceeds(100, math.NaN()) {
		t.Fatal("NaN interp checksum not flagged")
	}
	if !d.Exceeds(math.Inf(1), math.Inf(1)) {
		t.Fatal("matching Infs not flagged (a healthy checksum is finite)")
	}
}

func TestMaxRelErr(t *testing.T) {
	d := Detector[float64]{Epsilon: 1e-6, AbsFloor: 1}
	got := d.MaxRelErr([]float64{100, 200}, []float64{101, 200})
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("MaxRelErr = %g", got)
	}
	if !math.IsInf(d.MaxRelErr([]float64{math.NaN()}, []float64{1}), 1) {
		t.Fatal("non-finite should yield +Inf")
	}
}

func TestComparePanicsOnLengthMismatch(t *testing.T) {
	d := NewDetector[float64]()
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	d.Compare([]float64{1}, []float64{1, 2})
}
