package checksum

import (
	"math/rand"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// randomGrid fills an nx-by-ny grid with values in [lo, lo+span).
func randomGrid(rng *rand.Rand, nx, ny int, lo, span float64) *grid.Grid[float64] {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return lo + span*rng.Float64() })
	return g
}

// randomStencil builds a random 2-D stencil with k points within the given
// radius, unique offsets and weights in [-1, 1].
func randomStencil(rng *rand.Rand, k, radius int) *stencil.Stencil[float64] {
	st := &stencil.Stencil[float64]{Name: "random"}
	seen := map[[2]int]bool{}
	for len(st.Points) < k {
		dx := rng.Intn(2*radius+1) - radius
		dy := rng.Intn(2*radius+1) - radius
		if seen[[2]int{dx, dy}] {
			continue
		}
		seen[[2]int{dx, dy}] = true
		w := 2*rng.Float64() - 1
		if w == 0 {
			w = 0.5
		}
		st.Points = append(st.Points, stencil.Point[float64]{DX: dx, DY: dy, W: w})
	}
	return st
}

var allBoundaries = []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero}

// TestTheorem1Invariance is the central property test: for random domains,
// random stencils and every boundary condition, the interpolated checksum
// vectors equal the directly computed checksums of the swept domain up to
// floating-point round-off.
func TestTheorem1Invariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nx := 4 + rng.Intn(20)
		ny := 4 + rng.Intn(20)
		radius := 1 + rng.Intn(2)
		if radius >= nx || radius >= ny {
			radius = 1
		}
		k := 1 + rng.Intn(8)
		st := randomStencil(rng, k, radius)
		bc := allBoundaries[rng.Intn(len(allBoundaries))]
		var cfield *grid.Grid[float64]
		if rng.Intn(2) == 0 {
			cfield = randomGrid(rng, nx, ny, -0.5, 1)
		}
		op := &stencil.Op2D[float64]{St: st, BC: bc, BCValue: 2*rng.Float64() - 1, C: cfield}

		src := randomGrid(rng, nx, ny, -1, 2)
		dst := grid.New[float64](nx, ny)

		prev := NewVectors[float64](nx, ny)
		prev.Compute(src)

		op.Sweep(dst, src)
		direct := NewVectors[float64](nx, ny)
		direct.Compute(dst)

		ip, err := NewInterp2D(op, nx, ny)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		edges := LiveEdges(src, bc, op.BCValue)
		interpA := make([]float64, nx)
		interpB := make([]float64, ny)
		ip.InterpolateA(prev.A, edges, interpA)
		ip.InterpolateB(prev.B, edges, interpB)

		const tol = 1e-9
		for x := 0; x < nx; x++ {
			if num.RelErr(interpA[x], direct.A[x], 1e-6) > tol {
				t.Fatalf("trial %d (%s, bc=%s, %dx%d): A[%d] direct %.12g interp %.12g",
					trial, st, bc, nx, ny, x, direct.A[x], interpA[x])
			}
		}
		for y := 0; y < ny; y++ {
			if num.RelErr(interpB[y], direct.B[y], 1e-6) > tol {
				t.Fatalf("trial %d (%s, bc=%s, %dx%d): B[%d] direct %.12g interp %.12g",
					trial, st, bc, nx, ny, y, direct.B[y], interpB[y])
			}
		}
	}
}

// TestTheorem1EdgeSnapshot verifies that interpolation from a stored edge
// snapshot (the offline path) gives the same result as interpolation from
// the live grid.
func TestTheorem1EdgeSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nx := 5 + rng.Intn(12)
		ny := 5 + rng.Intn(12)
		st := randomStencil(rng, 1+rng.Intn(6), 1+rng.Intn(2))
		bc := allBoundaries[rng.Intn(len(allBoundaries))]
		op := &stencil.Op2D[float64]{St: st, BC: bc, BCValue: rng.Float64()}
		if op.Validate(nx, ny) != nil {
			continue
		}
		src := randomGrid(rng, nx, ny, 0, 10)
		prev := NewVectors[float64](nx, ny)
		prev.Compute(src)
		ip, err := NewInterp2D(op, nx, ny)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		live := LiveEdges(src, bc, op.BCValue)
		snap := NewEdgeSnapshot[float64](nx, ny, ip.EdgeRadius(), bc, op.BCValue)
		snap.Capture(src)

		gotA := make([]float64, nx)
		wantA := make([]float64, nx)
		gotB := make([]float64, ny)
		wantB := make([]float64, ny)
		ip.InterpolateA(prev.A, live, wantA)
		ip.InterpolateA(prev.A, snap, gotA)
		ip.InterpolateB(prev.B, live, wantB)
		ip.InterpolateB(prev.B, snap, gotB)
		for x := range gotA {
			if gotA[x] != wantA[x] {
				t.Fatalf("trial %d (bc=%s): A[%d] snapshot %.17g live %.17g", trial, bc, x, gotA[x], wantA[x])
			}
		}
		for y := range gotB {
			if gotB[y] != wantB[y] {
				t.Fatalf("trial %d (bc=%s): B[%d] snapshot %.17g live %.17g", trial, bc, y, gotB[y], wantB[y])
			}
		}
	}
}

// TestPeriodicDropsBoundaryTerms checks the simplification of the paper's
// Eqs. (8)-(9): under Periodic boundaries, dropping alpha/beta changes
// nothing.
func TestPeriodicDropsBoundaryTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		nx, ny := 6+rng.Intn(10), 6+rng.Intn(10)
		st := randomStencil(rng, 1+rng.Intn(6), 1)
		op := &stencil.Op2D[float64]{St: st, BC: grid.Periodic}
		src := randomGrid(rng, nx, ny, -1, 2)
		prev := NewVectors[float64](nx, ny)
		prev.Compute(src)
		ip, err := NewInterp2D(op, nx, ny)
		if err != nil {
			t.Fatal(err)
		}
		exact := make([]float64, ny)
		ip.InterpolateB(prev.B, LiveEdges(src, grid.Periodic, 0), exact)
		ip.DropBoundaryTerms = true
		dropped := make([]float64, ny)
		ip.InterpolateB(prev.B, LiveEdges(src, grid.Periodic, 0), dropped)
		for y := range exact {
			if exact[y] != dropped[y] {
				t.Fatalf("trial %d: periodic B[%d] exact %.17g dropped %.17g", trial, y, exact[y], dropped[y])
			}
		}
	}
}

// TestSymmetricWeightsCancelBeta documents why the paper's HotSpot3D
// prototype works despite dropping the boundary terms: with equal opposing
// weights under Clamp boundaries, the beta contributions cancel pairwise.
func TestSymmetricWeightsCancelBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nx, ny := 6+rng.Intn(10), 6+rng.Intn(10)
		we := rng.Float64()
		wn := rng.Float64()
		st := stencil.FivePoint(rng.Float64(), we, we, wn, wn)
		op := &stencil.Op2D[float64]{St: st, BC: grid.Clamp}
		src := randomGrid(rng, nx, ny, 0, 5)
		prev := NewVectors[float64](nx, ny)
		prev.Compute(src)
		ip, err := NewInterp2D(op, nx, ny)
		if err != nil {
			t.Fatal(err)
		}
		exact := make([]float64, ny)
		ip.InterpolateB(prev.B, LiveEdges(src, grid.Clamp, 0), exact)
		ip.DropBoundaryTerms = true
		dropped := make([]float64, ny)
		ip.InterpolateB(prev.B, LiveEdges(src, grid.Clamp, 0), dropped)
		for y := range exact {
			if num.RelErr(dropped[y], exact[y], 1e-9) > 1e-12 {
				t.Fatalf("trial %d: symmetric-clamp B[%d] exact %.17g dropped %.17g", trial, y, exact[y], dropped[y])
			}
		}
	}
}

// TestAsymmetricClampNeedsBeta is the converse: the asymmetric advection
// stencil under Clamp boundaries requires the exact boundary terms; the
// dropped variant diverges from the direct checksums while the exact one
// matches.
func TestAsymmetricClampNeedsBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nx, ny := 16, 12
	st := stencil.Advect2D(0.3, 0.2)
	op := &stencil.Op2D[float64]{St: st, BC: grid.Clamp}
	src := randomGrid(rng, nx, ny, 1, 4)
	dst := grid.New[float64](nx, ny)
	prev := NewVectors[float64](nx, ny)
	prev.Compute(src)
	op.Sweep(dst, src)
	direct := NewVectors[float64](nx, ny)
	direct.Compute(dst)
	ip, err := NewInterp2D(op, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, ny)
	ip.InterpolateB(prev.B, LiveEdges(src, grid.Clamp, 0), exact)
	ip.DropBoundaryTerms = true
	dropped := make([]float64, ny)
	ip.InterpolateB(prev.B, LiveEdges(src, grid.Clamp, 0), dropped)

	var maxExact, maxDropped float64
	for y := range exact {
		maxExact = num.Max(maxExact, num.RelErr(exact[y], direct.B[y], 1e-9))
		maxDropped = num.Max(maxDropped, num.RelErr(dropped[y], direct.B[y], 1e-9))
	}
	if maxExact > 1e-12 {
		t.Fatalf("exact interpolation off by %g, want round-off only", maxExact)
	}
	if maxDropped < 1e-6 {
		t.Fatalf("dropped boundary terms unexpectedly accurate (%g); test is vacuous", maxDropped)
	}
}
