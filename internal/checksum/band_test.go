package checksum

import (
	"math/rand"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// TestBandInterpolationMatchesDirect: slice a global domain into a band
// with halo rows, interpolate the band's checksums with InterpolateBBand,
// and compare against the direct checksums of the globally swept domain.
func TestBandInterpolationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		nx := 6 + rng.Intn(14)
		nyG := 12 + rng.Intn(16)
		st := randomStencil(rng, 1+rng.Intn(6), 1)
		bc := []grid.Boundary{grid.Clamp, grid.Mirror, grid.Zero, grid.Constant}[rng.Intn(4)]
		op := &stencil.Op2D[float64]{St: st, BC: bc, BCValue: rng.Float64()}
		if op.Validate(nx, nyG) != nil {
			continue
		}
		src := randomGrid(rng, nx, nyG, 0, 8)
		dst := grid.New[float64](nx, nyG)
		op.Sweep(dst, src)

		// Band: rows [y0, y1) with halo width 1.
		h := 1
		y0 := h + rng.Intn(nyG/2)
		y1 := y0 + 2 + rng.Intn(nyG-y0-h-1)
		nyB := y1 - y0

		bandOp := &stencil.Op2D[float64]{St: st, BC: bc, BCValue: op.BCValue}
		ip, err := NewInterp2D(bandOp, nx, nyB)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Extended previous checksums: halo rows are plain row sums.
		bExt := make([]float64, nyB+2*h)
		for j := 0; j < nyB+2*h; j++ {
			var s float64
			for x := 0; x < nx; x++ {
				s += src.At(x, y0-h+j)
			}
			bExt[j] = s
		}
		bg := grid.BoundedGrid[float64]{G: src, Cond: bc, ConstVal: op.BCValue}
		edges := OffsetEdges[float64]{Src: bg, X0: 0, Y0: y0}

		got := make([]float64, nyB)
		ip.InterpolateBBand(bExt, h, edges, got)
		for j := 0; j < nyB; j++ {
			var want float64
			for x := 0; x < nx; x++ {
				want += dst.At(x, y0+j)
			}
			if num.RelErr(got[j], want, 1e-9) > 1e-12 {
				t.Fatalf("trial %d (%s, bc=%s): band row %d got %.12g want %.12g",
					trial, st, bc, j, got[j], want)
			}
		}
	}
}

// TestBlockInterpolationMatchesDirect does the same for a fully interior
// block (halos on all four sides), covering both InterpolateBBand (column
// checksums) and InterpolateABlock (row checksums).
func TestBlockInterpolationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		nxG := 14 + rng.Intn(12)
		nyG := 14 + rng.Intn(12)
		st := randomStencil(rng, 1+rng.Intn(6), 1)
		bc := []grid.Boundary{grid.Clamp, grid.Mirror, grid.Zero}[rng.Intn(3)]
		op := &stencil.Op2D[float64]{St: st, BC: bc}
		if op.Validate(nxG, nyG) != nil {
			continue
		}
		src := randomGrid(rng, nxG, nyG, -2, 4)
		dst := grid.New[float64](nxG, nyG)
		op.Sweep(dst, src)

		h := 1
		x0 := h + rng.Intn(nxG/2)
		x1 := x0 + 2 + rng.Intn(nxG-x0-h-1)
		y0 := h + rng.Intn(nyG/2)
		y1 := y0 + 2 + rng.Intn(nyG-y0-h-1)
		bw, bh := x1-x0, y1-y0

		blockOp := &stencil.Op2D[float64]{St: st, BC: bc}
		ip, err := NewInterp2D(blockOp, bw, bh)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bg := grid.BoundedGrid[float64]{G: src, Cond: bc}
		edges := OffsetEdges[float64]{Src: bg, X0: x0, Y0: y0}

		// Column checksums (per block row).
		bExt := make([]float64, bh+2*h)
		for j := range bExt {
			var s float64
			for x := x0; x < x1; x++ {
				s += src.At(x, y0-h+j)
			}
			bExt[j] = s
		}
		gotB := make([]float64, bh)
		ip.InterpolateBBand(bExt, h, edges, gotB)
		for j := 0; j < bh; j++ {
			var want float64
			for x := x0; x < x1; x++ {
				want += dst.At(x, y0+j)
			}
			if num.RelErr(gotB[j], want, 1e-9) > 1e-12 {
				t.Fatalf("trial %d (%s, bc=%s): block B[%d] got %.12g want %.12g",
					trial, st, bc, j, gotB[j], want)
			}
		}

		// Row checksums (per block column).
		aExt := make([]float64, bw+2*h)
		for i := range aExt {
			var s float64
			for y := y0; y < y1; y++ {
				s += src.At(x0-h+i, y)
			}
			aExt[i] = s
		}
		gotA := make([]float64, bw)
		ip.InterpolateABlock(aExt, h, edges, gotA)
		for i := 0; i < bw; i++ {
			var want float64
			for y := y0; y < y1; y++ {
				want += dst.At(x0+i, y)
			}
			if num.RelErr(gotA[i], want, 1e-9) > 1e-12 {
				t.Fatalf("trial %d (%s, bc=%s): block A[%d] got %.12g want %.12g",
					trial, st, bc, i, gotA[i], want)
			}
		}
	}
}

func TestBandInterpolationPanicsOnBadHalo(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	ip, err := NewInterp2D(op, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("halo below radius did not panic")
		}
	}()
	ip.InterpolateBBand(make([]float64, 8), 0, nil, make([]float64, 8))
}

func TestOffsetEdgesTranslates(t *testing.T) {
	g := grid.New[float64](6, 6)
	g.FillFunc(func(x, y int) float64 { return float64(x + 10*y) })
	bg := grid.BoundedGrid[float64]{G: g, Cond: grid.Clamp}
	oe := OffsetEdges[float64]{Src: bg, X0: 2, Y0: 3}
	if oe.At(0, 0) != g.At(2, 3) {
		t.Fatal("offset translation wrong")
	}
	if oe.At(-1, -1) != g.At(1, 2) {
		t.Fatal("negative local coordinates wrong")
	}
}
