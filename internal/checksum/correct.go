package checksum

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Location is a corrupted domain point identified by intersecting the
// mismatching row-checksum index (x) and column-checksum index (y).
type Location struct {
	X, Y int
}

// PairPolicy selects how mismatching A-indices are matched with
// mismatching B-indices when more than one error is present.
type PairPolicy int

const (
	// PairByResidual matches an A mismatch with the B mismatch whose
	// checksum residual is closest: a single corrupted cell perturbs its
	// row and column checksums by the same amount, so true pairs have
	// nearly equal residuals. This disambiguates multi-error patterns
	// that index-order pairing gets wrong.
	PairByResidual PairPolicy = iota
	// PairByIndex matches the i-th A mismatch with the i-th B mismatch,
	// the policy of the paper's Figure 6 listing.
	PairByIndex
)

// Pair combines the A-vector and B-vector mismatch lists into error
// locations. With exactly one mismatch on each side there is nothing to
// disambiguate; with k > 1 the policy decides. When the list lengths
// differ (overlapping corruptions in the same row or column), the shorter
// list bounds the number of locatable errors and the extras are dropped —
// the caller should treat that as a partially located event.
func Pair[T num.Float](am, bm []Mismatch[T], policy PairPolicy) []Location {
	n := min(len(am), len(bm))
	if n == 0 {
		return nil
	}
	locs := make([]Location, 0, n)
	if policy == PairByIndex || n == 1 {
		for i := 0; i < n; i++ {
			locs = append(locs, Location{X: am[i].Index, Y: bm[i].Index})
		}
		return locs
	}
	used := make([]bool, len(bm))
	for i := 0; i < n; i++ {
		best, bestDiff := -1, T(0)
		for j := range bm {
			if used[j] {
				continue
			}
			d := num.Abs(am[i].Residual - bm[j].Residual)
			if best < 0 || d < bestDiff {
				best, bestDiff = j, d
			}
		}
		used[best] = true
		locs = append(locs, Location{X: am[i].Index, Y: bm[best].Index})
	}
	return locs
}

// Corrector applies the paper's Equation (10): the corrupted value is
// recovered by subtracting it from the direct checksum and comparing with
// the interpolated checksum. The two estimates (from A and from B) are
// averaged, as in the paper's Figure 6, and the checksums themselves are
// patched so later iterations remain verifiable.
//
// PaperExact selects the literal formula v = a' - (a - u), whose
// subtraction a - u cancels catastrophically when the corrupted value u
// dwarfs the rest of the line (a high exponent-bit flip) — the residual
// spike the paper reports in Section 5.3/Figure 10b. The default instead
// evaluates the algebraically identical v = a' - Σ_{other cells}, summing
// the uncorrupted cells directly from the domain (O(nx+ny) per correction),
// which stays accurate for corruption of any magnitude, including
// overflowed checksums. The Figure 10 campaign runs both.
type Corrector[T num.Float] struct {
	PaperExact bool
}

// Correct recovers the value at loc in g, writes it back, and patches the
// direct checksum vectors. direct holds the checksums computed from the
// (corrupted) domain; interpA/interpB are the interpolated (clean)
// checksums. It returns the old and new values.
func (c Corrector[T]) Correct(g *grid.Grid[T], loc Location, direct *Vectors[T], interpA, interpB []T) (old, fixed T) {
	old = g.At(loc.X, loc.Y)
	if c.PaperExact {
		vx := interpA[loc.X] - (direct.A[loc.X] - old)
		vy := interpB[loc.Y] - (direct.B[loc.Y] - old)
		fixed = (vx + vy) / 2
		switch {
		case num.IsFinite(fixed):
			// common case
		case num.IsFinite(vx):
			fixed = vx
		case num.IsFinite(vy):
			fixed = vy
		default:
			fixed = 0
		}
		g.Set(loc.X, loc.Y, fixed)
		delta := fixed - old
		if num.IsFinite(delta) {
			direct.A[loc.X] += delta
			direct.B[loc.Y] += delta
			return old, fixed
		}
		// The direct checksums are non-finite; fall through to the
		// exact recomputation below after the repair.
	} else {
		// Stable evaluation: the whole grid is the rectangle.
		return CorrectRect(g, 0, 0, g.Nx(), g.Ny(), loc, direct.A, direct.B, interpA, interpB)
	}
	g.Set(loc.X, loc.Y, fixed)
	var sa, sb T
	for y := 0; y < g.Ny(); y++ {
		sa += g.At(loc.X, y)
	}
	for x := 0; x < g.Nx(); x++ {
		sb += g.At(x, loc.Y)
	}
	direct.A[loc.X] = sa
	direct.B[loc.Y] = sb
	return old, fixed
}

// CorrectRect applies the numerically stable Equation-(10) repair to one
// located error of the rectangle [x0,x1) x [y0,y1) of g — the unit both
// the tiled (blocks) and the distributed (dist) deployments share. loc is
// rect-local; directA/directB are the rectangle's partial row/column
// checksums (patched in place so later iterations stay verifiable), and
// interpA/interpB the interpolated ones. The corrupted value is recovered
// as interp minus the sum of the line's other cells, which stays accurate
// for corruption of any magnitude, then the two estimates are averaged.
func CorrectRect[T num.Float](g *grid.Grid[T], x0, y0, x1, y1 int, loc Location,
	directA, directB, interpA, interpB []T) (old, fixed T) {
	gx, gy := x0+loc.X, y0+loc.Y
	old = g.At(gx, gy)
	var restA, restB T
	for y := y0; y < y1; y++ {
		if y != gy {
			restA += g.At(gx, y)
		}
	}
	for x := x0; x < x1; x++ {
		if x != gx {
			restB += g.At(x, gy)
		}
	}
	vx := interpA[loc.X] - restA
	vy := interpB[loc.Y] - restB
	fixed = (vx + vy) / 2
	g.Set(gx, gy, fixed)
	directA[loc.X] = restA + fixed
	directB[loc.Y] = restB + fixed
	return old, fixed
}

// CorrectAll pairs the mismatch lists and corrects every located error,
// returning the locations fixed. The same grid/checksum patching rules as
// Correct apply per location.
func (c Corrector[T]) CorrectAll(g *grid.Grid[T], am, bm []Mismatch[T], policy PairPolicy,
	direct *Vectors[T], interpA, interpB []T) []Location {
	locs := Pair(am, bm, policy)
	for _, loc := range locs {
		c.Correct(g, loc, direct, interpA, interpB)
	}
	return locs
}
