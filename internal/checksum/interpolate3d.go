package checksum

import (
	"fmt"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Interp3D interpolates the per-layer checksum vectors of a 3-D domain.
// The paper applies the 2-D scheme on every z-layer; a stencil point with
// dz != 0 couples layer z's checksum to layer z+dz's checksum of the
// previous iteration, because the layer sum telescopes exactly like the
// in-layer sums do. Ghost layers (z+dz outside [0,nz)) are resolved with
// the same boundary condition as the in-layer axes.
type Interp3D[T num.Float] struct {
	op         *stencil.Op3D[T]
	nx, ny, nz int
	cA         [][]T // per layer: cA[z][x] = Σ_y C(x,y,z)
	cB         [][]T // per layer: cB[z][y] = Σ_x C(x,y,z)
	ghostSumA  T     // Constant-boundary whole-line substitute: ny*K
	ghostSumB  T     // nx*K
	// DropBoundaryTerms mirrors Interp2D.DropBoundaryTerms (ablation A1).
	DropBoundaryTerms bool
}

// NewInterp3D precomputes an interpolator for op over an nx*ny*nz domain.
func NewInterp3D[T num.Float](op *stencil.Op3D[T], nx, ny, nz int) (*Interp3D[T], error) {
	if err := op.Validate(nx, ny, nz); err != nil {
		return nil, err
	}
	ip := &Interp3D[T]{op: op, nx: nx, ny: ny, nz: nz,
		cA: make([][]T, nz), cB: make([][]T, nz)}
	for z := 0; z < nz; z++ {
		ip.cA[z] = make([]T, nx)
		ip.cB[z] = make([]T, ny)
		if op.C != nil {
			v := NewVectors[T](nx, ny)
			v.Compute(op.C.Layer(z))
			copy(ip.cA[z], v.A)
			copy(ip.cB[z], v.B)
		}
	}
	if op.BC == grid.Constant {
		ip.ghostSumA = T(ny) * op.BCValue
		ip.ghostSumB = T(nx) * op.BCValue
	}
	return ip, nil
}

// EdgeRadius returns the in-layer snapshot radius needed by the
// alpha/beta terms: max(RadiusX, RadiusY).
func (ip *Interp3D[T]) EdgeRadius() int {
	return max(ip.op.St.RadiusX(), ip.op.St.RadiusY())
}

// InterpolateB computes layer z's next column checksums from the previous
// iteration's per-layer column checksums bPrev (bPrev[z] of length ny) and
// per-layer edge sources. bNext must have length ny.
func (ip *Interp3D[T]) InterpolateB(z int, bPrev [][]T, edges []EdgeSource[T], bNext []T) {
	if len(bPrev) != ip.nz || len(bNext) != ip.ny {
		panic(fmt.Sprintf("checksum: InterpolateB layer %d: got %d layers, %d entries", z, len(bPrev), len(bNext)))
	}
	bc := ip.op.BC
	for y := 0; y < ip.ny; y++ {
		v := ip.cB[z][y]
		for _, p := range ip.op.St.Points {
			zz, ok := bc.ResolveIndex(z+p.DZ, ip.nz)
			if !ok {
				// Ghost layer: every point is the Constant value
				// (or zero), so the shifted window sum is the
				// whole-line ghost sum regardless of dx and dy.
				if bc == grid.Constant {
					v += p.W * ip.ghostSumB
				}
				continue
			}
			term := resolve1D(bPrev[zz], y+p.DY, bc, ip.ghostSumB)
			if p.DX != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.betaLayer(edges[zz], p.DX, y+p.DY)
			}
			v += p.W * term
		}
		bNext[y] = v
	}
}

// InterpolateA computes layer z's next row checksums, the x-axis analogue
// of InterpolateB.
func (ip *Interp3D[T]) InterpolateA(z int, aPrev [][]T, edges []EdgeSource[T], aNext []T) {
	if len(aPrev) != ip.nz || len(aNext) != ip.nx {
		panic(fmt.Sprintf("checksum: InterpolateA layer %d: got %d layers, %d entries", z, len(aPrev), len(aNext)))
	}
	bc := ip.op.BC
	for x := 0; x < ip.nx; x++ {
		v := ip.cA[z][x]
		for _, p := range ip.op.St.Points {
			zz, ok := bc.ResolveIndex(z+p.DZ, ip.nz)
			if !ok {
				if bc == grid.Constant {
					v += p.W * ip.ghostSumA
				}
				continue
			}
			term := resolve1D(aPrev[zz], x+p.DX, bc, ip.ghostSumA)
			if p.DY != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.alphaLayer(edges[zz], p.DY, x+p.DX)
			}
			v += p.W * term
		}
		aNext[x] = v
	}
}

// InterpolateBSlab interpolates layer z's column checksums for a z-slab of
// a larger 3-D domain — the unit of the layer-decomposed cluster, where
// each rank owns a slab of full nx-by-ny layers and exchanges halo layers
// with its z-neighbours instead of applying a boundary condition in z. It
// is structurally InterpolateBBand lifted one dimension: z is slab-local in
// [0, nz) where nz is the slab thickness the interpolator was built for,
// bPrevExt carries nz+2h per-layer checksum vectors ([0, h) the halo layers
// below in z, [h, h+nz) the slab's own, [h+nz, nz+2h) above; h >= RadiusZ),
// and edges must hold one per-extended-layer EdgeSource. Halo-layer
// checksums are plain sums of the received halo layers, so ranks need no
// extra communication beyond the halo exchange itself. In-layer resolution
// (the y lookups and the x-direction beta terms) uses the global boundary
// condition exactly as in InterpolateB, since every slab spans the full
// in-layer domain.
func (ip *Interp3D[T]) InterpolateBSlab(z int, bPrevExt [][]T, h int, edges []EdgeSource[T], bNext []T) {
	if len(bPrevExt) != ip.nz+2*h || len(edges) != ip.nz+2*h || len(bNext) != ip.ny {
		panic(fmt.Sprintf("checksum: InterpolateBSlab lengths %d/%d/%d for nz=%d h=%d",
			len(bPrevExt), len(edges), len(bNext), ip.nz, h))
	}
	if rz := ip.op.St.RadiusZ(); h < rz {
		panic(fmt.Sprintf("checksum: halo depth %d below stencil z-radius %d", h, rz))
	}
	bc := ip.op.BC
	for y := 0; y < ip.ny; y++ {
		v := ip.cB[z][y]
		for _, p := range ip.op.St.Points {
			// Halo layers substitute for boundary resolution in z:
			// z+p.DZ in [-h, nz+h) indexes bPrevExt directly.
			zz := z + p.DZ + h
			term := resolve1D(bPrevExt[zz], y+p.DY, bc, ip.ghostSumB)
			if p.DX != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.betaLayer(edges[zz], p.DX, y+p.DY)
			}
			v += p.W * term
		}
		bNext[y] = v
	}
}

// InterpolateASlab interpolates layer z's row checksums for a z-slab, the
// x-axis analogue of InterpolateBSlab.
func (ip *Interp3D[T]) InterpolateASlab(z int, aPrevExt [][]T, h int, edges []EdgeSource[T], aNext []T) {
	if len(aPrevExt) != ip.nz+2*h || len(edges) != ip.nz+2*h || len(aNext) != ip.nx {
		panic(fmt.Sprintf("checksum: InterpolateASlab lengths %d/%d/%d for nz=%d h=%d",
			len(aPrevExt), len(edges), len(aNext), ip.nz, h))
	}
	if rz := ip.op.St.RadiusZ(); h < rz {
		panic(fmt.Sprintf("checksum: halo depth %d below stencil z-radius %d", h, rz))
	}
	bc := ip.op.BC
	for x := 0; x < ip.nx; x++ {
		v := ip.cA[z][x]
		for _, p := range ip.op.St.Points {
			zz := z + p.DZ + h
			term := resolve1D(aPrevExt[zz], x+p.DX, bc, ip.ghostSumA)
			if p.DY != 0 && bc != grid.Periodic && !ip.DropBoundaryTerms {
				term += ip.alphaLayer(edges[zz], p.DY, x+p.DX)
			}
			v += p.W * term
		}
		aNext[x] = v
	}
}

func (ip *Interp3D[T]) betaLayer(edges EdgeSource[T], dx, yy int) T {
	var v T
	if dx < 0 {
		for x := dx; x < 0; x++ {
			v += edges.At(x, yy)
		}
		for x := ip.nx + dx; x < ip.nx; x++ {
			v -= edges.At(x, yy)
		}
	} else {
		for x := ip.nx; x < ip.nx+dx; x++ {
			v += edges.At(x, yy)
		}
		for x := 0; x < dx; x++ {
			v -= edges.At(x, yy)
		}
	}
	return v
}

func (ip *Interp3D[T]) alphaLayer(edges EdgeSource[T], dy, xx int) T {
	var v T
	if dy < 0 {
		for y := dy; y < 0; y++ {
			v += edges.At(xx, y)
		}
		for y := ip.ny + dy; y < ip.ny; y++ {
			v -= edges.At(xx, y)
		}
	} else {
		for y := ip.ny; y < ip.ny+dy; y++ {
			v += edges.At(xx, y)
		}
		for y := 0; y < dy; y++ {
			v -= edges.At(xx, y)
		}
	}
	return v
}
