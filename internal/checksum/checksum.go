// Package checksum implements the paper's primary contribution: checksum
// vectors for stencil domains (Section 3.2), their interpolation across a
// stencil sweep (Theorem 1, implemented with exact boundary terms alpha and
// beta), silent-data-corruption detection by comparing interpolated against
// directly computed checksums (Theorem 2, Section 3.4), and algebraic
// correction of located errors (Equation 10, Section 3.5).
//
// Conventions follow the paper: for a domain u of shape nx-by-ny,
//
//	A[x] = Σ_y u(x,y)   (the "row checksum vector", one entry per x)
//	B[y] = Σ_x u(x,y)   (the "column checksum vector", one entry per y)
//
// B is the vector the fused sweep accumulates for free; A is only needed
// when an error has been detected and must be located in x.
package checksum

import (
	"fmt"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Vectors holds the checksum pair of one 2-D domain (or one layer of a 3-D
// domain).
type Vectors[T num.Float] struct {
	A []T // len nx, A[x] = Σ_y u(x,y)
	B []T // len ny, B[y] = Σ_x u(x,y)
}

// NewVectors allocates a zeroed checksum pair for an nx-by-ny domain.
func NewVectors[T num.Float](nx, ny int) *Vectors[T] {
	return &Vectors[T]{A: make([]T, nx), B: make([]T, ny)}
}

// Compute fills both vectors from g with plain left-to-right accumulation,
// the order the paper's fused loop uses.
func (v *Vectors[T]) Compute(g *grid.Grid[T]) {
	stencil.ChecksumA(g, v.A)
	stencil.ChecksumB(g, v.B)
}

// ComputeB fills only the column vector from g.
func (v *Vectors[T]) ComputeB(g *grid.Grid[T]) { stencil.ChecksumB(g, v.B) }

// ComputeA fills only the row vector from g.
func (v *Vectors[T]) ComputeA(g *grid.Grid[T]) { stencil.ChecksumA(g, v.A) }

// ComputeKahan fills both vectors using compensated summation, lowering the
// round-off floor at ~2x accumulation cost (ablation A3).
func (v *Vectors[T]) ComputeKahan(g *grid.Grid[T]) {
	nx, ny := g.Nx(), g.Ny()
	accA := make([]num.Accumulator[T], nx)
	for y := 0; y < ny; y++ {
		row := g.Row(y)
		var acc num.Accumulator[T]
		for x, val := range row {
			acc.Add(val)
			accA[x].Add(val)
		}
		v.B[y] = acc.Value()
	}
	for x := 0; x < nx; x++ {
		v.A[x] = accA[x].Value()
	}
}

// Clone returns a deep copy.
func (v *Vectors[T]) Clone() *Vectors[T] {
	c := &Vectors[T]{A: make([]T, len(v.A)), B: make([]T, len(v.B))}
	copy(c.A, v.A)
	copy(c.B, v.B)
	return c
}

// CopyFrom copies src into v; lengths must match.
func (v *Vectors[T]) CopyFrom(src *Vectors[T]) {
	if len(v.A) != len(src.A) || len(v.B) != len(src.B) {
		panic(fmt.Sprintf("checksum: copy %d/%d from %d/%d", len(v.A), len(v.B), len(src.A), len(src.B)))
	}
	copy(v.A, src.A)
	copy(v.B, src.B)
}

// resolve1D looks up vec[i] with the 1-D projection of the boundary
// condition: Clamp, Periodic and Mirror resolve to an in-domain index,
// Constant substitutes ghostSum (the whole-line sum of the constant ghost
// value, i.e. n*K), and Zero substitutes 0. This is the b̃/ã resolution of
// DESIGN.md Section 6.
func resolve1D[T num.Float](vec []T, i int, bc grid.Boundary, ghostSum T) T {
	ri, ok := bc.ResolveIndex(i, len(vec))
	if !ok {
		if bc == grid.Constant {
			return ghostSum
		}
		return 0
	}
	return vec[ri]
}

// EdgeSource supplies boundary-resolved domain values ũ(x,y) of iteration t
// for the alpha/beta boundary-term evaluation. Queries are guaranteed to
// stay within the stencil radius of a domain edge (in at least one axis);
// interior points far from every edge are never requested.
//
// Two implementations exist: grid.BoundedGrid (the live t-buffer, used by
// the online protector) and EdgeSnapshot (a stored copy of the edge strips,
// used by the offline protector's Δ-step interpolation chain).
type EdgeSource[T num.Float] interface {
	At(x, y int) T
}

// EdgeSnapshot stores the first and last r columns and rows of a domain
// iteration together with the boundary condition, so that alpha/beta terms
// of past iterations can be evaluated after the domain buffer has been
// overwritten. Memory cost is O(r*(nx+ny)) per retained iteration.
type EdgeSnapshot[T num.Float] struct {
	nx, ny   int
	r        int
	bc       grid.Boundary
	constVal T
	left     []T // r columns of length ny: left[c*ny+y] = u(c, y)
	right    []T // r columns: right[c*ny+y] = u(nx-r+c, y)
	top      []T // r rows of length nx: top[c*nx+x] = u(x, c)
	bottom   []T // r rows: bottom[c*nx+x] = u(x, ny-r+c)
}

// NewEdgeSnapshot allocates an empty snapshot for an nx-by-ny domain and
// stencil radius r (use max(RadiusX, RadiusY); r is clamped into [1, nx]
// and [1, ny] as needed).
func NewEdgeSnapshot[T num.Float](nx, ny, r int, bc grid.Boundary, constVal T) *EdgeSnapshot[T] {
	if r < 1 {
		r = 1
	}
	// Mirror boundaries reflect ghost index -r onto +r, one past an
	// r-wide strip, so strips are stored one wider than the radius.
	r++
	rx, ry := min(r, nx), min(r, ny)
	return &EdgeSnapshot[T]{
		nx: nx, ny: ny, r: r, bc: bc, constVal: constVal,
		left:   make([]T, rx*ny),
		right:  make([]T, rx*ny),
		top:    make([]T, ry*nx),
		bottom: make([]T, ry*nx),
	}
}

// Capture copies g's edge strips into the snapshot.
func (e *EdgeSnapshot[T]) Capture(g *grid.Grid[T]) {
	if g.Nx() != e.nx || g.Ny() != e.ny {
		panic("checksum: edge snapshot shape mismatch")
	}
	rx, ry := min(e.r, e.nx), min(e.r, e.ny)
	for c := 0; c < rx; c++ {
		for y := 0; y < e.ny; y++ {
			e.left[c*e.ny+y] = g.At(c, y)
			e.right[c*e.ny+y] = g.At(e.nx-rx+c, y)
		}
	}
	for c := 0; c < ry; c++ {
		copy(e.top[c*e.nx:(c+1)*e.nx], g.Row(c))
		copy(e.bottom[c*e.nx:(c+1)*e.nx], g.Row(e.ny-ry+c))
	}
}

// At returns ũ(x,y) with full boundary resolution. It panics if the
// resolved point lies outside the stored edge strips, which would indicate
// the caller queried an interior point (a contract violation, always a bug).
func (e *EdgeSnapshot[T]) At(x, y int) T {
	rxi, okx := e.bc.ResolveIndex(x, e.nx)
	ryi, oky := e.bc.ResolveIndex(y, e.ny)
	if !okx || !oky {
		if e.bc == grid.Constant {
			return e.constVal
		}
		return 0
	}
	rx, ry := min(e.r, e.nx), min(e.r, e.ny)
	switch {
	case rxi < rx:
		return e.left[rxi*e.ny+ryi]
	case rxi >= e.nx-rx:
		return e.right[(rxi-(e.nx-rx))*e.ny+ryi]
	case ryi < ry:
		return e.top[ryi*e.nx+rxi]
	case ryi >= e.ny-ry:
		return e.bottom[(ryi-(e.ny-ry))*e.nx+rxi]
	default:
		panic(fmt.Sprintf("checksum: edge snapshot queried at interior point (%d,%d)", x, y))
	}
}

// LiveEdges wraps the full t-buffer as an EdgeSource — the zero-copy path
// used by the online protector.
func LiveEdges[T num.Float](g *grid.Grid[T], bc grid.Boundary, constVal T) EdgeSource[T] {
	return grid.BoundedGrid[T]{G: g, Cond: bc, ConstVal: constVal}
}
