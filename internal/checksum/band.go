package checksum

import (
	"fmt"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// InterpolateBBand interpolates the column checksums of a horizontal band
// of a larger domain — the unit of the paper's distributed-memory
// decomposition, where each rank owns a band of rows and exchanges halo
// rows with its neighbours instead of applying a boundary condition in y.
//
// bPrevExt carries the previous iteration's checksums of the extended band:
// entries [0, h) are the checksums of the h halo rows above, [h, h+ny) the
// band's own rows, and [h+ny, h+ny+h) the halo rows below (h >= RadiusY).
// Halo checksums are plain row sums of the received halo rows, so ranks
// need no extra communication beyond the halo exchange itself.
//
// The x-direction boundary terms beta are evaluated exactly as in
// InterpolateB; edges must serve y values across the extended range
// [-h, ny+h) and resolve x outside [0, nx) to whatever the chunk's
// x-neighbour data is: the global boundary condition for a full-width band
// (BandEdges), or the materialised halo columns of a tile (TileEdges) —
// that is how halo columns enter the beta terms of the 2-D decomposition.
func (ip *Interp2D[T]) InterpolateBBand(bPrevExt []T, h int, edges EdgeSource[T], bNext []T) {
	if len(bPrevExt) != ip.ny+2*h || len(bNext) != ip.ny {
		panic(fmt.Sprintf("checksum: InterpolateBBand lengths %d/%d for ny=%d h=%d",
			len(bPrevExt), len(bNext), ip.ny, h))
	}
	if ry := ip.op.St.RadiusY(); h < ry {
		panic(fmt.Sprintf("checksum: halo width %d below stencil radius %d", h, ry))
	}
	if te, ok := edges.(TileEdges[T]); ok && !ip.DropBoundaryTerms &&
		te.HX >= ip.op.St.RadiusX() && te.HY >= ip.op.St.RadiusY() {
		ip.interpolateBBandTile(bPrevExt, h, te, bNext)
		return
	}
	for y := 0; y < ip.ny; y++ {
		v := ip.cB[y]
		for _, p := range ip.op.St.Points {
			yy := y + p.DY
			// Halo rows substitute for boundary resolution in y:
			// yy in [-h, ny+h) indexes bPrevExt directly. The beta
			// terms always apply here: for a partial-width chunk the
			// entering/leaving columns are real neighbour data, and
			// for a full-width band under periodic boundaries they
			// cancel to exactly zero on their own — so no skip is
			// valid in general.
			term := bPrevExt[yy+h]
			if p.DX != 0 && !ip.DropBoundaryTerms {
				term += ip.beta(edges, p.DX, yy)
			}
			v += p.W * term
		}
		bNext[y] = v
	}
}

// interpolateBBandTile is InterpolateBBand over a materialised tile frame,
// with the beta terms tabulated in one row-major pass over the extended
// storage: each row touched once fills every distinct DX's table entry from
// the handful of edge cells it holds (two cache lines per row instead of
// one strided column walk per entering/leaving column), and the main loop
// reads the tables instead of paying one virtual EdgeSource.At call per
// ghost value per stencil point per row. Each table entry accumulates the
// same addends in the same order as the scalar beta (entering columns
// ascending x first, then leaving columns ascending x), and the stencil
// points are applied one branch-free contiguous pass each — the DX test
// hoisted out of the row loop — in the same point order and with the same
// per-entry accumulation sequence as the generic path, so the results are
// bit-identical to it.
func (ip *Interp2D[T]) interpolateBBandTile(bPrevExt []T, h int, te TileEdges[T], bNext []T) {
	rx, ry := ip.op.St.RadiusX(), ip.op.St.RadiusY()
	if !ip.betaPrimed {
		ip.ensureBetaTables()
		if ip.betaMidPrimed {
			ip.fillBetaRows(te, 0, ry)
			ip.fillBetaRows(te, ry+ip.ny, ip.ny+2*ry)
		} else {
			ip.fillBetaRows(te, 0, ip.ny+2*ry)
		}
	}
	ip.betaPrimed, ip.betaMidPrimed = false, false
	copy(bNext, ip.cB)
	for _, p := range ip.op.St.Points {
		w := p.W
		src := bPrevExt[p.DY+h : p.DY+h+ip.ny]
		if p.DX == 0 {
			for y, s := range src {
				bNext[y] += w * s
			}
			continue
		}
		tab := ip.betaLookup[p.DX+rx][p.DY+ry : p.DY+ry+ip.ny]
		for y, s := range src {
			bNext[y] += w * (s + tab[y])
		}
	}
}

// PrimeBetaTablesMid fills the beta-table rows that read only the tile's
// own rows (yy in [0, ny)) — callable as soon as the x halos are folded in,
// while the unpacked edge columns' cache lines are still warm, before the
// tile sweeps evict them. The ghost-row entries (yy outside [0, ny)) read
// halo rows the y exchange has not delivered yet; PrimeBetaTables fills
// those afterwards. The tile's own rows must not change between this call
// and the interpolation that consumes the tables (halo-row refreshes are
// fine — they only affect the rows PrimeBetaTables covers).
func (ip *Interp2D[T]) PrimeBetaTablesMid(edges EdgeSource[T]) {
	te, ok := edges.(TileEdges[T])
	if !ok || ip.DropBoundaryTerms ||
		te.HX < ip.op.St.RadiusX() || te.HY < ip.op.St.RadiusY() {
		return
	}
	ry := ip.op.St.RadiusY()
	ip.ensureBetaTables()
	ip.fillBetaRows(te, ry, ry+ip.ny)
	ip.betaMidPrimed = true
}

// PrimeBetaTables fills the beta tables the next InterpolateBBand call
// would otherwise fill itself, letting the caller schedule the edge-column
// reads while the halo exchange still has those cache lines warm instead
// of after a full tile sweep has evicted them. After PrimeBetaTablesMid it
// completes just the ghost-row entries; otherwise it fills everything. A
// no-op unless edges is a TileEdges frame the fast path accepts; the edge
// values must not change between priming and the interpolation that
// consumes it.
func (ip *Interp2D[T]) PrimeBetaTables(edges EdgeSource[T]) {
	te, ok := edges.(TileEdges[T])
	if !ok || ip.DropBoundaryTerms ||
		te.HX < ip.op.St.RadiusX() || te.HY < ip.op.St.RadiusY() {
		return
	}
	ry := ip.op.St.RadiusY()
	ip.ensureBetaTables()
	if ip.betaMidPrimed {
		ip.fillBetaRows(te, 0, ry)
		ip.fillBetaRows(te, ry+ip.ny, ip.ny+2*ry)
		ip.betaMidPrimed = false
	} else {
		ip.fillBetaRows(te, 0, ip.ny+2*ry)
	}
	ip.betaPrimed = true
}

// ensureBetaTables allocates the beta tables on first use.
func (ip *Interp2D[T]) ensureBetaTables() {
	if ip.betaDxs != nil || ip.betaTab != nil {
		return
	}
	rx, ry := ip.op.St.RadiusX(), ip.op.St.RadiusY()
	span := ip.ny + 2*ry // yy range [-ry, ny+ry)
	present := make([]bool, 2*rx+1)
	minDY, maxDY := ry+1, -ry-1
	for _, p := range ip.op.St.Points {
		if p.DX != 0 {
			present[p.DX+rx] = true
			minDY, maxDY = min(minDY, p.DY), max(maxDY, p.DY)
		}
	}
	for dx := -rx; dx <= rx; dx++ {
		if dx != 0 && present[dx+rx] {
			ip.betaDxs = append(ip.betaDxs, dx)
		}
	}
	if len(ip.betaDxs) > 0 {
		ip.betaLoJ, ip.betaHiJ = minDY+ry, ip.ny+maxDY+ry
	}
	ip.betaTab = make([]T, max(len(ip.betaDxs)*span, 1))
	ip.betaLookup = make([][]T, 2*rx+1)
	for i, dx := range ip.betaDxs {
		ip.betaLookup[dx+rx] = ip.betaTab[i*span : (i+1)*span]
	}
}

// fillBetaRows (re)computes every distinct DX's beta-table entries for the
// table rows [j0, j1) (row j holds the terms at yy = j - RadiusY) from the
// tile frame's current edge values, clipped to the rows any interpolation
// reads. Tables must already be allocated.
func (ip *Interp2D[T]) fillBetaRows(te TileEdges[T], j0, j1 int) {
	j0, j1 = max(j0, ip.betaLoJ), min(j1, ip.betaHiJ)
	rx, ry := ip.op.St.RadiusX(), ip.op.St.RadiusY()
	ext := te.Ext.Data()
	stride := te.Ext.Nx()
	for j := j0; j < j1; j++ {
		base := (j-ry+te.HY)*stride + te.HX // index of local x=0 in row yy=j-ry
		for _, dx := range ip.betaDxs {
			var v T
			if dx < 0 {
				for x := dx; x < 0; x++ { // ghost columns entering on the left
					v += ext[base+x]
				}
				for x := ip.nx + dx; x < ip.nx; x++ { // domain columns leaving on the right
					v -= ext[base+x]
				}
			} else {
				for x := ip.nx; x < ip.nx+dx; x++ { // ghost columns entering on the right
					v += ext[base+x]
				}
				for x := 0; x < dx; x++ { // domain columns leaving on the left
					v -= ext[base+x]
				}
			}
			ip.betaLookup[dx+rx][j] = v
		}
	}
}

// InterpolateABand interpolates the band's row checksums
// (a[x] = Σ_{y in band} u(x,y)). The y-window shift terms alpha read actual
// halo rows through edges (which must cover y in [-h, ny+h)); the
// x-resolution of ã uses the global boundary condition, exactly as in the
// full-domain case.
func (ip *Interp2D[T]) InterpolateABand(aPrev []T, edges EdgeSource[T], aNext []T) {
	if len(aPrev) != ip.nx || len(aNext) != ip.nx {
		panic(fmt.Sprintf("checksum: InterpolateABand length %d/%d, want %d", len(aPrev), len(aNext), ip.nx))
	}
	bc := ip.op.BC
	for x := 0; x < ip.nx; x++ {
		v := ip.cA[x]
		for _, p := range ip.op.St.Points {
			xx := x + p.DX
			term := resolve1D(aPrev, xx, bc, ip.ghostSumA)
			if p.DY != 0 {
				// The window-shift rows are real halo data, never a
				// boundary artefact, so the terms are always needed
				// (and DropBoundaryTerms does not apply).
				term += ip.alpha(edges, p.DY, xx)
			}
			v += p.W * term
		}
		aNext[x] = v
	}
}

// InterpolateABlock interpolates the row checksums of a block whose
// x-neighbour data comes from horizontally adjacent blocks rather than a
// boundary condition: aPrevExt carries [0,h) halo entries on the left,
// [h, h+nx) the block's own entries, [h+nx, h+nx+h) halo entries on the
// right (h >= RadiusX). The y-window-shift terms alpha always apply (the
// rows entering and leaving the block's y-window are real neighbour data),
// so DropBoundaryTerms is ignored here. Together with InterpolateBBand
// (which serves equally for a block's column checksums) this gives exact
// interpolation for arbitrary interior chunks of a larger domain — the
// per-chunk deployment of the paper's Section 3.4.
func (ip *Interp2D[T]) InterpolateABlock(aPrevExt []T, h int, edges EdgeSource[T], aNext []T) {
	if len(aPrevExt) != ip.nx+2*h || len(aNext) != ip.nx {
		panic(fmt.Sprintf("checksum: InterpolateABlock lengths %d/%d for nx=%d h=%d",
			len(aPrevExt), len(aNext), ip.nx, h))
	}
	if rx := ip.op.St.RadiusX(); h < rx {
		panic(fmt.Sprintf("checksum: halo width %d below stencil radius %d", h, rx))
	}
	for x := 0; x < ip.nx; x++ {
		v := ip.cA[x]
		for _, p := range ip.op.St.Points {
			xx := x + p.DX
			term := aPrevExt[xx+h]
			if p.DY != 0 {
				term += ip.alpha(edges, p.DY, xx)
			}
			v += p.W * term
		}
		aNext[x] = v
	}
}

// OffsetEdges translates an EdgeSource into a sub-rectangle's local
// coordinate frame: local (x, y) reads the parent source at
// (x+X0, y+Y0). A block's interpolator (built with the block's dimensions)
// evaluates its alpha/beta terms in block-local coordinates; wrapping the
// global domain's live edges in an OffsetEdges hands it the right window.
type OffsetEdges[T num.Float] struct {
	Src    EdgeSource[T]
	X0, Y0 int
}

// At reads the parent source at the translated coordinates.
func (oe OffsetEdges[T]) At(x, y int) T { return oe.Src.At(x+oe.X0, y+oe.Y0) }

// TileEdges adapts a fully extended tile grid — halo columns and halo rows
// (including the corner blocks) materialised in storage — to the EdgeSource
// contract of the tile interpolators: neither axis is boundary-resolved,
// because every ghost value a beta/alpha term can ask for is real data in
// the extended frame, either received from a neighbour or synthesised from
// the global boundary condition by the halo exchange. This is the edge
// source of the 2-D rank-grid decomposition, where InterpolateBBand's
// x-direction beta terms read halo columns exactly the way halo row sums
// enter the y terms.
type TileEdges[T num.Float] struct {
	Ext    *grid.Grid[T] // extended tile: nxLocal+2HX columns, nyLocal+2HY rows
	HX, HY int           // halo widths
}

// At returns ũ(x, y) of the tile, with x in [-HX, nxLocal+HX) and y in
// [-HY, nyLocal+HY) mapped into the extended storage.
func (te TileEdges[T]) At(x, y int) T { return te.Ext.At(x+te.HX, y+te.HY) }

// BandEdges adapts an extended band grid (ny+2h rows with the halo rows in
// storage) to the EdgeSource contract of the band interpolators: y is
// offset by the halo width and never boundary-resolved (halo rows are real
// data), while x resolves with the global domain's boundary condition.
type BandEdges[T num.Float] struct {
	Ext      *grid.Grid[T] // extended band: nx columns, nyLocal+2H rows
	H        int           // halo width
	BC       grid.Boundary // global boundary condition in x
	ConstVal T             // ghost value for BC == grid.Constant
}

// At returns ũ(x, y) of the band, with y in [-H, nyLocal+H) mapped into
// the extended storage and x resolved by the global boundary condition.
func (be BandEdges[T]) At(x, y int) T {
	rx, ok := be.BC.ResolveIndex(x, be.Ext.Nx())
	if !ok {
		if be.BC == grid.Constant {
			return be.ConstVal
		}
		return 0
	}
	return be.Ext.At(rx, y+be.H)
}
