package checksum

import (
	"math/rand"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// randomStencil3D builds a random 3-D stencil with k points and per-axis
// radius 1 (the common 3-D case; deeper z-reach is covered by the 7-point
// weights test varying dz below).
func randomStencil3D(rng *rand.Rand, k int) *stencil.Stencil[float64] {
	st := &stencil.Stencil[float64]{Name: "random3d"}
	seen := map[[3]int]bool{}
	for len(st.Points) < k {
		dx := rng.Intn(3) - 1
		dy := rng.Intn(3) - 1
		dz := rng.Intn(3) - 1
		if seen[[3]int{dx, dy, dz}] {
			continue
		}
		seen[[3]int{dx, dy, dz}] = true
		w := 2*rng.Float64() - 1
		if w == 0 {
			w = 0.25
		}
		st.Points = append(st.Points, stencil.Point[float64]{DX: dx, DY: dy, DZ: dz, W: w})
	}
	return st
}

// TestTheorem1Invariance3D extends the central property test to 3-D
// domains: each layer's interpolated checksums (with cross-layer coupling)
// must match the direct checksums of the swept domain for every boundary
// condition.
func TestTheorem1Invariance3D(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		nx := 4 + rng.Intn(10)
		ny := 4 + rng.Intn(10)
		nz := 2 + rng.Intn(5)
		st := randomStencil3D(rng, 1+rng.Intn(9))
		bc := allBoundaries[rng.Intn(len(allBoundaries))]
		var cfield *grid.Grid3D[float64]
		if rng.Intn(2) == 0 {
			cfield = grid.New3D[float64](nx, ny, nz)
			cfield.FillFunc(func(x, y, z int) float64 { return rng.Float64() - 0.5 })
		}
		op := &stencil.Op3D[float64]{St: st, BC: bc, BCValue: 2*rng.Float64() - 1, C: cfield}
		if op.Validate(nx, ny, nz) != nil {
			continue
		}

		src := grid.New3D[float64](nx, ny, nz)
		src.FillFunc(func(x, y, z int) float64 { return 2*rng.Float64() - 1 })
		dst := grid.New3D[float64](nx, ny, nz)

		// Previous-iteration state: per-layer checksums and edges.
		prevA := make([][]float64, nz)
		prevB := make([][]float64, nz)
		edges := make([]EdgeSource[float64], nz)
		for z := 0; z < nz; z++ {
			v := NewVectors[float64](nx, ny)
			v.Compute(src.Layer(z))
			prevA[z], prevB[z] = v.A, v.B
			edges[z] = LiveEdges(src.Layer(z), bc, op.BCValue)
		}

		op.Sweep(dst, src)

		ip, err := NewInterp3D(op, nx, ny, nz)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const tol = 1e-9
		for z := 0; z < nz; z++ {
			direct := NewVectors[float64](nx, ny)
			direct.Compute(dst.Layer(z))
			interpA := make([]float64, nx)
			interpB := make([]float64, ny)
			ip.InterpolateA(z, prevA, edges, interpA)
			ip.InterpolateB(z, prevB, edges, interpB)
			for x := 0; x < nx; x++ {
				if num.RelErr(interpA[x], direct.A[x], 1e-6) > tol {
					t.Fatalf("trial %d (%s, bc=%s, %dx%dx%d): layer %d A[%d] direct %.12g interp %.12g",
						trial, st, bc, nx, ny, nz, z, x, direct.A[x], interpA[x])
				}
			}
			for y := 0; y < ny; y++ {
				if num.RelErr(interpB[y], direct.B[y], 1e-6) > tol {
					t.Fatalf("trial %d (%s, bc=%s, %dx%dx%d): layer %d B[%d] direct %.12g interp %.12g",
						trial, st, bc, nx, ny, nz, z, y, direct.B[y], interpB[y])
				}
			}
		}
	}
}

// TestSevenPoint3DInvariance pins the HotSpot-shaped kernel specifically,
// with asymmetric z weights (the thermal model's above/below conductances
// differ) under Clamp boundaries.
func TestSevenPoint3DInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny, nz := 12, 10, 6
	st := stencil.SevenPoint3D(0.4, 0.1, 0.1, 0.12, 0.12, 0.05, 0.11)
	op := &stencil.Op3D[float64]{St: st, BC: grid.Clamp}
	src := grid.New3D[float64](nx, ny, nz)
	src.FillFunc(func(x, y, z int) float64 { return 300 + 20*rng.Float64() })
	dst := grid.New3D[float64](nx, ny, nz)

	prevB := make([][]float64, nz)
	edges := make([]EdgeSource[float64], nz)
	for z := 0; z < nz; z++ {
		v := NewVectors[float64](nx, ny)
		v.Compute(src.Layer(z))
		prevB[z] = v.B
		edges[z] = LiveEdges(src.Layer(z), grid.Clamp, 0)
	}
	op.Sweep(dst, src)
	ip, err := NewInterp3D(op, nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < nz; z++ {
		direct := NewVectors[float64](nx, ny)
		direct.Compute(dst.Layer(z))
		interpB := make([]float64, ny)
		ip.InterpolateB(z, prevB, edges, interpB)
		for y := 0; y < ny; y++ {
			if num.RelErr(interpB[y], direct.B[y], 1e-6) > 1e-10 {
				t.Fatalf("layer %d B[%d]: direct %.12g interp %.12g", z, y, direct.B[y], interpB[y])
			}
		}
	}
}
