package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// File format: a fixed little-endian header, the checksum vector, the
// domain data, and a trailing CRC-32 (Castagnoli) over everything before
// it. A checkpoint whose CRC does not match is reported as corrupt — a
// checkpoint file is itself memory/disk state and gets no exemption from
// the fault model.
const (
	fileMagic   = 0x53414246 // "FBAS" — stencil ABFT snapshot
	fileVersion = 1
)

type fileHeader struct {
	Magic     uint32
	Version   uint32
	ElemBits  uint32 // 32 or 64
	Iteration int64
	Nx, Ny    int64
	ChecksumN int64 // number of checksum entries stored
}

// WriteFile atomically writes a checkpoint of g (plus its verified column
// checksums and iteration number) to path: the data goes to a temporary
// file in the same directory which is renamed over path on success, so a
// crash mid-write never destroys the previous checkpoint.
func WriteFile[T num.Float](path string, iter int, g *grid.Grid[T], b []T) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	w := bufio.NewWriter(io.MultiWriter(tmp, crc))

	hdr := fileHeader{
		Magic:     fileMagic,
		Version:   fileVersion,
		ElemBits:  uint32(num.BitWidth[T]()),
		Iteration: int64(iter),
		Nx:        int64(g.Nx()),
		Ny:        int64(g.Ny()),
		ChecksumN: int64(len(b)),
	}
	if err = binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err = writeFloats(w, b); err != nil {
		return err
	}
	if err = writeFloats(w, g.Data()); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = binary.Write(tmp, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a checkpoint written by WriteFile, returning the domain,
// the stored checksum vector and the iteration number. It verifies the
// trailing CRC and every header field before trusting the payload.
func ReadFile[T num.Float](path string) (*grid.Grid[T], []T, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(raw) < 4 {
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: truncated", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	wantCRC := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != wantCRC {
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: CRC mismatch (corrupt checkpoint)", path)
	}

	r := &sliceReader{buf: body}
	var hdr fileHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	switch {
	case hdr.Magic != fileMagic:
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: not a checkpoint file", path)
	case hdr.Version != fileVersion:
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: unsupported version %d", path, hdr.Version)
	case hdr.ElemBits != uint32(num.BitWidth[T]()):
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: element width %d, want %d", path, hdr.ElemBits, num.BitWidth[T]())
	case hdr.Nx <= 0 || hdr.Ny <= 0 || hdr.ChecksumN < 0:
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: invalid dimensions", path)
	}
	want := int(hdr.ChecksumN)*num.BitWidth[T]()/8 + int(hdr.Nx*hdr.Ny)*num.BitWidth[T]()/8
	if r.remaining() != want {
		return nil, nil, 0, fmt.Errorf("checkpoint: %s: payload %d bytes, want %d", path, r.remaining(), want)
	}

	b := make([]T, hdr.ChecksumN)
	if err := readFloats(r, b); err != nil {
		return nil, nil, 0, err
	}
	g := grid.New[T](int(hdr.Nx), int(hdr.Ny))
	if err := readFloats(r, g.Data()); err != nil {
		return nil, nil, 0, err
	}
	return g, b, int(hdr.Iteration), nil
}

// PeekIter verifies a checkpoint file's CRC and returns the iteration it
// snapshots, without decoding the payload and without caring about the
// element type — what a coordinator scanning many ranks' rotations for a
// common restart generation needs.
func PeekIter(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(raw) < 4 {
		return 0, fmt.Errorf("checkpoint: %s: truncated", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint: %s: CRC mismatch (corrupt checkpoint)", path)
	}
	var hdr fileHeader
	if err := binary.Read(&sliceReader{buf: body}, binary.LittleEndian, &hdr); err != nil {
		return 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if hdr.Magic != fileMagic {
		return 0, fmt.Errorf("checkpoint: %s: not a checkpoint file", path)
	}
	if hdr.Version != fileVersion {
		return 0, fmt.Errorf("checkpoint: %s: unsupported version %d", path, hdr.Version)
	}
	return int(hdr.Iteration), nil
}

// sliceReader is a minimal io.Reader over a byte slice that tracks the
// remaining length (bytes.Reader would work too; this avoids the import
// for two call sites).
type sliceReader struct{ buf []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (r *sliceReader) remaining() int { return len(r.buf) }

func writeFloats[T num.Float](w io.Writer, xs []T) error {
	var scratch [8]byte
	for _, x := range xs {
		var n int
		switch v := any(x).(type) {
		case float32:
			binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(v))
			n = 4
		case float64:
			binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
			n = 8
		}
		if _, err := w.Write(scratch[:n]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats[T num.Float](r io.Reader, xs []T) error {
	width := num.BitWidth[T]() / 8
	var scratch [8]byte
	for i := range xs {
		if _, err := io.ReadFull(r, scratch[:width]); err != nil {
			return err
		}
		if width == 4 {
			xs[i] = T(math.Float32frombits(binary.LittleEndian.Uint32(scratch[:4])))
		} else {
			xs[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(scratch[:8])))
		}
	}
	return nil
}
