package checkpoint

import (
	"testing"

	"stencilabft/internal/grid"
)

func TestStore2DRoundTrip(t *testing.T) {
	g := grid.New[float64](4, 3)
	g.FillFunc(func(x, y int) float64 { return float64(x + 10*y) })
	b := []float64{1, 2, 3}

	var s Store2D[float64]
	if s.Valid() {
		t.Fatal("empty store reports valid")
	}
	s.Save(7, g, b)
	if !s.Valid() || s.Iteration() != 7 {
		t.Fatal("save metadata wrong")
	}

	// Mutate, then restore.
	g.Fill(-1)
	b[0] = -1
	if iter := s.Restore(g, b); iter != 7 {
		t.Fatalf("restore iteration %d", iter)
	}
	if g.At(2, 1) != 12 || b[0] != 1 {
		t.Fatal("restore did not recover state")
	}

	st := s.Stats()
	if st.Saves != 1 || st.Restores != 1 || st.PointsCopied != 24 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStore2DSaveIsSnapshot(t *testing.T) {
	g := grid.New[float64](2, 2)
	g.Fill(5)
	var s Store2D[float64]
	s.Save(0, g, []float64{10, 10})
	g.Fill(9) // later mutation must not leak into the checkpoint
	restored := grid.New[float64](2, 2)
	b := make([]float64, 2)
	s.Restore(restored, b)
	if restored.At(0, 0) != 5 {
		t.Fatal("checkpoint aliased the live grid")
	}
}

func TestStore2DOverwrite(t *testing.T) {
	g := grid.New[float64](2, 2)
	var s Store2D[float64]
	g.Fill(1)
	s.Save(1, g, []float64{2, 2})
	g.Fill(2)
	s.Save(2, g, []float64{4, 4})
	b := make([]float64, 2)
	if s.Restore(g, b); g.At(0, 0) != 2 || b[0] != 4 {
		t.Fatal("overwrite kept stale state")
	}
}

func TestStore2DRestoreWithoutSavePanics(t *testing.T) {
	var s Store2D[float32]
	defer func() {
		if recover() == nil {
			t.Fatal("restore without save did not panic")
		}
	}()
	s.Restore(grid.New[float32](2, 2), make([]float32, 2))
}

func TestStore3DRoundTrip(t *testing.T) {
	g := grid.New3D[float32](3, 2, 2)
	g.FillFunc(func(x, y, z int) float32 { return float32(x + 10*y + 100*z) })
	b := [][]float32{{1, 2}, {3, 4}}

	var s Store3D[float32]
	s.Save(16, g, b)
	g.Fill(0)
	b[1][0] = -9
	if iter := s.Restore(g, b); iter != 16 {
		t.Fatalf("iteration %d", iter)
	}
	if g.At(2, 1, 1) != 112 || b[1][0] != 3 {
		t.Fatal("3-D restore incomplete")
	}
	if s.Stats().Saves != 1 || s.Stats().Restores != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestStore3DShapeMismatchPanics(t *testing.T) {
	g := grid.New3D[float32](2, 2, 2)
	var s Store3D[float32]
	s.Save(0, g, [][]float32{{0, 0}, {0, 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	s.Restore(grid.New3D[float32](3, 2, 2), [][]float32{{0, 0}, {0, 0}})
}
