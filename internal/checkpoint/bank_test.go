package checkpoint

import (
	"testing"
)

// TestBank2DTwoGenerationRetention pins the bank's retention policy: the
// two most recent generations per key survive, older ones are gone, and
// restores match on the exact iteration only.
func TestBank2DTwoGenerationRetention(t *testing.T) {
	var b Bank2D[float64]
	if g := b.Gens(3); g != nil {
		t.Fatalf("empty bank lists generations %v", g)
	}

	b.Save(3, 16, []float64{1, 2})
	b.Save(3, 32, []float64{3, 4})
	b.Save(3, 48, []float64{5, 6})

	if g := b.Gens(3); len(g) != 2 || g[0] != 48 || g[1] != 32 {
		t.Fatalf("Gens = %v, want [48 32]", g)
	}
	dst := make([]float64, 2)
	if b.Restore(3, 16, dst) {
		t.Fatal("restored an evicted generation")
	}
	if !b.Restore(3, 32, dst) || dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("generation 32 restore = %v", dst)
	}
	if !b.Restore(3, 48, dst) || dst[0] != 5 || dst[1] != 6 {
		t.Fatalf("generation 48 restore = %v", dst)
	}
	if b.Restore(4, 48, dst) {
		t.Fatal("restored an unknown key")
	}
}

// TestBank2DCopySemantics pins that Save copies its input and Data exposes
// the retained snapshot without aliasing the caller's slice.
func TestBank2DCopySemantics(t *testing.T) {
	var b Bank2D[float32]
	src := []float32{7, 8, 9}
	b.Save(0, 5, src)
	src[0] = -1
	if d := b.Data(0, 5); d == nil || d[0] != 7 {
		t.Fatalf("bank aliased the caller's slice: %v", d)
	}
	if d := b.Data(0, 6); d != nil {
		t.Fatalf("Data matched a wrong iteration: %v", d)
	}
}

// TestBank2DDropAndStats pins ward hand-off (Drop forgets a key) and the
// cost accounting the stats report surfaces.
func TestBank2DDropAndStats(t *testing.T) {
	var b Bank2D[float64]
	b.Save(1, 10, make([]float64, 4))
	b.Save(2, 10, make([]float64, 6))
	dst := make([]float64, 6)
	b.Restore(2, 10, dst)

	b.Drop(2)
	if b.Restore(2, 10, dst) {
		t.Fatal("restored a dropped key")
	}
	if g := b.Gens(1); len(g) != 1 || g[0] != 10 {
		t.Fatalf("unrelated key disturbed by Drop: %v", g)
	}

	st := b.Stats()
	if st.Saves != 2 || st.Restores != 1 || st.PointsCopied != 4+6+6 {
		t.Fatalf("stats = %+v", st)
	}
}
