package checkpoint

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"stencilabft/internal/grid"
)

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := grid.New[float32](13, 9)
	g.FillFunc(func(x, y int) float32 { return rng.Float32() * 100 })
	b := make([]float32, 9)
	for i := range b {
		b[i] = rng.Float32()
	}
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFile(path, 42, g, b); err != nil {
		t.Fatal(err)
	}
	g2, b2, iter, err := ReadFile[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 42 {
		t.Fatalf("iteration %d", iter)
	}
	if g2.MaxAbsDiff(g) != 0 {
		t.Fatal("domain not restored bit-exactly")
	}
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("checksums not restored")
		}
	}
}

func TestFileRoundTripFloat64SpecialValues(t *testing.T) {
	g := grid.New[float64](3, 2)
	g.Set(0, 0, math.Inf(1))
	g.Set(1, 0, -0.0)
	g.Set(2, 0, math.SmallestNonzeroFloat64)
	g.Set(0, 1, math.MaxFloat64)
	path := filepath.Join(t.TempDir(), "ckpt64.bin")
	if err := WriteFile(path, 0, g, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	g2, _, _, err := ReadFile[float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(g2.At(0, 0)) != math.Float64bits(g.At(0, 0)) ||
		math.Float64bits(g2.At(1, 0)) != math.Float64bits(g.At(1, 0)) ||
		math.Float64bits(g2.At(2, 0)) != math.Float64bits(g.At(2, 0)) ||
		math.Float64bits(g2.At(0, 1)) != math.Float64bits(g.At(0, 1)) {
		t.Fatal("special values not preserved bit-exactly")
	}
}

func TestFileDetectsCorruption(t *testing.T) {
	g := grid.New[float32](8, 8)
	g.Fill(3)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFile(path, 7, g, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10 // flip a bit mid-payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFile[float32](path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestFileRejectsWrongWidth(t *testing.T) {
	g := grid.New[float32](4, 4)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFile(path, 0, g, make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFile[float64](path); err == nil {
		t.Fatal("float64 read of float32 checkpoint accepted")
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFile[float32](path); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, _, err := ReadFile[float32](filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFileOverwriteIsAtomicShape(t *testing.T) {
	// Writing over an existing checkpoint must leave a readable file
	// (the temp-and-rename protocol) and no stray temp files.
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	g := grid.New[float32](4, 4)
	for i := 0; i < 3; i++ {
		g.Fill(float32(i))
		if err := WriteFile(path, i, g, make([]float32, 4)); err != nil {
			t.Fatal(err)
		}
	}
	g2, _, iter, err := ReadFile[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 2 || g2.At(0, 0) != 2 {
		t.Fatal("latest checkpoint not the visible one")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files left behind: %v", entries)
	}
}
