package checkpoint

import "stencilabft/internal/num"

// Bank2D holds the buddy-checkpoint copies a rank keeps — its own snapshot
// plus one per ward (the neighbours whose buddy it is) — with the last two
// generations retained per key. Two generations is the fail-stop minimum:
// a rank can die while the newest checkpoint round is still in flight, in
// which case some survivors hold generation k and others only k-1, and
// recovery rolls the cluster back to the newest generation everyone still
// has. Keys are rank ids; the zero value is empty.
//
// Bank2D is not safe for concurrent use; the resilience layer serialises
// access per hosted rank.
type Bank2D[T num.Float] struct {
	slots map[int]*bankSlot[T]
	stats Stats
}

// bankSlot keeps a key's two most recent snapshots, alternating between two
// entries so a save reuses the evicted generation's storage.
type bankSlot[T num.Float] struct {
	cur, prev bankEntry[T]
}

type bankEntry[T num.Float] struct {
	valid bool
	iter  int
	data  []T
}

// Save records data as key's snapshot at iteration iter, demoting the
// previous newest generation to the retained older one. The data is copied
// in; the caller keeps ownership of its slice.
func (b *Bank2D[T]) Save(key, iter int, data []T) {
	copy(b.SaveSlot(key, iter, len(data)), data)
}

// SaveSlot rotates key's retained generations exactly like Save and
// returns the newest slot's bank-owned buffer, sized to n, for the caller
// to assemble the snapshot in place — Save minus the staging copy, for
// producers that can serialise directly (the buddy engine packs a rank's
// state straight into its slot). The slot is registered as key's iter
// snapshot immediately; the caller must fill it before the snapshot can be
// read back. The cost counters advance as for Save: the caller writes the
// same n points, just without the intermediate buffer.
func (b *Bank2D[T]) SaveSlot(key, iter, n int) []T {
	if b.slots == nil {
		b.slots = make(map[int]*bankSlot[T])
	}
	s, ok := b.slots[key]
	if !ok {
		s = &bankSlot[T]{}
		b.slots[key] = s
	}
	s.prev, s.cur = s.cur, s.prev
	if len(s.cur.data) != n {
		s.cur.data = make([]T, n)
	}
	s.cur.iter = iter
	s.cur.valid = true
	b.stats.Saves++
	b.stats.PointsCopied += int64(n)
	return s.cur.data
}

// Gens lists the iteration numbers of key's retained snapshots, newest
// first. Empty when nothing was saved under key.
func (b *Bank2D[T]) Gens(key int) []int {
	s, ok := b.slots[key]
	if !ok {
		return nil
	}
	var out []int
	if s.cur.valid {
		out = append(out, s.cur.iter)
	}
	if s.prev.valid {
		out = append(out, s.prev.iter)
	}
	return out
}

// Restore copies key's snapshot taken at exactly iteration iter into dst
// and reports whether one was retained. Exact-generation matching is
// deliberate: the recovery protocol has already agreed on the rollback
// iteration, and silently restoring a different one would desynchronise
// the lockstep.
func (b *Bank2D[T]) Restore(key, iter int, dst []T) bool {
	data := b.Data(key, iter)
	if data == nil {
		return false
	}
	copy(dst, data)
	b.stats.Restores++
	b.stats.PointsCopied += int64(len(dst))
	return true
}

// Data exposes key's snapshot at exactly iteration iter without copying —
// how the recovery protocol streams a dead rank's buddy copy onto the wire.
// Callers must treat it as read-only. Nil when not retained.
func (b *Bank2D[T]) Data(key, iter int) []T {
	s, ok := b.slots[key]
	if !ok {
		return nil
	}
	for _, e := range []*bankEntry[T]{&s.cur, &s.prev} {
		if e.valid && e.iter == iter {
			return e.data
		}
	}
	return nil
}

// Drop forgets every snapshot retained under key — called when a ward's
// ownership moves during recovery.
func (b *Bank2D[T]) Drop(key int) { delete(b.slots, key) }

// Trim invalidates every snapshot newer than maxIter, across all keys.
// Recovery calls it after agreeing on a rollback iteration: a snapshot
// taken past the rollback point describes a timeline that no longer exists
// and must not satisfy a later exact-generation restore.
func (b *Bank2D[T]) Trim(maxIter int) {
	for _, s := range b.slots {
		for _, e := range []*bankEntry[T]{&s.cur, &s.prev} {
			if e.valid && e.iter > maxIter {
				e.valid = false
			}
		}
	}
}

// Stats returns the accumulated cost counters across all keys.
func (b *Bank2D[T]) Stats() Stats { return b.stats }
