// Package checkpoint provides the in-memory domain checkpoints the offline
// ABFT protector rolls back to (paper Section 4.2: "lightweight memory copy
// of the current state of the grid and of the checksums"). Costs are
// tracked so the campaign harness can attribute the offline method's
// slowdown to checkpointing versus recomputation, as Figure 11 does.
package checkpoint

import (
	"fmt"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Stats counts checkpoint activity.
type Stats struct {
	Saves        int
	Restores     int
	PointsCopied int64
}

// Store2D checkpoints one 2-D domain together with its per-iteration
// metadata (iteration number and the verified column checksum). The zero
// value is empty; Save initialises it.
type Store2D[T num.Float] struct {
	stats     Stats
	valid     bool
	iteration int
	domain    *grid.Grid[T]
	b         []T
}

// Save records the domain, its verified column checksum and the iteration
// number, replacing any previous checkpoint.
func (s *Store2D[T]) Save(iter int, g *grid.Grid[T], b []T) {
	if s.domain == nil || !s.domain.SameShape(g) {
		s.domain = g.Clone()
	} else {
		s.domain.CopyFrom(g)
	}
	if len(s.b) != len(b) {
		s.b = make([]T, len(b))
	}
	copy(s.b, b)
	s.iteration = iter
	s.valid = true
	s.stats.Saves++
	s.stats.PointsCopied += int64(g.Len())
}

// Valid reports whether a checkpoint is available.
func (s *Store2D[T]) Valid() bool { return s.valid }

// Iteration returns the iteration number of the stored checkpoint.
func (s *Store2D[T]) Iteration() int { return s.iteration }

// Restore copies the checkpointed domain into g and the stored checksum
// into b, returning the checkpoint's iteration number. It panics if no
// checkpoint has been saved — recovering without a checkpoint is a
// protocol violation the caller must prevent.
func (s *Store2D[T]) Restore(g *grid.Grid[T], b []T) int {
	if !s.valid {
		panic("checkpoint: restore without a saved checkpoint")
	}
	g.CopyFrom(s.domain)
	copy(b, s.b)
	s.stats.Restores++
	s.stats.PointsCopied += int64(g.Len())
	return s.iteration
}

// Stats returns the accumulated cost counters.
func (s *Store2D[T]) Stats() Stats { return s.stats }

// Domain exposes the checkpointed grid for region-local recovery (cone
// recomputation reads a window of the saved state without a full restore).
// Callers must treat it as read-only; it panics if nothing was saved.
func (s *Store2D[T]) Domain() *grid.Grid[T] {
	if !s.valid {
		panic("checkpoint: Domain without a saved checkpoint")
	}
	return s.domain
}

// Store3D checkpoints a 3-D domain with per-layer column checksums.
type Store3D[T num.Float] struct {
	stats     Stats
	valid     bool
	iteration int
	domain    *grid.Grid3D[T]
	b         [][]T
}

// Save records the domain, the per-layer verified checksums and the
// iteration number.
func (s *Store3D[T]) Save(iter int, g *grid.Grid3D[T], b [][]T) {
	if s.domain == nil || !s.domain.SameShape(g) {
		s.domain = g.Clone()
	} else {
		s.domain.CopyFrom(g)
	}
	if len(s.b) != len(b) {
		s.b = make([][]T, len(b))
	}
	for z := range b {
		if len(s.b[z]) != len(b[z]) {
			s.b[z] = make([]T, len(b[z]))
		}
		copy(s.b[z], b[z])
	}
	s.iteration = iter
	s.valid = true
	s.stats.Saves++
	s.stats.PointsCopied += int64(g.Len())
}

// Valid reports whether a checkpoint is available.
func (s *Store3D[T]) Valid() bool { return s.valid }

// Iteration returns the iteration number of the stored checkpoint.
func (s *Store3D[T]) Iteration() int { return s.iteration }

// Restore copies the checkpointed domain into g and the stored per-layer
// checksums into b, returning the checkpoint's iteration number.
func (s *Store3D[T]) Restore(g *grid.Grid3D[T], b [][]T) int {
	if !s.valid {
		panic("checkpoint: restore without a saved checkpoint")
	}
	if !g.SameShape(s.domain) {
		panic(fmt.Sprintf("checkpoint: restore into %v from %v", g, s.domain))
	}
	g.CopyFrom(s.domain)
	for z := range b {
		copy(b[z], s.b[z])
	}
	s.stats.Restores++
	s.stats.PointsCopied += int64(g.Len())
	return s.iteration
}

// Stats returns the accumulated cost counters.
func (s *Store3D[T]) Stats() Stats { return s.stats }
