package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// pinnedCollector builds a collector with hand-written spans and a fixed
// epoch so trace output is byte-deterministic. Same-package access to the
// span ring replaces the real clock.
func pinnedCollector() *Collector {
	c := New(8)
	r := c.Recorder(1)
	r.spans[0] = Span{Start: 1_000, Dur: 500, Iter: 0, Phase: PhaseSweep}
	r.spans[1] = Span{Start: 2_000, Dur: 250, Iter: 1, Phase: PhaseVerify}
	r.head = 2
	r.n = 2
	c.rebase(time.Unix(100, 0))
	return c
}

// TestWriteTraceGolden pins the exact Chrome trace-event bytes: field
// names, event phases, µs conversion of the ns span offsets against the
// collector epoch, and the lane-naming metadata event.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := pinnedCollector().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"rank 1"}},` +
		`{"name":"sweep","ph":"X","ts":100000001,"dur":0.5,"pid":1,"tid":0,"args":{"iter":0}},` +
		`{"name":"verify","ph":"X","ts":100000002,"dur":0.25,"pid":1,"tid":0,"args":{"iter":1}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("trace bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestTraceRoundtrip pins that ParseTrace reads back what WriteTrace
// emitted, and that the lane/phase summaries see through it.
func TestTraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := pinnedCollector().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("parsed %d events, want 3", len(tf.TraceEvents))
	}
	if got := tf.RankLanes(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("RankLanes = %v", got)
	}
	if got := tf.PhaseNames(); !reflect.DeepEqual(got, []string{"sweep", "verify"}) {
		t.Fatalf("PhaseNames = %v", got)
	}
}

// TestEmptyTraceIsValid pins the degenerate exports: a collector with no
// spans, and a nil collector, both write "traceEvents": [] — never null,
// so chrome://tracing and jq both accept the file.
func TestEmptyTraceIsValid(t *testing.T) {
	for name, c := range map[string]*Collector{"empty": New(0), "nil": nil} {
		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), `"traceEvents":[]`) {
			t.Fatalf("%s collector wrote %s", name, buf.String())
		}
		if tf, err := ParseTrace(&buf); err != nil || len(tf.TraceEvents) != 0 {
			t.Fatalf("%s: reparse = %+v, %v", name, tf, err)
		}
	}
}

// TestMergeTraces pins the -launch parent's merge: lanes from separate
// per-process files stay distinct, the earliest span lands at ts 0, and
// relative offsets (the wall-clock alignment across processes) survive.
func TestMergeTraces(t *testing.T) {
	a := TraceFile{TraceEvents: []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: 0},
		{Name: "sweep", Ph: "X", Ts: 70, Dur: 5, Pid: 0},
	}}
	b := TraceFile{TraceEvents: []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: 1},
		{Name: "sweep", Ph: "X", Ts: 50, Dur: 5, Pid: 1},
	}}
	m := MergeTraces([]TraceFile{a, b})
	if got := m.RankLanes(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("merged lanes = %v", got)
	}
	var ts []float64
	for _, e := range m.TraceEvents {
		if e.Ph == "X" {
			ts = append(ts, e.Ts)
		}
	}
	if !reflect.DeepEqual(ts, []float64{20, 0}) {
		t.Fatalf("re-based span ts = %v, want [20 0]", ts)
	}

	if empty := MergeTraces(nil); empty.TraceEvents == nil {
		t.Fatal("merge of nothing yields null traceEvents")
	}
}
