package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export. The format is the JSON object form of the
// trace-event spec — {"traceEvents": [...]} — readable by chrome://tracing
// and Perfetto. Each rank renders as one process lane (pid = rank id,
// named by a process_name metadata event), each phase interval as one
// complete duration event (ph "X"). Timestamps are microseconds of
// wall-clock since the Unix epoch, computed as collector base + span
// offset: absolute, so traces written by separate rank processes land on
// one shared timeline and can be merged by concatenation. MergeTraces
// re-bases the merged timeline to start near zero for readability.

// TraceEvent is one entry of a Chrome trace-event file. Only the fields
// this package emits are modelled; unknown fields in parsed files are
// dropped, which is fine for validation and merging.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // µs
	Dur  float64        `json:"dur,omitempty"` // µs
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the object form of a trace-event file.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Events renders the collector's recorded spans as trace events: one
// process_name metadata event plus one duration event per span, per rank,
// in rank order. Call after the run (Spans requires quiescence). Nil
// collectors yield nil.
func (c *Collector) Events() []TraceEvent {
	if c == nil {
		return nil
	}
	baseUs := float64(c.base.UnixNano()) / 1e3
	var evs []TraceEvent
	var buf []Span
	for _, r := range c.Recorders() {
		evs = append(evs, TraceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  r.rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r.rank)},
		})
		buf = r.Spans(buf[:0])
		for _, s := range buf {
			evs = append(evs, TraceEvent{
				Name: s.Phase.String(),
				Ph:   "X",
				Ts:   baseUs + float64(s.Start)/1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  r.rank,
				Tid:  0,
				Args: map[string]any{"iter": int(s.Iter)},
			})
		}
	}
	return evs
}

// WriteTrace writes the collector's timeline as a Chrome trace-event JSON
// object. A nil collector writes an empty (but valid) trace.
func (c *Collector) WriteTrace(w io.Writer) error {
	return writeTraceFile(w, TraceFile{
		TraceEvents:     c.Events(),
		DisplayTimeUnit: "ms",
	})
}

func writeTraceFile(w io.Writer, tf TraceFile) error {
	if tf.TraceEvents == nil {
		tf.TraceEvents = []TraceEvent{} // "traceEvents": [] rather than null
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// ParseTrace reads a trace-event JSON object — the validation half used by
// tests, the merge path and the tracecheck tool.
func ParseTrace(r io.Reader) (TraceFile, error) {
	var tf TraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return TraceFile{}, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	return tf, nil
}

// RankLanes returns the distinct pids that carry at least one duration
// event, sorted — the "does the merged trace really show every rank" check.
func (tf TraceFile) RankLanes() []int {
	seen := map[int]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			seen[e.Pid] = true
		}
	}
	lanes := make([]int, 0, len(seen))
	for pid := range seen {
		lanes = append(lanes, pid)
	}
	sort.Ints(lanes)
	return lanes
}

// PhaseNames returns the distinct names of the duration events, sorted.
func (tf TraceFile) PhaseNames() []string {
	seen := map[string]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			seen[e.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MergeTraces concatenates per-process trace files onto one timeline and
// re-bases it so the earliest duration event starts at ts 0. Rank lanes
// stay distinct because each process emitted events under its own global
// rank pid. This is what the -launch parent does with the per-child trace
// files.
func MergeTraces(parts []TraceFile) TraceFile {
	var out TraceFile
	out.DisplayTimeUnit = "ms"
	minTs := 0.0
	found := false
	for _, p := range parts {
		for _, e := range p.TraceEvents {
			if e.Ph == "X" && (!found || e.Ts < minTs) {
				minTs = e.Ts
				found = true
			}
		}
	}
	for _, p := range parts {
		for _, e := range p.TraceEvents {
			if e.Ph == "X" {
				e.Ts -= minTs
			}
			out.TraceEvents = append(out.TraceEvents, e)
		}
	}
	if out.TraceEvents == nil {
		out.TraceEvents = []TraceEvent{}
	}
	return out
}

// rebase shifts the collector's epoch — used by tests to pin trace output
// to a known instant instead of time.Now().
func (c *Collector) rebase(base time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.base = base
	for _, r := range c.recs {
		r.base = base
	}
}
