package telemetry

import (
	"sort"

	"stencilabft/internal/stats"
)

// Transport-metrics model. Both communication backends (in-process
// channels and TCP) count the same things so runs are comparable across
// transports: halo frames and payload bytes per directed edge, in each
// direction. The TCP backend additionally reports writer-queue depth
// high-water marks (how far a slow socket let frames pile up), dial
// retries during bootstrap, and poison events (edges torn down by an I/O
// error — excluding the deliberate poisons of Close).

// EdgeStat is the traffic of one directed halo edge as observed by rank
// From: FramesSent/BytesSent count what From sent toward To in direction
// Dir, FramesRecv/BytesRecv what From received from To over the paired
// reverse edge — both halves of one neighbour conversation, keyed by the
// outbound direction.
type EdgeStat struct {
	From, To   int
	Dir        string // direction From sends toward: up/down/left/right
	FramesSent int64
	BytesSent  int64 // payload element bytes (headers excluded)
	FramesRecv int64
	BytesRecv  int64
	QueueHW    int64 // writer-queue depth high-water mark (TCP only)
}

// TransportMetrics is one transport's full counter snapshot.
type TransportMetrics struct {
	Edges       []EdgeStat // sorted by (From, To, Dir) for determinism
	DialRetries int64      // bootstrap redials (TCP only)
	Poisoned    int64      // edges killed by I/O errors (TCP only; Close excluded)

	// Self-healing counters (TCP only): connections rebuilt after an I/O
	// fault, data frames replayed from resend windows after reconnects,
	// frames rejected by the wire CRC, and replay duplicates dropped by the
	// per-edge sequence dedup. Non-zero Reconnects with zero recoveries is
	// the healing path working: the wire flaked and nobody upstairs noticed.
	Reconnects int64
	Resends    int64
	CrcErrors  int64
	DupFrames  int64
}

// SortEdges orders Edges by (From, To, Dir) so snapshots are deterministic
// regardless of map iteration order in the transport.
func (m *TransportMetrics) SortEdges() {
	sort.Slice(m.Edges, func(i, j int) bool {
		a, b := m.Edges[i], m.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Dir < b.Dir
	})
}

// Totals folds the per-edge counters into the flat stats.Transport
// breakdown that rides on stats.Stats through MergeAll.
func (m TransportMetrics) Totals() stats.Transport {
	var t stats.Transport
	for _, e := range m.Edges {
		t.FramesSent += e.FramesSent
		t.BytesSent += e.BytesSent
		t.FramesRecv += e.FramesRecv
		t.BytesRecv += e.BytesRecv
		if e.QueueHW > t.QueueHighWater {
			t.QueueHighWater = e.QueueHW
		}
	}
	t.DialRetries = m.DialRetries
	t.PoisonEvents = m.Poisoned
	t.Reconnects = m.Reconnects
	t.Resends = m.Resends
	t.CrcErrors = m.CrcErrors
	t.DupFrames = m.DupFrames
	return t
}

// PerRank folds the counters rank observed — the edges it is the From of —
// into a flat stats.Transport. Every edge has exactly one observer, so
// merging PerRank over all ranks reproduces Totals' edge counters; the
// transport-global DialRetries/Poisoned are not attributable to one rank
// and stay zero here (the cluster attaches them to a single rank entry so
// the roll-up still matches).
func (m TransportMetrics) PerRank(rank int) stats.Transport {
	var t stats.Transport
	for _, e := range m.Edges {
		if e.From != rank {
			continue
		}
		t.FramesSent += e.FramesSent
		t.BytesSent += e.BytesSent
		t.FramesRecv += e.FramesRecv
		t.BytesRecv += e.BytesRecv
		if e.QueueHW > t.QueueHighWater {
			t.QueueHighWater = e.QueueHW
		}
	}
	return t
}
