package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestCollectorWritePrometheus pins the phase-counter exposition lines and
// their label shape against hand-set accumulator values.
func TestCollectorWritePrometheus(t *testing.T) {
	c := New(0)
	r := c.Recorder(2)
	r.ns[PhaseSweep].Store(1_500_000_000) // 1.5 s
	r.count[PhaseSweep].Store(3)
	r.dropped = 7

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE stencilabft_phase_seconds_total counter",
		`stencilabft_phase_seconds_total{rank="2",phase="sweep"} 1.5`,
		`stencilabft_phase_intervals_total{rank="2",phase="sweep"} 3`,
		`stencilabft_phase_intervals_total{rank="2",phase="repair"} 0`,
		`stencilabft_spans_dropped_total{rank="2"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}

	var nilC *Collector
	buf.Reset()
	if err := nilC.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil collector wrote %q, %v", buf.String(), err)
	}
}

// TestTransportWritePrometheus pins the per-edge exposition: sent/recv
// lines per edge, the zero-suppressed queue high-water gauge, and the
// transport-global counters.
func TestTransportWritePrometheus(t *testing.T) {
	m := TransportMetrics{
		Edges: []EdgeStat{
			{From: 0, To: 1, Dir: "right", FramesSent: 40, BytesSent: 163840, FramesRecv: 40, BytesRecv: 163840, QueueHW: 3},
			{From: 1, To: 0, Dir: "left", FramesSent: 40, BytesSent: 163840, FramesRecv: 40, BytesRecv: 163840},
		},
		DialRetries: 2,
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`stencilabft_transport_frames_total{from="0",to="1",dir="right",op="sent"} 40`,
		`stencilabft_transport_frames_total{from="0",to="1",dir="right",op="recv"} 40`,
		`stencilabft_transport_bytes_total{from="1",to="0",dir="left",op="sent"} 163840`,
		`stencilabft_transport_queue_high_water{from="0",to="1",dir="right"} 3`,
		"stencilabft_transport_dial_retries_total 2",
		"stencilabft_transport_poison_events_total 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `stencilabft_transport_queue_high_water{from="1"`) {
		t.Errorf("zero queue high-water not suppressed:\n%s", out)
	}
}
