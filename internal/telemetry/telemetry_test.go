package telemetry

import (
	"testing"
	"time"
)

// TestNilRecorderIsFree pins the disabled-instrument contract: every
// hot-path method of a nil recorder is a safe no-op that allocates nothing.
func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	start := r.Begin()
	if !start.IsZero() {
		t.Fatalf("nil Begin read the clock: %v", start)
	}
	r.End(PhaseSweep, start) // must not panic
	r.SetIter(7)
	if r.Rank() != -1 {
		t.Fatalf("nil Rank = %d, want -1", r.Rank())
	}
	if r.PhaseNs(PhaseSweep) != 0 || r.PhaseCount(PhaseSweep) != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reports non-zero counters")
	}
	if got := r.Spans(nil); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	if tm := r.Timing(); tm.RanksTimed != 0 {
		t.Fatalf("nil Timing claims %d ranks", tm.RanksTimed)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		t0 := r.Begin()
		// Every phase of the taxonomy — including the resilience phases
		// (ckpt-save, ckpt-send, recover-wait, restore) — must stay a free
		// no-op on the disabled instrument.
		for p := Phase(0); p < NumPhases; p++ {
			r.End(p, t0)
		}
		r.SetIter(3)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %v per Begin/End", allocs)
	}
}

// TestEnabledRecorderZeroAlloc pins the enabled hot path: Begin/End write
// into preallocated storage only, for every phase of the taxonomy.
func TestEnabledRecorderZeroAlloc(t *testing.T) {
	r := New(64).Recorder(0)
	allocs := testing.AllocsPerRun(1000, func() {
		for p := Phase(0); p < NumPhases; p++ {
			t0 := r.Begin()
			r.End(p, t0)
		}
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder allocates %v per Begin/End", allocs)
	}
}

// TestPhaseNamesCoverTaxonomy pins that every phase — the resilience
// additions included — has a distinct display name (span names in traces
// and phase labels on the Prometheus page depend on it).
func TestPhaseNamesCoverTaxonomy(t *testing.T) {
	seen := make(map[string]Phase, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "phase(?)" {
			t.Fatalf("phase %d has no display name", p)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("phases %d and %d share the name %q", prev, p, name)
		}
		seen[name] = p
	}
	for _, want := range []string{"ckpt-save", "ckpt-send", "recover-wait", "restore"} {
		if _, ok := seen[want]; !ok {
			t.Fatalf("resilience phase %q missing from the taxonomy", want)
		}
	}
}

// TestRecorderTimingResiliencePhases pins the fold of the resilience
// phases onto their stats.Timing fields.
func TestRecorderTimingResiliencePhases(t *testing.T) {
	r := New(0).Recorder(0)
	base := time.Now().Add(-time.Millisecond)
	r.End(PhaseCkptSave, base)
	r.End(PhaseCkptSend, base)
	r.End(PhaseRecoverWait, base)
	r.End(PhaseRestore, base)

	tm := r.Timing()
	if tm.CkptSaveNs != r.PhaseNs(PhaseCkptSave) || tm.CkptSendNs != r.PhaseNs(PhaseCkptSend) ||
		tm.RecoverWaitNs != r.PhaseNs(PhaseRecoverWait) || tm.RestoreNs != r.PhaseNs(PhaseRestore) {
		t.Fatalf("resilience Timing fields do not mirror accumulators: %+v", tm)
	}
	if tm.CkptSaveNs < int64(time.Millisecond) {
		t.Fatalf("ckpt-save ns = %d, want >= 1ms", tm.CkptSaveNs)
	}
	sum := tm.Merge(tm)
	if sum.RestoreNs != 2*tm.RestoreNs || sum.CkptSendNs != 2*tm.CkptSendNs {
		t.Fatalf("Timing.Merge does not sum resilience phases: %+v", sum)
	}
}

// TestPhaseAccumulators pins the counter bookkeeping: durations sum per
// phase, intervals count per phase, other phases stay untouched.
func TestPhaseAccumulators(t *testing.T) {
	r := New(0).Recorder(3)
	if r.Rank() != 3 {
		t.Fatalf("Rank = %d", r.Rank())
	}
	base := time.Now().Add(-time.Millisecond)
	r.End(PhaseSweep, base)
	r.End(PhaseSweep, base)
	r.End(PhaseRepair, base)

	if got := r.PhaseCount(PhaseSweep); got != 2 {
		t.Fatalf("sweep intervals = %d, want 2", got)
	}
	if got := r.PhaseCount(PhaseRepair); got != 1 {
		t.Fatalf("repair intervals = %d, want 1", got)
	}
	if got := r.PhaseCount(PhaseVerify); got != 0 {
		t.Fatalf("verify intervals = %d, want 0", got)
	}
	if ns := r.PhaseNs(PhaseSweep); ns < 2*int64(time.Millisecond) {
		t.Fatalf("sweep ns = %d, want >= 2ms", ns)
	}
}

// TestSpanRingCapacityAndEviction pins the fixed-capacity ring: it retains
// the most recent spanCap spans oldest-first and counts evictions.
func TestSpanRingCapacityAndEviction(t *testing.T) {
	const cap = 4
	r := New(cap).Recorder(0)
	for i := 0; i < 7; i++ {
		r.SetIter(i)
		t0 := r.Begin()
		r.End(PhaseSweep, t0)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	spans := r.Spans(nil)
	if len(spans) != cap {
		t.Fatalf("retained %d spans, want %d", len(spans), cap)
	}
	for i, s := range spans {
		if want := int32(3 + i); s.Iter != want {
			t.Fatalf("span %d carries iter %d, want %d (oldest-first order broken)", i, s.Iter, want)
		}
		if s.Phase != PhaseSweep || s.Dur < 0 || s.Start < 0 {
			t.Fatalf("span %d malformed: %+v", i, s)
		}
	}
}

// TestNegativeSpanCapDisablesSpans pins the counters-only mode: phase
// accumulators still work, no span is ever retained or dropped.
func TestNegativeSpanCapDisablesSpans(t *testing.T) {
	r := New(-1).Recorder(0)
	for i := 0; i < 10; i++ {
		t0 := r.Begin()
		r.End(PhaseSweep, t0)
	}
	if n := len(r.Spans(nil)); n != 0 {
		t.Fatalf("counters-only recorder retained %d spans", n)
	}
	if r.Dropped() != 0 {
		t.Fatalf("counters-only recorder dropped %d", r.Dropped())
	}
	if r.PhaseCount(PhaseSweep) != 10 {
		t.Fatalf("intervals = %d, want 10", r.PhaseCount(PhaseSweep))
	}
}

// TestCollectorRecorderIdentity pins the per-rank handout: one recorder per
// rank id, stable across calls, first-seen order, nil-collector nil result.
func TestCollectorRecorderIdentity(t *testing.T) {
	c := New(0)
	a, b := c.Recorder(2), c.Recorder(0)
	if c.Recorder(2) != a {
		t.Fatal("Recorder(2) not stable across calls")
	}
	recs := c.Recorders()
	if len(recs) != 2 || recs[0] != a || recs[1] != b {
		t.Fatalf("Recorders order = %v, want [rank2, rank0] first-seen", recs)
	}

	var nilC *Collector
	if nilC.Recorder(0) != nil {
		t.Fatal("nil collector handed out a recorder")
	}
	if nilC.Recorders() != nil {
		t.Fatal("nil collector lists recorders")
	}
	if !nilC.Base().IsZero() {
		t.Fatal("nil collector has a base time")
	}
}

// TestRecorderTiming pins the single-rank fold: every accumulator lands on
// its stats field and the rank's own barrier-wait seeds both extremes.
func TestRecorderTiming(t *testing.T) {
	r := New(0).Recorder(5)
	base := time.Now().Add(-time.Millisecond)
	r.End(PhaseBarrierWait, base)
	r.End(PhaseSweep, base)

	tm := r.Timing()
	if tm.RanksTimed != 1 {
		t.Fatalf("RanksTimed = %d", tm.RanksTimed)
	}
	if tm.SweepNs != r.PhaseNs(PhaseSweep) || tm.BarrierNs != r.PhaseNs(PhaseBarrierWait) {
		t.Fatalf("Timing fields do not mirror accumulators: %+v", tm)
	}
	if tm.MaxBarrierNs != tm.BarrierNs || tm.MinBarrierNs != tm.BarrierNs {
		t.Fatalf("barrier extremes not seeded from own wait: %+v", tm)
	}
	if tm.MaxBarrierOn != 5 || tm.StragglerRank != 5 {
		t.Fatalf("barrier extreme ranks = %d/%d, want 5/5", tm.MaxBarrierOn, tm.StragglerRank)
	}
}

// TestCollectorTimingMerge pins the process-local roll-up: phase sums and
// the min-barrier straggler across recorders.
func TestCollectorTimingMerge(t *testing.T) {
	c := New(0)
	now := time.Now()
	c.Recorder(0).End(PhaseBarrierWait, now.Add(-3*time.Millisecond))
	c.Recorder(1).End(PhaseBarrierWait, now.Add(-time.Millisecond))
	c.Recorder(2).End(PhaseBarrierWait, now.Add(-9*time.Millisecond))

	tm := c.Timing()
	if tm.RanksTimed != 3 {
		t.Fatalf("RanksTimed = %d", tm.RanksTimed)
	}
	if tm.MaxBarrierOn != 2 {
		t.Fatalf("max barrier on rank %d, want 2", tm.MaxBarrierOn)
	}
	if tm.StragglerRank != 1 {
		t.Fatalf("straggler rank %d, want 1 (least barrier wait)", tm.StragglerRank)
	}
	rank, ratio, ok := tm.Straggler()
	if !ok || rank != 1 || ratio <= 1 {
		t.Fatalf("Straggler() = %d, %v, %v", rank, ratio, ok)
	}
}
