package telemetry

import (
	"reflect"
	"testing"

	"stencilabft/internal/stats"
)

// fourEdges is a 1x2 exchange observed from both sides, deliberately
// unsorted, with asymmetric counters so aggregation mistakes show.
func fourEdges() TransportMetrics {
	return TransportMetrics{
		Edges: []EdgeStat{
			{From: 1, To: 0, Dir: "left", FramesSent: 10, BytesSent: 100, FramesRecv: 20, BytesRecv: 200, QueueHW: 5},
			{From: 0, To: 1, Dir: "right", FramesSent: 20, BytesSent: 200, FramesRecv: 10, BytesRecv: 100, QueueHW: 2},
		},
		DialRetries: 3,
		Poisoned:    1,
	}
}

// TestSortEdges pins the deterministic snapshot order: (From, To, Dir).
func TestSortEdges(t *testing.T) {
	m := fourEdges()
	m.SortEdges()
	if m.Edges[0].From != 0 || m.Edges[1].From != 1 {
		t.Fatalf("edges not sorted by From: %+v", m.Edges)
	}
}

// TestTotalsAndPerRankIdentity pins the attribution invariant the cluster
// stats roll-up relies on: every edge has exactly one observing rank, so
// summing PerRank over all ranks reproduces Totals' edge counters.
func TestTotalsAndPerRankIdentity(t *testing.T) {
	m := fourEdges()
	total := m.Totals()
	want := stats.Transport{
		FramesSent: 30, BytesSent: 300, FramesRecv: 30, BytesRecv: 300,
		QueueHighWater: 5, DialRetries: 3, PoisonEvents: 1,
	}
	if total != want {
		t.Fatalf("Totals = %+v, want %+v", total, want)
	}

	var merged stats.Transport
	for rank := 0; rank < 2; rank++ {
		pr := m.PerRank(rank)
		if pr.DialRetries != 0 || pr.PoisonEvents != 0 {
			t.Fatalf("PerRank(%d) claims transport-global counters: %+v", rank, pr)
		}
		merged = merged.Merge(pr)
	}
	// The transport-global counters are parked on one rank entry by the
	// cluster, not by PerRank — add them the same way before comparing.
	merged.DialRetries += m.DialRetries
	merged.PoisonEvents += m.Poisoned
	if merged != want {
		t.Fatalf("sum of PerRank = %+v, want Totals %+v", merged, want)
	}

	if pr := m.PerRank(9); !reflect.DeepEqual(pr, stats.Transport{}) {
		t.Fatalf("PerRank of an absent rank = %+v, want zero", pr)
	}
}
