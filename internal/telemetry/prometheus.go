package telemetry

import (
	"fmt"
	"io"
)

// Prometheus text exposition. Hand-rolled rather than pulling in a client
// library: the format is lines of `name{labels} value`, and the repo's
// no-new-dependencies rule makes the 60 lines here cheaper than a module.
// The phase accumulators are atomic, so a live scrape during a run reads
// consistent (if slightly torn across phases) counters.

// WritePrometheus renders every recorder's phase accumulators as
// Prometheus counters:
//
//	stencilabft_phase_seconds_total{rank="0",phase="sweep"} 1.234
//	stencilabft_phase_intervals_total{rank="0",phase="sweep"} 400
//	stencilabft_spans_dropped_total{rank="0"} 0
//
// A nil collector writes nothing.
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	recs := c.Recorders()
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_phase_seconds_total Wall-clock accumulated per rank per phase.\n# TYPE stencilabft_phase_seconds_total counter\n"); err != nil {
		return err
	}
	for _, r := range recs {
		for p := Phase(0); p < NumPhases; p++ {
			if _, err := fmt.Fprintf(w, "stencilabft_phase_seconds_total{rank=%q,phase=%q} %g\n",
				fmt.Sprint(r.rank), p.String(), float64(r.PhaseNs(p))/1e9); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_phase_intervals_total Timed intervals per rank per phase.\n# TYPE stencilabft_phase_intervals_total counter\n"); err != nil {
		return err
	}
	for _, r := range recs {
		for p := Phase(0); p < NumPhases; p++ {
			if _, err := fmt.Fprintf(w, "stencilabft_phase_intervals_total{rank=%q,phase=%q} %d\n",
				fmt.Sprint(r.rank), p.String(), r.PhaseCount(p)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_spans_dropped_total Spans evicted by the fixed-capacity ring.\n# TYPE stencilabft_spans_dropped_total counter\n"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "stencilabft_spans_dropped_total{rank=%q} %d\n",
			fmt.Sprint(r.rank), r.Dropped()); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the transport snapshot as per-edge counters:
//
//	stencilabft_transport_frames_total{from="0",to="1",dir="right",op="sent"} 40
//	stencilabft_transport_bytes_total{from="0",to="1",dir="right",op="sent"} 163840
//	stencilabft_transport_queue_high_water{from="0",to="1",dir="right"} 3
//	stencilabft_transport_dial_retries_total 2
//	stencilabft_transport_poison_events_total 0
func (m TransportMetrics) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_transport_frames_total Halo frames per directed edge.\n# TYPE stencilabft_transport_frames_total counter\n"); err != nil {
		return err
	}
	for _, e := range m.Edges {
		if _, err := fmt.Fprintf(w, "stencilabft_transport_frames_total{from=\"%d\",to=\"%d\",dir=%q,op=\"sent\"} %d\nstencilabft_transport_frames_total{from=\"%d\",to=\"%d\",dir=%q,op=\"recv\"} %d\n",
			e.From, e.To, e.Dir, e.FramesSent, e.From, e.To, e.Dir, e.FramesRecv); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_transport_bytes_total Halo payload bytes per directed edge.\n# TYPE stencilabft_transport_bytes_total counter\n"); err != nil {
		return err
	}
	for _, e := range m.Edges {
		if _, err := fmt.Fprintf(w, "stencilabft_transport_bytes_total{from=\"%d\",to=\"%d\",dir=%q,op=\"sent\"} %d\nstencilabft_transport_bytes_total{from=\"%d\",to=\"%d\",dir=%q,op=\"recv\"} %d\n",
			e.From, e.To, e.Dir, e.BytesSent, e.From, e.To, e.Dir, e.BytesRecv); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP stencilabft_transport_queue_high_water Writer-queue depth high-water mark per edge.\n# TYPE stencilabft_transport_queue_high_water gauge\n"); err != nil {
		return err
	}
	for _, e := range m.Edges {
		if e.QueueHW == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "stencilabft_transport_queue_high_water{from=\"%d\",to=\"%d\",dir=%q} %d\n",
			e.From, e.To, e.Dir, e.QueueHW); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE stencilabft_transport_dial_retries_total counter\nstencilabft_transport_dial_retries_total %d\n# TYPE stencilabft_transport_poison_events_total counter\nstencilabft_transport_poison_events_total %d\n",
		m.DialRetries, m.Poisoned)
	return err
}
