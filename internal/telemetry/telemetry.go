// Package telemetry is the observability layer of the ABFT stencil system:
// per-rank phase timers, a fixed-capacity span recorder that exports Chrome
// trace-event timelines, and the transport-metrics model the communication
// backends report through.
//
// The paper's claims are cost-model claims (online overhead under 8%, halo
// communication as the distributed bottleneck), so the instrumentation has
// to be cheap enough to leave on during the measurements it exists to
// explain. Two properties deliver that:
//
//   - A disabled recorder is a nil pointer. Every hot-path entry point
//     (Begin, End, SetIter) is nil-safe and returns immediately, so a rank
//     built without telemetry pays two pointer tests per phase and
//     allocates nothing — asserted by tests.
//   - An enabled recorder appends into storage preallocated at
//     construction: phase accumulators are fixed arrays of atomics (safe
//     to read live from a /metrics endpoint while the rank goroutine
//     writes), spans land in a fixed-capacity ring that evicts the oldest
//     span when full. No allocation ever happens on the timing path.
//
// One Recorder belongs to one rank (or one local protector) and is written
// only by that rank's goroutine; the Collector hands out recorders by rank
// id and merges them into timelines and counter breakdowns after — or,
// for the atomic counters, during — a run.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"stencilabft/internal/stats"
)

// Phase names one accounted slice of a rank's iteration — the taxonomy the
// timers, spans, traces and Prometheus pages all share. The order is the
// order of one distributed iteration: exchange (pack, send, recv-wait,
// unpack), sweep, verify, repair, barrier-wait.
type Phase uint8

// The phase taxonomy.
const (
	// PhasePack is packing boundary strips into send buffers (the
	// column-strip copies of the 2-D halo exchange).
	PhasePack Phase = iota
	// PhaseSend is posting halo strips to the transport. With the TCP
	// backend this is serialisation only — the socket write happens on the
	// writer goroutine — so a large Send time means encoding, not network.
	PhaseSend
	// PhaseRecvWait is blocking until a neighbour's halo strip arrives —
	// the direct reading of the paper's communication bottleneck.
	PhaseRecvWait
	// PhaseUnpack is copying received strips into the halo regions,
	// including ghost synthesis at domain edges.
	PhaseUnpack
	// PhaseSweep is the fused stencil sweep over the owned tile.
	PhaseSweep
	// PhaseVerify is checksum bookkeeping, interpolation and comparison —
	// the per-iteration price of the online ABFT scheme.
	PhaseVerify
	// PhaseRepair is the detection slow path: localisation and correction.
	PhaseRepair
	// PhaseBarrierWait is waiting at the iteration barrier. A rank that
	// waits long is early; the rank everyone else waits for — the
	// straggler — shows the minimum barrier-wait time.
	PhaseBarrierWait
	// PhaseCkptSave is packing a rank's tile and verified checksums into a
	// buddy-checkpoint snapshot (the fail-stop resilience layer's periodic
	// memory copy).
	PhaseCkptSave
	// PhaseCkptSend is posting the snapshot to the buddy rank's edge. Like
	// PhaseSend this is serialisation only on the TCP backend; the socket
	// write overlaps the following iterations.
	PhaseCkptSend
	// PhaseRecoverWait is the fail-stop recovery stall: from detecting a
	// dead neighbour until the coordinator's recovery plan arrives.
	PhaseRecoverWait
	// PhaseRestore is executing the recovery plan: rebuilding the
	// transport, restoring checkpointed state and rolling the iteration
	// counter back.
	PhaseRestore

	// PhaseInteriorSweep is the overlap schedule's interior sweep: the
	// halo-independent region swept while halo strips are still in
	// flight. Time here is computation successfully hidden behind
	// communication.
	PhaseInteriorSweep
	// PhaseBoundaryWait is blocking until the next boundary strip's halo
	// lands under the overlap schedule — the residual, un-hidden part of
	// PhaseRecvWait. A rank whose interior sweep outlasts its halo
	// round-trips shows ~zero here.
	PhaseBoundaryWait
	// PhaseBoundarySweep is sweeping a boundary strip after its halo
	// landed (including the checksum post-pass that re-fuses split rows).
	PhaseBoundarySweep

	// NumPhases sizes per-phase tables.
	NumPhases = 15
)

var phaseNames = [NumPhases]string{
	"pack", "send", "recv-wait", "unpack", "sweep", "verify", "repair", "barrier-wait",
	"ckpt-save", "ckpt-send", "recover-wait", "restore",
	"interior-sweep", "boundary-wait", "boundary-sweep",
}

// String returns the phase's display name (also the span name in traces and
// the phase label on the Prometheus page).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Span is one recorded phase interval: start and duration in nanoseconds
// relative to the owning Collector's base time, plus the iteration it
// belongs to. 24 bytes, so the default ring costs ~100 KiB per rank.
type Span struct {
	Start int64 // ns since the collector's base time
	Dur   int64 // ns
	Iter  int32
	Phase Phase
}

// DefaultSpanCap is the span-ring capacity a Collector uses when none is
// given: with ~18 spans per distributed iteration it retains the most
// recent ~220 iterations per rank.
const DefaultSpanCap = 4096

// Recorder accumulates one rank's phase times and spans. The zero value is
// not used directly — obtain recorders from a Collector — and a nil
// *Recorder is the disabled instrument: every method is nil-safe and free.
type Recorder struct {
	rank int
	base time.Time

	ns    [NumPhases]atomic.Int64 // total time per phase
	count [NumPhases]atomic.Int64 // intervals per phase

	iter    int32  // current iteration, stamped onto spans (rank goroutine only)
	spans   []Span // fixed-capacity ring, rank goroutine writes
	head    int    // next write slot
	n       int    // spans held
	dropped int64  // spans evicted by the ring
}

// Begin starts timing a phase interval. On a nil (disabled) recorder it
// returns the zero time without touching the clock.
func (r *Recorder) Begin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes the interval opened by Begin, charging it to phase p: the
// duration is added to the phase accumulator and the interval lands in the
// span ring (evicting the oldest span when full). No-op on a nil recorder.
func (r *Recorder) End(p Phase, start time.Time) {
	if r == nil {
		return
	}
	now := time.Now()
	d := now.Sub(start)
	r.ns[p].Add(int64(d))
	r.count[p].Add(1)
	if len(r.spans) == 0 {
		return
	}
	if r.n == len(r.spans) {
		r.dropped++
	} else {
		r.n++
	}
	r.spans[r.head] = Span{
		Start: int64(now.Sub(r.base)) - int64(d),
		Dur:   int64(d),
		Iter:  r.iter,
		Phase: p,
	}
	r.head++
	if r.head == len(r.spans) {
		r.head = 0
	}
}

// SetIter stamps the iteration number onto subsequently recorded spans.
// Call it from the rank's own goroutine (like End). No-op when nil.
func (r *Recorder) SetIter(iter int) {
	if r == nil {
		return
	}
	r.iter = int32(iter)
}

// Rank returns the rank id this recorder belongs to.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// PhaseNs returns the accumulated nanoseconds of phase p. Safe to call
// concurrently with the recording goroutine (the accumulators are atomic);
// returns 0 on a nil recorder.
func (r *Recorder) PhaseNs(p Phase) int64 {
	if r == nil {
		return 0
	}
	return r.ns[p].Load()
}

// PhaseCount returns how many intervals were charged to phase p.
func (r *Recorder) PhaseCount(p Phase) int64 {
	if r == nil {
		return 0
	}
	return r.count[p].Load()
}

// Dropped returns how many spans the ring evicted to make room.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Spans appends the retained spans to dst in recording order (oldest
// first) and returns it. Call only when the recording goroutine is
// quiescent (after Run); the phase accumulators, by contrast, may be read
// live.
func (r *Recorder) Spans(dst []Span) []Span {
	if r == nil || r.n == 0 {
		return dst
	}
	first := r.head - r.n
	if first < 0 {
		first += len(r.spans)
	}
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.spans[(first+i)%len(r.spans)])
	}
	return dst
}

// Timing folds the recorder's accumulators into the stats breakdown for
// this one rank: phase totals, RanksTimed 1, and the rank's own
// barrier-wait charged as both the max and min entry so that merging
// per-rank Timings yields the cluster-wide imbalance report. Zero on nil.
func (r *Recorder) Timing() stats.Timing {
	if r == nil {
		return stats.Timing{}
	}
	bar := r.ns[PhaseBarrierWait].Load()
	return stats.Timing{
		PackNs:        r.ns[PhasePack].Load(),
		SendNs:        r.ns[PhaseSend].Load(),
		RecvWaitNs:    r.ns[PhaseRecvWait].Load(),
		UnpackNs:      r.ns[PhaseUnpack].Load(),
		SweepNs:       r.ns[PhaseSweep].Load(),
		VerifyNs:      r.ns[PhaseVerify].Load(),
		RepairNs:      r.ns[PhaseRepair].Load(),
		BarrierNs:     bar,
		CkptSaveNs:    r.ns[PhaseCkptSave].Load(),
		CkptSendNs:    r.ns[PhaseCkptSend].Load(),
		RecoverWaitNs: r.ns[PhaseRecoverWait].Load(),
		RestoreNs:     r.ns[PhaseRestore].Load(),

		InteriorSweepNs: r.ns[PhaseInteriorSweep].Load(),
		BoundaryWaitNs:  r.ns[PhaseBoundaryWait].Load(),
		BoundarySweepNs: r.ns[PhaseBoundarySweep].Load(),

		RanksTimed:    1,
		MaxBarrierNs:  bar,
		MaxBarrierOn:  r.rank,
		MinBarrierNs:  bar,
		StragglerRank: r.rank,
	}
}

// Collector owns the per-rank recorders of one process and renders them —
// as a Chrome trace, a Prometheus page, or a stats.Timing roll-up. A nil
// *Collector is the disabled layer: Recorder returns nil and the render
// methods emit nothing.
type Collector struct {
	mu      sync.Mutex
	spanCap int
	base    time.Time
	recs    map[int]*Recorder
	order   []int // rank ids in first-seen order
}

// New creates a Collector whose recorders hold spanCap spans each. A
// spanCap of 0 picks DefaultSpanCap; a negative spanCap disables span
// recording entirely, keeping only the phase accumulators.
func New(spanCap int) *Collector {
	switch {
	case spanCap == 0:
		spanCap = DefaultSpanCap
	case spanCap < 0:
		spanCap = 0
	}
	return &Collector{
		spanCap: spanCap,
		base:    time.Now(),
		recs:    make(map[int]*Recorder),
	}
}

// Base returns the collector's epoch: the wall-clock instant span offsets
// are relative to. Trace timestamps are Base + Span.Start, which is what
// lets traces from separate processes merge onto one timeline.
func (c *Collector) Base() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.base
}

// Recorder returns the recorder for rank, creating it on first use. On a
// nil collector it returns nil — the disabled instrument — so call sites
// thread c.Recorder(id) unconditionally.
func (c *Collector) Recorder(rank int) *Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.recs[rank]; ok {
		return r
	}
	r := &Recorder{rank: rank, base: c.base}
	if c.spanCap > 0 {
		r.spans = make([]Span, c.spanCap)
	}
	c.recs[rank] = r
	c.order = append(c.order, rank)
	return r
}

// Recorders returns the collector's recorders in first-seen rank order.
func (c *Collector) Recorders() []*Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Recorder, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.recs[id])
	}
	return out
}

// Timing merges every recorder's breakdown — the process-local roll-up a
// protector reports through stats.Stats.
func (c *Collector) Timing() stats.Timing {
	var t stats.Timing
	for _, r := range c.Recorders() {
		t = t.Merge(r.Timing())
	}
	return t
}
