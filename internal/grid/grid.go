// Package grid provides the dense 2-D and 3-D computational domains that
// stencil sweeps operate on, together with boundary-condition ghost
// resolution and the double buffers the sweep engines exchange.
//
// A Grid is stored as a single flat slice in row-major order (x fastest),
// matching the memory layout of the paper's HotSpot3D prototype so that the
// fused checksum loop touches memory in the same streaming pattern.
package grid

import (
	"fmt"

	"stencilabft/internal/num"
)

// Grid is a dense nx-by-ny 2-D field of T. The zero value is unusable; use
// New. (x, y) indexes column x of row y; the flat index is x + y*nx.
type Grid[T num.Float] struct {
	nx, ny int
	data   []T
}

// New returns an nx-by-ny grid initialised to zero. It panics if either
// dimension is not positive, since a dimensionless domain is always a
// programming error.
func New[T num.Float](nx, ny int) *Grid[T] {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", nx, ny))
	}
	return &Grid[T]{nx: nx, ny: ny, data: make([]T, nx*ny)}
}

// FromSlice wraps an existing row-major slice as a grid without copying.
// len(data) must be nx*ny.
func FromSlice[T num.Float](nx, ny int, data []T) *Grid[T] {
	if nx <= 0 || ny <= 0 || len(data) != nx*ny {
		panic(fmt.Sprintf("grid: slice of len %d cannot back a %dx%d grid", len(data), nx, ny))
	}
	return &Grid[T]{nx: nx, ny: ny, data: data}
}

// Nx returns the number of columns.
func (g *Grid[T]) Nx() int { return g.nx }

// Ny returns the number of rows.
func (g *Grid[T]) Ny() int { return g.ny }

// Len returns the number of points, nx*ny.
func (g *Grid[T]) Len() int { return len(g.data) }

// At returns the value at (x, y). Both coordinates must be in range.
func (g *Grid[T]) At(x, y int) T { return g.data[x+y*g.nx] }

// Set stores v at (x, y). Both coordinates must be in range.
func (g *Grid[T]) Set(x, y int, v T) { g.data[x+y*g.nx] = v }

// Index returns the flat index of (x, y).
func (g *Grid[T]) Index(x, y int) int { return x + y*g.nx }

// Coords returns the (x, y) coordinates of flat index i.
func (g *Grid[T]) Coords(i int) (x, y int) { return i % g.nx, i / g.nx }

// Data exposes the backing slice (row-major, x fastest). Mutating it
// mutates the grid; the sweep engines use it for streaming access.
func (g *Grid[T]) Data() []T { return g.data }

// Row returns the y-th row as a slice sharing the grid's storage.
func (g *Grid[T]) Row(y int) []T { return g.data[y*g.nx : (y+1)*g.nx] }

// Fill sets every point to v.
func (g *Grid[T]) Fill(v T) {
	for i := range g.data {
		g.data[i] = v
	}
}

// FillFunc sets every point to f(x, y).
func (g *Grid[T]) FillFunc(f func(x, y int) T) {
	i := 0
	for y := 0; y < g.ny; y++ {
		for x := 0; x < g.nx; x++ {
			g.data[i] = f(x, y)
			i++
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid[T]) Clone() *Grid[T] {
	c := New[T](g.nx, g.ny)
	copy(c.data, g.data)
	return c
}

// CopyFrom copies src's contents into g. The dimensions must match.
func (g *Grid[T]) CopyFrom(src *Grid[T]) {
	if g.nx != src.nx || g.ny != src.ny {
		panic(fmt.Sprintf("grid: copy %dx%d from %dx%d", g.nx, g.ny, src.nx, src.ny))
	}
	copy(g.data, src.data)
}

// SameShape reports whether g and o have identical dimensions.
func (g *Grid[T]) SameShape(o *Grid[T]) bool { return g.nx == o.nx && g.ny == o.ny }

// MaxAbsDiff returns the largest absolute element-wise difference between g
// and o, which must have the same shape.
func (g *Grid[T]) MaxAbsDiff(o *Grid[T]) T {
	if !g.SameShape(o) {
		panic("grid: MaxAbsDiff shape mismatch")
	}
	var m T
	for i := range g.data {
		d := num.Abs(g.data[i] - o.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// SumAll returns the sum of every point, accumulated left to right.
func (g *Grid[T]) SumAll() T { return num.Sum(g.data) }

// String describes the grid's shape, for diagnostics.
func (g *Grid[T]) String() string { return fmt.Sprintf("grid %dx%d", g.nx, g.ny) }
