package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	g := New[float64](4, 3)
	if g.Nx() != 4 || g.Ny() != 3 || g.Len() != 12 {
		t.Fatalf("shape wrong: %v", g)
	}
	g.Set(2, 1, 7.5)
	if g.At(2, 1) != 7.5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if g.Index(2, 1) != 6 {
		t.Fatalf("Index(2,1) = %d, want 6", g.Index(2, 1))
	}
	x, y := g.Coords(6)
	if x != 2 || y != 1 {
		t.Fatalf("Coords(6) = (%d,%d), want (2,1)", x, y)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {3, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New[float32](dims[0], dims[1])
		}()
	}
}

func TestFromSliceShares(t *testing.T) {
	data := make([]float32, 6)
	g := FromSlice(3, 2, data)
	g.Set(1, 1, 9)
	if data[4] != 9 {
		t.Fatal("FromSlice does not share storage")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("FromSlice with wrong length did not panic")
			}
		}()
		FromSlice(3, 3, data)
	}()
}

func TestRowSharesStorage(t *testing.T) {
	g := New[float64](3, 2)
	g.Row(1)[2] = 5
	if g.At(2, 1) != 5 {
		t.Fatal("Row does not share storage")
	}
}

func TestFillAndClone(t *testing.T) {
	g := New[float64](5, 5)
	g.FillFunc(func(x, y int) float64 { return float64(x*10 + y) })
	c := g.Clone()
	if c.MaxAbsDiff(g) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, -1)
	if g.At(0, 0) == -1 {
		t.Fatal("clone shares storage")
	}
	g.Fill(2)
	if g.SumAll() != 50 {
		t.Fatalf("SumAll after Fill = %g, want 50", g.SumAll())
	}
}

func TestCopyFromChecksShape(t *testing.T) {
	g := New[float64](3, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CopyFrom shape mismatch did not panic")
			}
		}()
		g.CopyFrom(New[float64](2, 3))
	}()
}

func TestGrid3DLayerViews(t *testing.T) {
	g := New3D[float32](3, 2, 4)
	g.Set(1, 1, 2, 42)
	if g.Layer(2).At(1, 1) != 42 {
		t.Fatal("layer view does not reflect Set")
	}
	g.Layer(3).Set(0, 0, 7)
	if g.At(0, 0, 3) != 7 {
		t.Fatal("Set through layer view lost")
	}
	if g.Index(1, 1, 2) != 1+1*3+2*6 {
		t.Fatal("3-D Index wrong")
	}
	x, y, z := g.Coords(g.Index(2, 1, 3))
	if x != 2 || y != 1 || z != 3 {
		t.Fatalf("3-D Coords wrong: (%d,%d,%d)", x, y, z)
	}
}

func TestGrid3DFillFuncOrder(t *testing.T) {
	g := New3D[float64](2, 2, 2)
	g.FillFunc(func(x, y, z int) float64 { return float64(x + 10*y + 100*z) })
	if g.At(1, 0, 1) != 101 || g.At(0, 1, 0) != 10 {
		t.Fatal("FillFunc coordinates wrong")
	}
}

func TestResolveIndexClamp(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{-1, 5, 0}, {-3, 5, 0}, {5, 5, 4}, {7, 5, 4}, {2, 5, 2},
	}
	for _, c := range cases {
		got, ok := Clamp.ResolveIndex(c.i, c.n)
		if !ok || got != c.want {
			t.Fatalf("Clamp.ResolveIndex(%d,%d) = %d,%v want %d", c.i, c.n, got, ok, c.want)
		}
	}
}

func TestResolveIndexPeriodic(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{-1, 5, 4}, {-5, 5, 0}, {5, 5, 0}, {6, 5, 1}, {2, 5, 2}, {-6, 5, 4},
	}
	for _, c := range cases {
		got, ok := Periodic.ResolveIndex(c.i, c.n)
		if !ok || got != c.want {
			t.Fatalf("Periodic.ResolveIndex(%d,%d) = %d,%v want %d", c.i, c.n, got, ok, c.want)
		}
	}
}

func TestResolveIndexMirror(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{-1, 5, 1}, {-2, 5, 2}, {5, 5, 3}, {6, 5, 2}, {0, 5, 0},
		{-1, 1, 0}, {3, 1, 0},
	}
	for _, c := range cases {
		got, ok := Mirror.ResolveIndex(c.i, c.n)
		if !ok || got != c.want {
			t.Fatalf("Mirror.ResolveIndex(%d,%d) = %d,%v want %d", c.i, c.n, got, ok, c.want)
		}
	}
}

func TestResolveIndexGhostConditions(t *testing.T) {
	for _, bc := range []Boundary{Constant, Zero} {
		if _, ok := bc.ResolveIndex(-1, 5); ok {
			t.Fatalf("%v ghost resolved to in-domain", bc)
		}
		if got, ok := bc.ResolveIndex(3, 5); !ok || got != 3 {
			t.Fatalf("%v in-domain index mangled", bc)
		}
	}
}

// TestResolveIndexInRangeProperty: every boundary maps any index within +/-n
// of the domain to a valid in-domain index (or reports a ghost).
func TestResolveIndexInRangeProperty(t *testing.T) {
	f := func(iRaw int16, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		i := int(iRaw) % (2 * n)
		for _, bc := range []Boundary{Clamp, Periodic, Mirror, Constant, Zero} {
			got, ok := bc.ResolveIndex(i, n)
			if ok && (got < 0 || got >= n) {
				return false
			}
			if !ok && bc != Constant && bc != Zero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedGridCorners(t *testing.T) {
	g := New[float64](3, 3)
	g.FillFunc(func(x, y int) float64 { return float64(x + 10*y) })

	clamp := BoundedGrid[float64]{G: g, Cond: Clamp}
	if clamp.At(-1, -1) != g.At(0, 0) {
		t.Fatal("clamp corner wrong")
	}
	if clamp.At(3, 3) != g.At(2, 2) {
		t.Fatal("clamp far corner wrong")
	}

	per := BoundedGrid[float64]{G: g, Cond: Periodic}
	if per.At(-1, 0) != g.At(2, 0) {
		t.Fatal("periodic wrap wrong")
	}

	mir := BoundedGrid[float64]{G: g, Cond: Mirror}
	if mir.At(-1, 2) != g.At(1, 2) {
		t.Fatal("mirror reflect wrong")
	}

	konst := BoundedGrid[float64]{G: g, Cond: Constant, ConstVal: 9.5}
	if konst.At(-1, 1) != 9.5 || konst.At(1, -2) != 9.5 {
		t.Fatal("constant ghost wrong")
	}
	if konst.At(1, 1) != g.At(1, 1) {
		t.Fatal("constant in-domain wrong")
	}

	zero := BoundedGrid[float64]{G: g, Cond: Zero}
	if zero.At(-1, 0) != 0 || zero.At(0, 5) != 0 {
		t.Fatal("zero ghost wrong")
	}
}

func TestBoundedGrid3D(t *testing.T) {
	g := New3D[float32](2, 2, 2)
	g.FillFunc(func(x, y, z int) float32 { return float32(x + 2*y + 4*z) })
	bg := BoundedGrid3D[float32]{G: g, Cond: Clamp}
	if bg.At(-1, -1, -1) != g.At(0, 0, 0) {
		t.Fatal("3-D clamp corner wrong")
	}
	if bg.At(5, 5, 5) != g.At(1, 1, 1) {
		t.Fatal("3-D clamp far corner wrong")
	}
	zg := BoundedGrid3D[float32]{G: g, Cond: Zero}
	if zg.At(0, 0, -1) != 0 {
		t.Fatal("3-D zero ghost wrong")
	}
}

func TestBufferSwap(t *testing.T) {
	b := NewBuffer[float64](2, 2)
	b.Read.Fill(1)
	b.Write.Fill(2)
	b.Swap()
	if b.Read.At(0, 0) != 2 || b.Write.At(0, 0) != 1 {
		t.Fatal("swap did not exchange halves")
	}
}

func TestBufferFromCopies(t *testing.T) {
	init := New[float64](2, 2)
	init.Fill(5)
	b := BufferFrom(init)
	init.Fill(0)
	if b.Read.At(1, 1) != 5 {
		t.Fatal("BufferFrom did not copy init")
	}
}

func TestBuffer3D(t *testing.T) {
	init := New3D[float32](2, 2, 2)
	init.Fill(3)
	b := Buffer3DFrom(init)
	if b.Read.At(1, 1, 1) != 3 {
		t.Fatal("Buffer3DFrom did not copy")
	}
	b.Swap()
	if b.Write.At(1, 1, 1) != 3 {
		t.Fatal("3-D swap wrong")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New[float64](4, 4)
	a.FillFunc(func(x, y int) float64 { return rng.Float64() })
	b := a.Clone()
	b.Set(2, 3, b.At(2, 3)+0.5)
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %g, want 0.5", d)
	}
}

func TestBoundaryStrings(t *testing.T) {
	names := map[Boundary]string{
		Clamp: "clamp", Periodic: "periodic", Mirror: "mirror",
		Constant: "constant", Zero: "zero",
	}
	for bc, want := range names {
		if bc.String() != want {
			t.Fatalf("%v.String() = %q", bc, bc.String())
		}
		if !bc.Valid() {
			t.Fatalf("%v not Valid", bc)
		}
	}
	if Boundary(99).Valid() {
		t.Fatal("invalid boundary reported Valid")
	}
}
