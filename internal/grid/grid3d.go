package grid

import (
	"fmt"

	"stencilabft/internal/num"
)

// Grid3D is a dense nx-by-ny-by-nz 3-D field of T stored as nz contiguous
// 2-D layers. Layer views share storage with the parent, so the paper's
// per-layer ABFT scheme can operate on each layer as an ordinary 2-D grid.
type Grid3D[T num.Float] struct {
	nx, ny, nz int
	data       []T
	layers     []*Grid[T]
}

// New3D returns an nx-by-ny-by-nz grid initialised to zero.
func New3D[T num.Float](nx, ny, nz int) *Grid3D[T] {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	g := &Grid3D[T]{nx: nx, ny: ny, nz: nz, data: make([]T, nx*ny*nz)}
	g.layers = make([]*Grid[T], nz)
	for z := 0; z < nz; z++ {
		g.layers[z] = FromSlice(nx, ny, g.data[z*nx*ny:(z+1)*nx*ny])
	}
	return g
}

// Nx returns the number of columns.
func (g *Grid3D[T]) Nx() int { return g.nx }

// Ny returns the number of rows per layer.
func (g *Grid3D[T]) Ny() int { return g.ny }

// Nz returns the number of layers.
func (g *Grid3D[T]) Nz() int { return g.nz }

// Len returns the number of points, nx*ny*nz.
func (g *Grid3D[T]) Len() int { return len(g.data) }

// At returns the value at (x, y, z).
func (g *Grid3D[T]) At(x, y, z int) T { return g.data[x+y*g.nx+z*g.nx*g.ny] }

// Set stores v at (x, y, z).
func (g *Grid3D[T]) Set(x, y, z int, v T) { g.data[x+y*g.nx+z*g.nx*g.ny] = v }

// Index returns the flat index of (x, y, z).
func (g *Grid3D[T]) Index(x, y, z int) int { return x + y*g.nx + z*g.nx*g.ny }

// Coords returns the (x, y, z) coordinates of flat index i.
func (g *Grid3D[T]) Coords(i int) (x, y, z int) {
	plane := g.nx * g.ny
	z = i / plane
	r := i % plane
	return r % g.nx, r / g.nx, z
}

// Data exposes the backing slice (x fastest, then y, then z).
func (g *Grid3D[T]) Data() []T { return g.data }

// Layer returns layer z as a 2-D grid view sharing storage.
func (g *Grid3D[T]) Layer(z int) *Grid[T] { return g.layers[z] }

// Fill sets every point to v.
func (g *Grid3D[T]) Fill(v T) {
	for i := range g.data {
		g.data[i] = v
	}
}

// FillFunc sets every point to f(x, y, z).
func (g *Grid3D[T]) FillFunc(f func(x, y, z int) T) {
	i := 0
	for z := 0; z < g.nz; z++ {
		for y := 0; y < g.ny; y++ {
			for x := 0; x < g.nx; x++ {
				g.data[i] = f(x, y, z)
				i++
			}
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid3D[T]) Clone() *Grid3D[T] {
	c := New3D[T](g.nx, g.ny, g.nz)
	copy(c.data, g.data)
	return c
}

// CopyFrom copies src's contents into g. The dimensions must match.
func (g *Grid3D[T]) CopyFrom(src *Grid3D[T]) {
	if g.nx != src.nx || g.ny != src.ny || g.nz != src.nz {
		panic("grid: CopyFrom shape mismatch")
	}
	copy(g.data, src.data)
}

// SameShape reports whether g and o have identical dimensions.
func (g *Grid3D[T]) SameShape(o *Grid3D[T]) bool {
	return g.nx == o.nx && g.ny == o.ny && g.nz == o.nz
}

// MaxAbsDiff returns the largest absolute element-wise difference between g
// and o, which must have the same shape.
func (g *Grid3D[T]) MaxAbsDiff(o *Grid3D[T]) T {
	if !g.SameShape(o) {
		panic("grid: MaxAbsDiff shape mismatch")
	}
	var m T
	for i := range g.data {
		d := num.Abs(g.data[i] - o.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// String describes the grid's shape, for diagnostics.
func (g *Grid3D[T]) String() string { return fmt.Sprintf("grid %dx%dx%d", g.nx, g.ny, g.nz) }

// BoundedGrid3D pairs a 3-D grid with a boundary condition, resolving each
// axis independently like BoundedGrid.
type BoundedGrid3D[T num.Float] struct {
	G        *Grid3D[T]
	Cond     Boundary
	ConstVal T
}

// At returns the value at (x, y, z), resolving out-of-domain coordinates
// with the boundary condition.
func (bg BoundedGrid3D[T]) At(x, y, z int) T {
	rx, okx := bg.Cond.ResolveIndex(x, bg.G.nx)
	ry, oky := bg.Cond.ResolveIndex(y, bg.G.ny)
	rz, okz := bg.Cond.ResolveIndex(z, bg.G.nz)
	if !okx || !oky || !okz {
		if bg.Cond == Constant {
			return bg.ConstVal
		}
		return 0
	}
	return bg.G.At(rx, ry, rz)
}
