package grid

import "stencilabft/internal/num"

// Buffer is the double buffer a 2-D stencil sweep ping-pongs between. Read
// holds iteration t, Write receives iteration t+1; Swap exchanges them after
// each sweep. Keeping the t-buffer intact is what lets the online ABFT
// protector compute the second (row) checksum pair lazily, only when the
// first (column) checksum has already flagged an error.
type Buffer[T num.Float] struct {
	Read, Write *Grid[T]
}

// NewBuffer allocates a double buffer of the given shape, both halves
// zeroed.
func NewBuffer[T num.Float](nx, ny int) *Buffer[T] {
	return &Buffer[T]{Read: New[T](nx, ny), Write: New[T](nx, ny)}
}

// BufferFrom allocates a double buffer whose read half is a copy of init.
func BufferFrom[T num.Float](init *Grid[T]) *Buffer[T] {
	return &Buffer[T]{Read: init.Clone(), Write: New[T](init.Nx(), init.Ny())}
}

// Swap exchanges the read and write halves.
func (b *Buffer[T]) Swap() { b.Read, b.Write = b.Write, b.Read }

// Buffer3D is the 3-D double buffer, with layer views kept in sync.
type Buffer3D[T num.Float] struct {
	Read, Write *Grid3D[T]
}

// NewBuffer3D allocates a 3-D double buffer of the given shape.
func NewBuffer3D[T num.Float](nx, ny, nz int) *Buffer3D[T] {
	return &Buffer3D[T]{Read: New3D[T](nx, ny, nz), Write: New3D[T](nx, ny, nz)}
}

// Buffer3DFrom allocates a 3-D double buffer whose read half copies init.
func Buffer3DFrom[T num.Float](init *Grid3D[T]) *Buffer3D[T] {
	b := NewBuffer3D[T](init.Nx(), init.Ny(), init.Nz())
	b.Read.CopyFrom(init)
	return b
}

// Swap exchanges the read and write halves.
func (b *Buffer3D[T]) Swap() { b.Read, b.Write = b.Write, b.Read }
