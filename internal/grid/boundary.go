package grid

import "fmt"

// Boundary selects how out-of-domain ("ghost") points are resolved when a
// stencil reaches past the edge of the grid. The paper calls Clamp
// "bounce-back" (its HotSpot3D kernel reuses the border point itself),
// Periodic wraps, Mirror reflects about the edge, Constant substitutes a
// fixed value and Zero discards the contribution.
type Boundary int

// Supported boundary conditions.
const (
	// Clamp repeats the nearest in-domain point: u(-1) == u(0). This is
	// the condition used by the paper's HotSpot3D prototype (Figure 2).
	Clamp Boundary = iota
	// Periodic wraps around: u(-1) == u(n-1). Under Periodic the
	// interpolation boundary terms alpha/beta vanish (paper Eqs. 8-9).
	Periodic
	// Mirror reflects about the edge point: u(-1) == u(1).
	Mirror
	// Constant substitutes a caller-supplied constant for every ghost
	// point.
	Constant
	// Zero treats every ghost point as 0 (the paper's "empty
	// boundaries").
	Zero
)

// String returns the boundary's display name.
func (b Boundary) String() string {
	switch b {
	case Clamp:
		return "clamp"
	case Periodic:
		return "periodic"
	case Mirror:
		return "mirror"
	case Constant:
		return "constant"
	case Zero:
		return "zero"
	default:
		return fmt.Sprintf("boundary(%d)", int(b))
	}
}

// Valid reports whether b is one of the defined boundary conditions.
func (b Boundary) Valid() bool { return b >= Clamp && b <= Zero }

// ResolveIndex maps a possibly out-of-range index onto [0, n) according to
// the boundary condition. The second result is false when the ghost point
// does not correspond to any in-domain point (Constant and Zero boundaries),
// in which case the caller must substitute the boundary value itself.
//
// Offsets are assumed to be at most n away from the domain, which holds for
// any stencil whose radius is smaller than the domain — Stencil validation
// enforces that.
func (b Boundary) ResolveIndex(i, n int) (int, bool) {
	if i >= 0 && i < n {
		return i, true
	}
	switch b {
	case Clamp:
		if i < 0 {
			return 0, true
		}
		return n - 1, true
	case Periodic:
		i %= n
		if i < 0 {
			i += n
		}
		return i, true
	case Mirror:
		// Reflect about the edge points: -1 -> 1, n -> n-2. For a
		// width-1 domain every reflection lands on 0.
		if n == 1 {
			return 0, true
		}
		period := 2 * (n - 1)
		i %= period
		if i < 0 {
			i += period
		}
		if i >= n {
			i = period - i
		}
		return i, true
	case Constant, Zero:
		return 0, false
	default:
		panic(fmt.Sprintf("grid: invalid boundary %d", int(b)))
	}
}

// BoundedGrid pairs a grid with a boundary condition and an optional
// constant ghost value, giving stencil code a single At that never goes out
// of range. The same condition applies on both axes, matching the paper's
// kernels; distinct per-axis conditions can be composed from two
// BoundedGrids by the caller if ever needed.
type BoundedGrid[T interface{ ~float32 | ~float64 }] struct {
	G        *Grid[T]
	Cond     Boundary
	ConstVal T // ghost value when Cond == Constant
}

// At returns the value at (x, y), resolving out-of-domain coordinates with
// the boundary condition. Corners resolve each axis independently, which
// matches applying the 1-D rule twice (e.g. Clamp maps (-1,-1) to (0,0)).
func (bg BoundedGrid[T]) At(x, y int) T {
	rx, okx := bg.Cond.ResolveIndex(x, bg.G.nx)
	ry, oky := bg.Cond.ResolveIndex(y, bg.G.ny)
	if !okx || !oky {
		if bg.Cond == Constant {
			return bg.ConstVal
		}
		return 0
	}
	return bg.G.At(rx, ry)
}

// InDomain reports whether (x, y) lies inside the grid proper.
func (bg BoundedGrid[T]) InDomain(x, y int) bool {
	return x >= 0 && x < bg.G.nx && y >= 0 && y < bg.G.ny
}
