package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbsMinMax(t *testing.T) {
	if Abs(float32(-2.5)) != 2.5 || Abs(float64(3)) != 3 || Abs(0.0) != 0 {
		t.Fatal("Abs wrong")
	}
	if Max(1.0, 2.0) != 2.0 || Max(float32(5), 2) != 5 {
		t.Fatal("Max wrong")
	}
	if Min(1.0, 2.0) != 1.0 || Min(float32(5), 2) != 2 {
		t.Fatal("Min wrong")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(101.0, 100.0, 1); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("RelErr(101,100) = %g, want 0.01", got)
	}
	// Below the floor: absolute fallback scaled by 1/floor.
	if got := RelErr(0.5, 0.0, 1.0); got != 0.5 {
		t.Fatalf("RelErr below floor = %g, want 0.5", got)
	}
	if got := RelErr(100.0, 100.0, 1); got != 0 {
		t.Fatalf("RelErr equal = %g, want 0", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) || !IsFinite(float32(-2)) {
		t.Fatal("finite values misclassified")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.NaN()) || IsFinite(float32(math.Inf(-1))) {
		t.Fatal("non-finite values misclassified")
	}
}

func TestFlipBitInvolution(t *testing.T) {
	// Property: flipping the same bit twice restores the value exactly.
	f := func(v float64, bit uint8) bool {
		b := int(bit % 64)
		w := FlipBit(FlipBit(v, b), b)
		return math.Float64bits(w) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v float32, bit uint8) bool {
		b := int(bit % 32)
		w := FlipBit(FlipBit(v, b), b)
		return math.Float32bits(w) == math.Float32bits(v)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitChangesValue(t *testing.T) {
	// Property: a flip always changes the bit pattern.
	f := func(v float32, bit uint8) bool {
		b := int(bit % 32)
		return math.Float32bits(FlipBit(v, b)) != math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitKnownPositions(t *testing.T) {
	// Sign bit of binary32.
	if got := FlipBit(float32(1), 31); got != -1 {
		t.Fatalf("sign flip of 1.0f = %g, want -1", got)
	}
	// Sign bit of binary64.
	if got := FlipBit(2.5, 63); got != -2.5 {
		t.Fatalf("sign flip of 2.5 = %g, want -2.5", got)
	}
	// LSB of the binary32 fraction changes by 1 ULP.
	v := float32(1.0)
	if got := FlipBit(v, 0); got != math.Nextafter32(v, 2) {
		t.Fatalf("fraction LSB flip of 1.0f = %g, want next float", got)
	}
	// Top exponent bit of binary32 explodes the magnitude.
	if got := FlipBit(float32(1.0), 30); got < 1e30 {
		t.Fatalf("exponent flip of 1.0f = %g, want huge", got)
	}
}

func TestFlipBitModuloWidth(t *testing.T) {
	if FlipBit(float32(1), 32+31) != -1 {
		t.Fatal("bit position should reduce modulo 32 for float32")
	}
}

func TestBitWidth(t *testing.T) {
	if BitWidth[float32]() != 32 {
		t.Fatal("float32 width")
	}
	if BitWidth[float64]() != 64 {
		t.Fatal("float64 width")
	}
}

func TestClassifyBit(t *testing.T) {
	cases := []struct {
		bit  int
		want BitClass
	}{
		{0, FractionBit}, {22, FractionBit}, {23, ExponentBit},
		{30, ExponentBit}, {31, SignBit},
	}
	for _, c := range cases {
		if got := ClassifyBit[float32](c.bit); got != c.want {
			t.Fatalf("ClassifyBit[float32](%d) = %v, want %v", c.bit, got, c.want)
		}
	}
	cases64 := []struct {
		bit  int
		want BitClass
	}{
		{0, FractionBit}, {51, FractionBit}, {52, ExponentBit},
		{62, ExponentBit}, {63, SignBit},
	}
	for _, c := range cases64 {
		if got := ClassifyBit[float64](c.bit); got != c.want {
			t.Fatalf("ClassifyBit[float64](%d) = %v, want %v", c.bit, got, c.want)
		}
	}
	if FractionBit.String() != "fraction" || ExponentBit.String() != "exponent" || SignBit.String() != "sign" {
		t.Fatal("BitClass names wrong")
	}
}

func TestKahanSumBeatsPlain(t *testing.T) {
	// Summing many small values onto a large one: plain float32
	// accumulation loses them, Kahan keeps them.
	xs := make([]float32, 100001)
	xs[0] = 1 << 20
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.01
	}
	want := float64(1<<20) + 0.01*100000
	plainErr := math.Abs(float64(Sum(xs)) - want)
	kahanErr := math.Abs(float64(KahanSum(xs)) - want)
	if kahanErr >= plainErr {
		t.Fatalf("Kahan error %g not better than plain %g", kahanErr, plainErr)
	}
	if kahanErr > 1 {
		t.Fatalf("Kahan error %g too large", kahanErr)
	}
}

func TestAccumulatorMatchesKahanSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)))
	}
	var acc Accumulator[float64]
	for _, x := range xs {
		acc.Add(x)
	}
	if acc.Value() != KahanSum(xs) {
		t.Fatalf("Accumulator %g != KahanSum %g", acc.Value(), KahanSum(xs))
	}
	acc.Reset()
	if acc.Value() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestEpsilonFor(t *testing.T) {
	if EpsilonFor[float32]() != float32(math.Pow(2, -23)) {
		t.Fatal("float32 epsilon")
	}
	if EpsilonFor[float64]() != math.Pow(2, -52) {
		t.Fatal("float64 epsilon")
	}
}

func TestNextAfterUp(t *testing.T) {
	if NextAfterUp(float32(1)) <= 1 {
		t.Fatal("float32 NextAfterUp not increasing")
	}
	if NextAfterUp(1.0) <= 1.0 {
		t.Fatal("float64 NextAfterUp not increasing")
	}
}
