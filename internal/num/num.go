// Package num provides the numeric foundations shared by the stencil and
// checksum packages: a generic floating-point constraint, tolerant
// comparisons, IEEE-754 bit manipulation for fault injection, and
// compensated (Kahan) summation used to keep checksum round-off low.
package num

import "math"

// Float is the set of element types the library operates on. The paper's
// experiments use float32 (the bit-flip position experiments are specific to
// IEEE-754 binary32); float64 is supported for library users who need the
// extra precision headroom.
type Float interface {
	~float32 | ~float64
}

// Abs returns the absolute value of v.
func Abs[T Float](v T) T {
	if v < 0 {
		return -v
	}
	return v
}

// Max returns the larger of a and b.
func Max[T Float](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min[T Float](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// RelErr returns |got/want - 1|, the relative error used by the paper's
// detection step (Section 3.4). When |want| is below floor, it falls back to
// the absolute difference |got-want| scaled by 1/floor so that zero-sum rows
// and columns do not divide by zero and do not raise spurious detections.
func RelErr[T Float](got, want, floor T) T {
	if Abs(want) < floor {
		return Abs(got-want) / floor
	}
	return Abs(got/want - 1)
}

// IsFinite reports whether v is neither NaN nor infinite.
func IsFinite[T Float](v T) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// FlipBit returns v with the given bit of its IEEE-754 representation
// inverted. For float32 values bits 0-22 are the fraction, 23-30 the
// exponent and 31 the sign; for float64 values bits 0-51 are the fraction,
// 52-62 the exponent and 63 the sign. Bits outside the representation width
// are reduced modulo the width so campaign plans written for one width
// remain valid for the other.
func FlipBit[T Float](v T, bit int) T {
	switch any(v).(type) {
	case float32:
		b := uint(bit) % 32
		u := math.Float32bits(float32(v))
		return T(math.Float32frombits(u ^ (1 << b)))
	default:
		b := uint(bit) % 64
		u := math.Float64bits(float64(v))
		return T(math.Float64frombits(u ^ (1 << b)))
	}
}

// BitWidth returns the number of bits in the IEEE-754 representation of T:
// 32 for float32, 64 for float64.
func BitWidth[T Float]() int {
	var v T
	if _, ok := any(v).(float32); ok {
		return 32
	}
	return 64
}

// BitClass identifies which field of the IEEE-754 representation a bit
// position belongs to. The paper's Figure 10 groups results this way.
type BitClass int

// Bit field classes, ordered from least to most significant.
const (
	FractionBit BitClass = iota
	ExponentBit
	SignBit
)

// String returns the display name of the bit class.
func (c BitClass) String() string {
	switch c {
	case FractionBit:
		return "fraction"
	case ExponentBit:
		return "exponent"
	case SignBit:
		return "sign"
	default:
		return "unknown"
	}
}

// ClassifyBit reports the IEEE-754 field the given bit position falls in for
// element type T.
func ClassifyBit[T Float](bit int) BitClass {
	w := BitWidth[T]()
	b := bit % w
	if b < 0 {
		b += w
	}
	switch {
	case b == w-1:
		return SignBit
	case w == 32 && b >= 23:
		return ExponentBit
	case w == 64 && b >= 52:
		return ExponentBit
	default:
		return FractionBit
	}
}

// Sum accumulates xs with plain left-to-right summation. This matches the
// accumulation order of the paper's fused checksum loop.
func Sum[T Float](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// KahanSum accumulates xs with compensated summation, reducing the
// round-off growth from O(n·eps) to O(eps). The checksum package exposes it
// as an option (ablation A3 in DESIGN.md): a lower round-off floor permits a
// tighter detection threshold epsilon.
func KahanSum[T Float](xs []T) T {
	var s, c T
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// Accumulator is a running compensated sum. The zero value is ready to use.
type Accumulator[T Float] struct {
	sum, comp T
}

// Add folds x into the accumulator.
func (a *Accumulator[T]) Add(x T) {
	y := x - a.comp
	t := a.sum + y
	a.comp = (t - a.sum) - y
	a.sum = t
}

// Value returns the current compensated sum.
func (a *Accumulator[T]) Value() T { return a.sum }

// Reset clears the accumulator to zero.
func (a *Accumulator[T]) Reset() { a.sum, a.comp = 0, 0 }

// NextAfterUp returns the smallest representable value strictly greater
// than v, used by tests to probe detection thresholds at the ULP level.
func NextAfterUp[T Float](v T) T {
	switch x := any(v).(type) {
	case float32:
		return T(math.Nextafter32(x, float32(math.Inf(1))))
	default:
		return T(math.Nextafter(float64(v), math.Inf(1)))
	}
}

// EpsilonFor returns the machine epsilon of T: 2^-23 for float32 and 2^-52
// for float64.
func EpsilonFor[T Float]() T {
	if BitWidth[T]() == 32 {
		return T(math.Float32frombits(0x34000000)) // 2^-23
	}
	return T(math.Float64frombits(0x3CB0000000000000)) // 2^-52
}
