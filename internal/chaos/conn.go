package chaos

import (
	"errors"
	"fmt"
	"net"
	"time"

	"stencilabft/internal/dist"
)

// Wire-level injection: a net.Conn wrapper installed via
// dist.TCPConfig.WrapConn. The TCP transport writes exactly one sealed
// frame per Write call (hello and heartbeats included), so the wrapper is
// frame-aware without buffering: it reads the kind byte straight from the
// header, counts data frames per edge, and applies the scripted wire
// faults — drop, dup, reorder, corrupt, killconn, partition. Every one of
// these must be absorbed by the transport's self-healing layer (CRC,
// sequence numbers, reconnect + resend window); none may change the
// computation's result by a single bit.
//
// Injection happens below the resend window, so a replayed frame passes
// through the wrapper again under a new message index — indices count
// write attempts on the edge, not unique sequence numbers.

// errInjected is the write error surfaced by killconn and partition
// injections — recognisably chaos, never mistaken for a real network
// error in logs.
var errInjected = errors.New("chaos: injected connection failure")

// WrapConn returns the dist.TCPConfig.WrapConn hook that applies this
// injector's wire faults. The hook is applied by the transport at every
// outbound dial — bootstrap and reconnect — and all connections of one
// directed edge share the edge's injection state.
func (in *Injector) WrapConn() func(conn net.Conn, from, to int, d dist.Dir) net.Conn {
	return func(conn net.Conn, from, to int, d dist.Dir) net.Conn {
		return &chaosConn{Conn: conn, in: in, st: in.edge(from, to)}
	}
}

type chaosConn struct {
	net.Conn
	in *Injector
	st *edgeState
}

// frame kinds mirrored from the dist wire format (offset 3 of the header).
// Control frames are uncounted and fault-exempt except under a partition.
const (
	kindOffset    = 3
	kindHello     = 1
	kindHeartbeat = 12
)

func (c *chaosConn) Write(b []byte) (int, error) {
	if len(b) < 4 || b[0] != 'S' || b[1] != 'B' {
		return c.Conn.Write(b) // not a transport frame; pass through
	}
	st := c.st
	st.mu.Lock()

	// An active partition fails every write — data, hello, heartbeat — so
	// reconnect attempts keep failing until the window passes.
	if st.partEnd > 0 {
		if time.Now().UnixNano() < st.partEnd {
			st.mu.Unlock()
			c.Conn.Close()
			return 0, fmt.Errorf("%w (partition)", errInjected)
		}
		st.partEnd = 0
	}

	kind := b[kindOffset]
	if kind == kindHello || kind == kindHeartbeat {
		held := st.takePending()
		st.mu.Unlock()
		n, err := c.Conn.Write(b)
		if err == nil && held != nil {
			c.Conn.Write(held)
		}
		return n, err
	}

	idx := st.count
	st.count++
	for _, f := range st.faults {
		if !st.fires(f, idx) {
			continue
		}
		switch f.Type {
		case Drop:
			held := st.takePending()
			st.mu.Unlock()
			if held != nil {
				c.Conn.Write(held)
			}
			c.in.drops.Add(1)
			return len(b), nil // swallowed; the receiver sees a gap and forces a replay

		case Dup:
			held := st.takePending()
			st.mu.Unlock()
			if held != nil {
				c.Conn.Write(held)
			}
			c.in.dups.Add(1)
			n, err := c.Conn.Write(b)
			if err != nil {
				return n, err
			}
			c.Conn.Write(b) // the duplicate; the receiver's sequence dedup drops it
			return n, nil

		case Reorder:
			// Hold this frame; it goes out after the next write, behind a
			// newer sequence number — the receiver sees the gap first.
			prev := st.takePending()
			st.pending = append([]byte(nil), b...)
			st.mu.Unlock()
			if prev != nil {
				c.Conn.Write(prev)
			}
			c.in.reorders.Add(1)
			return len(b), nil

		case Corrupt:
			// Flip one bit in a cloned buffer — never in b itself, which
			// the transport's resend window retains for the (clean) replay.
			cp := append([]byte(nil), b...)
			var pos int
			if len(cp) > 28 {
				pos = 28 + st.rng.Intn(len(cp)-28) // payload bit
			} else {
				pos = 4 + st.rng.Intn(12) // CRC-covered header field
			}
			bit := byte(1) << uint(st.rng.Intn(8))
			held := st.takePending()
			st.mu.Unlock()
			if held != nil {
				c.Conn.Write(held)
			}
			cp[pos] ^= bit
			c.in.corrupts.Add(1)
			return c.Conn.Write(cp)

		case KillConn:
			st.mu.Unlock()
			c.in.kills.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("%w (killconn)", errInjected)

		case Partition:
			ms := f.Ms
			if ms <= 0 {
				ms = 250
			}
			st.partEnd = time.Now().Add(time.Duration(ms) * time.Millisecond).UnixNano()
			st.mu.Unlock()
			c.in.partitions.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("%w (partition for %dms)", errInjected, ms)
		}
	}

	held := st.takePending()
	st.mu.Unlock()
	n, err := c.Conn.Write(b)
	if err == nil && held != nil {
		c.Conn.Write(held)
	}
	return n, err
}

// takePending returns and clears a frame held by a Reorder. Caller holds
// st.mu.
func (st *edgeState) takePending() []byte {
	p := st.pending
	st.pending = nil
	return p
}
