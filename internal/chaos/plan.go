// Package chaos is the deterministic fault-injection harness of the
// transport stack: a JSON fault plan describes wire and scheduling faults
// (dropped, duplicated, reordered or corrupted frames, killed connections,
// edge partitions, delayed messages, stalled ranks), and a seeded injector
// applies them at one of two seams — a frame-aware net.Conn wrapper hooked
// into dist.TCPConfig.WrapConn (wire faults the self-healing TCP layer
// must absorb bit-identically) and a dist.Transport wrapper that works on
// any backend (scheduling faults, plus message drops that must surface as
// clean classified faults where no wire layer can heal them).
//
// Everything is deterministic under a seed: the same plan, seed and
// workload injects the same faults at the same frame indices, so a CI
// failure replays locally. Probabilistic fields (prob) turn the same plans
// into soak mode — every frame diced independently per edge, still
// reproducible from the seed.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
)

// Fault types. Wire faults (injected below the TCP transport, healed by
// it): Drop, Dup, Reorder, Corrupt, KillConn, Partition. Seam faults
// (injected above any transport): Drop, Partition (surface as classified
// faults), Delay, Stall (absorbed by the lockstep).
const (
	Drop      = "drop"      // frame/message never sent
	Delay     = "delay"     // message held for Ms before sending (seam only)
	Dup       = "dup"       // frame written twice (wire only)
	Reorder   = "reorder"   // frame held and written after its successor (wire only)
	Corrupt   = "corrupt"   // one payload bit flipped after sealing (wire only)
	KillConn  = "killconn"  // connection closed mid-stream (wire only)
	Partition = "partition" // every write on the edge fails for Ms (wire) or Count messages vanish (seam)
	Stall     = "stall"     // rank sleeps Ms before a send — a straggler (seam only)
)

// Edge names a directed halo edge by global rank ids.
type Edge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Fault is one scripted injection. At/Count select deterministic targets
// by the edge's (or rank's) running message index; Prob instead dices
// every message independently — soak mode. Exactly one of the two styles
// per fault: Prob > 0 ignores At/Count.
type Fault struct {
	// Type is one of the fault-type constants above.
	Type string `json:"type"`
	// Edge restricts the fault to one directed edge; nil applies it to
	// every edge (allowed only with Prob, where determinism per edge still
	// holds through the per-edge RNG).
	Edge *Edge `json:"edge,omitempty"`
	// At is the 0-based per-edge message index the fault starts firing at
	// (for Stall: the per-rank send index).
	At int `json:"at,omitempty"`
	// Count is how many consecutive messages are affected (default 1).
	Count int `json:"count,omitempty"`
	// Ms is the duration in milliseconds of a Delay, Stall or wire
	// Partition.
	Ms int `json:"ms,omitempty"`
	// Prob, when > 0, fires the fault on each message independently with
	// this probability (seeded, reproducible) instead of At/Count.
	Prob float64 `json:"prob,omitempty"`
	// Rank is the rank a Stall applies to.
	Rank int `json:"rank,omitempty"`
}

// window returns the deterministic [At, At+n) firing window.
func (f Fault) window() (lo, hi int) {
	n := f.Count
	if n < 1 {
		n = 1
	}
	return f.At, f.At + n
}

// matchesEdge reports whether the fault applies to the directed edge
// from → to.
func (f Fault) matchesEdge(from, to int) bool {
	return f.Edge == nil || (f.Edge.From == from && f.Edge.To == to)
}

// Plan is a parsed fault plan.
type Plan struct {
	Faults []Fault `json:"faults"`
}

// Parse decodes and validates a JSON fault plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("chaos: parsing fault plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a fault plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading fault plan: %w", err)
	}
	return Parse(data)
}

// Validate checks every fault for schema errors: unknown types, missing
// targets, nonsensical parameters.
func (p *Plan) Validate() error {
	if len(p.Faults) == 0 {
		return fmt.Errorf("chaos: fault plan has no faults")
	}
	for i, f := range p.Faults {
		where := fmt.Sprintf("chaos: fault %d (%s)", i, f.Type)
		switch f.Type {
		case Drop, Dup, Reorder, Corrupt, KillConn, Partition, Delay:
			if f.Edge == nil && f.Prob <= 0 {
				return fmt.Errorf("%s: needs an edge (or prob > 0 to dice every edge)", where)
			}
		case Stall:
			if f.Rank < 0 {
				return fmt.Errorf("%s: needs a rank to stall", where)
			}
		default:
			return fmt.Errorf("chaos: fault %d has unknown type %q", i, f.Type)
		}
		switch f.Type {
		case Delay, Stall:
			if f.Ms <= 0 {
				return fmt.Errorf("%s: needs ms > 0", where)
			}
		}
		if f.At < 0 || f.Count < 0 {
			return fmt.Errorf("%s: at/count must be non-negative", where)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return fmt.Errorf("%s: prob %v outside [0, 1]", where, f.Prob)
		}
		if f.Edge != nil && (f.Edge.From < 0 || f.Edge.To < 0) {
			return fmt.Errorf("%s: edge ranks must be non-negative", where)
		}
	}
	return nil
}

// Split partitions the plan's faults by injection seam for the given
// backend. With wire support (the TCP transport), every wire-capable fault
// injects below the transport — where the self-healing layer absorbs it
// bit-identically — and only Delay/Stall stay at the transport seam.
// Without wire support (the in-process channel backend), Drop and
// Partition inject at the seam (they then surface as clean classified
// faults: there is no wire layer to heal them) and the wire-only faults
// are rejected — a plan asking for frame corruption on a backend with no
// frames is a configuration error, not a no-op.
func (p *Plan) Split(wire bool) (seam, conn []Fault, err error) {
	for i, f := range p.Faults {
		switch f.Type {
		case Delay, Stall:
			seam = append(seam, f)
		case Drop, Partition:
			if wire {
				conn = append(conn, f)
			} else {
				seam = append(seam, f)
			}
		case Dup, Reorder, Corrupt, KillConn:
			if wire {
				conn = append(conn, f)
			} else {
				return nil, nil, fmt.Errorf("chaos: fault %d (%s) needs a wire-level transport (tcp); the channel backend has no frames to corrupt", i, f.Type)
			}
		}
	}
	return seam, conn, nil
}
