package chaos

import (
	"strings"
	"testing"
)

// TestPlanParseAndValidate drives the schema checks: every malformed plan
// must be rejected with an error naming the offending fault, and a
// well-formed plan of every type must parse.
func TestPlanParseAndValidate(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string // substring; empty means the plan must parse
	}{
		{"AllTypes", `{"faults":[
			{"type":"drop","edge":{"from":0,"to":1},"at":3},
			{"type":"delay","edge":{"from":1,"to":0},"at":0,"count":2,"ms":10},
			{"type":"dup","edge":{"from":0,"to":1},"at":5},
			{"type":"reorder","edge":{"from":0,"to":1},"at":7},
			{"type":"corrupt","prob":0.01},
			{"type":"killconn","edge":{"from":2,"to":3},"at":9},
			{"type":"partition","edge":{"from":0,"to":1},"at":4,"ms":100},
			{"type":"stall","rank":2,"at":1,"ms":25}]}`, ""},
		{"BadJSON", `{"faults":[`, "parsing fault plan"},
		{"Empty", `{"faults":[]}`, "no faults"},
		{"UnknownType", `{"faults":[{"type":"scramble","edge":{"from":0,"to":1}}]}`, `unknown type "scramble"`},
		{"EdgelessDeterministic", `{"faults":[{"type":"drop","at":3}]}`, "needs an edge"},
		{"DelayWithoutMs", `{"faults":[{"type":"delay","edge":{"from":0,"to":1}}]}`, "needs ms > 0"},
		{"StallWithoutMs", `{"faults":[{"type":"stall","rank":1}]}`, "needs ms > 0"},
		{"NegativeRank", `{"faults":[{"type":"stall","rank":-1,"ms":5}]}`, "needs a rank"},
		{"NegativeAt", `{"faults":[{"type":"drop","edge":{"from":0,"to":1},"at":-2}]}`, "non-negative"},
		{"ProbOutOfRange", `{"faults":[{"type":"drop","edge":{"from":0,"to":1},"prob":1.5}]}`, "outside [0, 1]"},
		{"NegativeEdge", `{"faults":[{"type":"drop","edge":{"from":-1,"to":1},"at":0}]}`, "must be non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse([]byte(c.json))
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				if len(p.Faults) == 0 {
					t.Fatal("parsed plan lost its faults")
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed plan accepted: %s", c.json)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name the problem %q", err, c.wantErr)
			}
		})
	}
}

// TestPlanSplit checks the fault-to-seam routing for both backends: wire
// faults go below the TCP transport, scheduling faults stay at the seam,
// and a wire-only fault on the channel backend is a configuration error.
func TestPlanSplit(t *testing.T) {
	edge := &Edge{From: 0, To: 1}
	p := &Plan{Faults: []Fault{
		{Type: Drop, Edge: edge, At: 1},
		{Type: Delay, Edge: edge, Ms: 5},
		{Type: Stall, Rank: 0, Ms: 5},
		{Type: Corrupt, Edge: edge, At: 2},
	}}

	seam, conn, err := p.Split(true)
	if err != nil {
		t.Fatalf("tcp split failed: %v", err)
	}
	if len(conn) != 2 || conn[0].Type != Drop || conn[1].Type != Corrupt {
		t.Fatalf("tcp split routed %v to the wire, want [drop corrupt]", conn)
	}
	if len(seam) != 2 || seam[0].Type != Delay || seam[1].Type != Stall {
		t.Fatalf("tcp split routed %v to the seam, want [delay stall]", seam)
	}

	if _, _, err := p.Split(false); err == nil || !strings.Contains(err.Error(), "needs a wire-level transport") {
		t.Fatalf("channel split accepted a corrupt fault: %v", err)
	}

	chanOK := &Plan{Faults: []Fault{{Type: Drop, Edge: edge, At: 1}, {Type: Partition, Edge: edge, At: 2}}}
	seam, conn, err = chanOK.Split(false)
	if err != nil || len(conn) != 0 || len(seam) != 2 {
		t.Fatalf("channel split of drop+partition: seam=%v conn=%v err=%v, want both at the seam", seam, conn, err)
	}
}

// TestInjectorDeterminism proves the reproducibility contract: two
// injectors built from the same faults and seed make identical firing
// decisions on every edge, and a different seed diverges (in
// probabilistic mode, where the RNG decides).
func TestInjectorDeterminism(t *testing.T) {
	faults := []Fault{{Type: Drop, Prob: 0.3}}
	pattern := func(seed int64) []bool {
		in := NewInjector(faults, seed)
		var out []bool
		for _, e := range []struct{ from, to int }{{0, 1}, {1, 0}, {2, 3}} {
			st := in.edge(e.from, e.to)
			for i := int64(0); i < 200; i++ {
				out = append(out, st.fires(faults[0], i))
			}
		}
		return out
	}

	a, b := pattern(99), pattern(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := pattern(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

// TestInjectorWindow checks the deterministic At/Count firing window and
// that per-edge counters are independent.
func TestInjectorWindow(t *testing.T) {
	in := NewInjector([]Fault{{Type: Drop, Edge: &Edge{From: 0, To: 1}, At: 2, Count: 3}}, 5)
	st := in.edge(0, 1)
	for i := int64(0); i < 8; i++ {
		want := i >= 2 && i < 5
		if got := st.fires(in.faults[0], i); got != want {
			t.Fatalf("index %d: fires=%v, want %v", i, got, want)
		}
	}
	if other := in.edge(1, 0); len(other.faults) != 0 {
		t.Fatalf("reverse edge inherited %d faults, want none", len(other.faults))
	}
	if again := in.edge(0, 1); again != st {
		t.Fatal("edge state not stable across lookups")
	}
}
