package chaos

import (
	"time"

	"stencilabft/internal/dist"
	"stencilabft/internal/num"
	"stencilabft/internal/telemetry"
)

// Transport-seam injection: a dist.Transport wrapper that works on any
// backend. Faults here act on whole messages, above the wire: a Drop
// suppresses the Send entirely (the receiver's timeout turns it into a
// clean classified fault — there is no wire layer to heal it), a
// Partition drops a window of consecutive messages on the edge, a Delay
// holds the sending rank before the Send, and a Stall sleeps a rank — the
// straggler. Delay and Stall are absorbed by the lockstep barrier and
// must leave the result bit-identical; Drop and Partition must end in a
// classified *dist.Fault, never a hang (configure a receive timeout:
// dist.Options.RecvTimeout on the channel backend, TCPConfig.IOTimeout on
// TCP).
type Transport[T num.Float] struct {
	inner dist.Transport[T]
	in    *Injector
	geo   dist.Decomp
	ring  bool
}

// Wrap layers seam-level fault injection over any transport backend. The
// rank-grid shape (the same arguments dist.Options.NewTransport receives)
// lets the wrapper resolve each Send's destination rank for edge matching.
func Wrap[T num.Float](tr dist.Transport[T], in *Injector, ranksX, ranksY int, ring bool) *Transport[T] {
	return &Transport[T]{inner: tr, in: in, geo: dist.Decomp{RanksX: ranksX, RanksY: ranksY}, ring: ring}
}

// Inner returns the wrapped transport.
func (t *Transport[T]) Inner() dist.Transport[T] { return t.inner }

// apply runs the seam faults for one outgoing message on the edge
// from → to and reports whether the message should be suppressed.
func (t *Transport[T]) apply(from, to int) (suppress bool) {
	st := t.in.edge(from, to)
	st.mu.Lock()
	idx := st.count
	st.count++
	var sleep time.Duration
	for _, f := range st.faults {
		if !st.fires(f, idx) {
			continue
		}
		switch f.Type {
		case Drop:
			t.in.drops.Add(1)
			suppress = true
		case Partition:
			t.in.partitions.Add(1)
			suppress = true
		case Delay:
			t.in.delays.Add(1)
			sleep += time.Duration(f.Ms) * time.Millisecond
		}
	}
	st.mu.Unlock()
	t.stall(from)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return suppress
}

// stall sleeps the rank if a Stall fault fires on its send counter.
func (t *Transport[T]) stall(rank int) {
	st := t.in.rank(rank)
	st.mu.Lock()
	idx := st.count
	st.count++
	var sleep time.Duration
	for _, f := range st.faults {
		if st.fires(f, idx) {
			t.in.stalls.Add(1)
			sleep += time.Duration(f.Ms) * time.Millisecond
		}
	}
	st.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// Send forwards the strip unless a seam fault suppresses it.
func (t *Transport[T]) Send(from int, d dist.Dir, data []T) {
	to, _ := t.geo.Neighbor(from, d, t.ring)
	if t.apply(from, to) {
		return
	}
	t.inner.Send(from, d, data)
}

// Recv passes through: seam faults act on the sending side only.
func (t *Transport[T]) Recv(to int, d dist.Dir) []T { return t.inner.Recv(to, d) }

// Neighbor passes through.
func (t *Transport[T]) Neighbor(id int, d dist.Dir) bool { return t.inner.Neighbor(id, d) }

// Barrier passes through.
func (t *Transport[T]) Barrier() { t.inner.Barrier() }

// SendCkpt forwards the snapshot unless a seam fault suppresses it — buddy
// checkpoint traffic rides the same edges and is diced by the same
// counters. Panics if the wrapped backend is not a CkptCarrier, matching
// the unwrapped contract.
func (t *Transport[T]) SendCkpt(from int, d dist.Dir, gen int, data []T) {
	car := t.inner.(dist.CkptCarrier[T])
	to, _ := t.geo.Neighbor(from, d, t.ring)
	if t.apply(from, to) {
		return
	}
	car.SendCkpt(from, d, gen, data)
}

// RecvCkpt passes through.
func (t *Transport[T]) RecvCkpt(to int, d dist.Dir) ([]T, int, error) {
	return t.inner.(dist.CkptCarrier[T]).RecvCkpt(to, d)
}

// Abort passes through when the backend supports it.
func (t *Transport[T]) Abort(cause error) {
	if a, ok := t.inner.(dist.Aborter); ok {
		a.Abort(cause)
	}
}

// Metrics passes through when the backend counts traffic, so telemetry
// keeps working under chaos.
func (t *Transport[T]) Metrics() telemetry.TransportMetrics {
	if m, ok := t.inner.(dist.MetricsSource); ok {
		return m.Metrics()
	}
	return telemetry.TransportMetrics{}
}

// Close passes through when the backend holds resources.
func (t *Transport[T]) Close() error {
	if c, ok := t.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
