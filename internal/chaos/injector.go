package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Injector is the seeded engine one set of faults runs through: it owns
// the per-edge message counters, per-edge RNGs and fault state that must
// survive reconnects (a rebuilt connection continues the same edge's
// counters, so a fault scripted at frame 7 fires exactly once no matter
// how many connections the edge went through).
type Injector struct {
	seed   int64
	faults []Fault

	mu    sync.Mutex
	edges map[edgeID]*edgeState
	ranks map[int]*edgeState // Stall state, keyed by rank

	// Injection tallies by fault type, for soak reports and tests.
	drops, dups, reorders, corrupts, kills, partitions, delays, stalls atomic.Int64
}

type edgeID struct {
	from, to int
}

// edgeState is one edge's (or, for stalls, one rank's) running injection
// state. Each edge is driven by a single goroutine (the TCP writer, or the
// rank goroutine at the transport seam), but the state is mutex-guarded
// anyway: chaos runs off the hot path by definition, and the lock makes
// the injector safe under any backend's threading.
type edgeState struct {
	mu      sync.Mutex
	count   int64 // messages seen on this edge so far
	rng     *rand.Rand
	faults  []Fault // the injector's faults filtered to this edge
	pending []byte  // frame held back by a Reorder
	partEnd int64   // wall-clock ns until which a wire Partition holds
}

// NewInjector builds the engine for one seam's faults. Every edge derives
// its RNG from the seed and its rank pair, so injections are independent
// across edges yet fully reproducible.
func NewInjector(faults []Fault, seed int64) *Injector {
	return &Injector{
		seed:   seed,
		faults: faults,
		edges:  make(map[edgeID]*edgeState),
		ranks:  make(map[int]*edgeState),
	}
}

// edge returns (creating on first use) the state of the directed edge
// from → to.
func (in *Injector) edge(from, to int) *edgeState {
	in.mu.Lock()
	defer in.mu.Unlock()
	id := edgeID{from, to}
	st, ok := in.edges[id]
	if !ok {
		st = in.newState(int64(from)*1_000_003 + int64(to))
		for _, f := range in.faults {
			if f.Type != Stall && f.matchesEdge(from, to) {
				st.faults = append(st.faults, f)
			}
		}
		in.edges[id] = st
	}
	return st
}

// rank returns (creating on first use) the Stall state of one rank.
func (in *Injector) rank(id int) *edgeState {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.ranks[id]
	if !ok {
		st = in.newState(int64(id)*2_000_029 + 1)
		for _, f := range in.faults {
			if f.Type == Stall && f.Rank == id {
				st.faults = append(st.faults, f)
			}
		}
		in.ranks[id] = st
	}
	return st
}

func (in *Injector) newState(salt int64) *edgeState {
	return &edgeState{rng: rand.New(rand.NewSource(in.seed*6364136223846793005 + salt))}
}

// fires reports whether f triggers on the message with index idx, rolling
// the edge's RNG in probabilistic mode.
func (st *edgeState) fires(f Fault, idx int64) bool {
	if f.Prob > 0 {
		return st.rng.Float64() < f.Prob
	}
	lo, hi := f.window()
	return idx >= int64(lo) && idx < int64(hi)
}

// Stats reports how many injections of each type fired so far — the soak
// report, and what tests assert to prove the run exercised anything.
func (in *Injector) Stats() map[string]int64 {
	out := map[string]int64{}
	for _, e := range []struct {
		name string
		n    *atomic.Int64
	}{
		{Drop, &in.drops}, {Dup, &in.dups}, {Reorder, &in.reorders},
		{Corrupt, &in.corrupts}, {KillConn, &in.kills},
		{Partition, &in.partitions}, {Delay, &in.delays}, {Stall, &in.stalls},
	} {
		if v := e.n.Load(); v > 0 {
			out[e.name] = v
		}
	}
	return out
}

// Total reports the total number of injections fired.
func (in *Injector) Total() int64 {
	var t int64
	for _, v := range in.Stats() {
		t += v
	}
	return t
}
