// Package errs backs the library's errors.Is-able validation sentinels.
//
// The public error surface wants two properties at once: stable,
// caller-actionable message text (the fmt.Errorf strings the packages have
// always produced) and typed classification (errors.Is(err, ErrInvalidSpec)
// so an HTTP layer can map 400-vs-500 without string matching). Wrapping
// with %w would force the sentinel's text into every message; Tagf instead
// attaches one or more sentinel "kinds" to an error whose Error() string is
// exactly the formatted message. errors.Is matches any of the kinds through
// the Is method, so a single error can satisfy both a specific sentinel
// (ErrUnknownScheme) and its umbrella class (ErrInvalidSpec).
package errs

import "fmt"

// tagged is an error carrying sentinel kinds for errors.Is classification;
// its message is free of the sentinels' own text.
type tagged struct {
	kinds []error
	msg   string
}

func (e *tagged) Error() string { return e.msg }

// Is reports whether target is one of the error's kinds — the hook
// errors.Is consults after direct equality fails.
func (e *tagged) Is(target error) bool {
	for _, k := range e.kinds {
		if target == k {
			return true
		}
	}
	return false
}

// Tagf formats an error message and tags it with the given sentinel kinds.
// errors.Is(err, k) is true for every k in kinds; Error() returns only the
// formatted message.
func Tagf(kinds []error, format string, args ...any) error {
	return &tagged{kinds: kinds, msg: fmt.Sprintf(format, args...)}
}
