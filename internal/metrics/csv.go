package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV renders the table as CSV — the machine-readable twin of Render,
// used to feed external plotting of the reproduced figures.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a file, creating or truncating it.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: %s: %w", path, err)
	}
	return f.Close()
}
