package metrics

import (
	"math"
	"strings"
	"testing"

	"stencilabft/internal/grid"
)

func TestL2Error(t *testing.T) {
	a := grid.New[float64](2, 2)
	b := grid.New[float64](2, 2)
	b.Set(0, 0, 3)
	b.Set(1, 1, 4)
	if got := L2Error(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2Error = %g, want 5", got)
	}
	if L2Error(a, a) != 0 {
		t.Fatal("self error nonzero")
	}
}

func TestL2ErrorNonFinite(t *testing.T) {
	a := grid.New[float64](2, 2)
	b := grid.New[float64](2, 2)
	b.Set(0, 0, math.Inf(1))
	if !math.IsInf(L2Error(a, b), 1) {
		t.Fatal("Inf difference should saturate to +Inf")
	}
	b.Set(0, 0, math.NaN())
	if !math.IsInf(L2Error(a, b), 1) {
		t.Fatal("NaN difference should saturate to +Inf")
	}
}

func TestL2Error3D(t *testing.T) {
	a := grid.New3D[float32](2, 2, 2)
	b := grid.New3D[float32](2, 2, 2)
	b.Set(1, 1, 1, 2)
	if got := L2Error3D(a, b); math.Abs(got-2) > 1e-6 {
		t.Fatalf("L2Error3D = %g", got)
	}
}

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatal("N wrong")
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean %g", got)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev %g", got)
	}
	if got := s.Median(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("median %g", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestSampleQuantileInterpolates(t *testing.T) {
	var s Sample
	for _, x := range []float64{0, 10} {
		s.Add(x)
	}
	if got := s.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q25 = %g", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sample should be NaN")
	}
	if s.StdDev() != 0 {
		t.Fatal("stddev of empty sample")
	}
}

func TestSampleInfPropagates(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(math.Inf(1))
	if !math.IsInf(s.Mean(), 1) {
		t.Fatal("Inf should propagate into the mean")
	}
}

func TestSampleBox(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	lo, q1, med, q3, hi := s.Box()
	if lo != 1 || hi != 5 || med != 3 || q1 != 2 || q3 != 4 {
		t.Fatalf("box = %g %g %g %g %g", lo, q1, med, q3, hi)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(2)
	if got := s.Median(); got != 2 {
		t.Fatalf("median after Add = %g", got)
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	var s Sample
	s.Add(1)
	if !strings.Contains(s.Summary(), "n=1") {
		t.Fatalf("summary %q", s.Summary())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 0.25)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta-long-name", "1.5", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTimerAdvances(t *testing.T) {
	timer := StartTimer()
	if timer.Seconds() < 0 {
		t.Fatal("negative elapsed time")
	}
}
