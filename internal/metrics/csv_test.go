package metrics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha, with comma", 1.5)
	tb.AddRow("beta", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"alpha, with comma",1.5`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
}

func TestSaveCSV(t *testing.T) {
	tb := NewTable("demo", "a")
	tb.AddRow(1)
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "a\n1\n" {
		t.Fatalf("file contents %q", raw)
	}
}
