// Package metrics provides the measurement side of the experiment harness:
// the l2-norm arithmetic error of Equation (11), summary statistics for the
// paper's bar charts (mean ± stddev) and box plots (median/quartiles), and
// simple wall-clock timing.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// L2Error computes the paper's arithmetic error (Equation 11): the l2 norm
// of the element-wise difference between the computed result and the
// reference result. Non-finite differences saturate to +Inf, matching how a
// corrupted-beyond-overflow run is reported.
func L2Error[T num.Float](computed, reference *grid.Grid[T]) float64 {
	if !computed.SameShape(reference) {
		panic("metrics: L2Error shape mismatch")
	}
	return l2(computed.Data(), reference.Data())
}

// L2Error3D is L2Error for 3-D domains.
func L2Error3D[T num.Float](computed, reference *grid.Grid3D[T]) float64 {
	if !computed.SameShape(reference) {
		panic("metrics: L2Error3D shape mismatch")
	}
	return l2(computed.Data(), reference.Data())
}

func l2[T num.Float](c, r []T) float64 {
	var sum float64
	for i := range c {
		d := float64(c[i]) - float64(r[i])
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return math.Inf(1)
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Sample accumulates scalar observations (times, errors) across experiment
// repetitions. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations (not a copy; do not mutate).
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the arithmetic mean. Observations of +Inf propagate, which
// is intentional: a campaign whose mean error is +Inf had at least one
// overflowed run, exactly what the paper's "mean arithmetic error" bars
// show off the top of the axis.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	if math.IsInf(m, 0) || math.IsNaN(m) {
		return math.NaN()
	}
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear interpolation
// between order statistics.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Box returns the five-number summary the paper's Figure 10 box plots use:
// min, Q1, median, Q3, max.
func (s *Sample) Box() (min, q1, med, q3, max float64) {
	return s.Quantile(0), s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75), s.Quantile(1)
}

// Summary is a formatted one-line digest.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g median=%.4g max=%.4g",
		s.N(), s.Mean(), s.StdDev(), s.Median(), s.Max())
}

// Timer measures wall-clock spans.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Seconds returns the elapsed time in seconds.
func (t Timer) Seconds() float64 { return time.Since(t.start).Seconds() }
