package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as aligned text, the form the campaign
// binary prints for each reproduced table and figure.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatG(v)
		case float32:
			row[i] = formatG(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatG(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			cw := 0
			if i < len(widths) {
				cw = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", cw+2, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
