package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	abft "stencilabft"
	"stencilabft/internal/serve"
)

// newTestServer starts a service over in-process workers and an httptest
// front-end.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON POSTs a JSON body with an optional tenant header and decodes the
// JSON response.
func postJSON(t *testing.T, ts *httptest.Server, path, tenant string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("POST %s: cannot decode response: %v", path, err)
	}
	return resp.StatusCode, out, resp.Header
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("GET %s: cannot decode response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// submitSpec marshals spec (through its wire form) and POSTs it as a job.
func submitSpec[T abft.Float](t *testing.T, ts *httptest.Server, tenant string, spec abft.Spec[T], iters int) (string, int, map[string]any, http.Header) {
	t.Helper()
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, body, hdr := postJSON(t, ts, "/v1/jobs", tenant,
		map[string]any{"spec": json.RawMessage(wire), "iters": iters})
	id, _ := body["id"].(string)
	return id, status, body, hdr
}

// waitTerminal polls the job status until done or failed.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st serve.JobStatus
		if code := getJSON(t, ts, "/v1/jobs/"+id, &st); code != 200 {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == serve.StateDone || st.State == serve.StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return serve.JobStatus{}
}

// fetchResult GETs a done job's result.
func fetchResult(t *testing.T, ts *httptest.Server, id string) (serve.GridPayload, abft.Stats, bool) {
	t.Helper()
	var body struct {
		Cached bool              `json:"cached"`
		Grid   serve.GridPayload `json:"grid"`
		Stats  abft.Stats        `json:"stats"`
	}
	if code := getJSON(t, ts, "/v1/jobs/"+id+"/result", &body); code != 200 {
		t.Fatalf("GET result %s: status %d", id, code)
	}
	return body.Grid, body.Stats, body.Cached
}

// sseEvents streams /events to completion and parses the data lines.
func sseEvents(t *testing.T, ts *httptest.Server, id string) []serve.Event {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	var evs []serve.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var ev serve.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data line: %v", err)
			}
			evs = append(evs, ev)
		}
	}
	return evs
}

// normalize zeroes the process-dependent Stats fields (wall-clock timing,
// transport backend counters) so deployments compare on the algorithmic
// counters alone.
func normalize(st abft.Stats) abft.Stats {
	var zero abft.Stats
	st.Timing = zero.Timing
	st.Transport = zero.Transport
	return st
}

// onlineSpec is the shared local workload: online ABFT with one injected
// bit-flip, so the result has non-trivial counters to compare.
func onlineSpec(fill float32) abft.Spec[float32] {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](24, 18)
	init.FillFunc(func(x, y int) float32 { return fill + float32(x*3+y) })
	return abft.Spec[float32]{
		Scheme: abft.Online, Op2D: op, Init: init,
		Inject: abft.NewPlan(abft.Injection{Iteration: 3, X: 10, Y: 11, Bit: 30}),
	}
}

// TestServeEndToEnd: POST a job, stream its SSE events, fetch the result,
// and require bit-identity with an in-process Build+Run of the same spec.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	const iters = 6

	spec := onlineSpec(100)
	ref, err := abft.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	ref.Finalize()

	id, code, _, _ := submitSpec(t, ts, "alice", spec, iters)
	if code != http.StatusAccepted {
		t.Fatalf("POST job: status %d, want 202", code)
	}
	evs := sseEvents(t, ts, id)
	var nStats int
	var sawDone bool
	for _, ev := range evs {
		switch ev.Type {
		case "stats":
			nStats++
		case "done":
			sawDone = true
		case "error":
			t.Fatalf("job failed: %s", ev.Error)
		}
	}
	if nStats != iters {
		t.Fatalf("SSE streamed %d stats events, want one per iteration (%d)", nStats, iters)
	}
	if !sawDone {
		t.Fatal("SSE stream ended without a terminal done event")
	}

	if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	grid, gotStats, cached := fetchResult(t, ts, id)
	if cached {
		t.Fatal("first submission reported cached")
	}
	refGrid := ref.Grid()
	if grid.Nx != refGrid.Nx() || grid.Ny != refGrid.Ny() || len(grid.Data) != refGrid.Len() {
		t.Fatalf("result shape %dx%d (%d values)", grid.Nx, grid.Ny, len(grid.Data))
	}
	for i, v := range refGrid.Data() {
		if grid.Data[i] != float64(v) {
			t.Fatalf("result diverges from in-process reference at %d: %v != %v", i, grid.Data[i], v)
		}
	}
	if got, want := normalize(gotStats), normalize(ref.Stats()); got != want {
		t.Fatalf("served stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestServeClusterGang: a 2-rank cluster job fans out one TCP rank per
// worker; the reassembled domain and merged counters must be bit-identical
// to the in-process channel-transport cluster.
func TestServeClusterGang(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	const iters = 6

	spec := onlineSpec(80)
	spec.Deployment = abft.Clustered
	spec.Ranks = 2
	ref, err := abft.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	refStats := ref.Stats()

	id, code, _, _ := submitSpec(t, ts, "alice", spec, iters)
	if code != http.StatusAccepted {
		t.Fatalf("POST cluster job: status %d, want 202", code)
	}
	if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
		t.Fatalf("cluster job state %s: %s", st.State, st.Error)
	}
	grid, gotStats, _ := fetchResult(t, ts, id)
	refGrid := ref.Grid()
	for i, v := range refGrid.Data() {
		if grid.Data[i] != float64(v) {
			t.Fatalf("gang result diverges from channel-transport cluster at %d: %v != %v", i, grid.Data[i], v)
		}
	}
	if got, want := normalize(gotStats), normalize(refStats); got != want {
		t.Fatalf("gang stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestServeCacheHit: an identical resubmission answers 200 from cache with
// the bit-identical result, without consuming a worker.
func TestServeCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Workers: 1})
	spec := onlineSpec(120)

	id1, code, _, _ := submitSpec(t, ts, "alice", spec, 5)
	if code != http.StatusAccepted {
		t.Fatalf("first POST: status %d, want 202", code)
	}
	waitTerminal(t, ts, id1)
	g1, _, cached1 := fetchResult(t, ts, id1)
	if cached1 {
		t.Fatal("first run reported cached")
	}

	// Same computation spelled differently — a different tenant and a
	// fresh marshal — must hit the cache (content addressing).
	id2, code, body, _ := submitSpec(t, ts, "bob", spec, 5)
	if code != http.StatusOK {
		t.Fatalf("resubmission: status %d, want 200 (cache hit)", code)
	}
	if state, _ := body["state"].(string); state != "done" {
		t.Fatalf("cache hit state %q, want done", state)
	}
	g2, _, cached2 := fetchResult(t, ts, id2)
	if !cached2 {
		t.Fatal("resubmission not marked cached")
	}
	if len(g1.Data) != len(g2.Data) {
		t.Fatal("cached result shape differs")
	}
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("cached result differs at %d", i)
		}
	}
	// Different iteration count is a different computation.
	_, code, _, _ = submitSpec(t, ts, "bob", spec, 6)
	if code != http.StatusAccepted {
		t.Fatalf("different iters: status %d, want 202 (no cache hit)", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "stencilserve_cache_hits_total 1") {
		t.Fatalf("metrics missing the cache hit:\n%s", metrics)
	}
	_ = srv
}

// gatedWorkers wraps the in-process worker so jobs cannot start until the
// gate opens — making quota tests deterministic.
type gatedWorker struct {
	inner serve.Worker
	gate  <-chan struct{}
}

func (g *gatedWorker) Send(req serve.JobRequest) error {
	<-g.gate
	return g.inner.Send(req)
}
func (g *gatedWorker) Recv() (serve.WorkerEvent, error) { return g.inner.Recv() }
func (g *gatedWorker) Kill()                            { g.inner.Kill() }

// TestServeQuota: with one worker and a quota of 2, a tenant's third
// concurrent job is rejected 429 with Retry-After while another tenant
// still gets in; after the gate opens everything completes.
func TestServeQuota(t *testing.T) {
	gate := make(chan struct{})
	inner := serve.InprocWorkers()
	var once sync.Once
	cfg := serve.Config{
		Workers:        1,
		QuotaPerTenant: 2,
		Start: func(slot int) (serve.Worker, error) {
			w, err := inner(slot)
			if err != nil {
				return nil, err
			}
			return &gatedWorker{inner: w, gate: gate}, nil
		},
	}
	_, ts := newTestServer(t, cfg)
	defer once.Do(func() { close(gate) })

	specA := onlineSpec(10)
	specB := onlineSpec(20)
	specC := onlineSpec(30)

	idA, code, _, _ := submitSpec(t, ts, "alice", specA, 3)
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	idB, code, _, _ := submitSpec(t, ts, "alice", specB, 3)
	if code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", code)
	}
	_, code, body, hdr := submitSpec(t, ts, "alice", specC, 3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "quota") {
		t.Fatalf("429 error %q does not mention the quota", msg)
	}
	// Another tenant is not affected by alice's quota.
	idC, code, _, _ := submitSpec(t, ts, "bob", specC, 3)
	if code != http.StatusAccepted {
		t.Fatalf("bob's job: status %d, want 202", code)
	}

	once.Do(func() { close(gate) })
	for _, id := range []string{idA, idB, idC} {
		if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
			t.Fatalf("job %s state %s: %s", id, st.State, st.Error)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "stencilserve_quota_rejections_total 1") {
		t.Fatalf("metrics missing the quota rejection:\n%s", metrics)
	}
}

// TestServeMalformed maps the wire-validation surface to HTTP statuses: the
// typed sentinels become 400s at submission time.
func TestServeMalformed(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	grid := `{"nx":8,"ny":8,"generator":"constant","value":100}`
	cases := []struct {
		name string
		body string
		want int
		msg  string // substring of the error
	}{
		{"not json", `{{`, 400, "cannot parse"},
		{"no spec", `{"iters":3}`, 400, `"spec"`},
		{"zero iters", `{"spec":{"stencil":{"name":"laplace5"},"grid":` + grid + `},"iters":0}`, 400, `"iters"`},
		{"unknown wire field", `{"spec":{"stencill":{"name":"laplace5"},"grid":` + grid + `},"iters":3}`, 400, "stencill"},
		{"unknown stencil", `{"spec":{"stencil":{"name":"laplace7"},"grid":` + grid + `},"iters":3}`, 400, "laplace7"},
		{"bad stencil arity", `{"spec":{"stencil":{"name":"laplace5","args":[0.1,0.2]},"grid":` + grid + `},"iters":3}`, 400, "arg"},
		{"unknown elem", `{"spec":{"elem":"float16","stencil":{"name":"laplace5"},"grid":` + grid + `},"iters":3}`, 400, "float16"},
		{"unknown scheme", `{"spec":{"scheme":"onlin","stencil":{"name":"laplace5"},"grid":` + grid + `},"iters":3}`, 400, "onlin"},
		{"unknown generator", `{"spec":{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"generator":"noise"}},"iters":3}`, 400, "noise"},
		{"unresolved upload", `{"spec":{"stencil":{"name":"laplace5"},"grid":{"upload":"nope"}},"iters":3}`, 400, "upload"},
		{"two grid sources", `{"spec":{"stencil":{"name":"laplace5"},"grid":{"nx":2,"ny":1,"generator":"constant","value":1,"data":[1,2]}},"iters":3}`, 400, "exactly one"},
		{"short grid data", `{"spec":{"stencil":{"name":"laplace5"},"grid":{"nx":3,"ny":3,"data":[1,2,3]}},"iters":3}`, 400, "9"},
		{"unknown bc", `{"spec":{"stencil":{"name":"laplace5"},"bc":"bounce","grid":` + grid + `},"iters":3}`, 400, "bounce"},
		{"cluster without ranks", `{"spec":{"scheme":"online","deployment":"cluster","stencil":{"name":"laplace5"},"grid":` + grid + `},"iters":3}`, 400, "Ranks"},
		{"offline cluster", `{"spec":{"scheme":"offline","deployment":"cluster","ranks":2,"period":4,"stencil":{"name":"laplace5"},"grid":` + grid + `},"iters":3}`, 400, "online scheme only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, raw)
			}
			var eb struct {
				Error string `json:"error"`
				Kind  string `json:"kind"`
			}
			if err := json.Unmarshal(raw, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", raw)
			}
			if !strings.Contains(eb.Error, tc.msg) {
				t.Fatalf("error %q missing %q", eb.Error, tc.msg)
			}
			if eb.Kind != "bad_request" {
				t.Fatalf("kind %q, want bad_request", eb.Kind)
			}
		})
	}
}

// TestServeThinTileJob: geometry errors that only Build can detect are
// accepted at POST but fail the job with the client-error status recorded.
func TestServeThinTileJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	body := `{"spec":{"scheme":"online","deployment":"cluster","ranks":16,"stencil":{"name":"laplace5"},"grid":{"nx":16,"ny":16,"generator":"constant","value":100}},"iters":3}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: status %d, want 202 (thin tiles are a Build-time error)", resp.StatusCode)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != serve.StateFailed || fin.Status != 400 {
		t.Fatalf("thin-tile job settled %s with status %d, want failed/400 (%s)", fin.State, fin.Status, fin.Error)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", nil); code != 400 {
		t.Fatalf("GET result of thin-tile job: status %d, want the recorded 400", code)
	}
}

// TestServeUploadFlow: upload a grid, reference it from a job, and require
// the canonical form to hit the cache of the equivalent inline submission.
func TestServeUploadFlow(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	nx, ny := 16, 12
	data := make([]float64, nx*ny)
	for i := range data {
		data[i] = 100 + float64(i%7)
	}
	up := map[string]any{"nx": nx, "ny": ny, "data": data}
	code, body, _ := postJSON(t, ts, "/v1/grids", "", up)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	id1, _ := body["id"].(string)
	code, body, _ = postJSON(t, ts, "/v1/grids", "", up)
	if code != http.StatusCreated || body["id"] != id1 {
		t.Fatalf("re-upload not content-addressed: %d %v vs %s", code, body["id"], id1)
	}

	mkJob := func(grid string) string {
		return fmt.Sprintf(`{"spec":{"scheme":"online","stencil":{"name":"laplace5"},"grid":%s},"iters":4}`, grid)
	}
	inline, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(mkJob(string(inline))))
	if err != nil {
		t.Fatal(err)
	}
	var st1 serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st1)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("inline job: status %d", resp.StatusCode)
	}
	waitTerminal(t, ts, st1.ID)

	// The upload reference resolves to the same canonical document, so
	// this submission is answered from cache.
	resp, err = ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(mkJob(fmt.Sprintf(`{"upload":%q}`, id1))))
	if err != nil {
		t.Fatal(err)
	}
	var st2 serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st2.State != serve.StateDone {
		t.Fatalf("upload job: status %d state %s, want a cache hit", resp.StatusCode, st2.State)
	}
	g1, _, _ := fetchResult(t, ts, st1.ID)
	g2, _, cached := fetchResult(t, ts, st2.ID)
	if !cached {
		t.Fatal("upload-backed job not served from cache")
	}
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("upload-backed result differs at %d", i)
		}
	}
}

// TestServeFloat64AndGenerator: a float64 generator-backed spec round-trips
// through the service bit-identically to the in-process run of the resolved
// spec.
func TestServeFloat64AndGenerator(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	const iters = 5
	body := `{"spec":{"elem":"float64","scheme":"offline","period":4,"recovery":"cone",` +
		`"epsilon":1e-9,"absFloor":1,` +
		`"stencil":{"name":"advect2d","args":[0.3,0.2]},` +
		`"grid":{"nx":20,"ny":16,"generator":"uniform","seed":42}},"iters":5}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	if st.Elem != "float64" {
		t.Fatalf("job elem %q", st.Elem)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != serve.StateDone {
		t.Fatalf("job %s: %s", fin.State, fin.Error)
	}
	grid, _, _ := fetchResult(t, ts, st.ID)

	// In-process reference: resolve the same wire document and run it.
	w, err := abft.ParseWireSpec([]byte(`{"elem":"float64","scheme":"offline","period":4,"recovery":"cone",` +
		`"epsilon":1e-9,"absFloor":1,` +
		`"stencil":{"name":"advect2d","args":[0.3,0.2]},` +
		`"grid":{"nx":20,"ny":16,"generator":"uniform","seed":42}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := abft.SpecFromWire[float64](w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := abft.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	ref.Finalize()
	for i, v := range ref.Grid().Data() {
		if grid.Data[i] != v {
			t.Fatalf("float64 result diverges at %d: %v != %v", i, grid.Data[i], v)
		}
	}
}

// TestServeNotFound covers the 404 surface.
func TestServeNotFound(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	if code := getJSON(t, ts, "/v1/jobs/nope", nil); code != 404 {
		t.Fatalf("unknown job: status %d", code)
	}
	if code := getJSON(t, ts, "/v1/jobs/nope/result", nil); code != 404 {
		t.Fatalf("unknown job result: status %d", code)
	}
	if code := getJSON(t, ts, "/v1/grids/nope", nil); code != 404 {
		t.Fatalf("unknown grid: status %d", code)
	}
	var health map[string]any
	if code := getJSON(t, ts, "/v1/healthz", &health); code != 200 || health["ok"] != true {
		t.Fatalf("healthz: %d %v", code, health)
	}
}
