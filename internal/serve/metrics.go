package serve

import (
	"fmt"
	"io"
	"sync"

	"stencilabft/internal/stats"
)

// phaseRing bounds the per-job phase-time samples the /metrics endpoint
// exposes: the most recent finished jobs, oldest evicted first.
const phaseRing = 32

type phaseSample struct {
	id     string
	tenant string
	timing stats.Timing
	wall   float64
}

// Metrics is the service's counter set, exported in Prometheus text format
// by WritePrometheus — hand-rolled, zero dependencies, same approach as
// stencilrun's /metrics endpoint.
type Metrics struct {
	mu        sync.Mutex
	jobsTotal map[string]int64 // outcome: "done" | "failed" | "cached"
	submitted int64
	cacheHits int64
	quota     int64
	backlog   int64
	phases    []phaseSample

	workers    int
	queueDepth func() int
}

// NewMetrics builds an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{jobsTotal: make(map[string]int64)}
}

// SetWorkers records the pool size gauge.
func (m *Metrics) SetWorkers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers = n
}

// SetQueueProbe installs the live queue-depth gauge source.
func (m *Metrics) SetQueueProbe(f func() int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth = f
}

// Submitted counts a job accepted into the queue.
func (m *Metrics) Submitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
}

// CacheHit counts a submission answered from cache.
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheHits++
	m.jobsTotal["cached"]++
}

// QuotaRejected counts a 429 from the per-tenant concurrency quota.
func (m *Metrics) QuotaRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.quota++
}

// BacklogRejected counts a 429 from the global queue bound.
func (m *Metrics) BacklogRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.backlog++
}

// JobDone records a terminal job: the outcome counter plus its phase-time
// breakdown for the per-job timing series.
func (m *Metrics) JobDone(j *Job) {
	timing, wall := j.terminalTiming()
	outcome := "done"
	if j.State() == StateFailed {
		outcome = "failed"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[outcome]++
	m.phases = append(m.phases, phaseSample{id: j.ID, tenant: j.Tenant, timing: timing, wall: wall})
	if len(m.phases) > phaseRing {
		m.phases = m.phases[len(m.phases)-phaseRing:]
	}
}

// WritePrometheus renders the counters in Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP stencilserve_jobs_total Terminal jobs by outcome.\n")
	fmt.Fprintf(w, "# TYPE stencilserve_jobs_total counter\n")
	for _, outcome := range []string{"done", "failed", "cached"} {
		fmt.Fprintf(w, "stencilserve_jobs_total{outcome=%q} %d\n", outcome, m.jobsTotal[outcome])
	}
	fmt.Fprintf(w, "# TYPE stencilserve_submitted_total counter\n")
	fmt.Fprintf(w, "stencilserve_submitted_total %d\n", m.submitted)
	fmt.Fprintf(w, "# TYPE stencilserve_cache_hits_total counter\n")
	fmt.Fprintf(w, "stencilserve_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(w, "# TYPE stencilserve_quota_rejections_total counter\n")
	fmt.Fprintf(w, "stencilserve_quota_rejections_total %d\n", m.quota)
	fmt.Fprintf(w, "# TYPE stencilserve_backlog_rejections_total counter\n")
	fmt.Fprintf(w, "stencilserve_backlog_rejections_total %d\n", m.backlog)
	fmt.Fprintf(w, "# TYPE stencilserve_workers gauge\n")
	fmt.Fprintf(w, "stencilserve_workers %d\n", m.workers)
	depth := 0
	if m.queueDepth != nil {
		depth = m.queueDepth()
	}
	fmt.Fprintf(w, "# TYPE stencilserve_queue_depth gauge\n")
	fmt.Fprintf(w, "stencilserve_queue_depth %d\n", depth)

	fmt.Fprintf(w, "# HELP stencilserve_job_seconds Wall-clock seconds of recent jobs.\n")
	fmt.Fprintf(w, "# TYPE stencilserve_job_seconds gauge\n")
	for _, p := range m.phases {
		fmt.Fprintf(w, "stencilserve_job_seconds{job=%q,tenant=%q} %g\n", p.id, p.tenant, p.wall)
	}
	fmt.Fprintf(w, "# HELP stencilserve_job_phase_seconds Telemetry phase breakdown of recent jobs.\n")
	fmt.Fprintf(w, "# TYPE stencilserve_job_phase_seconds gauge\n")
	sec := func(ns int64) float64 { return float64(ns) / 1e9 }
	for _, p := range m.phases {
		if p.timing.RanksTimed == 0 {
			continue
		}
		for _, ph := range []struct {
			name string
			ns   int64
		}{
			{"sweep", p.timing.SweepNs},
			{"verify", p.timing.VerifyNs},
			{"repair", p.timing.RepairNs},
			{"pack", p.timing.PackNs},
			{"send", p.timing.SendNs},
			{"recv_wait", p.timing.RecvWaitNs},
			{"unpack", p.timing.UnpackNs},
			{"barrier", p.timing.BarrierNs},
		} {
			fmt.Fprintf(w, "stencilserve_job_phase_seconds{job=%q,phase=%q} %g\n", p.id, ph.name, sec(ph.ns))
		}
	}
}
