package serve

import (
	"sync"
	"time"

	"stencilabft/internal/stats"
)

// JobState is a job's lifecycle position. Queued and running are transient;
// done and failed are terminal.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Event is one entry of a job's event stream — what the SSE endpoint
// replays and relays. "state" marks lifecycle transitions, "stats" carries a
// mid-run counter snapshot, "done"/"error" terminate the stream.
type Event struct {
	Type   string       `json:"type"` // "state" | "stats" | "done" | "error"
	State  JobState     `json:"state,omitempty"`
	Iter   int          `json:"iter,omitempty"`
	Stats  *stats.Stats `json:"stats,omitempty"`
	Error  string       `json:"error,omitempty"`
	Status int          `json:"status,omitempty"`
	Cached bool         `json:"cached,omitempty"`
}

// Terminal reports whether the event closes the stream.
func (e Event) Terminal() bool { return e.Type == "done" || e.Type == "error" }

// History bounds: at most maxStatsHistory "stats" events are replayed to a
// late subscriber (lifecycle events are always kept), so a million-iteration
// job cannot grow the job record without bound.
const maxStatsHistory = 512

// Job is one submitted simulation: identity, canonical document, event
// history, subscribers, and — once terminal — the outcome.
type Job struct {
	ID      string
	Tenant  string
	Key     string // cache key: content hash of (canonical spec, iters)
	Elem    string
	Iters   int
	Wire    []byte // canonical wire-form spec document
	Created time.Time

	mu         sync.Mutex
	state      JobState
	cached     bool
	errMsg     string
	status     int
	result     *GridPayload
	stats      stats.Stats
	haveResult bool
	history    []Event
	nStats     int
	subs       map[chan Event]struct{}
	started    time.Time
	finished   time.Time
	done       chan struct{}
}

func newJob(id, tenant, key, elem string, iters int, wire []byte) *Job {
	j := &Job{
		ID: id, Tenant: tenant, Key: key, Elem: elem, Iters: iters, Wire: wire,
		Created: time.Now(),
		state:   StateQueued,
		subs:    make(map[chan Event]struct{}),
		done:    make(chan struct{}),
	}
	j.history = append(j.history, Event{Type: "state", State: StateQueued})
	return j
}

// publish appends to the history and fans out to subscribers; j.mu held.
// Slow subscribers drop intermediate events (their SSE stream self-heals on
// the terminal event, which the handler derives from Done()).
func (j *Job) publish(ev Event) {
	if ev.Type == "stats" {
		j.nStats++
		if j.nStats > maxStatsHistory {
			j.compactStats()
		}
	}
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// compactStats drops the oldest half of the stats events, keeping every
// lifecycle event; j.mu held.
func (j *Job) compactStats() {
	keep := j.history[:0]
	drop := j.nStats / 2
	for _, ev := range j.history {
		if ev.Type == "stats" && drop > 0 {
			drop--
			j.nStats--
			continue
		}
		keep = append(keep, ev)
	}
	j.history = keep
}

// SetRunning transitions queued → running.
func (j *Job) SetRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.publish(Event{Type: "state", State: StateRunning})
}

// PublishStats streams one mid-run counter snapshot.
func (j *Job) PublishStats(iter int, st stats.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.publish(Event{Type: "stats", Iter: iter, Stats: &st})
}

// Finish records a successful outcome. Idempotent once terminal.
func (j *Job) Finish(res *GridPayload, st stats.Stats, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.state = StateDone
	j.cached = cached
	j.result = res
	j.stats = st
	j.haveResult = true
	j.finished = time.Now()
	j.publish(Event{Type: "done", State: StateDone, Iter: j.Iters, Stats: &st, Cached: cached})
	close(j.done)
}

// Fail records a failure with the HTTP status the error maps to.
// Idempotent once terminal — a gang's first rank failure wins.
func (j *Job) Fail(msg string, status int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.state = StateFailed
	j.errMsg = msg
	j.status = status
	j.finished = time.Now()
	j.publish(Event{Type: "error", State: StateFailed, Error: msg, Status: status})
	close(j.done)
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe atomically snapshots the history (the replay) and registers a
// live channel, so no event falls between replay and stream. cancel
// unregisters; the channel is buffered and lossy for slow consumers.
func (j *Job) Subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.history...)
	ch = make(chan Event, 64)
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// JobStatus is the GET /v1/jobs/{id} view of a job.
type JobStatus struct {
	ID      string   `json:"id"`
	Tenant  string   `json:"tenant"`
	State   JobState `json:"state"`
	Cached  bool     `json:"cached,omitempty"`
	Elem    string   `json:"elem"`
	Iters   int      `json:"iters"`
	Key     string   `json:"key"`
	Error   string   `json:"error,omitempty"`
	Status  int      `json:"status,omitempty"` // HTTP status of the failure
	Seconds float64  `json:"seconds,omitempty"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID: j.ID, Tenant: j.Tenant, State: j.state, Cached: j.cached,
		Elem: j.Elem, Iters: j.Iters, Key: j.Key,
		Error: j.errMsg, Status: j.status,
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		s.Seconds = j.finished.Sub(j.started).Seconds()
	}
	return s
}

// Result returns the outcome of a done job.
func (j *Job) Result() (*GridPayload, stats.Stats, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.stats, j.haveResult
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminalTiming returns the timing breakdown and wall seconds for metrics.
func (j *Job) terminalTiming() (stats.Timing, float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var wall float64
	if !j.finished.IsZero() && !j.started.IsZero() {
		wall = j.finished.Sub(j.started).Seconds()
	}
	return j.stats.Timing, wall
}
