package serve_test

import (
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	abft "stencilabft"
	"stencilabft/internal/serve"
)

// TestMain lets this test binary double as a pool worker: re-exec'd with
// STENCILSERVE_WORKER=1 it speaks the worker protocol on stdin/stdout
// instead of running tests — the same shape cmd/stencilserve uses with its
// -worker flag, but without needing a separate binary on disk.
func TestMain(m *testing.M) {
	if os.Getenv("STENCILSERVE_WORKER") == "1" {
		if err := serve.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// processStart returns a StartWorker forking this test binary into worker
// mode.
func processStart(t *testing.T) serve.StartWorker {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return serve.ProcessWorkers(exe, []string{"STENCILSERVE_WORKER=1"})
}

// TestProcessWorkerEndToEnd runs a job through real child processes and
// requires bit-identity with the in-process reference — the wire protocol
// and the fork/exec path change nothing about the numbers.
func TestProcessWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	_, ts := newTestServer(t, serve.Config{Workers: 2, Start: processStart(t)})
	const iters = 5

	spec := onlineSpec(55)
	ref, err := abft.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	ref.Finalize()

	id, code, _, _ := submitSpec(t, ts, "alice", spec, iters)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	grid, gotStats, _ := fetchResult(t, ts, id)
	for i, v := range ref.Grid().Data() {
		if grid.Data[i] != float64(v) {
			t.Fatalf("process-worker result diverges at %d: %v != %v", i, grid.Data[i], v)
		}
	}
	if got, want := normalize(gotStats), normalize(ref.Stats()); got != want {
		t.Fatalf("process-worker stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestProcessWorkerGang fans a 2-rank cluster out over two child
// processes — the full stencilserve deployment shape: real processes, real
// sockets — and checks bit-identity against the in-process cluster.
func TestProcessWorkerGang(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	_, ts := newTestServer(t, serve.Config{Workers: 2, Start: processStart(t)})
	const iters = 4

	spec := onlineSpec(70)
	spec.Deployment = abft.Clustered
	spec.Ranks = 2
	ref, err := abft.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	id, code, _, _ := submitSpec(t, ts, "alice", spec, iters)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
		t.Fatalf("gang job %s: %s", st.State, st.Error)
	}
	grid, _, _ := fetchResult(t, ts, id)
	for i, v := range ref.Grid().Data() {
		if grid.Data[i] != float64(v) {
			t.Fatalf("process gang diverges at %d: %v != %v", i, grid.Data[i], v)
		}
	}
}

// TestWorkerRespawnAfterTimeout: a job overrunning its deadline gets its
// worker killed (failing the job 500), and the respawned worker serves the
// next job normally — one runaway never wedges a slot.
func TestWorkerRespawnAfterTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	_, ts := newTestServer(t, serve.Config{
		Workers:    1,
		Start:      processStart(t),
		JobTimeout: 200 * time.Millisecond,
	})

	// A run far longer than the deadline.
	runaway := onlineSpec(10)
	id, code, _, _ := submitSpec(t, ts, "alice", runaway, 500_000)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	st := waitTerminal(t, ts, id)
	if st.State != serve.StateFailed || st.Status != 500 {
		t.Fatalf("runaway job settled %s/%d, want failed/500 (%s)", st.State, st.Status, st.Error)
	}

	// The slot respawned: the next job completes.
	ok := onlineSpec(20)
	id, code, _, _ = submitSpec(t, ts, "alice", ok, 3)
	if code != http.StatusAccepted {
		t.Fatalf("POST after respawn: status %d", code)
	}
	if st := waitTerminal(t, ts, id); st.State != serve.StateDone {
		t.Fatalf("job after respawn settled %s: %s", st.State, st.Error)
	}
}
