package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	abft "stencilabft"
	"stencilabft/internal/stats"
)

// Backpressure sentinels — both map to 429 with a Retry-After hint.
var (
	// ErrQuota rejects a submission because the tenant is already at its
	// queued-plus-running concurrency quota.
	ErrQuota = errors.New("serve: tenant is at its concurrent-job quota")
	// ErrBacklog rejects a submission because the global queue is full.
	ErrBacklog = errors.New("serve: job queue is full")
	// ErrShutdown rejects a submission because the service is stopping.
	ErrShutdown = errors.New("serve: server is shutting down")
)

// Config tunes the service. The zero value is usable: every field has a
// working default applied by withDefaults.
type Config struct {
	// Workers is the pool size (default 2 — the smallest size that can
	// overlap two tenants).
	Workers int
	// Start launches pool workers; default InprocWorkers.
	// cmd/stencilserve re-execs itself with -worker instead.
	Start StartWorker
	// QuotaPerTenant bounds each tenant's queued+running jobs (default 4).
	// Cache hits bypass the quota: they cost no worker time.
	QuotaPerTenant int
	// QueueDepth bounds the global backlog (default 64).
	QueueDepth int
	// JobTimeout kills a job's workers when exceeded (default 2m).
	JobTimeout time.Duration
	// CacheEntries bounds the result cache (default 128).
	CacheEntries int
	// MaxBodyBytes bounds a job submission body (default 64 MiB).
	MaxBodyBytes int64
	// MaxUploadBytes bounds one grid upload (default 64 MiB).
	MaxUploadBytes int64
	// MaxIters bounds a job's run length (default 1e6).
	MaxIters int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// DisableFanOut pins every job to a single worker. By default a 2-D
	// cluster job whose rank count fits the pool is fanned out one rank
	// per worker over the TCP transport — bit-identical to the in-worker
	// channel transport, just actually parallel across processes.
	DisableFanOut bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.Start == nil {
		c.Start = InprocWorkers()
	}
	if c.QuotaPerTenant < 1 {
		c.QuotaPerTenant = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes < 1 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxUploadBytes < 1 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxIters < 1 {
		c.MaxIters = 1_000_000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// retainedJobs bounds the terminal-job records kept for status queries.
const retainedJobs = 1024

// Scheduler owns the job queue: admission (quota, backlog), dispatch over
// the worker pool (with gang fan-out for cluster jobs), result caching and
// job bookkeeping. One dispatcher goroutine pulls jobs FIFO; each job then
// runs on its own goroutine holding one or more pool slots.
type Scheduler struct {
	cfg   Config
	pool  *Pool
	cache *Cache
	met   *Metrics

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	active map[string]int
	seq    int
}

// NewScheduler starts the worker pool and the dispatcher.
func NewScheduler(cfg Config, met *Metrics) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(cfg.Workers, cfg.Start)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg: cfg, pool: pool, cache: NewCache(cfg.CacheEntries), met: met,
		ctx: ctx, cancel: cancel,
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:   make(map[string]*Job),
		active: make(map[string]int),
	}
	met.SetWorkers(pool.Size())
	met.SetQueueProbe(func() int { return len(s.queue) })
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Close stops the dispatcher, kills the pool (failing in-flight jobs fast)
// and waits for every job goroutine to finish.
func (s *Scheduler) Close() {
	s.cancel()
	s.pool.Close()
	s.wg.Wait()
}

// Submit admits a job: cache hits return an already-done job immediately
// (bypassing the quota — they cost no worker time); otherwise the job is
// queued FIFO, bounded by the tenant quota and the global backlog.
func (s *Scheduler) Submit(tenant, elem string, canonical []byte, iters int) (*Job, error) {
	key := Key(canonical, iters)
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%04d-%s", s.seq, key[:12])
	s.mu.Unlock()

	if res, ok := s.cache.Get(key); ok {
		j := newJob(id, tenant, key, elem, iters, canonical)
		s.register(j)
		s.met.CacheHit()
		j.SetRunning()
		j.Finish(res.Grid, res.Stats, true)
		return j, nil
	}

	s.mu.Lock()
	if s.active[tenant] >= s.cfg.QuotaPerTenant {
		n := s.active[tenant]
		s.mu.Unlock()
		s.met.QuotaRejected()
		return nil, fmt.Errorf("%w: tenant %q has %d job(s) queued or running (quota %d)",
			ErrQuota, tenant, n, s.cfg.QuotaPerTenant)
	}
	j := newJob(id, tenant, key, elem, iters, canonical)
	s.active[tenant]++
	s.mu.Unlock()

	select {
	case <-s.ctx.Done():
		s.releaseTenant(tenant)
		return nil, ErrShutdown
	case s.queue <- j:
	default:
		s.releaseTenant(tenant)
		s.met.BacklogRejected()
		return nil, fmt.Errorf("%w (%d queued)", ErrBacklog, len(s.queue))
	}
	s.register(j)
	s.met.Submitted()
	return j, nil
}

// Job looks up a submitted job by id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Scheduler) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > retainedJobs {
		old, ok := s.jobs[s.order[0]]
		if ok && old.State() != StateDone && old.State() != StateFailed {
			break // never evict a live job; the backlog bound keeps this finite
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

func (s *Scheduler) releaseTenant(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active[tenant]--; s.active[tenant] <= 0 {
		delete(s.active, tenant)
	}
}

// finish settles a terminal job's accounting.
func (s *Scheduler) finish(j *Job) {
	s.releaseTenant(j.Tenant)
	s.met.JobDone(j)
}

// dispatch is the single scheduling loop: pull the next job, decide its
// worker layout, acquire the slots (blocking until free — FIFO order is the
// fairness contract), and hand off to a runner goroutine.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		var j *Job
		select {
		case <-s.ctx.Done():
			s.drainQueue()
			return
		case j = <-s.queue:
		}
		n := s.gangSize(j)
		slots, err := s.acquireGang(n)
		if err != nil {
			j.Fail("server shutting down", 503)
			s.finish(j)
			s.drainQueue()
			return
		}
		s.wg.Add(1)
		if len(slots) > 1 {
			go s.runGang(j, slots)
		} else {
			go s.runSingle(j, slots[0])
		}
	}
}

// drainQueue fails everything still queued at shutdown.
func (s *Scheduler) drainQueue() {
	for {
		select {
		case j := <-s.queue:
			j.Fail("server shutting down", 503)
			s.finish(j)
		default:
			return
		}
	}
}

// gangSize decides how many workers a job gets. A 2-D cluster whose rank
// count fits the pool is fanned out one rank per worker over TCP — the
// layout stencilrun -launch produces — unless fan-out is disabled.
// Everything else (local schemes, 3-D layer clusters, oversize rank
// counts) runs whole inside one worker on the channel transport; both
// layouts are bit-identical by the transport contract.
func (s *Scheduler) gangSize(j *Job) int {
	if s.cfg.DisableFanOut || s.pool.Size() < 2 {
		return 1
	}
	w, err := abft.ParseWireSpec(j.Wire)
	if err != nil || w.Deployment != string(abft.Clustered) {
		return 1
	}
	if w.Grid == nil || w.Grid.Nz > 0 || w.Topology == string(abft.TopoLayers) {
		return 1
	}
	n := w.RanksX * w.RanksY
	if n == 0 {
		n = w.Ranks
	}
	if n < 2 || n > s.pool.Size() {
		return 1
	}
	return n
}

// acquireGang blocks until n slots are held. Only the dispatcher acquires,
// so waiting for the full gang cannot deadlock against another acquirer —
// running jobs always release.
func (s *Scheduler) acquireGang(n int) ([]*Slot, error) {
	slots := make([]*Slot, 0, n)
	for len(slots) < n {
		sl, err := s.pool.Acquire(s.ctx)
		if err != nil {
			for _, held := range slots {
				s.pool.Release(held, true)
			}
			return nil, err
		}
		slots = append(slots, sl)
	}
	return slots, nil
}

// statsEvery picks the stats-stream cadence: every iteration up to 256,
// then thinned to ~256 events per run.
func statsEvery(iters int) int {
	if iters <= 256 {
		return 1
	}
	return (iters + 255) / 256
}

// runSingle executes a job on one worker.
func (s *Scheduler) runSingle(j *Job, slot *Slot) {
	defer s.wg.Done()
	j.SetRunning()
	req := JobRequest{ID: j.ID, Spec: j.Wire, Iters: j.Iters, StatsEvery: statsEvery(j.Iters)}
	// The kill token scopes the watchdog to this run: if the timer fires
	// concurrently with completion, the late callback is a no-op instead of
	// shooting a respawned worker or the slot's next tenant.
	token := slot.Arm()
	watchdog := time.AfterFunc(s.cfg.JobTimeout, func() { slot.KillIf(token) })
	err := slot.Run(req, func(ev WorkerEvent) {
		switch ev.Event {
		case "stats":
			if ev.Stats != nil {
				j.PublishStats(ev.Iter, *ev.Stats)
			}
		case "done":
			if ev.Grid == nil || ev.Stats == nil {
				j.Fail("serve: worker returned no result", 500)
				return
			}
			s.cache.Put(j.Key, Result{Grid: ev.Grid, Stats: *ev.Stats})
			j.Finish(ev.Grid, *ev.Stats, false)
		case "error":
			j.Fail(ev.Error, ev.Status)
		}
	})
	watchdog.Stop()
	if err != nil {
		j.Fail(fmt.Sprintf("serve: worker failed (killed or crashed): %v", err), 500)
	}
	s.pool.Release(slot, err == nil)
	s.finish(j)
}

// runGang executes a cluster job across len(slots) workers, one TCP rank
// each. The rendezvous endpoint is reserved by the listen-and-close trick
// (grab a free port, hand the address to every rank); rank 0 streams the
// stats events. Tiles are reassembled into the global domain and per-rank
// counters merged exactly as the launcher merges CHILDSTATS.
func (s *Scheduler) runGang(j *Job, slots []*Slot) {
	defer s.wg.Done()
	j.SetRunning()
	n := len(slots)

	releaseAll := func(healthy []bool) {
		for k, sl := range slots {
			s.pool.Release(sl, healthy == nil || healthy[k])
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		j.Fail(fmt.Sprintf("serve: cannot reserve a rendezvous port: %v", err), 500)
		releaseAll(nil)
		s.finish(j)
		return
	}
	rdv := l.Addr().String()
	l.Close()

	type rankOut struct {
		done    WorkerEvent
		jobErr  string
		status  int
		procErr error
	}
	outs := make([]rankOut, n)
	healthy := make([]bool, n)
	// Arm every slot before any rank starts: the tokens scope both the
	// watchdog and the error collapse to this gang's runs, so a late kill
	// cannot hit a slot that finished and moved on to another job.
	tokens := make([]uint64, n)
	for k, sl := range slots {
		tokens[k] = sl.Arm()
	}
	killAll := func() {
		for k, sl := range slots {
			sl.KillIf(tokens[k])
		}
	}
	watchdog := time.AfterFunc(s.cfg.JobTimeout, killAll)
	var collapse sync.Once

	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			req := JobRequest{
				ID: j.ID, Spec: j.Wire, Iters: j.Iters,
				TCP: true, Rank: k, Rendezvous: rdv,
			}
			if k == 0 {
				req.StatsEvery = statsEvery(j.Iters)
			}
			err := slots[k].Run(req, func(ev WorkerEvent) {
				switch ev.Event {
				case "stats":
					// Rank 0's view: progress plus its own tile's
					// counters — documented as indicative, the final
					// stats are the merged gang totals.
					if k == 0 && ev.Stats != nil {
						j.PublishStats(ev.Iter, *ev.Stats)
					}
				case "done":
					outs[k].done = ev
				case "error":
					outs[k].jobErr, outs[k].status = ev.Error, ev.Status
					// One rank down stalls the whole gang at the next
					// halo exchange; collapse it instead of waiting for
					// the watchdog.
					collapse.Do(killAll)
				}
			})
			outs[k].procErr = err
			healthy[k] = err == nil
		}(k)
	}
	wg.Wait()
	watchdog.Stop()
	releaseAll(healthy)
	defer s.finish(j)

	for k := range outs {
		if outs[k].jobErr != "" {
			j.Fail(outs[k].jobErr, outs[k].status)
			return
		}
	}
	for k := range outs {
		if outs[k].procErr != nil {
			j.Fail(fmt.Sprintf("serve: rank %d worker failed: %v", k, outs[k].procErr), 500)
			return
		}
		if outs[k].done.Grid == nil || outs[k].done.Stats == nil {
			j.Fail(fmt.Sprintf("serve: rank %d returned no result", k), 500)
			return
		}
	}

	w, err := abft.ParseWireSpec(j.Wire)
	if err != nil || w.Grid == nil {
		j.Fail("serve: cannot re-read the job's canonical spec", 500)
		return
	}
	nx, ny := w.Grid.Nx, w.Grid.Ny
	data := make([]float64, nx*ny)
	perRank := make([]stats.Stats, 0, n)
	for k := range outs {
		gp := outs[k].done.Grid
		for yy := 0; yy < gp.Ny; yy++ {
			row := (gp.Y0+yy)*nx + gp.X0
			copy(data[row:row+gp.Nx], gp.Data[yy*gp.Nx:(yy+1)*gp.Nx])
		}
		perRank = append(perRank, *outs[k].done.Stats)
	}
	// Each rank process already reports lockstep-normalised Iterations;
	// merging sums them, so restore the lockstep count — the same
	// normalisation the launcher applies to CHILDSTATS.
	merged := stats.MergeAll(perRank)
	merged.Iterations = perRank[0].Iterations
	res := Result{Grid: &GridPayload{Nx: nx, Ny: ny, Data: data}, Stats: merged}
	s.cache.Put(j.Key, res)
	j.Finish(res.Grid, merged, false)
}
