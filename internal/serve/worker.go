// Package serve implements the stencilserve multi-tenant simulation
// service: a JSON/HTTP front-end that accepts wire-form Specs (see the root
// package's WireSpec), schedules them over a persistent pool of worker
// processes, streams per-iteration Stats over SSE, and content-addresses
// finished results so identical submissions are answered from cache.
//
// The package splits into the worker side (this file: a line-JSON protocol
// any process can speak over stdin/stdout) and the host side (pool,
// scheduler, cache, HTTP surface). The same WorkerMain runs as a child
// process of cmd/stencilserve, as a re-exec'd test binary, or in-process
// over an io.Pipe — the scheduler cannot tell the difference, which is what
// makes the service testable without forking in every test.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	abft "stencilabft"
	"stencilabft/internal/stats"
)

// JobRequest is one unit of work sent to a worker: the canonical wire-form
// spec plus the run length. A TCP request additionally places the worker as
// one rank of a multi-process cluster meeting at Rendezvous — the
// scheduler's gang fan-out (one rank per pooled worker, the same layout
// stencilrun -launch produces).
type JobRequest struct {
	ID         string          `json:"id"`
	Spec       json.RawMessage `json:"spec"`
	Iters      int             `json:"iters"`
	StatsEvery int             `json:"statsEvery,omitempty"` // 0 disables the stats stream

	TCP        bool   `json:"tcp,omitempty"`
	Rank       int    `json:"rank,omitempty"`
	Rendezvous string `json:"rendezvous,omitempty"`
}

// WorkerEvent is one line of a worker's reply stream: zero or more "stats"
// events followed by exactly one terminal "done" or "error" event. ID echoes
// the request so a host can discard stale events after a kill.
type WorkerEvent struct {
	ID     string       `json:"id"`
	Event  string       `json:"event"` // "stats" | "done" | "error"
	Iter   int          `json:"iter,omitempty"`
	Stats  *stats.Stats `json:"stats,omitempty"`
	Grid   *GridPayload `json:"grid,omitempty"`
	Error  string       `json:"error,omitempty"`
	Status int          `json:"status,omitempty"` // suggested HTTP status for "error"
}

// GridPayload carries a result domain as float64 values — exact for both
// element types, so bit-identity survives the wire. A TCP rank returns only
// its tile, placed at (X0, Y0) of the global domain; the scheduler
// reassembles.
type GridPayload struct {
	Nx   int       `json:"nx"`
	Ny   int       `json:"ny"`
	Nz   int       `json:"nz,omitempty"`
	X0   int       `json:"x0,omitempty"`
	Y0   int       `json:"y0,omitempty"`
	Data []float64 `json:"data"`
}

// StatusFor maps an error from the spec/wire validation surface to the HTTP
// status the service answers with: typed client errors (malformed wire
// documents, invalid specs, thin tiles, bad operators, quota pressure)
// become 4xx, everything else is a 500.
func StatusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrQuota) || errors.Is(err, ErrBacklog):
		return http.StatusTooManyRequests
	case errors.Is(err, abft.ErrInvalidSpec),
		errors.Is(err, abft.ErrThinTile),
		errors.Is(err, abft.ErrInvalidOp),
		errors.Is(err, abft.ErrUnresolvedUpload),
		errors.Is(err, abft.ErrNotSerializable):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// WorkerMain is the worker side of the pool protocol: decode JobRequests
// from r, run each, and stream WorkerEvents to w until r drains. It returns
// nil on a clean EOF. cmd/stencilserve invokes it under -worker; tests run
// it in-process over pipes or re-exec themselves into it.
func WorkerMain(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var req JobRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("serve: worker cannot decode request: %w", err)
		}
		emit := func(ev WorkerEvent) error {
			ev.ID = req.ID
			return enc.Encode(ev)
		}
		if err := runJob(req, emit); err != nil {
			return err
		}
	}
}

// runJob executes one request, translating every failure into a terminal
// "error" event. The returned error is transport-level only (the host went
// away); job-level problems never kill the worker.
func runJob(req JobRequest, emit func(WorkerEvent) error) error {
	fail := func(err error) error {
		return emit(WorkerEvent{Event: "error", Error: err.Error(), Status: StatusFor(err)})
	}
	if req.Iters < 0 {
		return emit(WorkerEvent{Event: "error", Status: http.StatusBadRequest,
			Error: fmt.Sprintf("serve: negative iteration count %d", req.Iters)})
	}
	w, err := abft.ParseWireSpec(req.Spec)
	if err != nil {
		return fail(err)
	}
	if w.Elem == "float64" {
		return runTyped[float64](req, w, emit)
	}
	return runTyped[float32](req, w, emit)
}

// runTyped is the element-typed job body: resolve the wire spec, attach the
// process-local knobs the wire form deliberately excludes (pool,
// telemetry, and — for gang members — the TCP placement), run, and return
// stats plus the result domain.
func runTyped[T abft.Float](req JobRequest, w *abft.WireSpec, emit func(WorkerEvent) error) (err error) {
	fail := func(ferr error) error {
		return emit(WorkerEvent{Event: "error", Error: ferr.Error(), Status: StatusFor(ferr)})
	}
	// A transport fault mid-run panics (MPI_ERRORS_ARE_FATAL semantics);
	// surface it as a job error instead of killing the worker loop.
	defer func() {
		if r := recover(); r != nil {
			err = fail(fmt.Errorf("serve: job panicked: %v", r))
		}
	}()
	spec, err := abft.SpecFromWire[T](w)
	if err != nil {
		return fail(err)
	}
	// The pool is job-local, and WorkerMain serves many jobs from one
	// long-lived process: close it when the job ends or every job leaks
	// GOMAXPROCS-1 parked goroutines for the worker's lifetime.
	pool := abft.NewPool()
	defer pool.Close()
	spec.Pool = pool
	spec.Telemetry = abft.NewTelemetry(0)
	if req.TCP {
		spec.Transport = abft.TransportTCP
		spec.Rank = req.Rank
		spec.Rendezvous = req.Rendezvous
	}
	p, err := abft.Build(spec)
	if err != nil {
		return fail(err)
	}
	for i := 1; i <= req.Iters; i++ {
		p.Step()
		if req.StatsEvery > 0 && (i%req.StatsEvery == 0 || i == req.Iters) {
			st := p.Stats()
			if err := emit(WorkerEvent{Event: "stats", Iter: i, Stats: &st}); err != nil {
				return err
			}
		}
	}
	p.Finalize()
	st := p.Stats()
	ev := WorkerEvent{Event: "done", Iter: req.Iters, Stats: &st}
	if req.TCP {
		cl, ok := p.(*abft.Cluster[T])
		if !ok {
			return fail(fmt.Errorf("serve: tcp placement built %T, want a 2-D cluster", p))
		}
		ev.Grid = rankTile(cl, req.Rank)
		cl.Close()
		return emit(ev)
	}
	if g3 := p.Grid3D(); g3 != nil {
		data := make([]float64, g3.Len())
		for i, v := range g3.Data() {
			data[i] = float64(v)
		}
		ev.Grid = &GridPayload{Nx: g3.Nx(), Ny: g3.Ny(), Nz: g3.Nz(), Data: data}
	} else if g := p.Grid(); g != nil {
		data := make([]float64, g.Len())
		for i, v := range g.Data() {
			data[i] = float64(v)
		}
		ev.Grid = &GridPayload{Nx: g.Nx(), Ny: g.Ny(), Data: data}
	} else {
		return fail(errors.New("serve: protector exposed no result domain"))
	}
	if c, ok := p.(io.Closer); ok {
		c.Close()
	}
	return emit(ev)
}

// rankTile extracts the worker's own tile from a gathered grid. Under a
// single hosted rank the gather fills only that tile (remote tiles stay
// zero), so slicing the tile rectangle is exactly this rank's contribution.
func rankTile[T abft.Float](cl *abft.Cluster[T], rank int) *GridPayload {
	tile := cl.Tile(rank)
	g := cl.Grid()
	pay := &GridPayload{Nx: tile.Nx(), Ny: tile.Ny(), X0: tile.X0, Y0: tile.Y0,
		Data: make([]float64, 0, tile.Nx()*tile.Ny())}
	for y := tile.Y0; y < tile.Y1; y++ {
		for _, v := range g.Row(y)[tile.X0:tile.X1] {
			pay.Data = append(pay.Data, float64(v))
		}
	}
	return pay
}
