package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	abft "stencilabft"
)

// maxUploads bounds the retained grid uploads (FIFO eviction). Uploads are
// content-addressed, so re-uploading after eviction yields the same id.
const maxUploads = 256

// Server is the HTTP front-end: the /v1 job API, grid uploads, SSE event
// streams and the /metrics endpoint, all backed by one Scheduler.
type Server struct {
	cfg   Config
	sched *Scheduler
	met   *Metrics
	mux   *http.ServeMux

	mu          sync.Mutex
	uploads     map[string]*abft.WireGrid
	uploadOrder []string
}

// New builds a Server (starting its worker pool and dispatcher). Close it
// when done.
func New(cfg Config) (*Server, error) {
	met := NewMetrics()
	sched, err := NewScheduler(cfg, met)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: sched.Config(), sched: sched, met: met,
		mux:     http.NewServeMux(),
		uploads: make(map[string]*abft.WireGrid),
	}
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the backing scheduler (tests reach through it).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Close stops the scheduler and its worker pool.
func (s *Server) Close() { s.sched.Close() }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/grids", s.handleUpload)
	s.mux.HandleFunc("GET /v1/grids/{id}", s.handleGetGrid)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func kindFor(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "backpressure"
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusConflict:
		return "not_ready"
	case status >= 400 && status < 500:
		return "bad_request"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := StatusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Kind: kindFor(status)})
}

func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kindFor(status)})
}

// tenantOf resolves the caller's tenant from the X-Tenant header.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"workers": s.sched.pool.Size(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w)
}

// handleUpload stores a grid for later reference from a job spec's
// grid/cfield "upload" field. The body is a WireGrid with inline data; the
// id is the content hash, so identical uploads collapse.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		s.writeErrorStatus(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("serve: upload exceeds %d bytes", s.cfg.MaxUploadBytes))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var g abft.WireGrid
	if err := dec.Decode(&g); err != nil {
		s.writeErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("serve: cannot parse grid upload: %v", err))
		return
	}
	if g.Upload != "" || g.Generator != "" {
		s.writeErrorStatus(w, http.StatusBadRequest,
			"serve: an upload must carry inline data (no upload or generator references)")
		return
	}
	nz := g.Nz
	if nz == 0 {
		nz = 1
	}
	if g.Nx < 1 || g.Ny < 1 || len(g.Data) != g.Nx*g.Ny*nz {
		s.writeErrorStatus(w, http.StatusBadRequest,
			fmt.Sprintf("serve: upload shape %dx%dx%d does not match %d data values", g.Nx, g.Ny, g.Nz, len(g.Data)))
		return
	}
	canonical, err := json.Marshal(&g)
	if err != nil {
		s.writeErrorStatus(w, http.StatusInternalServerError, err.Error())
		return
	}
	id := Key(canonical, 0)[:40]
	s.mu.Lock()
	if _, ok := s.uploads[id]; !ok {
		s.uploads[id] = &g
		s.uploadOrder = append(s.uploadOrder, id)
		for len(s.uploadOrder) > maxUploads {
			delete(s.uploads, s.uploadOrder[0])
			s.uploadOrder = s.uploadOrder[1:]
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "values": len(g.Data)})
}

func (s *Server) handleGetGrid(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g, ok := s.uploads[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeErrorStatus(w, http.StatusNotFound, "serve: no such upload")
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// resolveUpload splices a stored upload into a grid reference, validating
// any shape the reference itself declares.
func (s *Server) resolveUpload(ref *abft.WireGrid) (*abft.WireGrid, error) {
	if ref == nil || ref.Upload == "" || ref.Generator != "" || ref.Data != nil {
		return ref, nil // nothing to resolve; SpecFromWire validates the rest
	}
	s.mu.Lock()
	g, ok := s.uploads[ref.Upload]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: upload %q not found (uploads are evicted FIFO; re-POST /v1/grids)",
			abft.ErrUnresolvedUpload, ref.Upload)
	}
	if (ref.Nx != 0 && ref.Nx != g.Nx) || (ref.Ny != 0 && ref.Ny != g.Ny) || (ref.Nz != 0 && ref.Nz != g.Nz) {
		return nil, fmt.Errorf("%w: spec declares %dx%dx%d but upload %q is %dx%dx%d",
			abft.ErrUnresolvedUpload, ref.Nx, ref.Ny, ref.Nz, ref.Upload, g.Nx, g.Ny, g.Nz)
	}
	resolved := *g
	return &resolved, nil
}

// submitBody is the POST /v1/jobs request shape.
type submitBody struct {
	Spec  json.RawMessage `json:"spec"`
	Iters int             `json:"iters"`
}

// canonicalize resolves the wire document for element type T and re-emits
// it in canonical form: named stencils expanded to points, generators and
// uploads inlined, elem explicit. The canonical bytes are both the cache
// key input and exactly what workers execute, so a cache hit and a fresh
// run see the same document. Validation runs here too, so a spec Build
// would reject never reaches the queue.
func canonicalize[T abft.Float](w *abft.WireSpec) ([]byte, error) {
	spec, err := abft.SpecFromWire[T](w)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(spec)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeErrorStatus(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("serve: request exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req submitBody
	if err := dec.Decode(&req); err != nil {
		s.writeErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("serve: cannot parse request: %v", err))
		return
	}
	if len(req.Spec) == 0 {
		s.writeErrorStatus(w, http.StatusBadRequest, `serve: request needs a "spec" (a WireSpec document)`)
		return
	}
	if req.Iters < 1 || req.Iters > s.cfg.MaxIters {
		s.writeErrorStatus(w, http.StatusBadRequest,
			fmt.Sprintf(`serve: "iters" must be in [1, %d] (got %d)`, s.cfg.MaxIters, req.Iters))
		return
	}
	wire, err := abft.ParseWireSpec(req.Spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if wire.Grid, err = s.resolveUpload(wire.Grid); err != nil {
		s.writeError(w, err)
		return
	}
	if wire.CField, err = s.resolveUpload(wire.CField); err != nil {
		s.writeError(w, err)
		return
	}
	elem := wire.Elem
	if elem == "" {
		elem = "float32"
	}
	var canonical []byte
	switch elem {
	case "float64":
		canonical, err = canonicalize[float64](wire)
	default:
		// float32 is the default; an unknown elem fails inside
		// SpecFromWire with the typed wire error.
		canonical, err = canonicalize[float32](wire)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	j, err := s.sched.Submit(tenantOf(r), elem, canonical, req.Iters)
	if err != nil {
		s.writeError(w, err)
		return
	}
	st := j.Status()
	status := http.StatusAccepted
	if st.State == StateDone {
		status = http.StatusOK // answered from cache
	}
	writeJSON(w, status, st)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		s.writeErrorStatus(w, http.StatusNotFound, "serve: no such job")
	}
	return j, ok
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// resultBody is the GET /v1/jobs/{id}/result response shape.
type resultBody struct {
	ID     string       `json:"id"`
	Cached bool         `json:"cached"`
	Grid   *GridPayload `json:"grid"`
	Stats  any          `json:"stats"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	switch j.State() {
	case StateDone:
		grid, st, ok := j.Result()
		if !ok {
			s.writeErrorStatus(w, http.StatusInternalServerError, "serve: done job lost its result")
			return
		}
		writeJSON(w, http.StatusOK, resultBody{ID: j.ID, Cached: j.Status().Cached, Grid: grid, Stats: st})
	case StateFailed:
		st := j.Status()
		status := st.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorBody{Error: st.Error, Kind: kindFor(status)})
	default:
		s.writeErrorStatus(w, http.StatusConflict,
			fmt.Sprintf("serve: job is %s; poll again or stream /v1/jobs/%s/events", j.State(), j.ID))
	}
}

// handleJobEvents streams the job's event history and live events as SSE:
// each event is `event: <type>` + `data: <json>`. The stream closes after
// the terminal done/error event or when the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErrorStatus(w, http.StatusInternalServerError, "serve: response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.Subscribe()
	defer cancel()
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
		return !ev.Terminal()
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-live:
			if !send(ev) {
				return
			}
		case <-j.Done():
			// The subscriber channel is lossy; synthesise the terminal
			// event from the job's settled state so the stream always
			// closes correctly.
			st := j.Status()
			if st.State == StateFailed {
				send(Event{Type: "error", State: StateFailed, Error: st.Error, Status: st.Status})
			} else {
				_, stat, _ := j.Result()
				send(Event{Type: "done", State: StateDone, Iter: j.Iters, Stats: &stat, Cached: st.Cached})
			}
			return
		}
	}
}
