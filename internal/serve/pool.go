package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Worker is one end of the line-JSON protocol WorkerMain speaks: Send posts
// a JobRequest, Recv blocks for the next WorkerEvent, Kill tears the worker
// down hard (mid-job if necessary). Implementations: a child process over
// stdin/stdout, or an in-process goroutine over pipes.
type Worker interface {
	Send(req JobRequest) error
	Recv() (WorkerEvent, error)
	Kill()
}

// StartWorker launches a fresh worker for a pool slot — called at pool
// construction and again whenever a slot's worker dies and is respawned.
type StartWorker func(slot int) (Worker, error)

var errWorkerKilled = errors.New("serve: worker killed")

// InprocWorkers returns a StartWorker that runs WorkerMain in a goroutine
// connected over pipes — the same protocol as a child process, without the
// fork. Tests and single-binary deployments use it.
func InprocWorkers() StartWorker {
	return func(int) (Worker, error) {
		reqR, reqW := io.Pipe()
		evR, evW := io.Pipe()
		go func() {
			err := WorkerMain(reqR, evW)
			evW.CloseWithError(err)
		}()
		return &pipeWorker{
			enc: json.NewEncoder(reqW), dec: json.NewDecoder(evR),
			reqW: reqW, evR: evR,
		}, nil
	}
}

type pipeWorker struct {
	enc  *json.Encoder
	dec  *json.Decoder
	reqW *io.PipeWriter
	evR  *io.PipeReader
}

func (w *pipeWorker) Send(req JobRequest) error { return w.enc.Encode(req) }

func (w *pipeWorker) Recv() (WorkerEvent, error) {
	var ev WorkerEvent
	err := w.dec.Decode(&ev)
	return ev, err
}

func (w *pipeWorker) Kill() {
	w.reqW.CloseWithError(errWorkerKilled)
	w.evR.CloseWithError(errWorkerKilled)
}

// ProcessWorkers returns a StartWorker that forks bin with args, speaking
// the protocol over the child's stdin/stdout. extraEnv entries are appended
// to the parent environment — how the test binary re-execs itself into
// WorkerMain. The child's stderr passes through for crash diagnostics.
func ProcessWorkers(bin string, extraEnv []string, args ...string) StartWorker {
	return func(int) (Worker, error) {
		cmd := exec.Command(bin, args...)
		if len(extraEnv) > 0 {
			cmd.Env = append(os.Environ(), extraEnv...)
		}
		cmd.Stderr = os.Stderr
		// Wire stdin/stdout through pipes this process owns rather than
		// StdinPipe/StdoutPipe: Kill must call Wait while a concurrent Recv
		// may still be blocked on stdout, and os/exec forbids Wait before
		// reads from an exec-managed pipe complete (Wait closes the pipe
		// under the reader). With our own os.Pipe, Wait touches nothing the
		// reader holds — a blocked Recv simply sees EOF when the child dies.
		inR, inW, err := os.Pipe()
		if err != nil {
			return nil, err
		}
		outR, outW, err := os.Pipe()
		if err != nil {
			inR.Close()
			inW.Close()
			return nil, err
		}
		cmd.Stdin = inR
		cmd.Stdout = outW
		if err := cmd.Start(); err != nil {
			inR.Close()
			inW.Close()
			outR.Close()
			outW.Close()
			return nil, fmt.Errorf("serve: cannot start worker %s: %w", bin, err)
		}
		// The child holds duplicates of its ends; drop the parent's copies
		// so the reader sees EOF as soon as the child exits.
		inR.Close()
		outW.Close()
		return &procWorker{
			cmd: cmd, stdin: inW, stdout: outR,
			enc: json.NewEncoder(inW), dec: json.NewDecoder(outR),
		}, nil
	}
}

type procWorker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
	enc    *json.Encoder
	dec    *json.Decoder
	once   sync.Once
}

func (w *procWorker) Send(req JobRequest) error { return w.enc.Encode(req) }

func (w *procWorker) Recv() (WorkerEvent, error) {
	var ev WorkerEvent
	err := w.dec.Decode(&ev)
	return ev, err
}

func (w *procWorker) Kill() {
	w.once.Do(func() {
		w.stdin.Close()
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		// Safe even under a concurrent Recv: the pipes are parent-owned,
		// so Wait only reaps the process. The child's death closes its
		// stdout end and the blocked Recv observes EOF.
		w.cmd.Wait()
		w.stdout.Close()
	})
}

// Slot is one lane of the pool: at most one job runs on it at a time. The
// worker behind it is replaceable — a kill (timeout, crash, shutdown)
// leaves the slot intact and the pool respawns on release.
type Slot struct {
	ID int

	mu    sync.Mutex
	w     Worker
	gen   uint64 // bumped by every Arm; identifies the current run
	armed bool   // an armed run has not returned from Run yet
}

// Arm binds the slot's next Run to a kill token. KillIf with that token
// tears the worker down only while the armed run is still in flight, so a
// watchdog timer that fires concurrently with job completion cannot shoot a
// respawned worker or a later job that re-acquired the slot.
func (s *Slot) Arm() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.armed = true
	return s.gen
}

// KillIf kills the slot's worker iff the run armed with token is still in
// flight; a stale token (the run returned, or the slot was re-armed for a
// newer job) makes it a no-op.
func (s *Slot) KillIf(token uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed || s.gen != token {
		return
	}
	s.armed = false
	if s.w != nil {
		s.w.Kill()
		s.w = nil
	}
}

// disarm retires the current kill token; late KillIf calls become no-ops.
func (s *Slot) disarm() {
	s.mu.Lock()
	s.armed = false
	s.mu.Unlock()
}

// Run sends req to the slot's worker and pumps events into onEvent until
// the terminal event for this request arrives. A non-nil return means the
// worker itself failed (died, was killed, spoke garbage) — the caller must
// release the slot unhealthy so the pool respawns it.
func (s *Slot) Run(req JobRequest, onEvent func(WorkerEvent)) error {
	defer s.disarm()
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return fmt.Errorf("serve: slot %d has no live worker", s.ID)
	}
	if err := w.Send(req); err != nil {
		return fmt.Errorf("serve: slot %d rejected the job: %w", s.ID, err)
	}
	for {
		ev, err := w.Recv()
		if err != nil {
			return fmt.Errorf("serve: worker on slot %d died mid-job: %w", s.ID, err)
		}
		if ev.ID != req.ID {
			continue // stale event from a previously killed job
		}
		onEvent(ev)
		if ev.Event == "done" || ev.Event == "error" {
			return nil
		}
	}
}

// KillWorker tears down the slot's current worker immediately — the
// watchdog path for jobs that exceed their deadline. A Run in flight
// returns with an error; Release then respawns.
func (s *Slot) KillWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		s.w.Kill()
		s.w = nil
	}
}

// Pool owns a fixed set of worker slots. Acquire hands out exclusive slots,
// Release returns them (respawning dead workers), Close kills everything.
type Pool struct {
	start StartWorker
	free  chan *Slot
	slots []*Slot

	mu     sync.Mutex
	closed bool
}

// NewPool starts n workers (n < 1 is clamped to 1). Failure to start any
// worker tears down the ones already running.
func NewPool(n int, start StartWorker) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{start: start, free: make(chan *Slot, n)}
	for i := 0; i < n; i++ {
		w, err := start(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("serve: cannot start worker %d: %w", i, err)
		}
		s := &Slot{ID: i, w: w}
		p.slots = append(p.slots, s)
		p.free <- s
	}
	return p, nil
}

// Size returns the number of slots.
func (p *Pool) Size() int { return len(p.slots) }

// Acquire blocks for a free slot or the context's end.
func (p *Pool) Acquire(ctx context.Context) (*Slot, error) {
	select {
	case s := <-p.free:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a slot to the pool. An unhealthy release (the worker
// failed the job at the protocol level) kills and respawns the worker; a
// slot whose worker is gone for any reason is respawned too, so one crash
// never permanently shrinks the pool.
func (p *Pool) Release(s *Slot, healthy bool) {
	s.mu.Lock()
	if !healthy && s.w != nil {
		s.w.Kill()
		s.w = nil
	}
	if s.w == nil && !p.isClosed() {
		if w, err := p.start(s.ID); err == nil {
			s.w = w
		}
		// On failure the slot stays workerless; the next Run on it fails
		// fast and the release after that retries the spawn.
	}
	s.mu.Unlock()
	if p.isClosed() {
		s.KillWorker()
		return
	}
	p.free <- s
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close kills every worker, including ones mid-job: their Runs return
// errors and the jobs fail. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, s := range p.slots {
		s.KillWorker()
	}
	// Drain the free list so no released slot lingers in the channel.
	for {
		select {
		case <-p.free:
		default:
			return
		}
	}
}
