package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"stencilabft/internal/stats"
)

// Result is a finished simulation: the final domain plus the run's counters.
type Result struct {
	Grid  *GridPayload
	Stats stats.Stats
}

// Key content-addresses a job by its canonical wire document and run
// length. The canonical form (Spec.MarshalJSON of the resolved spec) has
// named stencils expanded to points, generators and uploads expanded to
// inline data, and elem explicit — so every way of spelling the same
// computation hashes to the same key.
func Key(canonical []byte, iters int) string {
	h := sha256.New()
	h.Write(canonical)
	fmt.Fprintf(h, "|iters=%d", iters)
	return hex.EncodeToString(h.Sum(nil))
}

// Cache holds finished results keyed by Key, bounded to max entries with
// FIFO eviction. Deterministic runs make first-write-wins safe: two racers
// computed bit-identical results.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]Result
	order   []string
}

// NewCache builds a cache holding up to max results (max < 1 clamps to 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, entries: make(map[string]Result)}
}

// Get returns the cached result for key, if any.
func (c *Cache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	return r, ok
}

// Put stores a result, evicting the oldest entry beyond capacity. A key
// already present keeps its first value.
func (c *Cache) Put(key string, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = r
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
