// Package stats defines the one Stats model every protector reports
// through. The core, blocks and dist deployments historically each carried
// their own counter struct; unifying them lets per-rank and per-block
// counters roll up into a single aggregate with Merge instead of living in
// parallel types that cannot be compared or summed. Counters a deployment
// never touches simply stay zero (e.g. a local online run has no
// HaloExchanges; an unprotected baseline only counts Iterations).
package stats

import (
	"fmt"
	"strings"

	"stencilabft/internal/checkpoint"
)

// Stats aggregates what a protector observed over a run. It is the single
// counter model shared by every scheme (none/online/offline/blocked) and
// deployment (local/cluster); Merge rolls per-rank or per-block instances
// into a whole-run aggregate.
type Stats struct {
	Iterations      int // completed sweeps
	Verifications   int // checksum comparisons performed
	Detections      int // verification events that flagged at least one mismatch
	CorrectedPoints int // domain points repaired in place (online schemes)
	ChecksumRepairs int // detections attributed to checksum (not domain) corruption
	Rollbacks       int // checkpoint restores (offline scheme, fail-stop recovery)
	RecomputedIters int // sweeps re-executed after rollback (offline scheme, fail-stop recovery)
	Recoveries      int // completed fail-stop recovery cycles (dead rank absorbed, lockstep resumed)
	ConeRecoveries  int // detections repaired by light-cone recomputation
	ConePointsSwept int // point updates spent inside cone recomputation
	FlaggedBlocks   int // block-level verification failures (blocked scheme)
	HaloExchanges   int // iterations that exchanged or refreshed halo strips (cluster)
	// HaloByDir counts halo messages actually sent per direction, indexed
	// by dist.Dir (up, down, left, right) — a 1-D band cluster only ever
	// populates up/down, a 2-D rank grid all four, making the extra
	// communication of finer topologies directly observable. Synthesised
	// boundary ghosts (no neighbour) are not counted: they cost no
	// communication.
	HaloByDir [4]int
	// Topology names the decomposition shape of a clustered run (e.g.
	// "grid 4x1", "grid 2x3", "layers 4"); empty for local deployments.
	// Merging two different topologies yields "mixed(a; b)".
	Topology   string
	Checkpoint checkpoint.Stats
	// Timing is the phase-time breakdown recorded by the telemetry layer;
	// zero (RanksTimed == 0) when telemetry is disabled.
	Timing Timing
	// Transport is the communication-backend counter roll-up; zero for
	// local deployments or transports without metrics.
	Transport Transport
}

// Timing is the wall-clock phase breakdown of a telemetry-enabled run:
// nanoseconds accumulated per phase, summed across ranks, plus the
// extremes of barrier-wait needed for the imbalance report. The phase
// taxonomy (and the recording) lives in internal/telemetry; stats only
// carries the numbers so they ride Stats through MergeAll — including
// across process boundaries via the launcher's CHILDSTATS JSON.
type Timing struct {
	PackNs     int64 // packing halo strips into send buffers
	SendNs     int64 // posting strips to the transport
	RecvWaitNs int64 // blocked waiting on neighbour strips
	UnpackNs   int64 // copying received strips into halo regions
	SweepNs    int64 // stencil sweeps over owned tiles
	VerifyNs   int64 // checksum bookkeeping, interpolation, comparison
	RepairNs   int64 // fault localisation and correction
	BarrierNs  int64 // waiting at the iteration barrier

	// Fail-stop resilience phases; all zero unless buddy checkpointing or
	// a recovery ran.
	CkptSaveNs    int64 // packing buddy-checkpoint snapshots
	CkptSendNs    int64 // posting snapshots to the buddy rank
	RecoverWaitNs int64 // stalled between fault detection and the recovery plan
	RestoreNs     int64 // rebuilding transport and restoring checkpointed state

	// Overlap-schedule phases; all zero on deployments that run the
	// sequential exchange-then-sweep schedule.
	InteriorSweepNs int64 // halo-independent interior swept while halos are in flight
	BoundaryWaitNs  int64 // blocked waiting for the next boundary strip's halo
	BoundarySweepNs int64 // sweeping boundary strips after their halos landed

	// RanksTimed counts the ranks that contributed a breakdown; 0 means
	// telemetry was off and the struct is meaningless.
	RanksTimed int
	// MaxBarrierNs / MaxBarrierOn: the largest single-rank barrier wait
	// and the rank that waited it. MinBarrierNs / StragglerRank: the
	// smallest. The rank that waits *least* at the barrier is the one the
	// others wait for — the straggler.
	MaxBarrierNs  int64
	MaxBarrierOn  int
	MinBarrierNs  int64
	StragglerRank int
}

// Merge rolls two breakdowns together: phase times sum, the barrier
// extremes keep the winning rank id. Either side may be zero (untimed).
func (t Timing) Merge(o Timing) Timing {
	if o.RanksTimed == 0 {
		return t
	}
	if t.RanksTimed == 0 {
		return o
	}
	t.PackNs += o.PackNs
	t.SendNs += o.SendNs
	t.RecvWaitNs += o.RecvWaitNs
	t.UnpackNs += o.UnpackNs
	t.SweepNs += o.SweepNs
	t.VerifyNs += o.VerifyNs
	t.RepairNs += o.RepairNs
	t.BarrierNs += o.BarrierNs
	t.CkptSaveNs += o.CkptSaveNs
	t.CkptSendNs += o.CkptSendNs
	t.RecoverWaitNs += o.RecoverWaitNs
	t.RestoreNs += o.RestoreNs
	t.InteriorSweepNs += o.InteriorSweepNs
	t.BoundaryWaitNs += o.BoundaryWaitNs
	t.BoundarySweepNs += o.BoundarySweepNs
	t.RanksTimed += o.RanksTimed
	if o.MaxBarrierNs > t.MaxBarrierNs {
		t.MaxBarrierNs, t.MaxBarrierOn = o.MaxBarrierNs, o.MaxBarrierOn
	}
	if o.MinBarrierNs < t.MinBarrierNs {
		t.MinBarrierNs, t.StragglerRank = o.MinBarrierNs, o.StragglerRank
	}
	return t
}

// Straggler derives the imbalance report: the rank the cluster waits for
// and how skewed the barrier waits are (max over mean). ok is false when
// fewer than two ranks were timed — a single rank cannot be imbalanced.
func (t Timing) Straggler() (rank int, maxOverMean float64, ok bool) {
	if t.RanksTimed < 2 {
		return 0, 0, false
	}
	mean := float64(t.BarrierNs) / float64(t.RanksTimed)
	if mean <= 0 {
		return t.StragglerRank, 0, true
	}
	return t.StragglerRank, float64(t.MaxBarrierNs) / mean, true
}

// Transport is the communication-backend counter roll-up: halo frames and
// payload bytes over all edges, plus the TCP backend's health counters.
type Transport struct {
	FramesSent     int64 // halo frames enqueued to neighbours
	FramesRecv     int64 // halo frames received from neighbours
	BytesSent      int64 // halo payload bytes sent (headers excluded)
	BytesRecv      int64 // halo payload bytes received
	QueueHighWater int64 // deepest writer-queue backlog seen on any edge (TCP)
	DialRetries    int64 // bootstrap connection retries (TCP)
	PoisonEvents   int64 // edges torn down by I/O errors (TCP; Close excluded)
	Reconnects     int64 // edge connections rebuilt after transient faults (TCP)
	Resends        int64 // data frames replayed from resend windows (TCP)
	CrcErrors      int64 // frames rejected by the wire checksum (TCP)
	DupFrames      int64 // replay duplicates dropped by sequence dedup (TCP)
}

// Merge sums the counters; QueueHighWater, a high-water mark, takes max.
func (t Transport) Merge(o Transport) Transport {
	t.FramesSent += o.FramesSent
	t.FramesRecv += o.FramesRecv
	t.BytesSent += o.BytesSent
	t.BytesRecv += o.BytesRecv
	if o.QueueHighWater > t.QueueHighWater {
		t.QueueHighWater = o.QueueHighWater
	}
	t.DialRetries += o.DialRetries
	t.PoisonEvents += o.PoisonEvents
	t.Reconnects += o.Reconnects
	t.Resends += o.Resends
	t.CrcErrors += o.CrcErrors
	t.DupFrames += o.DupFrames
	return t
}

// Merge returns the element-wise sum of s and o — the roll-up used to
// aggregate per-rank (cluster) or per-repetition (campaign) counters.
func (s Stats) Merge(o Stats) Stats {
	s.Iterations += o.Iterations
	s.Verifications += o.Verifications
	s.Detections += o.Detections
	s.CorrectedPoints += o.CorrectedPoints
	s.ChecksumRepairs += o.ChecksumRepairs
	s.Rollbacks += o.Rollbacks
	s.RecomputedIters += o.RecomputedIters
	s.Recoveries += o.Recoveries
	s.ConeRecoveries += o.ConeRecoveries
	s.ConePointsSwept += o.ConePointsSwept
	s.FlaggedBlocks += o.FlaggedBlocks
	s.HaloExchanges += o.HaloExchanges
	for d := range s.HaloByDir {
		s.HaloByDir[d] += o.HaloByDir[d]
	}
	s.Topology = mergeTopology(s.Topology, o.Topology)
	s.Timing = s.Timing.Merge(o.Timing)
	s.Transport = s.Transport.Merge(o.Transport)
	s.Checkpoint.Saves += o.Checkpoint.Saves
	s.Checkpoint.Restores += o.Checkpoint.Restores
	s.Checkpoint.PointsCopied += o.Checkpoint.PointsCopied
	return s
}

// mergeTopology combines two topology names. Equal or one-sided-empty
// merges keep the name; genuinely different topologies become
// "mixed(a; b)" — the historical first-wins rule silently mislabelled
// multi-topology campaign aggregates as whichever ran first. Merging a
// mixed name flattens: components are deduplicated, never nested.
func mergeTopology(a, b string) string {
	if a == b || b == "" {
		return a
	}
	if a == "" {
		return b
	}
	parts := topologyParts(a)
	for _, p := range topologyParts(b) {
		seen := false
		for _, q := range parts {
			if p == q {
				seen = true
				break
			}
		}
		if !seen {
			parts = append(parts, p)
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "mixed(" + strings.Join(parts, "; ") + ")"
}

func topologyParts(s string) []string {
	if inner, ok := strings.CutPrefix(s, "mixed("); ok && strings.HasSuffix(inner, ")") {
		return strings.Split(strings.TrimSuffix(inner, ")"), "; ")
	}
	return []string{s}
}

// MergeAll rolls a set of per-rank (or per-repetition) counters into one
// aggregate — what a multi-process launcher does with the Stats each rank
// process reported. An empty slice yields the zero Stats.
func MergeAll(all []Stats) Stats {
	var total Stats
	for _, s := range all {
		total = total.Merge(s)
	}
	return total
}

// Add is the historical name of Merge.
//
// Deprecated: use Merge.
func (s Stats) Add(o Stats) Stats { return s.Merge(o) }

// String renders the counters compactly for logs. The scheme-agnostic
// counters are always printed; deployment-specific ones (flagged blocks,
// halo exchanges) appear only when non-zero, keeping local-run logs short.
func (s Stats) String() string {
	out := fmt.Sprintf("iters=%d verifications=%d detections=%d corrected=%d checksum-repairs=%d rollbacks=%d recomputed=%d cone-recoveries=%d cone-points=%d",
		s.Iterations, s.Verifications, s.Detections, s.CorrectedPoints, s.ChecksumRepairs,
		s.Rollbacks, s.RecomputedIters, s.ConeRecoveries, s.ConePointsSwept)
	if s.FlaggedBlocks > 0 {
		out += fmt.Sprintf(" flagged-blocks=%d", s.FlaggedBlocks)
	}
	if s.Recoveries > 0 {
		out += fmt.Sprintf(" recoveries=%d", s.Recoveries)
	}
	if s.Topology != "" {
		out += fmt.Sprintf(" topology=%q", s.Topology)
	}
	if s.HaloExchanges > 0 {
		out += fmt.Sprintf(" halo-exchanges=%d", s.HaloExchanges)
	}
	if s.HaloByDir != [4]int{} {
		out += fmt.Sprintf(" halo-dir[up/down/left/right]=%d/%d/%d/%d",
			s.HaloByDir[0], s.HaloByDir[1], s.HaloByDir[2], s.HaloByDir[3])
	}
	if s.Timing.RanksTimed > 0 {
		out += "\n" + s.Timing.String()
	}
	if s.Transport != (Transport{}) {
		out += "\n" + s.Transport.String()
	}
	return out
}

// String renders the phase breakdown as milliseconds plus the imbalance
// report, e.g.:
//
//	timing[ms] sweep=12.3 verify=4.5 ... barrier-wait=2.1 (ranks=4)
//	imbalance: straggler=rank 2 max/mean barrier-wait=3.10
func (t Timing) String() string {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	out := fmt.Sprintf("timing[ms] sweep=%.2f verify=%.2f repair=%.2f pack=%.2f send=%.2f recv-wait=%.2f unpack=%.2f barrier-wait=%.2f (ranks=%d)",
		ms(t.SweepNs), ms(t.VerifyNs), ms(t.RepairNs), ms(t.PackNs), ms(t.SendNs),
		ms(t.RecvWaitNs), ms(t.UnpackNs), ms(t.BarrierNs), t.RanksTimed)
	if t.CkptSaveNs|t.CkptSendNs|t.RecoverWaitNs|t.RestoreNs != 0 {
		out += fmt.Sprintf("\nresilience[ms] ckpt-save=%.2f ckpt-send=%.2f recover-wait=%.2f restore=%.2f",
			ms(t.CkptSaveNs), ms(t.CkptSendNs), ms(t.RecoverWaitNs), ms(t.RestoreNs))
	}
	if t.InteriorSweepNs|t.BoundaryWaitNs|t.BoundarySweepNs != 0 {
		out += fmt.Sprintf("\noverlap[ms] interior-sweep=%.2f boundary-wait=%.2f boundary-sweep=%.2f",
			ms(t.InteriorSweepNs), ms(t.BoundaryWaitNs), ms(t.BoundarySweepNs))
	}
	if rank, ratio, ok := t.Straggler(); ok {
		out += fmt.Sprintf("\nimbalance: straggler=rank %d max/mean barrier-wait=%.2f (max rank %d waited %.2fms, straggler waited %.2fms)",
			rank, ratio, t.MaxBarrierOn, ms(t.MaxBarrierNs), ms(t.MinBarrierNs))
	}
	return out
}

// String renders the transport counters compactly for logs.
func (t Transport) String() string {
	out := fmt.Sprintf("transport frames[sent/recv]=%d/%d bytes[sent/recv]=%d/%d",
		t.FramesSent, t.FramesRecv, t.BytesSent, t.BytesRecv)
	if t.QueueHighWater > 0 {
		out += fmt.Sprintf(" queue-hw=%d", t.QueueHighWater)
	}
	if t.DialRetries > 0 {
		out += fmt.Sprintf(" dial-retries=%d", t.DialRetries)
	}
	if t.PoisonEvents > 0 {
		out += fmt.Sprintf(" poison-events=%d", t.PoisonEvents)
	}
	if t.Reconnects > 0 || t.Resends > 0 {
		out += fmt.Sprintf(" reconnects=%d resends=%d", t.Reconnects, t.Resends)
	}
	if t.CrcErrors > 0 {
		out += fmt.Sprintf(" crc-errors=%d", t.CrcErrors)
	}
	if t.DupFrames > 0 {
		out += fmt.Sprintf(" dup-frames=%d", t.DupFrames)
	}
	return out
}
