// Package stats defines the one Stats model every protector reports
// through. The core, blocks and dist deployments historically each carried
// their own counter struct; unifying them lets per-rank and per-block
// counters roll up into a single aggregate with Merge instead of living in
// parallel types that cannot be compared or summed. Counters a deployment
// never touches simply stay zero (e.g. a local online run has no
// HaloExchanges; an unprotected baseline only counts Iterations).
package stats

import (
	"fmt"

	"stencilabft/internal/checkpoint"
)

// Stats aggregates what a protector observed over a run. It is the single
// counter model shared by every scheme (none/online/offline/blocked) and
// deployment (local/cluster); Merge rolls per-rank or per-block instances
// into a whole-run aggregate.
type Stats struct {
	Iterations      int // completed sweeps
	Verifications   int // checksum comparisons performed
	Detections      int // verification events that flagged at least one mismatch
	CorrectedPoints int // domain points repaired in place (online schemes)
	ChecksumRepairs int // detections attributed to checksum (not domain) corruption
	Rollbacks       int // checkpoint restores (offline scheme)
	RecomputedIters int // sweeps re-executed after rollback (offline scheme)
	ConeRecoveries  int // detections repaired by light-cone recomputation
	ConePointsSwept int // point updates spent inside cone recomputation
	FlaggedBlocks   int // block-level verification failures (blocked scheme)
	HaloExchanges   int // iterations that exchanged or refreshed halo strips (cluster)
	// HaloByDir counts halo messages actually sent per direction, indexed
	// by dist.Dir (up, down, left, right) — a 1-D band cluster only ever
	// populates up/down, a 2-D rank grid all four, making the extra
	// communication of finer topologies directly observable. Synthesised
	// boundary ghosts (no neighbour) are not counted: they cost no
	// communication.
	HaloByDir [4]int
	// Topology names the decomposition shape of a clustered run (e.g.
	// "grid 4x1", "grid 2x3", "layers 4"); empty for local deployments.
	Topology   string
	Checkpoint checkpoint.Stats
}

// Merge returns the element-wise sum of s and o — the roll-up used to
// aggregate per-rank (cluster) or per-repetition (campaign) counters.
func (s Stats) Merge(o Stats) Stats {
	s.Iterations += o.Iterations
	s.Verifications += o.Verifications
	s.Detections += o.Detections
	s.CorrectedPoints += o.CorrectedPoints
	s.ChecksumRepairs += o.ChecksumRepairs
	s.Rollbacks += o.Rollbacks
	s.RecomputedIters += o.RecomputedIters
	s.ConeRecoveries += o.ConeRecoveries
	s.ConePointsSwept += o.ConePointsSwept
	s.FlaggedBlocks += o.FlaggedBlocks
	s.HaloExchanges += o.HaloExchanges
	for d := range s.HaloByDir {
		s.HaloByDir[d] += o.HaloByDir[d]
	}
	if s.Topology == "" {
		s.Topology = o.Topology
	}
	s.Checkpoint.Saves += o.Checkpoint.Saves
	s.Checkpoint.Restores += o.Checkpoint.Restores
	s.Checkpoint.PointsCopied += o.Checkpoint.PointsCopied
	return s
}

// MergeAll rolls a set of per-rank (or per-repetition) counters into one
// aggregate — what a multi-process launcher does with the Stats each rank
// process reported. An empty slice yields the zero Stats.
func MergeAll(all []Stats) Stats {
	var total Stats
	for _, s := range all {
		total = total.Merge(s)
	}
	return total
}

// Add is the historical name of Merge.
//
// Deprecated: use Merge.
func (s Stats) Add(o Stats) Stats { return s.Merge(o) }

// String renders the counters compactly for logs. The scheme-agnostic
// counters are always printed; deployment-specific ones (flagged blocks,
// halo exchanges) appear only when non-zero, keeping local-run logs short.
func (s Stats) String() string {
	out := fmt.Sprintf("iters=%d verifications=%d detections=%d corrected=%d checksum-repairs=%d rollbacks=%d recomputed=%d cone-recoveries=%d cone-points=%d",
		s.Iterations, s.Verifications, s.Detections, s.CorrectedPoints, s.ChecksumRepairs,
		s.Rollbacks, s.RecomputedIters, s.ConeRecoveries, s.ConePointsSwept)
	if s.FlaggedBlocks > 0 {
		out += fmt.Sprintf(" flagged-blocks=%d", s.FlaggedBlocks)
	}
	if s.Topology != "" {
		out += fmt.Sprintf(" topology=%q", s.Topology)
	}
	if s.HaloExchanges > 0 {
		out += fmt.Sprintf(" halo-exchanges=%d", s.HaloExchanges)
	}
	if s.HaloByDir != [4]int{} {
		out += fmt.Sprintf(" halo-dir[up/down/left/right]=%d/%d/%d/%d",
			s.HaloByDir[0], s.HaloByDir[1], s.HaloByDir[2], s.HaloByDir[3])
	}
	return out
}
