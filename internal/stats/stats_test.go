package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"stencilabft/internal/checkpoint"
)

func TestMergeSumsEveryCounter(t *testing.T) {
	a := Stats{
		Iterations: 1, Verifications: 2, Detections: 3, CorrectedPoints: 4,
		ChecksumRepairs: 5, Rollbacks: 6, RecomputedIters: 7, ConeRecoveries: 8,
		ConePointsSwept: 9, FlaggedBlocks: 10, HaloExchanges: 11,
		Checkpoint: checkpoint.Stats{Saves: 1, Restores: 2, PointsCopied: 3},
	}
	b := Stats{
		Iterations: 10, Verifications: 20, Detections: 30, CorrectedPoints: 40,
		ChecksumRepairs: 50, Rollbacks: 60, RecomputedIters: 70, ConeRecoveries: 80,
		ConePointsSwept: 90, FlaggedBlocks: 100, HaloExchanges: 110,
		Checkpoint: checkpoint.Stats{Saves: 10, Restores: 20, PointsCopied: 30},
	}
	want := Stats{
		Iterations: 11, Verifications: 22, Detections: 33, CorrectedPoints: 44,
		ChecksumRepairs: 55, Rollbacks: 66, RecomputedIters: 77, ConeRecoveries: 88,
		ConePointsSwept: 99, FlaggedBlocks: 110, HaloExchanges: 121,
		Checkpoint: checkpoint.Stats{Saves: 11, Restores: 22, PointsCopied: 33},
	}
	if got := a.Merge(b); got != want {
		t.Fatalf("Merge: %+v", got)
	}
	if got := a.Add(b); got != want {
		t.Fatalf("Add: %+v", got)
	}
}

// TestStringShowsRecoveryCounters pins the satellite fix: campaign logs must
// show cone-recovery and checksum-repair activity, not silently drop it.
func TestStringShowsRecoveryCounters(t *testing.T) {
	s := Stats{ConeRecoveries: 2, ConePointsSwept: 640, ChecksumRepairs: 1}.String()
	for _, want := range []string{"cone-recoveries=2", "cone-points=640", "checksum-repairs=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "flagged-blocks") || strings.Contains(s, "halo-exchanges") {
		t.Fatalf("zero deployment counters should be elided: %q", s)
	}
	withHalo := Stats{HaloExchanges: 7, FlaggedBlocks: 3}.String()
	for _, want := range []string{"halo-exchanges=7", "flagged-blocks=3"} {
		if !strings.Contains(withHalo, want) {
			t.Fatalf("String() = %q, missing %q", withHalo, want)
		}
	}
}

// TestMergeAll pins the multi-process roll-up: per-rank counters from N
// rank processes sum element-wise (with JSON round-tripping, since that is
// how a -launch parent receives them).
func TestMergeAll(t *testing.T) {
	if got := (MergeAll(nil)); got != (Stats{}) {
		t.Fatalf("MergeAll(nil) = %+v", got)
	}
	parts := []Stats{
		{Iterations: 10, Detections: 1, HaloExchanges: 10, HaloByDir: [4]int{0, 10, 0, 0}, Topology: "grid 2x1"},
		{Iterations: 10, CorrectedPoints: 1, HaloExchanges: 10, HaloByDir: [4]int{10, 0, 0, 0}, Topology: "grid 2x1"},
	}
	var wire []Stats
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Stats
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		wire = append(wire, back)
	}
	got := MergeAll(wire)
	want := Stats{
		Iterations: 20, Detections: 1, CorrectedPoints: 1, HaloExchanges: 20,
		HaloByDir: [4]int{10, 10, 0, 0}, Topology: "grid 2x1",
	}
	if got != want {
		t.Fatalf("MergeAll = %+v, want %+v", got, want)
	}
}
