package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"stencilabft/internal/checkpoint"
)

func TestMergeSumsEveryCounter(t *testing.T) {
	a := Stats{
		Iterations: 1, Verifications: 2, Detections: 3, CorrectedPoints: 4,
		ChecksumRepairs: 5, Rollbacks: 6, RecomputedIters: 7, ConeRecoveries: 8,
		ConePointsSwept: 9, FlaggedBlocks: 10, HaloExchanges: 11,
		Checkpoint: checkpoint.Stats{Saves: 1, Restores: 2, PointsCopied: 3},
	}
	b := Stats{
		Iterations: 10, Verifications: 20, Detections: 30, CorrectedPoints: 40,
		ChecksumRepairs: 50, Rollbacks: 60, RecomputedIters: 70, ConeRecoveries: 80,
		ConePointsSwept: 90, FlaggedBlocks: 100, HaloExchanges: 110,
		Checkpoint: checkpoint.Stats{Saves: 10, Restores: 20, PointsCopied: 30},
	}
	want := Stats{
		Iterations: 11, Verifications: 22, Detections: 33, CorrectedPoints: 44,
		ChecksumRepairs: 55, Rollbacks: 66, RecomputedIters: 77, ConeRecoveries: 88,
		ConePointsSwept: 99, FlaggedBlocks: 110, HaloExchanges: 121,
		Checkpoint: checkpoint.Stats{Saves: 11, Restores: 22, PointsCopied: 33},
	}
	if got := a.Merge(b); got != want {
		t.Fatalf("Merge: %+v", got)
	}
	if got := a.Add(b); got != want {
		t.Fatalf("Add: %+v", got)
	}
}

// TestStringShowsRecoveryCounters pins the satellite fix: campaign logs must
// show cone-recovery and checksum-repair activity, not silently drop it.
func TestStringShowsRecoveryCounters(t *testing.T) {
	s := Stats{ConeRecoveries: 2, ConePointsSwept: 640, ChecksumRepairs: 1}.String()
	for _, want := range []string{"cone-recoveries=2", "cone-points=640", "checksum-repairs=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "flagged-blocks") || strings.Contains(s, "halo-exchanges") {
		t.Fatalf("zero deployment counters should be elided: %q", s)
	}
	withHalo := Stats{HaloExchanges: 7, FlaggedBlocks: 3}.String()
	for _, want := range []string{"halo-exchanges=7", "flagged-blocks=3"} {
		if !strings.Contains(withHalo, want) {
			t.Fatalf("String() = %q, missing %q", withHalo, want)
		}
	}
}

// TestMergeAll pins the multi-process roll-up: per-rank counters from N
// rank processes sum element-wise (with JSON round-tripping, since that is
// how a -launch parent receives them).
func TestMergeAll(t *testing.T) {
	if got := (MergeAll(nil)); got != (Stats{}) {
		t.Fatalf("MergeAll(nil) = %+v", got)
	}
	parts := []Stats{
		{Iterations: 10, Detections: 1, HaloExchanges: 10, HaloByDir: [4]int{0, 10, 0, 0}, Topology: "grid 2x1"},
		{Iterations: 10, CorrectedPoints: 1, HaloExchanges: 10, HaloByDir: [4]int{10, 0, 0, 0}, Topology: "grid 2x1"},
	}
	var wire []Stats
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Stats
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		wire = append(wire, back)
	}
	got := MergeAll(wire)
	want := Stats{
		Iterations: 20, Detections: 1, CorrectedPoints: 1, HaloExchanges: 20,
		HaloByDir: [4]int{10, 10, 0, 0}, Topology: "grid 2x1",
	}
	if got != want {
		t.Fatalf("MergeAll = %+v, want %+v", got, want)
	}
}

// TestMergeTopology pins the satellite fix: merging different topologies
// must label the aggregate "mixed(...)" instead of silently keeping
// whichever ran first, and repeated merges flatten rather than nest.
func TestMergeTopology(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"grid 4x1", "", "grid 4x1"},
		{"", "layers 4", "layers 4"},
		{"grid 4x1", "grid 4x1", "grid 4x1"},
		{"grid 4x1", "layers 4", "mixed(grid 4x1; layers 4)"},
		{"mixed(grid 4x1; layers 4)", "grid 4x1", "mixed(grid 4x1; layers 4)"},
		{"mixed(grid 4x1; layers 4)", "grid 2x2", "mixed(grid 4x1; layers 4; grid 2x2)"},
		{"mixed(grid 4x1; layers 4)", "mixed(layers 4; grid 4x1)", "mixed(grid 4x1; layers 4)"},
		{"grid 4x1", "mixed(grid 4x1; layers 4)", "mixed(grid 4x1; layers 4)"},
	}
	for _, tc := range cases {
		if got := mergeTopology(tc.a, tc.b); got != tc.want {
			t.Errorf("mergeTopology(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
	// And through the Stats-level merge, where the bug lived:
	agg := Stats{Topology: "grid 4x1"}.Merge(Stats{Topology: "layers 4"})
	if agg.Topology != "mixed(grid 4x1; layers 4)" {
		t.Fatalf("Stats.Merge topology = %q", agg.Topology)
	}
	if !strings.Contains(agg.String(), `topology="mixed(grid 4x1; layers 4)"`) {
		t.Fatalf("String() hides the mixed topology: %q", agg.String())
	}
}

// TestTimingMerge pins the phase roll-up: sums, untimed-side guards, and
// the barrier extremes keeping their rank ids.
func TestTimingMerge(t *testing.T) {
	timed := Timing{SweepNs: 100, BarrierNs: 10, RanksTimed: 1,
		MaxBarrierNs: 10, MaxBarrierOn: 0, MinBarrierNs: 10, StragglerRank: 0}

	if got := (Timing{}).Merge(timed); got != timed {
		t.Fatalf("zero.Merge(timed) = %+v", got)
	}
	if got := timed.Merge(Timing{}); got != timed {
		t.Fatalf("timed.Merge(zero) = %+v", got)
	}

	other := Timing{SweepNs: 50, BarrierNs: 30, RanksTimed: 1,
		MaxBarrierNs: 30, MaxBarrierOn: 3, MinBarrierNs: 30, StragglerRank: 3}
	got := timed.Merge(other)
	want := Timing{SweepNs: 150, BarrierNs: 40, RanksTimed: 2,
		MaxBarrierNs: 30, MaxBarrierOn: 3, MinBarrierNs: 10, StragglerRank: 0}
	if got != want {
		t.Fatalf("Merge = %+v, want %+v", got, want)
	}
}

// TestStragglerReport pins the imbalance semantics: the straggler is the
// rank with the LEAST barrier wait (everyone else waits for it), the ratio
// is max over mean, and a single timed rank yields no report.
func TestStragglerReport(t *testing.T) {
	if _, _, ok := (Timing{RanksTimed: 1, BarrierNs: 5}).Straggler(); ok {
		t.Fatal("one rank cannot be imbalanced")
	}
	tm := Timing{BarrierNs: 40, RanksTimed: 2,
		MaxBarrierNs: 30, MaxBarrierOn: 1, MinBarrierNs: 10, StragglerRank: 0}
	rank, ratio, ok := tm.Straggler()
	if !ok || rank != 0 || ratio != 1.5 {
		t.Fatalf("Straggler = %d, %v, %v; want 0, 1.5, true", rank, ratio, ok)
	}
	if s := tm.String(); !strings.Contains(s, "straggler=rank 0") {
		t.Fatalf("Timing.String lacks the imbalance line: %q", s)
	}
	// All-zero waits: report the straggler with ratio 0 instead of dividing
	// by zero.
	rank, ratio, ok = (Timing{RanksTimed: 2, StragglerRank: 1}).Straggler()
	if !ok || rank != 1 || ratio != 0 {
		t.Fatalf("zero-wait Straggler = %d, %v, %v", rank, ratio, ok)
	}
}

// TestTransportMerge pins the counter roll-up: sums everywhere except the
// high-water mark, which takes max.
func TestTransportMerge(t *testing.T) {
	a := Transport{FramesSent: 1, FramesRecv: 2, BytesSent: 3, BytesRecv: 4,
		QueueHighWater: 5, DialRetries: 6, PoisonEvents: 7}
	b := Transport{FramesSent: 10, FramesRecv: 20, BytesSent: 30, BytesRecv: 40,
		QueueHighWater: 2, DialRetries: 60, PoisonEvents: 70}
	want := Transport{FramesSent: 11, FramesRecv: 22, BytesSent: 33, BytesRecv: 44,
		QueueHighWater: 5, DialRetries: 66, PoisonEvents: 77}
	if got := a.Merge(b); got != want {
		t.Fatalf("Merge = %+v, want %+v", got, want)
	}
	if got := b.Merge(a); got != want {
		t.Fatalf("Merge not symmetric: %+v", got)
	}
	if s := want.String(); !strings.Contains(s, "frames[sent/recv]=11/22") || !strings.Contains(s, "queue-hw=5") {
		t.Fatalf("Transport.String = %q", s)
	}
}

// TestTimingRidesStatsJSON pins that the phase breakdown and transport
// counters survive the CHILDSTATS JSON hop a -launch parent relies on.
func TestTimingRidesStatsJSON(t *testing.T) {
	in := Stats{
		Iterations: 5,
		Timing:     Timing{SweepNs: 123, RanksTimed: 1, MinBarrierNs: 7, StragglerRank: 2},
		Transport:  Transport{FramesSent: 9, BytesSent: 900},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("JSON roundtrip dropped fields: %+v", back)
	}
}
