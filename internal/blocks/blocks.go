// Package blocks applies the ABFT scheme per chunk of a 2-D domain — the
// tiled deployment of the paper's Section 3.4/5.1, where the detection
// threshold "depends on the domain, chunk, or block size on which the
// method is applied". Small blocks keep checksum magnitudes (and with them
// the floating-point round-off floor) low, so a tighter epsilon detects
// smaller corruptions; the ablation bench quantifies the floor-vs-size
// trade-off.
//
// Each block owns its checksum pair and verifies independently. In shared
// memory nothing needs to be exchanged: the window-shift sums a block's
// interpolation needs from its neighbours are O(r·(bx+by)) partial sums
// read straight from the still-live t-buffer.
package blocks

import (
	"fmt"

	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stats"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Stats aggregates the tiled protector's counters through the unified
// counter model (FlaggedBlocks is the tile-specific entry: block-level
// verification failures; Detections counts iterations with at least one
// flagged block).
type Stats = stats.Stats

// block is one tile's geometry and checksum state.
type block[T num.Float] struct {
	x0, y0, x1, y1 int
	ip             *checksum.Interp2D[T]
	prevB          []T // verified partial column checksums at t
	newB           []T // fused partial column checksums at t+1
	interpB        []T
	bExt           []T // scratch: prevB plus halo row sums
	flagged        bool
}

func (b *block[T]) w() int { return b.x1 - b.x0 }
func (b *block[T]) h() int { return b.y1 - b.y0 }

// Protector runs a 2-D stencil with per-block online ABFT.
type Protector[T num.Float] struct {
	op   *stencil.Op2D[T]
	buf  *grid.Buffer[T]
	pool *stencil.Pool
	det  checksum.Detector[T]
	pol  checksum.PairPolicy

	rx, ry int // stencil radii (halo widths)
	blocks []*block[T]
	inj    stencil.InjectSource[T]

	iter  int
	stats Stats
	tel   *telemetry.Recorder // nil when telemetry is disabled
}

// Options configure the tiled protector.
type Options[T num.Float] struct {
	Detector   checksum.Detector[T]
	Pool       *stencil.Pool
	PairPolicy checksum.PairPolicy
	// Inject schedules fault injection for Step/Run; nil runs clean.
	Inject stencil.InjectSource[T]
	// DropBoundaryTerms reproduces the paper's simplified listings per
	// tile (ablation A1); leave false for exact interpolation.
	DropBoundaryTerms bool
	// Telemetry, when non-nil, attributes the protector's wall-clock to
	// phases (sweep, verify, repair); the tiled protector is a single rank
	// and records through one Recorder. Nil disables timing at no cost.
	Telemetry *telemetry.Recorder
}

// New builds a tiled protector with blocks of nominal size bx-by-by (edge
// blocks may be smaller). Blocks must be at least as large as the stencil
// radius so a block's halo touches only adjacent blocks' rows/columns.
func New[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], bx, by int, opt Options[T]) (*Protector[T], error) {
	nx, ny := init.Nx(), init.Ny()
	if err := op.Validate(nx, ny); err != nil {
		return nil, err
	}
	if bx < 1 || by < 1 {
		return nil, fmt.Errorf("blocks: invalid block size %dx%d", bx, by)
	}
	rx, ry := op.St.RadiusX(), op.St.RadiusY()
	if bx < rx || by < ry {
		return nil, fmt.Errorf("blocks: block size %dx%d below stencil radius %d/%d", bx, by, rx, ry)
	}
	if opt.Detector.Epsilon == 0 {
		opt.Detector = checksum.NewDetector[T]()
	}
	if opt.Detector.AbsFloor == 0 {
		opt.Detector.AbsFloor = 1
	}

	p := &Protector[T]{
		op:   op,
		buf:  grid.BufferFrom(init),
		pool: opt.Pool,
		det:  opt.Detector,
		pol:  opt.PairPolicy,
		inj:  opt.Inject,
		rx:   rx, ry: ry,
		tel: opt.Telemetry,
	}
	// Cut points along each axis; a trailing remainder smaller than the
	// stencil radius + 1 is merged into the previous block, since an
	// interpolator needs its domain strictly wider than the radius.
	xs := cuts(nx, bx, rx)
	ys := cuts(ny, by, ry)
	for j := 0; j+1 < len(ys); j++ {
		for i := 0; i+1 < len(xs); i++ {
			b := &block[T]{x0: xs[i], y0: ys[j], x1: xs[i+1], y1: ys[j+1]}
			// The interpolator is built per block shape with the
			// block's slice of the constant field.
			iop := &stencil.Op2D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
			if op.C != nil {
				cblk := grid.New[T](b.w(), b.h())
				for y := 0; y < b.h(); y++ {
					copy(cblk.Row(y), op.C.Row(b.y0 + y)[b.x0:b.x1])
				}
				iop.C = cblk
			}
			ip, err := checksum.NewInterp2D(iop, b.w(), b.h())
			if err != nil {
				return nil, err
			}
			ip.DropBoundaryTerms = opt.DropBoundaryTerms
			b.ip = ip
			b.prevB = make([]T, b.h())
			b.newB = make([]T, b.h())
			b.interpB = make([]T, b.h())
			b.bExt = make([]T, b.h()+2*ry)
			stencil.ChecksumBRect(p.buf.Read, b.x0, b.y0, b.x1, b.y1, b.prevB)
			p.blocks = append(p.blocks, b)
		}
	}
	return p, nil
}

// cuts returns the block boundaries along an axis of length n with block
// size s, merging a trailing remainder of radius r or less into the last
// full block.
func cuts(n, s, r int) []int {
	out := []int{0}
	for c := s; c < n; c += s {
		if n-c <= r {
			break
		}
		out = append(out, c)
	}
	return append(out, n)
}

// Grid returns the current domain state.
func (p *Protector[T]) Grid() *grid.Grid[T] { return p.buf.Read }

// Iter returns the number of completed sweeps.
func (p *Protector[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters.
func (p *Protector[T]) Stats() Stats { return p.stats }

// Grid3D returns nil: the tiled protector covers 2-D domains.
func (p *Protector[T]) Grid3D() *grid.Grid3D[T] { return nil }

// Finalize is a no-op: every block verifies every sweep.
func (p *Protector[T]) Finalize() {}

// Blocks returns the number of tiles.
func (p *Protector[T]) Blocks() int { return len(p.blocks) }

// Step advances one sweep with per-block fused checksums, verification and
// correction, applying the configured injection source.
func (p *Protector[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject is Step with an explicit per-call injection hook (domain
// coordinates), applied during the sweep when non-nil.
func (p *Protector[T]) StepInject(hook stencil.InjectFunc[T]) {
	src, dst := p.buf.Read, p.buf.Write
	p.tel.SetIter(p.iter)

	sweep := func(i int) {
		b := p.blocks[i]
		p.op.SweepRectFused(dst, src, b.x0, b.y0, b.x1, b.y1, b.newB, hook)
	}
	verify := func(i int) {
		b := p.blocks[i]
		p.verifyBlock(b, src)
	}
	t0 := p.tel.Begin()
	if p.pool != nil {
		p.pool.ForEach(len(p.blocks), sweep)
		t1 := p.tel.Begin()
		p.tel.End(telemetry.PhaseSweep, t0)
		p.pool.ForEach(len(p.blocks), verify)
		t0 = t1
	} else {
		for i := range p.blocks {
			sweep(i)
		}
		t1 := p.tel.Begin()
		p.tel.End(telemetry.PhaseSweep, t0)
		for i := range p.blocks {
			verify(i)
		}
		t0 = t1
	}

	// One checksum comparison happened per block, so the unified
	// Verifications counter stays comparable across deployments.
	p.stats.Verifications += len(p.blocks)

	// Correction runs serially over the (rare) flagged blocks: it reads
	// neighbouring data while other blocks' state is quiescent.
	any := false
	for _, b := range p.blocks {
		if b.flagged {
			any = true
			break
		}
	}
	p.tel.End(telemetry.PhaseVerify, t0)
	if any {
		t0 = p.tel.Begin()
		for _, b := range p.blocks {
			if b.flagged {
				p.stats.FlaggedBlocks++
				p.correctBlock(b, src, dst)
				b.flagged = false
			}
		}
		p.stats.Detections++
		p.tel.End(telemetry.PhaseRepair, t0)
	}

	for _, b := range p.blocks {
		b.prevB, b.newB = b.newB, b.prevB
	}
	p.buf.Swap()
	p.iter++
	p.stats.Iterations++
}

// Run advances count iterations, applying the configured injection source.
func (p *Protector[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// verifyBlock interpolates the block's expected checksums from iteration t
// and flags a mismatch. The halo entries of the extended checksum vector
// are partial row sums over the block's columns just outside its y-range,
// read from the live t-buffer with global boundary resolution.
func (p *Protector[T]) verifyBlock(b *block[T], src *grid.Grid[T]) {
	ry := p.ry
	bg := grid.BoundedGrid[T]{G: src, Cond: p.op.BC, ConstVal: p.op.BCValue}
	for j := 0; j < ry; j++ {
		b.bExt[j] = p.partialRowSum(bg, b, b.y0-ry+j)
		b.bExt[ry+b.h()+j] = p.partialRowSum(bg, b, b.y1+j)
	}
	copy(b.bExt[ry:ry+b.h()], b.prevB)

	edges := checksum.OffsetEdges[T]{Src: bg, X0: b.x0, Y0: b.y0}
	b.ip.InterpolateBBand(b.bExt, ry, edges, b.interpB)
	b.flagged = p.det.AnyMismatch(b.newB, b.interpB)
}

// partialRowSum sums ũ(x, y) over the block's columns for a (possibly
// ghost) row y.
func (p *Protector[T]) partialRowSum(bg grid.BoundedGrid[T], b *block[T], y int) T {
	var s T
	for x := b.x0; x < b.x1; x++ {
		s += bg.At(x, y)
	}
	return s
}

// correctBlock runs the block-local slow path: lazy row checksums with
// x-halos from the horizontal neighbours, localisation, and stable
// Equation-(10) repair in the write buffer.
func (p *Protector[T]) correctBlock(b *block[T], src, dst *grid.Grid[T]) {
	rx := p.rx
	bg := grid.BoundedGrid[T]{G: src, Cond: p.op.BC, ConstVal: p.op.BCValue}

	aExt := make([]T, b.w()+2*rx)
	for i := 0; i < rx; i++ {
		aExt[i] = p.partialColSum(bg, b, b.x0-rx+i)
		aExt[rx+b.w()+i] = p.partialColSum(bg, b, b.x1+i)
	}
	stencil.ChecksumARect(src, b.x0, b.y0, b.x1, b.y1, aExt[rx:rx+b.w()])

	interpA := make([]T, b.w())
	edges := checksum.OffsetEdges[T]{Src: bg, X0: b.x0, Y0: b.y0}
	b.ip.InterpolateABlock(aExt, rx, edges, interpA)

	newA := make([]T, b.w())
	stencil.ChecksumARect(dst, b.x0, b.y0, b.x1, b.y1, newA)

	bm := p.det.Compare(b.newB, b.interpB)
	am := p.det.Compare(newA, interpA)
	if len(am) == 0 || len(bm) == 0 {
		p.stats.ChecksumRepairs++
		stencil.ChecksumBRect(dst, b.x0, b.y0, b.x1, b.y1, b.newB)
		return
	}
	locs := checksum.Pair(am, bm, p.pol)
	for _, loc := range locs {
		checksum.CorrectRect(dst, b.x0, b.y0, b.x1, b.y1, loc,
			newA, b.newB, interpA, b.interpB)
		p.stats.CorrectedPoints++
	}
}

// partialColSum sums ũ(x, y) over the block's rows for a (possibly ghost)
// column x.
func (p *Protector[T]) partialColSum(bg grid.BoundedGrid[T], b *block[T], x int) T {
	var s T
	for y := b.y0; y < b.y1; y++ {
		s += bg.At(x, y)
	}
	return s
}
