package blocks

import (
	"math/rand"
	"testing"

	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

func blockOpts() Options[float64] {
	return Options[float64]{Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}}
}

func makeOp(nx, ny int, rng *rand.Rand, bc grid.Boundary) *stencil.Op2D[float64] {
	c := grid.New[float64](nx, ny)
	c.FillFunc(func(x, y int) float64 { return 0.05 * rng.Float64() })
	return &stencil.Op2D[float64]{St: stencil.Laplace5(0.21), BC: bc, BCValue: 1.5, C: c}
}

func makeInit(nx, ny int, rng *rand.Rand) *grid.Grid[float64] {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 200 + 30*rng.Float64() })
	return g
}

// TestBlockedMatchesBaseline: the tiled run must be bitwise identical to
// the unprotected baseline in an error-free execution, for every boundary
// condition and for block sizes that do and do not divide the domain.
func TestBlockedMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		for _, bs := range [][2]int{{8, 8}, {7, 5}, {32, 4}, {40, 40}} {
			nx, ny := 40, 36
			op := makeOp(nx, ny, rand.New(rand.NewSource(2)), bc)
			init := makeInit(nx, ny, rng)
			const iters = 20

			ref, err := core.NewNone2D(op, init, core.Options[float64]{})
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(iters)

			p, err := New(op, init, bs[0], bs[1], blockOpts())
			if err != nil {
				t.Fatalf("bc=%s bs=%v: %v", bc, bs, err)
			}
			p.Run(iters)
			if d := p.Grid().MaxAbsDiff(ref.Grid()); d != 0 {
				t.Fatalf("bc=%s bs=%v: diverged by %g", bc, bs, d)
			}
			if st := p.Stats(); st.Detections != 0 {
				t.Fatalf("bc=%s bs=%v: false positives %+v", bc, bs, st)
			}
		}
	}
}

// TestBlockedAsymmetricStencil exercises the per-block beta terms with the
// upwind advection kernel under clamp boundaries.
func TestBlockedAsymmetricStencil(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nx, ny := 30, 28
	op := &stencil.Op2D[float64]{St: stencil.Advect2D(0.3, 0.15), BC: grid.Clamp}
	init := makeInit(nx, ny, rng)
	const iters = 18

	ref, err := core.NewNone2D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	p, err := New(op, init, 9, 7, blockOpts())
	if err != nil {
		t.Fatal(err)
	}
	p.Run(iters)
	if d := p.Grid().MaxAbsDiff(ref.Grid()); d != 0 {
		t.Fatalf("diverged by %g", d)
	}
	if st := p.Stats(); st.Detections != 0 {
		t.Fatalf("false positives: %+v", st)
	}
}

// TestBlockedDetectsAndCorrects injects flips at block interiors, block
// boundaries and domain corners.
func TestBlockedDetectsAndCorrects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny := 32, 32
	op := makeOp(nx, ny, rand.New(rand.NewSource(5)), grid.Clamp)
	init := makeInit(nx, ny, rng)
	const iters = 24

	ref, err := core.NewNone2D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	targets := []struct{ x, y int }{
		{4, 4},   // block interior
		{7, 9},   // adjacent to a block edge (blocks are 8x8)
		{8, 8},   // block corner
		{0, 0},   // domain corner
		{31, 31}, // far domain corner
		{15, 16}, // straddling block boundary rows
	}
	for ti, tc := range targets {
		inj := fault.Injection{Iteration: 7 + ti, X: tc.x, Y: tc.y, Bit: 58}
		p, err := New(op, init, 8, 8, blockOpts())
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		st := p.Stats()
		if st.Detections == 0 || st.CorrectedPoints == 0 {
			t.Fatalf("target %d (%v): not handled (%+v)", ti, inj, st)
		}
		if d := p.Grid().MaxAbsDiff(ref.Grid()); d > 1e-6 {
			t.Fatalf("target %d (%v): residual %g", ti, inj, d)
		}
	}
}

// TestBlockedLocalisesToOneBlock: exactly one block flags for an interior
// single-point error.
func TestBlockedLocalisesToOneBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nx, ny := 32, 32
	op := makeOp(nx, ny, rand.New(rand.NewSource(7)), grid.Clamp)
	init := makeInit(nx, ny, rng)

	p, err := New(op, init, 8, 8, blockOpts())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.Injection{Iteration: 5, X: 20, Y: 12, Bit: 58}
	injector := fault.NewInjector[float64](fault.NewPlan(inj))
	for i := 0; i < 10; i++ {
		p.StepInject(injector.HookFor(i))
	}
	st := p.Stats()
	if st.FlaggedBlocks != 1 {
		t.Fatalf("flagged %d blocks, want exactly 1 (%+v)", st.FlaggedBlocks, st)
	}
	if st.CorrectedPoints != 1 {
		t.Fatalf("corrected %d points (%+v)", st.CorrectedPoints, st)
	}
}

// TestBlockedParallelMatchesSequential: pool execution is bitwise equal.
func TestBlockedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nx, ny := 48, 40
	op := makeOp(nx, ny, rand.New(rand.NewSource(9)), grid.Mirror)
	init := makeInit(nx, ny, rng)

	seq, err := New(op, init, 8, 8, blockOpts())
	if err != nil {
		t.Fatal(err)
	}
	popt := blockOpts()
	popt.Pool = &stencil.Pool{Workers: 5}
	par, err := New(op, init, 8, 8, popt)
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(15)
	par.Run(15)
	if d := seq.Grid().MaxAbsDiff(par.Grid()); d != 0 {
		t.Fatalf("parallel tiled run diverged by %g", d)
	}
}

func TestBlockedRejectsBadBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	op := makeOp(16, 16, rng, grid.Clamp)
	init := makeInit(16, 16, rng)
	if _, err := New(op, init, 0, 8, blockOpts()); err == nil {
		t.Fatal("zero block width accepted")
	}
}

func TestBlockCountAndGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	op := makeOp(20, 10, rng, grid.Clamp)
	init := makeInit(20, 10, rng)
	p, err := New(op, init, 8, 4, blockOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ceil(20/8)=3 by ceil(10/4)=3 blocks.
	if p.Blocks() != 9 {
		t.Fatalf("blocks = %d, want 9", p.Blocks())
	}
}

// TestBlockGranularityImprovesSensitivity pins the motivation for per-chunk
// application (paper Section 3.4): a corruption whose relative effect on a
// whole-domain checksum sits below the threshold is still visible against a
// block's much smaller checksum. A fraction-bit flip of ~0.25 on a 256-wide
// row of ~300-valued float32 cells moves the whole-row sum by 3e-6 relative
// (invisible at epsilon=1e-5) but a 16-wide block sum by 5e-5 (flagged).
func TestBlockGranularityImprovesSensitivity(t *testing.T) {
	const nx, ny = 256, 32
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	init := grid.New[float32](nx, ny)
	init.FillFunc(func(x, y int) float32 { return 300 + float32(x%5) })
	inj := fault.Injection{Iteration: 4, X: 130, Y: 15, Bit: 13}
	det := checksum.Detector[float32]{Epsilon: 1e-5, AbsFloor: 1}

	whole, err := core.NewOnline2D(op, init, core.Options[float32]{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	injW := fault.NewInjector[float32](fault.NewPlan(inj))
	for i := 0; i < 10; i++ {
		whole.StepInject(injW.HookFor(i))
	}
	if len(injW.Hits()) != 1 {
		t.Fatal("injection did not land in whole-domain run")
	}
	if whole.Stats().Detections != 0 {
		t.Fatalf("whole-domain run detected the flip; the test magnitude is miscalibrated: %+v", whole.Stats())
	}

	blocked, err := New(op, init, 16, 16, Options[float32]{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	injB := fault.NewInjector[float32](fault.NewPlan(inj))
	for i := 0; i < 10; i++ {
		blocked.StepInject(injB.HookFor(i))
	}
	st := blocked.Stats()
	if st.Detections == 0 || st.CorrectedPoints == 0 {
		t.Fatalf("blocked run missed the flip at the same epsilon: %+v", st)
	}
}

// TestDropBoundaryTermsPlumbed: with an asymmetric stencil under clamp
// boundaries the paper's dropped-term interpolation misfires per tile,
// while the exact default stays silent — proving the A1 ablation knob
// actually reaches the per-block interpolators.
func TestDropBoundaryTermsPlumbed(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Advect2D(0.3, 0.15), BC: grid.Clamp}
	init := grid.New[float64](48, 48)
	init.FillFunc(func(x, y int) float64 {
		if x < 6 {
			return 100
		}
		return 1
	})
	run := func(drop bool) Stats {
		p, err := New(op, init, 16, 16, Options[float64]{
			Detector:          checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
			DropBoundaryTerms: drop,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Run(20)
		return p.Stats()
	}
	if st := run(false); st.Detections != 0 {
		t.Fatalf("exact interpolation raised false positives: %+v", st)
	}
	if st := run(true); st.Detections == 0 {
		t.Fatal("dropped boundary terms should misfire on an asymmetric stencil")
	}
}
