package resilience

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"stencilabft/internal/dist"
	"stencilabft/internal/num"
)

// The recovery control plane: when a rank process dies, every surviving
// process reports the fault to the coordinator (the process that already
// served the bootstrap rendezvous — rank 0's host under stencilrun
// -launch, or any designated process otherwise) and blocks until the
// coordinator answers with a Plan. The coordinator identifies the dead
// rank by elimination once all survivors have reported, picks the newest
// checkpoint generation every survivor can restore and some survivor
// guards for the dead rank, decides where the dead rank's tile will live
// next (a respawned process or a surviving adopter), streams the buddy
// copy there, and hands everyone a fresh rendezvous address for the
// rebuilt transport. Messages ride the dist wire format (FrameDead
// reports, FrameAdopt plans/requests, FrameState snapshots), so the
// control endpoint rejects foreign traffic exactly like a halo edge.

// Report is a surviving process's fault report.
type Report struct {
	// Ranks are the ranks this process hosts (all alive).
	Ranks []int `json:"ranks"`
	// Suspect is the peer rank the observed fault points at, -1 if the
	// fault did not name one. Corroborating only — the coordinator decides
	// by elimination, which also covers faults first observed as timeouts.
	Suspect int `json:"suspect"`
	// Gen is the barrier generation the fault surfaced at.
	Gen int `json:"gen"`
	// SelfGens lists the checkpoint generations each hosted rank has banked
	// for itself; WardGens the generations banked per guarded ward.
	SelfGens map[int][]int `json:"selfGens"`
	WardGens map[int][]int `json:"wardGens"`
}

// Plan is the coordinator's recovery decision, sent to every survivor and
// to a respawned adopter.
type Plan struct {
	// Dead is the rank declared dead this round.
	Dead int `json:"dead"`
	// RestartGen is the iteration every rank rolls back to (0 = rebuild
	// from the deterministic initial state).
	RestartGen int `json:"restartGen"`
	// Epoch numbers the post-recovery incarnation of the cluster, and
	// Rendezvous is the fresh bootstrap address its transport meets at.
	Epoch      int    `json:"epoch"`
	Rendezvous string `json:"rendezvous"`
	// Adopt instructs the receiving process to host Dead from now on (it is
	// the dead rank's guard, so the buddy copy is already local). False for
	// everyone else; respawned processes always adopt.
	Adopt bool `json:"adopt,omitempty"`
	// SendState instructs the receiving process to upload its guarded copy
	// of Dead at RestartGen — the respawn path, where the coordinator
	// relays it to the new process.
	SendState bool `json:"sendState,omitempty"`
	// DeadRanks lists every rank declared dead this round when more than one
	// died — the double-death escalation, where buddy banks cannot cover the
	// loss and the cluster restores from disk. Dead is -1 in such plans.
	DeadRanks []int `json:"deadRanks,omitempty"`
	// AdoptRanks lists the dead ranks this process must host from now on
	// (escalation in adopt mode deals the dead ranks out to survivors).
	AdoptRanks []int `json:"adoptRanks,omitempty"`
	// Disk is the shared checkpoint directory every rank restores
	// RestartGen from (see RankBase) — set only on escalation plans. No
	// state frames ride the control plane when Disk is set.
	Disk string `json:"disk,omitempty"`
	// Err aborts recovery with a reason (e.g. no restorable generation).
	Err string `json:"err,omitempty"`
}

// AdoptRequest is what a respawned process sends the coordinator to claim
// the dead rank's plan and state.
type AdoptRequest struct {
	Rank int `json:"rank"`
}

// dialControl dials the coordinator with retry until the deadline — the
// coordinator may itself be mid-recovery of its own cluster when the first
// survivors start reporting.
func dialControl(addr string, deadline time.Duration) (net.Conn, error) {
	expire := time.Now().Add(deadline)
	var lastErr error
	for {
		remain := time.Until(expire)
		if remain <= 0 {
			return nil, fmt.Errorf("resilience: gave up dialing the coordinator at %s after %v: %w", addr, deadline, lastErr)
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
}

// ReportFault sends rep to the coordinator at addr and blocks for the
// recovery plan. If the plan asks this process to upload its guarded copy
// of the dead rank, stateOf(dead, restartGen) supplies it and the upload
// happens on the same connection before returning.
func ReportFault[T num.Float](addr string, rep Report, stateOf func(rank, gen int) []T, timeout time.Duration) (Plan, error) {
	conn, err := dialControl(addr, timeout)
	if err != nil {
		return Plan{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := dist.WriteJSONFrame(conn, dist.FrameDead, rep); err != nil {
		return Plan{}, fmt.Errorf("resilience: sending the fault report: %w", err)
	}
	plan, err := readPlan(conn)
	if err != nil {
		return Plan{}, err
	}
	if plan.Err != "" {
		return plan, fmt.Errorf("resilience: coordinator aborted recovery: %s", plan.Err)
	}
	if plan.SendState {
		data := stateOf(plan.Dead, plan.RestartGen)
		if data == nil {
			return plan, fmt.Errorf("resilience: coordinator wants rank %d at generation %d but this process does not guard it", plan.Dead, plan.RestartGen)
		}
		if err := dist.WriteStateFrame(conn, plan.RestartGen, data); err != nil {
			return plan, fmt.Errorf("resilience: uploading rank %d's buddy copy: %w", plan.Dead, err)
		}
		// Wait for the coordinator to confirm the relay completed before
		// tearing the connection down.
		if _, err := dist.ReadWireFrame(conn); err != nil {
			return plan, fmt.Errorf("resilience: waiting for the upload acknowledgement: %w", err)
		}
	}
	return plan, nil
}

// RequestAdoption is the respawned process's entry: it claims rank's
// recovery plan from the coordinator and, for a non-zero restart
// generation, the dead rank's snapshot.
func RequestAdoption[T num.Float](addr string, rank int, timeout time.Duration) (Plan, []T, error) {
	conn, err := dialControl(addr, timeout)
	if err != nil {
		return Plan{}, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := dist.WriteJSONFrame(conn, dist.FrameAdopt, AdoptRequest{Rank: rank}); err != nil {
		return Plan{}, nil, fmt.Errorf("resilience: sending the adoption request: %w", err)
	}
	plan, err := readPlan(conn)
	if err != nil {
		return Plan{}, nil, err
	}
	if plan.Err != "" {
		return plan, nil, fmt.Errorf("resilience: coordinator rejected adoption: %s", plan.Err)
	}
	if plan.RestartGen == 0 || plan.Disk != "" {
		// Nothing to stream: the process rebuilds from the initial state, or
		// restores from the shared checkpoint directory itself.
		return plan, nil, nil
	}
	f, err := dist.ReadWireFrame(conn)
	if err != nil {
		return plan, nil, fmt.Errorf("resilience: waiting for rank %d's snapshot: %w", rank, err)
	}
	data, gen, err := dist.DecodeStateFrame[T](f)
	if err != nil {
		return plan, nil, err
	}
	if gen != plan.RestartGen {
		return plan, nil, fmt.Errorf("resilience: snapshot is generation %d, plan restarts at %d", gen, plan.RestartGen)
	}
	return plan, data, nil
}

// readPlan reads one FrameAdopt plan frame.
func readPlan(conn net.Conn) (Plan, error) {
	f, err := dist.ReadWireFrame(conn)
	if err != nil {
		return Plan{}, fmt.Errorf("resilience: waiting for the recovery plan: %w", err)
	}
	if f.Kind != dist.FrameAdopt {
		return Plan{}, fmt.Errorf("resilience: coordinator answered with frame kind %d, want a plan", f.Kind)
	}
	var plan Plan
	if err := json.Unmarshal(f.Payload, &plan); err != nil {
		return Plan{}, fmt.Errorf("resilience: recovery plan payload: %w", err)
	}
	return plan, nil
}
