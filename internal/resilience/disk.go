package resilience

import (
	"errors"
	"fmt"
	"io/fs"
	"os"

	"stencilabft/internal/checkpoint"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Disk-backed whole-cluster restart: the buddy scheme survives one rank;
// losing the whole job (power cut, scheduler preemption, deliberate stop)
// needs durable state. DiskSaver alternates between two files derived from
// one base path so a crash — or bit rot caught by the checkpoint file's
// CRC — mid-way through one save still leaves the previous snapshot
// restorable; checkpoint.WriteFile's tmp-and-rename already makes each
// individual save atomic.

// DiskSaver writes alternating whole-domain checkpoints under a base path.
type DiskSaver[T num.Float] struct {
	base string
	n    int
}

// NewDiskSaver checkpoints to base+".a" and base+".b" alternately.
func NewDiskSaver[T num.Float](base string) *DiskSaver[T] {
	return &DiskSaver[T]{base: base}
}

// Paths returns the two alternating file paths for a base path.
func Paths(base string) [2]string { return [2]string{base + ".a", base + ".b"} }

// Save writes the domain and its checksum vector at iteration iter to the
// next file in the rotation.
func (s *DiskSaver[T]) Save(iter int, g *grid.Grid[T], b []T) error {
	p := Paths(s.base)[s.n%2]
	s.n++
	return checkpoint.WriteFile(p, iter, g, b)
}

// LoadLatest reads the newest valid checkpoint under base — trying both
// rotation files, tolerating one being missing or corrupt — and returns
// the domain, checksum vector and iteration. A base naming a plain
// existing file (no rotation suffix) is read directly, so restores work
// from explicitly named snapshots too.
func LoadLatest[T num.Float](base string) (*grid.Grid[T], []T, int, error) {
	if _, err := os.Stat(base); err == nil {
		return checkpoint.ReadFile[T](base)
	}
	var (
		bestG    *grid.Grid[T]
		bestB    []T
		bestIter = -1
		lastErr  error
	)
	for _, p := range Paths(base) {
		g, b, iter, err := checkpoint.ReadFile[T](p)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				lastErr = err
			}
			continue
		}
		if iter > bestIter {
			bestG, bestB, bestIter = g, b, iter
		}
	}
	if bestIter < 0 {
		if lastErr != nil {
			return nil, nil, 0, fmt.Errorf("resilience: no valid checkpoint under %s: %w", base, lastErr)
		}
		return nil, nil, 0, fmt.Errorf("resilience: no checkpoint found under %s (tried %s and %s)", base, Paths(base)[0], Paths(base)[1])
	}
	return bestG, bestB, bestIter, nil
}
