package resilience

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"stencilabft/internal/checkpoint"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Disk-backed whole-cluster restart: the buddy scheme survives one rank;
// losing the whole job (power cut, scheduler preemption, deliberate stop)
// needs durable state. DiskSaver alternates between two files derived from
// one base path so a crash — or bit rot caught by the checkpoint file's
// CRC — mid-way through one save still leaves the previous snapshot
// restorable; checkpoint.WriteFile's tmp-and-rename already makes each
// individual save atomic.

// DiskSaver writes alternating whole-domain checkpoints under a base path.
type DiskSaver[T num.Float] struct {
	base string
	n    int
}

// NewDiskSaver checkpoints to base+".a" and base+".b" alternately.
func NewDiskSaver[T num.Float](base string) *DiskSaver[T] {
	return &DiskSaver[T]{base: base}
}

// Paths returns the two alternating file paths for a base path.
func Paths(base string) [2]string { return [2]string{base + ".a", base + ".b"} }

// Save writes the domain and its checksum vector at iteration iter to the
// next file in the rotation.
func (s *DiskSaver[T]) Save(iter int, g *grid.Grid[T], b []T) error {
	p := Paths(s.base)[s.n%2]
	s.n++
	return checkpoint.WriteFile(p, iter, g, b)
}

// LoadLatest reads the newest valid checkpoint under base — trying both
// rotation files, tolerating one being missing or corrupt — and returns
// the domain, checksum vector and iteration. A base naming a plain
// existing file (no rotation suffix) is read directly, so restores work
// from explicitly named snapshots too.
func LoadLatest[T num.Float](base string) (*grid.Grid[T], []T, int, error) {
	if _, err := os.Stat(base); err == nil {
		return checkpoint.ReadFile[T](base)
	}
	var (
		bestG    *grid.Grid[T]
		bestB    []T
		bestIter = -1
		lastErr  error
	)
	for _, p := range Paths(base) {
		g, b, iter, err := checkpoint.ReadFile[T](p)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				lastErr = err
			}
			continue
		}
		if iter > bestIter {
			bestG, bestB, bestIter = g, b, iter
		}
	}
	if bestIter < 0 {
		if lastErr != nil {
			return nil, nil, 0, fmt.Errorf("resilience: no valid checkpoint under %s: %w", base, lastErr)
		}
		return nil, nil, 0, fmt.Errorf("resilience: no checkpoint found under %s (tried %s and %s)", base, Paths(base)[0], Paths(base)[1])
	}
	return bestG, bestB, bestIter, nil
}

// RankBase is the per-rank base path inside a shared checkpoint directory.
// Every rank of a job saves under the same naming scheme so the coordinator
// — which knows only the directory — can enumerate everyone's rotations.
func RankBase(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank-%04d.ckpt", rank))
}

// RankGens lists the generations rank holds on disk, newest first. Missing
// or corrupt rotation files are skipped: a generation is only reported if
// its checkpoint passes the CRC. Type-independent (header peek only), so
// the coordinator can call it without knowing the element type.
func RankGens(dir string, rank int) []int {
	var gens []int
	for _, p := range Paths(RankBase(dir, rank)) {
		if iter, err := checkpoint.PeekIter(p); err == nil {
			gens = append(gens, iter)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	return gens
}

// LoadRankState reads rank's disk checkpoint at exactly generation gen and
// returns the packed state vector (the flat payload Buddy banks — not a
// domain grid). The coordinator picks gen as the newest generation every
// rank holds; a rank whose rotation no longer has it reports the mismatch
// rather than silently restoring a different generation.
func LoadRankState[T num.Float](dir string, rank, gen int) ([]T, error) {
	var lastErr error
	for _, p := range Paths(RankBase(dir, rank)) {
		g, _, iter, err := checkpoint.ReadFile[T](p)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				lastErr = err
			}
			continue
		}
		if iter == gen {
			return g.Data(), nil
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("resilience: rank %d has no disk checkpoint at generation %d: %w", rank, gen, lastErr)
	}
	return nil, fmt.Errorf("resilience: rank %d has no disk checkpoint at generation %d", rank, gen)
}

// DiskRestartGen scans a checkpoint directory for n ranks and returns the
// newest generation every rank holds a valid checkpoint for — the only
// generation a whole-cluster disk restore can replay from. Returns 0 (run
// from initial state) when no common generation exists.
func DiskRestartGen(dir string, n int) int {
	common := map[int]int{}
	for r := 0; r < n; r++ {
		seen := map[int]bool{}
		for _, g := range RankGens(dir, r) {
			if g > 0 && !seen[g] {
				seen[g] = true
				common[g]++
			}
		}
	}
	best := 0
	for g, cnt := range common {
		if cnt == n && g > best {
			best = g
		}
	}
	return best
}
