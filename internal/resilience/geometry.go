// Package resilience adds fail-stop fault tolerance to the distributed ABFT
// clusters: buddy checkpointing over the existing halo edges, a
// rendezvous-led recovery protocol that absorbs a dead rank into a
// surviving or respawned process, and disk-backed whole-cluster restart.
// The online ABFT scheme of the paper protects a live rank's data against
// silent corruption; this package protects the cluster against losing a
// rank entirely — the two compose, since both roll forward from verified
// state.
//
// The failure model is single fail-stop per recovery round: one rank
// process dies (SIGKILL, OOM, node loss), its peers observe broken
// connections, and every survivor plus the recovery coordinator agree on a
// rollback generation that buddy copies can reconstruct. Simultaneous
// multi-rank loss is out of scope (the buddy of a dead rank must survive),
// matching the classic buddy-checkpointing guarantee.
package resilience

import (
	"fmt"

	"stencilabft/internal/dist"
)

// Buddy pairing runs along the x axis of the rank grid when it has more
// than one column, else along y. Even indices pair with the next index,
// odd with the previous; the last index of an odd-length axis leans on its
// lower neighbour. The pairing is adjacency-preserving by construction —
// a rank's buddy is always a grid neighbour, so checkpoint frames ride the
// halo edge that already exists (the issue's "no new connections" design).
//
// On an odd-length axis the pairing is asymmetric at the tail: with three
// columns, rank 2's buddy is rank 1, while rank 1's buddy is rank 0 — rank
// 1 then guards two wards (0 and 2). WardsOf enumerates exactly this.

// buddyAxis reports whether pairing runs along x and the axis length.
func buddyAxis(d dist.Decomp) (alongX bool, n int) {
	if d.RanksX > 1 {
		return true, d.RanksX
	}
	return false, d.RanksY
}

// BuddyOf returns the rank holding id's checkpoint copies and the halo
// direction from id toward it. It errors on a single-rank grid, which has
// nowhere to mirror state to.
func BuddyOf(d dist.Decomp, id int) (buddy int, dir dist.Dir, err error) {
	if d.NumRanks() < 2 {
		return 0, 0, fmt.Errorf("resilience: a %s grid has no buddy for rank %d (need at least 2 ranks)", d, id)
	}
	cx, cy := d.Coords(id)
	alongX, n := buddyAxis(d)
	idx := cy
	if alongX {
		idx = cx
	}
	step := 1
	if idx%2 == 1 || idx+1 >= n {
		step = -1
	}
	if alongX {
		buddy = d.RankAt(cx+step, cy)
		dir = dist.Right
		if step < 0 {
			dir = dist.Left
		}
	} else {
		buddy = d.RankAt(cx, cy+step)
		dir = dist.Down
		if step < 0 {
			dir = dist.Up
		}
	}
	return buddy, dir, nil
}

// WardsOf lists the ranks whose buddy is id — the wards id guards copies
// for — along with the halo direction each ward's checkpoint frames arrive
// from (the direction of the ward as seen from id).
func WardsOf(d dist.Decomp, id int) []Ward {
	var out []Ward
	for _, dir := range []dist.Dir{dist.Up, dist.Down, dist.Left, dist.Right} {
		nb, ok := d.Neighbor(id, dir, false)
		if !ok {
			continue
		}
		if b, _, err := BuddyOf(d, nb); err == nil && b == id {
			out = append(out, Ward{Rank: nb, Dir: dir})
		}
	}
	return out
}

// Ward names one rank whose checkpoints this rank guards and the inbound
// halo direction its snapshots arrive from.
type Ward struct {
	Rank int
	Dir  dist.Dir
}
