package resilience

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"stencilabft/internal/dist"
	"stencilabft/internal/num"
	"stencilabft/internal/stats"
	"stencilabft/internal/telemetry"
)

// Factory builds one incarnation of this process's cluster: the epoch
// numbers the incarnation (0 before any failure), rendezvous is the
// transport bootstrap address for that epoch, localRanks the ranks to
// host (it grows when this process adopts a dead rank), and afterStep must
// be installed as dist.Options.AfterStep — it is the runner's buddy
// checkpointing hook.
type Factory[T num.Float] func(epoch int, rendezvous string, localRanks []int, afterStep func(rank, iter int)) (*dist.Cluster[T], error)

// Config configures a fault-tolerant run of one process's ranks.
type Config[T num.Float] struct {
	// Total is the absolute iteration count the run must reach.
	Total int
	// Period is the buddy checkpoint interval j (iterations); < 1 disables
	// buddy checkpointing, leaving faults fatal.
	Period int
	// Control is the recovery coordinator's address; empty leaves faults
	// fatal (the first transport fault is returned as an error).
	Control string
	// Timeout bounds each control-plane exchange (default 30s).
	Timeout time.Duration
	// LocalRanks are the ranks this process hosts initially.
	LocalRanks []int
	// Factory builds each cluster incarnation.
	Factory Factory[T]
	// Epoch and Rendezvous identify the first incarnation (nonzero for a
	// respawned process joining mid-recovery, from its adoption plan).
	Epoch      int
	Rendezvous string
	// StartIter is the absolute iteration the first incarnation starts at;
	// InitialState carries pre-restored rank states to install (a respawned
	// process's adopted snapshot, or a disk checkpoint). Ranks without an
	// entry start from the built cluster's deterministic initial state,
	// which is only sound when StartIter is 0.
	StartIter    int
	InitialState map[int][]T
	// Telemetry attributes ckpt-save/ckpt-send/recover-wait/restore phase
	// time per rank; nil disables instrumentation.
	Telemetry *telemetry.Collector
	// OnCheckpoint, when non-nil, observes every completed buddy checkpoint
	// (rank, generation) — the launcher's liveness/progress feed. Called
	// from rank goroutines; it must be safe for concurrent use.
	OnCheckpoint func(rank, gen int)
	// DiskDir, when set, persists every periodic checkpoint to per-rank
	// rotations under it and restores from there when a plan's restart
	// generation is in nobody's memory bank — the whole-cluster fallback a
	// buddy-pair double death escalates to. Must match the coordinator's
	// DiskDir.
	DiskDir string
	// MaxRecoveries caps how many faults this process survives (default 3).
	MaxRecoveries int
}

// Run drives this process's ranks to Config.Total iterations, surviving
// rank-process deaths along the way: on a transport fault it reports to
// the coordinator, rolls back to the agreed checkpoint generation, rebuilds
// the cluster for the new epoch (adopting the dead rank when told to), and
// resumes. It returns the final cluster — its tiles hold the converged
// state for gathering — plus the resilience counters (recoveries,
// rollbacks, recomputed iterations, checkpoint costs) for the caller to
// merge into the run's stats.
func Run[T num.Float](cfg Config[T]) (*dist.Cluster[T], stats.Stats, error) {
	var extra stats.Stats
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 3
	}
	if len(cfg.LocalRanks) == 0 {
		return nil, extra, fmt.Errorf("resilience: Config.LocalRanks is empty")
	}
	buddy := NewBuddy[T](cfg.Period, cfg.Telemetry)
	if cfg.DiskDir != "" {
		buddy.EnableDisk(cfg.DiskDir)
	}
	localRanks := append([]int(nil), cfg.LocalRanks...)
	epoch, rdv := cfg.Epoch, cfg.Rendezvous
	startIter := cfg.StartIter
	pending := cfg.InitialState
	recoveries := 0
	diskRestores := 0

	for {
		hook := func(rank, iter int) {
			buddy.AfterStep(rank, iter)
			if cfg.OnCheckpoint != nil && cfg.Period > 0 && (iter+1)%cfg.Period == 0 {
				cfg.OnCheckpoint(rank, iter+1)
			}
		}
		cl, err := cfg.Factory(epoch, rdv, localRanks, hook)
		if err != nil {
			return nil, extra, fmt.Errorf("resilience: building epoch %d: %w", epoch, err)
		}
		if err := buddy.Attach(cl); err != nil {
			cl.Close()
			return nil, extra, err
		}
		rec := cfg.Telemetry.Recorder(localRanks[0])

		if startIter > 0 {
			t0 := rec.Begin()
			for _, id := range localRanks {
				st := pending[id]
				if st == nil {
					st = buddy.SelfState(id, startIter)
				}
				if st == nil && cfg.DiskDir != "" {
					// Third rung: neither a relayed snapshot nor a memory bank
					// covers this rank (a double death took both copies) —
					// restore from the shared disk rotation.
					if ds, err := LoadRankState[T](cfg.DiskDir, id, startIter); err == nil {
						st = ds
						diskRestores++
					}
				}
				if st == nil {
					cl.Close()
					return nil, extra, fmt.Errorf("resilience: rank %d has no state banked at generation %d", id, startIter)
				}
				cl.RestoreState(id, st)
				buddy.Seed(id, startIter, st)
			}
			cl.SetIter(startIter)
			rec.End(telemetry.PhaseRestore, t0)
		}
		pending = nil

		runErr := cl.RunRecover(cfg.Total - startIter)
		if runErr == nil {
			extra.Checkpoint = buddy.Stats()
			extra.Checkpoint.Restores += diskRestores
			return cl, extra, nil
		}
		cl.Close()
		recoveries++
		if cfg.Control == "" || cfg.Period < 1 || recoveries > cfg.MaxRecoveries {
			return nil, extra, runErr
		}

		rep := Report{Ranks: localRanks, Suspect: -1, SelfGens: buddy.SelfGens(), WardGens: buddy.WardGens()}
		var f *dist.Fault
		if errors.As(runErr, &f) {
			rep.Suspect = f.Peer
			// Fault.Gen counts transport barrier generations, which under
			// depth-k ghost zones advance once per k iterations — scale it
			// back to the iteration timeline the rollback reasons in.
			rep.Gen = startIter + f.Gen*cl.HaloDepth()
		}
		t0 := rec.Begin()
		plan, err := ReportFault(cfg.Control, rep, buddy.WardState, cfg.Timeout)
		rec.End(telemetry.PhaseRecoverWait, t0)
		if err != nil {
			return nil, extra, fmt.Errorf("%v (recovering from: %v)", err, runErr)
		}

		extra.Recoveries++
		extra.Rollbacks++
		if lost := rep.Gen - plan.RestartGen; lost > 0 {
			extra.RecomputedIters += lost
		}
		buddy.Rollback(plan.RestartGen)
		if len(plan.DeadRanks) > 0 {
			// Escalation plan: a buddy pair died together, the whole cluster
			// restarts from disk. Any ranks dealt to this process restore
			// from the shared rotation in the next incarnation's restore
			// loop; no buddy copy exists to adopt.
			if plan.Disk != "" {
				cfg.DiskDir = plan.Disk
				buddy.EnableDisk(plan.Disk)
			}
			if len(plan.AdoptRanks) > 0 {
				localRanks = append(localRanks, plan.AdoptRanks...)
				sort.Ints(localRanks)
			}
		} else if plan.Adopt {
			if plan.RestartGen > 0 {
				st := buddy.AdoptWard(plan.Dead, plan.RestartGen)
				if st == nil {
					return nil, extra, fmt.Errorf("resilience: told to adopt rank %d at generation %d without its buddy copy", plan.Dead, plan.RestartGen)
				}
				pending = map[int][]T{plan.Dead: append([]T(nil), st...)}
			}
			localRanks = append(localRanks, plan.Dead)
			sort.Ints(localRanks)
		}
		epoch, rdv = plan.Epoch, plan.Rendezvous
		startIter = plan.RestartGen
	}
}
