package resilience

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"stencilabft/internal/dist"
)

// CoordinatorConfig configures the recovery coordinator — one per cluster,
// hosted by a process that outlives any single rank (the stencilrun
// -launch parent, or a dedicated process for hand-started clusters).
type CoordinatorConfig struct {
	// RanksX, RanksY shape the rank grid the coordinator arbitrates for.
	RanksX, RanksY int
	// Addr is the control listen address (default "127.0.0.1:0").
	Addr string
	// Listener optionally supplies a pre-bound control listener.
	Listener net.Listener
	// RendezvousHost is the host fresh post-recovery rendezvous ports are
	// reserved on (default "127.0.0.1"). Single-host clusters only; a
	// multi-host deployment must make this routable from every rank host.
	RendezvousHost string
	// Timeout bounds each control connection's I/O and a respawned
	// process's window to claim its plan. Default 30s.
	Timeout time.Duration
	// Respawn, when non-nil, is called once per recovery round to start a
	// replacement process for the dead rank (the plan describes what the
	// newcomer must claim via RequestAdoption). Nil selects adopt mode: the
	// dead rank's guard process absorbs the rank instead.
	Respawn func(Plan) error
	// MaxRounds caps recovery rounds before the coordinator starts
	// answering reports with an error plan (default 3) — the backstop
	// against a crash-looping replacement.
	MaxRounds int
	// DiskDir, when set, arms the double-death escalation: if a recovery
	// round stalls because two or more ranks never report (a buddy pair
	// died together, so neither memory bank survives), the coordinator
	// declares them all dead and plans a whole-cluster restore from the
	// per-rank disk rotations under this directory (see RankBase). Empty
	// disables escalation — a stalled round just times out.
	DiskDir string
	// StallWait is how long a partial round may sit with no new report
	// arriving before escalation triggers (the clock restarts on every
	// report). It must exceed the gap between consecutive survivor reports:
	// detection cascades outward from the dead rank one transport death
	// deadline per hop (a survivor not adjacent to the victim only faults
	// when its faulted neighbours tear down their connections), so the gap
	// is about one death deadline. Default dist.DefaultDeathDeadline plus
	// Timeout/4 of margin; deployments running a custom DeathDeadline
	// should scale StallWait with it.
	StallWait time.Duration
	// OnDecision, when non-nil, observes each recovery plan as it is
	// published — the launch parent's diagnostics hook.
	OnDecision func(Plan)
}

// Coordinator runs the rendezvous-led recovery protocol's deciding side:
// it collects fault reports from surviving processes, declares the missing
// rank dead by elimination once every other rank is accounted for, agrees
// the rollback generation, places the dead rank (respawn or adoption),
// relays the buddy snapshot where needed, and issues the fresh rendezvous
// the rebuilt transport bootstraps through.
type Coordinator struct {
	cfg CoordinatorConfig
	n   int
	ln  net.Listener

	mu          sync.Mutex
	epoch       int
	reports     []reportConn
	adoptCh     chan pendingAdoption
	stall       *time.Timer  // armed while a partial round waits (DiskDir set)
	diskPending map[int]Plan // escalation plans parked for respawned ranks

	wg sync.WaitGroup
}

type reportConn struct {
	conn net.Conn
	rep  Report
}

type pendingAdoption struct {
	plan  Plan
	state dist.WireFrame // valid when plan.RestartGen > 0
}

// StartCoordinator binds the control listener and begins serving.
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	d := dist.Decomp{RanksX: cfg.RanksX, RanksY: cfg.RanksY}
	if d.NumRanks() < 2 {
		return nil, fmt.Errorf("resilience: a %s grid cannot lose a rank and keep running", d)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.RendezvousHost == "" {
		cfg.RendezvousHost = "127.0.0.1"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 3
	}
	if cfg.StallWait <= 0 {
		cfg.StallWait = dist.DefaultDeathDeadline + cfg.Timeout/4
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("resilience: control listener %s: %w", cfg.Addr, err)
		}
	}
	c := &Coordinator{cfg: cfg, n: d.NumRanks(), ln: ln, adoptCh: make(chan pendingAdoption, 1)}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.serve()
	}()
	return c, nil
}

// Addr returns the control listener's address — what rank processes pass
// as their recovery control endpoint.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the coordinator. In-flight recovery rounds are abandoned.
func (c *Coordinator) Close() error {
	err := c.ln.Close()
	c.mu.Lock()
	if c.stall != nil {
		c.stall.Stop()
		c.stall = nil
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Coordinator) serve() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

func (c *Coordinator) handle(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	f, err := dist.ReadWireFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	switch f.Kind {
	case dist.FrameDead:
		var rep Report
		if json.Unmarshal(f.Payload, &rep) != nil {
			conn.Close()
			return
		}
		c.addReport(conn, rep)
	case dist.FrameAdopt:
		var req AdoptRequest
		if json.Unmarshal(f.Payload, &req) != nil {
			conn.Close()
			return
		}
		c.serveAdoption(conn, req)
	default:
		conn.Close()
	}
}

// addReport registers one survivor. The survivor whose report completes
// the round (every rank but one accounted for) runs the decision on its
// handler goroutine; everyone else's connection parks until the decision
// writes their plan.
func (c *Coordinator) addReport(conn net.Conn, rep Report) {
	c.mu.Lock()
	c.reports = append(c.reports, reportConn{conn, rep})
	seen := map[int]bool{}
	for _, rc := range c.reports {
		for _, id := range rc.rep.Ranks {
			seen[id] = true
		}
	}
	if len(seen) < c.n-1 {
		// Keep the connection parked until the round completes. With the
		// disk escalation armed, (re)start the stall clock: if the round
		// never completes — two or more ranks will never report — the timer
		// escalates to a whole-cluster disk restore.
		if c.cfg.DiskDir != "" {
			if c.stall == nil {
				c.stall = time.AfterFunc(c.cfg.StallWait, c.escalate)
			} else {
				c.stall.Reset(c.cfg.StallWait)
			}
		}
		c.mu.Unlock()
		return
	}
	if c.stall != nil {
		c.stall.Stop()
		c.stall = nil
	}
	round := c.reports
	c.reports = nil
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()

	c.decide(round, seen, epoch)
}

// escalate fires when a partial round stalls: two or more ranks are
// missing, so no single-death decision can ever complete. The survivors on
// hand get a whole-cluster disk-restore plan instead of waiting forever.
func (c *Coordinator) escalate() {
	c.mu.Lock()
	if len(c.reports) == 0 {
		c.mu.Unlock()
		return // the round completed (or was taken) before the timer ran
	}
	seen := map[int]bool{}
	for _, rc := range c.reports {
		for _, id := range rc.rep.Ranks {
			seen[id] = true
		}
	}
	if c.n-len(seen) < 2 {
		// Exactly one rank missing means a normal round is about to
		// complete; this firing raced the final report. Re-arm and wait.
		if c.stall != nil {
			c.stall.Reset(c.cfg.StallWait)
		}
		c.mu.Unlock()
		return
	}
	round := c.reports
	c.reports = nil
	c.stall = nil
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()

	c.decideDouble(round, seen, epoch)
}

// decideDouble runs the escalation round: every unreported rank is
// declared dead at once, the restart generation is the newest every rank
// holds on disk, and the dead tiles are either dealt out to survivors
// (adopt mode) or respawned. No state crosses the control plane — each
// process restores its ranks from the shared checkpoint directory.
func (c *Coordinator) decideDouble(round []reportConn, seen map[int]bool, epoch int) {
	defer func() {
		for _, rc := range round {
			rc.conn.Close()
		}
	}()
	var missing []int
	for id := 0; id < c.n; id++ {
		if !seen[id] {
			missing = append(missing, id)
		}
	}

	base := Plan{Dead: -1, DeadRanks: missing, Epoch: epoch, Disk: c.cfg.DiskDir}
	if epoch > c.cfg.MaxRounds {
		base.Err = fmt.Sprintf("recovery round %d exceeds the %d-round cap", epoch, c.cfg.MaxRounds)
		c.publish(round, base, -1)
		return
	}
	base.RestartGen = DiskRestartGen(c.cfg.DiskDir, c.n)
	rdv, err := reserveAddr(c.cfg.RendezvousHost)
	if err != nil {
		base.Err = fmt.Sprintf("reserving a fresh rendezvous: %v", err)
		c.publish(round, base, -1)
		return
	}
	base.Rendezvous = rdv

	if c.cfg.Respawn == nil {
		// Adopt mode: deal the dead ranks round-robin across the surviving
		// processes; each adopter restores its new wards from disk.
		for i, rc := range round {
			p := base
			for j, id := range missing {
				if j%len(round) == i {
					p.AdoptRanks = append(p.AdoptRanks, id)
				}
			}
			dist.WriteJSONFrame(rc.conn, dist.FrameAdopt, p)
		}
		if c.cfg.OnDecision != nil {
			c.cfg.OnDecision(base)
		}
		return
	}

	// Respawn mode: survivors get the base plan; each dead rank's personal
	// plan is parked before its replacement starts, so a claim can never
	// race an empty slot.
	plans := make([]Plan, 0, len(missing))
	c.mu.Lock()
	if c.diskPending == nil {
		c.diskPending = make(map[int]Plan)
	}
	for _, id := range missing {
		p := base
		p.Dead = id
		p.DeadRanks = nil
		p.AdoptRanks = nil
		p.Adopt = true
		c.diskPending[id] = p
		plans = append(plans, p)
	}
	c.mu.Unlock()
	for _, rc := range round {
		dist.WriteJSONFrame(rc.conn, dist.FrameAdopt, base)
	}
	for _, p := range plans {
		if err := c.cfg.Respawn(p); err != nil {
			if c.cfg.OnDecision != nil {
				base.Err = fmt.Sprintf("respawn of rank %d failed: %v", p.Dead, err)
				c.cfg.OnDecision(base)
			}
			return
		}
	}
	if c.cfg.OnDecision != nil {
		c.cfg.OnDecision(base)
	}
}

// decide runs one recovery round: declare the dead rank, agree the restart
// generation, place the tile, publish the plans, relay state.
func (c *Coordinator) decide(round []reportConn, seen map[int]bool, epoch int) {
	defer func() {
		for _, rc := range round {
			rc.conn.Close()
		}
	}()
	dead := -1
	for id := 0; id < c.n; id++ {
		if !seen[id] {
			dead = id
			break
		}
	}

	base := Plan{Dead: dead, Epoch: epoch}
	if epoch > c.cfg.MaxRounds {
		base.Err = fmt.Sprintf("recovery round %d exceeds the %d-round cap", epoch, c.cfg.MaxRounds)
		c.publish(round, base, -1)
		return
	}
	base.RestartGen = restartGen(round, dead)
	rdv, err := reserveAddr(c.cfg.RendezvousHost)
	if err != nil {
		base.Err = fmt.Sprintf("reserving a fresh rendezvous: %v", err)
		c.publish(round, base, -1)
		return
	}
	base.Rendezvous = rdv

	guard := c.guardIndex(round, dead, base.RestartGen)
	if guard < 0 {
		base.Err = fmt.Sprintf("no survivor guards rank %d at generation %d", dead, base.RestartGen)
		c.publish(round, base, -1)
		return
	}

	if c.cfg.Respawn == nil {
		// Adopt mode: the guard absorbs the dead rank; its buddy copy is
		// already in the guard's ward bank, so no state crosses the wire.
		c.publish(round, base, guard)
		if c.cfg.OnDecision != nil {
			c.cfg.OnDecision(base)
		}
		return
	}

	// Respawn mode: everyone gets the base plan; the guard also uploads the
	// dead rank's snapshot, which the coordinator parks for the replacement
	// process to claim.
	guardPlan := base
	guardPlan.SendState = base.RestartGen > 0
	for i, rc := range round {
		p := base
		if i == guard {
			p = guardPlan
		}
		dist.WriteJSONFrame(rc.conn, dist.FrameAdopt, p)
	}
	pending := pendingAdoption{plan: base}
	pending.plan.Adopt = true
	if guardPlan.SendState {
		f, err := dist.ReadWireFrame(round[guard].conn)
		if err != nil || f.Kind != dist.FrameState {
			if c.cfg.OnDecision != nil {
				base.Err = fmt.Sprintf("guard upload failed: %v", err)
				c.cfg.OnDecision(base)
			}
			return
		}
		pending.state = f
		// Acknowledge so the guard can close its connection and rebuild.
		dist.WriteJSONFrame(round[guard].conn, dist.FrameAdopt, struct{}{})
	}
	// Park the adoption before starting the replacement, so the claim can
	// never race an empty slot.
	select {
	case <-c.adoptCh: // drop a stale unclaimed round
	default:
	}
	c.adoptCh <- pending
	if err := c.cfg.Respawn(pending.plan); err != nil && c.cfg.OnDecision != nil {
		base.Err = fmt.Sprintf("respawn failed: %v", err)
		c.cfg.OnDecision(base)
		return
	}
	if c.cfg.OnDecision != nil {
		c.cfg.OnDecision(base)
	}
}

// publish sends every survivor its plan; round[adopter] (when >= 0) gets
// the adopt bit.
func (c *Coordinator) publish(round []reportConn, base Plan, adopter int) {
	for i, rc := range round {
		p := base
		p.Adopt = i == adopter
		dist.WriteJSONFrame(rc.conn, dist.FrameAdopt, p)
	}
}

// serveAdoption answers a replacement process's claim with the parked plan
// and snapshot.
func (c *Coordinator) serveAdoption(conn net.Conn, req AdoptRequest) {
	defer conn.Close()
	// An escalation plan parked for this rank wins: the replacement restores
	// from disk, so there is no state frame to relay.
	c.mu.Lock()
	if p, ok := c.diskPending[req.Rank]; ok {
		delete(c.diskPending, req.Rank)
		c.mu.Unlock()
		dist.WriteJSONFrame(conn, dist.FrameAdopt, p)
		return
	}
	c.mu.Unlock()
	var pending pendingAdoption
	select {
	case pending = <-c.adoptCh:
	case <-time.After(c.cfg.Timeout):
		dist.WriteJSONFrame(conn, dist.FrameAdopt, Plan{Err: fmt.Sprintf("no recovery round is waiting for rank %d", req.Rank)})
		return
	}
	if pending.plan.Dead != req.Rank {
		c.adoptCh <- pending
		dist.WriteJSONFrame(conn, dist.FrameAdopt, Plan{Err: fmt.Sprintf("pending recovery is for rank %d, not rank %d", pending.plan.Dead, req.Rank)})
		return
	}
	if err := dist.WriteJSONFrame(conn, dist.FrameAdopt, pending.plan); err != nil {
		return
	}
	if pending.plan.RestartGen > 0 {
		dist.WriteWireFrame(conn, pending.state)
	}
}

// restartGen picks the newest generation that every surviving rank has
// banked for itself and some survivor guards for the dead rank.
// Generation 0 — rebuild from the deterministic initial state — is always
// feasible, so recovery never gets stuck; it just recomputes more.
func restartGen(round []reportConn, dead int) int {
	selfGens := map[int]map[int]bool{} // rank -> set of banked gens
	deadGens := map[int]bool{}
	survivors := []int{}
	for _, rc := range round {
		for id, gens := range rc.rep.SelfGens {
			if selfGens[id] == nil {
				selfGens[id] = map[int]bool{}
			}
			for _, g := range gens {
				selfGens[id][g] = true
			}
		}
		for _, g := range rc.rep.WardGens[dead] {
			deadGens[g] = true
		}
		survivors = append(survivors, rc.rep.Ranks...)
	}
	candidates := map[int]bool{}
	for g := range deadGens {
		candidates[g] = true
	}
	sorted := make([]int, 0, len(candidates))
	for g := range candidates {
		sorted = append(sorted, g)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, g := range sorted {
		ok := true
		for _, id := range survivors {
			if !selfGens[id][g] {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	return 0
}

// guardIndex finds the report that can source the dead rank's state: for a
// non-zero restart generation, the process whose ward bank holds it; for
// generation 0, the process hosting the dead rank's buddy (adoption
// placement still wants the geometric guard).
func (c *Coordinator) guardIndex(round []reportConn, dead, gen int) int {
	if gen > 0 {
		for i, rc := range round {
			for _, g := range rc.rep.WardGens[dead] {
				if g == gen {
					return i
				}
			}
		}
		return -1
	}
	d := dist.Decomp{RanksX: c.cfg.RanksX, RanksY: c.cfg.RanksY}
	buddy, _, err := BuddyOf(d, dead)
	if err != nil {
		return -1
	}
	for i, rc := range round {
		for _, id := range rc.rep.Ranks {
			if id == buddy {
				return i
			}
		}
	}
	return -1
}

// reserveAddr reserves a free port on host by binding and immediately
// releasing it — the same reserve-and-free pattern the launch bootstrap
// uses. The tiny race window (another process grabbing the port before
// the transport rebinds it) fails the rebuild loudly, not silently.
func reserveAddr(host string) (string, error) {
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
