package resilience_test

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"stencilabft/internal/checksum"
	"stencilabft/internal/dist"
	"stencilabft/internal/grid"
	"stencilabft/internal/resilience"
	"stencilabft/internal/stats"
	"stencilabft/internal/stencil"
)

// TestBuddyGeometry pins the pairing: adjacent along the long axis, even
// indices leaning forward, the odd-length tail leaning back, and WardsOf
// exactly inverting BuddyOf.
func TestBuddyGeometry(t *testing.T) {
	cases := []struct {
		rx, ry int
		rank   int
		buddy  int
		dir    dist.Dir
	}{
		{2, 2, 0, 1, dist.Right},
		{2, 2, 1, 0, dist.Left},
		{2, 2, 2, 3, dist.Right},
		{2, 2, 3, 2, dist.Left},
		{3, 1, 0, 1, dist.Right},
		{3, 1, 1, 0, dist.Left},
		{3, 1, 2, 1, dist.Left}, // odd tail leans back
		{1, 4, 0, 1, dist.Down}, // RanksX == 1 pairs along y instead
		{1, 4, 1, 0, dist.Up},
		{1, 4, 2, 3, dist.Down},
		{1, 4, 3, 2, dist.Up},
	}
	for _, tc := range cases {
		d := dist.Decomp{RanksX: tc.rx, RanksY: tc.ry}
		b, dir, err := resilience.BuddyOf(d, tc.rank)
		if err != nil {
			t.Fatalf("%dx%d rank %d: %v", tc.rx, tc.ry, tc.rank, err)
		}
		if b != tc.buddy || dir != tc.dir {
			t.Errorf("%dx%d rank %d: buddy %d via %v, want %d via %v", tc.rx, tc.ry, tc.rank, b, dir, tc.buddy, tc.dir)
		}
	}

	// WardsOf inverts BuddyOf over every rank of a 3x3 grid.
	d := dist.Decomp{RanksX: 3, RanksY: 3}
	for id := 0; id < d.NumRanks(); id++ {
		for _, w := range resilience.WardsOf(d, id) {
			b, dir, err := resilience.BuddyOf(d, w.Rank)
			if err != nil || b != id {
				t.Fatalf("rank %d lists ward %d, but BuddyOf(%d) = %d, %v", id, w.Rank, w.Rank, b, err)
			}
			if nb, ok := d.Neighbor(id, w.Dir, false); !ok || nb != w.Rank {
				t.Fatalf("ward %d of rank %d claims direction %v, geometry disagrees", w.Rank, id, w.Dir)
			}
			_ = dir
		}
	}

	if _, _, err := resilience.BuddyOf(dist.Decomp{RanksX: 1, RanksY: 1}, 0); err == nil {
		t.Fatal("a single-rank grid produced a buddy")
	}
}

// TestDiskSaverRotation pins the alternating-file rotation and LoadLatest's
// newest-valid pick, including the corrupt-file fallback.
func TestDiskSaverRotation(t *testing.T) {
	base := filepath.Join(t.TempDir(), "ckpt")
	s := resilience.NewDiskSaver[float64](base)
	g := grid.New[float64](4, 3)
	g.FillFunc(func(x, y int) float64 { return float64(x*10 + y) })
	b := []float64{1, 2, 3}

	for _, iter := range []int{8, 16, 24} {
		if err := s.Save(iter, g, b); err != nil {
			t.Fatal(err)
		}
	}
	got, gb, iter, err := resilience.LoadLatest[float64](base)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 24 || got.MaxAbsDiff(g) != 0 || len(gb) != 3 || gb[2] != 3 {
		t.Fatalf("LoadLatest = iter %d", iter)
	}

	// Corrupt the newest file: LoadLatest must fall back to the older one.
	paths := resilience.Paths(base)
	newest := paths[0] // saves at 8,16,24 leave 24 in the .a slot
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, iter, err = resilience.LoadLatest[float64](base)
	if err != nil || iter != 16 {
		t.Fatalf("after corrupting the newest: iter %d, err %v (want 16, nil)", iter, err)
	}
}

// --- the end-to-end fail-stop harness -----------------------------------

func strictOpts() dist.Options[float64] {
	return dist.Options[float64]{Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}}
}

func testInit(nx, ny int) *grid.Grid[float64] {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 80 + float64((x*31+y*17)%23) + 0.25*float64(y) })
	return g
}

func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// tcpFactory builds one process's cluster incarnation over a real TCP
// transport, exactly as a stencilrun child would. depth > 1 runs the
// communication-avoiding depth-k ghost-zone schedule.
func tcpFactory(op *stencil.Op2D[float64], init *grid.Grid[float64], rx, ry, depth int) resilience.Factory[float64] {
	return func(epoch int, rdv string, localRanks []int, after func(int, int)) (*dist.Cluster[float64], error) {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{
			RanksX: rx, RanksY: ry, Ring: op.BC == grid.Periodic,
			LocalRanks: localRanks, Rendezvous: rdv,
			DialTimeout: 20 * time.Second, IOTimeout: 10 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		opt := strictOpts()
		opt.LocalRanks = localRanks
		opt.AfterStep = after
		opt.HaloDepth = depth
		opt.NewTransport = func(int, int, bool) dist.Transport[float64] { return tr }
		cl, err := dist.NewClusterGrid(op, init, rx, ry, opt)
		if err != nil {
			tr.Close()
			return nil, err
		}
		return cl, nil
	}
}

// tcpFactoryHealing is tcpFactory with the transport's failure detector
// tightened: a short death deadline so a vanished peer is classified
// permanent (and reported) quickly instead of after the default grace.
func tcpFactoryHealing(op *stencil.Op2D[float64], init *grid.Grid[float64], rx, ry int, deathDeadline time.Duration) resilience.Factory[float64] {
	return func(epoch int, rdv string, localRanks []int, after func(int, int)) (*dist.Cluster[float64], error) {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{
			RanksX: rx, RanksY: ry, Ring: op.BC == grid.Periodic,
			LocalRanks: localRanks, Rendezvous: rdv,
			DialTimeout: 20 * time.Second, IOTimeout: 10 * time.Second,
			DeathDeadline: deathDeadline,
		})
		if err != nil {
			return nil, err
		}
		opt := strictOpts()
		opt.LocalRanks = localRanks
		opt.AfterStep = after
		opt.NewTransport = func(int, int, bool) dist.Transport[float64] { return tr }
		cl, err := dist.NewClusterGrid(op, init, rx, ry, opt)
		if err != nil {
			tr.Close()
			return nil, err
		}
		return cl, nil
	}
}

// killAtFactory wraps a factory so the hosting "virtual process" drops
// dead — transport torn down, goroutine gone, no goodbye to anyone — once
// the rank completes the given absolute iteration count.
func killAtFactory(inner resilience.Factory[float64], killGen int) resilience.Factory[float64] {
	return func(epoch int, rdv string, localRanks []int, after func(int, int)) (*dist.Cluster[float64], error) {
		var cl *dist.Cluster[float64]
		var once sync.Once
		wrapped := func(r, it int) {
			after(r, it)
			if it+1 == killGen {
				once.Do(func() {
					cl.Close()
					runtime.Goexit()
				})
			}
		}
		c, err := inner(epoch, rdv, localRanks, wrapped)
		cl = c
		return c, err
	}
}

type runResult struct {
	rank  int
	cl    *dist.Cluster[float64]
	extra stats.Stats
	err   error
}

// TestFailStopRecoveryAdopt kills one rank of a live 2x2 TCP cluster
// mid-run and checks the adopt-mode recovery end to end: the survivors
// report, the dead rank's guard absorbs it, every rank rolls back to the
// newest common buddy checkpoint, and the finished run is bit-identical to
// an undisturbed in-process run — for several boundary conditions.
func TestFailStopRecoveryAdopt(t *testing.T) {
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic} {
		bc := bc
		t.Run(fmt.Sprint(bc), func(t *testing.T) {
			t.Parallel()
			runFailStop(t, bc, 1, nil)
		})
	}
}

// TestFailStopRecoveryRespawn runs the same kill but in respawn mode: the
// coordinator relays the buddy snapshot to a freshly started replacement
// process which claims the dead rank and rejoins the lockstep.
func TestFailStopRecoveryRespawn(t *testing.T) {
	runFailStop(t, grid.Mirror, 1, func(ctrl string, op *stencil.Op2D[float64], init *grid.Grid[float64], total, period int, results chan<- runResult) func(resilience.Plan) error {
		return func(plan resilience.Plan) error {
			go func() {
				p, st, err := resilience.RequestAdoption[float64](ctrl, plan.Dead, 20*time.Second)
				if err != nil {
					results <- runResult{rank: plan.Dead, err: err}
					return
				}
				var initial map[int][]float64
				if st != nil {
					initial = map[int][]float64{plan.Dead: st}
				}
				cl, extra, err := resilience.Run(resilience.Config[float64]{
					Total: total, Period: period, Control: ctrl,
					LocalRanks: []int{plan.Dead},
					Factory:    tcpFactory(op, init, 2, 2, 1),
					Epoch:      p.Epoch, Rendezvous: p.Rendezvous,
					StartIter: p.RestartGen, InitialState: initial,
					Timeout: 20 * time.Second,
				})
				results <- runResult{rank: plan.Dead, cl: cl, extra: extra, err: err}
			}()
			return nil
		}
	})
}

// TestFailStopRecoveryDepthK runs the adopt-mode kill under depth-2 ghost
// zones: rank 3 dies mid-cycle (generation 10, between exchange rounds),
// and because the buddy period 4 is a multiple of the depth, the rollback
// generation 8 lands on a halo-exchange boundary — the restored ranks
// resume at the top of a depth-k cycle and the replayed run must finish
// bit-identical to an undisturbed classic depth-1 run.
func TestFailStopRecoveryDepthK(t *testing.T) {
	runFailStop(t, grid.Clamp, 2, nil)
}

// TestBuddyAttachRejectsOffCadencePeriod pins the period/depth coupling:
// a checkpoint period that is not a multiple of the cluster's halo depth
// would bank generations a restore cannot resume from (mid-cycle, no
// valid boundary shells), so Attach must refuse it and name the nearest
// usable period.
func TestBuddyAttachRejectsOffCadencePeriod(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	opt := strictOpts()
	opt.HaloDepth = 3
	cl, err := dist.NewClusterGrid(op, testInit(40, 36), 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := resilience.NewBuddy[float64](4, nil).Attach(cl); err == nil || !strings.Contains(err.Error(), "use period 6") {
		t.Fatalf("Attach with period 4 over depth 3 = %v, want the cadence error suggesting period 6", err)
	}
	if err := resilience.NewBuddy[float64](6, nil).Attach(cl); err != nil {
		t.Fatalf("Attach with the aligned period 6: %v", err)
	}
}

// runFailStop is the shared harness: 4 virtual processes (goroutines) on a
// 2x2 grid, rank 3 killed at generation 10, buddy period 4, 24 total
// iterations — so recovery must roll back to generation 8 and replay.
// depth > 1 runs the cluster under depth-k ghost zones (period 4 stays a
// multiple, so the rollback generation lands on an exchange boundary); the
// reference stays the classic depth-1 cluster, making the comparison also
// a depth-k bit-identity pin.
func runFailStop(t *testing.T, bc grid.Boundary, depth int, respawn func(ctrl string, op *stencil.Op2D[float64], init *grid.Grid[float64], total, period int, results chan<- runResult) func(resilience.Plan) error) {
	const nx, ny, total, period, killGen, victim = 40, 36, 24, 4, 10, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: bc, BCValue: 42}
	init := testInit(nx, ny)

	// Undisturbed reference: the in-process channel cluster (itself pinned
	// bit-identical to the single-process sweep by the dist tests).
	ref, err := dist.NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(total)
	want := ref.Gather()

	results := make(chan runResult, 5)
	ccfg := resilience.CoordinatorConfig{RanksX: 2, RanksY: 2, Timeout: 20 * time.Second}
	if respawn != nil {
		// The coordinator's respawn callback is built after the coordinator
		// so it can capture the control address; wire it via indirection.
		var mu sync.Mutex
		var cb func(resilience.Plan) error
		ccfg.Respawn = func(p resilience.Plan) error {
			mu.Lock()
			f := cb
			mu.Unlock()
			return f(p)
		}
		defer func() { mu.Lock(); cb = nil; mu.Unlock() }()
		co, err := resilience.StartCoordinator(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		defer co.Close()
		mu.Lock()
		cb = respawn(co.Addr(), op, init, total, period, results)
		mu.Unlock()
		launchRanks(t, co.Addr(), op, init, total, period, killGen, victim, depth, results)
		collectAndCompare(t, want, results, 4, victim)
		return
	}
	co, err := resilience.StartCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	launchRanks(t, co.Addr(), op, init, total, period, killGen, victim, depth, results)
	collectAndCompare(t, want, results, 3, victim)
}

// launchRanks starts the four virtual processes.
func launchRanks(t *testing.T, ctrl string, op *stencil.Op2D[float64], init *grid.Grid[float64], total, period, killGen, victim, depth int, results chan<- runResult) {
	t.Helper()
	rdv := reserveAddr(t)
	for rank := 0; rank < 4; rank++ {
		rank := rank
		factory := tcpFactory(op, init, 2, 2, depth)
		if rank == victim {
			factory = killAtFactory(factory, killGen)
		}
		go func() {
			cl, extra, err := resilience.Run(resilience.Config[float64]{
				Total: total, Period: period, Control: ctrl,
				LocalRanks: []int{rank},
				Factory:    factory,
				Rendezvous: rdv,
				Timeout:    20 * time.Second,
			})
			if rank == victim && err == nil {
				// The killed virtual process: Goexit unwound its rank
				// goroutine, so its Run returns "success" at the kill
				// generation. That incarnation is dead; drop it.
				if cl != nil {
					cl.Close()
				}
				return
			}
			results <- runResult{rank: rank, cl: cl, extra: extra, err: err}
		}()
	}
}

// TestDoubleDeathDiskEscalation kills a whole buddy pair at once: one
// virtual process hosts ranks 2 and 3 — each other's guard on a 2x2 grid —
// and drops dead at generation 10 of a 24-iteration run. Neither rank's
// snapshot survives in any memory bank, so the single-death protocol can
// never complete (the recovery round stalls at two reports). The
// coordinator's stall timer must escalate: declare both ranks dead, deal
// them to the survivors, and restart the whole cluster from the per-rank
// disk rotations at generation 8, finishing bit-identical to an
// undisturbed run.
func TestDoubleDeathDiskEscalation(t *testing.T) {
	const nx, ny, total, period, killGen = 40, 36, 24, 4, 10
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp, BCValue: 42}
	init := testInit(nx, ny)
	dir := t.TempDir()

	ref, err := dist.NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(total)
	want := ref.Gather()

	var decisions struct {
		sync.Mutex
		plans []resilience.Plan
	}
	co, err := resilience.StartCoordinator(resilience.CoordinatorConfig{
		RanksX: 2, RanksY: 2, Timeout: 20 * time.Second,
		DiskDir: dir, StallWait: 3 * time.Second,
		OnDecision: func(p resilience.Plan) {
			decisions.Lock()
			decisions.plans = append(decisions.plans, p)
			decisions.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	rdv := reserveAddr(t)
	results := make(chan runResult, 3)
	launch := func(localRanks []int, control string, factory resilience.Factory[float64], victim bool) {
		go func() {
			cl, extra, err := resilience.Run(resilience.Config[float64]{
				Total: total, Period: period, Control: control,
				LocalRanks: localRanks,
				Factory:    factory,
				Rendezvous: rdv,
				Timeout:    20 * time.Second,
				DiskDir:    dir,
			})
			if victim {
				// The killed virtual process: whether its ranks unwound via
				// Goexit (err == nil) or faulted on the closed transport, it
				// is dead and reports nothing.
				if cl != nil {
					cl.Close()
				}
				return
			}
			results <- runResult{rank: localRanks[0], cl: cl, extra: extra, err: err}
		}()
	}
	launch([]int{0}, co.Addr(), tcpFactoryHealing(op, init, 2, 2, 2*time.Second), false)
	launch([]int{1}, co.Addr(), tcpFactoryHealing(op, init, 2, 2, 2*time.Second), false)
	// The doomed pair gets no control address: a dead process makes no
	// fault reports (Goexit only unwinds one rank's goroutine; the hosted
	// sibling rank faults on the closed transport and must not "survive").
	launch([]int{2, 3}, "", killAtFactory(tcpFactoryHealing(op, init, 2, 2, 2*time.Second), killGen), true)

	got := grid.New[float64](nx, ny)
	covered := map[int]bool{}
	var merged stats.Stats
	deadline := time.After(90 * time.Second)
	for n := 0; n < 2; {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("survivor hosting rank %d: %v", r.rank, r.err)
			}
			g := r.cl.Gather()
			for _, id := range r.cl.LocalRanks() {
				tile := r.cl.Tile(id)
				for y := tile.Y0; y < tile.Y1; y++ {
					copy(got.Row(y)[tile.X0:tile.X1], g.Row(y)[tile.X0:tile.X1])
				}
				covered[id] = true
			}
			merged = merged.Merge(r.extra)
			r.cl.Close()
			n++
		case <-deadline:
			t.Fatalf("escalation did not complete; tiles %v", covered)
		}
	}
	for id := 0; id < 4; id++ {
		if !covered[id] {
			t.Fatalf("no survivor hosts rank %d's tile (covered %v)", id, covered)
		}
	}
	if diff := got.MaxAbsDiff(want); diff != 0 {
		t.Fatalf("disk-restored run deviates from the undisturbed run by %g", diff)
	}
	if merged.Recoveries == 0 {
		t.Fatalf("no recoveries counted: %+v", merged)
	}
	if merged.Checkpoint.Restores == 0 {
		t.Fatalf("no disk restores counted — the adopted tiles did not come from the rotations: %+v", merged.Checkpoint)
	}

	decisions.Lock()
	plans := append([]resilience.Plan(nil), decisions.plans...)
	decisions.Unlock()
	var esc *resilience.Plan
	for i := range plans {
		if len(plans[i].DeadRanks) > 0 {
			esc = &plans[i]
		}
	}
	if esc == nil {
		t.Fatalf("no escalation plan was published (decisions: %+v)", plans)
	}
	if len(esc.DeadRanks) != 2 || esc.DeadRanks[0] != 2 || esc.DeadRanks[1] != 3 {
		t.Fatalf("escalation declared %v dead, want [2 3]", esc.DeadRanks)
	}
	if esc.Disk != dir {
		t.Fatalf("escalation plan names disk %q, want %q", esc.Disk, dir)
	}
	if esc.RestartGen != 8 {
		t.Fatalf("escalation restarts at generation %d, want 8 (newest common disk checkpoint before the kill)", esc.RestartGen)
	}
	if esc.Err != "" {
		t.Fatalf("escalation plan aborted: %s", esc.Err)
	}
}

// collectAndCompare waits for the expected finishers, assembles the global
// domain from their hosted tiles, and requires bit-identity plus non-zero
// recovery counters.
func collectAndCompare(t *testing.T, want *grid.Grid[float64], results <-chan runResult, finishers, victim int) {
	t.Helper()
	got := grid.New[float64](want.Nx(), want.Ny())
	covered := map[int]bool{}
	var merged stats.Stats
	deadline := time.After(90 * time.Second)
	for n := 0; n < finishers; {
		select {
		case r := <-results:
			if r.rank == victim && r.cl == nil && r.err == nil {
				continue // the killed virtual process's own (ignored) exit
			}
			if r.err != nil {
				t.Fatalf("rank %d: %v", r.rank, r.err)
			}
			g := r.cl.Gather()
			for _, id := range r.cl.LocalRanks() {
				tile := r.cl.Tile(id)
				for y := tile.Y0; y < tile.Y1; y++ {
					copy(got.Row(y)[tile.X0:tile.X1], g.Row(y)[tile.X0:tile.X1])
				}
				covered[id] = true
			}
			merged = merged.Merge(r.extra)
			r.cl.Close()
			n++
		case <-deadline:
			t.Fatalf("recovery did not complete; %d of %d finishers, tiles %v", len(covered), finishers, covered)
		}
	}
	for id := 0; id < 4; id++ {
		if !covered[id] {
			t.Fatalf("no finisher hosts rank %d's tile (covered %v)", id, covered)
		}
	}
	if diff := got.MaxAbsDiff(want); diff != 0 {
		t.Fatalf("recovered run deviates from the undisturbed run by %g", diff)
	}
	if merged.Recoveries == 0 || merged.Rollbacks == 0 {
		t.Fatalf("recovery counters empty: %+v", merged)
	}
	if merged.RecomputedIters == 0 {
		t.Fatalf("rollback recorded no recomputed iterations: %+v", merged)
	}
	if merged.Checkpoint.Saves == 0 {
		t.Fatalf("no buddy checkpoints counted: %+v", merged.Checkpoint)
	}
}
