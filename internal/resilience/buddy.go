package resilience

import (
	"fmt"
	"sync"

	"stencilabft/internal/checkpoint"
	"stencilabft/internal/dist"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/telemetry"
)

// Buddy is the checkpointing engine of one process: every Period
// iterations each hosted rank packs its restartable state (tile plus
// verified checksums, bit-exact), banks it locally, mirrors it to its
// buddy as a ckpt frame on the existing halo edge, and banks the snapshots
// arriving from its wards. The save and the mirror run from the cluster's
// AfterStep seam — after the sweep, before the iteration barrier — so
// checkpoint traffic overlaps the barrier wait instead of serialising with
// compute.
//
// The engine outlives the cluster it instruments: after a recovery the
// runner rewires it onto the rebuilt cluster with Attach, and the banks
// carry the pre-failure snapshots recovery needs.
type Buddy[T num.Float] struct {
	Period int

	mu    sync.Mutex
	cl    *dist.Cluster[T]
	car   dist.CkptCarrier[T]
	tel   *telemetry.Collector
	self  checkpoint.Bank2D[T] // own snapshots, keyed by hosted rank id
	wards checkpoint.Bank2D[T] // guarded snapshots, keyed by ward rank id

	lens   map[int]int      // hosted rank -> packed state length
	buddy  map[int]dist.Dir // hosted rank -> direction toward its buddy
	inward map[int][]Ward   // hosted rank -> wards whose frames it collects

	diskDir string                // "" = memory-only (the default)
	disk    map[int]*DiskSaver[T] // hosted rank -> its rotation under diskDir
}

// NewBuddy builds the engine with period j (j < 1 disables checkpointing:
// AfterStep becomes a no-op and the banks stay empty).
func NewBuddy[T num.Float](period int, tel *telemetry.Collector) *Buddy[T] {
	return &Buddy[T]{Period: period, tel: tel}
}

// Attach wires the engine onto a (re)built cluster. The transport must
// implement dist.CkptCarrier (both built-in backends do); a cluster whose
// grid has a single rank disables mirroring (nothing to mirror to) but
// keeps the local bank, so disk checkpointing still has a source.
func (b *Buddy[T]) Attach(cl *dist.Cluster[T]) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	// A restore rebases the cluster to a checkpoint generation and reruns
	// from there, so every generation must land on a halo-exchange
	// boundary: under depth-k ghost zones a rank resumed mid-cycle would
	// have no valid boundary shells to sweep from.
	if k := cl.HaloDepth(); k > 1 && b.Period > 0 && b.Period%k != 0 {
		return fmt.Errorf("resilience: checkpoint period %d is not a multiple of the cluster's halo depth %d; restores must land on halo-exchange boundaries (use period %d)",
			b.Period, k, ((b.Period+k-1)/k)*k)
	}
	b.cl = cl
	b.car, _ = cl.Transport().(dist.CkptCarrier[T])
	d := cl.Decomp()
	b.lens = make(map[int]int)
	b.buddy = make(map[int]dist.Dir)
	b.inward = make(map[int][]Ward)
	for _, id := range cl.LocalRanks() {
		b.lens[id] = cl.StateLen(id)
		if d.NumRanks() < 2 {
			continue
		}
		_, dir, err := BuddyOf(d, id)
		if err != nil {
			return err
		}
		b.buddy[id] = dir
		b.inward[id] = WardsOf(d, id)
	}
	return nil
}

// EnableDisk additionally persists every periodic snapshot to a per-rank
// rotation under dir (see RankBase) — the third rung of the recovery
// ladder, reached when a buddy pair dies together and neither memory bank
// survives. Savers are created lazily per hosted rank and persist across
// Attach calls, so a re-built cluster keeps extending the same rotations.
func (b *Buddy[T]) EnableDisk(dir string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.diskDir = dir
	if b.disk == nil {
		b.disk = make(map[int]*DiskSaver[T])
	}
}

// AfterStep is the hook to install as dist.Options.AfterStep. It runs on
// the rank's own goroutine; the banks are mutex-guarded because several
// hosted ranks may checkpoint concurrently.
func (b *Buddy[T]) AfterStep(rank, iter int) {
	gen := iter + 1 // completed iterations after this step — the SetIter rebase value
	if b.Period < 1 || gen%b.Period != 0 {
		return
	}
	rec := b.tel.Recorder(rank)

	// Pack straight into the bank's rotating slot: one serialise instead of
	// a staging copy plus a bank copy. Only the slot rotation needs the
	// mutex — the returned buffer belongs to this hosted rank's newest
	// generation, which nothing reads until the save completes (recovery
	// consults the banks only after every rank goroutine has unwound).
	t0 := rec.Begin()
	b.mu.Lock()
	pack := b.self.SaveSlot(rank, gen, b.lens[rank])
	b.mu.Unlock()
	b.cl.PackState(rank, pack)
	if saver := b.diskSaver(rank); saver != nil {
		// Persist the packed vector as a 1×N snapshot so the whole-cluster
		// fallback can replay even when both halves of a buddy pair die.
		// Best-effort: a full disk must not fail the step — the memory banks
		// still cover single-rank faults.
		g := grid.New[T](len(pack), 1)
		copy(g.Data(), pack)
		_ = saver.Save(gen, g, nil)
	}
	rec.End(telemetry.PhaseCkptSave, t0)

	if b.car == nil {
		return
	}
	// Sharing the bank slot with the wire is safe on both backends: the tcp
	// carrier serialises into its own frame before returning, and the chan
	// carrier's receiver banks a copy before reaching the barrier this round
	// — while the slot itself is not rewritten until two rounds later.
	t0 = rec.Begin()
	if dir, ok := b.buddy[rank]; ok {
		b.car.SendCkpt(rank, dir, gen, pack)
	}
	for _, w := range b.inward[rank] {
		data, g, err := b.car.RecvCkpt(rank, w.Dir)
		if err != nil {
			// The edge died mid-round: keep whatever generations the bank
			// already holds and let the next halo exchange or barrier
			// surface the fault as a *dist.Fault.
			break
		}
		b.mu.Lock()
		b.wards.Save(w.Rank, g, data)
		b.mu.Unlock()
	}
	rec.End(telemetry.PhaseCkptSend, t0)
}

// diskSaver returns (creating lazily) rank's disk rotation, or nil when
// disk persistence is off.
func (b *Buddy[T]) diskSaver(rank int) *DiskSaver[T] {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.diskDir == "" {
		return nil
	}
	s, ok := b.disk[rank]
	if !ok {
		s = NewDiskSaver[T](RankBase(b.diskDir, rank))
		b.disk[rank] = s
	}
	return s
}

// SelfGens lists the retained own-snapshot generations per hosted rank.
func (b *Buddy[T]) SelfGens() map[int][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int][]int, len(b.lens))
	for id := range b.lens {
		if g := b.self.Gens(id); g != nil {
			out[id] = g
		}
	}
	return out
}

// WardGens lists the retained guarded-snapshot generations per ward rank.
func (b *Buddy[T]) WardGens() map[int][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int][]int)
	for id := range b.lens {
		for _, w := range b.inward[id] {
			if g := b.wards.Gens(w.Rank); g != nil {
				out[w.Rank] = g
			}
		}
	}
	return out
}

// SelfState returns hosted rank id's banked snapshot at exactly gen, or nil.
func (b *Buddy[T]) SelfState(id, gen int) []T {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.self.Data(id, gen)
}

// WardState returns ward id's banked snapshot at exactly gen, or nil.
func (b *Buddy[T]) WardState(id, gen int) []T {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wards.Data(id, gen)
}

// AdoptWard moves ward id's snapshot at gen into the self bank — the
// bank-side half of adopting a dead rank into this process. Returns the
// adopted state (still bank-owned, read-only) or nil if not retained.
func (b *Buddy[T]) AdoptWard(id, gen int) []T {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := b.wards.Data(id, gen)
	if data != nil {
		b.self.Save(id, gen, data)
	}
	b.wards.Drop(id)
	return b.self.Data(id, gen)
}

// Seed banks data as hosted rank id's own snapshot at gen without going
// through a checkpoint round — how a restored or adopted state becomes
// restorable again before the next periodic save.
func (b *Buddy[T]) Seed(id, gen int, data []T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.self.Save(id, gen, data)
}

// Rollback invalidates every banked snapshot newer than gen, in both banks
// — run after the recovery protocol agrees on the restart generation, so
// snapshots from the abandoned timeline cannot satisfy later restores.
func (b *Buddy[T]) Rollback(gen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.self.Trim(gen)
	b.wards.Trim(gen)
}

// Stats sums the banks' checkpoint cost counters.
func (b *Buddy[T]) Stats() checkpoint.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.self.Stats()
	w := b.wards.Stats()
	s.Saves += w.Saves
	s.Restores += w.Restores
	s.PointsCopied += w.PointsCopied
	return s
}
