package campaign

import (
	"strings"
	"testing"
)

// tinyConfig is a laptop-scale configuration used by the campaign tests.
func tinyConfig() TileConfig {
	return TileConfig{
		Nx: 16, Ny: 16, Nz: 4,
		Iterations: 32,
		Reps:       3,
		Epsilon:    1e-5,
		Period:     8,
		Seed:       7,
		Workers:    2,
	}
}

func TestRunnerErrorFreeBaseline(t *testing.T) {
	r, err := NewRunner(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{NoABFT, Online, Offline} {
		res := r.Run(m, nil)
		if res.L2 != 0 {
			// The protected sweeps compute point values in the same
			// order as the reference, so the error-free runs are
			// bitwise identical.
			t.Fatalf("%s: error-free l2 = %g, want 0", m, res.L2)
		}
		if res.Stats.Detections != 0 {
			t.Fatalf("%s: false positives: %+v", m, res.Stats)
		}
	}
}

func TestRunnerDetectsHighBitFlip(t *testing.T) {
	r, err := NewRunner(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bit 30 is the top exponent bit of binary32: always detectable.
	plan := r.FixedBitPlan(30, 0)

	noProt := r.Run(NoABFT, plan)
	if noProt.L2 == 0 {
		t.Fatal("unprotected run unaffected by exponent flip; injection did not land")
	}
	onl := r.Run(Online, plan)
	if onl.Stats.Detections == 0 || onl.Stats.CorrectedPoints == 0 {
		t.Fatalf("online did not handle exponent flip: %+v", onl.Stats)
	}
	if onl.L2 >= noProt.L2 && noProt.L2 > 0 {
		t.Fatalf("online correction did not reduce error: %g vs %g", onl.L2, noProt.L2)
	}
	off := r.Run(Offline, plan)
	if off.Stats.Detections == 0 || off.Stats.Rollbacks == 0 {
		t.Fatalf("offline did not handle exponent flip: %+v", off.Stats)
	}
	if off.L2 != 0 {
		t.Fatalf("offline rollback left residual error %g", off.L2)
	}
}

func TestFig8Renders(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig()
	cfg.Reps = 2
	if err := Fig8([]TileConfig{cfg}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 8", "No ABFT", "ABFT (Online)", "ABFT (Offline)", "Single random bit-flip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig8 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig10DetectionPattern(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig()
	cfg.Reps = 2
	cfg.Iterations = 16
	if err := Fig10(cfg, []Method{Online}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "exponent") || !strings.Contains(out, "sign") {
		t.Fatalf("Fig10 output missing bit classes:\n%s", out)
	}
}

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	Table1(PaperConfigs(0.1), &sb)
	if !strings.Contains(sb.String(), "Error detection threshold") {
		t.Fatalf("Table1 output malformed:\n%s", sb.String())
	}
}
