package campaign

import (
	"strings"
	"testing"
)

func TestFig9Renders(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reps = 2
	var sb strings.Builder
	if err := Fig9([]TileConfig{cfg}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 9", "Mean", "Median", "Max", "Rollbacks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig9 output missing %q:\n%s", want, out)
		}
	}
	// The unprotected bit-flip row must exist, and the protected rows
	// must report detections.
	if !strings.Contains(out, "No ABFT") {
		t.Fatalf("missing baseline row:\n%s", out)
	}
}

func TestFig11Renders(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reps = 2
	cfg.Iterations = 16
	var sb strings.Builder
	if err := Fig11(cfg, []int{4, 8}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "Error-free median") {
		t.Fatalf("Fig11 output malformed:\n%s", out)
	}
	// One row per period plus header/rule/title.
	if got := strings.Count(out, "\n"); got < 5 {
		t.Fatalf("Fig11 too short:\n%s", out)
	}
}

func TestAblationsRender(t *testing.T) {
	cfg := tinyConfig()
	var sb strings.Builder
	if err := Ablations(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Ablation A1", "Ablation A2", "Ablation A3", "Ablation A5", "Ablation A7",
		"noise floor vs chunk width",
		"dropped (paper listing)",
		"Kahan compensated",
		"residual matching (this library)",
		"rank-local repair on a 2x2 rank grid",
		"interior cross corner",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations missing %q", want)
		}
	}
	// The locality sweep must be clean for every one of A7's six injection
	// sites: each row reports all 4 bit positions detected and repaired by
	// the owning rank ("4/4" — a partial row would render 0/4..3/4 and
	// lower the count), and no row carries the bystander-leak marker.
	if got := strings.Count(out, "4/4"); got != 6 {
		t.Fatalf("A7 rank-local repair rows: got %d clean sites, want 6:\n%s", got, out)
	}
	if strings.Contains(out, "LEAKED") {
		t.Fatalf("A7 detections leaked to bystander ranks:\n%s", out)
	}
}

func TestMethodStrings(t *testing.T) {
	names := map[Method]string{
		NoABFT:          "No ABFT",
		Online:          "ABFT (Online)",
		Offline:         "ABFT (Offline)",
		OnlinePaperEq10: "ABFT (Online, paper Eq.10)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestPaperConfigsScale(t *testing.T) {
	full := PaperConfigs(1)
	if full[0].Nx != 64 || full[1].Nx != 512 || full[0].Iterations != 128 || full[1].Iterations != 256 {
		t.Fatalf("paper-scale configs wrong: %+v", full)
	}
	if full[0].Reps != 1000 || full[1].Reps != 100 {
		t.Fatalf("paper-scale repetitions wrong: %+v", full)
	}
	small := PaperConfigs(0.1)
	if small[0].Nx >= full[0].Nx || small[0].Reps >= full[0].Reps {
		t.Fatal("scaling did not shrink")
	}
	if small[0].Nz != 8 {
		t.Fatal("layer count must stay at the paper's 8")
	}
}

func TestFixedBitPlanDeterministic(t *testing.T) {
	r, err := NewRunner(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := r.FixedBitPlan(13, 7).Injections()[0]
	b := r.FixedBitPlan(13, 7).Injections()[0]
	if a != b {
		t.Fatal("fixed-bit plan not deterministic")
	}
	if a.Bit != 13 {
		t.Fatal("bit not fixed")
	}
	c := r.FixedBitPlan(13, 8).Injections()[0]
	if a == c {
		t.Fatal("different reps produced identical plans")
	}
}
