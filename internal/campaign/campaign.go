// Package campaign drives the paper's experiments (Section 5): it builds
// HotSpot3D problem instances, runs them under the three protection methods
// (No-ABFT, Online ABFT, Offline ABFT) with and without fault injection,
// and renders the same rows and series the paper's tables and figures
// report. Element type is float32 throughout, matching the paper's 32-bit
// state and bit-flip positions 0..31.
package campaign

import (
	"fmt"
	"math/rand"

	abft "stencilabft"
	"stencilabft/internal/checksum"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/hotspot"
	"stencilabft/internal/metrics"
	"stencilabft/internal/stencil"
)

// Method selects the protection scheme.
type Method int

// The protection methods compared throughout Section 5, plus the online
// variant with the paper's literal Equation (10) evaluation (used by the
// Figure 10 reproduction to exhibit the exponent-overflow residual).
const (
	NoABFT Method = iota
	Online
	Offline
	OnlinePaperEq10
)

// scheme maps the method onto the unified factory's Scheme key.
func (m Method) scheme() abft.Scheme {
	switch m {
	case NoABFT:
		return abft.None
	case Online, OnlinePaperEq10:
		return abft.Online
	case Offline:
		return abft.Offline
	default:
		panic(fmt.Sprintf("campaign: unknown method %d", int(m)))
	}
}

// String returns the method's display name as used in the paper's legends.
func (m Method) String() string {
	switch m {
	case NoABFT:
		return "No ABFT"
	case Online:
		return "ABFT (Online)"
	case Offline:
		return "ABFT (Offline)"
	case OnlinePaperEq10:
		return "ABFT (Online, paper Eq.10)"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// TileConfig describes one experiment configuration (one column of the
// paper's Table 1).
type TileConfig struct {
	Nx, Ny, Nz int
	Iterations int
	Reps       int     // experiment repetitions
	Epsilon    float32 // detection threshold
	Period     int     // offline detection/checkpoint period Δ
	Seed       int64   // base seed; rep i uses Seed+i
	Workers    int     // worker pool size; 0 = GOMAXPROCS
}

// Name renders the tile size the way the paper writes it.
func (c TileConfig) Name() string { return fmt.Sprintf("%dx%dx%d", c.Nx, c.Ny, c.Nz) }

// PaperConfigs returns the two configurations of Table 1, scaled by the
// given factor (1.0 = paper scale; smaller factors shrink the tile edge and
// repetition count proportionally for laptop-scale runs).
func PaperConfigs(scale float64) []TileConfig {
	if scale <= 0 {
		scale = 1
	}
	shrink := func(n int, lo int) int {
		v := int(float64(n) * scale)
		if v < lo {
			v = lo
		}
		return v
	}
	return []TileConfig{
		{
			Nx: shrink(64, 8), Ny: shrink(64, 8), Nz: 8,
			Iterations: shrink(128, 16),
			Reps:       shrink(1000, 5),
			Epsilon:    1e-5,
			Period:     16,
			Seed:       1,
		},
		{
			Nx: shrink(512, 16), Ny: shrink(512, 16), Nz: 8,
			Iterations: shrink(256, 16),
			Reps:       shrink(100, 3),
			Epsilon:    1e-5,
			Period:     16,
			Seed:       2,
		},
	}
}

// Result is the outcome of one protected (or unprotected) run.
type Result struct {
	Seconds float64    // wall time of the iteration loop
	L2      float64    // arithmetic error vs. the error-free reference (Eq. 11)
	Stats   abft.Stats // protector counters
}

// Runner caches the problem instance (model, operator, inputs, error-free
// reference) for one configuration so repetitions only pay for the run
// itself.
type Runner struct {
	Cfg  TileConfig
	op   *stencil.Op3D[float32]
	init *grid.Grid3D[float32]
	ref  *grid.Grid3D[float32]
	pool *stencil.Pool
}

// NewRunner builds the HotSpot3D instance for cfg and computes the
// error-free single-threaded reference result the paper's Equation (11)
// compares against.
func NewRunner(cfg TileConfig) (*Runner, error) {
	model, err := hotspot.NewModel[float32](hotspot.Config{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz})
	if err != nil {
		return nil, err
	}
	power := hotspot.SyntheticPower[float32](hotspot.Config{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}, cfg.Seed)
	init := hotspot.SyntheticTemperature[float32](hotspot.Config{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}, cfg.Seed+1)
	op := model.Op(power)

	r := &Runner{Cfg: cfg, op: op, init: init}
	if cfg.Workers != 0 {
		r.pool = &stencil.Pool{Workers: cfg.Workers}
	} else {
		r.pool = stencil.NewPool()
	}

	// Error-free single-threaded reference (paper Section 5.1).
	refRun, err := abft.Build(abft.Spec[float32]{Op3D: op, Init3D: init})
	if err != nil {
		return nil, err
	}
	refRun.Run(cfg.Iterations)
	r.ref = refRun.Grid3D()
	return r, nil
}

// Reference returns the cached error-free reference result.
func (r *Runner) Reference() *grid.Grid3D[float32] { return r.ref }

// spec assembles the factory input for one repetition under the given
// method and fault plan.
func (r *Runner) spec(m Method, plan *fault.Plan) abft.Spec[float32] {
	return abft.Spec[float32]{
		Scheme:               m.scheme(),
		Op3D:                 r.op,
		Init3D:               r.init,
		Detector:             checksum.Detector[float32]{Epsilon: r.Cfg.Epsilon, AbsFloor: 1},
		Pool:                 r.pool,
		Period:               r.Cfg.Period,
		PaperExactCorrection: m == OnlinePaperEq10,
		Inject:               plan,
	}
}

// Run executes one repetition under the given method, with the fault plan
// applied (nil = error-free). Every method routes through the unified
// factory; timing covers the iteration loop (and the offline finalisation)
// only, like the paper's built-in execution-time measurement.
func (r *Runner) Run(m Method, plan *fault.Plan) Result {
	p, err := abft.Build(r.spec(m, plan))
	if err != nil {
		panic(err)
	}
	t := metrics.StartTimer()
	p.Run(r.Cfg.Iterations)
	p.Finalize()
	var res Result
	res.Seconds = t.Seconds()
	res.L2 = metrics.L2Error3D(p.Grid3D(), r.ref)
	res.Stats = p.Stats()
	return res
}

// RandomPlan draws the paper's single random bit-flip for repetition rep.
func (r *Runner) RandomPlan(rep int) *fault.Plan {
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 1000 + int64(rep)))
	inj := fault.RandomSingle(rng, r.Cfg.Iterations, r.Cfg.Nx, r.Cfg.Ny, r.Cfg.Nz, 32)
	return fault.NewPlan(inj)
}

// FixedBitPlan draws a random injection with a fixed bit position
// (Figure 10's campaign shape) for repetition rep.
func (r *Runner) FixedBitPlan(bit, rep int) *fault.Plan {
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 5000 + int64(bit)*10007 + int64(rep)))
	inj := fault.FixedBit(rng, r.Cfg.Iterations, r.Cfg.Nx, r.Cfg.Ny, r.Cfg.Nz, bit)
	return fault.NewPlan(inj)
}
