package campaign

import (
	"fmt"
	"io"

	"stencilabft/internal/metrics"
)

// Table1 echoes the experimental-parameter table the campaign is about to
// run, in the paper's layout.
func Table1(cfgs []TileConfig, w io.Writer) {
	cols := []string{"Parameter"}
	for _, c := range cfgs {
		cols = append(cols, "Tile "+c.Name())
	}
	t := metrics.NewTable("Table 1: experimental parameters", cols...)
	row := func(name string, f func(TileConfig) any) {
		cells := []any{name}
		for _, c := range cfgs {
			cells = append(cells, f(c))
		}
		t.AddRow(cells...)
	}
	row("Stencil iterations", func(c TileConfig) any { return c.Iterations })
	row("Experiment repetitions", func(c TileConfig) any { return c.Reps })
	row("Error detection threshold", func(c TileConfig) any { return fmt.Sprintf("%g", c.Epsilon) })
	row("Offline detection period", func(c TileConfig) any { return fmt.Sprintf("%d iterations", c.Period) })
	t.Render(w)
}

// Fig8 reproduces Figure 8: mean execution time and standard deviation of
// the three methods, error-free and with a single random bit-flip, for each
// tile configuration.
func Fig8(cfgs []TileConfig, w io.Writer) error {
	for _, cfg := range cfgs {
		r, err := NewRunner(cfg)
		if err != nil {
			return err
		}
		t := metrics.NewTable(
			fmt.Sprintf("Figure 8: mean execution time (s), tile %s, %d iterations, %d reps",
				cfg.Name(), cfg.Iterations, cfg.Reps),
			"Scenario", "Method", "Mean (s)", "Median (s)", "StdDev (s)", "Overhead vs NoABFT")
		for _, scen := range []string{"Error-free", "Single random bit-flip"} {
			injected := scen != "Error-free"
			var base float64
			for _, m := range []Method{NoABFT, Online, Offline} {
				r.Run(m, nil) // warm-up: fault buffers in, steady the caches
				var s metrics.Sample
				for rep := 0; rep < cfg.Reps; rep++ {
					var res Result
					if injected {
						res = r.Run(m, r.RandomPlan(rep))
					} else {
						res = r.Run(m, nil)
					}
					s.Add(res.Seconds)
				}
				// The overhead ratio uses medians: on shared machines a
				// single descheduling blip distorts means at these run
				// lengths.
				med := s.Median()
				if m == NoABFT {
					base = med
				}
				overhead := "-"
				if m != NoABFT && base > 0 {
					overhead = fmt.Sprintf("%+.1f%%", 100*(med/base-1))
				}
				t.AddRow(scen, m.String(), s.Mean(), med, s.StdDev(), overhead)
			}
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 reproduces Figure 9: mean, median and maximum arithmetic error
// (Equation 11, log scale in the paper) for the same method/scenario
// matrix.
func Fig9(cfgs []TileConfig, w io.Writer) error {
	for _, cfg := range cfgs {
		r, err := NewRunner(cfg)
		if err != nil {
			return err
		}
		t := metrics.NewTable(
			fmt.Sprintf("Figure 9: arithmetic error (l2 vs reference), tile %s, %d reps",
				cfg.Name(), cfg.Reps),
			"Scenario", "Method", "Mean", "Median", "Max",
			"Detected", "Corrected", "Rollbacks")
		for _, scen := range []string{"Error-free", "Single random bit-flip"} {
			injected := scen != "Error-free"
			for _, m := range []Method{NoABFT, Online, Offline} {
				var errs metrics.Sample
				detected, corrected, rollbacks := 0, 0, 0
				for rep := 0; rep < cfg.Reps; rep++ {
					var res Result
					if injected {
						res = r.Run(m, r.RandomPlan(rep))
					} else {
						res = r.Run(m, nil)
					}
					errs.Add(res.L2)
					detected += res.Stats.Detections
					corrected += res.Stats.CorrectedPoints
					rollbacks += res.Stats.Rollbacks
				}
				t.AddRow(scen, m.String(), errs.Mean(), errs.Median(), errs.Max(),
					detected, corrected, rollbacks)
			}
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig10 reproduces Figure 10: the distribution of the final arithmetic
// error as a function of the bit-flip position (0..31), for No ABFT, Online
// ABFT and Offline ABFT. Each row is one box of the paper's box plots:
// median and interquartile range over `reps` injections at that bit. The
// online method is run both with the paper's literal Equation (10)
// (reproducing the exponent-overflow residual spike of Figure 10b) and with
// the stable evaluation this library defaults to.
func Fig10(cfg TileConfig, methods []Method, w io.Writer) error {
	r, err := NewRunner(cfg)
	if err != nil {
		return err
	}
	for _, m := range methods {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 10: error vs bit-flip position, %s, tile %s, %d reps/bit",
				m, cfg.Name(), cfg.Reps),
			"Bit", "Class", "Min", "Q1", "Median", "Q3", "Max", "DetectRate")
		for bit := 0; bit < 32; bit++ {
			var errs metrics.Sample
			detected := 0
			for rep := 0; rep < cfg.Reps; rep++ {
				res := r.Run(m, r.FixedBitPlan(bit, rep))
				errs.Add(res.L2)
				if res.Stats.Detections > 0 {
					detected++
				}
			}
			lo, q1, med, q3, hi := errs.Box()
			t.AddRow(bit, bitClass32(bit), lo, q1, med, q3, hi,
				fmt.Sprintf("%d/%d", detected, cfg.Reps))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// bitClass32 names the IEEE-754 binary32 field of a bit position.
func bitClass32(bit int) string {
	switch {
	case bit == 31:
		return "sign"
	case bit >= 23:
		return "exponent"
	default:
		return "fraction"
	}
}

// Fig11 reproduces Figure 11: mean execution time of the Offline ABFT
// method as a function of the detection/checkpoint period Δ, error-free and
// with a single random bit-flip.
func Fig11(cfg TileConfig, periods []int, w io.Writer) error {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 11: Offline ABFT time vs detection period, tile %s, %d iters, %d reps",
			cfg.Name(), cfg.Iterations, cfg.Reps),
		"Period", "Error-free median (s)", "Error-free sd", "Bit-flip median (s)", "Bit-flip sd")
	for _, period := range periods {
		c := cfg
		c.Period = period
		r, err := NewRunner(c)
		if err != nil {
			return err
		}
		r.Run(Offline, nil) // warm-up
		var free, flip metrics.Sample
		for rep := 0; rep < c.Reps; rep++ {
			free.Add(r.Run(Offline, nil).Seconds)
			flip.Add(r.Run(Offline, r.RandomPlan(rep)).Seconds)
		}
		t.AddRow(period, free.Median(), free.StdDev(), flip.Median(), flip.StdDev())
	}
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// DefaultPeriods returns the Δ sweep of Figure 11.
func DefaultPeriods() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }
