package campaign

import (
	"fmt"
	"io"
	"math/rand"

	abft "stencilabft"
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/metrics"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Ablations runs the design-choice experiments called out in DESIGN.md
// (A1, A2, A3, A5, A7) at the given configuration's in-layer size and
// renders one table per question. A4 (parallel sweep scaling) lives in the
// root bench suite where testing.B controls iteration counts.
func Ablations(cfg TileConfig, w io.Writer) error {
	ablationBoundaryTerms(cfg, w)
	ablationFusedChecksum(cfg, w)
	ablationKahan(cfg, w)
	ablationPairing(cfg, w)
	ablationBlockSize(cfg, w)
	if err := ablationGridTopology(cfg, w); err != nil {
		return err
	}
	return nil
}

// ablationGridTopology (A7): the paper's single-bit-flip fault sweep run on
// a 2-D (2x2) rank grid, with injection sites classified by where they land
// relative to the tile seams — interior, seam edge (the point a neighbour
// reads as halo), the interior cross corner where four tiles meet, and the
// domain corners. The claim under test is the paper's "intrinsically
// parallel" property extended to 2-D decompositions: every corruption is
// detected AND repaired by exactly the rank owning the tile, with zero
// detections on bystander ranks (no leakage through halo or corner
// threading), and the repaired result stays within correction residual of
// the error-free reference.
func ablationGridTopology(cfg TileConfig, w io.Writer) error {
	nx, ny := max(cfg.Nx, 16), max(cfg.Ny, 16)
	iters := max(cfg.Iterations, 16)
	op := &stencil.Op2D[float32]{St: stencil.BoxBlur[float32](), BC: grid.Clamp}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	init := grid.New[float32](nx, ny)
	init.FillFunc(func(x, y int) float32 { return float32(80 + 40*rng.Float64()) })

	// Error-free reference for the residual column.
	ref, err := abft.Build(abft.Spec[float32]{Op2D: op, Init: init})
	if err != nil {
		return err
	}
	ref.Run(iters)

	classes := []struct {
		name string
		x, y int
	}{
		{"tile interior", nx / 4, ny / 4},
		{"seam edge (x)", nx/2 - 1, ny / 4},
		{"seam edge (y)", nx / 4, ny/2 - 1},
		{"interior cross corner", nx/2 - 1, ny/2 - 1},
		{"domain corner (0,0)", 0, 0},
		{"domain corner (far)", nx - 1, ny - 1},
	}
	// Detectable float32 exponent bits (paper Fig. 10's always-detected
	// region).
	bits := []int{24, 26, 28, 30}

	t := metrics.NewTable(
		fmt.Sprintf("Ablation A7: rank-local repair on a 2x2 rank grid, %dx%d clamp, %d iters, bits %v",
			nx, ny, iters, bits),
		"Injection site", "Owner rank", "Injections", "Rank-local detect+repair", "Leaked detections", "Max residual")
	for _, cl := range classes {
		var local, leaked int
		var maxResid float64
		var owner int
		for _, bit := range bits {
			p, err := abft.Build(abft.Spec[float32]{
				Scheme: abft.Online, Deployment: abft.Clustered,
				RanksX: 2, RanksY: 2,
				Op2D: op, Init: init,
				Detector: checksum.Detector[float32]{Epsilon: cfg.Epsilon, AbsFloor: 1},
				Inject:   abft.NewPlan(abft.Injection{Iteration: iters / 2, X: cl.x, Y: cl.y, Bit: bit}),
			})
			if err != nil {
				return err
			}
			c := p.(*abft.Cluster[float32])
			owner = c.Decomp().OwnerOf(cl.x, cl.y)
			p.Run(iters)
			ownerOK := false
			for i, s := range c.RankStats() {
				if i == owner {
					ownerOK = s.Detections == 1 && s.CorrectedPoints == 1
				} else {
					leaked += s.Detections
				}
			}
			if ownerOK {
				local++
			}
			maxResid = num.Max(maxResid, metrics.L2Error(p.Grid(), ref.Grid()))
		}
		leakCell := "none"
		if leaked > 0 {
			// Rendered as a loud marker so the campaign tests can assert
			// zero leakage without parsing table geometry.
			leakCell = fmt.Sprintf("LEAKED:%d", leaked)
		}
		t.AddRow(cl.name, owner, len(bits),
			fmt.Sprintf("%d/%d", local, len(bits)), leakCell, maxResid)
	}
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// ablationBlockSize: the floating-point interpolation noise floor as a
// function of the chunk size the scheme is applied on — the paper's
// Section 3.4 observation ("the approximation error proportionally
// increases with the domain size") that motivates small tiles and the
// epsilon = 1e-5 choice.
func ablationBlockSize(cfg TileConfig, w io.Writer) {
	const n = 256
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	src := grid.New[float32](n, n)
	src.FillFunc(func(x, y int) float32 { return float32(80 + 40*rng.Float64()) })
	dst := grid.New[float32](n, n)
	op.Sweep(dst, src)

	t := metrics.NewTable(
		fmt.Sprintf("Ablation: float32 interpolation noise floor vs chunk width, %dx%d domain", n, n),
		"Chunk width", "Max rel. error (error-free)")
	for _, bw := range []int{16, 32, 64, 128, 256} {
		var maxErr float64
		for x0 := 0; x0 < n; x0 += bw {
			x1 := x0 + bw
			prev := make([]float32, n)
			direct := make([]float32, n)
			stencil.ChecksumBRect(src, x0, 0, x1, n, prev)
			stencil.ChecksumBRect(dst, x0, 0, x1, n, direct)

			iop := &stencil.Op2D[float32]{St: op.St, BC: op.BC}
			ip, err := checksum.NewInterp2D(iop, bw, n)
			if err != nil {
				panic(err)
			}
			bg := grid.BoundedGrid[float32]{G: src, Cond: grid.Clamp}
			// Extended vector: the domain spans full height, so the
			// y-halos resolve via the boundary condition (clamp).
			ext := make([]float32, n+2)
			ext[0] = prev[0]
			copy(ext[1:n+1], prev)
			ext[n+1] = prev[n-1]
			interp := make([]float32, n)
			ip.InterpolateBBand(ext, 1, checksum.OffsetEdges[float32]{Src: bg, X0: x0}, interp)
			for y := range interp {
				maxErr = num.Max(maxErr, num.RelErr(float64(interp[y]), float64(direct[y]), 1))
			}
		}
		t.AddRow(bw, maxErr)
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// ablationBoundaryTerms (A1): interpolation accuracy with exact alpha/beta
// versus the paper's dropped-terms listing, for a weight-symmetric stencil
// (where dropping is harmless) and an asymmetric one (where it is not).
func ablationBoundaryTerms(cfg TileConfig, w io.Writer) {
	nx, ny := cfg.Nx, cfg.Ny
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := metrics.NewTable(
		fmt.Sprintf("Ablation A1: boundary terms, %dx%d clamp boundaries", nx, ny),
		"Stencil", "Variant", "Max rel. interpolation error")

	cases := []struct {
		name string
		st   *stencil.Stencil[float64]
	}{
		{"symmetric five-point", stencil.Laplace5(0.2)},
		{"asymmetric advection", stencil.Advect2D(0.3, 0.15)},
	}
	for _, c := range cases {
		op := &stencil.Op2D[float64]{St: c.st, BC: grid.Clamp}
		src := grid.New[float64](nx, ny)
		src.FillFunc(func(x, y int) float64 { return 50 + 10*rng.Float64() })
		dst := grid.New[float64](nx, ny)
		prev := checksum.NewVectors[float64](nx, ny)
		prev.Compute(src)
		op.Sweep(dst, src)
		direct := checksum.NewVectors[float64](nx, ny)
		direct.Compute(dst)
		for _, variant := range []struct {
			name string
			drop bool
		}{{"exact alpha/beta", false}, {"dropped (paper listing)", true}} {
			ip, err := checksum.NewInterp2D(op, nx, ny)
			if err != nil {
				panic(err)
			}
			ip.DropBoundaryTerms = variant.drop
			interp := make([]float64, ny)
			ip.InterpolateB(prev.B, checksum.LiveEdges(src, grid.Clamp, 0), interp)
			var maxErr float64
			for y := range interp {
				maxErr = num.Max(maxErr, num.RelErr(interp[y], direct.B[y], 1e-9))
			}
			t.AddRow(c.name, variant.name, maxErr)
		}
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// ablationFusedChecksum (A2): cost of the fused checksum accumulation
// versus a separate checksum pass over the output, in sweeps per second.
func ablationFusedChecksum(cfg TileConfig, w io.Writer) {
	// Timing needs a tile large enough to dominate loop overheads.
	nx, ny := max(cfg.Nx*2, 256), max(cfg.Ny*2, 256)
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	src := grid.New[float32](nx, ny)
	src.FillFunc(func(x, y int) float32 { return float32(x+y) * 0.01 })
	dst := grid.New[float32](nx, ny)
	b := make([]float32, ny)
	const sweeps = 60

	time := func(f func()) float64 {
		t := metrics.StartTimer()
		for i := 0; i < sweeps; i++ {
			f()
			src, dst = dst, src
		}
		return t.Seconds() / sweeps
	}

	plain := time(func() { op.Sweep(dst, src) })
	fused := time(func() { op.SweepFused(dst, src, b) })
	separate := time(func() { op.Sweep(dst, src); stencil.ChecksumB(dst, b) })

	t := metrics.NewTable(
		fmt.Sprintf("Ablation A2: fused checksum, %dx%d five-point", nx, ny),
		"Variant", "Time per sweep (s)", "Overhead vs plain")
	t.AddRow("plain sweep (no checksum)", plain, "-")
	t.AddRow("fused checksum (paper Fig. 2)", fused, fmt.Sprintf("%+.1f%%", 100*(fused/plain-1)))
	t.AddRow("separate checksum pass", separate, fmt.Sprintf("%+.1f%%", 100*(separate/plain-1)))
	t.Render(w)
	fmt.Fprintln(w)
}

// ablationKahan (A3): checksum round-off of plain versus compensated
// accumulation, measured against a float64 ground truth on a float32 grid.
func ablationKahan(cfg TileConfig, w io.Writer) {
	nx, ny := cfg.Nx*4, cfg.Ny*4
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	g32 := grid.New[float32](nx, ny)
	g32.FillFunc(func(x, y int) float32 { return float32(80 + 40*rng.Float64()) })

	// Ground truth in float64.
	truth := make([]float64, ny)
	for y := 0; y < ny; y++ {
		var s float64
		for _, v := range g32.Row(y) {
			s += float64(v)
		}
		truth[y] = s
	}
	plain := checksum.NewVectors[float32](nx, ny)
	plain.Compute(g32)
	kahan := checksum.NewVectors[float32](nx, ny)
	kahan.ComputeKahan(g32)

	maxRel := func(b []float32) float64 {
		var m float64
		for y := range b {
			m = num.Max(m, num.RelErr(float64(b[y]), truth[y], 1))
		}
		return m
	}
	t := metrics.NewTable(
		fmt.Sprintf("Ablation A3: checksum accumulation, %dx%d float32", nx, ny),
		"Accumulation", "Max rel. error vs float64 truth")
	t.AddRow("plain (paper)", maxRel(plain.B))
	t.AddRow("Kahan compensated", maxRel(kahan.B))
	t.Render(w)
	fmt.Fprintln(w)
}

// ablationPairing (A5): success rate of residual pairing versus index
// pairing when two errors strike the same iteration in a cross pattern
// (x1<x2 but y1>y2), the arrangement index pairing mislocates.
func ablationPairing(cfg TileConfig, w io.Writer) {
	nx, ny := cfg.Nx, cfg.Ny
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	const trials = 200

	correct := map[checksum.PairPolicy]int{}
	for trial := 0; trial < trials; trial++ {
		// Two distinct corrupted cells in a random arrangement.
		x1, y1 := rng.Intn(nx), rng.Intn(ny)
		x2, y2 := rng.Intn(nx), rng.Intn(ny)
		if x1 == x2 || y1 == y2 {
			continue
		}
		am := []checksum.Mismatch[float64]{}
		bm := []checksum.Mismatch[float64]{}
		e1 := 1 + 10*rng.Float64()
		e2 := 20 + 10*rng.Float64()
		// Mismatch lists arrive sorted by index.
		add := func(x, y int, e float64) {
			am = append(am, checksum.Mismatch[float64]{Index: x, Residual: -e})
			bm = append(bm, checksum.Mismatch[float64]{Index: y, Residual: -e})
		}
		if x1 < x2 {
			add(x1, y1, e1)
			add(x2, y2, e2)
		} else {
			add(x2, y2, e2)
			add(x1, y1, e1)
		}
		if bm[0].Index > bm[1].Index {
			bm[0], bm[1] = bm[1], bm[0]
		}
		want := map[checksum.Location]bool{{X: x1, Y: y1}: true, {X: x2, Y: y2}: true}
		for _, pol := range []checksum.PairPolicy{checksum.PairByResidual, checksum.PairByIndex} {
			locs := checksum.Pair(am, bm, pol)
			ok := len(locs) == 2 && want[locs[0]] && want[locs[1]]
			if ok {
				correct[pol]++
			}
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("Ablation A5: two-error pairing policy, %d random arrangements", trials),
		"Policy", "Correctly located")
	t.AddRow("residual matching (this library)", fmt.Sprintf("%d/%d", correct[checksum.PairByResidual], trials))
	t.AddRow("index order (paper Fig. 6)", fmt.Sprintf("%d/%d", correct[checksum.PairByIndex], trials))
	t.Render(w)
	fmt.Fprintln(w)
}
