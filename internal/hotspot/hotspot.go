// Package hotspot is a from-scratch Go port of the HotSpot3D thermal
// simulation kernel from the Rodinia benchmark suite — the application the
// paper evaluates on (Section 5). HotSpot3D estimates processor temperature
// from an architectural floorplan: each grid cell integrates the heat
// equation with anisotropic conductances derived from the chip's physical
// parameters, plus a power-density source term.
//
// The update rule (Rodinia's hotspot3D.c, rewritten in stencil form) is
//
//	T'(x,y,z) = T + dt/C * ( (Tw+Te-2T)/Rx + (Tn+Ts-2T)/Ry + (Tb+Ta-2T)/Rz
//	                         + P(x,y,z) + (Tamb-T)/Rz_amb )
//
// which is exactly Equation (1) of the paper: a seven-point stencil with
// constant weights plus a per-cell constant term C(x,y,z) — so the ABFT
// protectors apply unmodified. Boundary cells reuse the border value
// (clamp), as in Rodinia's kernel.
//
// The paper drives the kernel with Rodinia's power/temperature input files;
// those are proprietary-free but not vendored here, so SyntheticPower and
// SyntheticTemperature generate inputs with the same magnitudes and spatial
// smoothness (see DESIGN.md, substitutions).
package hotspot

import (
	"fmt"
	"math"
	"math/rand"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Physical constants, as defined by Rodinia's hotspot3D (3D.h / hotspot.c).
const (
	maxPD      = 3.0e6  // maximum power density (W/m^2)
	precision  = 0.001  // convergence precision
	specHeatSi = 1.75e6 // specific heat of silicon (J/m^3/K)
	kSi        = 100.0  // thermal conductivity of silicon (W/m/K)
	specHeatBe = 2.4e6  // specific heat of copper-beryllium interface
	kBe        = 4.0    // thermal conductivity of the interface material
	tChip      = 0.0005 // chip thickness (m)
	tAmb       = 80.0   // ambient temperature (C); Rodinia uses 80
	chipHeight = 0.016  // chip height (m)
	chipWidth  = 0.016  // chip width (m)
)

// Config sizes a HotSpot3D problem. The paper's tiles are 64x64x8 and
// 512x512x8.
type Config struct {
	Nx, Ny, Nz int
	// DTFactor scales the stable time step; 1.0 reproduces Rodinia's
	// choice dt = 0.5 * specHeat*dz^2 / (k * ...), values < 1 are more
	// conservative. Zero means 1.0.
	DTFactor float64
}

// Model holds the derived stencil weights and physical scales for a
// configured problem.
type Model[T num.Float] struct {
	cfg            Config
	dx, dy, dz     float64
	dt             float64
	cw, ce, cn, cs float64 // lateral conduction weights
	cb, ca         float64 // vertical conduction weights
	cc             float64 // centre weight
	ampFactor      float64 // dt / (specHeat * dz)
	stAmb          float64 // ambient coupling weight
}

// NewModel derives the stencil coefficients from the chip geometry, the
// same way Rodinia's hotspot_opt/3D computes ce/cw/cn/cs/ct/cb/cc.
func NewModel[T num.Float](cfg Config) (*Model[T], error) {
	if cfg.Nx <= 1 || cfg.Ny <= 1 || cfg.Nz < 1 {
		return nil, fmt.Errorf("hotspot: invalid grid %dx%dx%d", cfg.Nx, cfg.Ny, cfg.Nz)
	}
	m := &Model[T]{cfg: cfg}
	m.dx = chipHeight / float64(cfg.Nx)
	m.dy = chipWidth / float64(cfg.Ny)
	m.dz = tChip / float64(cfg.Nz)

	cap := specHeatSi * tChip * m.dx * m.dy
	rx := m.dy / (2 * kSi * tChip * m.dx)
	ry := m.dx / (2 * kSi * tChip * m.dy)
	rz := m.dz / (kSi * m.dx * m.dy)

	maxSlope := maxPD / (specHeatSi * tChip)
	m.dt = precision / maxSlope
	if cfg.DTFactor > 0 {
		m.dt *= cfg.DTFactor
	}

	// Rodinia hotspot3D coefficient derivation:
	stepDivCap := m.dt / cap
	ce := stepDivCap / rx
	cn := stepDivCap / ry
	ct := stepDivCap / rz
	m.cw, m.ce = ce, ce
	m.cn, m.cs = cn, cn
	m.ca, m.cb = ct, ct
	m.stAmb = stepDivCap / (m.dz / (kBe * m.dx * m.dy)) // coupling to ambient through package
	m.cc = 1 - (2*ce + 2*cn + 2*ct + m.stAmb)
	m.ampFactor = stepDivCap
	return m, nil
}

// DT returns the integration time step in seconds.
func (m *Model[T]) DT() float64 { return m.dt }

// Stencil returns the seven-point stencil of the thermal update. All
// weights are positive and sum to 1 - stAmb < 1, so the iteration is a
// contraction toward the ambient-coupled equilibrium — numerically stable.
func (m *Model[T]) Stencil() *stencil.Stencil[T] {
	st := stencil.SevenPoint3D(
		T(m.cc), T(m.cw), T(m.ce), T(m.cn), T(m.cs), T(m.cb), T(m.ca))
	st.Name = "hotspot3d"
	return st
}

// ConstField builds the per-cell constant term C(x,y,z) from a power map:
// the power density integrated over the cell footprint (dx*dy), plus the
// ambient coupling. At equilibrium a cell with density P sits roughly
// P*dz/kBe above ambient, matching HotSpot's package model.
func (m *Model[T]) ConstField(power *grid.Grid3D[T]) *grid.Grid3D[T] {
	cellArea := m.dx * m.dy
	c := grid.New3D[T](m.cfg.Nx, m.cfg.Ny, m.cfg.Nz)
	c.FillFunc(func(x, y, z int) T {
		return T(m.ampFactor*float64(power.At(x, y, z))*cellArea + m.stAmb*tAmb)
	})
	return c
}

// Op assembles the complete stencil operator (stencil, clamp boundaries,
// power constant field) ready for the ABFT protectors.
func (m *Model[T]) Op(power *grid.Grid3D[T]) *stencil.Op3D[T] {
	return &stencil.Op3D[T]{
		St: m.Stencil(),
		BC: grid.Clamp,
		C:  m.ConstField(power),
	}
}

// SyntheticPower generates a power-density map with the character of
// Rodinia's inputs: a smooth low-power background with a handful of
// high-power rectangular hot spots (functional units), identical across
// layers except for a per-layer attenuation. Deterministic for a given
// seed.
func SyntheticPower[T num.Float](cfg Config, seed int64) *grid.Grid3D[T] {
	rng := rand.New(rand.NewSource(seed))
	p := grid.New3D[T](cfg.Nx, cfg.Ny, cfg.Nz)

	type block struct {
		x0, y0, x1, y1 int
		density        float64
	}
	nBlocks := 4 + rng.Intn(4)
	blocks := make([]block, nBlocks)
	for i := range blocks {
		w := 1 + rng.Intn(max(1, cfg.Nx/4))
		h := 1 + rng.Intn(max(1, cfg.Ny/4))
		x0 := rng.Intn(max(1, cfg.Nx-w))
		y0 := rng.Intn(max(1, cfg.Ny-h))
		blocks[i] = block{x0, y0, x0 + w, y0 + h, maxPD * (0.3 + 0.7*rng.Float64())}
	}
	background := maxPD * 0.01
	p.FillFunc(func(x, y, z int) T {
		d := background * (0.8 + 0.4*math.Sin(float64(x)*0.3)*math.Cos(float64(y)*0.2))
		for _, b := range blocks {
			if x >= b.x0 && x < b.x1 && y >= b.y0 && y < b.y1 {
				d += b.density
			}
		}
		atten := 1.0 / (1.0 + 0.15*float64(z))
		return T(d * atten)
	})
	return p
}

// SyntheticTemperature generates an initial temperature field: ambient plus
// a smooth perturbation, matching the magnitude of Rodinia's temperature
// inputs (tens of degrees above ambient near hot spots).
func SyntheticTemperature[T num.Float](cfg Config, seed int64) *grid.Grid3D[T] {
	rng := rand.New(rand.NewSource(seed))
	phase := rng.Float64() * 2 * math.Pi
	t := grid.New3D[T](cfg.Nx, cfg.Ny, cfg.Nz)
	t.FillFunc(func(x, y, z int) T {
		u := float64(x) / float64(cfg.Nx)
		v := float64(y) / float64(cfg.Ny)
		bump := 15 * math.Sin(math.Pi*u+phase) * math.Sin(math.Pi*v)
		return T(tAmb + 20 + bump + 2*rng.Float64())
	})
	return t
}

// Ambient returns the ambient temperature constant used by the model.
func Ambient() float64 { return tAmb }
