package hotspot

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Rodinia's hotspot3D reads power and initial-temperature files as plain
// text: one floating-point value per line, x fastest, then y, then z —
// exactly the layout of Grid3D's backing slice. These readers/writers are
// format-compatible, so real Rodinia inputs can be dropped in when
// available (the synthetic generators stand in otherwise; see DESIGN.md).

// ReadGridFile parses a Rodinia-format value file into a grid of the given
// shape. Blank lines are ignored; the value count must match exactly.
func ReadGridFile[T num.Float](path string, nx, ny, nz int) (*grid.Grid3D[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hotspot: %w", err)
	}
	defer f.Close()
	g, err := ReadGrid[T](f, nx, ny, nz)
	if err != nil {
		return nil, fmt.Errorf("hotspot: %s: %w", path, err)
	}
	return g, nil
}

// ReadGrid parses Rodinia-format values from r.
func ReadGrid[T num.Float](r io.Reader, nx, ny, nz int) (*grid.Grid3D[T], error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("invalid shape %dx%dx%d", nx, ny, nz)
	}
	g := grid.New3D[T](nx, ny, nz)
	data := g.Data()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	i := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		// Rodinia files occasionally carry several whitespace-separated
		// values per line; accept both layouts.
		for _, field := range strings.Fields(text) {
			if i >= len(data) {
				return nil, fmt.Errorf("line %d: more than %d values", line, len(data))
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			data[i] = T(v)
			i++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if i != len(data) {
		return nil, fmt.Errorf("got %d values, want %d", i, len(data))
	}
	return g, nil
}

// WriteGridFile writes g in Rodinia format (one value per line).
func WriteGridFile[T num.Float](path string, g *grid.Grid3D[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hotspot: %w", err)
	}
	if err := WriteGrid(f, g); err != nil {
		f.Close()
		return fmt.Errorf("hotspot: %s: %w", path, err)
	}
	return f.Close()
}

// WriteGrid writes g's values to w, one per line, in storage order.
func WriteGrid[T num.Float](w io.Writer, g *grid.Grid3D[T]) error {
	bw := bufio.NewWriter(w)
	for _, v := range g.Data() {
		if _, err := fmt.Fprintf(bw, "%g\n", float64(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
