package hotspot

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestGridIORoundTrip(t *testing.T) {
	cfg := Config{Nx: 6, Ny: 5, Nz: 3}
	p := SyntheticPower[float64](cfg, 9)
	path := filepath.Join(t.TempDir(), "power.dat")
	if err := WriteGridFile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadGridFile[float64](path, 6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// %g prints shortest-roundtrip decimals, so the round trip is exact.
	if p.MaxAbsDiff(q) != 0 {
		t.Fatalf("round trip lost precision: %g", p.MaxAbsDiff(q))
	}
}

func TestReadGridAcceptsMultiValueLines(t *testing.T) {
	in := "1 2 3\n4 5 6\n\n7 8 9\n10 11 12\n"
	g, err := ReadGrid[float32](strings.NewReader(in), 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0, 0) != 1 || g.At(2, 1, 0) != 6 || g.At(0, 0, 1) != 7 || g.At(2, 1, 1) != 12 {
		t.Fatal("layout wrong")
	}
}

func TestReadGridRejectsCountMismatch(t *testing.T) {
	if _, err := ReadGrid[float32](strings.NewReader("1\n2\n3\n"), 2, 2, 1); err == nil {
		t.Fatal("short file accepted")
	}
	if _, err := ReadGrid[float32](strings.NewReader("1\n2\n3\n4\n5\n"), 2, 2, 1); err == nil {
		t.Fatal("long file accepted")
	}
}

func TestReadGridRejectsGarbageValues(t *testing.T) {
	if _, err := ReadGrid[float32](strings.NewReader("1\npotato\n3\n4\n"), 2, 2, 1); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := ReadGrid[float32](strings.NewReader(""), 0, 2, 1); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestReadGridFileMissing(t *testing.T) {
	if _, err := ReadGridFile[float32](filepath.Join(t.TempDir(), "nope.dat"), 2, 2, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
