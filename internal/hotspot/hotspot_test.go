package hotspot

import (
	"testing"

	"stencilabft/internal/core"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

func testConfig() Config { return Config{Nx: 16, Ny: 16, Nz: 4} }

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel[float32](Config{Nx: 1, Ny: 16, Nz: 4}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
	if _, err := NewModel[float32](testConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestStencilIsStableContraction(t *testing.T) {
	m, err := NewModel[float64](testConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stencil()
	if st.Size() != 7 {
		t.Fatalf("stencil size %d", st.Size())
	}
	for _, p := range st.Points {
		if p.W <= 0 {
			t.Fatalf("non-positive weight %+v (unstable time step)", p)
		}
	}
	// Weight sum strictly below 1: the iteration contracts toward the
	// ambient-coupled equilibrium.
	if ws := st.WeightSum(); ws >= 1 || ws < 0.5 {
		t.Fatalf("weight sum %g out of the stable band", ws)
	}
}

func TestSyntheticPowerProperties(t *testing.T) {
	cfg := testConfig()
	p := SyntheticPower[float64](cfg, 1)
	var maxV, minV float64
	minV = p.At(0, 0, 0)
	for _, v := range p.Data() {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if minV < 0 {
		t.Fatalf("negative power density %g", minV)
	}
	if maxV > 2*maxPD {
		t.Fatalf("power density %g beyond physical bound", maxV)
	}
	if maxV < maxPD*0.2 {
		t.Fatalf("no hot spots generated (max %g)", maxV)
	}
	// Determinism.
	q := SyntheticPower[float64](cfg, 1)
	if p.MaxAbsDiff(q) != 0 {
		t.Fatal("same seed produced different power maps")
	}
	r := SyntheticPower[float64](cfg, 2)
	if p.MaxAbsDiff(r) == 0 {
		t.Fatal("different seeds produced identical power maps")
	}
}

func TestSyntheticTemperatureRange(t *testing.T) {
	cfg := testConfig()
	temp := SyntheticTemperature[float64](cfg, 3)
	for _, v := range temp.Data() {
		if v < tAmb || v > tAmb+60 {
			t.Fatalf("initial temperature %g outside plausible range", v)
		}
	}
}

// TestThermalEquilibrium runs the model to near-steady-state and checks the
// physics: temperatures stay above ambient (the die only generates heat),
// remain bounded, and the hottest cell sits inside a power block's column.
func TestThermalEquilibrium(t *testing.T) {
	cfg := testConfig()
	m, err := NewModel[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	power := SyntheticPower[float64](cfg, 5)
	op := m.Op(power)
	init := grid.New3D[float64](cfg.Nx, cfg.Ny, cfg.Nz)
	init.Fill(tAmb)

	p, err := core.NewNone3D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(3000)
	g := p.Grid3D()

	var hottest float64
	for _, v := range g.Data() {
		if !num.IsFinite(v) {
			t.Fatal("temperature diverged")
		}
		if v < tAmb-1e-6 {
			t.Fatalf("temperature %g below ambient with pure heat sources", v)
		}
		if v > 400 {
			t.Fatalf("temperature %g implausibly high", v)
		}
		if v > hottest {
			hottest = v
		}
	}
	if hottest < tAmb+0.5 {
		t.Fatalf("die did not heat up (max %g)", hottest)
	}
}

// TestConvergesToSteadyState checks that successive iterates approach a
// fixed point (the contraction property the stencil weights guarantee).
func TestConvergesToSteadyState(t *testing.T) {
	cfg := testConfig()
	m, err := NewModel[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	power := SyntheticPower[float64](cfg, 6)
	op := m.Op(power)
	init := SyntheticTemperature[float64](cfg, 7)

	p, err := core.NewNone3D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(500)
	before := p.Grid3D().Clone()
	p.Run(1)
	step500 := p.Grid3D().MaxAbsDiff(before)

	p.Run(1500)
	before = p.Grid3D().Clone()
	p.Run(1)
	step2000 := p.Grid3D().MaxAbsDiff(before)
	if step2000 >= step500 {
		t.Fatalf("per-step change not shrinking: %g then %g", step500, step2000)
	}
}

func TestConstFieldIncludesAmbientCoupling(t *testing.T) {
	cfg := testConfig()
	m, err := NewModel[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	zeroPower := grid.New3D[float64](cfg.Nx, cfg.Ny, cfg.Nz)
	c := m.ConstField(zeroPower)
	// With zero power the constant term is exactly the ambient coupling,
	// uniform and positive.
	v0 := c.At(0, 0, 0)
	if v0 <= 0 {
		t.Fatalf("ambient coupling term %g", v0)
	}
	for _, v := range c.Data() {
		if v != v0 {
			t.Fatal("zero-power constant field not uniform")
		}
	}
}

func TestDTPositiveAndScaled(t *testing.T) {
	m1, _ := NewModel[float32](testConfig())
	cfg := testConfig()
	cfg.DTFactor = 0.5
	m2, _ := NewModel[float32](cfg)
	if m1.DT() <= 0 {
		t.Fatal("dt not positive")
	}
	if m2.DT() >= m1.DT() {
		t.Fatal("DTFactor did not scale dt")
	}
}

func TestAmbient(t *testing.T) {
	if Ambient() != tAmb {
		t.Fatal("Ambient() mismatch")
	}
}
