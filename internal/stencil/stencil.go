// Package stencil defines stencil descriptors (the set S of weighted
// relative offsets from the paper's Equation 1) and the sequential and
// parallel sweep engines that apply them, including the fused
// column-checksum sweep that realises the paper's "single extra addition"
// implementation (Figure 2).
package stencil

import (
	"errors"
	"fmt"
	"sort"

	"stencilabft/internal/errs"
	"stencilabft/internal/num"
)

// ErrInvalidOp classifies every operator-validation failure —
// errors.Is(err, ErrInvalidOp) is true for the errors Stencil.Validate,
// Op2D.Validate and Op3D.Validate return, while the message keeps naming
// the specific defect.
var ErrInvalidOp = errors.New("stencil: invalid operator")

// opErrorf formats an operator-validation error tagged ErrInvalidOp.
func opErrorf(format string, args ...any) error {
	return errs.Tagf([]error{ErrInvalidOp}, format, args...)
}

// Point is one element of the stencil set S: a relative offset and its
// weight. DZ is zero for 2-D stencils.
type Point[T num.Float] struct {
	DX, DY, DZ int
	W          T
}

// Stencil describes an arbitrary stencil kernel: a set of weighted offsets.
// Weights may be asymmetric and offsets may reach beyond the immediate
// neighbours; the only structural requirement, enforced by Validate, is
// that offsets are unique and the radius is positive in at least one axis
// or the stencil includes the centre.
type Stencil[T num.Float] struct {
	Name   string
	Points []Point[T]
}

// Validate checks structural sanity: at least one point, no duplicate
// offsets, and no zero-weight points (they would silently change the
// checksum interpolation cost model). It returns a descriptive error.
func (s *Stencil[T]) Validate() error {
	if len(s.Points) == 0 {
		return opErrorf("stencil %q: no points", s.Name)
	}
	seen := make(map[[3]int]bool, len(s.Points))
	for _, p := range s.Points {
		k := [3]int{p.DX, p.DY, p.DZ}
		if seen[k] {
			return opErrorf("stencil %q: duplicate offset (%d,%d,%d)", s.Name, p.DX, p.DY, p.DZ)
		}
		seen[k] = true
		if p.W == 0 {
			return opErrorf("stencil %q: zero weight at offset (%d,%d,%d)", s.Name, p.DX, p.DY, p.DZ)
		}
	}
	return nil
}

// Is3D reports whether any point has a non-zero z offset.
func (s *Stencil[T]) Is3D() bool {
	for _, p := range s.Points {
		if p.DZ != 0 {
			return true
		}
	}
	return false
}

// RadiusX returns the largest |DX| over all points.
func (s *Stencil[T]) RadiusX() int { return s.radius(func(p Point[T]) int { return p.DX }) }

// RadiusY returns the largest |DY| over all points.
func (s *Stencil[T]) RadiusY() int { return s.radius(func(p Point[T]) int { return p.DY }) }

// RadiusZ returns the largest |DZ| over all points.
func (s *Stencil[T]) RadiusZ() int { return s.radius(func(p Point[T]) int { return p.DZ }) }

func (s *Stencil[T]) radius(axis func(Point[T]) int) int {
	r := 0
	for _, p := range s.Points {
		d := axis(p)
		if d < 0 {
			d = -d
		}
		if d > r {
			r = d
		}
	}
	return r
}

// WeightSum returns the sum of all weights. Diffusive kernels with
// WeightSum == 1 preserve the domain average, a property several tests use.
func (s *Stencil[T]) WeightSum() T {
	var w T
	for _, p := range s.Points {
		w += p.W
	}
	return w
}

// Size returns |S|, the number of stencil points (the paper's k).
func (s *Stencil[T]) Size() int { return len(s.Points) }

// Clone returns a deep copy of the stencil.
func (s *Stencil[T]) Clone() *Stencil[T] {
	c := &Stencil[T]{Name: s.Name, Points: make([]Point[T], len(s.Points))}
	copy(c.Points, s.Points)
	return c
}

// Sorted returns a copy with points ordered by (DZ, DY, DX), giving
// deterministic iteration order in tests and goldens.
func (s *Stencil[T]) Sorted() *Stencil[T] {
	c := s.Clone()
	sort.Slice(c.Points, func(i, j int) bool {
		a, b := c.Points[i], c.Points[j]
		if a.DZ != b.DZ {
			return a.DZ < b.DZ
		}
		if a.DY != b.DY {
			return a.DY < b.DY
		}
		return a.DX < b.DX
	})
	return c
}

// String summarises the stencil for diagnostics.
func (s *Stencil[T]) String() string {
	return fmt.Sprintf("stencil %q (%d points, radius %d/%d/%d)",
		s.Name, len(s.Points), s.RadiusX(), s.RadiusY(), s.RadiusZ())
}

// FivePoint returns the classic 2-D five-point stencil with individual
// weights for centre, west, east, north (y-1) and south (y+1), the shape of
// the paper's Figure 2 kernel.
func FivePoint[T num.Float](c, w, e, n, s T) *Stencil[T] {
	return &Stencil[T]{Name: "five-point", Points: []Point[T]{
		{0, 0, 0, c},
		{-1, 0, 0, w},
		{1, 0, 0, e},
		{0, -1, 0, n},
		{0, 1, 0, s},
	}}
}

// Jacobi4 returns the four-point averaging stencil from the paper's
// Section 3.1 example: S = {(0,-1,.25), (-1,0,.25), (1,0,.25), (0,1,.25)}.
func Jacobi4[T num.Float]() *Stencil[T] {
	st := FivePoint[T](0.25, 0.25, 0.25, 0.25, 0.25)
	st.Name = "jacobi4"
	st.Points = st.Points[1:] // drop the centre
	return st
}

// Laplace5 returns the five-point Jacobi heat kernel
// u' = u + alpha*(west+east+north+south-4u).
func Laplace5[T num.Float](alpha T) *Stencil[T] {
	st := FivePoint[T](1-4*alpha, alpha, alpha, alpha, alpha)
	st.Name = "laplace5"
	return st
}

// NinePoint returns a full 3x3 stencil with the given row-major weights
// (dy=-1..1 outer, dx=-1..1 inner).
func NinePoint[T num.Float](w [9]T) *Stencil[T] {
	st := &Stencil[T]{Name: "nine-point"}
	i := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if w[i] != 0 {
				st.Points = append(st.Points, Point[T]{dx, dy, 0, w[i]})
			}
			i++
		}
	}
	return st
}

// BoxBlur returns the 3x3 uniform averaging stencil used by the image
// example.
func BoxBlur[T num.Float]() *Stencil[T] {
	var w [9]T
	for i := range w {
		w[i] = 1.0 / 9.0
	}
	st := NinePoint(w)
	st.Name = "box-blur"
	return st
}

// SevenPoint3D returns the 3-D seven-point stencil with individual weights
// for centre, west/east (x∓1), north/south (y∓1) and below/above (z∓1) —
// the shape of HotSpot3D's kernel.
func SevenPoint3D[T num.Float](c, w, e, n, s, b, a T) *Stencil[T] {
	return &Stencil[T]{Name: "seven-point-3d", Points: []Point[T]{
		{0, 0, 0, c},
		{-1, 0, 0, w},
		{1, 0, 0, e},
		{0, -1, 0, n},
		{0, 1, 0, s},
		{0, 0, -1, b},
		{0, 0, 1, a},
	}}
}

// Advect2D returns a deliberately asymmetric first-order upwind advection
// stencil: u' = u - cx*(u - u_west) - cy*(u - u_north). Its east/west and
// north/south weights differ, so the boundary terms alpha/beta do NOT
// cancel under clamp boundaries — it exercises the exact Theorem-1 path
// that the paper's simplified listings cannot handle.
func Advect2D[T num.Float](cx, cy T) *Stencil[T] {
	return &Stencil[T]{Name: "advect2d", Points: []Point[T]{
		{0, 0, 0, 1 - cx - cy},
		{-1, 0, 0, cx},
		{0, -1, 0, cy},
	}}
}
