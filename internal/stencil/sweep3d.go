package stencil

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// Op3D binds a (possibly 3-D) stencil to a 3-D sweep context. The paper's
// per-layer ABFT scheme treats each z-layer as an independent 2-D domain;
// Op3D's per-layer sweep produces that layer's fused column checksum.
type Op3D[T num.Float] struct {
	St      *Stencil[T]
	BC      grid.Boundary
	BCValue T               // ghost value when BC == grid.Constant
	C       *grid.Grid3D[T] // optional constant field; nil means zero

	// ForceGeneric disables specialized-kernel dispatch; see Op2D.
	ForceGeneric bool

	// planc caches the compiled sweep plan for the last-seen shape; see
	// plan.go.
	planc planCache[plan3d[T]]
}

// Validate checks the operator against a domain of the given shape.
func (op *Op3D[T]) Validate(nx, ny, nz int) error {
	if err := op.St.Validate(); err != nil {
		return err
	}
	if !op.BC.Valid() {
		return opErrorf("stencil %q: invalid boundary condition", op.St.Name)
	}
	rx, ry, rz := op.St.RadiusX(), op.St.RadiusY(), op.St.RadiusZ()
	if rx >= nx || ry >= ny || rz >= nz {
		return opErrorf("stencil %q: radius %d/%d/%d exceeds domain %dx%dx%d",
			op.St.Name, rx, ry, rz, nx, ny, nz)
	}
	if op.C != nil && (op.C.Nx() != nx || op.C.Ny() != ny || op.C.Nz() != nz) {
		return opErrorf("stencil %q: constant field shape mismatch", op.St.Name)
	}
	return nil
}

// Sweep computes one full iteration of the 3-D domain.
func (op *Op3D[T]) Sweep(dst, src *grid.Grid3D[T]) {
	for z := 0; z < src.Nz(); z++ {
		op.SweepLayer(dst, src, z, nil, nil)
	}
}

// SweepLayer sweeps layer z only, optionally accumulating that layer's
// column checksum vector b (b[y] = Σ_x dst(x,y,z), len ny) and applying
// hook to each fresh value. Distinct layers write disjoint storage, so the
// parallel engine calls SweepLayer concurrently without locks.
func (op *Op3D[T]) SweepLayer(dst, src *grid.Grid3D[T], z int, b []T, hook InjectFunc[T]) {
	nx, ny, nz := src.Nx(), src.Ny(), src.Nz()
	if dst == src {
		panic("stencil: sweep destination aliases source")
	}
	if !dst.SameShape(src) {
		panic("stencil: sweep shape mismatch")
	}
	pl := op.plan(nx, ny, nz)
	bg := grid.BoundedGrid3D[T]{G: src, Cond: op.BC, ConstVal: op.BCValue}
	offs, ws := pl.offs, pl.ws
	plane := pl.plane
	rx, ry, rz := pl.rx, pl.ry, pl.rz
	srcD, dstD := src.Data(), dst.Data()
	var cD []T
	if op.C != nil {
		cD = op.C.Data()
	}
	zInterior := z >= rz && z < nz-rz
	for y := 0; y < ny; y++ {
		var acc T
		base := z*plane + y*nx
		interior := zInterior && y >= ry && y < ny-ry
		xlo, xhi := rx, nx-rx
		if !interior {
			xlo, xhi = nx, nx
		}
		for x := 0; x < min(xlo, nx); x++ {
			v := op.pointSlow(bg, cD, x, y, z, nx, plane)
			if hook != nil {
				v = hook(x, y, z, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if hook == nil {
			acc = pl.sweepRow(dstD, srcD, cD, base, xlo, xhi, acc)
		} else {
			acc = genericRowHook(dstD, srcD, cD, offs, ws, base, xlo, xhi, y, z, hook, acc)
		}
		for x := max(xhi, min(xlo, nx)); x < nx; x++ {
			v := op.pointSlow(bg, cD, x, y, z, nx, plane)
			if hook != nil {
				v = hook(x, y, z, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if b != nil {
			b[y] = acc
		}
	}
}

func (op *Op3D[T]) pointSlow(bg grid.BoundedGrid3D[T], cD []T, x, y, z, nx, plane int) T {
	var v T
	if cD != nil {
		v = cD[x+y*nx+z*plane]
	}
	for _, p := range op.St.Points {
		v += p.W * bg.At(x+p.DX, y+p.DY, z+p.DZ)
	}
	return v
}

// LayerOp projects the 3-D operator onto layer z as a set of per-source-
// layer 2-D stencils: the returned map groups the points of S by their z
// offset. The checksum interpolation of layer z combines the checksum
// vectors of layers z+dz with the 2-D offsets in each group — this is how
// the per-layer scheme accounts for cross-layer coupling exactly.
func (op *Op3D[T]) LayerOp() map[int][]Point[T] {
	groups := make(map[int][]Point[T])
	for _, p := range op.St.Points {
		groups[p.DZ] = append(groups[p.DZ], Point[T]{DX: p.DX, DY: p.DY, W: p.W})
	}
	return groups
}
