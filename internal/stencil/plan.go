package stencil

import (
	"sync/atomic"
	"unsafe"

	"stencilabft/internal/num"
)

// A sweep plan is the compiled form of an operator for one domain shape:
// flat offsets, a weight vector, interior bounds and the specialized kernel
// (when the stencil matches one), computed once and cached on the operator.
// Before plans, every SweepRange/SweepLayer call rebuilt the offset and
// weight slices — two heap allocations per worker-chunk per iteration on
// the hottest path in the library. A plan is immutable after construction
// and shared read-only by all worker goroutines.
//
// The cache is validated on every fetch: shape, stencil identity, the
// points themselves (offsets and weights, so even in-place weight edits are
// caught) and the ForceGeneric knob. Any mismatch rebuilds the plan; an
// atomic pointer keeps concurrent fetches race-free without a lock.

// kernel identifies the interior row kernel a plan dispatches to.
type kernel uint8

const (
	// kernGeneric is the dynamic k-point loop, valid for every stencil.
	kernGeneric kernel = iota
	// kernStar5 is the hand-unrolled 2-D five-point star (centre, west,
	// east, north, south — the canonical FivePoint/Laplace5 order).
	kernStar5
	// kernBox9 is the hand-unrolled full 3x3 box in NinePoint's row-major
	// order (dy outer -1..1, dx inner -1..1).
	kernBox9
	// kernStar7 is the hand-unrolled 3-D seven-point star (centre, west,
	// east, north, south, below, above — the SevenPoint3D order).
	kernStar7
)

func (k kernel) String() string {
	switch k {
	case kernStar5:
		return "star5"
	case kernBox9:
		return "box9"
	case kernStar7:
		return "star7"
	default:
		return "generic"
	}
}

// Canonical offset sequences the specialized kernels match. Dispatch
// requires the exact declaration order, not just the same offset set: the
// unrolled kernels accumulate in this fixed order, and float addition is
// not associative, so only an identically-ordered generic loop is
// bit-identical to them. The constructors (FivePoint, Laplace5, NinePoint,
// BoxBlur, SevenPoint3D) all produce these orders.
var (
	star5Offsets = [][3]int{{0, 0, 0}, {-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}}
	box9Offsets  = [][3]int{
		{-1, -1, 0}, {0, -1, 0}, {1, -1, 0},
		{-1, 0, 0}, {0, 0, 0}, {1, 0, 0},
		{-1, 1, 0}, {0, 1, 0}, {1, 1, 0},
	}
	star7Offsets = [][3]int{{0, 0, 0}, {-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
)

// matchOffsets reports whether pts lists exactly the canonical offsets, in
// order.
func matchOffsets[T num.Float](pts []Point[T], want [][3]int) bool {
	if len(pts) != len(want) {
		return false
	}
	for i, p := range pts {
		if p.DX != want[i][0] || p.DY != want[i][1] || p.DZ != want[i][2] {
			return false
		}
	}
	return true
}

// detectKernel classifies pts against the specialized kernel table and, on
// a match, copies the weights into kw in canonical order.
func detectKernel[T num.Float](pts []Point[T], kw *[9]T) kernel {
	switch {
	case matchOffsets(pts, star5Offsets):
		for i, p := range pts {
			kw[i] = p.W
		}
		return kernStar5
	case matchOffsets(pts, box9Offsets):
		for i, p := range pts {
			kw[i] = p.W
		}
		return kernBox9
	case matchOffsets(pts, star7Offsets):
		for i, p := range pts {
			kw[i] = p.W
		}
		return kernStar7
	default:
		return kernGeneric
	}
}

// plan2d is the compiled sweep plan of an Op2D for one nx-by-ny shape.
type plan2d[T num.Float] struct {
	nx, ny int
	st     *Stencil[T]
	pts    []Point[T] // private copy, for cache validation
	force  bool       // ForceGeneric at build time
	offs   []int      // flat offsets, points order
	ws     []T        // weights, points order
	rx, ry int
	kern   kernel
	kw     [9]T // kernel weights in canonical order (kern != kernGeneric)
}

// matches reports whether the plan is still valid for op at shape nx-by-ny.
func (pl *plan2d[T]) matches(op *Op2D[T], nx, ny int) bool {
	if pl.nx != nx || pl.ny != ny || pl.st != op.St || pl.force != op.ForceGeneric {
		return false
	}
	if len(pl.pts) != len(op.St.Points) {
		return false
	}
	for i, p := range op.St.Points {
		if pl.pts[i] != p {
			return false
		}
	}
	return true
}

// plan returns the compiled plan for the current stencil at shape nx-by-ny,
// rebuilding and re-caching it when the cached one is stale. Safe for
// concurrent use: the plan itself is immutable and the cache slot is an
// atomic pointer (concurrent rebuilds store equivalent plans; last wins).
func (op *Op2D[T]) plan(nx, ny int) *plan2d[T] {
	if pl := op.planc.Load(); pl != nil && pl.matches(op, nx, ny) {
		return pl
	}
	pts := op.St.Points
	pl := &plan2d[T]{
		nx: nx, ny: ny,
		st:    op.St,
		pts:   append([]Point[T](nil), pts...),
		force: op.ForceGeneric,
		offs:  make([]int, len(pts)),
		ws:    make([]T, len(pts)),
		rx:    op.St.RadiusX(),
		ry:    op.St.RadiusY(),
	}
	for i, p := range pts {
		pl.offs[i] = p.DX + p.DY*nx
		pl.ws[i] = p.W
	}
	if !op.ForceGeneric {
		pl.kern = detectKernel(pts, &pl.kw)
	}
	op.planc.Store(pl)
	return pl
}

// sweepRow computes the interior segment [xlo, xhi) of the row starting at
// flat index base, dispatching to the specialized kernel when the plan has
// one. acc is threaded through (acc += value, per point, in x order) so the
// fused checksum accumulates in exactly the order of the pre-plan code.
func (pl *plan2d[T]) sweepRow(dst, src, c []T, base, xlo, xhi int, acc T) T {
	switch pl.kern {
	case kernStar5:
		return star5Row(dst, src, c, base, xlo, xhi, pl.nx, &pl.kw, acc)
	case kernBox9:
		return box9Row(dst, src, c, base, xlo, xhi, pl.nx, &pl.kw, acc)
	default:
		return genericRow(dst, src, c, pl.offs, pl.ws, base, xlo, xhi, acc)
	}
}

// plan3d is the compiled sweep plan of an Op3D for one nx-by-ny-by-nz shape.
type plan3d[T num.Float] struct {
	nx, ny, nz int
	plane      int
	st         *Stencil[T]
	pts        []Point[T]
	force      bool
	offs       []int
	ws         []T
	rx, ry, rz int
	kern       kernel
	kw         [9]T
}

// matches reports whether the plan is still valid for op at the given shape.
func (pl *plan3d[T]) matches(op *Op3D[T], nx, ny, nz int) bool {
	if pl.nx != nx || pl.ny != ny || pl.nz != nz || pl.st != op.St || pl.force != op.ForceGeneric {
		return false
	}
	if len(pl.pts) != len(op.St.Points) {
		return false
	}
	for i, p := range op.St.Points {
		if pl.pts[i] != p {
			return false
		}
	}
	return true
}

// plan returns the compiled 3-D plan, rebuilding it when stale. The 2-D
// kernels remain eligible: a stencil with all-zero DZ swept layer-wise has
// the same flat offsets as in a 2-D grid, so e.g. a per-layer Laplace5 in a
// 3-D domain still dispatches to star5.
func (op *Op3D[T]) plan(nx, ny, nz int) *plan3d[T] {
	if pl := op.planc.Load(); pl != nil && pl.matches(op, nx, ny, nz) {
		return pl
	}
	pts := op.St.Points
	plane := nx * ny
	pl := &plan3d[T]{
		nx: nx, ny: ny, nz: nz, plane: plane,
		st:    op.St,
		pts:   append([]Point[T](nil), pts...),
		force: op.ForceGeneric,
		offs:  make([]int, len(pts)),
		ws:    make([]T, len(pts)),
		rx:    op.St.RadiusX(),
		ry:    op.St.RadiusY(),
		rz:    op.St.RadiusZ(),
	}
	for i, p := range pts {
		pl.offs[i] = p.DX + p.DY*nx + p.DZ*plane
		pl.ws[i] = p.W
	}
	if !op.ForceGeneric {
		pl.kern = detectKernel(pts, &pl.kw)
	}
	op.planc.Store(pl)
	return pl
}

// sweepRow is the 3-D analogue of plan2d.sweepRow; base already includes
// the z-plane offset, so the 2-D kernels apply unchanged.
func (pl *plan3d[T]) sweepRow(dst, src, c []T, base, xlo, xhi int, acc T) T {
	switch pl.kern {
	case kernStar7:
		return star7Row(dst, src, c, base, xlo, xhi, pl.nx, pl.plane, &pl.kw, acc)
	case kernStar5:
		return star5Row(dst, src, c, base, xlo, xhi, pl.nx, &pl.kw, acc)
	case kernBox9:
		return box9Row(dst, src, c, base, xlo, xhi, pl.nx, &pl.kw, acc)
	default:
		return genericRow(dst, src, c, pl.offs, pl.ws, base, xlo, xhi, acc)
	}
}

// planCache is the one-slot atomic plan cache embedded in Op2D/Op3D. The
// zero value is ready to use. It uses the untyped atomic primitives rather
// than atomic.Pointer so the operator structs stay free of noCopy fields
// (they are commonly constructed as literals and may be copied while cold).
type planCache[P any] struct {
	p unsafe.Pointer // *P
}

func (c *planCache[P]) Load() *P   { return (*P)(atomic.LoadPointer(&c.p)) }
func (c *planCache[P]) Store(p *P) { atomic.StorePointer(&c.p, unsafe.Pointer(p)) }
