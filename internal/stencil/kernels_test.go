package stencil

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// The pin tests: every specialized kernel must be bit-identical to the
// generic SweepRange across all five boundary conditions, odd and tiny
// sizes (down to 2*radius+1), a non-nil constant field C, and a non-nil
// inject hook. Specialization must never change results — the README's
// guarantee points here.

var pinBoundaries = []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero}

// asymmetric weights so no accidental cancellation can mask an
// order-of-operations difference.
func pinStencils2D[T num.Float]() []struct {
	name string
	st   *Stencil[T]
	want kernel
} {
	return []struct {
		name string
		st   *Stencil[T]
		want kernel
	}{
		{"star5", FivePoint[T](0.37, 0.11, -0.13, 0.21, 0.29), kernStar5},
		{"laplace5", Laplace5[T](0.2), kernStar5},
		{"box9", NinePoint[T]([9]T{0.01, -0.02, 0.03, 0.05, 0.81, -0.07, 0.11, 0.13, -0.17}), kernBox9},
		{"jacobi4-generic", Jacobi4[T](), kernGeneric}, // 4 points: no fast kernel, pins the fallback
	}
}

func fillRandom2D[T num.Float](g *grid.Grid[T], rng *rand.Rand) {
	g.FillFunc(func(x, y int) T { return T(rng.Float64()*200 - 100) })
}

// sweepPair runs the same fused sweep through the specialized op and a
// ForceGeneric clone and reports the first bitwise difference.
func sweepPair2D[T num.Float](t *testing.T, st *Stencil[T], bc grid.Boundary, nx, ny int, withC, withHook bool, rng *rand.Rand) {
	t.Helper()
	var c *grid.Grid[T]
	if withC {
		c = grid.New[T](nx, ny)
		fillRandom2D(c, rng)
	}
	fast := &Op2D[T]{St: st, BC: bc, BCValue: 2.5, C: c}
	gen := &Op2D[T]{St: st, BC: bc, BCValue: 2.5, C: c, ForceGeneric: true}
	if got := gen.plan(nx, ny).kern; got != kernGeneric {
		t.Fatalf("ForceGeneric plan dispatched %v", got)
	}

	src := grid.New[T](nx, ny)
	fillRandom2D(src, rng)
	dstFast := grid.New[T](nx, ny)
	dstGen := grid.New[T](nx, ny)
	bFast := make([]T, ny)
	bGen := make([]T, ny)

	var hook InjectFunc[T]
	if withHook {
		hook = func(x, y, z int, v T) T {
			if x == nx/2 && y == ny/2 {
				return num.FlipBit(v, 12)
			}
			return v
		}
	}
	fast.SweepRange(dstFast, src, 0, ny, bFast, hook)
	gen.SweepRange(dstGen, src, 0, ny, bGen, hook)

	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if dstFast.At(x, y) != dstGen.At(x, y) {
				t.Fatalf("(%d,%d): fast %v != generic %v", x, y, dstFast.At(x, y), dstGen.At(x, y))
			}
		}
		if bFast[y] != bGen[y] {
			t.Fatalf("b[%d]: fast %v != generic %v", y, bFast[y], bGen[y])
		}
	}
}

func pinKernels2D[T num.Float](t *testing.T, typ string) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range pinStencils2D[T]() {
		r := max(k.st.RadiusX(), k.st.RadiusY())
		minN := 2*r + 1
		sizes := [][2]int{{minN, minN}, {minN, minN + 4}, {minN + 2, minN}, {5, 7}, {16, 17}, {17, 16}}
		for _, bc := range pinBoundaries {
			for _, sz := range sizes {
				nx, ny := sz[0], sz[1]
				if nx <= r || ny <= r {
					continue
				}
				for _, withC := range []bool{false, true} {
					for _, withHook := range []bool{false, true} {
						name := fmt.Sprintf("%s/%s/%s/%dx%d/C=%v/hook=%v", typ, k.name, bc, nx, ny, withC, withHook)
						t.Run(name, func(t *testing.T) {
							op := &Op2D[T]{St: k.st, BC: bc}
							if got := op.plan(nx, ny).kern; got != k.want {
								t.Fatalf("dispatched %v, want %v", got, k.want)
							}
							sweepPair2D(t, k.st, bc, nx, ny, withC, withHook, rng)
						})
					}
				}
			}
		}
	}
}

func TestKernelPin2DFloat32(t *testing.T) { pinKernels2D[float32](t, "float32") }
func TestKernelPin2DFloat64(t *testing.T) { pinKernels2D[float64](t, "float64") }

func pinKernels3D[T num.Float](t *testing.T, typ string) {
	rng := rand.New(rand.NewSource(13))
	stencils := []struct {
		name string
		st   *Stencil[T]
		want kernel
	}{
		{"star7", SevenPoint3D[T](0.31, 0.07, -0.05, 0.11, 0.13, 0.17, -0.19), kernStar7},
		{"star5-per-layer", Laplace5[T](0.2), kernStar5}, // 2-D stencil swept layer-wise still specializes
	}
	for _, k := range stencils {
		r := max(k.st.RadiusX(), max(k.st.RadiusY(), k.st.RadiusZ()))
		minN := 2*r + 1
		sizes := [][3]int{{minN, minN, minN}, {minN, minN + 2, minN + 1}, {7, 5, 3}, {9, 8, 4}}
		for _, bc := range pinBoundaries {
			for _, sz := range sizes {
				nx, ny, nz := sz[0], sz[1], sz[2]
				for _, withC := range []bool{false, true} {
					for _, withHook := range []bool{false, true} {
						name := fmt.Sprintf("%s/%s/%s/%dx%dx%d/C=%v/hook=%v", typ, k.name, bc, nx, ny, nz, withC, withHook)
						t.Run(name, func(t *testing.T) {
							var c *grid.Grid3D[T]
							if withC {
								c = grid.New3D[T](nx, ny, nz)
								c.FillFunc(func(x, y, z int) T { return T(rng.Float64()*20 - 10) })
							}
							fast := &Op3D[T]{St: k.st, BC: bc, BCValue: -1.5, C: c}
							gen := &Op3D[T]{St: k.st, BC: bc, BCValue: -1.5, C: c, ForceGeneric: true}
							if got := fast.plan(nx, ny, nz).kern; got != k.want {
								t.Fatalf("dispatched %v, want %v", got, k.want)
							}
							if got := gen.plan(nx, ny, nz).kern; got != kernGeneric {
								t.Fatalf("ForceGeneric plan dispatched %v", got)
							}

							src := grid.New3D[T](nx, ny, nz)
							src.FillFunc(func(x, y, z int) T { return T(rng.Float64()*200 - 100) })
							dstFast := grid.New3D[T](nx, ny, nz)
							dstGen := grid.New3D[T](nx, ny, nz)
							var hook InjectFunc[T]
							if withHook {
								hook = func(x, y, z int, v T) T {
									if x == nx/2 && y == ny/2 && z == nz/2 {
										return num.FlipBit(v, 9)
									}
									return v
								}
							}
							for z := 0; z < nz; z++ {
								bFast := make([]T, ny)
								bGen := make([]T, ny)
								fast.SweepLayer(dstFast, src, z, bFast, hook)
								gen.SweepLayer(dstGen, src, z, bGen, hook)
								for y := 0; y < ny; y++ {
									if bFast[y] != bGen[y] {
										t.Fatalf("z=%d b[%d]: fast %v != generic %v", z, y, bFast[y], bGen[y])
									}
								}
							}
							if dstFast.MaxAbsDiff(dstGen) != 0 {
								t.Fatal("specialized 3-D sweep differs from generic")
							}
						})
					}
				}
			}
		}
	}
}

func TestKernelPin3DFloat32(t *testing.T) { pinKernels3D[float32](t, "float32") }
func TestKernelPin3DFloat64(t *testing.T) { pinKernels3D[float64](t, "float64") }

// TestKernelPinRect pins SweepRectFused's specialized interior against the
// generic one over an interior tile, a border-straddling tile and the full
// domain — the blocked deployment's unit.
func TestKernelPinRect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	st := NinePoint([9]float64{0.01, -0.02, 0.03, 0.05, 0.81, -0.07, 0.11, 0.13, -0.17})
	for _, bc := range pinBoundaries {
		for _, rect := range [][4]int{{0, 0, 16, 12}, {3, 2, 9, 11}, {0, 5, 4, 12}} {
			fast := &Op2D[float64]{St: st, BC: bc, BCValue: 1.25}
			gen := &Op2D[float64]{St: st, BC: bc, BCValue: 1.25, ForceGeneric: true}
			src := grid.New[float64](16, 12)
			fillRandom2D(src, rng)
			dstFast := grid.New[float64](16, 12)
			dstGen := grid.New[float64](16, 12)
			x0, y0, x1, y1 := rect[0], rect[1], rect[2], rect[3]
			bFast := make([]float64, y1-y0)
			bGen := make([]float64, y1-y0)
			fast.SweepRectFused(dstFast, src, x0, y0, x1, y1, bFast, nil)
			gen.SweepRectFused(dstGen, src, x0, y0, x1, y1, bGen, nil)
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if dstFast.At(x, y) != dstGen.At(x, y) {
						t.Fatalf("bc=%s rect=%v (%d,%d): fast %v != generic %v", bc, rect, x, y, dstFast.At(x, y), dstGen.At(x, y))
					}
				}
				if bFast[y-y0] != bGen[y-y0] {
					t.Fatalf("bc=%s rect=%v b[%d] differs", bc, rect, y-y0)
				}
			}
		}
	}
}

// TestPlanInvalidatedOnShapeChange reuses one operator across two domain
// shapes; the cached plan must be rebuilt, not reused with stale offsets.
func TestPlanInvalidatedOnShapeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	for _, n := range []int{16, 8, 12} {
		src := grid.New[float64](n, n)
		fillRandom2D(src, rng)
		got := grid.New[float64](n, n)
		op.Sweep(got, src)

		fresh := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
		want := grid.New[float64](n, n)
		fresh.Sweep(want, src)
		if got.MaxAbsDiff(want) != 0 {
			t.Fatalf("n=%d: plan reuse across shapes corrupted the sweep", n)
		}
	}
}

// TestPlanInvalidatedOnWeightEdit mutates a stencil weight in place between
// sweeps; the plan cache validates points, so the second sweep must see the
// new weight.
func TestPlanInvalidatedOnWeightEdit(t *testing.T) {
	src := grid.New[float64](8, 8)
	src.Fill(1)
	dst := grid.New[float64](8, 8)
	st := Laplace5(0.2)
	op := &Op2D[float64]{St: st, BC: grid.Clamp}
	op.Sweep(dst, src)
	st.Points[0].W = 0.5 // centre weight: 1-4*0.2 = 0.2 -> 0.5
	op.Sweep(dst, src)
	// A fresh operator built from the already-edited stencil never saw the
	// old weight; a stale plan would keep sweeping with it.
	fresh := &Op2D[float64]{St: st, BC: grid.Clamp}
	want := grid.New[float64](8, 8)
	fresh.Sweep(want, src)
	if dst.MaxAbsDiff(want) != 0 {
		t.Fatalf("stale plan after weight edit: got %v want %v", dst.At(4, 4), want.At(4, 4))
	}
}

// TestPlanConcurrentFirstUse hammers a cold operator from many goroutines —
// the plan cache must be race-free (run under -race) and every goroutine's
// result identical.
func TestPlanConcurrentFirstUse(t *testing.T) {
	const n, workers = 32, 8
	rng := rand.New(rand.NewSource(23))
	src := grid.New[float64](n, n)
	fillRandom2D(src, rng)
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	want := grid.New[float64](n, n)
	(&Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}).Sweep(want, src)

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := grid.New[float64](n, n)
			op.Sweep(dst, src)
			if dst.MaxAbsDiff(want) != 0 {
				errs <- "concurrent first-use sweep differs"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
