package stencil

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// InjectFunc mutates a freshly computed point value before it is stored into
// the destination grid — exactly the paper's fault-injection site ("after
// the stencil point ... has been updated and before it is stored"). The
// fused checksum accumulates the returned (possibly corrupted) value, so the
// direct checksum stays consistent with the corrupted domain while the
// interpolated checksum reflects the clean computation; their mismatch is
// what detection keys on.
type InjectFunc[T num.Float] func(x, y, z int, v T) T

// InjectSource yields the injection hook for each iteration — the pluggable
// fault seam a protector consults when it owns its own stepping (Step with
// no arguments). Returning a nil InjectFunc for an iteration keeps that
// sweep entirely hook-free on the fast path. fault.Injector is the standard
// implementation; tests and campaigns may supply their own.
type InjectSource[T num.Float] interface {
	HookFor(iter int) InjectFunc[T]
}

// HookAt resolves an injection source to the hook for one iteration; a nil
// source yields a nil hook, keeping the sweep's fast path branch-free.
func HookAt[T num.Float](src InjectSource[T], iter int) InjectFunc[T] {
	if src == nil {
		return nil
	}
	return src.HookFor(iter)
}

// Op2D binds a stencil to the context a sweep needs: the boundary
// condition, the optional Constant-boundary ghost value, and the optional
// per-point constant term C from Equation (1).
type Op2D[T num.Float] struct {
	St      *Stencil[T]
	BC      grid.Boundary
	BCValue T             // ghost value when BC == grid.Constant
	C       *grid.Grid[T] // optional constant field; nil means zero

	// ForceGeneric disables specialized-kernel dispatch, pinning every
	// sweep to the dynamic k-point loop. Specialization is bit-identical
	// to the generic loop (kernels_test.go), so this is only a baseline
	// knob for benchmarks and the pin tests themselves.
	ForceGeneric bool

	// planc caches the compiled sweep plan (offsets, weights, interior
	// bounds, kernel choice) for the last-seen shape; see plan.go.
	planc planCache[plan2d[T]]
}

// Validate checks the operator against a domain of the given shape.
func (op *Op2D[T]) Validate(nx, ny int) error {
	if err := op.St.Validate(); err != nil {
		return err
	}
	if op.St.Is3D() {
		return opErrorf("stencil %q: 3-D stencil used with a 2-D sweep", op.St.Name)
	}
	if !op.BC.Valid() {
		return opErrorf("stencil %q: invalid boundary condition", op.St.Name)
	}
	if rx, ry := op.St.RadiusX(), op.St.RadiusY(); rx >= nx || ry >= ny {
		return opErrorf("stencil %q: radius %d/%d exceeds domain %dx%d", op.St.Name, rx, ry, nx, ny)
	}
	if op.C != nil && (op.C.Nx() != nx || op.C.Ny() != ny) {
		return opErrorf("stencil %q: constant field %dx%d does not match domain %dx%d",
			op.St.Name, op.C.Nx(), op.C.Ny(), nx, ny)
	}
	return nil
}

// Sweep computes one full iteration: dst(x,y) = C(x,y) + Σ w·src̃(x+dx,y+dy)
// for every point of the domain. dst and src must be distinct grids of the
// same shape.
func (op *Op2D[T]) Sweep(dst, src *grid.Grid[T]) {
	op.SweepRange(dst, src, 0, src.Ny(), nil, nil)
}

// SweepFused computes one full iteration and simultaneously accumulates the
// column checksum vector b (b[y] = Σ_x dst(x,y), len ny) — the paper's
// Figure 2 fused loop. b may be nil to skip checksum accumulation.
func (op *Op2D[T]) SweepFused(dst, src *grid.Grid[T], b []T) {
	op.SweepRange(dst, src, 0, src.Ny(), b, nil)
}

// SweepRange sweeps rows y0 <= y < y1 only, accumulating b[y] for those
// rows when b is non-nil and applying hook to each freshly computed value
// when hook is non-nil. It is the primitive both the parallel engine and
// the fault injector build on; distinct row ranges touch disjoint rows of
// dst and disjoint entries of b, so concurrent calls need no locking.
//
// The interior of each row runs through the operator's compiled plan
// (plan.go): precomputed offsets/weights — no per-call allocation — and a
// hand-unrolled kernel when the stencil matches one of the canonical
// shapes. A non-nil hook pins the interior to the generic loop, which
// applies the same operations in the same order, so the hook path stays
// bit-identical to the hook-free one.
func (op *Op2D[T]) SweepRange(dst, src *grid.Grid[T], y0, y1 int, b []T, hook InjectFunc[T]) {
	nx, ny := src.Nx(), src.Ny()
	if dst == src {
		panic("stencil: sweep destination aliases source")
	}
	if !dst.SameShape(src) {
		panic("stencil: sweep shape mismatch")
	}
	pl := op.plan(nx, ny)
	bg := grid.BoundedGrid[T]{G: src, Cond: op.BC, ConstVal: op.BCValue}
	offs, ws := pl.offs, pl.ws
	rx, ry := pl.rx, pl.ry
	srcD, dstD := src.Data(), dst.Data()
	var cD []T
	if op.C != nil {
		cD = op.C.Data()
	}
	for y := y0; y < y1; y++ {
		var acc T
		base := y * nx
		yInterior := y >= ry && y < ny-ry
		xlo, xhi := rx, nx-rx
		if !yInterior {
			// Every point of a border row needs ghost resolution in
			// y; take the slow path across the whole row.
			xlo, xhi = nx, nx
		}
		for x := 0; x < min(xlo, nx); x++ {
			v := op.pointSlow(bg, cD, x, y, nx)
			if hook != nil {
				v = hook(x, y, 0, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if hook == nil {
			acc = pl.sweepRow(dstD, srcD, cD, base, xlo, xhi, acc)
		} else {
			acc = genericRowHook(dstD, srcD, cD, offs, ws, base, xlo, xhi, y, 0, hook, acc)
		}
		for x := max(xhi, min(xlo, nx)); x < nx; x++ {
			v := op.pointSlow(bg, cD, x, y, nx)
			if hook != nil {
				v = hook(x, y, 0, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if b != nil {
			b[y] = acc
		}
	}
}

// pointSlow evaluates one point with full boundary resolution.
func (op *Op2D[T]) pointSlow(bg grid.BoundedGrid[T], cD []T, x, y, nx int) T {
	var v T
	if cD != nil {
		v = cD[x+y*nx]
	}
	for _, p := range op.St.Points {
		v += p.W * bg.At(x+p.DX, y+p.DY)
	}
	return v
}

// ChecksumB computes the column checksum vector of g directly:
// b[y] = Σ_x g(x,y). It is the unfused reference the ablation bench
// compares the fused loop against.
func ChecksumB[T num.Float](g *grid.Grid[T], b []T) {
	nx, ny := g.Nx(), g.Ny()
	d := g.Data()
	for y := 0; y < ny; y++ {
		var acc T
		row := d[y*nx : (y+1)*nx]
		for _, v := range row {
			acc += v
		}
		b[y] = acc
	}
}

// ChecksumA computes the row checksum vector of g directly:
// a[x] = Σ_y g(x,y).
func ChecksumA[T num.Float](g *grid.Grid[T], a []T) {
	nx, ny := g.Nx(), g.Ny()
	d := g.Data()
	for x := range a[:nx] {
		a[x] = 0
	}
	for y := 0; y < ny; y++ {
		row := d[y*nx : (y+1)*nx]
		for x, v := range row {
			a[x] += v
		}
	}
}
