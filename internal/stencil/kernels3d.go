package stencil

import "stencilabft/internal/num"

// star7Row applies the 3-D seven-point star (centre, west, east, north,
// south, below, above — the SevenPoint3D order) with weights kw[0..6] over
// the interior segment [xlo, xhi) of the row at flat index base (which
// already includes the z-plane offset). Same bit-identity contract as the
// 2-D kernels in kernels2d.go.
func star7Row[T num.Float](dst, src, c []T, base, xlo, xhi, nx, plane int, kw *[9]T, acc T) T {
	wc, ww, we, wn, ws, wb, wa := kw[0], kw[1], kw[2], kw[3], kw[4], kw[5], kw[6]
	if c != nil {
		for x := xlo; x < xhi; x++ {
			idx := base + x
			v := c[idx]
			v += wc * src[idx]
			v += ww * src[idx-1]
			v += we * src[idx+1]
			v += wn * src[idx-nx]
			v += ws * src[idx+nx]
			v += wb * src[idx-plane]
			v += wa * src[idx+plane]
			dst[idx] = v
			acc += v
		}
		return acc
	}
	for x := xlo; x < xhi; x++ {
		idx := base + x
		var v T // start from zero like the generic loop: 0 + (-0.0) is +0.0
		v += wc * src[idx]
		v += ww * src[idx-1]
		v += we * src[idx+1]
		v += wn * src[idx-nx]
		v += ws * src[idx+nx]
		v += wb * src[idx-plane]
		v += wa * src[idx+plane]
		dst[idx] = v
		acc += v
	}
	return acc
}
