package stencil

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolPersistentWorkers pins the pool's lifecycle: the workers are
// spawned once on first use (at most Workers-1 of them — the caller runs
// the final chunk) and reused across calls, and Close releases them.
func TestPoolPersistentWorkers(t *testing.T) {
	const workers = 4
	before := runtime.NumGoroutine()
	p := &Pool{Workers: workers}
	for call := 0; call < 50; call++ {
		var n int64
		p.ForEachChunk(64, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
		if n != 64 {
			t.Fatalf("call %d covered %d of 64", call, n)
		}
	}
	during := runtime.NumGoroutine()
	if spawned := during - before; spawned > workers-1 {
		t.Fatalf("pool spawned %d goroutines over 50 calls, want at most %d persistent workers", spawned, workers-1)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("after Close: %d goroutines, was %d before first use", after, before)
	}
}

// TestPoolCloseUnused verifies Close on a never-used pool is a no-op.
func TestPoolCloseUnused(t *testing.T) {
	p := &Pool{Workers: 8}
	p.Close()
	p.Close() // double Close must not panic either
}

// TestPoolUseAfterClosePanics verifies a parallel call on a closed pool
// fails fast with a panic instead of hanging on a dead job channel.
func TestPoolUseAfterClosePanics(t *testing.T) {
	p := &Pool{Workers: 4}
	p.ForEachChunk(8, func(lo, hi int) {})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("ForEachChunk after Close did not panic")
		}
	}()
	p.ForEachChunk(8, func(lo, hi int) {})
}

// TestPoolSharedConcurrently drives one pool from several goroutines at
// once — the sharing pattern of dist ranks — and checks every call's
// indices are each covered exactly once.
func TestPoolSharedConcurrently(t *testing.T) {
	p := &Pool{Workers: 4}
	defer p.Close()
	const callers, n = 6, 97
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				covered := make([]int32, n)
				p.ForEachChunk(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&covered[i], 1)
					}
				})
				for i := range covered {
					if covered[i] != 1 {
						errs <- "index covered wrong number of times"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPoolCallerRunsFinalChunk verifies the calling goroutine executes the
// final chunk itself: with every persistent worker wedged, a call whose
// chunk count fits in the job buffer still makes progress on the caller's
// own chunk before blocking on the others.
func TestPoolCallerRunsFinalChunk(t *testing.T) {
	p := &Pool{Workers: 2} // one persistent worker + the caller
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	callerRan := make(chan int, 1)
	go func() {
		p.ForEachChunk(2, func(lo, hi int) {
			if lo == 1 { // final chunk: must run on the caller, even while the worker is wedged
				callerRan <- lo
			} else { // chunk [0,1) goes to the lone persistent worker
				close(started)
				<-block
			}
		})
	}()
	<-started
	select {
	case <-callerRan:
		// the caller made progress while the lone worker was blocked
	case <-time.After(2 * time.Second):
		t.Fatal("final chunk did not run while the persistent worker was blocked")
	}
	close(block)
}
