package stencil

import "stencilabft/internal/num"

// Hand-unrolled interior row kernels for the 2-D stencil shapes every
// benchmark and CLI actually runs. Each kernel computes dst over the
// interior segment [xlo, xhi) of the row starting at flat index base and
// threads the fused-checksum accumulator through (acc += value per point,
// in x order), so its results — domain values AND checksums — are
// bit-identical to the generic k-point loop for a stencil declared in the
// same canonical point order (see the pin test in kernels_test.go).
//
// Within a point, additions happen weight-by-weight in canonical order,
// exactly the sequence the generic loop performs for the canonical
// constructors; no reassociation, no explicit FMA. The constant field c is
// handled by a hoisted branch: two loop bodies instead of a per-point nil
// check.

// genericRow is the dynamic k-point interior loop over the plan's
// precomputed offsets and weights — the fallback for arbitrary stencils,
// and the body the specialized kernels must match bit for bit.
func genericRow[T num.Float](dst, src, c []T, offs []int, ws []T, base, xlo, xhi int, acc T) T {
	k := len(offs)
	for x := xlo; x < xhi; x++ {
		idx := base + x
		var v T
		if c != nil {
			v = c[idx]
		}
		for i := 0; i < k; i++ {
			v += ws[i] * src[idx+offs[i]]
		}
		dst[idx] = v
		acc += v
	}
	return acc
}

// genericRowHook is genericRow with the fault-injection hook applied to
// each value before it is stored and accumulated. It is the one hook-path
// interior loop shared by SweepRange, SweepLayer and SweepRectFused, kept
// next to genericRow so the pairing — same operations, same order, so the
// hook path stays bit-identical to the hook-free path — is structural
// rather than three hand-synchronised copies.
func genericRowHook[T num.Float](dst, src, c []T, offs []int, ws []T, base, xlo, xhi, y, z int, hook InjectFunc[T], acc T) T {
	k := len(offs)
	for x := xlo; x < xhi; x++ {
		idx := base + x
		var v T
		if c != nil {
			v = c[idx]
		}
		for i := 0; i < k; i++ {
			v += ws[i] * src[idx+offs[i]]
		}
		v = hook(x, y, z, v)
		dst[idx] = v
		acc += v
	}
	return acc
}

// star5Row applies the five-point star (centre, west, east, north, south)
// with weights kw[0..4] in that order.
func star5Row[T num.Float](dst, src, c []T, base, xlo, xhi, nx int, kw *[9]T, acc T) T {
	wc, ww, we, wn, ws := kw[0], kw[1], kw[2], kw[3], kw[4]
	if c != nil {
		for x := xlo; x < xhi; x++ {
			idx := base + x
			v := c[idx]
			v += wc * src[idx]
			v += ww * src[idx-1]
			v += we * src[idx+1]
			v += wn * src[idx-nx]
			v += ws * src[idx+nx]
			dst[idx] = v
			acc += v
		}
		return acc
	}
	for x := xlo; x < xhi; x++ {
		idx := base + x
		var v T // start from zero like the generic loop: 0 + (-0.0) is +0.0
		v += wc * src[idx]
		v += ww * src[idx-1]
		v += we * src[idx+1]
		v += wn * src[idx-nx]
		v += ws * src[idx+nx]
		dst[idx] = v
		acc += v
	}
	return acc
}

// box9Row applies the full 3x3 box in NinePoint's row-major order
// (dy = -1..1 outer, dx = -1..1 inner) with weights kw[0..8].
func box9Row[T num.Float](dst, src, c []T, base, xlo, xhi, nx int, kw *[9]T, acc T) T {
	w0, w1, w2 := kw[0], kw[1], kw[2]
	w3, w4, w5 := kw[3], kw[4], kw[5]
	w6, w7, w8 := kw[6], kw[7], kw[8]
	if c != nil {
		for x := xlo; x < xhi; x++ {
			idx := base + x
			up, dn := idx-nx, idx+nx
			v := c[idx]
			v += w0 * src[up-1]
			v += w1 * src[up]
			v += w2 * src[up+1]
			v += w3 * src[idx-1]
			v += w4 * src[idx]
			v += w5 * src[idx+1]
			v += w6 * src[dn-1]
			v += w7 * src[dn]
			v += w8 * src[dn+1]
			dst[idx] = v
			acc += v
		}
		return acc
	}
	for x := xlo; x < xhi; x++ {
		idx := base + x
		up, dn := idx-nx, idx+nx
		var v T // start from zero like the generic loop: 0 + (-0.0) is +0.0
		v += w0 * src[up-1]
		v += w1 * src[up]
		v += w2 * src[up+1]
		v += w3 * src[idx-1]
		v += w4 * src[idx]
		v += w5 * src[idx+1]
		v += w6 * src[dn-1]
		v += w7 * src[dn]
		v += w8 * src[dn+1]
		dst[idx] = v
		acc += v
	}
	return acc
}
