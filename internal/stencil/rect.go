package stencil

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// SweepRectFused sweeps the rectangle [x0,x1) x [y0,y1) of the domain only,
// accumulating the block's partial column checksums: b[j] = Σ_{x in
// [x0,x1)} dst(x, y0+j) for j in [0, y1-y0). It is the per-block analogue
// of SweepFused — the unit the paper's tiled deployment runs per chunk.
// b may be nil; hook, when non-nil, receives domain coordinates.
//
// Disjoint rectangles touch disjoint dst cells and disjoint b slices, so
// concurrent calls over a block partition need no locking.
func (op *Op2D[T]) SweepRectFused(dst, src *grid.Grid[T], x0, y0, x1, y1 int, b []T, hook InjectFunc[T]) {
	nx, ny := src.Nx(), src.Ny()
	if dst == src {
		panic("stencil: sweep destination aliases source")
	}
	if !dst.SameShape(src) {
		panic("stencil: sweep shape mismatch")
	}
	if x0 < 0 || y0 < 0 || x1 > nx || y1 > ny || x0 > x1 || y0 > y1 {
		panic("stencil: SweepRectFused rectangle out of range")
	}
	pl := op.plan(nx, ny)
	bg := grid.BoundedGrid[T]{G: src, Cond: op.BC, ConstVal: op.BCValue}
	offs, ws := pl.offs, pl.ws
	rx, ry := pl.rx, pl.ry
	srcD, dstD := src.Data(), dst.Data()
	var cD []T
	if op.C != nil {
		cD = op.C.Data()
	}
	for y := y0; y < y1; y++ {
		var acc T
		base := y * nx
		yInterior := y >= ry && y < ny-ry
		// Fast-path x range: the intersection of the rectangle with the
		// domain interior.
		xlo, xhi := max(x0, rx), min(x1, nx-rx)
		if !yInterior || xhi < xlo {
			xlo, xhi = x1, x1
		}
		for x := x0; x < min(xlo, x1); x++ {
			v := op.pointSlow(bg, cD, x, y, nx)
			if hook != nil {
				v = hook(x, y, 0, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if hook == nil {
			acc = pl.sweepRow(dstD, srcD, cD, base, xlo, xhi, acc)
		} else {
			acc = genericRowHook(dstD, srcD, cD, offs, ws, base, xlo, xhi, y, 0, hook, acc)
		}
		for x := max(xhi, min(xlo, x1)); x < x1; x++ {
			v := op.pointSlow(bg, cD, x, y, nx)
			if hook != nil {
				v = hook(x, y, 0, v)
			}
			dstD[base+x] = v
			acc += v
		}
		if b != nil {
			b[y-y0] = acc
		}
	}
}

// ChecksumBRect computes the block's partial column checksums directly:
// b[j] = Σ_{x in [x0,x1)} g(x, y0+j).
func ChecksumBRect[T num.Float](g *grid.Grid[T], x0, y0, x1, y1 int, b []T) {
	for y := y0; y < y1; y++ {
		var acc T
		for _, v := range g.Row(y)[x0:x1] {
			acc += v
		}
		b[y-y0] = acc
	}
}

// ChecksumARect computes the block's partial row checksums directly:
// a[i] = Σ_{y in [y0,y1)} g(x0+i, y).
func ChecksumARect[T num.Float](g *grid.Grid[T], x0, y0, x1, y1 int, a []T) {
	for i := range a[:x1-x0] {
		a[i] = 0
	}
	for y := y0; y < y1; y++ {
		row := g.Row(y)[x0:x1]
		for i, v := range row {
			a[i] += v
		}
	}
}
