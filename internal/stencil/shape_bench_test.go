package stencil

import (
	"testing"

	"stencilabft/internal/grid"
)

// BenchmarkSweepShape compares equal-area sweeps over the two rank-tile
// shapes of the n=512 four-rank topologies: 4x1 bands sweep 512-wide rows,
// 2x2 tiles sweep 256-wide rows (twice as many row calls).
func BenchmarkSweepShape(b *testing.B) {
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	for _, sh := range []struct {
		name           string
		nx, ny, w, h   int
		x0, y0, x1, y1 int
	}{
		{"band512x128", 514, 130, 512, 128, 1, 1, 513, 129},
		{"tile256x256", 258, 258, 256, 256, 1, 1, 257, 257},
	} {
		src := grid.New[float64](sh.nx, sh.ny)
		dst := grid.New[float64](sh.nx, sh.ny)
		src.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
		bsum := make([]float64, sh.y1-sh.y0)
		b.Run(sh.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.SweepRectFused(dst, src, sh.x0, sh.y0, sh.x1, sh.y1, bsum, nil)
			}
		})
	}
}
