package stencil

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

func TestValidate(t *testing.T) {
	ok := FivePoint[float64](1, 1, 1, 1, 1)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Stencil[float64]{Name: "empty"}
	if empty.Validate() == nil {
		t.Fatal("empty stencil validated")
	}
	dup := &Stencil[float64]{Name: "dup", Points: []Point[float64]{{0, 0, 0, 1}, {0, 0, 0, 2}}}
	if dup.Validate() == nil {
		t.Fatal("duplicate offsets validated")
	}
	zw := &Stencil[float64]{Name: "zw", Points: []Point[float64]{{1, 0, 0, 0}}}
	if zw.Validate() == nil {
		t.Fatal("zero weight validated")
	}
}

func TestRadiiAndSize(t *testing.T) {
	st := &Stencil[float64]{Points: []Point[float64]{
		{-2, 0, 0, 1}, {0, 3, 0, 1}, {0, 0, -1, 1},
	}}
	if st.RadiusX() != 2 || st.RadiusY() != 3 || st.RadiusZ() != 1 {
		t.Fatalf("radii %d/%d/%d", st.RadiusX(), st.RadiusY(), st.RadiusZ())
	}
	if st.Size() != 3 {
		t.Fatal("size wrong")
	}
	if !st.Is3D() {
		t.Fatal("Is3D wrong")
	}
	if FivePoint[float32](1, 1, 1, 1, 1).Is3D() {
		t.Fatal("2-D stencil reported 3-D")
	}
}

func TestBuilders(t *testing.T) {
	if got := Jacobi4[float64]().WeightSum(); got != 1 {
		t.Fatalf("Jacobi4 weight sum %g", got)
	}
	if got := Laplace5(0.25).WeightSum(); num.Abs(got-1) > 1e-15 {
		t.Fatalf("Laplace5 weight sum %g", got)
	}
	if got := BoxBlur[float64]().WeightSum(); num.Abs(got-1) > 1e-12 {
		t.Fatalf("BoxBlur weight sum %g", got)
	}
	if n := SevenPoint3D[float32](1, 1, 1, 1, 1, 1, 1).Size(); n != 7 {
		t.Fatalf("SevenPoint3D size %d", n)
	}
	if got := Advect2D(0.3, 0.2).WeightSum(); num.Abs(got-1) > 1e-15 {
		t.Fatalf("Advect2D weight sum %g", got)
	}
	var w [9]float64
	w[4] = 1 // centre only
	if n := NinePoint(w).Size(); n != 1 {
		t.Fatalf("NinePoint skips zero weights: size %d", n)
	}
}

func TestSortedDeterministic(t *testing.T) {
	st := &Stencil[float64]{Points: []Point[float64]{
		{1, 0, 0, 1}, {-1, 0, 0, 2}, {0, -1, 0, 3},
	}}
	s := st.Sorted()
	if s.Points[0].DY != -1 || s.Points[1].DX != -1 || s.Points[2].DX != 1 {
		t.Fatalf("sorted order wrong: %+v", s.Points)
	}
	// Original untouched.
	if st.Points[0].DX != 1 {
		t.Fatal("Sorted mutated the receiver")
	}
}

// naiveSweep is an obviously correct reference implementation the fast
// engine is validated against.
func naiveSweep(op *Op2D[float64], dst, src *grid.Grid[float64]) {
	bg := grid.BoundedGrid[float64]{G: src, Cond: op.BC, ConstVal: op.BCValue}
	for y := 0; y < src.Ny(); y++ {
		for x := 0; x < src.Nx(); x++ {
			var v float64
			if op.C != nil {
				v = op.C.At(x, y)
			}
			for _, p := range op.St.Points {
				v += p.W * bg.At(x+p.DX, y+p.DY)
			}
			dst.Set(x, y, v)
		}
	}
}

func TestSweepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		nx := 3 + rng.Intn(14)
		ny := 3 + rng.Intn(14)
		k := 1 + rng.Intn(7)
		st := &Stencil[float64]{Name: "rand"}
		seen := map[[2]int]bool{}
		for len(st.Points) < k {
			dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
			if seen[[2]int{dx, dy}] || dx >= nx || -dx >= nx || dy >= ny || -dy >= ny {
				continue
			}
			seen[[2]int{dx, dy}] = true
			st.Points = append(st.Points, Point[float64]{dx, dy, 0, rng.Float64()*2 - 1})
		}
		bcs := []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero}
		op := &Op2D[float64]{St: st, BC: bcs[rng.Intn(len(bcs))], BCValue: rng.Float64()}
		if rng.Intn(2) == 0 {
			c := grid.New[float64](nx, ny)
			c.FillFunc(func(x, y int) float64 { return rng.Float64() })
			op.C = c
		}
		if op.Validate(nx, ny) != nil {
			continue
		}
		src := grid.New[float64](nx, ny)
		src.FillFunc(func(x, y int) float64 { return rng.Float64()*4 - 2 })
		want := grid.New[float64](nx, ny)
		got := grid.New[float64](nx, ny)
		naiveSweep(op, want, src)
		op.Sweep(got, src)
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d (%s, bc=%s, %dx%d): max diff %g", trial, st, op.BC, nx, ny, d)
		}
	}
}

func TestSweepFusedChecksumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nx, ny := 17, 13
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	src := grid.New[float64](nx, ny)
	src.FillFunc(func(x, y int) float64 { return rng.Float64() })
	dst := grid.New[float64](nx, ny)
	fused := make([]float64, ny)
	op.SweepFused(dst, src, fused)
	direct := make([]float64, ny)
	ChecksumB(dst, direct)
	for y := range fused {
		if fused[y] != direct[y] {
			t.Fatalf("fused B[%d]=%.17g direct %.17g", y, fused[y], direct[y])
		}
	}
}

func TestChecksumAB(t *testing.T) {
	g := grid.New[float64](3, 2)
	g.FillFunc(func(x, y int) float64 { return float64(x + 10*y) })
	a := make([]float64, 3)
	b := make([]float64, 2)
	ChecksumA(g, a)
	ChecksumB(g, b)
	// Row y=0: 0,1,2; row y=1: 10,11,12.
	if b[0] != 3 || b[1] != 33 {
		t.Fatalf("B = %v", b)
	}
	if a[0] != 10 || a[1] != 12 || a[2] != 14 {
		t.Fatalf("A = %v", a)
	}
}

func TestSweepPanicsOnAlias(t *testing.T) {
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	g := grid.New[float64](4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased sweep did not panic")
		}
	}()
	op.Sweep(g, g)
}

func TestValidateRejects3DInOp2D(t *testing.T) {
	op := &Op2D[float64]{St: SevenPoint3D[float64](1, 1, 1, 1, 1, 1, 1), BC: grid.Clamp}
	if op.Validate(8, 8) == nil {
		t.Fatal("3-D stencil accepted by 2-D op")
	}
}

func TestValidateRejectsOversizedRadius(t *testing.T) {
	st := &Stencil[float64]{Points: []Point[float64]{{5, 0, 0, 1}}}
	op := &Op2D[float64]{St: st, BC: grid.Clamp}
	if op.Validate(4, 4) == nil {
		t.Fatal("radius >= nx accepted")
	}
}

func TestSweepParallelMatchesSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 4+r.Intn(20), 4+r.Intn(20)
		op := &Op2D[float64]{St: Laplace5(0.1 + 0.1*r.Float64()), BC: grid.Clamp}
		src := grid.New[float64](nx, ny)
		src.FillFunc(func(x, y int) float64 { return r.Float64() })
		seq := grid.New[float64](nx, ny)
		par := grid.New[float64](nx, ny)
		bSeq := make([]float64, ny)
		bPar := make([]float64, ny)
		op.SweepFused(seq, src, bSeq)
		pool := &Pool{Workers: 1 + int(wRaw%8)}
		op.SweepParallel(pool, par, src, bPar)
		if seq.MaxAbsDiff(par) != 0 {
			return false
		}
		for y := range bSeq {
			if bSeq[y] != bPar[y] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSweep3DLayerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny, nz := 8, 7, 5
	st := SevenPoint3D(0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Zero} {
		op := &Op3D[float64]{St: st, BC: bc}
		src := grid.New3D[float64](nx, ny, nz)
		src.FillFunc(func(x, y, z int) float64 { return rng.Float64() })
		got := grid.New3D[float64](nx, ny, nz)
		op.Sweep(got, src)

		bg := grid.BoundedGrid3D[float64]{G: src, Cond: bc}
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					var v float64
					for _, p := range st.Points {
						v += p.W * bg.At(x+p.DX, y+p.DY, z+p.DZ)
					}
					if num.Abs(got.At(x, y, z)-v) != 0 {
						t.Fatalf("bc=%s (%d,%d,%d): got %g want %g", bc, x, y, z, got.At(x, y, z), v)
					}
				}
			}
		}
	}
}

func TestSweep3DParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny, nz := 10, 9, 6
	op := &Op3D[float64]{St: SevenPoint3D(0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15), BC: grid.Clamp}
	src := grid.New3D[float64](nx, ny, nz)
	src.FillFunc(func(x, y, z int) float64 { return rng.Float64() })
	seq := grid.New3D[float64](nx, ny, nz)
	par := grid.New3D[float64](nx, ny, nz)
	bSeq := make([][]float64, nz)
	bPar := make([][]float64, nz)
	for z := range bSeq {
		bSeq[z] = make([]float64, ny)
		bPar[z] = make([]float64, ny)
	}
	for z := 0; z < nz; z++ {
		op.SweepLayer(seq, src, z, bSeq[z], nil)
	}
	op.SweepParallel(&Pool{Workers: 4}, par, src, bPar)
	if seq.MaxAbsDiff(par) != 0 {
		t.Fatal("3-D parallel sweep differs")
	}
	for z := range bSeq {
		for y := range bSeq[z] {
			if bSeq[z][y] != bPar[z][y] {
				t.Fatalf("layer %d B[%d] differs", z, y)
			}
		}
	}
}

func TestInjectHookAppliedBeforeStoreAndChecksum(t *testing.T) {
	nx, ny := 5, 4
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	src := grid.New[float64](nx, ny)
	src.Fill(1)
	dst := grid.New[float64](nx, ny)
	b := make([]float64, ny)
	hook := func(x, y, z int, v float64) float64 {
		if x == 2 && y == 1 {
			return v + 100
		}
		return v
	}
	op.SweepRange(dst, src, 0, ny, b, hook)
	if dst.At(2, 1) != 1+100 {
		t.Fatalf("hook not applied to stored value: %g", dst.At(2, 1))
	}
	// The fused checksum must include the corrupted value (the paper's
	// injection semantics: corrupt before store, checksum reads the
	// stored value).
	direct := make([]float64, ny)
	ChecksumB(dst, direct)
	if b[1] != direct[1] {
		t.Fatalf("fused checksum %g does not match corrupted row sum %g", b[1], direct[1])
	}
}

func TestPoolForEachChunkCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		p := &Pool{Workers: workers}
		covered := make([]int32, 57)
		var mu sync.Mutex
		p.ForEachChunk(len(covered), func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestLayerOpGroups(t *testing.T) {
	op := &Op3D[float64]{St: SevenPoint3D(0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15), BC: grid.Clamp}
	groups := op.LayerOp()
	if len(groups[0]) != 5 || len(groups[-1]) != 1 || len(groups[1]) != 1 {
		t.Fatalf("layer groups wrong: %v", groups)
	}
}
