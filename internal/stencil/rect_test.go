package stencil

import (
	"math/rand"
	"testing"

	"stencilabft/internal/grid"
)

// TestSweepRectFusedMatchesFullSweep: tiling the domain with rectangles and
// sweeping each must reproduce the full sweep bitwise, and the per-block
// fused checksums must equal the direct partial sums.
func TestSweepRectFusedMatchesFullSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nx, ny := 10+rng.Intn(20), 10+rng.Intn(20)
		bcs := []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Zero}
		op := &Op2D[float64]{St: Laplace5(0.15 + 0.1*rng.Float64()), BC: bcs[rng.Intn(len(bcs))]}
		src := grid.New[float64](nx, ny)
		src.FillFunc(func(x, y int) float64 { return rng.Float64() * 10 })

		want := grid.New[float64](nx, ny)
		op.Sweep(want, src)

		got := grid.New[float64](nx, ny)
		bw, bh := 1+rng.Intn(nx), 1+rng.Intn(ny)
		for y0 := 0; y0 < ny; y0 += bh {
			for x0 := 0; x0 < nx; x0 += bw {
				x1, y1 := min(x0+bw, nx), min(y0+bh, ny)
				b := make([]float64, y1-y0)
				op.SweepRectFused(got, src, x0, y0, x1, y1, b, nil)
				direct := make([]float64, y1-y0)
				ChecksumBRect(got, x0, y0, x1, y1, direct)
				for j := range b {
					if b[j] != direct[j] {
						t.Fatalf("trial %d: block (%d,%d) fused b[%d]=%.17g direct %.17g",
							trial, x0, y0, j, b[j], direct[j])
					}
				}
			}
		}
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: tiled sweep diverged by %g (blocks %dx%d)", trial, d, bw, bh)
		}
	}
}

func TestSweepRectFusedHook(t *testing.T) {
	nx, ny := 8, 8
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	src := grid.New[float64](nx, ny)
	src.Fill(1)
	dst := grid.New[float64](nx, ny)
	b := make([]float64, 4)
	hit := false
	hook := func(x, y, z int, v float64) float64 {
		if x == 5 && y == 3 {
			hit = true
			return v + 7
		}
		return v
	}
	op.SweepRectFused(dst, src, 4, 2, 8, 6, b, hook)
	if !hit {
		t.Fatal("hook did not fire inside the rectangle")
	}
	if dst.At(5, 3) != 1+7 {
		t.Fatalf("hooked value %g", dst.At(5, 3))
	}
	// Fused checksum includes the corruption.
	direct := make([]float64, 4)
	ChecksumBRect(dst, 4, 2, 8, 6, direct)
	if b[1] != direct[1] {
		t.Fatal("fused checksum missed the hooked value")
	}
}

func TestSweepRectFusedValidation(t *testing.T) {
	op := &Op2D[float64]{St: Laplace5(0.2), BC: grid.Clamp}
	g := grid.New[float64](8, 8)
	h := grid.New[float64](8, 8)
	for _, r := range [][4]int{{-1, 0, 4, 4}, {0, 0, 9, 4}, {4, 4, 2, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rect %v did not panic", r)
				}
			}()
			op.SweepRectFused(h, g, r[0], r[1], r[2], r[3], nil, nil)
		}()
	}
}

func TestChecksumARect(t *testing.T) {
	g := grid.New[float64](4, 3)
	g.FillFunc(func(x, y int) float64 { return float64(x + 10*y) })
	a := make([]float64, 2)
	ChecksumARect(g, 1, 1, 3, 3, a)
	// Columns 1,2 over rows 1,2: (11+21)=32, (12+22)=34.
	if a[0] != 32 || a[1] != 34 {
		t.Fatalf("ARect = %v", a)
	}
}
