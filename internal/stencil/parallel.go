package stencil

import (
	"runtime"
	"sync"

	"stencilabft/internal/grid"
)

// Pool is a persistent worker pool for domain-decomposed sweeps. The zero
// value runs everything on the calling goroutine; NewPool sizes the pool
// from GOMAXPROCS. On the first parallel call the pool spawns Workers-1
// long-lived goroutines fed row-range jobs over a channel — the calling
// goroutine always executes the final chunk itself — so a protected
// Run(iters) pays the goroutine spawn cost once, not iters x workers times
// (the pre-persistent pool forked fresh goroutines for every sweep).
//
// A Pool is safe for concurrent use: multiple ranks or protectors may share
// one pool, and their jobs interleave over the same workers. Workers must
// not be changed after the first parallel call. Workers idle on a channel
// receive between calls; Close releases them when a pool is truly done
// (letting them idle for the process lifetime is also fine — each parked
// goroutine costs only its stack).
type Pool struct {
	Workers int

	once   sync.Once
	jobs   chan poolJob
	closed bool
}

// poolJob is one row-range task: run fn(lo, hi), then signal wg.
type poolJob struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

// NewPool returns a pool sized to the machine (GOMAXPROCS).
func NewPool() *Pool { return &Pool{Workers: runtime.GOMAXPROCS(0)} }

// workers returns the effective worker count, at least 1.
func (p *Pool) workers() int {
	if p == nil || p.Workers < 1 {
		return 1
	}
	return p.Workers
}

// start spawns the persistent workers, once. Workers-1 goroutines drain the
// job channel for the pool's lifetime; the caller of each parallel call is
// the pool's remaining worker.
func (p *Pool) start() {
	p.once.Do(func() {
		jobs := make(chan poolJob, p.workers())
		p.jobs = jobs
		for i := 0; i < p.workers()-1; i++ {
			go func() {
				for j := range jobs {
					j.fn(j.lo, j.hi)
					j.wg.Done()
				}
			}()
		}
	})
}

// Close stops the persistent workers. It must only be called once no
// parallel call is in flight and no further ones will follow; a pool that
// was never used in parallel closes as a no-op, and closing twice is safe.
// A parallel call after Close panics (fail fast, not a silent hang).
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {}) // never started: consume the once so jobs stays nil
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
	p.closed = true
}

// ForEachChunk splits [0, n) into at most workers contiguous chunks and
// invokes fn(lo, hi) for each, returning when all complete. Chunks differ
// in size by at most one element. The final chunk always runs on the
// calling goroutine — with a single worker (or n <= 1) the call degenerates
// to a plain fn(0, n) with no synchronisation at all — and the remaining
// chunks are dispatched to the persistent workers.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	w := p.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.start()
	jobs := p.jobs
	if jobs == nil || p.closed {
		panic("stencil: Pool used after Close")
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	chunk := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w-1; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		jobs <- poolJob{lo: lo, hi: hi, fn: fn, wg: &wg}
		lo = hi
	}
	fn(lo, n) // the caller is the last worker
	wg.Wait()
}

// ForEach invokes fn(i) for each i in [0, n), distributing indices over the
// pool. Used for per-layer 3-D work where each index is one z-layer.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// SweepParallel computes one full 2-D iteration with rows partitioned over
// the pool. Each worker owns a disjoint y-range of dst and the matching
// entries of b, so no synchronisation beyond the final join is needed —
// the "up to nx threads" independence the paper relies on.
func (op *Op2D[T]) SweepParallel(p *Pool, dst, src *grid.Grid[T], b []T) {
	op.SweepParallelHook(p, dst, src, b, nil)
}

// SweepParallelHook is SweepParallel with a per-point injection hook.
func (op *Op2D[T]) SweepParallelHook(p *Pool, dst, src *grid.Grid[T], b []T, hook InjectFunc[T]) {
	p.ForEachChunk(src.Ny(), func(lo, hi int) {
		op.SweepRange(dst, src, lo, hi, b, hook)
	})
}

// SweepParallel computes one full 3-D iteration with layers partitioned
// over the pool. bs, when non-nil, must hold one checksum slice per layer
// (bs[z] of length ny); each layer's fused checksum is written by the
// worker that owns the layer, mirroring the paper's per-thread-per-layer
// checksum ownership.
func (op *Op3D[T]) SweepParallel(p *Pool, dst, src *grid.Grid3D[T], bs [][]T) {
	op.SweepParallelHook(p, dst, src, bs, nil)
}

// SweepParallelHook is SweepParallel with a per-point injection hook.
func (op *Op3D[T]) SweepParallelHook(p *Pool, dst, src *grid.Grid3D[T], bs [][]T, hook InjectFunc[T]) {
	p.ForEach(src.Nz(), func(z int) {
		var b []T
		if bs != nil {
			b = bs[z]
		}
		op.SweepLayer(dst, src, z, b, hook)
	})
}
