package stencil

import (
	"runtime"
	"sync"

	"stencilabft/internal/grid"
)

// Pool is a simple fork-join worker pool for domain-decomposed sweeps. The
// zero value runs everything on the calling goroutine; NewPool sizes the
// pool from GOMAXPROCS. A Pool carries no state between calls and is safe
// for concurrent use.
type Pool struct {
	Workers int
}

// NewPool returns a pool sized to the machine (GOMAXPROCS).
func NewPool() *Pool { return &Pool{Workers: runtime.GOMAXPROCS(0)} }

// workers returns the effective worker count, at least 1.
func (p *Pool) workers() int {
	if p == nil || p.Workers < 1 {
		return 1
	}
	return p.Workers
}

// ForEachChunk splits [0, n) into at most workers contiguous chunks and
// invokes fn(lo, hi) for each, concurrently, returning when all complete.
// Chunks differ in size by at most one element.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	w := p.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForEach invokes fn(i) for each i in [0, n), distributing indices over the
// pool. Used for per-layer 3-D work where each index is one z-layer.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// SweepParallel computes one full 2-D iteration with rows partitioned over
// the pool. Each worker owns a disjoint y-range of dst and the matching
// entries of b, so no synchronisation beyond the final join is needed —
// the "up to nx threads" independence the paper relies on.
func (op *Op2D[T]) SweepParallel(p *Pool, dst, src *grid.Grid[T], b []T) {
	op.SweepParallelHook(p, dst, src, b, nil)
}

// SweepParallelHook is SweepParallel with a per-point injection hook.
func (op *Op2D[T]) SweepParallelHook(p *Pool, dst, src *grid.Grid[T], b []T, hook InjectFunc[T]) {
	p.ForEachChunk(src.Ny(), func(lo, hi int) {
		op.SweepRange(dst, src, lo, hi, b, hook)
	})
}

// SweepParallel computes one full 3-D iteration with layers partitioned
// over the pool. bs, when non-nil, must hold one checksum slice per layer
// (bs[z] of length ny); each layer's fused checksum is written by the
// worker that owns the layer, mirroring the paper's per-thread-per-layer
// checksum ownership.
func (op *Op3D[T]) SweepParallel(p *Pool, dst, src *grid.Grid3D[T], bs [][]T) {
	op.SweepParallelHook(p, dst, src, bs, nil)
}

// SweepParallelHook is SweepParallel with a per-point injection hook.
func (op *Op3D[T]) SweepParallelHook(p *Pool, dst, src *grid.Grid3D[T], bs [][]T, hook InjectFunc[T]) {
	p.ForEach(src.Nz(), func(z int) {
		var b []T
		if bs != nil {
			b = bs[z]
		}
		op.SweepLayer(dst, src, z, b, hook)
	})
}
