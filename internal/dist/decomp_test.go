package dist

import (
	"fmt"
	"testing"
)

// TestDecompTilesPartitionDomain: for a spread of domain and grid shapes,
// the tiles must cover every domain point exactly once, agree with OwnerOf,
// and differ by at most one point per axis.
func TestDecompTilesPartitionDomain(t *testing.T) {
	for _, tc := range []struct{ nx, ny, rx, ry int }{
		{33, 40, 1, 3}, {33, 40, 3, 1}, {33, 40, 3, 2}, {33, 40, 2, 3},
		{7, 7, 7, 1}, {16, 23, 4, 4}, {5, 5, 1, 1},
	} {
		t.Run(fmt.Sprintf("%dx%d/%dx%d", tc.nx, tc.ny, tc.ry, tc.rx), func(t *testing.T) {
			d := Decomp{Nx: tc.nx, Ny: tc.ny, RanksX: tc.rx, RanksY: tc.ry}
			owned := make([]int, tc.nx*tc.ny)
			for i := range owned {
				owned[i] = -1
			}
			baseW, baseH := tc.nx/tc.rx, tc.ny/tc.ry
			for id := 0; id < d.NumRanks(); id++ {
				tile := d.TileOf(id)
				if w := tile.Nx(); w != baseW && w != baseW+1 {
					t.Fatalf("rank %d tile width %d, want %d or %d", id, w, baseW, baseW+1)
				}
				if h := tile.Ny(); h != baseH && h != baseH+1 {
					t.Fatalf("rank %d tile height %d, want %d or %d", id, h, baseH, baseH+1)
				}
				for y := tile.Y0; y < tile.Y1; y++ {
					for x := tile.X0; x < tile.X1; x++ {
						if prev := owned[y*tc.nx+x]; prev != -1 {
							t.Fatalf("point (%d,%d) owned by ranks %d and %d", x, y, prev, id)
						}
						owned[y*tc.nx+x] = id
						if got := d.OwnerOf(x, y); got != id {
							t.Fatalf("OwnerOf(%d,%d) = %d, want %d", x, y, got, id)
						}
						if !tile.Contains(x, y) {
							t.Fatalf("tile %v does not contain its own point (%d,%d)", tile, x, y)
						}
					}
				}
			}
			for i, id := range owned {
				if id == -1 {
					t.Fatalf("point %d unowned", i)
				}
			}
		})
	}
}

// TestDecompCoords pins the row-major id convention and its inverse.
func TestDecompCoords(t *testing.T) {
	d := Decomp{Nx: 30, Ny: 30, RanksX: 3, RanksY: 2}
	for id := 0; id < 6; id++ {
		cx, cy := d.Coords(id)
		if got := d.RankAt(cx, cy); got != id {
			t.Fatalf("RankAt(Coords(%d)) = %d", id, got)
		}
	}
	if cx, cy := d.Coords(4); cx != 1 || cy != 1 {
		t.Fatalf("Coords(4) = (%d,%d), want (1,1)", cx, cy)
	}
	if d.String() != "2x3" {
		t.Fatalf("String() = %q, want rows x cols", d.String())
	}
}

// TestDecompNeighbor checks edge cut-off without wrap and torus closure
// with it.
func TestDecompNeighbor(t *testing.T) {
	d := Decomp{Nx: 30, Ny: 30, RanksX: 3, RanksY: 2}
	// Rank 0 (top-left): no Up/Left without wrap.
	if _, ok := d.Neighbor(0, Up, false); ok {
		t.Fatal("top row has an Up neighbour without wrap")
	}
	if _, ok := d.Neighbor(0, Left, false); ok {
		t.Fatal("left column has a Left neighbour without wrap")
	}
	if nb, ok := d.Neighbor(0, Right, false); !ok || nb != 1 {
		t.Fatalf("Neighbor(0, Right) = %d,%v", nb, ok)
	}
	if nb, ok := d.Neighbor(0, Down, false); !ok || nb != 3 {
		t.Fatalf("Neighbor(0, Down) = %d,%v", nb, ok)
	}
	// Torus wrap.
	if nb, ok := d.Neighbor(0, Up, true); !ok || nb != 3 {
		t.Fatalf("wrap Neighbor(0, Up) = %d,%v", nb, ok)
	}
	if nb, ok := d.Neighbor(0, Left, true); !ok || nb != 2 {
		t.Fatalf("wrap Neighbor(0, Left) = %d,%v", nb, ok)
	}
}

// TestDecompValidate: thin tiles are rejected with an actionable error, and
// the boundary cases just inside the limit pass.
func TestDecompValidate(t *testing.T) {
	// 16 columns over 8 rank columns leaves 2-wide tiles: the narrowest
	// radius-1 fit.
	if err := (Decomp{Nx: 16, Ny: 8, RanksX: 8, RanksY: 4}).Validate(1, 1); err != nil {
		t.Fatalf("tightest valid grid rejected: %v", err)
	}
	if err := (Decomp{Nx: 16, Ny: 8, RanksX: 16, RanksY: 1}).Validate(1, 1); err == nil {
		t.Fatal("1-wide tiles accepted at radius 1")
	}
	if err := (Decomp{Nx: 16, Ny: 8, RanksX: 1, RanksY: 8}).Validate(1, 1); err == nil {
		t.Fatal("1-tall tiles accepted at radius 1")
	}
	if err := (Decomp{Nx: 16, Ny: 8, RanksX: 0, RanksY: 2}).Validate(1, 1); err == nil {
		t.Fatal("zero rank columns accepted")
	}
	if err := (Decomp{Nx: 16, Ny: 8, RanksX: 2, RanksY: -1}).Validate(1, 1); err == nil {
		t.Fatal("negative rank rows accepted")
	}
}
