package dist

import (
	"fmt"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Cluster3D runs a 3-D stencil domain decomposed into z-layer slabs over
// simulated ranks, each protected by its own per-layer online ABFT
// instance — the layer deployment of the topology-neutral decomposition.
// Along z it is structurally the 1-D row-band cluster (a chain of ranks
// exchanging one halo strip per side through the same Transport seam,
// wired as a 1-by-nRanks grid), which is what makes it nearly free on top
// of the Decomp refactor. It satisfies the unified protector contract:
// Step and Run apply the injection plan configured in Options, Grid3D
// gathers the global domain, Stats merges the per-rank counters.
type Cluster3D[T num.Float] struct {
	nx, ny, nz int
	decomp     Decomp // z chain as a 1-by-nRanks grid over (1, nz)
	ranks      []*rank3d[T]
	tr         Transport[T]
	plans      []*fault.Injector[T] // per-rank routed Options.Inject (absolute iterations)
	iter       int
}

// NewCluster3D decomposes init into nRanks z-layer slabs wired through the
// transport. Remainder layers are distributed one per rank from the bottom,
// so slab depths differ by at most one layer. Every slab must be strictly
// thicker than the stencil's z-radius; a larger nRanks returns an error.
func NewCluster3D[T num.Float](op *stencil.Op3D[T], init *grid.Grid3D[T], nRanks int, opt Options[T]) (*Cluster3D[T], error) {
	nx, ny, nz := init.Nx(), init.Ny(), init.Nz()
	if err := op.Validate(nx, ny, nz); err != nil {
		return nil, err
	}
	// The z chain reuses the band geometry: a 1-by-nRanks rank grid whose
	// "rows" are layer slabs. Decomp.Validate supplies the thin-slab
	// invariant (slabs strictly thicker than the z-radius); only the error
	// wording is re-phrased in layer terms.
	d := Decomp{Nx: 1, Ny: nz, RanksX: 1, RanksY: nRanks}
	rz := op.St.RadiusZ()
	if d.RanksY < 1 {
		return nil, fmt.Errorf("dist: invalid rank count %d", nRanks)
	}
	if err := d.Validate(0, rz); err != nil {
		return nil, fmt.Errorf("dist: %d ranks over %d layers leaves slabs of %d layer(s), need more than the stencil z-radius %d (at most %d rank(s) fit)",
			nRanks, nz, nz/nRanks, rz, maxParts(nz, rz))
	}
	if opt.LocalRanks != nil {
		return nil, fmt.Errorf("dist: LocalRanks (multi-process hosting) supports 2-D grid clusters only; the 3-D layer cluster runs all slabs in-process")
	}
	if opt.HaloDepth > 1 {
		return nil, fmt.Errorf("dist: HaloDepth %d (depth-k ghost zones) supports 2-D grid clusters only; the 3-D layer cluster exchanges every iteration", opt.HaloDepth)
	}
	opt = opt.withDefaults()

	c := &Cluster3D[T]{nx: nx, ny: ny, nz: nz, decomp: d}
	c.tr = opt.NewTransport(1, nRanks, op.BC == grid.Periodic)
	for i := 0; i < nRanks; i++ {
		t := d.TileOf(i) // Y axis carries the layer range
		r, err := newRank3D(op, init, i, t.Y0, t.Y1, rz, opt)
		if err != nil {
			return nil, err
		}
		r.tr = c.tr
		r.stats.Topology = fmt.Sprintf("layers %d", nRanks)
		r.tel = opt.Telemetry.Recorder(i)
		c.ranks = append(c.ranks, r)
	}
	c.plans = c.routePlan(opt.Inject)
	return c, nil
}

// Ranks returns the number of ranks in the cluster.
func (c *Cluster3D[T]) Ranks() int { return len(c.ranks) }

// Slab returns the global layer range [z0, z1) owned by rank i.
func (c *Cluster3D[T]) Slab(i int) (z0, z1 int) {
	r := c.ranks[i]
	return r.z0, r.z1
}

// Iter returns the number of completed cluster iterations.
func (c *Cluster3D[T]) Iter() int { return c.iter }

// RankStats returns each rank's counters, indexed by rank. When telemetry
// is enabled each entry carries that rank's phase-time breakdown.
func (c *Cluster3D[T]) RankStats() []Stats {
	out := make([]Stats, len(c.ranks))
	m, haveM := c.TransportMetrics()
	for i, r := range c.ranks {
		out[i] = r.stats
		out[i].Timing = r.tel.Timing()
		if haveM {
			out[i].Transport = m.PerRank(r.id)
		}
	}
	if haveM && len(out) > 0 {
		out[0].Transport.DialRetries += m.DialRetries
		out[0].Transport.PoisonEvents += m.Poisoned
	}
	return out
}

// Stats returns the cluster-wide merge of the per-rank counters, with
// Iterations normalised to lockstep sweeps (Iter), like the 2-D cluster.
func (c *Cluster3D[T]) Stats() Stats {
	var total Stats
	for _, s := range c.RankStats() {
		total = total.Merge(s)
	}
	total.Iterations = c.iter
	return total
}

// TransportMetrics returns the transport's per-edge traffic snapshot when
// the backend counts its traffic (both built-ins do).
func (c *Cluster3D[T]) TransportMetrics() (telemetry.TransportMetrics, bool) {
	m, ok := c.tr.(MetricsSource)
	if !ok {
		return telemetry.TransportMetrics{}, false
	}
	return m.Metrics(), true
}

// Gather reassembles the global domain from the ranks' current slab states.
// Call it between Run calls, never concurrently with one.
func (c *Cluster3D[T]) Gather() *grid.Grid3D[T] {
	g := grid.New3D[T](c.nx, c.ny, c.nz)
	for _, r := range c.ranks {
		for z := r.z0; z < r.z1; z++ {
			g.Layer(z).CopyFrom(r.buf.Read.Layer(r.slabLo() + z - r.z0))
		}
	}
	return g
}

// Grid3D gathers and returns the global domain state; an alias for Gather
// that completes the unified protector contract. Each call reassembles the
// domain from the rank slabs, so hoist it out of hot loops.
func (c *Cluster3D[T]) Grid3D() *grid.Grid3D[T] { return c.Gather() }

// Grid returns nil: Cluster3D decomposes 3-D domains.
func (c *Cluster3D[T]) Grid() *grid.Grid[T] { return nil }

// Finalize is a no-op: every rank verifies every sweep, so nothing is
// pending at the end of a run.
func (c *Cluster3D[T]) Finalize() {}

// Step advances the cluster by one lockstep iteration; like the 2-D
// cluster, batch known iteration counts through Run.
func (c *Cluster3D[T]) Step() { c.Run(1) }

// Run advances the cluster by count lockstep iterations, applying the
// injection plan configured in Options (absolute iteration numbers).
func (c *Cluster3D[T]) Run(count int) {
	if count <= 0 {
		return
	}
	base := c.iter
	done := make(chan struct{}, len(c.ranks))
	for i, r := range c.ranks {
		go func(r *rank3d[T], cfg *fault.Injector[T]) {
			for t := 0; t < count; t++ {
				r.tel.SetIter(base + t)
				r.exchangeHalos()
				r.step(stencil.HookAt[T](injSource(cfg), base+t))
				tb := r.tel.Begin()
				c.tr.Barrier()
				r.tel.End(telemetry.PhaseBarrierWait, tb)
			}
			done <- struct{}{}
		}(r, c.plans[i])
	}
	for range c.ranks {
		<-done
	}
	c.iter += count
}

// routePlan splits a global fault plan into per-rank plans with the
// injection layer translated into the owning rank's extended-grid frame.
// Injections outside the domain are dropped.
func (c *Cluster3D[T]) routePlan(plan *fault.Plan) []*fault.Injector[T] {
	out := make([]*fault.Injector[T], len(c.ranks))
	if plan == nil {
		return out
	}
	perRank := make([][]fault.Injection, len(c.ranks))
	for _, inj := range plan.Injections() {
		if inj.X < 0 || inj.X >= c.nx || inj.Y < 0 || inj.Y >= c.ny || inj.Z < 0 || inj.Z >= c.nz {
			continue
		}
		i := c.decomp.OwnerOf(0, inj.Z)
		r := c.ranks[i]
		local := inj
		local.Z = inj.Z - r.z0 + r.h
		perRank[i] = append(perRank[i], local)
	}
	for i, injs := range perRank {
		if len(injs) > 0 {
			out[i] = fault.NewInjector[T](fault.NewPlan(injs...))
		}
	}
	return out
}
