// Package dist is the distributed-memory deployment of the ABFT scheme —
// the paper's headline setting (Section 1): a 2-D domain decomposed into
// horizontal row bands over nRanks simulated ranks, each rank running the
// online detect-and-correct protector on its own band while exchanging only
// halo rows with its neighbours. No checksum ever crosses a rank: each band
// owns its checksum pair, halo rows enter the interpolation as locally
// computed row sums of the received data, and a corruption is detected,
// located and repaired entirely by the rank that owns it — the method's
// "intrinsically parallel" property.
//
// Ranks are goroutines wired with paired channels in the MPI neighbour
// pattern (send down/up, receive up/down); a cyclic barrier separates
// iterations so every rank's halo data is always exactly one iteration
// fresh, the lockstep of a bulk-synchronous MPI stencil code. The top and
// bottom ranks resolve their outer halos from the global boundary
// condition; under Periodic boundaries the ranks are wired as a ring and
// the wrap-around halo is real remote data like any other.
package dist

import (
	"fmt"

	"stencilabft/internal/checksum"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Options configure the per-rank protection of a Cluster. The zero value
// uses the paper's defaults (epsilon 1e-5, residual pairing, sequential
// per-rank sweeps).
type Options[T num.Float] struct {
	// Detector's Epsilon defaults to the paper's 1e-5 when zero, with an
	// absolute floor of 1.
	Detector checksum.Detector[T]
	// PairPolicy selects multi-error pairing (default PairByResidual).
	PairPolicy checksum.PairPolicy
	// Pool partitions each rank's local sweep over workers; nil runs each
	// rank's sweep sequentially on the rank goroutine. The pool is
	// stateless and safely shared by all ranks.
	Pool *stencil.Pool
	// DropBoundaryTerms reproduces the paper's simplified listings for the
	// x-direction beta terms (ablation A1); leave false for exact
	// interpolation.
	DropBoundaryTerms bool
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (o Options[T]) withDefaults() Options[T] {
	if o.Detector.Epsilon == 0 {
		o.Detector = checksum.NewDetector[T]()
	}
	if o.Detector.AbsFloor == 0 {
		o.Detector.AbsFloor = 1
	}
	return o
}

// Stats aggregates one rank's ABFT counters. TotalStats sums them over the
// cluster with Add.
type Stats struct {
	Iterations      int // completed sweeps
	Verifications   int // checksum comparisons performed
	Detections      int // verification events that flagged at least one mismatch
	CorrectedPoints int // band points repaired in place
	ChecksumRepairs int // detections attributed to checksum (not domain) corruption
	HaloExchanges   int // iterations that exchanged or refreshed halo rows
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	s.Iterations += o.Iterations
	s.Verifications += o.Verifications
	s.Detections += o.Detections
	s.CorrectedPoints += o.CorrectedPoints
	s.ChecksumRepairs += o.ChecksumRepairs
	s.HaloExchanges += o.HaloExchanges
	return s
}

// String renders the counters compactly for logs.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d verifications=%d detections=%d corrected=%d checksum-repairs=%d halo-exchanges=%d",
		s.Iterations, s.Verifications, s.Detections, s.CorrectedPoints, s.ChecksumRepairs, s.HaloExchanges)
}

// Cluster runs a 2-D stencil domain decomposed into row bands over
// simulated ranks, each protected by its own online ABFT instance.
type Cluster[T num.Float] struct {
	nx, ny int
	ranks  []*rank[T]
	bar    *barrier
	iter   int
}

// NewCluster decomposes init into nRanks row bands wired with halo
// channels. Remainder rows are distributed one per rank from the top, so
// band heights differ by at most one row. Every band must be strictly
// taller than the stencil's y-radius (the minimum domain an interpolator
// accepts); a larger nRanks returns an error.
func NewCluster[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], nRanks int, opt Options[T]) (*Cluster[T], error) {
	nx, ny := init.Nx(), init.Ny()
	if err := op.Validate(nx, ny); err != nil {
		return nil, err
	}
	if nRanks < 1 {
		return nil, fmt.Errorf("dist: invalid rank count %d", nRanks)
	}
	ry := op.St.RadiusY()
	if minBand := ny / nRanks; minBand <= ry {
		return nil, fmt.Errorf("dist: %d ranks over %d rows leaves bands of %d row(s), need more than the stencil y-radius %d",
			nRanks, ny, ny/nRanks, ry)
	}
	opt = opt.withDefaults()

	c := &Cluster[T]{nx: nx, ny: ny, bar: newBarrier(nRanks)}
	base, rem := ny/nRanks, ny%nRanks
	y0 := 0
	for i := 0; i < nRanks; i++ {
		h := base
		if i < rem {
			h++
		}
		r, err := newRank(op, init, i, y0, y0+h, ry, opt)
		if err != nil {
			return nil, err
		}
		c.ranks = append(c.ranks, r)
		y0 += h
	}
	wireHalos(c.ranks, op.BC == grid.Periodic)
	return c, nil
}

// Ranks returns the number of ranks in the cluster.
func (c *Cluster[T]) Ranks() int { return len(c.ranks) }

// Band returns the global row range [y0, y1) owned by rank i.
func (c *Cluster[T]) Band(i int) (y0, y1 int) {
	r := c.ranks[i]
	return r.y0, r.y1
}

// Iter returns the number of completed cluster iterations.
func (c *Cluster[T]) Iter() int { return c.iter }

// Stats returns each rank's counters, indexed by rank.
func (c *Cluster[T]) Stats() []Stats {
	out := make([]Stats, len(c.ranks))
	for i, r := range c.ranks {
		out[i] = r.stats
	}
	return out
}

// TotalStats returns the cluster-wide sum of the per-rank counters.
func (c *Cluster[T]) TotalStats() Stats {
	var total Stats
	for _, r := range c.ranks {
		total = total.Add(r.stats)
	}
	return total
}

// Gather reassembles the global domain from the ranks' current band
// states — the MPI_Gather at the end of a distributed run. Call it between
// Run calls, never concurrently with one.
func (c *Cluster[T]) Gather() *grid.Grid[T] {
	g := grid.New[T](c.nx, c.ny)
	for _, r := range c.ranks {
		for y := r.y0; y < r.y1; y++ {
			copy(g.Row(y), r.buf.Read.Row(r.h+y-r.y0))
		}
	}
	return g
}

// Run advances the cluster by iters lockstep iterations. plan, when
// non-nil, schedules bit-flip injections in global coordinates; each
// injection is routed to the rank owning its row and applied during that
// rank's local sweep, exactly as a per-rank MPI fault campaign would.
// Iterations are indexed within this call, starting at 0.
func (c *Cluster[T]) Run(iters int, plan *fault.Plan) {
	if iters <= 0 {
		return
	}
	plans := c.routePlan(plan)
	done := make(chan struct{}, len(c.ranks))
	for i, r := range c.ranks {
		go func(r *rank[T], inj *fault.Injector[T]) {
			for t := 0; t < iters; t++ {
				r.exchangeHalos()
				var hook stencil.InjectFunc[T]
				if inj != nil {
					hook = inj.HookFor(t)
				}
				r.step(hook)
				c.bar.await()
			}
			done <- struct{}{}
		}(r, plans[i])
	}
	for range c.ranks {
		<-done
	}
	c.iter += iters
}

// routePlan splits a global fault plan into per-rank plans with the
// injection row translated into the owning rank's extended-grid frame (the
// coordinate the sweep hook sees). Injections outside the domain, or with
// a non-zero Z, are dropped. The returned slice holds a nil injector for
// ranks with no scheduled injection.
func (c *Cluster[T]) routePlan(plan *fault.Plan) []*fault.Injector[T] {
	out := make([]*fault.Injector[T], len(c.ranks))
	if plan == nil {
		return out
	}
	perRank := make([][]fault.Injection, len(c.ranks))
	for _, inj := range plan.Injections() {
		if inj.Z != 0 || inj.X < 0 || inj.X >= c.nx || inj.Y < 0 || inj.Y >= c.ny {
			continue
		}
		for i, r := range c.ranks {
			if inj.Y >= r.y0 && inj.Y < r.y1 {
				local := inj
				local.Y = inj.Y - r.y0 + r.h
				perRank[i] = append(perRank[i], local)
				break
			}
		}
	}
	for i, injs := range perRank {
		if len(injs) > 0 {
			out[i] = fault.NewInjector[T](fault.NewPlan(injs...))
		}
	}
	return out
}
