// Package dist is the distributed-memory deployment of the ABFT scheme —
// the paper's headline setting (Section 1): a domain decomposed over
// simulated ranks, each rank running the online detect-and-correct
// protector on the subdomain it owns while exchanging only halo strips with
// its neighbours. No checksum ever crosses a rank: each tile owns its
// checksum pair, halo strips enter the interpolation as locally computed
// sums of the received data, and a corruption is detected, located and
// repaired entirely by the rank that owns it — the method's "intrinsically
// parallel" property.
//
// The decomposition is topology-neutral, described by Decomp: a 2-D domain
// splits over a RanksX-by-RanksY Cartesian rank grid (NewClusterGrid; the
// historical 1-D row bands are the RanksX == 1 column), and a 3-D domain
// splits into z-layer slabs (NewCluster3D), which reuse the band structure
// along z. Ranks are goroutines communicating through the Transport seam.
// The default ChanTransport wires them with paired channels in the MPI
// neighbour pattern and separates iterations with a cyclic barrier, so
// every rank's halo data is always exactly one iteration fresh — the
// lockstep of a bulk-synchronous MPI stencil code. Real MPI or socket
// backends implement Transport and plug in via Options.NewTransport.
package dist

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"stencilabft/internal/checksum"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stats"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Options configure the per-rank protection of a Cluster. The zero value
// uses the paper's defaults (epsilon 1e-5, residual pairing, sequential
// per-rank sweeps, in-process channel transport).
type Options[T num.Float] struct {
	// Detector's Epsilon defaults to the paper's 1e-5 when zero, with an
	// absolute floor of 1.
	Detector checksum.Detector[T]
	// PairPolicy selects multi-error pairing (default PairByResidual).
	PairPolicy checksum.PairPolicy
	// Pool partitions each rank's local sweep over workers; nil runs each
	// rank's sweep sequentially on the rank goroutine. The pool's
	// persistent workers are spawned once and safely shared by all ranks:
	// every rank's row-range jobs interleave over the same goroutines.
	Pool *stencil.Pool
	// DropBoundaryTerms reproduces the paper's simplified listings for the
	// x-direction beta terms (ablation A1); leave false for exact
	// interpolation.
	DropBoundaryTerms bool
	// HaloDepth selects depth-k ghost zones (communication-avoiding
	// clusters): halo strips k·radius wide are exchanged once every k
	// iterations, and on the k-1 iterations in between each rank
	// redundantly recomputes a shrinking shell of its neighbours' boundary
	// points instead of communicating — trading O(k·radius) extra compute
	// per boundary for a k-fold cut in message rounds and barriers.
	// 0 and 1 both mean the classic exchange-every-iteration schedule.
	// Fault-free results are bit-identical to depth 1 at every depth.
	// Exchanges happen on iterations where Iter%k == 0, so checkpoint
	// restores must land on multiples of k (resilience.Buddy validates its
	// Period against this). Tiles must be strictly wider than k·radius in
	// each axis; NewClusterGrid rejects grids that are not.
	HaloDepth int
	// Inject schedules bit-flip injections in global coordinates for
	// Step/Run; each injection is routed to the rank owning its point and
	// applied during that rank's local sweep. Iteration numbers are
	// absolute (compared against Iter), so plans survive split Run calls.
	Inject *fault.Plan
	// RecvTimeout bounds each halo/checkpoint receive of the default
	// in-process channel transport, so a stalled sibling rank surfaces as a
	// classified *Fault (ClassTimeout) instead of a hang — the analogue of
	// TCPConfig.IOTimeout. Zero waits forever (the historical behaviour).
	// Ignored when NewTransport is set: a custom backend configures its own
	// timeouts.
	RecvTimeout time.Duration
	// NewTransport overrides the communication backend. It receives the
	// rank-grid shape (columns × rows; a 3-D layer cluster passes its slab
	// chain as 1 × nRanks) and whether the grid closes into a torus
	// (periodic global boundaries), and returns the Transport the halo
	// exchange and iteration barrier run through. Nil uses
	// NewChanTransport.
	NewTransport func(ranksX, ranksY int, ring bool) Transport[T]
	// WrapTransport, when non-nil, layers a wrapper over whichever backend
	// NewTransport resolves to — tracing, delaying, or chaos fault
	// injection (internal/chaos) — without replacing the backend itself.
	// It receives the built transport plus the same shape arguments.
	WrapTransport func(tr Transport[T], ranksX, ranksY int, ring bool) Transport[T]
	// LocalRanks restricts which ranks of the grid this Cluster
	// materialises (nil = all) — the multi-process deployment, where each
	// OS process hosts a subset (typically one) of the ranks and the rest
	// live behind a cross-process Transport such as TCPTransport. The
	// transport must span the full grid: the default in-process channel
	// backend cannot (its barrier would wait for ranks that run
	// elsewhere), so LocalRanks requires NewTransport. 2-D grid clusters
	// only; Cluster3D rejects it.
	LocalRanks []int
	// AfterStep, when non-nil, runs on each materialised rank's goroutine
	// after its sweep/verify/repair step of every iteration, before the
	// iteration barrier — the seam the resilience layer hangs buddy
	// checkpointing on, so snapshot traffic overlaps the barrier wait
	// instead of serialising with the compute. It receives the global rank
	// id and the absolute iteration just completed. It must not touch other
	// ranks' state.
	AfterStep func(rank, iter int)
	// Telemetry, when non-nil, hands each materialised rank a phase-timer
	// and span recorder (keyed by global rank id), making sweep, halo
	// exchange, verification and barrier-wait time attributable per rank.
	// Nil disables instrumentation entirely: the rank step then pays only
	// nil checks, adding zero allocations and no clock reads.
	Telemetry *telemetry.Collector
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (o Options[T]) withDefaults() Options[T] {
	if o.Detector.Epsilon == 0 {
		o.Detector = checksum.NewDetector[T]()
	}
	if o.Detector.AbsFloor == 0 {
		o.Detector.AbsFloor = 1
	}
	if o.NewTransport == nil {
		timeout := o.RecvTimeout
		o.NewTransport = func(rx, ry int, ring bool) Transport[T] {
			t := NewChanTransport[T](rx, ry, ring)
			t.SetRecvTimeout(timeout)
			return t
		}
	}
	if o.WrapTransport != nil {
		base, wrap := o.NewTransport, o.WrapTransport
		o.NewTransport = func(rx, ry int, ring bool) Transport[T] {
			return wrap(base(rx, ry, ring), rx, ry, ring)
		}
	}
	return o
}

// Stats aggregates one rank's ABFT counters through the unified counter
// model; Cluster.Stats merges them over the cluster. Topology carries the
// cluster's rank-grid shape and HaloByDir the per-direction message counts
// (indexed by Dir), so 1-D band versus 2-D grid communication overhead is
// directly observable.
type Stats = stats.Stats

// Cluster runs a 2-D stencil domain decomposed over a Cartesian rank grid,
// each rank protected by its own online ABFT instance. It satisfies the
// same unified protector contract as the local runners: Step and Run apply
// the injection plan configured in Options, Grid gathers the global domain,
// Stats merges the per-rank counters.
//
// By default every rank is a goroutine in this process; under
// Options.LocalRanks the Cluster materialises only the listed ranks and the
// rest of the grid lives in peer processes behind a cross-process
// Transport — Step/Run then advance the hosted ranks in lockstep with the
// remote ones through the transport's barrier, and Gather/Stats cover the
// hosted tiles only.
type Cluster[T num.Float] struct {
	decomp    Decomp
	local     []int      // materialised rank ids, sorted (all of them by default)
	ranks     []*rank[T] // aligned with local
	tr        Transport[T]
	plans     []*fault.Injector[T] // per-materialised-rank routed Options.Inject (absolute iterations)
	afterStep func(rank, iter int)
	iter      int
	haloDepth int

	// Each materialised rank runs on one persistent goroutine, spawned at
	// construction and fed batches through its command channel — Run then
	// costs a channel send and a join per rank instead of a goroutine
	// spawn, keeping the steady-state iteration path allocation-free.
	// Close shuts them down.
	cmds       []chan rankCmd[T]
	done       chan struct{}
	faultMu    sync.Mutex
	firstFault error
	closeOnce  sync.Once
}

// rankCmd is one Run batch handed to a rank goroutine: iters iterations
// starting at absolute iteration base, with an optional per-call
// injector (RunPlan's call-relative plan).
type rankCmd[T num.Float] struct {
	iters, base int
	perCall     *fault.Injector[T]
}

// NewCluster decomposes init into nRanks horizontal row bands — the Nx1
// shorthand for NewClusterGrid(op, init, 1, nRanks, opt), kept because row
// bands are the paper's presentation of the distributed setting.
func NewCluster[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], nRanks int, opt Options[T]) (*Cluster[T], error) {
	return NewClusterGrid(op, init, 1, nRanks, opt)
}

// NewClusterGrid decomposes init over a ranksX-by-ranksY Cartesian rank
// grid wired through the transport. Remainder points are distributed one
// per rank from the low end of each axis, so tile edges differ by at most
// one point. Every tile must be strictly wider than the stencil's x-radius
// and strictly taller than its y-radius (the minimum domain an interpolator
// accepts, and what lets Clamp/Mirror ghost synthesis resolve inside the
// tile); a finer grid returns an error.
func NewClusterGrid[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], ranksX, ranksY int, opt Options[T]) (*Cluster[T], error) {
	nx, ny := init.Nx(), init.Ny()
	if err := op.Validate(nx, ny); err != nil {
		return nil, err
	}
	d := Decomp{Nx: nx, Ny: ny, RanksX: ranksX, RanksY: ranksY}
	rx, ry := op.St.RadiusX(), op.St.RadiusY()
	depth := opt.HaloDepth
	if depth < 1 {
		depth = 1
	}
	if err := d.ValidateDepth(rx, ry, depth); err != nil {
		return nil, err
	}
	hx, hy := depth*rx, depth*ry
	local, err := resolveLocalRanks(opt.LocalRanks, d.NumRanks())
	if err != nil {
		return nil, err
	}
	if opt.LocalRanks != nil && opt.NewTransport == nil {
		return nil, fmt.Errorf("dist: LocalRanks hosts %d of %d ranks in this process; the default in-process channel transport cannot reach the others — set NewTransport to a cross-process backend (e.g. NewTCPTransport)", len(local), d.NumRanks())
	}
	opt = opt.withDefaults()
	opt.HaloDepth = depth

	c := &Cluster[T]{decomp: d, local: local, afterStep: opt.AfterStep, haloDepth: depth}
	c.tr = opt.NewTransport(ranksX, ranksY, op.BC == grid.Periodic)
	for _, i := range local {
		r, err := newRank(op, init, i, d.TileOf(i), hx, hy, opt)
		if err != nil {
			return nil, err
		}
		r.tr = c.tr
		r.bindTransport()
		r.stats.Topology = "grid " + d.String()
		r.tel = opt.Telemetry.Recorder(i)
		c.ranks = append(c.ranks, r)
	}
	c.plans = c.routePlan(opt.Inject)
	c.cmds = make([]chan rankCmd[T], len(c.ranks))
	c.done = make(chan struct{}, len(c.ranks))
	for i, r := range c.ranks {
		c.cmds[i] = make(chan rankCmd[T], 1)
		go c.rankLoop(r, c.plans[i], c.cmds[i])
	}
	return c, nil
}

// resolveLocalRanks normalises an Options.LocalRanks list against an n-rank
// grid: nil means every rank; explicit lists are sorted, bounds-checked and
// must be duplicate-free.
func resolveLocalRanks(list []int, n int) ([]int, error) {
	if list == nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("dist: LocalRanks is empty; a cluster must host at least one rank (nil hosts all)")
	}
	local := append([]int(nil), list...)
	sort.Ints(local)
	for i, id := range local {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("dist: local rank %d outside the %d-rank grid", id, n)
		}
		if i > 0 && local[i-1] == id {
			return nil, fmt.Errorf("dist: local rank %d listed twice", id)
		}
	}
	return local, nil
}

// Ranks returns the number of ranks in the whole cluster — including, for
// a LocalRanks deployment, the ranks hosted by peer processes.
func (c *Cluster[T]) Ranks() int { return c.decomp.NumRanks() }

// LocalRanks returns the rank ids materialised in this process, sorted.
// For a default (all-local) cluster this is 0..Ranks()-1.
func (c *Cluster[T]) LocalRanks() []int { return append([]int(nil), c.local...) }

// Decomp returns the cluster's decomposition geometry.
func (c *Cluster[T]) Decomp() Decomp { return c.decomp }

// Tile returns the global sub-rectangle owned by rank i — pure geometry,
// answerable for remote ranks too.
func (c *Cluster[T]) Tile(i int) Tile { return c.decomp.TileOf(i) }

// Band returns the global row range [y0, y1) owned by rank i — meaningful
// for the 1-D row-band (RanksX == 1) topology it predates.
//
// Deprecated: use Tile.
func (c *Cluster[T]) Band(i int) (y0, y1 int) {
	t := c.decomp.TileOf(i)
	return t.Y0, t.Y1
}

// Iter returns the number of completed cluster iterations.
func (c *Cluster[T]) Iter() int { return c.iter }

// HaloDepth returns the cluster's ghost-zone depth k: halo exchanges
// happen on iterations where Iter%k == 0, and checkpoint restores must
// land on multiples of k. 1 is the classic exchange-every-iteration
// schedule.
func (c *Cluster[T]) HaloDepth() int { return c.haloDepth }

// RankStats returns the materialised ranks' counters, aligned with
// LocalRanks — for a default cluster, indexed by rank id. When telemetry
// is enabled each entry carries that rank's phase-time breakdown.
func (c *Cluster[T]) RankStats() []Stats {
	out := make([]Stats, len(c.ranks))
	m, haveM := c.TransportMetrics()
	for i, r := range c.ranks {
		out[i] = r.stats
		out[i].Timing = r.tel.Timing()
		if haveM {
			out[i].Transport = m.PerRank(r.id)
		}
	}
	// The transport-global counters have no owning rank; park them on the
	// first entry so merging RankStats reproduces the cluster totals.
	if haveM && len(out) > 0 {
		out[0].Transport.DialRetries += m.DialRetries
		out[0].Transport.PoisonEvents += m.Poisoned
		out[0].Transport.Reconnects += m.Reconnects
		out[0].Transport.Resends += m.Resends
		out[0].Transport.CrcErrors += m.CrcErrors
		out[0].Transport.DupFrames += m.DupFrames
	}
	return out
}

// Stats returns the cluster-wide merge of the per-rank counters, with
// Iterations normalised to lockstep sweeps (Iter) so the count stays
// comparable across deployments: like the local and blocked protectors, a
// cluster reports one iteration per global sweep. Event counters
// (Verifications, Detections, HaloExchanges, the per-direction HaloByDir, …)
// remain per-rank sums, just as the blocked protector counts one
// verification per block.
func (c *Cluster[T]) Stats() Stats {
	var total Stats
	for _, s := range c.RankStats() {
		total = total.Merge(s)
	}
	total.Iterations = c.iter
	return total
}

// MetricsSource is implemented by transports that count their traffic.
// Both built-in backends do; a custom Options.NewTransport backend may
// not, in which case the cluster's Stats simply carry a zero Transport.
type MetricsSource interface {
	Metrics() telemetry.TransportMetrics
}

// TransportMetrics returns the transport's per-edge traffic snapshot, or
// ok == false when the backend does not implement MetricsSource.
func (c *Cluster[T]) TransportMetrics() (telemetry.TransportMetrics, bool) {
	m, ok := c.tr.(MetricsSource)
	if !ok {
		return telemetry.TransportMetrics{}, false
	}
	return m.Metrics(), true
}

// TotalStats is the historical name of Stats. Note the Iterations
// semantics changed with the unified counter model: it now reports
// lockstep sweeps (Iter), not the historical per-rank sum — sum
// RankStats' Iterations for the old value.
//
// Deprecated: use Stats.
func (c *Cluster[T]) TotalStats() Stats { return c.Stats() }

// Gather reassembles the global domain from the ranks' current tile
// states — the MPI_Gather at the end of a distributed run. Call it between
// Run calls, never concurrently with one. Under LocalRanks only the hosted
// tiles are filled (remote tiles stay zero): a multi-process deployment
// gathers by collecting each process's tiles, as stencilrun -launch does.
func (c *Cluster[T]) Gather() *grid.Grid[T] {
	g := grid.New[T](c.decomp.Nx, c.decomp.Ny)
	for _, r := range c.ranks {
		for y := r.tile.Y0; y < r.tile.Y1; y++ {
			copy(g.Row(y)[r.tile.X0:r.tile.X1], r.buf.Read.Row(r.loY() + y - r.tile.Y0)[r.loX():r.hiX()])
		}
	}
	return g
}

// Grid gathers and returns the global domain state; an alias for Gather
// that completes the unified protector contract. Each call reassembles the
// domain from the rank tiles, so hoist it out of hot loops.
func (c *Cluster[T]) Grid() *grid.Grid[T] { return c.Gather() }

// Grid3D returns nil: this cluster decomposes 2-D domains (Cluster3D is
// the z-layer deployment).
func (c *Cluster[T]) Grid3D() *grid.Grid3D[T] { return nil }

// Finalize is a no-op: every rank verifies every sweep, so nothing is
// pending at the end of a run.
func (c *Cluster[T]) Finalize() {}

// Close stops the persistent rank goroutines and tears down the cluster's
// transport if the backend holds resources (the TCP backend's sockets and
// goroutines; the in-process channel backend has nothing to release).
// Call it after the final Run/Gather, never concurrently with one.
func (c *Cluster[T]) Close() error {
	c.closeOnce.Do(func() {
		for _, ch := range c.cmds {
			close(ch)
		}
	})
	if closer, ok := c.tr.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// Step advances the cluster by one lockstep iteration, applying the
// injection plan configured in Options. Each call dispatches to and joins
// the persistent rank goroutines, so batch iterations through Run(count)
// whenever the iteration count is known up front.
func (c *Cluster[T]) Step() { c.Run(1) }

// Run advances the cluster by count lockstep iterations, applying the
// injection plan configured in Options (injections match on the absolute
// iteration number, Iter-based). A transport fault is fatal, matching the
// TCP backend's MPI_ERRORS_ARE_FATAL semantics; use RunRecover to survive
// one.
func (c *Cluster[T]) Run(count int) {
	if err := c.run(count, nil); err != nil {
		panic(err)
	}
}

// RunRecover is the fault-tolerant Run: a transport fault (typically a
// *Fault from a dead peer process) is returned instead of panicking, after
// every hosted rank has unwound. On fault the cluster's iteration counter
// is NOT advanced — the hosted tiles are mid-iteration garbage and the
// caller (the resilience layer) is expected to restore a checkpoint with
// RestoreState/SetIter, or rebuild the cluster, before running again.
func (c *Cluster[T]) RunRecover(count int) error { return c.run(count, nil) }

// RunPlan advances the cluster by iters lockstep iterations with an
// explicit fault plan whose injections are indexed within this call,
// starting at 0 — the historical entry point. A plan configured in
// Options.Inject stays live (matched on absolute iterations) alongside the
// per-call plan.
//
// Deprecated: configure Options.Inject and use Run or Step.
func (c *Cluster[T]) RunPlan(iters int, plan *fault.Plan) {
	if err := c.run(iters, c.routePlan(plan)); err != nil {
		panic(err)
	}
}

// run advances iters lockstep iterations by handing each persistent rank
// goroutine a command and joining them. Each rank's sweep hook composes
// the configured Options.Inject plan (looked up at the absolute iteration)
// with the per-call plan (looked up at the in-call offset); perCall may be
// nil. A rank that panics with an error (the transport fault path) aborts
// the transport so its sibling ranks unwind from their own blocked
// Recv/Barrier calls, and run returns the first such fault once every rank
// has stopped; the rank goroutines survive an error fault and accept
// further commands (the resilience layer restores state and reruns).
// Non-error panics (programming bugs) abort the siblings too, then
// re-panic, killing the process.
func (c *Cluster[T]) run(iters int, perCall []*fault.Injector[T]) error {
	if iters <= 0 {
		return nil
	}
	c.faultMu.Lock()
	c.firstFault = nil
	c.faultMu.Unlock()
	base := c.iter
	for i := range c.ranks {
		var pc *fault.Injector[T]
		if perCall != nil {
			pc = perCall[i]
		}
		c.cmds[i] <- rankCmd[T]{iters: iters, base: base, perCall: pc}
	}
	for range c.ranks {
		<-c.done
	}
	c.faultMu.Lock()
	err := c.firstFault
	c.faultMu.Unlock()
	if err == nil {
		c.iter += iters
	}
	return err
}

// rankLoop is a materialised rank's persistent goroutine: it executes Run
// batches from its command channel until Close closes it.
func (c *Cluster[T]) rankLoop(r *rank[T], cfg *fault.Injector[T], cmds <-chan rankCmd[T]) {
	for cmd := range cmds {
		c.runBatch(r, cfg, cmd)
	}
}

// runBatch executes one Run batch on the rank's goroutine. The iteration
// body is the overlap/depth-k schedule (rank.advance); the cluster-wide
// barrier separates exchange rounds only — at halo depth k that is one
// barrier every k iterations, since the intervening local iterations
// touch no shared state. The barrier placed at the END of an exchange
// iteration is also what fences the in-process transport's zero-copy y
// payloads: a receiver has copied them before its barrier, so the sender
// may overwrite the underlying rows on its next sweep.
func (c *Cluster[T]) runBatch(r *rank[T], cfg *fault.Injector[T], cmd rankCmd[T]) {
	defer func() {
		p := recover()
		if p != nil {
			err, ok := p.(error)
			if ok {
				c.faultMu.Lock()
				if c.firstFault == nil {
					c.firstFault = err
				}
				c.faultMu.Unlock()
				p = nil
			} else {
				err = fmt.Errorf("dist: rank %d panic: %v", r.id, p)
			}
			c.abortTransport(err)
		}
		c.done <- struct{}{}
		if p != nil {
			panic(p)
		}
	}()
	for t := 0; t < cmd.iters; t++ {
		abs := cmd.base + t
		r.tel.SetIter(abs)
		hook := chainHooks(stencil.HookAt[T](injSource(cfg), abs), stencil.HookAt[T](injSource(cmd.perCall), t))
		r.advance(abs, hook)
		if c.afterStep != nil {
			c.afterStep(r.id, abs)
		}
		if r.depth == 1 || abs%r.depth == 0 {
			tb := r.tel.Begin()
			c.tr.Barrier()
			r.tel.End(telemetry.PhaseBarrierWait, tb)
		}
	}
}

// abortTransport wakes every rank blocked in the transport with cause, when
// the backend supports it. Both built-in backends do; a custom backend
// without Abort leaves sibling ranks to fail on their own timeouts.
func (c *Cluster[T]) abortTransport(cause error) {
	if a, ok := c.tr.(Aborter); ok {
		a.Abort(cause)
	}
}

// Transport exposes the cluster's communication backend — how the
// resilience layer reaches the checkpoint-carrier and abort capabilities of
// the transport it configured.
func (c *Cluster[T]) Transport() Transport[T] { return c.tr }

// SetIter rebases the cluster's absolute iteration counter — the rollback
// half of a checkpoint restore. Injection plans and telemetry keep working
// across a rebase because both are keyed on absolute iterations.
func (c *Cluster[T]) SetIter(n int) { c.iter = n }

// rankByID returns the hosted rank with the given global id.
func (c *Cluster[T]) rankByID(id int) *rank[T] {
	for p, rid := range c.local {
		if rid == id {
			return c.ranks[p]
		}
	}
	panic(fmt.Sprintf("dist: rank %d is not hosted by this cluster", id))
}

// StateLen returns the packed resilience-snapshot length of hosted rank id
// (tile points plus verified checksums), in elements.
func (c *Cluster[T]) StateLen(id int) int { return c.rankByID(id).stateLen() }

// PackState serialises hosted rank id's restartable state into dst (len >=
// StateLen(id)): tile rows in row-major order, then the verified column
// checksums. Bit-exact; see rank.packState. Call it only between
// iterations — from Options.AfterStep (on the rank's own goroutine) or
// while no Run is in flight.
func (c *Cluster[T]) PackState(id int, dst []T) { c.rankByID(id).packState(dst) }

// RestoreState overwrites hosted rank id's tile and verified checksums from
// a PackState snapshot. The rank's halo strips refresh at its next
// exchange. Pair with SetIter to complete a rollback.
func (c *Cluster[T]) RestoreState(id int, src []T) { c.rankByID(id).unpackState(src) }

// injSource widens a possibly-nil concrete injector into the InjectSource
// seam without producing a non-nil interface around a nil pointer.
func injSource[T num.Float](inj *fault.Injector[T]) stencil.InjectSource[T] {
	if inj == nil {
		return nil
	}
	return inj
}

// chainHooks composes two injection hooks, applying a then b; either (or
// both) may be nil.
func chainHooks[T num.Float](a, b stencil.InjectFunc[T]) stencil.InjectFunc[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(x, y, z int, v T) T { return b(x, y, z, a(x, y, z, v)) }
}

// routePlan splits a global fault plan into per-rank plans with the
// injection point translated into the owning rank's extended-grid frame
// (the coordinate the sweep hook sees). Injections outside the domain,
// with a non-zero Z, or owned by a rank another process hosts are dropped —
// each process routes the same global plan, so every injection is applied
// exactly once cluster-wide. The returned slice aligns with c.ranks and
// holds a nil injector for ranks with no scheduled injection.
func (c *Cluster[T]) routePlan(plan *fault.Plan) []*fault.Injector[T] {
	out := make([]*fault.Injector[T], len(c.ranks))
	if plan == nil {
		return out
	}
	pos := make(map[int]int, len(c.local))
	for p, id := range c.local {
		pos[id] = p
	}
	perRank := make([][]fault.Injection, len(c.ranks))
	for _, inj := range plan.Injections() {
		if inj.Z != 0 || inj.X < 0 || inj.X >= c.decomp.Nx || inj.Y < 0 || inj.Y >= c.decomp.Ny {
			continue
		}
		p, hosted := pos[c.decomp.OwnerOf(inj.X, inj.Y)]
		if !hosted {
			continue
		}
		r := c.ranks[p]
		local := inj
		local.X = inj.X - r.tile.X0 + r.hx
		local.Y = inj.Y - r.tile.Y0 + r.hy
		perRank[p] = append(perRank[p], local)
	}
	for p, injs := range perRank {
		if len(injs) > 0 {
			out[p] = fault.NewInjector[T](fault.NewPlan(injs...))
		}
	}
	return out
}
