package disttest

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"stencilabft/internal/chaos"
	"stencilabft/internal/dist"
)

// WireFactory builds the Transport under test with a wire-level connection
// wrapper installed — the dist.TCPConfig.WrapConn seam. Backends without a
// wire (the in-process channel transport) pass nil to RunChaos and skip
// the wire cases. Implementations should configure a short death deadline
// and keepalive period (a second or less) so idle-edge faults are
// discovered and healed well inside the harness's receive timeout.
type WireFactory func(ranksX, ranksY int, ring bool, wrap func(net.Conn, int, int, dist.Dir) net.Conn) dist.Transport[float64]

// RunChaos executes the chaos conformance cases against transports built
// by f: seam faults (message drops surfacing as clean classified faults,
// delays and stalls absorbed bit-identically by the lockstep) run on any
// backend, and each wire fault type (drop, dup, reorder, corrupt,
// transient disconnect) must be healed bit-identically by a backend that
// provides a WireFactory.
func RunChaos(t *testing.T, f Factory, wf WireFactory) {
	t.Run("ChaosSeamDropFaults", func(t *testing.T) { seamDropFaults(t, f) })
	t.Run("ChaosSeamDelayAbsorbed", func(t *testing.T) {
		seamAbsorbed(t, f, chaos.Fault{Type: chaos.Delay, Edge: &chaos.Edge{From: 0, To: 1}, At: 1, Count: 2, Ms: 40}, chaos.Delay, 2)
	})
	t.Run("ChaosSeamStallAbsorbed", func(t *testing.T) {
		seamAbsorbed(t, f, chaos.Fault{Type: chaos.Stall, Rank: 1, At: 2, Count: 1, Ms: 40}, chaos.Stall, 1)
	})
	if wf == nil {
		return
	}
	edge := &chaos.Edge{From: 0, To: 1}
	for _, c := range []struct {
		name  string
		fault chaos.Fault
	}{
		{"ChaosWireDropHeals", chaos.Fault{Type: chaos.Drop, Edge: edge, At: 3}},
		{"ChaosWireDupHeals", chaos.Fault{Type: chaos.Dup, Edge: edge, At: 4}},
		{"ChaosWireReorderHeals", chaos.Fault{Type: chaos.Reorder, Edge: edge, At: 5}},
		{"ChaosWireCorruptHeals", chaos.Fault{Type: chaos.Corrupt, Edge: edge, At: 6}},
		{"ChaosWireDisconnectHeals", chaos.Fault{Type: chaos.KillConn, Edge: edge, At: 7}},
	} {
		t.Run(c.name, func(t *testing.T) { wireFaultHeals(t, wf, c.fault) })
	}
}

// seamDropFaults drops a message above the transport, where no wire layer
// can heal it, and requires the receiver to surface a classified timeout
// fault — never a hang, never a garbage payload.
func seamDropFaults(t *testing.T, f Factory) {
	inner := f(1, 2, false)
	if !setRecvTimeout(inner, 400*time.Millisecond) {
		t.Skip("backend has no settable receive timeout; a seam drop cannot surface in test time")
	}
	in := chaos.NewInjector([]chaos.Fault{{Type: chaos.Drop, Edge: &chaos.Edge{From: 0, To: 1}}}, 1)
	tr := chaos.Wrap(inner, in, 1, 2, false)

	tr.Send(0, dist.Down, []float64{1}) // suppressed by the drop
	var fault *dist.Fault
	func() {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			var ok bool
			if fault, ok = p.(*dist.Fault); !ok {
				panic(p)
			}
		}()
		tr.Recv(1, dist.Up)
	}()
	if fault == nil {
		t.Fatal("receiver of a seam-dropped message returned instead of faulting")
	}
	if fault.Class != dist.ClassTimeout {
		t.Fatalf("seam drop surfaced as class %v, want %v: %v", fault.Class, dist.ClassTimeout, fault)
	}
	if got := in.Stats()[chaos.Drop]; got != 1 {
		t.Fatalf("injector fired %d drops, want 1", got)
	}
}

// seamAbsorbed injects a scheduling fault (delay or stall) and requires
// the exchange to stay bit-identical — the lockstep absorbs stragglers.
func seamAbsorbed(t *testing.T, f Factory, fault chaos.Fault, typ string, wantFires int64) {
	in := chaos.NewInjector([]chaos.Fault{fault}, 7)
	tr := chaos.Wrap(f(1, 2, false), in, 1, 2, false)
	if err := exchangeExact(tr, 6); err != nil {
		t.Fatal(err)
	}
	if got := in.Stats()[typ]; got != wantFires {
		t.Fatalf("injector fired %d %s faults, want %d", got, typ, wantFires)
	}
}

// wireFaultHeals scripts one wire fault under a deterministic seed and
// requires the transport's self-healing layer to absorb it: the full
// exchange delivers bit-identically, the fault demonstrably fired, and no
// edge was poisoned.
func wireFaultHeals(t *testing.T, wf WireFactory, fault chaos.Fault) {
	in := chaos.NewInjector([]chaos.Fault{fault}, 42)
	tr := wf(1, 2, false, in.WrapConn())
	setRecvTimeout(tr, 10*time.Second)
	if err := exchangeExact(tr, 12); err != nil {
		t.Fatalf("under a wire %s fault: %v", fault.Type, err)
	}
	if in.Total() == 0 {
		t.Fatalf("scripted %s fault never fired", fault.Type)
	}
	if m, ok := tr.(dist.MetricsSource); ok {
		if p := m.Metrics().Poisoned; p != 0 {
			t.Fatalf("wire %s fault poisoned %d edges; healing should have absorbed it", fault.Type, p)
		}
	}
}

// setRecvTimeout bounds the transport's blocking receives when the
// backend supports it (both built-in backends do).
func setRecvTimeout(tr dist.Transport[float64], d time.Duration) bool {
	s, ok := tr.(interface{ SetRecvTimeout(time.Duration) })
	if ok {
		s.SetRecvTimeout(d)
	}
	return ok
}

// exchangeExact drives a 1x2 halo exchange from both ranks concurrently
// for iters barrier-separated iterations and verifies every payload
// bit-exactly. Returns the first divergence or fault.
func exchangeExact(tr dist.Transport[float64], iters int) error {
	var once sync.Once
	var firstErr error
	fail := func(err error) { once.Do(func() { firstErr = err }) }

	var wg sync.WaitGroup
	run := func(id, peer int, d dist.Dir) {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				fail(fmt.Errorf("rank %d faulted: %v", id, p))
			}
		}()
		for it := 0; it < iters; it++ {
			tr.Send(id, d, []float64{float64(1000*id + it)})
			got := tr.Recv(id, d)
			if want := float64(1000*peer + it); len(got) != 1 || got[0] != want {
				fail(fmt.Errorf("rank %d iteration %d: received %v, want [%v] — delivery not bit-identical", id, it, got, want))
			}
			tr.Barrier()
		}
	}
	wg.Add(2)
	go run(0, 1, dist.Down)
	go run(1, 0, dist.Up)
	wg.Wait()
	return firstErr
}
