// Package disttest is the conformance harness for dist.Transport backends.
// The in-process channel transport, a future MPI or socket backend, or any
// wrapper (tracing, delaying, counting) can run the same suite: neighbour
// geometry over 1-D chains and 2-D rank grids, message routing and payload
// integrity in all four directions, torus wrap-around and self-exchange
// degeneracies, the two-phase send-before-receive ordering the halo
// exchange relies on, and barrier generation ordering.
//
// Usage, from the backend's own test file:
//
//	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
//		return dist.NewChanTransport[float64](rx, ry, ring)
//	})
package disttest

import (
	"sync"
	"testing"

	"stencilabft/internal/dist"
)

// Factory builds the Transport under test for a ranksX-by-ranksY rank grid
// (rank ids row-major, the Decomp convention); ring closes both axes into a
// torus.
type Factory func(ranksX, ranksY int, ring bool) dist.Transport[float64]

// Run executes the full conformance suite against transports built by f.
func Run(t *testing.T, f Factory) {
	t.Run("Neighbors1D", func(t *testing.T) { neighbors1D(t, f) })
	t.Run("Neighbors2D", func(t *testing.T) { neighbors2D(t, f) })
	t.Run("Routing1D", func(t *testing.T) { routing1D(t, f) })
	t.Run("Routing2D", func(t *testing.T) { routing2D(t, f) })
	t.Run("SelfExchange", func(t *testing.T) { selfExchange(t, f) })
	t.Run("ExchangeOrdering", func(t *testing.T) { exchangeOrdering(t, f) })
	t.Run("EitherCompletion", func(t *testing.T) { eitherCompletion(t, f) })
	t.Run("BarrierOrdering", func(t *testing.T) { barrierOrdering(t, f) })
}

// neighbors1D checks the band-chain wiring: edge ranks have no outer
// neighbour without a ring, every rank is fully wired with one, and no
// rank of a 1-column chain ever has a Left/Right neighbour without wrap.
func neighbors1D(t *testing.T, f Factory) {
	tr := f(1, 3, false)
	if tr.Neighbor(0, dist.Up) || tr.Neighbor(2, dist.Down) {
		t.Fatal("edge rank wired outward without periodic boundaries")
	}
	if !tr.Neighbor(1, dist.Up) || !tr.Neighbor(1, dist.Down) || !tr.Neighbor(0, dist.Down) || !tr.Neighbor(2, dist.Up) {
		t.Fatal("interior wiring missing")
	}
	for id := 0; id < 3; id++ {
		if tr.Neighbor(id, dist.Left) || tr.Neighbor(id, dist.Right) {
			t.Fatalf("1-column chain rank %d has an x neighbour", id)
		}
	}
	ring := f(1, 2, true)
	for i := 0; i < 2; i++ {
		if !ring.Neighbor(i, dist.Up) || !ring.Neighbor(i, dist.Down) {
			t.Fatalf("periodic rank %d not fully wired in y", i)
		}
	}
}

// neighbors2D checks the Cartesian grid wiring of a 3x2 grid (3 columns, 2
// rows): corners have exactly two neighbours without wrap, everyone has
// four with it.
func neighbors2D(t *testing.T, f Factory) {
	tr := f(3, 2, false)
	// Rank 0 is the top-left corner: only Right and Down.
	if tr.Neighbor(0, dist.Up) || tr.Neighbor(0, dist.Left) {
		t.Fatal("top-left corner wired outward")
	}
	if !tr.Neighbor(0, dist.Right) || !tr.Neighbor(0, dist.Down) {
		t.Fatal("top-left corner missing inward wiring")
	}
	// Rank 5 is the bottom-right corner: only Left and Up.
	if tr.Neighbor(5, dist.Down) || tr.Neighbor(5, dist.Right) {
		t.Fatal("bottom-right corner wired outward")
	}
	if !tr.Neighbor(5, dist.Left) || !tr.Neighbor(5, dist.Up) {
		t.Fatal("bottom-right corner missing inward wiring")
	}
	// Rank 1 (top edge, middle column): everything but Up.
	if tr.Neighbor(1, dist.Up) || !tr.Neighbor(1, dist.Left) || !tr.Neighbor(1, dist.Right) || !tr.Neighbor(1, dist.Down) {
		t.Fatal("top-edge wiring wrong")
	}
	torus := f(3, 2, true)
	for id := 0; id < 6; id++ {
		for d := dist.Dir(0); d < dist.NumDirs; d++ {
			if !torus.Neighbor(id, d) {
				t.Fatalf("torus rank %d missing %v neighbour", id, d)
			}
		}
	}
}

// routing1D checks that a message posted toward a direction arrives at the
// adjacent rank when received from the opposite side, including the ring
// wrap-around.
func routing1D(t *testing.T, f Factory) {
	tr := f(1, 3, false)
	tr.Send(1, dist.Up, []float64{1})
	if got := tr.Recv(0, dist.Down); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rank 0 received %v from below, want rank 1's upward message", got)
	}
	tr.Send(1, dist.Down, []float64{2})
	if got := tr.Recv(2, dist.Up); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rank 2 received %v from above, want rank 1's downward message", got)
	}

	ring := f(1, 2, true)
	ring.Send(0, dist.Up, []float64{3}) // wraps around to rank 1's lower side
	if got := ring.Recv(1, dist.Down); got[0] != 3 {
		t.Fatalf("ring wrap-around broken: %v", got)
	}
}

// routing2D checks all four directions on a 2x2 grid, payload integrity
// included, plus the x-axis wrap of the torus.
func routing2D(t *testing.T, f Factory) {
	tr := f(2, 2, false)
	// Ranks: 0 1
	//        2 3
	tr.Send(0, dist.Right, []float64{10, 11})
	if got := tr.Recv(1, dist.Left); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("rank 1 received %v from the left, want rank 0's rightward payload", got)
	}
	tr.Send(3, dist.Left, []float64{20})
	if got := tr.Recv(2, dist.Right); got[0] != 20 {
		t.Fatalf("rank 2 received %v from the right, want rank 3's leftward message", got)
	}
	tr.Send(3, dist.Up, []float64{30})
	if got := tr.Recv(1, dist.Down); got[0] != 30 {
		t.Fatalf("rank 1 received %v from below, want rank 3's upward message", got)
	}
	tr.Send(0, dist.Down, []float64{40})
	if got := tr.Recv(2, dist.Up); got[0] != 40 {
		t.Fatalf("rank 2 received %v from above, want rank 0's downward message", got)
	}

	torus := f(2, 2, true)
	torus.Send(0, dist.Left, []float64{50}) // wraps to rank 1's right side
	if got := torus.Recv(1, dist.Right); got[0] != 50 {
		t.Fatalf("torus x wrap broken: %v", got)
	}
	torus.Send(2, dist.Down, []float64{60}) // wraps to rank 0's upper side
	if got := torus.Recv(0, dist.Up); got[0] != 60 {
		t.Fatalf("torus y wrap broken: %v", got)
	}
}

// selfExchange checks the single-rank torus degeneracy on both axes: a
// rank's own opposite-direction message must come back to it.
func selfExchange(t *testing.T, f Factory) {
	self := f(1, 1, true)
	self.Send(0, dist.Up, []float64{4})
	self.Send(0, dist.Down, []float64{5})
	if got := self.Recv(0, dist.Down); got[0] != 4 {
		t.Fatalf("y self-exchange broken: %v", got)
	}
	if got := self.Recv(0, dist.Up); got[0] != 5 {
		t.Fatalf("y self-exchange broken: %v", got)
	}
	self.Send(0, dist.Left, []float64{6})
	self.Send(0, dist.Right, []float64{7})
	if got := self.Recv(0, dist.Right); got[0] != 6 {
		t.Fatalf("x self-exchange broken: %v", got)
	}
	if got := self.Recv(0, dist.Left); got[0] != 7 {
		t.Fatalf("x self-exchange broken: %v", got)
	}
}

// exchangeOrdering drives the halo exchange's two-phase schedule from every
// rank of a 2x2 torus concurrently for several barrier-separated
// iterations: phase 1 posts Left/Right then receives, phase 2 posts
// Up/Down then receives. Sends must never block (the non-blocking Isend
// contract) and every received payload must carry the sender's current
// iteration — halo data exactly one barrier generation fresh.
func exchangeOrdering(t *testing.T, f Factory) {
	const iters = 20
	tr := f(2, 2, true)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				stamp := func(d dist.Dir) []float64 { return []float64{float64(id), float64(it), float64(d)} }
				check := func(d dist.Dir, got []float64) {
					if len(got) != 3 || int(got[1]) != it || dist.Dir(got[2]) != d.Opposite() {
						t.Errorf("rank %d iter %d from %v: stale or misrouted payload %v", id, it, d, got)
					}
				}
				tr.Send(id, dist.Left, stamp(dist.Left))
				tr.Send(id, dist.Right, stamp(dist.Right))
				check(dist.Left, tr.Recv(id, dist.Left))
				check(dist.Right, tr.Recv(id, dist.Right))
				tr.Send(id, dist.Up, stamp(dist.Up))
				tr.Send(id, dist.Down, stamp(dist.Down))
				check(dist.Up, tr.Recv(id, dist.Up))
				check(dist.Down, tr.Recv(id, dist.Down))
				tr.Barrier()
			}
		}(id)
	}
	wg.Wait()
}

// eitherCompletion checks the per-edge completion contract of
// dist.EitherReceiver — the overlap schedule's boundary-strip feed: when
// only one of two directed edges has a pending payload, RecvEither must
// complete on that edge (not block waiting for the other), and when both
// are pending, two calls must drain both edges exactly once with each
// payload arriving under its own direction. Transports (or wrappers) that
// do not implement the optional interface are skipped: the cluster falls
// back to deterministic ordered receives for them.
func eitherCompletion(t *testing.T, f Factory) {
	tr := f(3, 1, false)
	er, ok := tr.(dist.EitherReceiver[float64])
	if !ok {
		t.Skip("transport does not implement dist.EitherReceiver")
	}
	// Only the left neighbour has posted: the call must complete on Left.
	tr.Send(0, dist.Right, []float64{1})
	if d, got := er.RecvEither(1, dist.Left, dist.Right); d != dist.Left || len(got) != 1 || got[0] != 1 {
		t.Fatalf("RecvEither = (%v, %v), want the pending Left edge with payload [1]", d, got)
	}
	// The other edge still drains through a plain Recv afterwards.
	tr.Send(2, dist.Left, []float64{2})
	if got := tr.Recv(1, dist.Right); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Right edge after RecvEither: %v", got)
	}

	// Both edges pending: two calls drain both exactly once, payloads
	// matched to their directions.
	tr.Send(0, dist.Right, []float64{10})
	tr.Send(2, dist.Left, []float64{20})
	want := map[dist.Dir]float64{dist.Left: 10, dist.Right: 20}
	for i := 0; i < 2; i++ {
		d, got := er.RecvEither(1, dist.Left, dist.Right)
		w, pending := want[d]
		if !pending || len(got) != 1 || got[0] != w {
			t.Fatalf("drain call %d: RecvEither = (%v, %v), want one undrained edge of %v", i, d, got, want)
		}
		delete(want, d)
	}

	// The y axis, on a fresh 1x3 chain.
	trY := f(1, 3, false)
	erY := trY.(dist.EitherReceiver[float64])
	trY.Send(2, dist.Up, []float64{3})
	if d, got := erY.RecvEither(1, dist.Up, dist.Down); d != dist.Down || len(got) != 1 || got[0] != 3 {
		t.Fatalf("RecvEither = (%v, %v), want the pending Down edge", d, got)
	}
	trY.Send(0, dist.Down, []float64{4})
	if d, got := erY.RecvEither(1, dist.Up, dist.Down); d != dist.Up || len(got) != 1 || got[0] != 4 {
		t.Fatalf("RecvEither = (%v, %v), want the remaining Up edge", d, got)
	}
}

// barrierOrdering hammers the transport's barrier across generations from
// a 2x2 grid's worth of parties: no party may pass generation g+1 before
// every party has arrived at generation g.
func barrierOrdering(t *testing.T, f Factory) {
	const parties, gens = 4, 200
	tr := f(2, 2, false)
	var mu sync.Mutex
	arrived := make([]int, parties)

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				mu.Lock()
				arrived[p] = g + 1
				for _, a := range arrived {
					if a < g {
						mu.Unlock()
						t.Errorf("party passed generation %d while another was at %d", g, a)
						return
					}
				}
				mu.Unlock()
				tr.Barrier()
			}
		}(p)
	}
	wg.Wait()
}
