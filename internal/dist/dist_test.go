package dist

import (
	"fmt"
	"sync"
	"testing"

	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

func testInit(nx, ny int) *grid.Grid[float64] {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 80 + float64((x*31+y*17)%23) + 0.25*float64(y) })
	return g
}

func strictOpts() Options[float64] {
	return Options[float64]{Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}}
}

// reference runs the unprotected single-process baseline.
func reference(t *testing.T, op *stencil.Op2D[float64], init *grid.Grid[float64], iters int) *grid.Grid[float64] {
	t.Helper()
	ref, err := core.NewNone2D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	return ref.Grid()
}

// TestClusterMatchesReference: an error-free cluster run must reproduce the
// single-process sweep bit for bit, for every boundary condition and for
// rank counts that divide the domain evenly and unevenly. The halo rows
// feed each rank exactly the values the global sweep would read, in the
// same accumulation order, so not even floating-point noise may differ.
func TestClusterMatchesReference(t *testing.T) {
	const nx, ny, iters = 33, 40, 12
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		for _, ranks := range []int{1, 2, 3, 5} {
			t.Run(fmt.Sprintf("%s/ranks%d", bc, ranks), func(t *testing.T) {
				op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: bc, BCValue: 42}
				init := testInit(nx, ny)
				want := reference(t, op, init, iters)

				c, err := NewCluster(op, init, ranks, strictOpts())
				if err != nil {
					t.Fatal(err)
				}
				c.Run(iters)
				if ts := c.TotalStats(); ts.Detections != 0 {
					t.Fatalf("false positive: %+v", ts)
				}
				if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
					t.Fatalf("cluster deviates from reference by %g", diff)
				}
			})
		}
	}
}

// TestClusterAsymmetricStencil exercises the band seam with a stencil whose
// boundary terms do not cancel (Advect2D), the case the paper's simplified
// listings cannot handle: exact beta terms plus halo-fed y-shifts must keep
// the run detection-free and bitwise equal to the reference.
func TestClusterAsymmetricStencil(t *testing.T) {
	const nx, ny, iters = 24, 30, 10
	op := &stencil.Op2D[float64]{St: stencil.Advect2D(0.3, 0.15), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewCluster(op, init, 4, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.TotalStats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("cluster deviates from reference by %g", diff)
	}
}

// TestClusterConstantField verifies the per-rank slicing of the constant
// field C (Equation 1's c term) in both the sweep and the interpolator.
func TestClusterConstantField(t *testing.T) {
	const nx, ny, iters = 20, 28, 8
	cfield := grid.New[float64](nx, ny)
	cfield.FillFunc(func(x, y int) float64 { return 0.01 * float64(x-y) })
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.15), BC: grid.Clamp, C: cfield}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewCluster(op, init, 3, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.TotalStats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("cluster deviates from reference by %g", diff)
	}
}

// TestClusterInjectionRouting: a global-coordinate injection must reach
// exactly the rank owning its row, be detected and corrected there, and
// leave every other rank untouched.
func TestClusterInjectionRouting(t *testing.T) {
	const nx, ny, iters, ranks = 16, 24, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	// Row 12 lies in rank 1's band (rows 8..15).
	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.RunPlan(iters, fault.NewPlan(fault.Injection{Iteration: 4, X: 8, Y: 12, Bit: 60}))

	for i, s := range c.RankStats() {
		if i == 1 {
			if s.Detections != 1 || s.CorrectedPoints != 1 {
				t.Fatalf("owning rank 1: %+v", s)
			}
		} else if s.Detections != 0 || s.CorrectedPoints != 0 {
			t.Fatalf("bystander rank %d saw the error: %+v", i, s)
		}
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
		t.Fatalf("residual after correction too large: %g", diff)
	}
}

// TestClusterBandBoundaryInjection corrupts the first row of an interior
// band — the row that becomes the upper neighbour's halo. Correction runs
// before the next exchange, so the neighbour must never see (or flag) the
// corruption.
func TestClusterBandBoundaryInjection(t *testing.T) {
	const nx, ny, iters, ranks = 16, 24, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Row 8 is rank 1's first row, exchanged into rank 0's halo.
	c.RunPlan(iters, fault.NewPlan(fault.Injection{Iteration: 5, X: 3, Y: 8, Bit: 58}))

	st := c.RankStats()
	if st[1].Detections != 1 || st[1].CorrectedPoints != 1 {
		t.Fatalf("owning rank 1: %+v", st[1])
	}
	if st[0].Detections != 0 || st[2].Detections != 0 {
		t.Fatalf("corruption leaked across the band seam: %+v / %+v", st[0], st[2])
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
		t.Fatalf("residual after correction too large: %g", diff)
	}
}

// TestClusterPeriodicInjection exercises the ring wiring: with periodic
// boundaries the top rank's halo is the bottom rank's data, and an error in
// either must stay a local affair.
func TestClusterPeriodicInjection(t *testing.T) {
	const nx, ny, iters, ranks = 16, 24, 10, 4
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Periodic}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is rank 0's first row, wrapped into rank 3's halo.
	c.RunPlan(iters, fault.NewPlan(fault.Injection{Iteration: 3, X: 5, Y: 0, Bit: 59}))

	st := c.RankStats()
	if st[0].Detections != 1 || st[0].CorrectedPoints != 1 {
		t.Fatalf("owning rank 0: %+v", st[0])
	}
	for i := 1; i < ranks; i++ {
		if st[i].Detections != 0 {
			t.Fatalf("rank %d flagged a remote error: %+v", i, st[i])
		}
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
		t.Fatalf("residual after correction too large: %g", diff)
	}
}

// TestClusterMultiRankInjections lands one flip in each of two different
// ranks during the same iteration; both must repair independently.
func TestClusterMultiRankInjections(t *testing.T) {
	const nx, ny, iters, ranks = 20, 32, 10, 4
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)

	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.RunPlan(iters, fault.NewPlan(
		fault.Injection{Iteration: 2, X: 4, Y: 2, Bit: 60},   // rank 0
		fault.Injection{Iteration: 2, X: 15, Y: 27, Bit: 59}, // rank 3
	))
	st := c.RankStats()
	for _, i := range []int{0, 3} {
		if st[i].Detections != 1 || st[i].CorrectedPoints != 1 {
			t.Fatalf("rank %d: %+v", i, st[i])
		}
	}
	for _, i := range []int{1, 2} {
		if st[i].Detections != 0 {
			t.Fatalf("bystander rank %d: %+v", i, st[i])
		}
	}
	ts := c.TotalStats()
	if ts.Detections != 2 || ts.CorrectedPoints != 2 {
		t.Fatalf("total: %+v", ts)
	}
}

// TestClusterUnevenBands checks the remainder-row distribution: band
// heights differ by at most one, cover the domain exactly, and the run
// still matches the reference.
func TestClusterUnevenBands(t *testing.T) {
	const nx, ny, iters, ranks = 16, 23, 8, 4
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0
	for i := 0; i < c.Ranks(); i++ {
		y0, y1 := c.Band(i)
		if y0 != prevEnd {
			t.Fatalf("band %d starts at %d, want %d", i, y0, prevEnd)
		}
		if h := y1 - y0; h != ny/ranks && h != ny/ranks+1 {
			t.Fatalf("band %d height %d", i, h)
		}
		prevEnd = y1
	}
	if prevEnd != ny {
		t.Fatalf("bands cover %d rows, want %d", prevEnd, ny)
	}
	c.Run(iters)
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("cluster deviates from reference by %g", diff)
	}
}

// TestClusterValidation covers the constructor's error paths.
func TestClusterValidation(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(16, 8)

	if _, err := NewCluster(op, init, 0, Options[float64]{}); err == nil {
		t.Fatal("nRanks=0 accepted")
	}
	if _, err := NewCluster(op, init, -2, Options[float64]{}); err == nil {
		t.Fatal("negative nRanks accepted")
	}
	// 8 rows over 8 ranks leaves 1-row bands, not taller than radius 1.
	if _, err := NewCluster(op, init, 8, Options[float64]{}); err == nil {
		t.Fatal("bands at stencil radius accepted")
	}
	if _, err := NewCluster(op, init, 9, Options[float64]{}); err == nil {
		t.Fatal("more ranks than rows accepted")
	}
	// 4 ranks over 8 rows leaves 2-row bands: the tallest radius-1 fit.
	if _, err := NewCluster(op, init, 4, Options[float64]{}); err != nil {
		t.Fatalf("4 ranks over 8 rows rejected: %v", err)
	}
	// Operator errors surface before decomposition.
	bad := &stencil.Op2D[float64]{St: &stencil.Stencil[float64]{Name: "empty"}, BC: grid.Clamp}
	if _, err := NewCluster(bad, init, 2, Options[float64]{}); err == nil {
		t.Fatal("invalid stencil accepted")
	}
}

// TestClusterPool runs the per-rank sweeps over a shared worker pool; the
// partitioned sweep must stay bitwise identical to the sequential one.
func TestClusterPool(t *testing.T) {
	const nx, ny, iters, ranks = 32, 36, 10, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.Pool = &stencil.Pool{Workers: 4}
	c, err := NewCluster(op, init, ranks, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.TotalStats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("cluster deviates from reference by %g", diff)
	}
}

// TestClusterPoolInjection lands two flips in the same rank during the
// same iteration while that rank's sweep is chunked over a worker pool:
// the shared injection hook fires from concurrent workers (the scenario
// that races if the injector's hit log is unsynchronised — run with
// -race), and both corruptions must still be located and repaired.
func TestClusterPoolInjection(t *testing.T) {
	const nx, ny, iters = 64, 32, 8
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)

	opt := strictOpts()
	opt.Pool = &stencil.Pool{Workers: 8}
	c, err := NewCluster(op, init, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.RunPlan(iters, fault.NewPlan(
		fault.Injection{Iteration: 3, X: 5, Y: 2, Bit: 60},
		fault.Injection{Iteration: 3, X: 60, Y: 29, Bit: 59},
	))
	ts := c.TotalStats()
	if ts.CorrectedPoints != 2 {
		t.Fatalf("expected both flips repaired: %+v", ts)
	}
}

// TestClusterRunResume: Run may be called repeatedly; iterations and stats
// accumulate, and injection iterations are indexed within each call.
func TestClusterRunResume(t *testing.T) {
	const nx, ny, ranks = 16, 24, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, 10)

	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(4)
	// Iteration 2 of the second call is absolute iteration 6.
	c.RunPlan(6, fault.NewPlan(fault.Injection{Iteration: 2, X: 8, Y: 4, Bit: 60}))
	if c.Iter() != 10 {
		t.Fatalf("iteration count %d, want 10", c.Iter())
	}
	ts := c.TotalStats()
	if ts.Detections != 1 || ts.CorrectedPoints != 1 {
		t.Fatalf("total stats: %+v", ts)
	}
	if ts.Iterations != 10 {
		t.Fatalf("cluster iterations %d, want lockstep sweeps (10), not rank-iterations", ts.Iterations)
	}
	summed := 0
	for _, s := range c.RankStats() {
		summed += s.Iterations
	}
	if summed != 10*ranks {
		t.Fatalf("summed rank iterations %d, want %d", summed, 10*ranks)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
		t.Fatalf("residual after correction too large: %g", diff)
	}

	// Run(0) and a nil plan are no-ops.
	c.Run(0)
	if c.Iter() != 10 {
		t.Fatal("Run(0) advanced the cluster")
	}
}

// TestClusterHaloCounters: every rank refreshes its halos exactly once per
// iteration, and out-of-domain injections are dropped by the router.
func TestClusterHaloCounters(t *testing.T) {
	const nx, ny, iters, ranks = 16, 20, 7, 2
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	c, err := NewCluster(op, testInit(nx, ny), ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Neither injection can land: one outside the domain, one in 3-D.
	c.RunPlan(iters, fault.NewPlan(
		fault.Injection{Iteration: 1, X: nx + 5, Y: 3, Bit: 60},
		fault.Injection{Iteration: 1, X: 3, Y: 3, Z: 1, Bit: 60},
	))
	for i, s := range c.RankStats() {
		if s.HaloExchanges != iters {
			t.Fatalf("rank %d halo exchanges %d, want %d", i, s.HaloExchanges, iters)
		}
		if s.Iterations != iters || s.Verifications != iters {
			t.Fatalf("rank %d counters: %+v", i, s)
		}
		if s.Detections != 0 {
			t.Fatalf("dropped injection still detected: %+v", s)
		}
	}
}

// TestStatsAdd checks the aggregation arithmetic in isolation.
func TestStatsAdd(t *testing.T) {
	a := Stats{Iterations: 1, Verifications: 2, Detections: 3, CorrectedPoints: 4, ChecksumRepairs: 5, HaloExchanges: 6}
	b := Stats{Iterations: 10, Verifications: 20, Detections: 30, CorrectedPoints: 40, ChecksumRepairs: 50, HaloExchanges: 60}
	got := a.Add(b)
	want := Stats{Iterations: 11, Verifications: 22, Detections: 33, CorrectedPoints: 44, ChecksumRepairs: 55, HaloExchanges: 66}
	if got != want {
		t.Fatalf("Add: %+v", got)
	}
	if s := got.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// countingTransport wraps another Transport and counts traffic — a stand-in
// for a real MPI/socket backend that proves the cluster runs all its
// communication through the seam.
type countingTransport struct {
	inner    Transport[float64]
	mu       sync.Mutex
	sends    int
	recvs    int
	barriers int
}

func (t *countingTransport) Send(from int, d Dir, data []float64) {
	t.mu.Lock()
	t.sends++
	t.mu.Unlock()
	t.inner.Send(from, d, data)
}

func (t *countingTransport) Recv(to int, d Dir) []float64 {
	t.mu.Lock()
	t.recvs++
	t.mu.Unlock()
	return t.inner.Recv(to, d)
}

func (t *countingTransport) Neighbor(id int, d Dir) bool { return t.inner.Neighbor(id, d) }

func (t *countingTransport) Barrier() {
	t.mu.Lock()
	t.barriers++
	t.mu.Unlock()
	t.inner.Barrier()
}

// TestClusterCustomTransport swaps the default channel transport for a
// wrapped one and checks every halo message and barrier goes through it,
// with results still bit-identical to the reference.
func TestClusterCustomTransport(t *testing.T) {
	const nx, ny, iters, ranks = 16, 24, 9, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	var ct *countingTransport
	opt := strictOpts()
	opt.NewTransport = func(rx, ry int, ring bool) Transport[float64] {
		if rx != 1 || ry != ranks || ring {
			t.Errorf("NewTransport called with grid %dx%d ring=%v", rx, ry, ring)
		}
		ct = &countingTransport{inner: NewChanTransport[float64](rx, ry, ring)}
		return ct
	}
	c, err := NewCluster(op, init, ranks, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("custom transport deviates from reference by %g", diff)
	}
	// 3 ranks, non-periodic: 4 interior edges send+recv per iteration.
	if ct.sends != 4*iters || ct.recvs != 4*iters {
		t.Fatalf("transport saw %d sends / %d recvs, want %d each", ct.sends, ct.recvs, 4*iters)
	}
	if ct.barriers != ranks*iters {
		t.Fatalf("transport saw %d barrier arrivals, want %d", ct.barriers, ranks*iters)
	}
}

// TestClusterOptionsInject: a plan configured up front is applied by Run
// with absolute iteration indexing, so it survives split Run calls and
// Step-by-Step driving.
func TestClusterOptionsInject(t *testing.T) {
	const nx, ny, iters, ranks = 16, 24, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	// Absolute iteration 7: lands inside the second Run call below.
	opt.Inject = fault.NewPlan(fault.Injection{Iteration: 7, X: 8, Y: 12, Bit: 60})
	c, err := NewCluster(op, init, ranks, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("injection fired early: %+v", ts)
	}
	c.Run(5)
	for c.Iter() < iters {
		c.Step()
	}
	ts := c.Stats()
	if ts.Detections != 1 || ts.CorrectedPoints != 1 {
		t.Fatalf("absolute-iteration injection not handled exactly once: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
		t.Fatalf("residual after correction too large: %g", diff)
	}
}

// TestClusterRunPlanComposesWithOptionsInject: a plan configured up front
// stays live (absolute iterations) while RunPlan's per-call plan applies at
// its in-call offsets; both flips must land and be repaired.
func TestClusterRunPlanComposesWithOptionsInject(t *testing.T) {
	const nx, ny, ranks = 16, 24, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)

	opt := strictOpts()
	// Absolute iteration 6 — inside the RunPlan call below (its 2nd sweep).
	opt.Inject = fault.NewPlan(fault.Injection{Iteration: 6, X: 3, Y: 2, Bit: 60})
	c, err := NewCluster(op, init, ranks, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(4)
	// Per-call iteration 2 = absolute iteration 6 as well, but in a
	// different rank's band, so both injections fire on the same sweep.
	c.RunPlan(6, fault.NewPlan(fault.Injection{Iteration: 2, X: 8, Y: 20, Bit: 59}))
	ts := c.Stats()
	if ts.Detections != 2 || ts.CorrectedPoints != 2 {
		t.Fatalf("configured + per-call plans did not both land: %+v", ts)
	}
}
