package dist_test

import (
	"testing"

	"stencilabft/internal/dist"
	"stencilabft/internal/dist/disttest"
)

// TestChanTransportConformance runs the default in-process channel backend
// through the disttest conformance harness — the same suite a future MPI or
// socket Transport implementation runs to prove itself a drop-in.
func TestChanTransportConformance(t *testing.T) {
	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		return dist.NewChanTransport[float64](rx, ry, ring)
	})
}
