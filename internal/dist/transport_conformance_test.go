package dist_test

import (
	"net"
	"testing"
	"time"

	"stencilabft/internal/dist"
	"stencilabft/internal/dist/disttest"
)

// TestChanTransportConformance runs the default in-process channel backend
// through the disttest conformance harness — the same suite a future MPI or
// socket Transport implementation runs to prove itself a drop-in.
func TestChanTransportConformance(t *testing.T) {
	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		return dist.NewChanTransport[float64](rx, ry, ring)
	})
}

// TestTCPTransportConformance certifies the socket backend with the exact
// same suite: every rank hosted in one process, but every halo strip and
// barrier token crossing a real loopback TCP connection.
func TestTCPTransportConformance(t *testing.T) {
	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
		if err != nil {
			t.Fatalf("NewTCPTransport(%dx%d, ring=%v): %v", rx, ry, ring, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	})
}

// TestChanTransportChaos runs the channel backend through the chaos
// cases: seam drops must fault cleanly, stragglers must be absorbed. The
// channel backend has no wire, so the wire-fault cases are skipped.
func TestChanTransportChaos(t *testing.T) {
	disttest.RunChaos(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		return dist.NewChanTransport[float64](rx, ry, ring)
	}, nil)
}

// TestTCPTransportChaos certifies the socket backend's self-healing layer
// under scripted wire faults: dropped, duplicated, reordered and corrupted
// frames plus transient disconnects must all end in bit-identical delivery
// with no poisoned edges, and seam faults behave exactly as on the channel
// backend. The short keepalive lets idle-edge losses heal in test time.
func TestTCPTransportChaos(t *testing.T) {
	disttest.RunChaos(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
		if err != nil {
			t.Fatalf("NewTCPTransport(%dx%d, ring=%v): %v", rx, ry, ring, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}, func(rx, ry int, ring bool, wrap func(net.Conn, int, int, dist.Dir) net.Conn) dist.Transport[float64] {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{
			RanksX: rx, RanksY: ry, Ring: ring,
			WrapConn:        wrap,
			DeathDeadline:   5 * time.Second,
			KeepalivePeriod: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewTCPTransport(%dx%d, ring=%v, chaos): %v", rx, ry, ring, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	})
}
