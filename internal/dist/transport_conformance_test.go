package dist_test

import (
	"testing"

	"stencilabft/internal/dist"
	"stencilabft/internal/dist/disttest"
)

// TestChanTransportConformance runs the default in-process channel backend
// through the disttest conformance harness — the same suite a future MPI or
// socket Transport implementation runs to prove itself a drop-in.
func TestChanTransportConformance(t *testing.T) {
	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		return dist.NewChanTransport[float64](rx, ry, ring)
	})
}

// TestTCPTransportConformance certifies the socket backend with the exact
// same suite: every rank hosted in one process, but every halo strip and
// barrier token crossing a real loopback TCP connection.
func TestTCPTransportConformance(t *testing.T) {
	disttest.Run(t, func(rx, ry int, ring bool) dist.Transport[float64] {
		tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
		if err != nil {
			t.Fatalf("NewTCPTransport(%dx%d, ring=%v): %v", rx, ry, ring, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	})
}
