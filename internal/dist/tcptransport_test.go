package dist

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyConn induces one transient connection failure: when the shared
// countdown hits zero the write fails and the connection closes — the
// wire-level fault the self-healing path must absorb.
type flakyConn struct {
	net.Conn
	countdown *atomic.Int32
}

func (c *flakyConn) Write(b []byte) (int, error) {
	if c.countdown.Add(-1) == 0 {
		c.Conn.Close()
		return 0, errors.New("induced transient connection failure")
	}
	return c.Conn.Write(b)
}

// TestTCPTransientDisconnectHeals kills the 1->0 edge connection mid-run
// and checks the transport heals it invisibly: every strip still arrives
// in order with the right bits, no error ever surfaces, and the metrics
// show the reconnect happened.
func TestTCPTransientDisconnectHeals(t *testing.T) {
	var countdown atomic.Int32
	countdown.Store(5) // fail the 5th write on the wrapped edge, once
	tr0, tr1 := splitTCPPair(t, false, func(cfg *TCPConfig) {
		cfg.DeathDeadline = 5 * time.Second
		cfg.WrapConn = func(conn net.Conn, from, to int, d Dir) net.Conn {
			if from == 1 && to == 0 {
				return &flakyConn{Conn: conn, countdown: &countdown}
			}
			return conn
		}
	})

	const iters = 10
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		for i := 0; i < iters; i++ {
			tr1.Send(1, Up, []float64{float64(100 + i)})
			got, err := tr1.recv(1, Up)
			if err != nil || got[0] != float64(i) {
				errs <- err
				return
			}
			tr1.Barrier()
		}
	}()
	for i := 0; i < iters; i++ {
		tr0.Send(0, Down, []float64{float64(i)})
		got, err := tr0.recv(0, Down)
		if err != nil {
			t.Fatalf("iteration %d: recv after induced disconnect: %v", i, err)
		}
		if got[0] != float64(100+i) {
			t.Fatalf("iteration %d: got %v, want %v — healing broke delivery order", i, got[0], 100+i)
		}
		tr0.Barrier()
	}
	if err, bad := <-errs; bad {
		t.Fatalf("rank 1 side: %v", err)
	}
	if countdown.Load() > 0 {
		t.Fatal("the induced failure never fired; the test exercised nothing")
	}
	m := tr1.Metrics()
	if m.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (the healed edge)", m.Reconnects)
	}
	if m0 := tr0.Metrics(); m0.Poisoned != 0 || m.Poisoned != 0 {
		t.Errorf("poison events %d/%d, want 0/0 — a transient fault must not kill an edge", m0.Poisoned, m.Poisoned)
	}
}

// newLoopbackTCP builds an all-local TCP transport for tests: every rank
// hosted in this process, halo traffic over real loopback sockets, no
// rendezvous needed (the address book is trivial).
func newLoopbackTCP(t *testing.T, rx, ry int, ring bool) *TCPTransport[float64] {
	t.Helper()
	tr, err := NewTCPTransport[float64](TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
	if err != nil {
		t.Fatalf("NewTCPTransport(%dx%d, ring=%v): %v", rx, ry, ring, err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// splitTCPPair wires the two ranks of a 1x2 chain as two separate
// TCPTransport instances meeting at a rendezvous — the in-process stand-in
// for two OS processes. mod (optional) adjusts each side's config before
// construction. Returns the transports hosting rank 0 and rank 1.
func splitTCPPair(t *testing.T, ring bool, mod ...func(*TCPConfig)) (*TCPTransport[float64], *TCPTransport[float64]) {
	t.Helper()
	apply := func(cfg TCPConfig) TCPConfig {
		for _, m := range mod {
			m(&cfg)
		}
		return cfg
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	type result struct {
		tr  *TCPTransport[float64]
		err error
	}
	ch0 := make(chan result, 1)
	go func() {
		tr, err := NewTCPTransport[float64](apply(TCPConfig{
			RanksX: 1, RanksY: 2, Ring: ring,
			LocalRanks: []int{0}, Rendezvous: addr, RendezvousListener: ln,
			DialTimeout: 5 * time.Second,
		}))
		ch0 <- result{tr, err}
	}()
	tr1, err := NewTCPTransport[float64](apply(TCPConfig{
		RanksX: 1, RanksY: 2, Ring: ring,
		LocalRanks: []int{1}, Rendezvous: addr,
		DialTimeout: 5 * time.Second,
	}))
	if err != nil {
		t.Fatalf("rank-1 transport: %v", err)
	}
	r0 := <-ch0
	if r0.err != nil {
		tr1.Close()
		t.Fatalf("rank-0 transport: %v", r0.err)
	}
	t.Cleanup(func() {
		r0.tr.Close()
		tr1.Close()
	})
	return r0.tr, tr1
}

// TestTCPRecvErrorOnPeerDeath kills one side of a running 1x2 TCP cluster
// and checks the survivor's receive fails with a wrapped error naming the
// rank, the direction and the barrier generation instead of hanging.
func TestTCPRecvErrorOnPeerDeath(t *testing.T) {
	// Healing disabled: the peer's death must surface immediately as a
	// permanent fault, not after a reconnect grace period.
	tr0, tr1 := splitTCPPair(t, false, func(cfg *TCPConfig) { cfg.DeathDeadline = -1 })

	// One healthy iteration first, so the failure happens mid-stream.
	done := make(chan struct{})
	go func() {
		tr1.Send(1, Up, []float64{42})
		if got, err := tr1.recv(1, Up); err != nil || got[0] != 7 {
			t.Errorf("healthy iteration: rank 1 got %v, %v", got, err)
		}
		tr1.Barrier()
		close(done)
	}()
	tr0.Send(0, Down, []float64{7})
	if got, err := tr0.recv(0, Down); err != nil || got[0] != 42 {
		t.Fatalf("healthy iteration: rank 0 got %v, %v", got, err)
	}
	tr0.Barrier()
	<-done

	// Rank 1's process "dies" mid-iteration.
	tr1.Close()
	_, err := tr0.recv(0, Down)
	if err == nil {
		t.Fatal("recv from a dead peer succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"rank 0", "down", "generation 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("peer-death error %q does not name %q", msg, want)
		}
	}
}

// TestTCPConnectRetryDeadline points a transport at a rendezvous nobody
// serves and checks the bootstrap gives up after the configured deadline
// with an actionable error, rather than retrying forever.
func TestTCPConnectRetryDeadline(t *testing.T) {
	// Reserve a port and close it again: nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	tr, err := NewTCPTransport[float64](TCPConfig{
		RanksX: 1, RanksY: 2,
		LocalRanks: []int{1}, Rendezvous: addr,
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		tr.Close()
		t.Fatal("bootstrap against a dead rendezvous succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bootstrap took %v, deadline was 300ms", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, "gave up") || !strings.Contains(msg, addr) {
		t.Errorf("deadline error %q does not describe the retry give-up at %s", msg, addr)
	}
}

// newHalfTCP builds a transport hosting only rank 0 of a 1x2 chain while
// the test plays rank 1's process with raw sockets: it registers a dummy
// data listener at the rendezvous, answers the transport's outbound edge
// handshake (hello → helloAck) and swallows everything after it, and
// returns a raw connection on which the test can write hand-crafted frames
// for the (genuinely unbound) inbound edge rank 1 --Up--> rank 0.
func newHalfTCP(t *testing.T, mod ...func(*TCPConfig)) (*TCPTransport[float64], net.Conn) {
	t.Helper()
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peerLn.Close() })
	go func() {
		for {
			c, err := peerLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					f, err := readFrame(c)
					if err != nil {
						return
					}
					if f.kind == frameHello {
						c.Write(appendFrame(nil, frame{kind: frameHelloAck, from: f.to, to: f.from, dir: f.dir, seq: 1}))
					}
				}
			}(c)
		}
	}()
	rdvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go registerAtRendezvous(rdvLn.Addr().String(), []int{1}, peerLn.Addr().String(), 5*time.Second, nil)
	cfg := TCPConfig{
		RanksX: 1, RanksY: 2,
		LocalRanks: []int{0}, Rendezvous: rdvLn.Addr().String(), RendezvousListener: rdvLn,
		DialTimeout: 5 * time.Second, IOTimeout: 5 * time.Second,
	}
	for _, m := range mod {
		m(&cfg)
	}
	tr, err := NewTCPTransport[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return tr, conn
}

// TestTCPWireVersionRejected handshakes a raw connection onto a live
// transport's data listener and then sends a frame from a "future" wire
// version; the receiving edge must reject it with an error naming both
// versions.
func TestTCPWireVersionRejected(t *testing.T) {
	// Healing off: the protocol error must poison the edge immediately with
	// the version cause, not wait out a reconnect grace period.
	tr, conn := newHalfTCP(t, func(cfg *TCPConfig) { cfg.DeathDeadline = -1 })

	// Valid hello for the directed edge rank 1 --Up--> rank 0, so the
	// connection binds to a real inbound box...
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHello, from: 1, to: 0, dir: byte(Up)})); err != nil {
		t.Fatal(err)
	}
	// ...then a version-mismatched halo frame.
	bad := appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 8})
	bad[2] = wireVersion + 1
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}

	_, err := tr.recv(0, Down)
	if err == nil {
		t.Fatal("version-mismatched frame accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "wire version mismatch") || !strings.Contains(msg, "version 2") {
		t.Errorf("version error %q does not name the mismatched versions", msg)
	}
}

// TestTCPRejectsMixedElementWidth checks a float32 halo frame arriving at a
// float64 rank is rejected (the elem byte in the header is validated).
func TestTCPRejectsMixedElementWidth(t *testing.T) {
	tr, conn := newHalfTCP(t)

	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHello, from: 1, to: 0, dir: byte(Up)})); err != nil {
		t.Fatal(err)
	}
	f32payload := appendElems(nil, []float32{1, 2})
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 4, payload: f32payload})); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.recv(0, Down); err == nil || !strings.Contains(err.Error(), "element width") {
		t.Fatalf("mixed element width accepted: %v", err)
	}
}

// TestTCPEdgeRebind checks the reconnect protocol on the receive side: a
// second hello for an already-bound edge supersedes the old connection, the
// helloAck names the resume sequence, replayed duplicates are deduplicated,
// and in-order frames on the new connection are delivered — the receiver
// half of transparent healing.
func TestTCPEdgeRebind(t *testing.T) {
	tr, conn := newHalfTCP(t)

	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHello, from: 1, to: 0, dir: byte(Up)})); err != nil {
		t.Fatal(err)
	}
	if ack, err := readFrame(conn); err != nil || ack.kind != frameHelloAck || ack.seq != 1 {
		t.Fatalf("first hello ack: %+v, %v", ack, err)
	}
	payload := appendElems(nil, []float64{11})
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 8, seq: 1, payload: payload})); err != nil {
		t.Fatal(err)
	}
	if got, err := tr.recv(0, Down); err != nil || got[0] != 11 {
		t.Fatalf("first stream: %v, %v", got, err)
	}

	// The peer "reconnects": the new hello takes the edge over and the ack
	// names the next sequence the box expects.
	dup, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dup.Close()
	if _, err := dup.Write(appendFrame(nil, frame{kind: frameHello, from: 1, to: 0, dir: byte(Up)})); err != nil {
		t.Fatal(err)
	}
	if ack, err := readFrame(dup); err != nil || ack.kind != frameHelloAck || ack.seq != 2 {
		t.Fatalf("rebind hello ack: %+v, %v (want resume at seq 2)", ack, err)
	}

	// A replay of the already-delivered frame is deduplicated; the next
	// in-order frame is delivered.
	stale := appendElems(nil, []float64{99})
	if _, err := dup.Write(appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 8, seq: 1, payload: stale})); err != nil {
		t.Fatal(err)
	}
	payload = appendElems(nil, []float64{22})
	if _, err := dup.Write(appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 8, seq: 2, payload: payload})); err != nil {
		t.Fatal(err)
	}
	if got, err := tr.recv(0, Down); err != nil || got[0] != 22 {
		t.Fatalf("stream after rebind: %v, %v", got, err)
	}
	if m := tr.Metrics(); m.DupFrames != 1 {
		t.Errorf("DupFrames = %d, want 1 (the replayed frame)", m.DupFrames)
	}
}

// TestTCPCorruptFrameRejected flips a payload bit after sealing and checks
// the receiving edge rejects the frame via the wire CRC, attributing the
// corruption to the edge.
func TestTCPCorruptFrameRejected(t *testing.T) {
	tr, conn := newHalfTCP(t, func(cfg *TCPConfig) { cfg.DeathDeadline = -1 })

	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHello, from: 1, to: 0, dir: byte(Up)})); err != nil {
		t.Fatal(err)
	}
	bad := appendFrame(nil, frame{kind: frameHalo, from: 1, to: 0, dir: byte(Up), elem: 8, seq: 1,
		payload: appendElems(nil, []float64{3.5})})
	bad[len(bad)-3] ^= 0x10 // one flipped bit in the payload
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}

	_, err := tr.recv(0, Down)
	if err == nil {
		t.Fatal("corrupted frame accepted")
	}
	msg := err.Error()
	for _, want := range []string{"CRC mismatch", "rank 1", "corrupted on the wire"} {
		if !strings.Contains(msg, want) {
			t.Errorf("corruption error %q does not name %q", msg, want)
		}
	}
	if m := tr.Metrics(); m.CrcErrors != 1 {
		t.Errorf("CrcErrors = %d, want 1", m.CrcErrors)
	}
}

// TestTCPRendezvousDuplicateRankRejected checks that two processes claiming
// the same rank fail the bootstrap loudly on both sides.
func TestTCPRendezvousDuplicateRankRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	serveErr := make(chan error, 1)
	go func() {
		_, err := serveRendezvous(ln, 2, []int{0}, "127.0.0.1:1", 2*time.Second)
		serveErr <- err
	}()
	// First registrant claims rank 0 — already owned by the server.
	_, err = registerAtRendezvous(addr, []int{0}, "127.0.0.1:2", 2*time.Second, nil)
	if err == nil || !strings.Contains(err.Error(), "registered twice") {
		t.Fatalf("duplicate registration not rejected: %v", err)
	}
	if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "registered twice") {
		t.Fatalf("rendezvous server accepted a duplicate rank: %v", err)
	}
}

// TestTCPRendezvousSurvivesStrayConnections checks the bootstrap service
// tolerates non-peer connections on its (possibly well-known) port — a
// port scanner or health probe must not abort the cluster start.
func TestTCPRendezvousSurvivesStrayConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	type result struct {
		book map[int]string
		err  error
	}
	served := make(chan result, 1)
	go func() {
		book, err := serveRendezvous(ln, 2, []int{0}, "127.0.0.1:1", 5*time.Second)
		served <- result{book, err}
	}()

	// Stray 1: connect and hang up. Stray 2: speak garbage.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
	}
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		c.Close()
	}

	// The real peer still registers fine.
	book, err := registerAtRendezvous(addr, []int{1}, "127.0.0.1:2", 5*time.Second, nil)
	if err != nil {
		t.Fatalf("registration after stray connections: %v", err)
	}
	if book[0] != "127.0.0.1:1" || book[1] != "127.0.0.1:2" {
		t.Fatalf("address book %v", book)
	}
	if r := <-served; r.err != nil || r.book[1] != "127.0.0.1:2" {
		t.Fatalf("server side: %v, %v", r.book, r.err)
	}
}

// TestTCPBarrierTimeout checks a barrier against a peer that never arrives
// fails after the IO timeout with an error naming the rank, direction,
// generation and round.
func TestTCPBarrierTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	type result struct {
		tr  *TCPTransport[float64]
		err error
	}
	ch0 := make(chan result, 1)
	go func() {
		tr, err := NewTCPTransport[float64](TCPConfig{
			RanksX: 1, RanksY: 2,
			LocalRanks: []int{0}, Rendezvous: addr, RendezvousListener: ln,
			DialTimeout: 5 * time.Second, IOTimeout: 300 * time.Millisecond,
		})
		ch0 <- result{tr, err}
	}()
	tr1, err := NewTCPTransport[float64](TCPConfig{
		RanksX: 1, RanksY: 2,
		LocalRanks: []int{1}, Rendezvous: addr,
		DialTimeout: 5 * time.Second, IOTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr1.Close()
	r0 := <-ch0
	if r0.err != nil {
		t.Fatal(r0.err)
	}
	defer r0.tr.Close()

	// Rank 1 never enters the barrier; rank 0's exchange must time out.
	err = r0.tr.exchangeTokens(0)
	if err == nil {
		t.Fatal("barrier against an absent peer completed")
	}
	msg := err.Error()
	for _, want := range []string{"rank 0", "generation 0", "round 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("barrier timeout error %q does not name %q", msg, want)
		}
	}
}
