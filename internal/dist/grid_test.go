package dist

import (
	"fmt"
	"testing"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestClusterGridMatchesReference: an error-free run over a 2-D rank grid
// must reproduce the single-process sweep bit for bit, for every boundary
// condition and for grid shapes covering vertical strips (1 row of ranks),
// horizontal bands (1 column), and proper R×C grids with tiles meeting at
// interior cross points. BoxBlur's diagonal points make the corner-halo
// threading load-bearing: a stale or missing corner value would break
// bit-identity immediately.
func TestClusterGridMatchesReference(t *testing.T) {
	const nx, ny, iters = 33, 40, 12
	shapes := []struct{ rx, ry int }{{3, 1}, {1, 3}, {2, 3}, {3, 2}}
	kernels := []struct {
		name string
		st   *stencil.Stencil[float64]
	}{
		{"star5", stencil.Laplace5(0.2)},
		{"box9", stencil.BoxBlur[float64]()},
	}
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		for _, k := range kernels {
			for _, sh := range shapes {
				t.Run(fmt.Sprintf("%s/%s/%dx%d", bc, k.name, sh.ry, sh.rx), func(t *testing.T) {
					op := &stencil.Op2D[float64]{St: k.st, BC: bc, BCValue: 42}
					init := testInit(nx, ny)
					want := reference(t, op, init, iters)

					c, err := NewClusterGrid(op, init, sh.rx, sh.ry, strictOpts())
					if err != nil {
						t.Fatal(err)
					}
					c.Run(iters)
					if ts := c.Stats(); ts.Detections != 0 {
						t.Fatalf("false positive: %+v", ts)
					}
					if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
						t.Fatalf("grid cluster deviates from reference by %g", diff)
					}
				})
			}
		}
	}
}

// TestClusterGridAsymmetricStencil exercises the tile seams with a stencil
// whose boundary terms do not cancel (Advect2D): the halo-column beta terms
// and halo-row alpha terms must keep a 2x2 grid detection-free and bitwise
// equal to the reference.
func TestClusterGridAsymmetricStencil(t *testing.T) {
	const nx, ny, iters = 24, 30, 10
	op := &stencil.Op2D[float64]{St: stencil.Advect2D(0.3, 0.15), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("grid cluster deviates from reference by %g", diff)
	}
}

// TestClusterGridConstantField verifies the per-tile x/y slicing of the
// constant field C in both the sweep and the interpolator.
func TestClusterGridConstantField(t *testing.T) {
	const nx, ny, iters = 20, 28, 8
	cfield := grid.New[float64](nx, ny)
	cfield.FillFunc(func(x, y int) float64 { return 0.01 * float64(x-y) })
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.15), BC: grid.Clamp, C: cfield}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	c, err := NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("grid cluster deviates from reference by %g", diff)
	}
}

// TestClusterGridInjectionLocality lands a bit-flip at tile interiors,
// tile edges (points whose halo copy a neighbour reads), interior tile
// corners (the cross point of four tiles) and domain corners. In every
// case the rank owning the point must detect and repair it alone — the
// paper's "intrinsically parallel" property extended to 2-D seams — and
// the repaired run must stay within correction residual of the reference.
func TestClusterGridInjectionLocality(t *testing.T) {
	const nx, ny, iters = 16, 24, 12
	// 2x2 grid: tiles split at x=8 and y=12.
	cases := []struct {
		name  string
		x, y  int
		owner int
	}{
		{"tile-interior", 4, 6, 0},
		{"vertical-seam-left", 7, 6, 0},
		{"vertical-seam-right", 8, 6, 1},
		{"horizontal-seam-top", 4, 11, 0},
		{"interior-cross-corner", 7, 11, 0},
		{"interior-cross-corner-opposite", 8, 12, 3},
		{"domain-corner-origin", 0, 0, 0},
		{"domain-corner-far", 15, 23, 3},
	}
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", bc, tc.name), func(t *testing.T) {
				op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: bc}
				init := testInit(nx, ny)
				want := reference(t, op, init, iters)

				opt := strictOpts()
				opt.Inject = fault.NewPlan(fault.Injection{Iteration: 5, X: tc.x, Y: tc.y, Bit: 58})
				c, err := NewClusterGrid(op, init, 2, 2, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := c.Decomp().OwnerOf(tc.x, tc.y); got != tc.owner {
					t.Fatalf("test setup: OwnerOf(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.owner)
				}
				c.Run(iters)
				for i, s := range c.RankStats() {
					if i == tc.owner {
						if s.Detections != 1 || s.CorrectedPoints != 1 {
							t.Fatalf("owning rank %d: %+v", i, s)
						}
					} else if s.Detections != 0 || s.CorrectedPoints != 0 {
						t.Fatalf("bystander rank %d saw the error: %+v", i, s)
					}
				}
				if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
					t.Fatalf("residual after correction too large: %g", diff)
				}
			})
		}
	}
}

// TestClusterGridMultiRankInjections lands one flip in each of two
// diagonally opposite tiles during the same iteration; both must repair
// independently.
func TestClusterGridMultiRankInjections(t *testing.T) {
	const nx, ny, iters = 20, 32, 10
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(nx, ny)

	opt := strictOpts()
	opt.Inject = fault.NewPlan(
		fault.Injection{Iteration: 2, X: 4, Y: 2, Bit: 60},   // rank 0 (top-left)
		fault.Injection{Iteration: 2, X: 15, Y: 27, Bit: 59}, // rank 3 (bottom-right)
	)
	c, err := NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	st := c.RankStats()
	for _, i := range []int{0, 3} {
		if st[i].Detections != 1 || st[i].CorrectedPoints != 1 {
			t.Fatalf("rank %d: %+v", i, st[i])
		}
	}
	for _, i := range []int{1, 2} {
		if st[i].Detections != 0 {
			t.Fatalf("bystander rank %d: %+v", i, st[i])
		}
	}
	if ts := c.Stats(); ts.Detections != 2 || ts.CorrectedPoints != 2 {
		t.Fatalf("total: %+v", ts)
	}
}

// TestClusterGridTilesAndStats checks the Tile accessor against the
// decomposition, the topology tag, and the per-direction halo counters: a
// 2x3 clamp grid's interior column ranks send both left and right, edge
// column ranks one side only, and every rank refreshes halos once per
// iteration.
func TestClusterGridTilesAndStats(t *testing.T) {
	const nx, ny, iters = 33, 40, 6
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	c, err := NewClusterGrid(op, testInit(nx, ny), 3, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	d := c.Decomp()
	if d.RanksX != 3 || d.RanksY != 2 || c.Ranks() != 6 {
		t.Fatalf("decomp %+v over %d ranks", d, c.Ranks())
	}
	for i := 0; i < c.Ranks(); i++ {
		if got, want := c.Tile(i), d.TileOf(i); got != want {
			t.Fatalf("Tile(%d) = %v, want %v", i, got, want)
		}
	}
	c.Run(iters)
	for i, s := range c.RankStats() {
		if s.Topology != "grid 2x3" {
			t.Fatalf("rank %d topology %q", i, s.Topology)
		}
		if s.HaloExchanges != iters {
			t.Fatalf("rank %d halo exchanges %d, want %d", i, s.HaloExchanges, iters)
		}
		cx, cy := d.Coords(i)
		wantDir := [4]int{}
		if cy > 0 {
			wantDir[Up] = iters
		}
		if cy < d.RanksY-1 {
			wantDir[Down] = iters
		}
		if cx > 0 {
			wantDir[Left] = iters
		}
		if cx < d.RanksX-1 {
			wantDir[Right] = iters
		}
		if s.HaloByDir != wantDir {
			t.Fatalf("rank %d (%d,%d) per-direction counters %v, want %v", i, cx, cy, s.HaloByDir, wantDir)
		}
	}
	ts := c.Stats()
	if ts.Topology != "grid 2x3" {
		t.Fatalf("merged topology %q", ts.Topology)
	}
	// 2x3 grid, clamp: 7 interior edges, each exchanged from both sides.
	wantMsgs := 14 * iters
	if got := ts.HaloByDir[Up] + ts.HaloByDir[Down] + ts.HaloByDir[Left] + ts.HaloByDir[Right]; got != wantMsgs {
		t.Fatalf("total messages %d, want %d", got, wantMsgs)
	}
}

// TestClusterGridPool runs the per-rank tile sweeps over a shared worker
// pool; the partitioned sweep must stay bitwise identical to the
// sequential one.
func TestClusterGridPool(t *testing.T) {
	const nx, ny, iters = 32, 36, 10
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.Pool = &stencil.Pool{Workers: 4}
	c, err := NewClusterGrid(op, init, 2, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("pooled grid cluster deviates from reference by %g", diff)
	}
}

// TestClusterGridValidation covers the grid constructor's error paths:
// degenerate factors and tiles at or below the stencil radius on either
// axis, with errors that name the axis.
func TestClusterGridValidation(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(16, 8)

	if _, err := NewClusterGrid(op, init, 0, 2, Options[float64]{}); err == nil {
		t.Fatal("zero rank columns accepted")
	}
	if _, err := NewClusterGrid(op, init, 2, -1, Options[float64]{}); err == nil {
		t.Fatal("negative rank rows accepted")
	}
	// 16 columns over 16 rank columns leaves 1-wide tiles at radius 1.
	if _, err := NewClusterGrid(op, init, 16, 1, Options[float64]{}); err == nil {
		t.Fatal("tiles at the stencil x-radius accepted")
	}
	// 8 rows over 8 rank rows leaves 1-tall tiles at radius 1.
	if _, err := NewClusterGrid(op, init, 1, 8, Options[float64]{}); err == nil {
		t.Fatal("tiles at the stencil y-radius accepted")
	}
	// 8x4 ranks over 16x8 leaves 2x2 tiles: the tightest radius-1 fit.
	if _, err := NewClusterGrid(op, init, 8, 4, Options[float64]{}); err != nil {
		t.Fatalf("tightest valid grid rejected: %v", err)
	}
}
