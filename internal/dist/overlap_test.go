package dist

import (
	"fmt"
	"testing"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestClusterDepthKMatchesReference is the depth-k pin: with HaloDepth
// k > 1 the cluster exchanges wide halos every k iterations and
// redundantly recomputes shrinking boundary shells in between, and the
// result must STILL be bit-identical to the single-process reference —
// for every boundary condition, for row-band / column-band / 2-D grid
// topologies, for star and full-box kernels (the box exercises the corner
// threading through the two-phase exchange), and for iteration counts
// both on and off an exchange boundary (a gather mid-cycle reads tiles
// whose shells are valid but unexchanged).
func TestClusterDepthKMatchesReference(t *testing.T) {
	const nx, ny = 33, 40
	kernels := []struct {
		name string
		st   *stencil.Stencil[float64]
	}{
		{"laplace5", stencil.Laplace5[float64](0.2)},
		{"boxblur", stencil.BoxBlur[float64]()},
	}
	topos := []struct{ rx, ry int }{{1, 4}, {4, 1}, {2, 2}}
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		for _, kr := range kernels {
			for _, topo := range topos {
				for _, depth := range []int{2, 4} {
					for _, iters := range []int{8, 9} {
						name := fmt.Sprintf("%s/%s/%dx%d/k%d/iters%d", bc, kr.name, topo.ry, topo.rx, depth, iters)
						t.Run(name, func(t *testing.T) {
							op := &stencil.Op2D[float64]{St: kr.st, BC: bc, BCValue: 42}
							init := testInit(nx, ny)
							want := reference(t, op, init, iters)

							opt := strictOpts()
							opt.HaloDepth = depth
							c, err := NewClusterGrid(op, init, topo.rx, topo.ry, opt)
							if err != nil {
								t.Fatal(err)
							}
							defer c.Close()
							c.Run(iters)
							if ts := c.Stats(); ts.Detections != 0 {
								t.Fatalf("false positive under depth-%d: %+v", depth, ts)
							}
							if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
								t.Fatalf("depth-%d cluster deviates from reference by %g", depth, diff)
							}
						})
					}
				}
			}
		}
	}
}

// TestClusterDepthKSplitRuns verifies the depth-k cycle position is keyed
// on the absolute iteration: a run split at a non-exchange boundary must
// resume mid-cycle and stay bit-identical to the unsplit run.
func TestClusterDepthKSplitRuns(t *testing.T) {
	const nx, ny, iters = 33, 40, 10
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Mirror}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.HaloDepth = 4
	c, err := NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(3) // stops at sub-iteration 3 of the first depth-4 cycle
	c.Run(iters - 3)
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("split depth-4 run deviates from reference by %g", diff)
	}
}

// TestClusterDepthKTCP runs the depth-k schedule over the real TCP
// backend (single-process loopback) — the per-edge completion path of
// TCPTransport.RecvEither feeding the boundary-strip sweeps — and demands
// bit-identity with the reference.
func TestClusterDepthKTCP(t *testing.T) {
	const nx, ny, iters = 33, 40, 8
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.HaloDepth = 2
	opt.NewTransport = func(rx, ry int, ring bool) Transport[float64] {
		tr, err := NewTCPTransport[float64](TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
		if err != nil {
			t.Fatalf("NewTCPTransport: %v", err)
		}
		return tr
	}
	c, err := NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive over TCP: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("depth-2 TCP cluster deviates from reference by %g", diff)
	}
}

// TestClusterDepthKOrderedFallback hides the transport's EitherReceiver
// behind a plain wrapper, forcing the deterministic ordered-receive
// fallback, which must be just as bit-exact.
func TestClusterDepthKOrderedFallback(t *testing.T) {
	const nx, ny, iters = 33, 40, 8
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Periodic}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.HaloDepth = 2
	opt.WrapTransport = func(tr Transport[float64], rx, ry int, ring bool) Transport[float64] {
		return &countingTransport{inner: tr}
	}
	c, err := NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(iters)
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("ordered-fallback depth-2 cluster deviates by %g", diff)
	}
}

// TestClusterDepthKCounters pins the communication-avoiding arithmetic:
// with depth k, halo exchange rounds and barriers happen once every k
// iterations instead of every iteration.
func TestClusterDepthKCounters(t *testing.T) {
	const nx, ny, iters, depth = 33, 40, 8, 2
	op := &stencil.Op2D[float64]{St: stencil.Laplace5[float64](0.2), BC: grid.Clamp}
	ct := &countingTransport{}
	opt := strictOpts()
	opt.HaloDepth = depth
	opt.WrapTransport = func(tr Transport[float64], rx, ry int, ring bool) Transport[float64] {
		ct.inner = tr
		return ct
	}
	c, err := NewClusterGrid(op, testInit(nx, ny), 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(iters)

	const ranks = 4
	rounds := iters / depth // every iteration with iter%depth == 0
	if wantB := ranks * rounds; ct.barriers != wantB {
		t.Errorf("barriers = %d, want %d (one per rank per exchange round)", ct.barriers, wantB)
	}
	// Each rank of a 2x2 grid has exactly two neighbours.
	if wantS := 2 * ranks * rounds; ct.sends != wantS || ct.recvs != wantS {
		t.Errorf("sends/recvs = %d/%d, want %d", ct.sends, ct.recvs, wantS)
	}
	for _, s := range c.RankStats() {
		if s.HaloExchanges != rounds {
			t.Errorf("rank HaloExchanges = %d, want %d", s.HaloExchanges, rounds)
		}
		if s.Iterations != iters {
			t.Errorf("rank Iterations = %d, want %d", s.Iterations, iters)
		}
	}
}

// TestClusterThinTileStrips forces the degenerate strip geometry: a
// radius-2 star kernel over tiles only 3 points wide, where left and
// right boundary strips would overlap and the schedule must fall back to
// receiving both halos before sweeping the merged strip. Still bit-exact.
func TestClusterThinTileStrips(t *testing.T) {
	st := &stencil.Stencil[float64]{Name: "star-r2", Points: []stencil.Point[float64]{
		{DX: 0, DY: 0, W: 0.4},
		{DX: -1, DY: 0, W: 0.1}, {DX: 1, DY: 0, W: 0.1},
		{DX: -2, DY: 0, W: 0.05}, {DX: 2, DY: 0, W: 0.05},
		{DX: 0, DY: -1, W: 0.1}, {DX: 0, DY: 1, W: 0.1},
		{DX: 0, DY: -2, W: 0.05}, {DX: 0, DY: 2, W: 0.05},
	}}
	const nx, ny, iters = 12, 12, 6
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic} {
		t.Run(bc.String(), func(t *testing.T) {
			op := &stencil.Op2D[float64]{St: st, BC: bc}
			init := testInit(nx, ny)
			want := reference(t, op, init, iters)

			// 4 columns x 4 rows of 3-wide, 3-tall tiles: 3 < 2*radius,
			// so both axes take the merged-strip path.
			c, err := NewClusterGrid(op, init, 4, 4, strictOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.Run(iters)
			if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
				t.Fatalf("thin-tile cluster deviates from reference by %g", diff)
			}
		})
	}
}

// TestClusterDepthKFaultCorrected injects a bit flip mid-tile under
// depth-2 ghost zones: the owning rank must detect and correct it with
// the depth-k interpolators. Correction is Equation (10), exact only to
// rounding, and under depth-k the corrected point's residual also rides
// the redundantly recomputed shells — so the run must end within a tight
// numerical envelope of the reference rather than bit-identical.
func TestClusterDepthKFaultCorrected(t *testing.T) {
	const nx, ny, iters = 33, 40, 8
	op := &stencil.Op2D[float64]{St: stencil.Laplace5[float64](0.2), BC: grid.Clamp}
	init := testInit(nx, ny)
	want := reference(t, op, init, iters)

	opt := strictOpts()
	opt.HaloDepth = 2
	opt.Inject = fault.NewPlan(fault.Injection{Iteration: 3, X: 8, Y: 10, Bit: 35})
	c, err := NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(iters)

	ts := c.Stats()
	if ts.Detections == 0 {
		t.Fatalf("injected fault not detected under depth-2: %+v", ts)
	}
	if ts.CorrectedPoints == 0 && ts.ChecksumRepairs == 0 {
		t.Fatalf("injected fault not corrected under depth-2: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff > 1e-9 {
		t.Fatalf("corrected depth-2 run deviates from reference by %g", diff)
	}
}

// TestClusterRunAllocs pins the tentpole allocation property: once a
// cluster is warm, a steady-state Run performs zero heap allocations per
// iteration — persistent rank goroutines, preallocated pack buffers,
// nil-hook sweep paths.
func TestClusterRunAllocs(t *testing.T) {
	const nx, ny = 64, 64
	op := &stencil.Op2D[float64]{St: stencil.Laplace5[float64](0.2), BC: grid.Clamp}
	c, err := NewClusterGrid(op, testInit(nx, ny), 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(2) // warm-up: plan caches, goroutine stacks

	if avg := testing.AllocsPerRun(10, func() { c.Run(1) }); avg != 0 {
		t.Errorf("steady-state Run(1) allocates %.1f times per call, want 0", avg)
	}
}
