package dist

import (
	"fmt"
	"testing"

	"stencilabft/internal/core"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

func testInit3D(nx, ny, nz int) *grid.Grid3D[float64] {
	g := grid.New3D[float64](nx, ny, nz)
	g.FillFunc(func(x, y, z int) float64 {
		return 300 + float64((x*31+y*17+z*11)%23) + 0.25*float64(z)
	})
	return g
}

func star7() *stencil.Stencil[float64] {
	return stencil.SevenPoint3D[float64](0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10)
}

// reference3D runs the unprotected single-process 3-D baseline.
func reference3D(t *testing.T, op *stencil.Op3D[float64], init *grid.Grid3D[float64], iters int) *grid.Grid3D[float64] {
	t.Helper()
	ref, err := core.NewNone3D(op, init, core.Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)
	return ref.Grid3D()
}

// TestCluster3DMatchesReference: an error-free layer-decomposed run must
// reproduce the single-process 3-D sweep bit for bit, for every boundary
// condition and for slab counts that divide the depth evenly and unevenly —
// the 3-D face of the acceptance criterion, and the proof that the slab
// deployment is the band structure reused.
func TestCluster3DMatchesReference(t *testing.T) {
	const nx, ny, nz, iters = 14, 12, 9, 8
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		for _, ranks := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/ranks%d", bc, ranks), func(t *testing.T) {
				op := &stencil.Op3D[float64]{St: star7(), BC: bc, BCValue: 42}
				init := testInit3D(nx, ny, nz)
				want := reference3D(t, op, init, iters)

				c, err := NewCluster3D(op, init, ranks, strictOpts())
				if err != nil {
					t.Fatal(err)
				}
				c.Run(iters)
				if ts := c.Stats(); ts.Detections != 0 {
					t.Fatalf("false positive: %+v", ts)
				}
				if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
					t.Fatalf("3-D cluster deviates from reference by %g", diff)
				}
			})
		}
	}
}

// TestCluster3DConstantField verifies the per-slab slicing of a 3-D
// constant field in both the sweep and the interpolator.
func TestCluster3DConstantField(t *testing.T) {
	const nx, ny, nz, iters = 12, 10, 8, 6
	cfield := grid.New3D[float64](nx, ny, nz)
	cfield.FillFunc(func(x, y, z int) float64 { return 0.01 * float64(x-y+2*z) })
	op := &stencil.Op3D[float64]{St: star7(), BC: grid.Clamp, C: cfield}
	init := testInit3D(nx, ny, nz)
	want := reference3D(t, op, init, iters)

	c, err := NewCluster3D(op, init, 3, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("3-D cluster deviates from reference by %g", diff)
	}
}

// TestCluster3DInjectionLocality lands a bit-flip in slab interiors and in
// the boundary layers that become a neighbour's halo (both sides of a slab
// seam, and the domain's bottom/top layers): the rank owning the layer must
// detect and repair alone, and the repaired run stays within correction
// residual of the reference.
func TestCluster3DInjectionLocality(t *testing.T) {
	const nx, ny, nz, iters = 12, 10, 9, 10
	// 3 ranks over 9 layers: slabs [0,3), [3,6), [6,9).
	cases := []struct {
		name    string
		x, y, z int
		owner   int
	}{
		{"slab-interior", 5, 4, 4, 1},
		{"seam-below", 6, 3, 2, 0}, // last layer of rank 0, rank 1's halo
		{"seam-above", 6, 3, 3, 1}, // first layer of rank 1, rank 0's halo
		{"domain-bottom", 2, 2, 0, 0},
		{"domain-top", 9, 7, 8, 2},
	}
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", bc, tc.name), func(t *testing.T) {
				op := &stencil.Op3D[float64]{St: star7(), BC: bc}
				init := testInit3D(nx, ny, nz)
				want := reference3D(t, op, init, iters)

				opt := strictOpts()
				opt.Inject = fault.NewPlan(fault.Injection{Iteration: 4, X: tc.x, Y: tc.y, Z: tc.z, Bit: 57})
				c, err := NewCluster3D(op, init, 3, opt)
				if err != nil {
					t.Fatal(err)
				}
				c.Run(iters)
				for i, s := range c.RankStats() {
					if i == tc.owner {
						if s.Detections != 1 || s.CorrectedPoints != 1 {
							t.Fatalf("owning rank %d: %+v", i, s)
						}
					} else if s.Detections != 0 || s.CorrectedPoints != 0 {
						t.Fatalf("bystander rank %d saw the error: %+v", i, s)
					}
				}
				if diff := c.Gather().MaxAbsDiff(want); diff > 1e-6 {
					t.Fatalf("residual after correction too large: %g", diff)
				}
			})
		}
	}
}

// TestCluster3DSlabsAndStats checks the slab partition, iteration
// accounting, topology tag and per-direction counters of the z chain.
func TestCluster3DSlabsAndStats(t *testing.T) {
	const nx, ny, nz, iters, ranks = 10, 8, 11, 7, 3
	op := &stencil.Op3D[float64]{St: star7(), BC: grid.Clamp}
	c, err := NewCluster3D(op, testInit3D(nx, ny, nz), ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0
	for i := 0; i < c.Ranks(); i++ {
		z0, z1 := c.Slab(i)
		if z0 != prevEnd {
			t.Fatalf("slab %d starts at %d, want %d", i, z0, prevEnd)
		}
		if d := z1 - z0; d != nz/ranks && d != nz/ranks+1 {
			t.Fatalf("slab %d depth %d", i, d)
		}
		prevEnd = z1
	}
	if prevEnd != nz {
		t.Fatalf("slabs cover %d layers, want %d", prevEnd, nz)
	}
	c.Run(iters)
	if c.Iter() != iters {
		t.Fatalf("iterations %d, want %d", c.Iter(), iters)
	}
	for i, s := range c.RankStats() {
		if s.Topology != "layers 3" {
			t.Fatalf("rank %d topology %q", i, s.Topology)
		}
		if s.HaloExchanges != iters || s.Verifications != iters {
			t.Fatalf("rank %d counters: %+v", i, s)
		}
		wantDir := [4]int{}
		if i > 0 {
			wantDir[Up] = iters
		}
		if i < ranks-1 {
			wantDir[Down] = iters
		}
		if s.HaloByDir != wantDir {
			t.Fatalf("rank %d per-direction counters %v, want %v", i, s.HaloByDir, wantDir)
		}
	}
	ts := c.Stats()
	if ts.Iterations != iters || ts.Topology != "layers 3" {
		t.Fatalf("merged stats: %+v", ts)
	}
}

// TestCluster3DPool partitions the per-rank layer sweeps over a shared
// worker pool; results must stay bitwise identical to the sequential run.
func TestCluster3DPool(t *testing.T) {
	const nx, ny, nz, iters = 16, 14, 8, 6
	op := &stencil.Op3D[float64]{St: star7(), BC: grid.Clamp}
	init := testInit3D(nx, ny, nz)
	want := reference3D(t, op, init, iters)

	opt := strictOpts()
	opt.Pool = &stencil.Pool{Workers: 4}
	c, err := NewCluster3D(op, init, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(iters)
	if ts := c.Stats(); ts.Detections != 0 {
		t.Fatalf("false positive: %+v", ts)
	}
	if diff := c.Gather().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("pooled 3-D cluster deviates from reference by %g", diff)
	}
}

// TestCluster3DValidation covers the constructor's error paths.
func TestCluster3DValidation(t *testing.T) {
	op := &stencil.Op3D[float64]{St: star7(), BC: grid.Clamp}
	init := testInit3D(10, 8, 6)

	if _, err := NewCluster3D(op, init, 0, Options[float64]{}); err == nil {
		t.Fatal("nRanks=0 accepted")
	}
	if _, err := NewCluster3D(op, init, -2, Options[float64]{}); err == nil {
		t.Fatal("negative nRanks accepted")
	}
	// 6 layers over 6 ranks leaves 1-layer slabs at z-radius 1.
	if _, err := NewCluster3D(op, init, 6, Options[float64]{}); err == nil {
		t.Fatal("slabs at the stencil z-radius accepted")
	}
	if _, err := NewCluster3D(op, init, 7, Options[float64]{}); err == nil {
		t.Fatal("more ranks than layers accepted")
	}
	// 3 ranks over 6 layers leaves 2-layer slabs: the thinnest radius-1 fit.
	if _, err := NewCluster3D(op, init, 3, Options[float64]{}); err != nil {
		t.Fatalf("3 ranks over 6 layers rejected: %v", err)
	}
}
