package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stencilabft/internal/num"
	"stencilabft/internal/telemetry"
)

// Dir identifies a halo direction relative to a rank in the Cartesian rank
// grid: Up is toward smaller grid row cy (smaller global y), Down toward
// larger, Left toward smaller grid column cx (smaller global x), Right
// toward larger. The 1-D row-band chain uses Up/Down only.
type Dir int

// Halo directions. NumDirs sizes per-direction tables (e.g. the
// stats.Stats.HaloByDir counters, which are indexed by Dir in this order).
const (
	Up Dir = iota
	Down
	Left
	Right
	NumDirs = 4
)

// String returns the direction's display name.
func (d Dir) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Opposite returns the direction a message sent toward d arrives from.
func (d Dir) Opposite() Dir {
	switch d {
	case Up:
		return Down
	case Down:
		return Up
	case Left:
		return Right
	default:
		return Left
	}
}

// Transport is the cluster's communication seam: it carries halo payloads
// between neighbouring ranks of a ranksX-by-ranksY Cartesian rank grid
// (rank ids row-major, id = cy*ranksX + cx — the Decomp convention) and
// separates iterations with a barrier — exactly the subset of MPI a
// bulk-synchronous stencil code needs (MPI_Cart_create neighbours,
// Isend/Irecv of boundary strips, MPI_Barrier). The default backend is
// ChanTransport (in-process paired channels); a real MPI or socket backend
// implements this interface and drops in via Options.NewTransport without
// touching the protection logic. The disttest package is the conformance
// harness any backend can run.
//
// Contract: within one iteration every rank performs at most one Send and
// one Recv per direction, in two phases — first Left/Right (packed boundary
// columns), then Up/Down (full extended-width boundary rows, which thread
// the corner data received in the first phase to the diagonal neighbours).
// Inside each phase a rank posts all its sends before its first Recv, and
// Send must not block — the non-blocking Isend schedule that keeps the
// exchange deadlock-free in any rank order. The payload slice passed to
// Send remains valid until the sender's next Barrier; the receiver must
// copy it out before passing its own Barrier.
type Transport[T num.Float] interface {
	// Send posts rank from's boundary strip toward its neighbour in
	// direction d. Must only be called when Neighbor(from, d) is true.
	Send(from int, d Dir, data []T)
	// Recv returns the strip the neighbour of rank to in direction d sent
	// this iteration. Must only be called when Neighbor(to, d) is true.
	Recv(to int, d Dir) []T
	// Neighbor reports whether rank id has a neighbour in direction d
	// (false at the domain edge under non-periodic boundaries; the rank
	// then synthesises its ghost strip from the boundary condition).
	Neighbor(id int, d Dir) bool
	// Barrier blocks until every rank has arrived — the per-iteration
	// lockstep that keeps halo data exactly one iteration fresh.
	Barrier()
}

// EitherReceiver is the optional transport extension behind the overlap
// schedule: RecvEither blocks until the halo strip from *either* of two
// directed edges arrives, returning whichever lands first. A rank that can
// learn per-edge completion sweeps the corresponding boundary strip while
// the other edge's strip is still in flight, instead of imposing an
// arbitrary wait order. Both backends implement it; a transport that does
// not is still correct — the rank falls back to receiving in a fixed order.
//
// Contract: d1 and d2 must be two distinct directions in which rank to has
// neighbours, within the same exchange phase (Left/Right together, Up/Down
// together, preserving the two-phase corner ordering). The caller must call
// RecvEither once and then Recv the remaining direction (or call RecvEither
// with the pair exactly once per phase per iteration); like Recv, the
// returned slice is only valid until the receiver's next Barrier.
type EitherReceiver[T num.Float] interface {
	RecvEither(to int, d1, d2 Dir) (Dir, []T)
}

// TryReceiver is the optional progress-polling capability: a non-blocking
// probe for a halo strip that has already been delivered. A strip that is
// present when the rank would otherwise start hiding latency has no latency
// left to hide — the overlap schedule folds it in immediately and sweeps
// its boundary strip fused with the interior (row-major, cache-warm)
// instead of as a separate cold column strip. Both built-in backends
// implement it; a transport that does not simply never takes the fast path.
//
// Contract: TryRecv(to, d) returns (strip, true) only when the strip is
// already queued, consuming it exactly as Recv would (same FIFO, same
// payload lifetime); (nil, false) otherwise — including on a faulted edge,
// whose failure surfaces on the subsequent blocking Recv.
type TryReceiver[T num.Float] interface {
	TryRecv(to int, d Dir) ([]T, bool)
}

// ChanTransport is the default in-process Transport: adjacent ranks of the
// Cartesian grid are wired with paired channels in the MPI neighbour
// pattern. Each channel carries one message per iteration per direction: a
// boundary strip, either as a view into the sender's read buffer (row
// strips, immutable until the iteration barrier) or as a sender-owned pack
// buffer (column strips, rewritten only after the barrier); the receiver
// copies before reaching its own barrier. Capacity 1 lets every rank post
// its phase's sends before either receive.
//
// Under a ring (periodic global boundaries) both axes close into a torus,
// so wrap-around halos are real remote data; a single rank on an axis
// degenerates to a self-exchange through the same channels.
type ChanTransport[T num.Float] struct {
	geo  Decomp // rank-grid shape only (Nx/Ny unused)
	ring bool
	ch   [NumDirs][]chan []T           // ch[d][i] carries rank i's strip toward direction d
	ck   [NumDirs][]chan ckptParcel[T] // ck[d][i] carries rank i's buddy snapshot toward d
	bar  *barrier
	em   *edgeCounters

	// recvTimeout, when positive, bounds every Recv/RecvCkpt wait so a
	// stalled sibling rank surfaces as a classified timeout fault instead
	// of a hang — the channel backend's analogue of TCPConfig.IOTimeout.
	recvTimeout time.Duration

	// Abort support: quit closes once with the first cause, waking every
	// blocked channel operation so a tolerant caller can unwind.
	abortOnce sync.Once
	abortErr  error
	quit      chan struct{}
}

// ckptParcel is one buddy-checkpoint snapshot in flight: the packed rank
// state and the iteration it was taken at.
type ckptParcel[T num.Float] struct {
	gen  int
	data []T
}

// edgeCounters tallies halo frames and payload bytes per (rank, direction)
// — [dir][rank], the sender's or receiver's view of one directed edge.
// Atomics, because rank goroutines update them concurrently with each
// other and with live metric scrapes; one Add per halo frame (not per
// point), so the cost is noise against the strip copy itself.
type edgeCounters struct {
	sentN, sentB, recvN, recvB [NumDirs][]atomic.Int64
}

func newEdgeCounters(n int) *edgeCounters {
	em := &edgeCounters{}
	for d := 0; d < NumDirs; d++ {
		em.sentN[d] = make([]atomic.Int64, n)
		em.sentB[d] = make([]atomic.Int64, n)
		em.recvN[d] = make([]atomic.Int64, n)
		em.recvB[d] = make([]atomic.Int64, n)
	}
	return em
}

func (em *edgeCounters) sent(d Dir, rank int, bytes int) {
	em.sentN[d][rank].Add(1)
	em.sentB[d][rank].Add(int64(bytes))
}

func (em *edgeCounters) recvd(d Dir, rank int, bytes int) {
	em.recvN[d][rank].Add(1)
	em.recvB[d][rank].Add(int64(bytes))
}

// snapshot renders the counters as the per-edge metrics of a geo-shaped
// grid: one EdgeStat per existing directed edge, pairing what rank From
// sent toward direction d with what it received back from that neighbour.
func (em *edgeCounters) snapshot(geo Decomp, ring bool) telemetry.TransportMetrics {
	var m telemetry.TransportMetrics
	for i := 0; i < geo.NumRanks(); i++ {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := geo.Neighbor(i, d, ring)
			if !ok {
				continue
			}
			m.Edges = append(m.Edges, telemetry.EdgeStat{
				From:       i,
				To:         nb,
				Dir:        d.String(),
				FramesSent: em.sentN[d][i].Load(),
				BytesSent:  em.sentB[d][i].Load(),
				FramesRecv: em.recvN[d][i].Load(),
				BytesRecv:  em.recvB[d][i].Load(),
			})
		}
	}
	m.SortEdges()
	return m
}

// NewChanTransport wires a ranksX-by-ranksY rank grid with paired halo
// channels; ring closes both axes into a torus (periodic boundaries). The
// 1-D row-band chain is the (1, nRanks) shape.
func NewChanTransport[T num.Float](ranksX, ranksY int, ring bool) *ChanTransport[T] {
	n := ranksX * ranksY
	t := &ChanTransport[T]{
		geo:  Decomp{RanksX: ranksX, RanksY: ranksY},
		ring: ring,
		bar:  newBarrier(n),
		quit: make(chan struct{}),
	}
	for d := range t.ch {
		t.ch[d] = make([]chan []T, n)
		t.ck[d] = make([]chan ckptParcel[T], n)
		for i := 0; i < n; i++ {
			t.ch[d][i] = make(chan []T, 1)
			t.ck[d][i] = make(chan ckptParcel[T], 1)
		}
	}
	t.em = newEdgeCounters(n)
	return t
}

// SetRecvTimeout bounds every subsequent Recv/RecvCkpt wait (<= 0 waits
// forever, the default). Call before the cluster runs; a timeout expiring
// surfaces as a panic with a *Fault of class ClassTimeout, the same stalled-
// peer semantics as the TCP backend's IOTimeout.
func (t *ChanTransport[T]) SetRecvTimeout(d time.Duration) { t.recvTimeout = d }

// expiry returns a channel that fires after the configured receive timeout,
// plus the timer to stop (both nil when unbounded).
func (t *ChanTransport[T]) expiry() (<-chan time.Time, *time.Timer) {
	if t.recvTimeout <= 0 {
		return nil, nil
	}
	tm := time.NewTimer(t.recvTimeout)
	return tm.C, tm
}

// Neighbor reports whether rank id has a neighbour in direction d.
func (t *ChanTransport[T]) Neighbor(id int, d Dir) bool {
	_, ok := t.geo.Neighbor(id, d, t.ring)
	return ok
}

// Send posts data on the channel toward rank from's neighbour in
// direction d.
func (t *ChanTransport[T]) Send(from int, d Dir, data []T) {
	t.em.sent(d, from, len(data)*int(elemSize[T]()))
	select {
	case t.ch[d][from] <- data:
	case <-t.quit:
	}
}

// Recv returns the strip sent toward rank to from direction d: the
// d-neighbour's message posted toward the opposite direction. On an
// aborted transport it panics with a *Fault carrying the abort cause, the
// same fatal semantics as the TCP backend.
func (t *ChanTransport[T]) Recv(to int, d Dir) []T {
	nb, ok := t.geo.Neighbor(to, d, t.ring)
	if !ok {
		panic(fmt.Sprintf("dist: Recv(%d, %v) without a neighbour", to, d))
	}
	expire, tm := t.expiry()
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case data := <-t.ch[d.Opposite()][nb]:
		t.em.recvd(d, to, len(data)*int(elemSize[T]()))
		return data
	case <-t.quit:
		panic(&Fault{Rank: to, Dir: d, Peer: nb, Gen: t.bar.generation(), Err: t.abortErr})
	case <-expire:
		panic(&Fault{Rank: to, Dir: d, Peer: nb, Gen: t.bar.generation(), Class: ClassTimeout,
			Err: fmt.Errorf("timed out after %v waiting for the halo strip", t.recvTimeout)})
	}
}

// TryRecv returns the strip sent toward rank to from direction d if it has
// already been delivered, without blocking; (nil, false) when nothing is
// queued (or the transport is aborted — the fault surfaces on the blocking
// Recv).
func (t *ChanTransport[T]) TryRecv(to int, d Dir) ([]T, bool) {
	nb, ok := t.geo.Neighbor(to, d, t.ring)
	if !ok {
		panic(fmt.Sprintf("dist: TryRecv(%d, %v) without a neighbour", to, d))
	}
	select {
	case data := <-t.ch[d.Opposite()][nb]:
		t.em.recvd(d, to, len(data)*int(elemSize[T]()))
		return data, true
	default:
		return nil, false
	}
}

// RecvEither returns the first strip to arrive from either direction d1 or
// d2 — the per-edge completion notification the overlap schedule sweeps
// boundary strips by. Panics with a *Fault (abort cause or timeout) exactly
// like Recv.
func (t *ChanTransport[T]) RecvEither(to int, d1, d2 Dir) (Dir, []T) {
	nb1, ok1 := t.geo.Neighbor(to, d1, t.ring)
	nb2, ok2 := t.geo.Neighbor(to, d2, t.ring)
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("dist: RecvEither(%d, %v, %v) without both neighbours", to, d1, d2))
	}
	expire, tm := t.expiry()
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case data := <-t.ch[d1.Opposite()][nb1]:
		t.em.recvd(d1, to, len(data)*int(elemSize[T]()))
		return d1, data
	case data := <-t.ch[d2.Opposite()][nb2]:
		t.em.recvd(d2, to, len(data)*int(elemSize[T]()))
		return d2, data
	case <-t.quit:
		panic(&Fault{Rank: to, Dir: d1, Peer: nb1, Gen: t.bar.generation(), Err: t.abortErr})
	case <-expire:
		panic(&Fault{Rank: to, Dir: d1, Peer: nb1, Gen: t.bar.generation(), Class: ClassTimeout,
			Err: fmt.Errorf("timed out after %v waiting for a halo strip from %v or %v", t.recvTimeout, d1, d2)})
	}
}

// SendCkpt posts rank from's buddy snapshot toward direction d — the
// CkptCarrier seam of the resilience layer's buddy checkpointing.
func (t *ChanTransport[T]) SendCkpt(from int, d Dir, gen int, data []T) {
	t.em.sent(d, from, len(data)*int(elemSize[T]()))
	select {
	case t.ck[d][from] <- ckptParcel[T]{gen: gen, data: data}:
	case <-t.quit:
	}
}

// RecvCkpt returns the next buddy snapshot sent toward rank to from
// direction d, with its iteration stamp; on an aborted transport it
// returns the cause.
func (t *ChanTransport[T]) RecvCkpt(to int, d Dir) ([]T, int, error) {
	nb, ok := t.geo.Neighbor(to, d, t.ring)
	if !ok {
		panic(fmt.Sprintf("dist: RecvCkpt(%d, %v) without a neighbour", to, d))
	}
	expire, tm := t.expiry()
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case p := <-t.ck[d.Opposite()][nb]:
		t.em.recvd(d, to, len(p.data)*int(elemSize[T]()))
		return p.data, p.gen, nil
	case <-t.quit:
		return nil, 0, t.abortErr
	case <-expire:
		return nil, 0, fmt.Errorf("dist: ckpt recv for rank %d from %v: timed out after %v", to, d, t.recvTimeout)
	}
}

// Abort wakes every blocked Send/Recv/Barrier with cause — how a tolerant
// cluster run unwinds its surviving rank goroutines after one of them
// faults. Idempotent; the first cause wins.
func (t *ChanTransport[T]) Abort(cause error) {
	t.abortOnce.Do(func() {
		t.abortErr = cause
		close(t.quit)
	})
	t.bar.abort(cause)
}

// Barrier blocks until all ranks have arrived, or panics with the abort
// cause when the transport was aborted.
func (t *ChanTransport[T]) Barrier() { t.bar.await() }

// Metrics returns the per-edge halo traffic counted so far. The channel
// backend has no writer queues, dials or poison — those stay zero.
func (t *ChanTransport[T]) Metrics() telemetry.TransportMetrics {
	return t.em.snapshot(t.geo, t.ring)
}

// barrier is a reusable cyclic barrier: await blocks until all n parties
// have arrived, then releases the generation together — the per-iteration
// lockstep of the cluster. An aborted barrier is permanently failed:
// every pending and future await panics with the cause, so no party can
// hang waiting for one that died.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	fail  error
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every party has called await for the current
// generation, or panics with the abort cause.
func (b *barrier) await() {
	b.mu.Lock()
	if b.fail != nil {
		err := b.fail
		b.mu.Unlock()
		panic(err)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && b.fail == nil {
		b.cond.Wait()
	}
	err := b.fail
	b.mu.Unlock()
	if err != nil {
		panic(err)
	}
}

// abort fails the barrier with cause (first cause wins) and wakes every
// waiter.
func (b *barrier) abort(cause error) {
	b.mu.Lock()
	if b.fail == nil {
		b.fail = cause
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// generation returns the number of completed barrier generations.
func (b *barrier) generation() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}
