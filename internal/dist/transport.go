package dist

import (
	"sync"

	"stencilabft/internal/num"
)

// Dir identifies a halo direction relative to a rank: Up is toward lower
// rank ids (smaller global y), Down toward higher.
type Dir int

// Halo directions.
const (
	Up Dir = iota
	Down
)

// Transport is the cluster's communication seam: it carries halo rows
// between neighbouring ranks and separates iterations with a barrier —
// exactly the subset of MPI a bulk-synchronous stencil code needs
// (Isend/Irecv of boundary rows plus MPI_Barrier). The default backend is
// ChanTransport (in-process paired channels); a real MPI or socket backend
// implements this interface and drops in via Options.NewTransport without
// touching the protection logic.
//
// Contract: within one iteration every rank posts its sends (both
// directions) before its first Recv, and Send must not block when the
// neighbour has not yet received the previous message — the non-blocking
// Isend schedule that keeps the exchange deadlock-free in any rank order.
// The rows slice passed to Send remains valid until the next Barrier; the
// receiver must copy before passing its own Barrier.
type Transport[T num.Float] interface {
	// Send posts rank from's boundary rows toward its neighbour in
	// direction d. Must only be called when Neighbor(from, d) is true.
	Send(from int, d Dir, rows []T)
	// Recv returns the rows the neighbour of rank to in direction d sent
	// this iteration. Must only be called when Neighbor(to, d) is true.
	Recv(to int, d Dir) []T
	// Neighbor reports whether rank id has a neighbour in direction d
	// (false at the domain edge under non-periodic boundaries; the rank
	// then synthesises its ghost rows from the boundary condition).
	Neighbor(id int, d Dir) bool
	// Barrier blocks until every rank has arrived — the per-iteration
	// lockstep that keeps halo data exactly one iteration fresh.
	Barrier()
}

// ChanTransport is the default in-process Transport: adjacent ranks are
// wired with paired channels in the MPI neighbour pattern. Each channel
// carries one message per iteration: the sender's boundary rows as a view
// into its read buffer (safe to share because band rows are immutable until
// the iteration barrier, and the receiver copies before reaching it).
// Capacity 1 lets every rank post both sends before either receive.
//
// Under a ring (periodic global boundaries) rank 0's upper neighbour is the
// last rank, so the wrap-around halo is real remote data; with one rank the
// ring degenerates to a self-exchange through the same channels.
type ChanTransport[T num.Float] struct {
	n    int
	ring bool
	up   []chan []T // up[i] carries rank i's top rows to the rank above
	down []chan []T // down[i] carries rank i's bottom rows to the rank below
	bar  *barrier
}

// NewChanTransport wires n ranks with paired halo channels; ring closes the
// topology into a cycle (periodic boundaries).
func NewChanTransport[T num.Float](n int, ring bool) *ChanTransport[T] {
	t := &ChanTransport[T]{
		n:    n,
		ring: ring,
		up:   make([]chan []T, n),
		down: make([]chan []T, n),
		bar:  newBarrier(n),
	}
	for i := 0; i < n; i++ {
		t.up[i] = make(chan []T, 1)
		t.down[i] = make(chan []T, 1)
	}
	return t
}

// Neighbor reports whether rank id has a neighbour in direction d.
func (t *ChanTransport[T]) Neighbor(id int, d Dir) bool {
	if t.ring {
		return true
	}
	if d == Up {
		return id > 0
	}
	return id < t.n-1
}

// Send posts rows on the channel toward rank from's neighbour.
func (t *ChanTransport[T]) Send(from int, d Dir, rows []T) {
	if d == Up {
		t.up[from] <- rows
	} else {
		t.down[from] <- rows
	}
}

// Recv returns the rows sent toward rank to from direction d: from above,
// that is the upper neighbour's down-channel; from below, the lower
// neighbour's up-channel.
func (t *ChanTransport[T]) Recv(to int, d Dir) []T {
	if d == Up {
		return <-t.down[(to-1+t.n)%t.n]
	}
	return <-t.up[(to+1)%t.n]
}

// Barrier blocks until all n ranks have arrived.
func (t *ChanTransport[T]) Barrier() { t.bar.await() }

// barrier is a reusable cyclic barrier: await blocks until all n parties
// have arrived, then releases the generation together — the per-iteration
// lockstep of the cluster.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every party has called await for the current
// generation.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
