package dist

import (
	"runtime"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// This file is the overlap/depth-k rank schedule — the production
// per-iteration path (rank.advance). It restructures the historical
// exchange-then-sweep step (exchangeHalos + step, kept as the sequential
// reference) around two ideas:
//
// Compute/communication overlap. On an exchange iteration the rank posts
// its boundary strips first, sweeps the interior region — every point
// whose dependencies are already local — while the strips travel, and
// then sweeps each boundary strip as soon as that edge's halo lands
// (Transport backends that implement EitherReceiver complete the two
// x-edges in arrival order; others fall back to the deterministic ordered
// receive). The two-phase corner protocol is preserved: y-phase sends go
// out only after both x halos have been folded in, so each Up/Down
// message still threads the corner data a 9-point box kernel needs.
//
// Depth-k ghost zones (communication-avoiding). With halo depth k the
// halo strips are k·radius wide and are exchanged only on iterations
// where iter%k == 0. The k-1 iterations in between sweep an extended
// rectangle that shrinks by one stencil radius per iteration on every
// side that has a real neighbour: the rank redundantly recomputes its
// neighbours' boundary shells from the wide halo instead of
// communicating. Because every recomputed point applies the same kernel
// to bit-identical inputs its owner applies, the schedule is bit-exact
// with the depth-1 run in fault-free executions.
//
// Progress polling rides on the same schedule: before committing to the
// interior sweep the rank polls each x edge (TryReceiver), and a halo
// that is already delivered — there is no latency left to hide — is
// unpacked immediately so its strip is absorbed into the interior sweep,
// full-width, fused and row-major, instead of being swept later as a
// cache-cold column strip. A yield after posting sends lets sibling ranks
// hosted on the same core post theirs first, which on an oversubscribed
// host makes absorption the common case. The y phase polls the same way
// after its sends.
//
// Checksum integrity across all of this: the fused column checksums b
// cover exactly the tile's own columns. Sweeping the tile in several
// rects splits a row's sum into segments; the interior sweep fuses its
// segment in place and combineRowChecksums folds the narrow boundary
// segments in afterwards, always in left-to-right segment order. How a
// row was segmented — one fused pass when a strip was absorbed, separate
// boundary folds when it was not — shifts the sum by round-off only,
// which is invisible to detection (the direct-vs-interpolated residual is
// ~1e-15 relative either way, detection thresholds are orders of
// magnitude wider) and irrelevant to the grid data, which stays
// bit-identical under every arrival order. Degenerate thin tiles keep the
// ChecksumBRect full-width repass — their rows are only a few points
// wide. Halo checksum entries are only needed within one stencil y-radius
// of the tile (InterpolateBBand reads no deeper), so depth-k verification
// sums just the ry rows adjacent to the tile.

// bindTransport caches the rank's neighbour presence and the transport's
// optional per-edge completion capability. Called once after r.tr is set;
// a zero stencil radius in an axis disables that axis's exchange exactly
// like the historical path.
func (r *rank[T]) bindTransport() {
	r.hasL = r.hx > 0 && r.tr.Neighbor(r.id, Left)
	r.hasR = r.hx > 0 && r.tr.Neighbor(r.id, Right)
	r.hasU = r.hy > 0 && r.tr.Neighbor(r.id, Up)
	r.hasD = r.hy > 0 && r.tr.Neighbor(r.id, Down)
	if e, ok := r.tr.(EitherReceiver[T]); ok {
		r.either = e
	} else {
		r.either = nil
	}
	if p, ok := r.tr.(TryReceiver[T]); ok {
		r.try = p
	} else {
		r.try = nil
	}
}

// margins returns how far beyond the tile the sweep of sub-iteration s
// (0 <= s < depth) extends on each side: (depth-1-s)·radius on sides with
// a real neighbour, 0 on domain edges (BC ghosts are re-synthesised every
// iteration, so nothing shrinks there). At depth 1 all margins are zero.
func (r *rank[T]) margins(s int) (exL, exR, exU, exD int) {
	mx := (r.depth - 1 - s) * r.rx
	my := (r.depth - 1 - s) * r.ry
	if r.hasL {
		exL = mx
	}
	if r.hasR {
		exR = mx
	}
	if r.hasU {
		exU = my
	}
	if r.hasD {
		exD = my
	}
	return
}

// advance runs one full iteration of the overlap/depth-k schedule:
// sweep (exchanging or local, by the position in the depth-k cycle),
// then verification, correction and the buffer swaps. abs is the
// absolute iteration number; halo exchanges happen when abs%depth == 0,
// so a restored rank must resume on a multiple of depth (checkpoint
// periods are validated to be multiples of the halo depth).
func (r *rank[T]) advance(abs int, hook stencil.InjectFunc[T]) {
	s := 0
	if r.depth > 1 {
		s = abs % r.depth
	}
	src, dst := r.buf.Read, r.buf.Write
	exL, exR, exU, exD := r.margins(s)
	sx0, sx1 := r.loX()-exL, r.hiX()+exR
	sy0, sy1 := r.loY()-exU, r.hiY()+exD
	if s == 0 {
		r.sweepExchange(src, dst, sx0, sx1, sy0, sy1, hook)
	} else {
		r.sweepLocal(src, dst, sx0, sx1, sy0, sy1, hook)
	}
	r.finishStep(src, dst)
}

// sweepExchange is the overlapped exchange iteration: post x sends, sweep
// the interior while they travel, sweep each boundary strip as its halo
// lands, then post y sends (corners now threaded) and do the same for the
// y strips. The sweep rectangle [sx0,sx1)x[sy0,sy1) extends beyond the
// tile by the depth-k margin on neighbour sides.
func (r *rank[T]) sweepExchange(src, dst *grid.Grid[T], sx0, sx1, sy0, sy1 int, hook stencil.InjectFunc[T]) {
	// Ghost synthesis that does not depend on inbound halos: BC side
	// columns over the tile rows, then full-width BC edge rows. The edge
	// rows' halo-column segments may still be stale when a real x
	// neighbour exists; they are refreshed as each x strip lands, before
	// any sweep reads them.
	t0 := r.tel.Begin()
	if !r.hasL {
		r.fillSideHaloRows(true, r.loY(), r.hiY())
	}
	if !r.hasR {
		r.fillSideHaloRows(false, r.loY(), r.hiY())
	}
	if !r.hasU {
		r.fillEdgeHalo(true)
	}
	if !r.hasD {
		r.fillEdgeHalo(false)
	}
	r.tel.End(telemetry.PhaseUnpack, t0)

	// Post the x-phase sends before any compute so the strips travel
	// while the interior sweeps.
	if r.hasL {
		t0 = r.tel.Begin()
		r.packCols(src, r.loX(), r.sendL)
		t1 := r.tel.Begin()
		r.tel.End(telemetry.PhasePack, t0)
		r.tr.Send(r.id, Left, r.sendL)
		r.tel.End(telemetry.PhaseSend, t1)
		r.stats.HaloByDir[Left]++
	}
	if r.hasR {
		t0 = r.tel.Begin()
		r.packCols(src, r.hiX()-r.hx, r.sendR)
		t1 := r.tel.Begin()
		r.tel.End(telemetry.PhasePack, t0)
		r.tr.Send(r.id, Right, r.sendR)
		r.tel.End(telemetry.PhaseSend, t1)
		r.stats.HaloByDir[Right]++
	}

	// The interior region: inset one stencil radius from every side with
	// a real neighbour, so it depends on no inbound halo. Tiles thinner
	// than two strips degenerate to an empty interior and a merged strip
	// sweep after both halos land.
	ix0, ix1 := r.loX(), r.hiX()
	if r.hasL {
		ix0 += r.rx
	}
	if r.hasR {
		ix1 -= r.rx
	}
	iy0, iy1 := r.loY(), r.hiY()
	if r.hasU {
		iy0 += r.ry
	}
	if r.hasD {
		iy1 -= r.ry
	}
	thinX := ix1 < ix0
	thinY := iy1 < iy0
	if thinX {
		ix0, ix1 = r.loX(), r.loX()
	}
	if thinY {
		iy0, iy1 = r.loY(), r.loY()
	}

	// With every send posted, yield once: on an oversubscribed host
	// (several ranks per core) this lets sibling rank goroutines post
	// their own sends before this rank commits to its interior sweep, so
	// the progress polling below finds most halos already delivered. On a
	// dedicated core the yield is a no-op.
	if r.try != nil && (r.hasL || r.hasR || r.hasU || r.hasD) {
		runtime.Gosched()
	}

	// Progress polling: an x halo that has already been delivered has no
	// latency left to hide — fold it in now and widen the interior sweep
	// over its strip, full-width, fused and row-major, instead of sweeping
	// a cold column strip after the fact. Only sides with a zero depth-k
	// margin can be absorbed (the fused checksums must cover tile columns
	// exclusively); thin tiles keep the merged-strip path.
	gotL, gotR := false, false
	if r.try != nil && !thinX {
		if r.hasL && sx0 == r.loX() {
			if in, ok := r.try.TryRecv(r.id, Left); ok {
				t0 = r.tel.Begin()
				r.unpackCols(src, 0, in)
				r.refreshEdgeRowCols(0, r.loX())
				r.tel.End(telemetry.PhaseUnpack, t0)
				ix0 = r.loX()
				gotL = true
			}
		}
		if r.hasR && sx1 == r.hiX() {
			if in, ok := r.try.TryRecv(r.id, Right); ok {
				t0 = r.tel.Begin()
				r.unpackCols(src, r.hiX(), in)
				r.refreshEdgeRowCols(r.hiX(), r.hiX()+r.hx)
				r.tel.End(telemetry.PhaseUnpack, t0)
				ix1 = r.hiX()
				gotR = true
			}
		}
	}

	// The interior sweep fuses its x segment of the row checksums in
	// place; boundary segments are folded in by combineRowChecksums after
	// both x strips land. fusedX marks rows already summed tile-width
	// (no neighbours, or every strip absorbed by the polling above).
	fusedX := !thinX && ix0 == r.loX() && ix1 == r.hiX()
	// With both x edges already resolved (BC-synthesised or absorbed), the
	// tile-row beta terms are final and their edge-column cache lines are
	// at their warmest — prime them before the interior sweep streams the
	// whole tile through the cache. Ranks still owed an x strip prime
	// after the strips fold in below.
	xPrimed := (!r.hasL || gotL) && (!r.hasR || gotR)
	if xPrimed {
		t0 = r.tel.Begin()
		r.ip.PrimeBetaTablesMid(r.edgeRead)
		r.tel.End(telemetry.PhaseVerify, t0)
	}
	t0 = r.tel.Begin()
	r.sweepChunked(dst, src, ix0, iy0, ix1, iy1, true, hook)
	r.tel.End(telemetry.PhaseInteriorSweep, t0)

	// x strips, each swept as its halo lands.
	needL, needR := r.hasL && !gotL, r.hasR && !gotR
	if needL || needR {
		if needL && needR && !thinX && r.either != nil {
			t0 = r.tel.Begin()
			d, in := r.either.RecvEither(r.id, Left, Right)
			r.tel.End(telemetry.PhaseBoundaryWait, t0)
			r.xStripLanded(dst, src, d, in, sx0, sx1, ix0, ix1, iy0, iy1, hook)
			d = d.Opposite()
			t0 = r.tel.Begin()
			in = r.tr.Recv(r.id, d)
			r.tel.End(telemetry.PhaseBoundaryWait, t0)
			r.xStripLanded(dst, src, d, in, sx0, sx1, ix0, ix1, iy0, iy1, hook)
		} else {
			// Ordered fallback, also used when the tile is too thin for
			// disjoint strips (each strip then needs both halos).
			var inL, inR []T
			if needL {
				t0 = r.tel.Begin()
				inL = r.tr.Recv(r.id, Left)
				r.tel.End(telemetry.PhaseBoundaryWait, t0)
			}
			if needR {
				t0 = r.tel.Begin()
				inR = r.tr.Recv(r.id, Right)
				r.tel.End(telemetry.PhaseBoundaryWait, t0)
			}
			if thinX {
				t0 = r.tel.Begin()
				r.unpackCols(src, 0, inL)
				r.refreshEdgeRowCols(0, r.loX())
				r.unpackCols(src, r.hiX(), inR)
				r.refreshEdgeRowCols(r.hiX(), r.hiX()+r.hx)
				t1 := r.tel.Begin()
				r.tel.End(telemetry.PhaseUnpack, t0)
				r.sweepRect(dst, src, sx0, iy0, sx1, iy1, false, hook)
				r.tel.End(telemetry.PhaseBoundarySweep, t1)
			} else {
				if inL != nil {
					r.xStripLanded(dst, src, Left, inL, sx0, sx1, ix0, ix1, iy0, iy1, hook)
				}
				if inR != nil {
					r.xStripLanded(dst, src, Right, inR, sx0, sx1, ix0, ix1, iy0, iy1, hook)
				}
			}
		}
	}

	if !xPrimed {
		t0 = r.tel.Begin()
		r.ip.PrimeBetaTablesMid(r.edgeRead)
		r.tel.End(telemetry.PhaseVerify, t0)
	}

	// Complete the checksums of rows the x split broke. The thin-tile
	// merged sweep left no usable interior segment, so it takes the
	// full-width repass; the regular split folds the narrow boundary
	// segments into the fused interior segment.
	if !fusedX && iy1 > iy0 {
		t0 = r.tel.Begin()
		if thinX {
			stencil.ChecksumBRect(dst, r.loX(), iy0, r.hiX(), iy1, r.newExtB[iy0:])
		} else {
			r.combineRowChecksums(dst, iy0, iy1, ix0, ix1, sx0 == r.loX(), sx1 == r.hiX())
		}
		r.tel.End(telemetry.PhaseBoundarySweep, t0)
	}

	// y phase: full-extended-width rows — the x halos they carry are what
	// threads corner data to diagonal neighbours — posted only now that
	// both x edges have been folded in.
	if r.hasU || r.hasD {
		nxExt := r.nxLoc + 2*r.hx
		data := src.Data()
		if r.hasU {
			t0 = r.tel.Begin()
			r.tr.Send(r.id, Up, data[r.loY()*nxExt:(r.loY()+r.hy)*nxExt])
			r.tel.End(telemetry.PhaseSend, t0)
			r.stats.HaloByDir[Up]++
		}
		if r.hasD {
			t0 = r.tel.Begin()
			r.tr.Send(r.id, Down, data[(r.hiY()-r.hy)*nxExt:r.hiY()*nxExt])
			r.tel.End(telemetry.PhaseSend, t0)
			r.stats.HaloByDir[Down]++
		}
		// Yield and poll exactly as in the x phase: ranks hosted on the
		// same core have had their interior sweeps to post these rows, so
		// most y strips are already waiting and fold in without a block.
		gotU, gotD := false, false
		if r.try != nil && !thinY {
			runtime.Gosched()
			if r.hasU {
				if in, ok := r.try.TryRecv(r.id, Up); ok {
					r.yStripLanded(dst, src, Up, in, sx0, sx1, sy0, sy1, iy0, iy1, hook)
					gotU = true
				}
			}
			if r.hasD {
				if in, ok := r.try.TryRecv(r.id, Down); ok {
					r.yStripLanded(dst, src, Down, in, sx0, sx1, sy0, sy1, iy0, iy1, hook)
					gotD = true
				}
			}
		}
		needU, needD := r.hasU && !gotU, r.hasD && !gotD
		if needU && needD && !thinY && r.either != nil {
			t0 = r.tel.Begin()
			d, in := r.either.RecvEither(r.id, Up, Down)
			r.tel.End(telemetry.PhaseBoundaryWait, t0)
			r.yStripLanded(dst, src, d, in, sx0, sx1, sy0, sy1, iy0, iy1, hook)
			d = d.Opposite()
			t0 = r.tel.Begin()
			in = r.tr.Recv(r.id, d)
			r.tel.End(telemetry.PhaseBoundaryWait, t0)
			r.yStripLanded(dst, src, d, in, sx0, sx1, sy0, sy1, iy0, iy1, hook)
		} else if needU || needD {
			var inU, inD []T
			if needU {
				t0 = r.tel.Begin()
				inU = r.tr.Recv(r.id, Up)
				r.tel.End(telemetry.PhaseBoundaryWait, t0)
			}
			if needD {
				t0 = r.tel.Begin()
				inD = r.tr.Recv(r.id, Down)
				r.tel.End(telemetry.PhaseBoundaryWait, t0)
			}
			if thinY {
				t0 = r.tel.Begin()
				copy(data[0:r.hy*nxExt], inU)
				copy(data[r.hiY()*nxExt:(r.hiY()+r.hy)*nxExt], inD)
				t1 := r.tel.Begin()
				r.tel.End(telemetry.PhaseUnpack, t0)
				fusedY := sx0 == r.loX() && sx1 == r.hiX()
				r.sweepRect(dst, src, sx0, sy0, sx1, sy1, fusedY, hook)
				if !fusedY {
					stencil.ChecksumBRect(dst, r.loX(), r.loY(), r.hiX(), r.hiY(), r.newExtB[r.loY():])
				}
				r.tel.End(telemetry.PhaseBoundarySweep, t1)
			} else {
				if inU != nil {
					r.yStripLanded(dst, src, Up, inU, sx0, sx1, sy0, sy1, iy0, iy1, hook)
				}
				if inD != nil {
					r.yStripLanded(dst, src, Down, inD, sx0, sx1, sy0, sy1, iy0, iy1, hook)
				}
			}
		}
	}
	// Every halo is folded in, so the frame's ghost rows are final for this
	// iteration and still warm from the y strip copies — complete the beta
	// tables (the tile rows were primed mid-phase) before the verification
	// tail needs them.
	t0 = r.tel.Begin()
	r.ip.PrimeBetaTables(r.edgeRead)
	r.tel.End(telemetry.PhaseVerify, t0)
	r.stats.HaloExchanges++
}

// xStripLanded folds an arrived x halo in and sweeps the strip it
// unblocks: unpack the columns, refresh the BC ghost rows' now-stale
// column segments on that side, then sweep the boundary strip between the
// sweep rectangle's edge and the interior.
func (r *rank[T]) xStripLanded(dst, src *grid.Grid[T], d Dir, in []T, sx0, sx1, ix0, ix1, iy0, iy1 int, hook stencil.InjectFunc[T]) {
	t0 := r.tel.Begin()
	if d == Left {
		r.unpackCols(src, 0, in)
		r.refreshEdgeRowCols(0, r.loX())
	} else {
		r.unpackCols(src, r.hiX(), in)
		r.refreshEdgeRowCols(r.hiX(), r.hiX()+r.hx)
	}
	t1 := r.tel.Begin()
	r.tel.End(telemetry.PhaseUnpack, t0)
	// When the strip spans tile columns only (no depth-k margin on its
	// side), fuse its per-row checksum segments into the side scratch as
	// the sweep runs, sparing combineRowChecksums the strided re-read.
	if d == Left {
		var b []T
		if sx0 == r.loX() {
			b = r.stripBL[iy0:]
		}
		r.op.SweepRectFused(dst, src, sx0, iy0, ix0, iy1, b, hook)
	} else {
		var b []T
		if sx1 == r.hiX() {
			b = r.stripBR[iy0:]
		}
		r.op.SweepRectFused(dst, src, ix1, iy0, sx1, iy1, b, hook)
	}
	r.tel.End(telemetry.PhaseBoundarySweep, t1)
}

// yStripLanded folds an arrived y halo in (full-extended-width rows,
// corners included) and sweeps the strip between the sweep rectangle's
// edge and the interior. When the x margins are zero the strip spans
// exactly the tile width and the checksum fusion holds; otherwise the
// strip's tile rows get the ChecksumBRect post-pass.
func (r *rank[T]) yStripLanded(dst, src *grid.Grid[T], d Dir, in []T, sx0, sx1, sy0, sy1, iy0, iy1 int, hook stencil.InjectFunc[T]) {
	nxExt := r.nxLoc + 2*r.hx
	data := src.Data()
	t0 := r.tel.Begin()
	if d == Up {
		copy(data[0:r.hy*nxExt], in)
	} else {
		copy(data[r.hiY()*nxExt:(r.hiY()+r.hy)*nxExt], in)
	}
	t1 := r.tel.Begin()
	r.tel.End(telemetry.PhaseUnpack, t0)
	var y0, y1 int
	if d == Up {
		y0, y1 = sy0, iy0
	} else {
		y0, y1 = iy1, sy1
	}
	fusedY := sx0 == r.loX() && sx1 == r.hiX()
	r.sweepRect(dst, src, sx0, y0, sx1, y1, fusedY, hook)
	if !fusedY {
		ty0, ty1 := max(y0, r.loY()), min(y1, r.hiY())
		if ty1 > ty0 {
			stencil.ChecksumBRect(dst, r.loX(), ty0, r.hiX(), ty1, r.newExtB[ty0:])
		}
	}
	r.tel.End(telemetry.PhaseBoundarySweep, t1)
}

// combineRowChecksums assembles the tile-width column checksums of rows
// [y0,y1) from the x segments the overlapped sweep produced: the fused
// interior segment [ix0,ix1) already sits in newExtB, and the boundary
// strips' narrow segments (one stencil radius each) are folded in as
// left + interior + right — a fixed order, so the value does not depend on
// which halo landed first. Segments the strip sweeps fused into the side
// scratch (useL/useR, the zero-margin case) are read from there; otherwise
// they are summed from dst (the strip then also covered depth-k shell
// columns the checksum must exclude).
func (r *rank[T]) combineRowChecksums(dst *grid.Grid[T], y0, y1, ix0, ix1 int, useL, useR bool) {
	lo, hi := r.loX(), r.hiX()
	for y := y0; y < y1; y++ {
		b := r.newExtB[y]
		if ix0 > lo {
			if useL {
				b = r.stripBL[y] + b
			} else {
				b = num.Sum(dst.Row(y)[lo:ix0]) + b
			}
		}
		if ix1 < hi {
			if useR {
				b += r.stripBR[y]
			} else {
				b += num.Sum(dst.Row(y)[ix1:hi])
			}
		}
		r.newExtB[y] = b
	}
}

// refreshEdgeRowCols re-synthesises the [x0,x1) column segment of any
// BC-synthesised ghost rows after an inbound x strip rewrote the halo
// columns the full-width edge fill copied from. Rows with a real y
// neighbour are untouched — their data arrives whole in the y phase.
func (r *rank[T]) refreshEdgeRowCols(x0, x1 int) {
	if !r.hasU {
		r.fillEdgeHaloCols(true, x0, x1)
	}
	if !r.hasD {
		r.fillEdgeHaloCols(false, x0, x1)
	}
}

// sweepLocal is a communication-free sub-iteration of a depth-k cycle
// (s > 0): re-synthesise the BC ghosts, sweep the tile fused, and sweep
// the shrinking shell of redundantly recomputed neighbour points — the
// same kernel over bit-identical inputs the owners sweep, so the shell
// stays bit-exact with the communicated run.
func (r *rank[T]) sweepLocal(src, dst *grid.Grid[T], sx0, sx1, sy0, sy1 int, hook stencil.InjectFunc[T]) {
	// BC ghosts are re-synthesised from current shell data every
	// iteration: side columns over every row the shell sweeps read, then
	// full-width edge rows (whose corner segments pick up the fresh side
	// columns, keeping both axes' resolution independent).
	t0 := r.tel.Begin()
	if !r.hasL {
		r.fillSideHaloRows(true, sy0-r.ry, sy1+r.ry)
	}
	if !r.hasR {
		r.fillSideHaloRows(false, sy0-r.ry, sy1+r.ry)
	}
	if !r.hasU {
		r.fillEdgeHalo(true)
	}
	if !r.hasD {
		r.fillEdgeHalo(false)
	}
	r.tel.End(telemetry.PhaseUnpack, t0)

	t0 = r.tel.Begin()
	// Shell rects around the tile (no checksum fusion — checksums only
	// ever cover the tile's own rows and columns).
	if sy0 < r.loY() {
		r.sweepRect(dst, src, sx0, sy0, sx1, r.loY(), false, hook)
	}
	if sy1 > r.hiY() {
		r.sweepRect(dst, src, sx0, r.hiY(), sx1, sy1, false, hook)
	}
	if sx0 < r.loX() {
		r.sweepRect(dst, src, sx0, r.loY(), r.loX(), r.hiY(), false, hook)
	}
	if sx1 > r.hiX() {
		r.sweepRect(dst, src, r.hiX(), r.loY(), sx1, r.hiY(), false, hook)
	}
	// The tile itself, fused.
	r.sweepChunked(dst, src, r.loX(), r.loY(), r.hiX(), r.hiY(), true, hook)
	r.tel.End(telemetry.PhaseSweep, t0)
}

// finishStep is the verification tail shared by both schedules: halo
// checksum sums, interpolation, detection, correction, swaps. The halo
// sums cover only the ry rows adjacent to the tile — all the
// interpolation reads at any halo depth — and are plain sums of local
// data: no checksum ever crosses a rank.
func (r *rank[T]) finishStep(src, dst *grid.Grid[T]) {
	t0 := r.tel.Begin()
	for j := 1; j <= r.ry; j++ {
		r.prevExtB[r.loY()-j] = num.Sum(src.Row(r.loY() - j)[r.loX():r.hiX()])
		r.prevExtB[r.hiY()+j-1] = num.Sum(src.Row(r.hiY() + j - 1)[r.loX():r.hiX()])
	}
	edges := r.edgeRead
	r.ip.InterpolateBBand(r.prevExtB, r.hy, edges, r.interpB)
	r.stats.Verifications++
	newB := r.newExtB[r.loY():r.hiY()]
	mismatch := r.det.AnyMismatch(newB, r.interpB)
	r.tel.End(telemetry.PhaseVerify, t0)
	if mismatch {
		r.stats.Detections++
		t0 = r.tel.Begin()
		r.locateAndCorrect(src, dst, edges, newB)
		r.tel.End(telemetry.PhaseRepair, t0)
	}
	r.prevExtB, r.newExtB = r.newExtB, r.prevExtB
	r.buf.Swap()
	r.edgeRead, r.edgeWrite = r.edgeWrite, r.edgeRead
	r.stats.Iterations++
}

// sweepRect sweeps [x0,x1)x[y0,y1) on the rank goroutine, fusing the tile
// column checksums when fuse is set (the rect must then span the full
// tile width). Empty rects are no-ops.
func (r *rank[T]) sweepRect(dst, src *grid.Grid[T], x0, y0, x1, y1 int, fuse bool, hook stencil.InjectFunc[T]) {
	if x1 <= x0 || y1 <= y0 {
		return
	}
	var b []T
	if fuse {
		b = r.newExtB[y0:]
	}
	r.op.SweepRectFused(dst, src, x0, y0, x1, y1, b, hook)
}

// sweepChunked is sweepRect with the rows split over the worker pool when
// one is attached — used for the large rects (interior, tile middle)
// where the parallelism pays for the chunking.
func (r *rank[T]) sweepChunked(dst, src *grid.Grid[T], x0, y0, x1, y1 int, fuse bool, hook stencil.InjectFunc[T]) {
	if x1 <= x0 || y1 <= y0 {
		return
	}
	if r.pool == nil {
		r.sweepRect(dst, src, x0, y0, x1, y1, fuse, hook)
		return
	}
	r.pool.ForEachChunk(y1-y0, func(lo, hi int) {
		var b []T
		if fuse {
			b = r.newExtB[y0+lo:]
		}
		r.op.SweepRectFused(dst, src, x0, y0+lo, x1, y0+hi, b, hook)
	})
}
