package dist

import (
	"testing"

	"stencilabft/internal/telemetry"
)

// TestTCPEdgeMetricsCountTraffic drives a known exchange pattern over a
// split 1x2 TCP pair and pins the per-edge counters against it: halo
// frames and payload bytes exactly (8-byte float64 elements, wire headers
// excluded), barrier tokens and bootstrap traffic not counted.
func TestTCPEdgeMetricsCountTraffic(t *testing.T) {
	tr0, tr1 := splitTCPPair(t, false)

	const iters = 3
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			tr1.Send(1, Up, []float64{3, 4})
			if _, err := tr1.recv(1, Up); err != nil {
				t.Errorf("iter %d: rank 1 recv: %v", i, err)
				return
			}
			tr1.Barrier()
		}
	}()
	for i := 0; i < iters; i++ {
		tr0.Send(0, Down, []float64{1, 2})
		if _, err := tr0.recv(0, Down); err != nil {
			t.Fatalf("iter %d: rank 0 recv: %v", i, err)
		}
		tr0.Barrier()
	}
	<-done

	const wantBytes = iters * 2 * 8 // 3 frames of two float64s
	m0 := tr0.Metrics()
	if len(m0.Edges) != 1 {
		t.Fatalf("rank-0 process reports %d edges, want its 1 local edge: %+v", len(m0.Edges), m0.Edges)
	}
	e := m0.Edges[0]
	if e.From != 0 || e.To != 1 || e.Dir != "down" {
		t.Fatalf("edge identity = %d->%d %s, want 0->1 down", e.From, e.To, e.Dir)
	}
	if e.FramesSent != iters || e.BytesSent != wantBytes {
		t.Errorf("sent = %d frames / %d bytes, want %d / %d (barrier tokens must not count)",
			e.FramesSent, e.BytesSent, iters, wantBytes)
	}
	if e.FramesRecv != iters || e.BytesRecv != wantBytes {
		t.Errorf("recv = %d frames / %d bytes, want %d / %d", e.FramesRecv, e.BytesRecv, iters, wantBytes)
	}
	if m0.DialRetries != 0 || m0.Poisoned != 0 {
		t.Errorf("healthy run reports dial-retries=%d poisoned=%d", m0.DialRetries, m0.Poisoned)
	}

	// The paired process observes the mirror edge with the same counts.
	m1 := tr1.Metrics()
	if len(m1.Edges) != 1 {
		t.Fatalf("rank-1 process reports %d edges: %+v", len(m1.Edges), m1.Edges)
	}
	r := m1.Edges[0]
	if r.From != 1 || r.To != 0 || r.Dir != "up" {
		t.Fatalf("mirror edge identity = %d->%d %s, want 1->0 up", r.From, r.To, r.Dir)
	}
	if r.FramesSent != iters || r.BytesSent != wantBytes || r.FramesRecv != iters || r.BytesRecv != wantBytes {
		t.Errorf("mirror edge counters = %+v, want %d frames / %d bytes each way", r, iters, wantBytes)
	}

	// The two per-process snapshots concatenate into the full cluster view —
	// the identity the -launch stats roll-up relies on.
	total := telemetry.TransportMetrics{Edges: append(m0.Edges, m1.Edges...)}.Totals()
	if total.FramesSent != 2*iters || total.BytesSent != 2*wantBytes ||
		total.FramesRecv != 2*iters || total.BytesRecv != 2*wantBytes {
		t.Errorf("cluster totals = %+v", total)
	}
}

// TestTCPPoisonCounted kills one side of a live pair mid-stream and checks
// the survivor counts the torn-down edge as a poison event, while its own
// deliberate Close does not.
func TestTCPPoisonCounted(t *testing.T) {
	tr0, tr1 := splitTCPPair(t, false)

	tr1.Close() // peer "dies"
	if _, err := tr0.recv(0, Down); err == nil {
		t.Fatal("recv from a dead peer succeeded")
	}
	if got := tr0.Metrics().Poisoned; got < 1 {
		t.Fatalf("poison events = %d, want >= 1 after peer death", got)
	}
	if got := tr1.Metrics().Poisoned; got != 0 {
		t.Fatalf("deliberate Close counted %d poison events on its own transport", got)
	}
}

// TestChanEdgeMetricsCountTraffic pins the channel backend's counters on a
// 2x1 grid: the same per-edge model as TCP so runs are comparable across
// transports.
func TestChanEdgeMetricsCountTraffic(t *testing.T) {
	tr := NewChanTransport[float32](2, 1, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Send(1, Left, []float32{3, 4, 5})
		tr.Recv(1, Left)
	}()
	tr.Send(0, Right, []float32{1, 2, 3})
	tr.Recv(0, Right)
	<-done

	m := tr.Metrics()
	if len(m.Edges) != 2 {
		t.Fatalf("2x1 grid has %d directed edges, want 2: %+v", len(m.Edges), m.Edges)
	}
	e := m.Edges[0] // sorted: (0, 1, right) first
	if e.From != 0 || e.To != 1 || e.Dir != "right" {
		t.Fatalf("first edge = %d->%d %s", e.From, e.To, e.Dir)
	}
	if e.FramesSent != 1 || e.BytesSent != 12 || e.FramesRecv != 1 || e.BytesRecv != 12 {
		t.Errorf("edge counters = %+v, want 1 frame / 12 bytes (three float32s) each way", e)
	}
}
