package dist

import (
	"stencilabft/internal/grid"
)

// exchangeHalos refreshes the read buffer's halo rows with iteration-t
// data: boundary-row views are posted to both neighbours first, then the
// inbound messages are copied into the local ghost rows — the non-blocking
// Isend/Irecv schedule, expressed through the cluster's Transport. Edges
// without a neighbour (the top and bottom ranks under non-periodic
// boundaries) synthesise their ghost rows from the global boundary
// condition instead.
func (r *rank[T]) exchangeHalos() {
	if r.h == 0 {
		return
	}
	ext := r.buf.Read
	nx, h, lo, hi := r.nx, r.h, r.bandLo(), r.bandHi()
	data := ext.Data()
	hasUp, hasDn := r.tr.Neighbor(r.id, Up), r.tr.Neighbor(r.id, Down)
	if hasUp {
		r.tr.Send(r.id, Up, data[lo*nx:(lo+h)*nx]) // own top h band rows
	}
	if hasDn {
		r.tr.Send(r.id, Down, data[(hi-h)*nx:hi*nx]) // own bottom h band rows
	}
	if hasUp {
		copy(data[0:h*nx], r.tr.Recv(r.id, Up))
	} else {
		r.fillEdgeHalo(true)
	}
	if hasDn {
		copy(data[hi*nx:(hi+h)*nx], r.tr.Recv(r.id, Down))
	} else {
		r.fillEdgeHalo(false)
	}
	r.stats.HaloExchanges++
}

// fillEdgeHalo synthesises the ghost rows beyond the global domain edge by
// applying the global boundary condition row-wise. Clamp and Mirror resolve
// to rows this rank owns (a band is strictly taller than the radius, so a
// reflected row never leaves it); Constant and Zero substitute the fixed
// ghost value. Refreshing these rows every iteration is what keeps the
// band interpolation exact at the domain edge: the checksum layer treats
// them as Constant-style ghost data that happens to track the band.
func (r *rank[T]) fillEdgeHalo(top bool) {
	ext := r.buf.Read
	for j := 0; j < r.h; j++ {
		var gy, row int // global ghost row and its extended-frame index
		if top {
			gy = r.y0 - r.h + j
			row = j
		} else {
			gy = r.y1 + j
			row = r.bandHi() + j
		}
		dst := ext.Row(row)
		ry, ok := r.globalBC.ResolveIndex(gy, r.globalNy)
		if !ok {
			v := T(0)
			if r.globalBC == grid.Constant {
				v = r.op.BCValue
			}
			for x := range dst {
				dst[x] = v
			}
			continue
		}
		copy(dst, ext.Row(r.bandLo()+ry-r.y0))
	}
}
