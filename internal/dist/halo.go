package dist

import (
	"sync"

	"stencilabft/internal/grid"
	"stencilabft/internal/num"
)

// wireHalos connects adjacent ranks with paired channels in the MPI
// neighbour pattern. Each channel carries one message per iteration: the
// sender's h boundary rows, as a view into its read buffer (safe to share
// because band rows are immutable until the iteration barrier, and the
// receiver copies before reaching it). Capacity 1 lets every rank post both
// sends before either receive — the non-blocking Isend/Irecv schedule that
// makes the exchange deadlock-free in any rank order.
//
// Under periodic global boundaries the ranks form a ring: rank 0's upper
// neighbour is the last rank, so the wrap-around halo is real remote data
// and the y boundary condition never has to be evaluated locally. With one
// rank the ring degenerates to a self-exchange through the same channels.
func wireHalos[T num.Float](ranks []*rank[T], periodic bool) {
	n := len(ranks)
	if n == 0 || ranks[0].h == 0 {
		return // zero y-radius: no rank ever reads a neighbour row
	}
	// down[i] carries rank i's bottom rows to the rank below; up[i]
	// carries rank i's top rows to the rank above.
	down := make([]chan []T, n)
	up := make([]chan []T, n)
	for i := range ranks {
		down[i] = make(chan []T, 1)
		up[i] = make(chan []T, 1)
	}
	for i, r := range ranks {
		if i > 0 || periodic {
			r.sendUp = up[i]
			r.recvUp = down[(i-1+n)%n]
		}
		if i < n-1 || periodic {
			r.sendDn = down[i]
			r.recvDn = up[(i+1)%n]
		}
	}
}

// exchangeHalos refreshes the read buffer's halo rows with iteration-t
// data: boundary-row views are posted to both neighbours first, then the
// inbound messages are copied into the local ghost rows. Edges without a
// neighbour (the top and bottom ranks under non-periodic boundaries)
// synthesise their ghost rows from the global boundary condition instead.
func (r *rank[T]) exchangeHalos() {
	if r.h == 0 {
		return
	}
	ext := r.buf.Read
	nx, h, lo, hi := r.nx, r.h, r.bandLo(), r.bandHi()
	data := ext.Data()
	if r.sendUp != nil {
		r.sendUp <- data[lo*nx : (lo+h)*nx] // own top h band rows
	}
	if r.sendDn != nil {
		r.sendDn <- data[(hi-h)*nx : hi*nx] // own bottom h band rows
	}
	if r.recvUp != nil {
		copy(data[0:h*nx], <-r.recvUp)
	} else {
		r.fillEdgeHalo(true)
	}
	if r.recvDn != nil {
		copy(data[hi*nx:(hi+h)*nx], <-r.recvDn)
	} else {
		r.fillEdgeHalo(false)
	}
	r.stats.HaloExchanges++
}

// fillEdgeHalo synthesises the ghost rows beyond the global domain edge by
// applying the global boundary condition row-wise. Clamp and Mirror resolve
// to rows this rank owns (a band is strictly taller than the radius, so a
// reflected row never leaves it); Constant and Zero substitute the fixed
// ghost value. Refreshing these rows every iteration is what keeps the
// band interpolation exact at the domain edge: the checksum layer treats
// them as Constant-style ghost data that happens to track the band.
func (r *rank[T]) fillEdgeHalo(top bool) {
	ext := r.buf.Read
	for j := 0; j < r.h; j++ {
		var gy, row int // global ghost row and its extended-frame index
		if top {
			gy = r.y0 - r.h + j
			row = j
		} else {
			gy = r.y1 + j
			row = r.bandHi() + j
		}
		dst := ext.Row(row)
		ry, ok := r.globalBC.ResolveIndex(gy, r.globalNy)
		if !ok {
			v := T(0)
			if r.globalBC == grid.Constant {
				v = r.op.BCValue
			}
			for x := range dst {
				dst[x] = v
			}
			continue
		}
		copy(dst, ext.Row(r.bandLo()+ry-r.y0))
	}
}

// barrier is a reusable cyclic barrier: await blocks until all n parties
// have arrived, then releases the generation together — the per-iteration
// lockstep of the cluster.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every party has called await for the current
// generation.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
