package dist

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/telemetry"
)

// exchangeHalos refreshes the read buffer's halo strips with iteration-t
// data in two phases — the non-blocking Isend/Irecv schedule of a 2-D
// Cartesian MPI stencil code, expressed through the cluster's Transport.
//
// Phase 1 (x): boundary columns over the tile's own rows are packed and
// posted Left/Right, then inbound strips are copied into the halo columns.
// Phase 2 (y): boundary rows at FULL extended width — including the halo
// columns that phase 1 just filled — are posted Up/Down, so each message
// threads the corner data the 9-point box kernels and the interpolation's
// beta terms need to the diagonal neighbour without any extra diagonal
// channel. Edges without a neighbour (the domain border under non-periodic
// boundaries) synthesise their ghost strips from the global boundary
// condition instead, in the same order, which makes a corner ghost resolve
// each axis independently exactly like grid.BoundedGrid does.
func (r *rank[T]) exchangeHalos() {
	ext := r.buf.Read
	if r.hx > 0 {
		hasL, hasR := r.tr.Neighbor(r.id, Left), r.tr.Neighbor(r.id, Right)
		if hasL {
			t0 := r.tel.Begin()
			r.packCols(ext, r.loX(), r.sendL) // own leftmost hx tile columns
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhasePack, t0)
			r.tr.Send(r.id, Left, r.sendL)
			r.tel.End(telemetry.PhaseSend, t1)
			r.stats.HaloByDir[Left]++
		}
		if hasR {
			t0 := r.tel.Begin()
			r.packCols(ext, r.hiX()-r.hx, r.sendR) // own rightmost hx tile columns
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhasePack, t0)
			r.tr.Send(r.id, Right, r.sendR)
			r.tel.End(telemetry.PhaseSend, t1)
			r.stats.HaloByDir[Right]++
		}
		if hasL {
			t0 := r.tel.Begin()
			in := r.tr.Recv(r.id, Left)
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhaseRecvWait, t0)
			r.unpackCols(ext, 0, in)
			r.tel.End(telemetry.PhaseUnpack, t1)
		} else {
			t0 := r.tel.Begin()
			r.fillSideHalo(true)
			r.tel.End(telemetry.PhaseUnpack, t0)
		}
		if hasR {
			t0 := r.tel.Begin()
			in := r.tr.Recv(r.id, Right)
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhaseRecvWait, t0)
			r.unpackCols(ext, r.hiX(), in)
			r.tel.End(telemetry.PhaseUnpack, t1)
		} else {
			t0 := r.tel.Begin()
			r.fillSideHalo(false)
			r.tel.End(telemetry.PhaseUnpack, t0)
		}
	}
	if r.hy > 0 {
		nxExt := r.nxLoc + 2*r.hx
		data := ext.Data()
		hasU, hasD := r.tr.Neighbor(r.id, Up), r.tr.Neighbor(r.id, Down)
		if hasU {
			t0 := r.tel.Begin()
			r.tr.Send(r.id, Up, data[r.loY()*nxExt:(r.loY()+r.hy)*nxExt]) // own top hy rows, full width
			r.tel.End(telemetry.PhaseSend, t0)
			r.stats.HaloByDir[Up]++
		}
		if hasD {
			t0 := r.tel.Begin()
			r.tr.Send(r.id, Down, data[(r.hiY()-r.hy)*nxExt:r.hiY()*nxExt]) // own bottom hy rows, full width
			r.tel.End(telemetry.PhaseSend, t0)
			r.stats.HaloByDir[Down]++
		}
		if hasU {
			t0 := r.tel.Begin()
			in := r.tr.Recv(r.id, Up)
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhaseRecvWait, t0)
			copy(data[0:r.hy*nxExt], in)
			r.tel.End(telemetry.PhaseUnpack, t1)
		} else {
			t0 := r.tel.Begin()
			r.fillEdgeHalo(true)
			r.tel.End(telemetry.PhaseUnpack, t0)
		}
		if hasD {
			t0 := r.tel.Begin()
			in := r.tr.Recv(r.id, Down)
			t1 := r.tel.Begin()
			r.tel.End(telemetry.PhaseRecvWait, t0)
			copy(data[r.hiY()*nxExt:(r.hiY()+r.hy)*nxExt], in)
			r.tel.End(telemetry.PhaseUnpack, t1)
		} else {
			t0 := r.tel.Begin()
			r.fillEdgeHalo(false)
			r.tel.End(telemetry.PhaseUnpack, t0)
		}
	}
	r.stats.HaloExchanges++
}

// packCols copies the hx-wide column strip starting at extended column x0,
// over the tile's own rows, row-major into buf (len hx*nyLoc). The walk
// indexes the backing array directly — one strided load/store per element,
// no per-row slice headers — because at the common depth hx=1 the strip is
// a single column and per-row call overhead would rival the copy itself.
func (r *rank[T]) packCols(ext *grid.Grid[T], x0 int, buf []T) {
	data, stride := ext.Data(), ext.Nx()
	idx := r.loY()*stride + x0
	if r.hx == 1 {
		for i := range buf {
			buf[i] = data[idx]
			idx += stride
		}
		return
	}
	for i := 0; i < len(buf); i += r.hx {
		copy(buf[i:i+r.hx], data[idx:idx+r.hx])
		idx += stride
	}
}

// unpackCols copies a received column strip into the hx-wide halo region
// starting at extended column x0, over the tile's own rows.
func (r *rank[T]) unpackCols(ext *grid.Grid[T], x0 int, buf []T) {
	data, stride := ext.Data(), ext.Nx()
	idx := r.loY()*stride + x0
	if r.hx == 1 {
		for i := range buf {
			data[idx] = buf[i]
			idx += stride
		}
		return
	}
	for i := 0; i < len(buf); i += r.hx {
		copy(data[idx:idx+r.hx], buf[i:i+r.hx])
		idx += stride
	}
}

// fillSideHalo synthesises the ghost columns beyond the global domain's x
// edge over the tile's own rows by applying the global boundary condition
// column-wise. Clamp and Mirror resolve to columns this rank owns (a tile
// is strictly wider than the radius, so a reflected column never leaves
// it); Constant and Zero substitute the fixed ghost value.
func (r *rank[T]) fillSideHalo(left bool) {
	r.fillSideHaloRows(left, r.loY(), r.hiY())
}

// fillSideHaloRows is fillSideHalo over an explicit extended-frame row
// range [y0, y1) — the depth-k schedule synthesises ghost columns for
// exactly the shell rows the current sub-iteration sweeps read, which can
// extend beyond the tile's own rows.
func (r *rank[T]) fillSideHaloRows(left bool, y0, y1 int) {
	ext := r.buf.Read
	data, stride := ext.Data(), ext.Nx()
	for j := 0; j < r.hx; j++ {
		var gx, col int // global ghost column and its extended-frame index
		if left {
			gx = r.tile.X0 - r.hx + j
			col = j
		} else {
			gx = r.tile.X1 + j
			col = r.hiX() + j
		}
		rx, ok := r.globalBC.ResolveIndex(gx, r.globalNx)
		if !ok {
			v := T(0)
			if r.globalBC == grid.Constant {
				v = r.op.BCValue
			}
			for idx := y0*stride + col; idx < y1*stride; idx += stride {
				data[idx] = v
			}
			continue
		}
		src := r.loX() + rx - r.tile.X0
		for idx := y0 * stride; idx < y1*stride; idx += stride {
			data[idx+col] = data[idx+src]
		}
	}
}

// fillEdgeHalo synthesises the ghost rows beyond the global domain's y edge
// at full extended width by applying the global boundary condition
// row-wise. Copying the whole extended source row — x halos included, just
// filled by phase 1 — is what keeps the corner ghosts exact: the value at
// (ghost x, ghost y) becomes the x-resolved value of the y-resolved row,
// i.e. both axes resolve independently, matching grid.BoundedGrid.
// Refreshing these rows every iteration is what keeps the tile
// interpolation exact at the domain edge.
func (r *rank[T]) fillEdgeHalo(top bool) {
	r.fillEdgeHaloCols(top, 0, r.nxLoc+2*r.hx)
}

// fillEdgeHaloCols is fillEdgeHalo restricted to the extended-frame
// column segment [x0, x1) — the overlap schedule uses it to refresh just
// the halo-column corners of the ghost rows after an inbound x strip
// rewrites the columns the full-width fill copied from.
func (r *rank[T]) fillEdgeHaloCols(top bool, x0, x1 int) {
	ext := r.buf.Read
	for j := 0; j < r.hy; j++ {
		var gy, row int // global ghost row and its extended-frame index
		if top {
			gy = r.tile.Y0 - r.hy + j
			row = j
		} else {
			gy = r.tile.Y1 + j
			row = r.hiY() + j
		}
		dst := ext.Row(row)[x0:x1]
		ry, ok := r.globalBC.ResolveIndex(gy, r.globalNy)
		if !ok {
			v := T(0)
			if r.globalBC == grid.Constant {
				v = r.op.BCValue
			}
			for x := range dst {
				dst[x] = v
			}
			continue
		}
		copy(dst, ext.Row(r.loY() + ry - r.tile.Y0)[x0:x1])
	}
}
