package dist

import (
	"strings"
	"testing"
	"time"
)

// TestChanRecvTimeoutFault starves a receive on the channel backend with a
// timeout set and requires a classified *Fault — a stalled sibling rank
// must surface as a diagnosable timeout, not a hang and not a bare panic.
func TestChanRecvTimeoutFault(t *testing.T) {
	tr := NewChanTransport[float64](1, 2, false)
	tr.SetRecvTimeout(50 * time.Millisecond)

	var fault *Fault
	func() {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			var ok bool
			if fault, ok = p.(*Fault); !ok {
				panic(p)
			}
		}()
		tr.Recv(1, Up) // rank 0 never sends
	}()
	if fault == nil {
		t.Fatal("starved Recv returned instead of panicking with a *Fault")
	}
	if fault.Class != ClassTimeout {
		t.Fatalf("starved Recv classified as %v, want %v: %v", fault.Class, ClassTimeout, fault)
	}
	if fault.Rank != 1 {
		t.Fatalf("fault names rank %d, want the starved receiver 1: %v", fault.Rank, fault)
	}
	if msg := fault.Error(); !strings.Contains(msg, "timeout") || !strings.Contains(msg, "timed out") {
		t.Fatalf("fault message %q does not say what happened", msg)
	}
}

// TestChanRecvNoTimeoutStillBlocks pins the historical default: without a
// timeout the receive waits, so lockstep ranks are never spuriously
// faulted. (Bounded here by delivering late rather than never.)
func TestChanRecvNoTimeoutStillBlocks(t *testing.T) {
	tr := NewChanTransport[float64](1, 2, false)
	go func() {
		time.Sleep(100 * time.Millisecond)
		tr.Send(0, Down, []float64{7})
	}()
	if got := tr.Recv(1, Up); len(got) != 1 || got[0] != 7 {
		t.Fatalf("late delivery lost: %v", got)
	}
}

// TestChanRecvCkptTimeout starves a checkpoint receive; the carrier seam
// returns an error (the resilience layer degrades, it does not crash).
func TestChanRecvCkptTimeout(t *testing.T) {
	tr := NewChanTransport[float64](1, 2, false)
	tr.SetRecvTimeout(50 * time.Millisecond)
	if _, _, err := tr.RecvCkpt(1, Up); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("starved RecvCkpt returned %v, want a timeout error", err)
	}
}

// TestOptionsRecvTimeoutPlumbed proves the Options knob reaches the
// default channel backend: a cluster-built transport with RecvTimeout set
// faults a starved receive instead of hanging.
func TestOptionsRecvTimeoutPlumbed(t *testing.T) {
	o := Options[float64]{RecvTimeout: 50 * time.Millisecond}.withDefaults()
	tr := o.NewTransport(1, 2, false)
	var fault *Fault
	func() {
		defer func() {
			if p := recover(); p != nil {
				fault, _ = p.(*Fault)
			}
		}()
		tr.Recv(0, Down)
	}()
	if fault == nil || fault.Class != ClassTimeout {
		t.Fatalf("Options.RecvTimeout not plumbed: fault %v", fault)
	}
}
