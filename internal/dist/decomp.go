package dist

import (
	"errors"
	"fmt"

	"stencilabft/internal/errs"
)

// ErrThinTile classifies a decomposition whose tiles are too thin for the
// stencil's halo: errors.Is(err, ErrThinTile) is true for every
// Validate/ValidateDepth rejection on tile-size grounds, while the error
// text keeps naming the offending axis and the largest grid that would fit.
var ErrThinTile = errors.New("dist: tile too thin for the stencil halo")

// Decomp is the topology-neutral decomposition of an Nx-by-Ny domain over a
// RanksX-by-RanksY Cartesian rank grid — the geometry every deployment of
// the cluster shares. Rank ids are row-major over the grid
// (id = cy*RanksX + cx), columns split Nx and rows split Ny with remainders
// distributed one per rank from the low end, so tile edges differ by at
// most one point in each axis. The historical 1-D row-band decomposition is
// the RanksX == 1 special case; a 3-D z-layer slab cluster reuses the same
// geometry with (RanksX, RanksY) = (1, nSlabs) over (1, Nz).
//
// Decomp is pure geometry: it answers who owns what and who neighbours
// whom, and knows nothing about transports, halos or checksums — that is
// what makes the deployments above it nearly free.
type Decomp struct {
	Nx, Ny         int // global domain shape (points)
	RanksX, RanksY int // rank grid shape (columns × rows)
}

// Tile is the sub-rectangle [X0, X1) × [Y0, Y1) of the global domain owned
// by one rank.
type Tile struct {
	X0, Y0, X1, Y1 int
}

// Nx returns the tile's width in points.
func (t Tile) Nx() int { return t.X1 - t.X0 }

// Ny returns the tile's height in points.
func (t Tile) Ny() int { return t.Y1 - t.Y0 }

// Contains reports whether global point (x, y) lies inside the tile.
func (t Tile) Contains(x, y int) bool {
	return x >= t.X0 && x < t.X1 && y >= t.Y0 && y < t.Y1
}

// String renders the tile's extent for diagnostics.
func (t Tile) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", t.X0, t.X1, t.Y0, t.Y1)
}

// NumRanks returns the number of ranks in the grid.
func (d Decomp) NumRanks() int { return d.RanksX * d.RanksY }

// Coords returns rank id's Cartesian grid coordinates (cx, cy).
func (d Decomp) Coords(id int) (cx, cy int) { return id % d.RanksX, id / d.RanksX }

// RankAt returns the rank id at grid coordinates (cx, cy).
func (d Decomp) RankAt(cx, cy int) int { return cy*d.RanksX + cx }

// String renders the rank-grid shape the way the CLI flag writes it:
// rows × columns.
func (d Decomp) String() string { return fmt.Sprintf("%dx%d", d.RanksY, d.RanksX) }

// chunkStart returns where part i of [0, n) split into parts chunks begins;
// the remainder is distributed one point per part from the low end.
func chunkStart(n, parts, i int) int {
	base, rem := n/parts, n%parts
	return i*base + min(i, rem)
}

// TileOf returns the sub-rectangle of the domain owned by rank id.
func (d Decomp) TileOf(id int) Tile {
	cx, cy := d.Coords(id)
	return Tile{
		X0: chunkStart(d.Nx, d.RanksX, cx),
		X1: chunkStart(d.Nx, d.RanksX, cx+1),
		Y0: chunkStart(d.Ny, d.RanksY, cy),
		Y1: chunkStart(d.Ny, d.RanksY, cy+1),
	}
}

// OwnerOf returns the rank owning global point (x, y). The point must lie
// inside the domain.
func (d Decomp) OwnerOf(x, y int) int {
	return d.RankAt(chunkIndex(d.Nx, d.RanksX, x), chunkIndex(d.Ny, d.RanksY, y))
}

// chunkIndex inverts chunkStart: the part of [0, n)-split-into-parts that
// point p falls in.
func chunkIndex(n, parts, p int) int {
	base, rem := n/parts, n%parts
	// The first rem parts are base+1 wide.
	wide := rem * (base + 1)
	if p < wide {
		return p / (base + 1)
	}
	return rem + (p-wide)/base
}

// Neighbor returns the rank adjacent to id in direction d, wrapping
// torus-style when wrap is true; ok is false at a domain edge without wrap.
func (d Decomp) Neighbor(id int, dir Dir, wrap bool) (nb int, ok bool) {
	cx, cy := d.Coords(id)
	switch dir {
	case Up:
		cy--
	case Down:
		cy++
	case Left:
		cx--
	case Right:
		cx++
	default:
		panic(fmt.Sprintf("dist: invalid direction %d", int(dir)))
	}
	if wrap {
		cx = (cx + d.RanksX) % d.RanksX
		cy = (cy + d.RanksY) % d.RanksY
	} else if cx < 0 || cx >= d.RanksX || cy < 0 || cy >= d.RanksY {
		return 0, false
	}
	return d.RankAt(cx, cy), true
}

// diameter returns the longest shortest path between two ranks of the grid
// graph — the number of neighbour-token rounds a distributed barrier needs
// before every rank provably knows every other rank has arrived. Wrapped
// axes halve the distance (the torus shortcut); a single rank has diameter
// zero.
func (d Decomp) diameter(wrap bool) int {
	if wrap {
		return d.RanksX/2 + d.RanksY/2
	}
	return (d.RanksX - 1) + (d.RanksY - 1)
}

// Validate rejects degenerate rank grids and tiles too thin for a stencil
// of radius (rx, ry): the checksum interpolators (and Mirror/Clamp halo
// synthesis) need every tile strictly wider than rx and strictly taller
// than ry. The error is caller-actionable — it names the offending axis and
// the largest grid that would fit.
func (d Decomp) Validate(rx, ry int) error {
	return d.ValidateDepth(rx, ry, 1)
}

// ValidateDepth is Validate for depth-k ghost zones: a halo depth of k
// widens each halo to k·rx columns (k·ry rows), and every tile must be
// strictly wider (taller) than that so halo synthesis, packing and the
// depth-k checksum interpolators stay inside the owning tile. At depth 1 it
// is exactly Validate; at deeper k the error additionally names the largest
// depth the rank grid would support.
func (d Decomp) ValidateDepth(rx, ry, depth int) error {
	if d.RanksX < 1 || d.RanksY < 1 {
		return fmt.Errorf("dist: invalid rank grid %dx%d (rows x cols); both factors must be >= 1", d.RanksY, d.RanksX)
	}
	if depth < 1 {
		return fmt.Errorf("dist: invalid halo depth %d; must be >= 1", depth)
	}
	thin := []error{ErrThinTile}
	hx, hy := depth*rx, depth*ry
	if minW := d.Nx / d.RanksX; minW <= hx {
		if depth == 1 {
			return errs.Tagf(thin, "dist: rank grid %s over a %dx%d domain leaves tiles only %d column(s) wide, need more than the stencil x-radius %d (at most %d rank column(s) fit)",
				d, d.Nx, d.Ny, minW, rx, maxParts(d.Nx, rx))
		}
		return errs.Tagf(thin, "dist: rank grid %s over a %dx%d domain leaves tiles only %d column(s) wide, need more than the depth-%d halo width %d (stencil x-radius %d; at most %d rank column(s) fit at this depth, and this grid supports halo depth at most %d)",
			d, d.Nx, d.Ny, minW, depth, hx, rx, maxParts(d.Nx, hx), maxDepth(minW, rx))
	}
	if minH := d.Ny / d.RanksY; minH <= hy {
		if depth == 1 {
			return errs.Tagf(thin, "dist: rank grid %s over a %dx%d domain leaves tiles only %d row(s) tall, need more than the stencil y-radius %d (at most %d rank row(s) fit)",
				d, d.Nx, d.Ny, minH, ry, maxParts(d.Ny, ry))
		}
		return errs.Tagf(thin, "dist: rank grid %s over a %dx%d domain leaves tiles only %d row(s) tall, need more than the depth-%d halo height %d (stencil y-radius %d; at most %d rank row(s) fit at this depth, and this grid supports halo depth at most %d)",
			d, d.Nx, d.Ny, minH, depth, hy, ry, maxParts(d.Ny, hy), maxDepth(minH, ry))
	}
	return nil
}

// maxDepth returns the largest halo depth a tile of minDim points supports
// for a stencil radius r (the tile must be strictly wider than depth·r).
func maxDepth(minDim, r int) int {
	if r <= 0 {
		return minDim
	}
	k := (minDim - 1) / r
	if k < 1 {
		k = 1
	}
	return k
}

// maxParts returns the largest number of parts n points can be split into
// with every part strictly larger than r points.
func maxParts(n, r int) int {
	p := n / (r + 1)
	if p < 1 {
		p = 1
	}
	return p
}
