package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"stencilabft/internal/num"
)

// The TCP transport's wire format: every message is one length-prefixed
// binary frame with a fixed little-endian header. The header is versioned —
// a peer built from a different wire revision is rejected at the first
// frame, not silently misparsed — and self-describing enough (from/to rank,
// direction, element width, barrier generation and round) that a receiver
// can route any frame from the header alone.
//
//	offset  size  field
//	0       2     magic "SB" (stencil binary)
//	2       1     wire version (wireVersion)
//	3       1     frame kind (hello | helloAck | halo | token | ... | heartbeat)
//	4       2     from rank (uint16)
//	6       2     to rank (uint16)
//	8       1     direction (dist.Dir; the direction `from` sent toward)
//	9       1     element width in bytes (4 = float32, 8 = float64, 0 = none)
//	10      4     barrier generation (uint32; token frames)
//	14      2     barrier round (uint16; token frames)
//	16      4     sequence number (uint32; per-edge, data frames only, 0 = unsequenced)
//	20      4     payload length in bytes (uint32)
//	24      4     CRC-32C over header[0:24] + payload
//	28      —     payload
//
// Version 2 added the sequence number and the checksum. The CRC turns a
// corrupted frame (a flipped bit on the wire, a chaos injection) into a
// detected, attributable error at the receiving edge instead of silently
// desynchronizing the stream; the sequence number is what lets a rebuilt
// connection resume exactly where the old one left off (duplicates are
// dropped, gaps force a reconnect-and-replay).
//
// Halo payloads are raw IEEE-754 element bits, little-endian, in the pack
// order of the exchange (row-major strips). Bootstrap payloads (register,
// book, nack) are JSON — they run once per process, so self-describing
// beats compact there.

const (
	wireMagic0  = 'S'
	wireMagic1  = 'B'
	wireVersion = 2

	wireHeaderSize = 28

	// maxFramePayload caps a frame's declared payload so a corrupt or
	// malicious header cannot make the receiver allocate unbounded memory.
	maxFramePayload = 1 << 30
)

// crcTable is the Castagnoli polynomial table every frame checksum uses —
// the same CRC-32C the checkpoint file format trusts.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame kinds.
const (
	frameHello     = byte(iota + 1) // opens a directed halo edge: {from, to, dir}
	frameHalo                       // one boundary strip, payload = elements
	frameToken                      // barrier token: {gen, round}
	frameRegister                   // rendezvous: JSON {ranks, addr}
	frameBook                       // rendezvous: JSON {addrs: rank → listen addr}
	frameNack                       // rendezvous rejection: JSON {error}
	frameCkpt                       // buddy checkpoint: gen = iteration, payload = packed rank state
	frameDead                       // recovery control: JSON fault report / death notice
	frameAdopt                      // recovery control: JSON plan / adoption request
	frameState                      // recovery control: gen = iteration, payload = dead rank's packed state
	frameHelloAck                   // edge handshake reply: seq = next sequence the receiver expects
	frameHeartbeat                  // idle keepalive; unsequenced, receiver discards it
)

// The recovery control plane (internal/resilience) speaks the same wire
// format as the halo edges, so a coordinator endpoint rejects foreign
// traffic with the same magic/version checks. These exports are that
// package's surface; the halo data path keeps using the unexported kinds.
const (
	FrameCkpt  = frameCkpt
	FrameDead  = frameDead
	FrameAdopt = frameAdopt
	FrameState = frameState
)

// WireFrame is the decoded form of one control-plane message: the kind,
// the iteration stamp carried in the header's generation field, and the
// raw payload (JSON for FrameDead/FrameAdopt, packed elements for
// FrameState).
type WireFrame struct {
	Kind    byte
	Gen     uint32
	Elem    byte
	Payload []byte
}

// ReadWireFrame reads and validates one control-plane frame from r.
func ReadWireFrame(r io.Reader) (WireFrame, error) {
	f, err := readFrame(r)
	if err != nil {
		return WireFrame{}, err
	}
	return WireFrame{Kind: f.kind, Gen: f.gen, Elem: f.elem, Payload: f.payload}, nil
}

// WriteWireFrame re-emits a decoded control-plane frame verbatim — how the
// recovery coordinator relays a state frame from the guard to the adopter
// without knowing the element type.
func WriteWireFrame(w io.Writer, f WireFrame) error {
	_, err := w.Write(appendFrame(nil, frame{kind: f.Kind, elem: f.Elem, gen: f.Gen, payload: f.Payload}))
	return err
}

// WriteJSONFrame marshals v and writes it to w as a frame of the given
// kind — the control plane's request/response unit.
func WriteJSONFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(appendFrame(nil, frame{kind: kind, payload: payload}))
	return err
}

// WriteStateFrame writes a packed rank state stamped with its checkpoint
// iteration — how a buddy streams a dead rank's snapshot through the
// coordinator to its new host.
func WriteStateFrame[T num.Float](w io.Writer, gen int, data []T) error {
	es := elemSize[T]()
	buf := make([]byte, wireHeaderSize, wireHeaderSize+len(data)*int(es))
	putHeader(buf, frame{kind: frameState, elem: es, gen: uint32(gen)})
	buf = appendElems(buf, data)
	sealFrame(buf, 0)
	_, err := w.Write(buf)
	return err
}

// DecodeStateFrame parses a FrameState payload back into elements and the
// checkpoint iteration it was taken at.
func DecodeStateFrame[T num.Float](f WireFrame) ([]T, int, error) {
	if f.Kind != frameState {
		return nil, 0, fmt.Errorf("dist: frame kind %d is not a state frame", f.Kind)
	}
	data, err := decodeElems[T](f.Elem, f.Payload)
	if err != nil {
		return nil, 0, err
	}
	return data, int(f.Gen), nil
}

// frame is the decoded form of one wire message.
type frame struct {
	kind     byte
	from, to uint16
	dir      byte
	elem     byte
	gen      uint32
	round    uint16
	seq      uint32
	payload  []byte
}

// putHeader writes f's header fields into h (len wireHeaderSize). The
// payload length and CRC are left zero; sealFrame fills them once the
// payload is in place.
func putHeader(h []byte, f frame) {
	h[0], h[1] = wireMagic0, wireMagic1
	h[2] = wireVersion
	h[3] = f.kind
	binary.LittleEndian.PutUint16(h[4:6], f.from)
	binary.LittleEndian.PutUint16(h[6:8], f.to)
	h[8] = f.dir
	h[9] = f.elem
	binary.LittleEndian.PutUint32(h[10:14], f.gen)
	binary.LittleEndian.PutUint16(h[14:16], f.round)
	binary.LittleEndian.PutUint32(h[16:20], f.seq)
	binary.LittleEndian.PutUint32(h[20:24], 0)
	binary.LittleEndian.PutUint32(h[24:28], 0)
}

// sealFrame finalises a serialised frame in place: stamps the sequence
// number, backfills the payload length, and computes the CRC-32C over the
// header (CRC field excluded) and payload. It is the last step before a
// frame may hit the wire — any later mutation invalidates the checksum,
// which is the point: the receiver's CRC check covers everything.
func sealFrame(buf []byte, seq uint32) {
	binary.LittleEndian.PutUint32(buf[16:20], seq)
	binary.LittleEndian.PutUint32(buf[20:24], uint32(len(buf)-wireHeaderSize))
	crc := crc32.Update(0, crcTable, buf[:24])
	crc = crc32.Update(crc, crcTable, buf[wireHeaderSize:])
	binary.LittleEndian.PutUint32(buf[24:28], crc)
}

// frameSeq reads the sequence number of a serialised frame.
func frameSeq(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[16:20]) }

// appendFrame serialises and seals f onto dst and returns the extended
// slice.
func appendFrame(dst []byte, f frame) []byte {
	start := len(dst)
	var h [wireHeaderSize]byte
	putHeader(h[:], f)
	dst = append(dst, h[:]...)
	dst = append(dst, f.payload...)
	sealFrame(dst[start:], f.seq)
	return dst
}

// encodeHaloFrame serialises one halo strip into a single wire buffer —
// header reserved up front, elements appended in place, then sealed —
// avoiding the intermediate payload buffer appendFrame would need. This
// is the per-edge-per-iteration hot path of Send. The frame is returned
// unsealed: the edge's writer goroutine owns the per-edge sequence counter
// and seals (seq + length + CRC) at dispatch, so the checksum is computed
// exactly once per frame.
func encodeHaloFrame[T num.Float](from, to uint16, dir byte, gen uint32, data []T) []byte {
	return encodeHaloFrameInto[T](nil, from, to, dir, gen, data)
}

// encodeHaloFrameInto is encodeHaloFrame writing into a recycled wire
// buffer when its capacity suffices (allocating a fresh one otherwise) —
// the reuse path fed by the resend window's evictions.
func encodeHaloFrameInto[T num.Float](buf []byte, from, to uint16, dir byte, gen uint32, data []T) []byte {
	es := elemSize[T]()
	if need := wireHeaderSize + len(data)*int(es); cap(buf) < need {
		buf = make([]byte, wireHeaderSize, need)
	} else {
		buf = buf[:wireHeaderSize]
	}
	putHeader(buf, frame{kind: frameHalo, from: from, to: to, dir: dir, elem: es, gen: gen})
	return appendElems(buf, data)
}

// wireCorruptError marks a frame rejected by the CRC check — the receiver
// classifies it as corruption (and heals by forcing the sender to
// reconnect and replay) rather than as a protocol error.
type wireCorruptError struct{ msg string }

func (e *wireCorruptError) Error() string { return e.msg }

// isCorruptFrame reports whether err is a CRC rejection from readFrame.
func isCorruptFrame(err error) bool {
	var ce *wireCorruptError
	return errors.As(err, &ce)
}

// readFrame reads and validates one frame from r. It checks the magic and
// the wire version before trusting any other header field, then verifies
// the CRC-32C over header and payload, so a version-mismatched peer or a
// corrupted frame is rejected with an actionable error instead of being
// misparsed.
func readFrame(r io.Reader) (frame, error) {
	var h [wireHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return frame{}, err
	}
	if h[0] != wireMagic0 || h[1] != wireMagic1 {
		return frame{}, fmt.Errorf("dist: bad wire magic %#02x%02x (not a stencilabft transport peer?)", h[0], h[1])
	}
	if h[2] != wireVersion {
		return frame{}, fmt.Errorf("dist: wire version mismatch: peer speaks version %d, this binary speaks version %d", h[2], wireVersion)
	}
	n := binary.LittleEndian.Uint32(h[20:24])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("dist: frame payload length %d exceeds the %d-byte cap (corrupt header?)", n, maxFramePayload)
	}
	f := frame{
		kind:  h[3],
		from:  binary.LittleEndian.Uint16(h[4:6]),
		to:    binary.LittleEndian.Uint16(h[6:8]),
		dir:   h[8],
		elem:  h[9],
		gen:   binary.LittleEndian.Uint32(h[10:14]),
		round: binary.LittleEndian.Uint16(h[14:16]),
		seq:   binary.LittleEndian.Uint32(h[16:20]),
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, fmt.Errorf("dist: truncated frame payload (want %d bytes): %w", n, err)
		}
	}
	crc := crc32.Update(0, crcTable, h[:24])
	crc = crc32.Update(crc, crcTable, f.payload)
	if want := binary.LittleEndian.Uint32(h[24:28]); crc != want {
		return frame{}, &wireCorruptError{msg: fmt.Sprintf(
			"dist: frame CRC mismatch (kind %d seq %d, got %#08x want %#08x): corrupted on the wire", f.kind, f.seq, crc, want)}
	}
	return f, nil
}

// elemSize returns the wire element width of T in bytes (4 or 8). Sizeof,
// unlike a type assertion, stays correct for named float types (~float32).
func elemSize[T num.Float]() byte {
	var v T
	return byte(unsafe.Sizeof(v))
}

// appendElems serialises data as little-endian IEEE-754 bits onto dst. The
// conversions through float32/float64 are exact: T's underlying type has
// the same width.
func appendElems[T num.Float](dst []byte, data []T) []byte {
	if elemSize[T]() == 4 {
		for _, v := range data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
		return dst
	}
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v)))
	}
	return dst
}

// decodeElems parses a halo payload back into elements, validating the
// declared element width against T and the payload length against it.
func decodeElems[T num.Float](elem byte, payload []byte) ([]T, error) {
	want := elemSize[T]()
	if elem != want {
		return nil, fmt.Errorf("dist: halo element width %d bytes, this rank runs %d-byte elements (mixed float32/float64 cluster?)", elem, want)
	}
	if len(payload)%int(want) != 0 {
		return nil, fmt.Errorf("dist: halo payload of %d bytes is not a whole number of %d-byte elements", len(payload), want)
	}
	out := make([]T, len(payload)/int(want))
	if want == 4 {
		for i := range out {
			out[i] = T(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
		}
		return out, nil
	}
	for i := range out {
		out[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:])))
	}
	return out, nil
}
