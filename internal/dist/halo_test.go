package dist

import (
	"sync"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestFillEdgeHalo checks the ghost-row synthesis of the edge ranks for
// each non-periodic boundary condition.
func TestFillEdgeHalo(t *testing.T) {
	const nx, ny = 5, 9
	for _, tc := range []struct {
		bc grid.Boundary
		// wantTop(x) is the expected ghost value just above the domain,
		// wantBot(x) just below, given init value 10*y+x.
		wantTop func(x int) float64
		wantBot func(x int) float64
	}{
		{grid.Clamp, func(x int) float64 { return float64(x) }, func(x int) float64 { return float64(10*(ny-1) + x) }},
		{grid.Mirror, func(x int) float64 { return float64(10 + x) }, func(x int) float64 { return float64(10*(ny-2) + x) }},
		{grid.Constant, func(x int) float64 { return 7 }, func(x int) float64 { return 7 }},
		{grid.Zero, func(x int) float64 { return 0 }, func(x int) float64 { return 0 }},
	} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: tc.bc, BCValue: 7}
		init := grid.New[float64](nx, ny)
		init.FillFunc(func(x, y int) float64 { return float64(10*y + x) })
		c, err := NewCluster(op, init, 3, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		top, bot := c.ranks[0], c.ranks[2]
		top.fillEdgeHalo(true)
		bot.fillEdgeHalo(false)
		for x := 0; x < nx; x++ {
			if got := top.buf.Read.At(top.loX()+x, top.loY()-1); got != tc.wantTop(x) {
				t.Fatalf("%v top ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantTop(x))
			}
			if got := bot.buf.Read.At(bot.loX()+x, bot.hiY()); got != tc.wantBot(x) {
				t.Fatalf("%v bottom ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantBot(x))
			}
		}
	}
}

// TestFillSideHalo checks the ghost-column synthesis of the x-edge tiles of
// a 2-D rank grid for each non-periodic boundary condition — the x analogue
// of TestFillEdgeHalo the tile decomposition introduces.
func TestFillSideHalo(t *testing.T) {
	const nx, ny = 9, 6
	for _, tc := range []struct {
		bc grid.Boundary
		// wantLeft(y) is the expected ghost value just left of the domain,
		// wantRight(y) just right, given init value 10*y+x.
		wantLeft  func(y int) float64
		wantRight func(y int) float64
	}{
		{grid.Clamp, func(y int) float64 { return float64(10 * y) }, func(y int) float64 { return float64(10*y + nx - 1) }},
		{grid.Mirror, func(y int) float64 { return float64(10*y + 1) }, func(y int) float64 { return float64(10*y + nx - 2) }},
		{grid.Constant, func(y int) float64 { return 7 }, func(y int) float64 { return 7 }},
		{grid.Zero, func(y int) float64 { return 0 }, func(y int) float64 { return 0 }},
	} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: tc.bc, BCValue: 7}
		init := grid.New[float64](nx, ny)
		init.FillFunc(func(x, y int) float64 { return float64(10*y + x) })
		c, err := NewClusterGrid(op, init, 3, 1, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		left, right := c.ranks[0], c.ranks[2]
		left.fillSideHalo(true)
		right.fillSideHalo(false)
		for y := 0; y < ny; y++ {
			if got := left.buf.Read.At(left.loX()-1, left.loY()+y); got != tc.wantLeft(y) {
				t.Fatalf("%v left ghost at y=%d: got %g, want %g", tc.bc, y, got, tc.wantLeft(y))
			}
			if got := right.buf.Read.At(right.hiX(), right.loY()+y); got != tc.wantRight(y) {
				t.Fatalf("%v right ghost at y=%d: got %g, want %g", tc.bc, y, got, tc.wantRight(y))
			}
		}
	}
}

// exchangeAll runs one manual halo-exchange round on every rank
// concurrently (the exchange is rendezvous-based, so it needs all ranks).
func exchangeAll(c *Cluster[float64]) {
	var wg sync.WaitGroup
	for _, r := range c.ranks {
		wg.Add(1)
		go func(r *rank[float64]) {
			defer wg.Done()
			r.exchangeHalos()
		}(r)
	}
	wg.Wait()
}

// TestExchangeHalos runs one manual exchange round on a band chain and
// checks every rank sees its neighbours' boundary rows.
func TestExchangeHalos(t *testing.T) {
	const nx, ny, ranks = 4, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := grid.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(100*y + x) })
	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(c)

	// Rank 1 owns rows 4..7: its top halo is row 3, its bottom halo row 8.
	mid := c.ranks[1]
	for x := 0; x < nx; x++ {
		if got := mid.buf.Read.At(mid.loX()+x, mid.loY()-1); got != float64(300+x) {
			t.Fatalf("top halo at x=%d: got %g", x, got)
		}
		if got := mid.buf.Read.At(mid.loX()+x, mid.hiY()); got != float64(800+x) {
			t.Fatalf("bottom halo at x=%d: got %g", x, got)
		}
	}
	if mid.stats.HaloExchanges != 1 {
		t.Fatalf("halo exchange counter %d", mid.stats.HaloExchanges)
	}
	if mid.stats.HaloByDir != [4]int{1, 1, 0, 0} {
		t.Fatalf("band rank per-direction counters %v, want up/down only", mid.stats.HaloByDir)
	}
}

// TestExchangeHalosGridCorners runs one manual exchange round on a 2x2 rank
// grid and checks that every halo strip — columns, rows, and crucially the
// corner blocks threaded through the full-width row messages — holds
// exactly the value the global domain has at that point, with the domain
// border synthesised by the boundary condition.
func TestExchangeHalosGridCorners(t *testing.T) {
	const nx, ny = 8, 6
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Clamp}
	init := grid.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(100*y + x) })
	c, err := NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(c)

	// Every extended-frame cell of every rank must equal the global
	// boundary-resolved value at its global coordinate.
	bg := grid.BoundedGrid[float64]{G: init, Cond: grid.Clamp}
	for i, r := range c.ranks {
		for ey := 0; ey < r.nyLoc+2*r.hy; ey++ {
			for ex := 0; ex < r.nxLoc+2*r.hx; ex++ {
				gx := r.tile.X0 - r.hx + ex
				gy := r.tile.Y0 - r.hy + ey
				want := bg.At(gx, gy)
				if got := r.buf.Read.At(ex, ey); got != want {
					t.Fatalf("rank %d (tile %v) extended cell (%d,%d) = global (%d,%d): got %g, want %g",
						i, r.tile, ex, ey, gx, gy, got, want)
				}
			}
		}
		if r.stats.HaloByDir[Up]+r.stats.HaloByDir[Down] != 1 || r.stats.HaloByDir[Left]+r.stats.HaloByDir[Right] != 1 {
			t.Fatalf("rank %d of a 2x2 grid sent %v messages, want one per wired axis side", i, r.stats.HaloByDir)
		}
	}
}

// TestExchangeHalosPeriodicTorus is the corner check under periodic
// boundaries, where every halo — wrap-around corners included — is real
// remote data.
func TestExchangeHalosPeriodicTorus(t *testing.T) {
	const nx, ny = 8, 6
	op := &stencil.Op2D[float64]{St: stencil.BoxBlur[float64](), BC: grid.Periodic}
	init := grid.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(100*y + x) })
	c, err := NewClusterGrid(op, init, 2, 2, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(c)

	bg := grid.BoundedGrid[float64]{G: init, Cond: grid.Periodic}
	for i, r := range c.ranks {
		for ey := 0; ey < r.nyLoc+2*r.hy; ey++ {
			for ex := 0; ex < r.nxLoc+2*r.hx; ex++ {
				want := bg.At(r.tile.X0-r.hx+ex, r.tile.Y0-r.hy+ey)
				if got := r.buf.Read.At(ex, ey); got != want {
					t.Fatalf("rank %d extended cell (%d,%d): got %g, want %g", i, ex, ey, got, want)
				}
			}
		}
		if r.stats.HaloByDir != [4]int{1, 1, 1, 1} {
			t.Fatalf("torus rank %d sent %v messages, want one per direction", i, r.stats.HaloByDir)
		}
	}
}

// TestBarrier hammers the cyclic barrier across generations: no party may
// pass generation g+1 before every party has arrived at generation g.
func TestBarrier(t *testing.T) {
	const parties, gens = 8, 200
	b := newBarrier(parties)
	var mu sync.Mutex
	arrived := make([]int, parties)

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				mu.Lock()
				arrived[p] = g + 1
				for _, a := range arrived {
					if a < g {
						mu.Unlock()
						t.Errorf("party passed generation %d while another was at %d", g, a)
						return
					}
				}
				mu.Unlock()
				b.await()
			}
		}(p)
	}
	wg.Wait()
}
