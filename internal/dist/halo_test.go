package dist

import (
	"sync"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestChanTransportTopology checks the default transport's neighbour
// wiring: edge ranks have no outer neighbour under non-periodic boundaries,
// every rank is fully wired in the periodic ring, a message posted by a
// rank arrives at the right neighbour, and a single periodic rank
// self-exchanges.
func TestChanTransportTopology(t *testing.T) {
	tr := NewChanTransport[float64](3, false)
	if tr.Neighbor(0, Up) || tr.Neighbor(2, Down) {
		t.Fatal("edge rank wired outward without periodic boundaries")
	}
	if !tr.Neighbor(1, Up) || !tr.Neighbor(1, Down) || !tr.Neighbor(0, Down) || !tr.Neighbor(2, Up) {
		t.Fatal("interior wiring missing")
	}
	// A send must pair with the neighbour's receive on the opposite side.
	tr.Send(1, Up, []float64{1})
	if got := tr.Recv(0, Down); got[0] != 1 {
		t.Fatalf("rank 0 received %v from below, want rank 1's upward message", got)
	}
	tr.Send(1, Down, []float64{2})
	if got := tr.Recv(2, Up); got[0] != 2 {
		t.Fatalf("rank 2 received %v from above, want rank 1's downward message", got)
	}

	ring := NewChanTransport[float64](2, true)
	for i := 0; i < 2; i++ {
		if !ring.Neighbor(i, Up) || !ring.Neighbor(i, Down) {
			t.Fatalf("periodic rank %d not fully wired", i)
		}
	}
	ring.Send(0, Up, []float64{3}) // wraps around to rank 1's lower side
	if got := ring.Recv(1, Down); got[0] != 3 {
		t.Fatalf("ring wrap-around broken: %v", got)
	}

	self := NewChanTransport[float64](1, true)
	self.Send(0, Up, []float64{4})
	self.Send(0, Down, []float64{5})
	if got := self.Recv(0, Down); got[0] != 4 {
		t.Fatalf("self-exchange broken: %v", got)
	}
	if got := self.Recv(0, Up); got[0] != 5 {
		t.Fatalf("self-exchange broken: %v", got)
	}
}

// TestFillEdgeHalo checks the ghost-row synthesis of the edge ranks for
// each non-periodic boundary condition.
func TestFillEdgeHalo(t *testing.T) {
	const nx, ny = 5, 9
	for _, tc := range []struct {
		bc grid.Boundary
		// wantTop(x) is the expected ghost value just above the domain,
		// wantBot(x) just below, given init value 10*y+x.
		wantTop func(x int) float64
		wantBot func(x int) float64
	}{
		{grid.Clamp, func(x int) float64 { return float64(x) }, func(x int) float64 { return float64(10*(ny-1) + x) }},
		{grid.Mirror, func(x int) float64 { return float64(10 + x) }, func(x int) float64 { return float64(10*(ny-2) + x) }},
		{grid.Constant, func(x int) float64 { return 7 }, func(x int) float64 { return 7 }},
		{grid.Zero, func(x int) float64 { return 0 }, func(x int) float64 { return 0 }},
	} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: tc.bc, BCValue: 7}
		init := grid.New[float64](nx, ny)
		init.FillFunc(func(x, y int) float64 { return float64(10*y + x) })
		c, err := NewCluster(op, init, 3, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		top, bot := c.ranks[0], c.ranks[2]
		top.fillEdgeHalo(true)
		bot.fillEdgeHalo(false)
		for x := 0; x < nx; x++ {
			if got := top.buf.Read.At(x, top.bandLo()-1); got != tc.wantTop(x) {
				t.Fatalf("%v top ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantTop(x))
			}
			if got := bot.buf.Read.At(x, bot.bandHi()); got != tc.wantBot(x) {
				t.Fatalf("%v bottom ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantBot(x))
			}
		}
	}
}

// TestExchangeHalos runs one manual exchange round and checks every rank
// sees its neighbours' boundary rows.
func TestExchangeHalos(t *testing.T) {
	const nx, ny, ranks = 4, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := grid.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(100*y + x) })
	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, r := range c.ranks {
		wg.Add(1)
		go func(r *rank[float64]) {
			defer wg.Done()
			r.exchangeHalos()
		}(r)
	}
	wg.Wait()

	// Rank 1 owns rows 4..7: its top halo is row 3, its bottom halo row 8.
	mid := c.ranks[1]
	for x := 0; x < nx; x++ {
		if got := mid.buf.Read.At(x, mid.bandLo()-1); got != float64(300+x) {
			t.Fatalf("top halo at x=%d: got %g", x, got)
		}
		if got := mid.buf.Read.At(x, mid.bandHi()); got != float64(800+x) {
			t.Fatalf("bottom halo at x=%d: got %g", x, got)
		}
	}
	if mid.stats.HaloExchanges != 1 {
		t.Fatalf("halo exchange counter %d", mid.stats.HaloExchanges)
	}
}

// TestBarrier hammers the cyclic barrier across generations: no party may
// pass generation g+1 before every party has arrived at generation g.
func TestBarrier(t *testing.T) {
	const parties, gens = 8, 200
	b := newBarrier(parties)
	var mu sync.Mutex
	arrived := make([]int, parties)

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				mu.Lock()
				arrived[p] = g + 1
				for _, a := range arrived {
					if a < g {
						mu.Unlock()
						t.Errorf("party passed generation %d while another was at %d", g, a)
						return
					}
				}
				mu.Unlock()
				b.await()
			}
		}(p)
	}
	wg.Wait()
}
