package dist

import (
	"sync"
	"testing"

	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestWireHalosTopology checks the neighbour wiring: edge ranks have no
// outer channels under non-periodic boundaries, every rank is fully wired
// in the periodic ring, and a single periodic rank self-exchanges.
func TestWireHalosTopology(t *testing.T) {
	build := func(n int, periodic bool) []*rank[float64] {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
		if periodic {
			op.BC = grid.Periodic
		}
		init := testInit(8, 6*n)
		c, err := NewCluster(op, init, n, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		return c.ranks
	}

	ranks := build(3, false)
	if ranks[0].sendUp != nil || ranks[0].recvUp != nil {
		t.Fatal("top rank wired upward without periodic boundaries")
	}
	if ranks[2].sendDn != nil || ranks[2].recvDn != nil {
		t.Fatal("bottom rank wired downward without periodic boundaries")
	}
	if ranks[1].sendUp == nil || ranks[1].sendDn == nil || ranks[1].recvUp == nil || ranks[1].recvDn == nil {
		t.Fatal("interior rank not fully wired")
	}
	// A send channel must pair with the neighbour's receive channel.
	if ranks[1].sendUp != ranks[0].recvDn || ranks[1].sendDn != ranks[2].recvUp {
		t.Fatal("channel pairing broken")
	}

	ring := build(2, true)
	for i, r := range ring {
		if r.sendUp == nil || r.sendDn == nil || r.recvUp == nil || r.recvDn == nil {
			t.Fatalf("periodic rank %d not fully wired", i)
		}
	}
	if ring[0].sendUp != ring[1].recvDn || ring[1].sendDn != ring[0].recvUp {
		t.Fatal("ring wrap-around pairing broken")
	}

	self := build(1, true)
	if self[0].sendUp != self[0].recvDn || self[0].sendDn != self[0].recvUp {
		t.Fatal("single periodic rank does not self-exchange")
	}
}

// TestFillEdgeHalo checks the ghost-row synthesis of the edge ranks for
// each non-periodic boundary condition.
func TestFillEdgeHalo(t *testing.T) {
	const nx, ny = 5, 9
	for _, tc := range []struct {
		bc grid.Boundary
		// wantTop(x) is the expected ghost value just above the domain,
		// wantBot(x) just below, given init value 10*y+x.
		wantTop func(x int) float64
		wantBot func(x int) float64
	}{
		{grid.Clamp, func(x int) float64 { return float64(x) }, func(x int) float64 { return float64(10*(ny-1) + x) }},
		{grid.Mirror, func(x int) float64 { return float64(10 + x) }, func(x int) float64 { return float64(10*(ny-2) + x) }},
		{grid.Constant, func(x int) float64 { return 7 }, func(x int) float64 { return 7 }},
		{grid.Zero, func(x int) float64 { return 0 }, func(x int) float64 { return 0 }},
	} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: tc.bc, BCValue: 7}
		init := grid.New[float64](nx, ny)
		init.FillFunc(func(x, y int) float64 { return float64(10*y + x) })
		c, err := NewCluster(op, init, 3, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		top, bot := c.ranks[0], c.ranks[2]
		top.fillEdgeHalo(true)
		bot.fillEdgeHalo(false)
		for x := 0; x < nx; x++ {
			if got := top.buf.Read.At(x, top.bandLo()-1); got != tc.wantTop(x) {
				t.Fatalf("%v top ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantTop(x))
			}
			if got := bot.buf.Read.At(x, bot.bandHi()); got != tc.wantBot(x) {
				t.Fatalf("%v bottom ghost at x=%d: got %g, want %g", tc.bc, x, got, tc.wantBot(x))
			}
		}
	}
}

// TestExchangeHalos runs one manual exchange round and checks every rank
// sees its neighbours' boundary rows.
func TestExchangeHalos(t *testing.T) {
	const nx, ny, ranks = 4, 12, 3
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := grid.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(100*y + x) })
	c, err := NewCluster(op, init, ranks, strictOpts())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, r := range c.ranks {
		wg.Add(1)
		go func(r *rank[float64]) {
			defer wg.Done()
			r.exchangeHalos()
		}(r)
	}
	wg.Wait()

	// Rank 1 owns rows 4..7: its top halo is row 3, its bottom halo row 8.
	mid := c.ranks[1]
	for x := 0; x < nx; x++ {
		if got := mid.buf.Read.At(x, mid.bandLo()-1); got != float64(300+x) {
			t.Fatalf("top halo at x=%d: got %g", x, got)
		}
		if got := mid.buf.Read.At(x, mid.bandHi()); got != float64(800+x) {
			t.Fatalf("bottom halo at x=%d: got %g", x, got)
		}
	}
	if mid.stats.HaloExchanges != 1 {
		t.Fatalf("halo exchange counter %d", mid.stats.HaloExchanges)
	}
}

// TestBarrier hammers the cyclic barrier across generations: no party may
// pass generation g+1 before every party has arrived at generation g.
func TestBarrier(t *testing.T) {
	const parties, gens = 8, 200
	b := newBarrier(parties)
	var mu sync.Mutex
	arrived := make([]int, parties)

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				mu.Lock()
				arrived[p] = g + 1
				for _, a := range arrived {
					if a < g {
						mu.Unlock()
						t.Errorf("party passed generation %d while another was at %d", g, a)
						return
					}
				}
				mu.Unlock()
				b.await()
			}
		}(p)
	}
	wg.Wait()
}
