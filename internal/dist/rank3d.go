package dist

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// rank3d is one simulated rank of the 3-D layer-decomposed cluster: a slab
// of full nx-by-ny z-layers [z0, z1) of the global domain, stored in a
// ghost-layer-padded local double buffer (h halo layers below and above in
// z), protected by the paper's per-layer online ABFT scheme with slab-aware
// cross-layer checksum coupling. Structurally this is the 1-D row-band rank
// lifted one dimension — the same extended-frame bookkeeping with layers in
// place of rows — which is exactly the reuse the topology-neutral
// decomposition buys. All of a rank's state is touched only by its own
// goroutine; neighbour layers arrive as copies through channels.
type rank3d[T num.Float] struct {
	id     int
	z0, z1 int // global layers owned, [z0, z1)
	nx, ny int
	nzLoc  int // z1 - z0
	h      int // halo depth = stencil z-radius

	// op sweeps the extended local grid: x and y resolve with the global
	// boundary condition (every slab spans the full layer), z never
	// reaches a boundary (halo layers supply the data). Its C field, when
	// present, is the slab's layers of the global constant field padded to
	// the extended depth.
	op  *stencil.Op3D[T]
	buf *grid.Buffer3D[T] // extended grids: nx by ny by (nzLoc + 2h)

	ip   *checksum.Interp3D[T] // built for the slab's nx-by-ny-by-nzLoc shape
	det  checksum.Detector[T]
	pol  checksum.PairPolicy
	pool *stencil.Pool

	// Per-layer column-checksum state in the extended frame: entries
	// [0, h) and [h+nzLoc, nzLoc+2h) are halo-layer sums refreshed every
	// iteration, entries [h, h+nzLoc) are the slab's verified/fused
	// checksums.
	prevExtB [][]T
	newExtB  [][]T
	interpB  [][]T // slab-only, len nzLoc

	// Row-checksum scratch for the detection slow path: prevExtA covers
	// every extended layer (the cross-layer coupling of a flagged layer
	// reads its z-neighbours, halo layers included); newA/interpA are
	// reused per flagged layer.
	prevExtA      [][]T
	newA, interpA []T

	flagged []bool // per-slab-layer mismatch scratch, reused every step

	// edgesRead/edgesWrite are per-extended-layer live views of the two
	// buffer halves, boxed once and swapped alongside the buffer;
	// edgesRead always views buf.Read.
	edgesRead, edgesWrite []checksum.EdgeSource[T]

	tr       Transport[T]
	globalBC grid.Boundary
	globalNz int

	corr  checksum.Corrector[T]
	stats Stats
	tel   *telemetry.Recorder // nil when telemetry is disabled
}

// newRank3D builds rank id over global layers [z0, z1), copying the slab
// and its initial halo layers out of init.
func newRank3D[T num.Float](op *stencil.Op3D[T], init *grid.Grid3D[T], id, z0, z1, h int, opt Options[T]) (*rank3d[T], error) {
	nx, ny := init.Nx(), init.Ny()
	nzLoc := z1 - z0

	// The interpolator is built on the slab's shape with the slab's layers
	// of the constant field; z-halos are supplied at interpolation time.
	iop := &stencil.Op3D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cSlab := grid.New3D[T](nx, ny, nzLoc)
		for z := 0; z < nzLoc; z++ {
			cSlab.Layer(z).CopyFrom(op.C.Layer(z0 + z))
		}
		iop.C = cSlab
	}
	ip, err := checksum.NewInterp3D(iop, nx, ny, nzLoc)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms

	extNz := nzLoc + 2*h
	sop := &stencil.Op3D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cExt := grid.New3D[T](nx, ny, extNz)
		for z := 0; z < nzLoc; z++ {
			cExt.Layer(h + z).CopyFrom(op.C.Layer(z0 + z))
		}
		sop.C = cExt
	}

	r := &rank3d[T]{
		id: id, z0: z0, z1: z1, nx: nx, ny: ny, nzLoc: nzLoc, h: h,
		op:         sop,
		buf:        grid.NewBuffer3D[T](nx, ny, extNz),
		ip:         ip,
		det:        opt.Detector,
		pol:        opt.PairPolicy,
		pool:       opt.Pool,
		prevExtB:   makeVecs[T](extNz, ny),
		newExtB:    makeVecs[T](extNz, ny),
		interpB:    makeVecs[T](nzLoc, ny),
		prevExtA:   makeVecs[T](extNz, nx),
		newA:       make([]T, nx),
		interpA:    make([]T, nx),
		flagged:    make([]bool, nzLoc),
		edgesRead:  make([]checksum.EdgeSource[T], extNz),
		edgesWrite: make([]checksum.EdgeSource[T], extNz),
		globalBC:   op.BC,
		globalNz:   init.Nz(),
	}
	for zz := 0; zz < extNz; zz++ {
		r.edgesRead[zz] = checksum.LiveEdges(r.buf.Read.Layer(zz), op.BC, op.BCValue)
		r.edgesWrite[zz] = checksum.LiveEdges(r.buf.Write.Layer(zz), op.BC, op.BCValue)
	}
	for z := 0; z < nzLoc; z++ {
		r.buf.Read.Layer(h + z).CopyFrom(init.Layer(z0 + z))
		// The initial slab data and checksums are assumed correct
		// (Theorem 2).
		stencil.ChecksumB(r.buf.Read.Layer(h+z), r.prevExtB[h+z])
	}
	return r, nil
}

func makeVecs[T num.Float](n, length int) [][]T {
	out := make([][]T, n)
	for i := range out {
		out[i] = make([]T, length)
	}
	return out
}

// slabLo/slabHi bound the slab's layers in the extended grid.
func (r *rank3d[T]) slabLo() int { return r.h }
func (r *rank3d[T]) slabHi() int { return r.h + r.nzLoc }

// exchangeHalos refreshes the read buffer's halo layers with iteration-t
// data: boundary layers are posted to both z-neighbours first, then the
// inbound layers are copied into the local ghost layers. Layers are
// contiguous in storage, so no packing is needed — the z chain is the 1-D
// band exchange verbatim. Edges without a neighbour (the bottom and top
// slabs under non-periodic boundaries) synthesise their ghost layers from
// the global boundary condition instead.
func (r *rank3d[T]) exchangeHalos() {
	if r.h == 0 {
		return
	}
	plane := r.nx * r.ny
	data := r.buf.Read.Data()
	hasUp, hasDn := r.tr.Neighbor(r.id, Up), r.tr.Neighbor(r.id, Down)
	if hasUp {
		t0 := r.tel.Begin()
		r.tr.Send(r.id, Up, data[r.slabLo()*plane:(r.slabLo()+r.h)*plane]) // own bottom h slab layers
		r.tel.End(telemetry.PhaseSend, t0)
		r.stats.HaloByDir[Up]++
	}
	if hasDn {
		t0 := r.tel.Begin()
		r.tr.Send(r.id, Down, data[(r.slabHi()-r.h)*plane:r.slabHi()*plane]) // own top h slab layers
		r.tel.End(telemetry.PhaseSend, t0)
		r.stats.HaloByDir[Down]++
	}
	if hasUp {
		t0 := r.tel.Begin()
		in := r.tr.Recv(r.id, Up)
		t1 := r.tel.Begin()
		r.tel.End(telemetry.PhaseRecvWait, t0)
		copy(data[0:r.h*plane], in)
		r.tel.End(telemetry.PhaseUnpack, t1)
	} else {
		t0 := r.tel.Begin()
		r.fillEdgeHalo(true)
		r.tel.End(telemetry.PhaseUnpack, t0)
	}
	if hasDn {
		t0 := r.tel.Begin()
		in := r.tr.Recv(r.id, Down)
		t1 := r.tel.Begin()
		r.tel.End(telemetry.PhaseRecvWait, t0)
		copy(data[r.slabHi()*plane:(r.slabHi()+r.h)*plane], in)
		r.tel.End(telemetry.PhaseUnpack, t1)
	} else {
		t0 := r.tel.Begin()
		r.fillEdgeHalo(false)
		r.tel.End(telemetry.PhaseUnpack, t0)
	}
	r.stats.HaloExchanges++
}

// fillEdgeHalo synthesises the ghost layers beyond the global domain's z
// edge by applying the global boundary condition layer-wise. Clamp and
// Mirror resolve to layers this rank owns (a slab is strictly thicker than
// the radius); Constant and Zero substitute the fixed ghost value.
func (r *rank3d[T]) fillEdgeHalo(low bool) {
	ext := r.buf.Read
	for j := 0; j < r.h; j++ {
		var gz, layer int // global ghost layer and its extended-frame index
		if low {
			gz = r.z0 - r.h + j
			layer = j
		} else {
			gz = r.z1 + j
			layer = r.slabHi() + j
		}
		dst := ext.Layer(layer)
		rz, ok := r.globalBC.ResolveIndex(gz, r.globalNz)
		if !ok {
			v := T(0)
			if r.globalBC == grid.Constant {
				v = r.op.BCValue
			}
			dst.Fill(v)
			continue
		}
		dst.CopyFrom(ext.Layer(r.slabLo() + rz - r.z0))
	}
}

// step advances the rank one iteration: fused per-layer sweep over the
// slab, slab-aware per-layer checksum interpolation, detection, and local
// correction. The halo layers of the read buffer must already hold
// iteration-t neighbour data (exchangeHalos runs first).
func (r *rank3d[T]) step(hook stencil.InjectFunc[T]) {
	src, dst := r.buf.Read, r.buf.Write

	// Halo checksums of iteration t: plain per-layer column sums of the
	// received halo layers — no checksum is ever communicated.
	t0 := r.tel.Begin()
	for j := 0; j < r.h; j++ {
		stencil.ChecksumB(src.Layer(j), r.prevExtB[j])
		stencil.ChecksumB(src.Layer(r.slabHi()+j), r.prevExtB[r.slabHi()+j])
	}
	r.tel.End(telemetry.PhaseVerify, t0)

	t0 = r.tel.Begin()
	sweep := func(z int) {
		r.op.SweepLayer(dst, src, r.slabLo()+z, r.newExtB[r.slabLo()+z], hook)
	}
	if r.pool != nil {
		r.pool.ForEach(r.nzLoc, sweep)
	} else {
		for z := 0; z < r.nzLoc; z++ {
			sweep(z)
		}
	}
	r.tel.End(telemetry.PhaseSweep, t0)

	// Interpolate and detect per slab layer; corrections run after the
	// parallel phase, mutating only the flagged layer.
	t0 = r.tel.Begin()
	flagged := r.flagged
	for z := range flagged {
		flagged[z] = false
	}
	detect := func(z int) {
		r.ip.InterpolateBSlab(z, r.prevExtB, r.h, r.edgesRead, r.interpB[z])
		if r.det.AnyMismatch(r.newExtB[r.slabLo()+z], r.interpB[z]) {
			flagged[z] = true
		}
	}
	if r.pool != nil {
		r.pool.ForEach(r.nzLoc, detect)
	} else {
		for z := 0; z < r.nzLoc; z++ {
			detect(z)
		}
	}
	r.stats.Verifications++

	anyFlagged := false
	for z := 0; z < r.nzLoc; z++ {
		if flagged[z] {
			anyFlagged = true
			break
		}
	}
	r.tel.End(telemetry.PhaseVerify, t0)
	if anyFlagged {
		r.stats.Detections++
		t0 = r.tel.Begin()
		// The row-checksum interpolation of a flagged layer reads prevA of
		// its z-neighbours, halo layers included; compute them all once
		// (the slow path is rare, the cost of one sweep).
		for zz := 0; zz < r.nzLoc+2*r.h; zz++ {
			stencil.ChecksumA(src.Layer(zz), r.prevExtA[zz])
		}
		for z := 0; z < r.nzLoc; z++ {
			if flagged[z] {
				r.correctLayer(z, dst)
			}
		}
		r.tel.End(telemetry.PhaseRepair, t0)
	}

	r.prevExtB, r.newExtB = r.newExtB, r.prevExtB
	r.buf.Swap()
	r.edgesRead, r.edgesWrite = r.edgesWrite, r.edgesRead
	r.stats.Iterations++
}

// correctLayer locates and repairs the corrupted points of one flagged slab
// layer using the 2-D correction algebra on that layer's checksum pairs —
// entirely rank-local.
func (r *rank3d[T]) correctLayer(z int, dst *grid.Grid3D[T]) {
	layer := dst.Layer(r.slabLo() + z)
	r.ip.InterpolateASlab(z, r.prevExtA, r.h, r.edgesRead, r.interpA)
	stencil.ChecksumA(layer, r.newA)

	newB := r.newExtB[r.slabLo()+z]
	bm := r.det.Compare(newB, r.interpB[z])
	am := r.det.Compare(r.newA, r.interpA)
	if len(am) == 0 || len(bm) == 0 {
		// Mismatch in one vector only: the corruption sits in a checksum,
		// not the layer. The layer is trusted; refresh the column checksums.
		r.stats.ChecksumRepairs++
		stencil.ChecksumB(layer, newB)
		return
	}
	direct := &checksum.Vectors[T]{A: r.newA, B: newB}
	locs := r.corr.CorrectAll(layer, am, bm, r.pol, direct, r.interpA, r.interpB[z])
	r.stats.CorrectedPoints += len(locs)
}
