package dist

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// rank is one simulated MPI rank: an arbitrary tile [x0,x1) × [y0,y1) of
// the global domain stored in a ghost-padded local double buffer (hx halo
// columns left and right, hy halo rows above and below, corners included),
// protected by the online ABFT scheme with tile-aware checksum
// interpolation. The historical row band is the full-width tile of a 1-D
// (RanksX == 1) rank grid — same code path. All of a rank's state is
// touched only by its own goroutine; neighbour data arrives as copies
// through channels.
type rank[T num.Float] struct {
	id   int
	tile Tile // global sub-rectangle owned

	nxLoc, nyLoc int // tile shape
	rx, ry       int // stencil radii
	depth        int // ghost-zone depth k: halos exchange once every k iterations
	hx, hy       int // halo widths = depth * stencil x/y radii

	// op sweeps the extended local grid. Every point of the tile rect is
	// interior to the extended frame (hx >= RadiusX, hy >= RadiusY), so
	// the sweep reads only materialised storage — real neighbour halos or
	// BC-synthesised ghosts — and never resolves a boundary itself. Its C
	// field, when present, is the tile's slice of the global constant
	// field padded to the extended shape.
	op  *stencil.Op2D[T]
	buf *grid.Buffer[T] // extended grids: (nxLoc+2hx) by (nyLoc+2hy)

	ip   *checksum.Interp2D[T] // built for the nxLoc-by-nyLoc tile
	det  checksum.Detector[T]
	pol  checksum.PairPolicy
	pool *stencil.Pool

	// Column-checksum state in the extended y frame: entries [0, hy) and
	// [hy+nyLoc, nyLoc+2hy) are halo-row sums over the tile's own columns,
	// refreshed every iteration; entries [hy, hy+nyLoc) are the tile's
	// verified/fused checksums.
	prevExtB []T
	newExtB  []T
	interpB  []T // tile-only, len nyLoc

	// Row-checksum scratch for the detection/correction slow path:
	// prevExtA covers the extended x range [-hx, nxLoc+hx) — the halo
	// entries are halo-column sums over the tile's rows, the tile
	// generalisation of the band's ã resolution — newA/interpA are
	// tile-only.
	prevExtA, newA, interpA []T

	// edgeRead/edgeWrite are the TileEdges views of the two buffer halves,
	// boxed into the EdgeSource interface once at construction and swapped
	// alongside the buffer so the per-iteration path stays allocation-free.
	// edgeRead always views buf.Read.
	edgeRead, edgeWrite checksum.EdgeSource[T]

	// halo plumbing: the cluster's transport; a missing neighbour (domain
	// edge under non-periodic boundaries) is resolved from the global
	// boundary condition instead.
	tr                 Transport[T]
	globalBC           grid.Boundary
	globalNx, globalNy int

	// Neighbour presence and the transport's optional per-edge completion
	// capability, both resolved once at construction so the per-iteration
	// overlap schedule never re-asks the transport (bindTransport).
	hasL, hasR, hasU, hasD bool
	either                 EitherReceiver[T]
	try                    TryReceiver[T]

	// sendL/sendR are the packed column strips posted Left/Right, owned by
	// the rank and rewritten only after the iteration barrier, satisfying
	// the transport's payload-lifetime contract.
	sendL, sendR []T

	// stripBL/stripBR hold the boundary strips' per-row checksum segments,
	// fused by the strip sweeps in the extended y frame so
	// combineRowChecksums folds contiguous scratch instead of re-reading
	// the strided edge columns of dst. Only valid for rows the current
	// iteration's strip sweeps covered, and only when the strip spanned
	// tile columns exclusively (zero depth-k margin on that side).
	stripBL, stripBR []T

	stats Stats
	// tel times the rank's phases; nil (telemetry disabled) makes every
	// Begin/End a nil-check no-op, keeping the step allocation-free and
	// clock-free.
	tel *telemetry.Recorder
}

// newRank builds rank id over the global tile t, copying the tile and its
// initial halo data out of init.
func newRank[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], id int, t Tile, hx, hy int, opt Options[T]) (*rank[T], error) {
	nxLoc, nyLoc := t.Nx(), t.Ny()

	// The interpolator is built on the tile's shape with the tile's slice
	// of the constant field; x and y halos are supplied at interpolation
	// time.
	iop := &stencil.Op2D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cTile := grid.New[T](nxLoc, nyLoc)
		for y := 0; y < nyLoc; y++ {
			copy(cTile.Row(y), op.C.Row(t.Y0 + y)[t.X0:t.X1])
		}
		iop.C = cTile
	}
	ip, err := checksum.NewInterp2D(iop, nxLoc, nyLoc)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms

	extNx, extNy := nxLoc+2*hx, nyLoc+2*hy
	sop := &stencil.Op2D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cExt := grid.New[T](extNx, extNy)
		for y := 0; y < nyLoc; y++ {
			copy(cExt.Row(hy + y)[hx:hx+nxLoc], op.C.Row(t.Y0 + y)[t.X0:t.X1])
		}
		sop.C = cExt
	}

	depth := opt.HaloDepth
	if depth < 1 {
		depth = 1
	}
	r := &rank[T]{
		id: id, tile: t, nxLoc: nxLoc, nyLoc: nyLoc, hx: hx, hy: hy,
		rx: op.St.RadiusX(), ry: op.St.RadiusY(), depth: depth,
		op:       sop,
		buf:      grid.NewBuffer[T](extNx, extNy),
		ip:       ip,
		det:      opt.Detector,
		pol:      opt.PairPolicy,
		pool:     opt.Pool,
		prevExtB: make([]T, extNy),
		newExtB:  make([]T, extNy),
		interpB:  make([]T, nyLoc),
		prevExtA: make([]T, extNx),
		newA:     make([]T, nxLoc),
		interpA:  make([]T, nxLoc),
		globalBC: op.BC,
		globalNx: init.Nx(),
		globalNy: init.Ny(),
		sendL:    make([]T, hx*nyLoc),
		sendR:    make([]T, hx*nyLoc),
		stripBL:  make([]T, extNy),
		stripBR:  make([]T, extNy),
	}
	r.edgeRead = checksum.TileEdges[T]{Ext: r.buf.Read, HX: hx, HY: hy}
	r.edgeWrite = checksum.TileEdges[T]{Ext: r.buf.Write, HX: hx, HY: hy}
	for y := 0; y < nyLoc; y++ {
		copy(r.buf.Read.Row(hy + y)[hx:hx+nxLoc], init.Row(t.Y0 + y)[t.X0:t.X1])
	}
	// The initial tile data and checksums are assumed correct (Theorem 2).
	stencil.ChecksumBRect(r.buf.Read, hx, hy, hx+nxLoc, hy+nyLoc, r.prevExtB[hy:hy+nyLoc])
	return r, nil
}

// stateLen is the size of the rank's packed resilience snapshot: the tile
// points plus the verified column checksums. Halo strips are excluded — a
// restored rank refreshes them at its first exchange — and so is the row
// checksum scratch, which the detection slow path recomputes on demand.
func (r *rank[T]) stateLen() int { return r.nxLoc*r.nyLoc + r.nyLoc }

// packState serialises the rank's restartable state into dst (len
// stateLen()): tile rows in row-major order, then the verified checksums.
// Pure copies of IEEE-754 values — a pack/unpack round trip is bit-exact,
// which is what makes recovery bit-identical to the uninterrupted run.
func (r *rank[T]) packState(dst []T) {
	for y := 0; y < r.nyLoc; y++ {
		copy(dst[y*r.nxLoc:(y+1)*r.nxLoc], r.buf.Read.Row(r.loY() + y)[r.loX():r.hiX()])
	}
	copy(dst[r.nxLoc*r.nyLoc:], r.prevExtB[r.loY():r.hiY()])
}

// unpackState is packState's inverse: it overwrites the tile and its
// verified checksums from src, leaving the halo strips to the next
// exchange.
func (r *rank[T]) unpackState(src []T) {
	for y := 0; y < r.nyLoc; y++ {
		copy(r.buf.Read.Row(r.loY() + y)[r.loX():r.hiX()], src[y*r.nxLoc:(y+1)*r.nxLoc])
	}
	copy(r.prevExtB[r.loY():r.hiY()], src[r.nxLoc*r.nyLoc:])
}

// loX/hiX and loY/hiY bound the tile in the extended grid.
func (r *rank[T]) loX() int { return r.hx }
func (r *rank[T]) hiX() int { return r.hx + r.nxLoc }
func (r *rank[T]) loY() int { return r.hy }
func (r *rank[T]) hiY() int { return r.hy + r.nyLoc }

// step advances the rank one iteration: fused sweep over the tile rect,
// tile-aware checksum interpolation, detection, and local correction. The
// halo strips of the read buffer must already hold iteration-t neighbour
// data (exchangeHalos runs first).
func (r *rank[T]) step(hook stencil.InjectFunc[T]) {
	src, dst := r.buf.Read, r.buf.Write

	// Halo checksums of iteration t: plain sums of the received halo rows
	// over the tile's own columns — no checksum is ever communicated (the
	// paper's zero-overhead distribution argument).
	t0 := r.tel.Begin()
	for j := 0; j < r.hy; j++ {
		r.prevExtB[j] = num.Sum(src.Row(j)[r.loX():r.hiX()])
		r.prevExtB[r.hiY()+j] = num.Sum(src.Row(r.hiY() + j)[r.loX():r.hiX()])
	}
	r.tel.End(telemetry.PhaseVerify, t0)

	t0 = r.tel.Begin()
	if r.pool != nil {
		r.pool.ForEachChunk(r.nyLoc, func(lo, hi int) {
			r.op.SweepRectFused(dst, src, r.loX(), r.loY()+lo, r.hiX(), r.loY()+hi, r.newExtB[r.loY()+lo:], hook)
		})
	} else {
		r.op.SweepRectFused(dst, src, r.loX(), r.loY(), r.hiX(), r.hiY(), r.newExtB[r.loY():], hook)
	}
	r.tel.End(telemetry.PhaseSweep, t0)

	t0 = r.tel.Begin()
	edges := r.edgeRead
	r.ip.InterpolateBBand(r.prevExtB, r.hy, edges, r.interpB)
	r.stats.Verifications++

	newB := r.newExtB[r.loY():r.hiY()]
	mismatch := r.det.AnyMismatch(newB, r.interpB)
	r.tel.End(telemetry.PhaseVerify, t0)
	if mismatch {
		r.stats.Detections++
		t0 = r.tel.Begin()
		r.locateAndCorrect(src, dst, edges, newB)
		r.tel.End(telemetry.PhaseRepair, t0)
	}

	r.prevExtB, r.newExtB = r.newExtB, r.prevExtB
	r.buf.Swap()
	r.edgeRead, r.edgeWrite = r.edgeWrite, r.edgeRead
	r.stats.Iterations++
}

// locateAndCorrect is the detection slow path, tile-local throughout: lazy
// row checksums over the extended x range (halo-column sums serve as the
// out-of-tile ã values), tile-aware A interpolation (the y-window-shift
// terms read real halo rows), mismatch intersection, and the numerically
// stable Equation-(10) repair on the tile's partial sums.
func (r *rank[T]) locateAndCorrect(src, dst *grid.Grid[T], edges checksum.EdgeSource[T], newB []T) {
	stencil.ChecksumARect(src, 0, r.loY(), r.loX()+r.hiX(), r.hiY(), r.prevExtA)
	r.ip.InterpolateABlock(r.prevExtA, r.hx, edges, r.interpA)
	stencil.ChecksumARect(dst, r.loX(), r.loY(), r.hiX(), r.hiY(), r.newA)

	bm := r.det.Compare(newB, r.interpB)
	am := r.det.Compare(r.newA, r.interpA)
	if len(am) == 0 || len(bm) == 0 {
		// Mismatch in one vector only: the corruption sits in a checksum,
		// not the tile. The tile is trusted; refresh the column checksums.
		r.stats.ChecksumRepairs++
		stencil.ChecksumBRect(dst, r.loX(), r.loY(), r.hiX(), r.hiY(), newB)
		return
	}
	locs := checksum.Pair(am, bm, r.pol)
	for _, loc := range locs {
		checksum.CorrectRect(dst, r.loX(), r.loY(), r.hiX(), r.hiY(), loc,
			r.newA, newB, r.interpA, r.interpB)
		r.stats.CorrectedPoints++
	}
}
