package dist

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// rank is one simulated MPI rank: a row band [y0, y1) of the global domain
// stored in a ghost-row-padded local double buffer (h halo rows above and
// below the band), protected by the online ABFT scheme with band-aware
// checksum interpolation. All of a rank's state is touched only by its own
// goroutine; neighbour data arrives as copies through channels.
type rank[T num.Float] struct {
	id     int
	y0, y1 int // global rows owned, [y0, y1)
	nx     int
	nyLoc  int // y1 - y0
	h      int // halo width = stencil y-radius

	// op sweeps the extended local grid: x resolves with the global
	// boundary condition, y never reaches a boundary (halo rows supply the
	// data). Its C field, when present, is the band's rows of the global
	// constant field padded to the extended shape.
	op  *stencil.Op2D[T]
	buf *grid.Buffer[T] // extended grids: nx by (nyLoc + 2h)

	ip   *checksum.Interp2D[T] // built for the nx-by-nyLoc band
	det  checksum.Detector[T]
	pol  checksum.PairPolicy
	pool *stencil.Pool

	// Column-checksum state in the extended frame: entries [0,h) and
	// [h+nyLoc, nyLoc+2h) are halo-row sums refreshed every iteration,
	// entries [h, h+nyLoc) are the band's verified/fused checksums.
	prevExtB []T
	newExtB  []T
	interpB  []T // band-only, len nyLoc

	// scratch for the detection/correction slow path (band-only)
	prevA, newA, interpA []T

	// edgeRead/edgeWrite are the BandEdges views of the two buffer halves,
	// boxed into the EdgeSource interface once at construction and swapped
	// alongside the buffer so the per-iteration path stays allocation-free.
	// edgeRead always views buf.Read.
	edgeRead, edgeWrite checksum.EdgeSource[T]

	// halo plumbing: the cluster's transport; a missing neighbour (domain
	// edge under non-periodic boundaries) is resolved from the global
	// boundary condition instead.
	tr       Transport[T]
	globalBC grid.Boundary
	globalNy int

	stats Stats
}

// newRank builds rank id over global rows [y0, y1), copying the band and
// its initial halo rows out of init.
func newRank[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], id, y0, y1, h int, opt Options[T]) (*rank[T], error) {
	nx := init.Nx()
	nyLoc := y1 - y0

	// The interpolator is built on the band's shape with the band's slice
	// of the constant field; y-halos are supplied at interpolation time.
	iop := &stencil.Op2D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cBand := grid.New[T](nx, nyLoc)
		for y := 0; y < nyLoc; y++ {
			copy(cBand.Row(y), op.C.Row(y0+y))
		}
		iop.C = cBand
	}
	ip, err := checksum.NewInterp2D(iop, nx, nyLoc)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms

	extNy := nyLoc + 2*h
	sop := &stencil.Op2D[T]{St: op.St, BC: op.BC, BCValue: op.BCValue}
	if op.C != nil {
		cExt := grid.New[T](nx, extNy)
		for y := 0; y < nyLoc; y++ {
			copy(cExt.Row(h+y), op.C.Row(y0+y))
		}
		sop.C = cExt
	}

	r := &rank[T]{
		id: id, y0: y0, y1: y1, nx: nx, nyLoc: nyLoc, h: h,
		op:       sop,
		buf:      grid.NewBuffer[T](nx, extNy),
		ip:       ip,
		det:      opt.Detector,
		pol:      opt.PairPolicy,
		pool:     opt.Pool,
		prevExtB: make([]T, extNy),
		newExtB:  make([]T, extNy),
		interpB:  make([]T, nyLoc),
		prevA:    make([]T, nx),
		newA:     make([]T, nx),
		interpA:  make([]T, nx),
		globalBC: op.BC,
		globalNy: init.Ny(),
	}
	r.edgeRead = checksum.BandEdges[T]{Ext: r.buf.Read, H: h, BC: r.globalBC, ConstVal: r.op.BCValue}
	r.edgeWrite = checksum.BandEdges[T]{Ext: r.buf.Write, H: h, BC: r.globalBC, ConstVal: r.op.BCValue}
	for y := 0; y < nyLoc; y++ {
		copy(r.buf.Read.Row(h+y), init.Row(y0+y))
	}
	// The initial band data and checksums are assumed correct (Theorem 2).
	stencil.ChecksumBRect(r.buf.Read, 0, h, nx, h+nyLoc, r.prevExtB[h:h+nyLoc])
	return r, nil
}

// bandLo/bandHi bound the band's rows in the extended grid.
func (r *rank[T]) bandLo() int { return r.h }
func (r *rank[T]) bandHi() int { return r.h + r.nyLoc }

// step advances the rank one iteration: fused sweep over the band rows,
// band-aware checksum interpolation, detection, and local correction. The
// halo rows of the read buffer must already hold iteration-t neighbour
// data (exchangeHalos runs first).
func (r *rank[T]) step(hook stencil.InjectFunc[T]) {
	src, dst := r.buf.Read, r.buf.Write

	// Halo checksums of iteration t: plain row sums of the received halo
	// rows — no checksum is ever communicated (the paper's zero-overhead
	// distribution argument).
	for j := 0; j < r.h; j++ {
		r.prevExtB[j] = num.Sum(src.Row(j))
		r.prevExtB[r.bandHi()+j] = num.Sum(src.Row(r.bandHi() + j))
	}

	if r.pool != nil {
		r.pool.ForEachChunk(r.nyLoc, func(lo, hi int) {
			r.op.SweepRange(dst, src, r.bandLo()+lo, r.bandLo()+hi, r.newExtB, hook)
		})
	} else {
		r.op.SweepRange(dst, src, r.bandLo(), r.bandHi(), r.newExtB, hook)
	}

	edges := r.edgeRead
	r.ip.InterpolateBBand(r.prevExtB, r.h, edges, r.interpB)
	r.stats.Verifications++

	newB := r.newExtB[r.bandLo():r.bandHi()]
	if r.det.AnyMismatch(newB, r.interpB) {
		r.stats.Detections++
		r.locateAndCorrect(src, dst, edges, newB)
	}

	r.prevExtB, r.newExtB = r.newExtB, r.prevExtB
	r.buf.Swap()
	r.edgeRead, r.edgeWrite = r.edgeWrite, r.edgeRead
	r.stats.Iterations++
}

// locateAndCorrect is the detection slow path, band-local throughout: lazy
// row checksums over the band's rows, band-aware A interpolation (the
// y-window-shift terms read real halo rows), mismatch intersection, and the
// numerically stable Equation-(10) repair on the band's partial sums.
func (r *rank[T]) locateAndCorrect(src, dst *grid.Grid[T], edges checksum.EdgeSource[T], newB []T) {
	stencil.ChecksumARect(src, 0, r.bandLo(), r.nx, r.bandHi(), r.prevA)
	r.ip.InterpolateABand(r.prevA, edges, r.interpA)
	stencil.ChecksumARect(dst, 0, r.bandLo(), r.nx, r.bandHi(), r.newA)

	bm := r.det.Compare(newB, r.interpB)
	am := r.det.Compare(r.newA, r.interpA)
	if len(am) == 0 || len(bm) == 0 {
		// Mismatch in one vector only: the corruption sits in a checksum,
		// not the band. The band is trusted; refresh the column checksums.
		r.stats.ChecksumRepairs++
		stencil.ChecksumBRect(dst, 0, r.bandLo(), r.nx, r.bandHi(), newB)
		return
	}
	locs := checksum.Pair(am, bm, r.pol)
	for _, loc := range locs {
		checksum.CorrectRect(dst, 0, r.bandLo(), r.nx, r.bandHi(), loc,
			r.newA, newB, r.interpA, r.interpB)
		r.stats.CorrectedPoints++
	}
}
