package dist

import (
	"fmt"

	"stencilabft/internal/num"
)

// FaultClass places a transport failure on the recovery ladder: how hard
// the fault is determines how expensive the response must be. Transient
// wire faults (dropped, duplicated, reordered or corrupted frames, a
// broken connection) never surface as a Fault at all — the TCP backend
// heals them in place by reconnecting and replaying its resend window.
// Only faults the transport could not absorb reach this classification.
type FaultClass int

const (
	// ClassUnknown is an unclassified failure (geometry mismatches,
	// protocol violations, legacy error paths).
	ClassUnknown FaultClass = iota
	// ClassTimeout: the peer stayed silent past the configured IO timeout
	// — a stuck or stalled rank. The process is alive as far as anyone
	// knows; recovery treats it like a death because lockstep cannot
	// continue without it.
	ClassTimeout
	// ClassCorrupt: a payload failed validation after the wire-level CRC
	// had already passed (element-width mismatch, malformed control
	// payload) — corruption the reconnect path cannot heal.
	ClassCorrupt
	// ClassPermanent: the edge was declared dead — the connection dropped
	// and no reconnect arrived within the death deadline, or the peer
	// process demonstrably exited. The buddy-recovery ladder takes over.
	ClassPermanent
)

// String names the class for error messages and reports.
func (c FaultClass) String() string {
	switch c {
	case ClassTimeout:
		return "timeout"
	case ClassCorrupt:
		return "corrupt"
	case ClassPermanent:
		return "permanent"
	default:
		return "unknown"
	}
}

// Fault is the structured form of a transport failure: which hosted rank
// observed it, on which edge, against which peer, and at which barrier
// generation. Recv and Barrier panic with a *Fault under the TCP backend's
// MPI_ERRORS_ARE_FATAL semantics; Cluster.RunRecover catches it and hands
// it to the resilience layer, which needs exactly these fields to report
// the failure to the recovery coordinator (the peer is the suspect, the
// generation bounds the rollback, the class picks the rung of the
// recovery ladder).
type Fault struct {
	// Rank is the hosted rank whose Recv or Barrier failed.
	Rank int
	// Dir is the edge direction the failure surfaced on.
	Dir Dir
	// Peer is the geometric neighbour behind that edge — the dead-rank
	// suspect. -1 when the edge has no neighbour or the peer is unknown.
	Peer int
	// Gen is the barrier generation at the time of the failure: completed
	// lockstep iterations within the current Run under the classic
	// schedule, completed halo-exchange rounds (iterations / k) under
	// depth-k ghost zones.
	Gen int
	// Barrier reports whether the failure surfaced in the token exchange
	// rather than a halo receive.
	Barrier bool
	// Class is the failure's rung on the recovery ladder (see FaultClass).
	Class FaultClass
	// Err is the underlying cause (connection error, timeout, poisoned
	// edge).
	Err error
}

// Error renders the fault the way the historical wrapped errors did, so
// operators and tests keep seeing rank, direction and generation; a
// classified fault names its class so logs show which recovery rung fired.
func (f *Fault) Error() string {
	what := "tcp recv"
	if f.Barrier {
		what = "tcp barrier"
	}
	if f.Class != ClassUnknown {
		what += " (" + f.Class.String() + ")"
	}
	return fmt.Sprintf("dist: %s for rank %d from %v at generation %d: %v", what, f.Rank, f.Dir, f.Gen, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// Aborter is implemented by transports that can wake every blocked
// receiver with a cause — how one rank's fault unblocks its siblings so a
// tolerant run can unwind instead of hanging. Both built-in backends
// implement it.
type Aborter interface {
	// Abort poisons every pending and future Recv/Barrier with cause.
	// Idempotent; the first cause wins.
	Abort(cause error)
}

// CkptCarrier is implemented by transports that can carry buddy-checkpoint
// snapshots over the halo edges as a distinct frame kind, keeping them out
// of the halo FIFO sequencing. Both built-in backends implement it.
type CkptCarrier[T num.Float] interface {
	// SendCkpt posts rank from's packed snapshot (stamped with the
	// checkpoint iteration gen) toward its neighbour in direction d. Same
	// non-blocking contract and payload lifetime as Send.
	SendCkpt(from int, d Dir, gen int, data []T)
	// RecvCkpt returns the next snapshot the neighbour of rank to in
	// direction d sent, with its iteration stamp. Unlike Recv it returns
	// transport faults instead of panicking: checkpoint exchange is the
	// resilience layer's own traffic, and that layer wants errors.
	RecvCkpt(to int, d Dir) (data []T, gen int, err error)
}
