package dist

import (
	"fmt"

	"stencilabft/internal/num"
)

// Fault is the structured form of a transport failure: which hosted rank
// observed it, on which edge, against which peer, and at which barrier
// generation. Recv and Barrier panic with a *Fault under the TCP backend's
// MPI_ERRORS_ARE_FATAL semantics; Cluster.RunRecover catches it and hands
// it to the resilience layer, which needs exactly these fields to report
// the failure to the recovery coordinator (the peer is the suspect, the
// generation bounds the rollback).
type Fault struct {
	// Rank is the hosted rank whose Recv or Barrier failed.
	Rank int
	// Dir is the edge direction the failure surfaced on.
	Dir Dir
	// Peer is the geometric neighbour behind that edge — the dead-rank
	// suspect. -1 when the edge has no neighbour or the peer is unknown.
	Peer int
	// Gen is the barrier generation (completed lockstep iterations within
	// the current Run) at the time of the failure.
	Gen int
	// Barrier reports whether the failure surfaced in the token exchange
	// rather than a halo receive.
	Barrier bool
	// Err is the underlying cause (connection error, timeout, poisoned
	// edge).
	Err error
}

// Error renders the fault the way the historical wrapped errors did, so
// operators and tests keep seeing rank, direction and generation.
func (f *Fault) Error() string {
	what := "tcp recv"
	if f.Barrier {
		what = "tcp barrier"
	}
	return fmt.Sprintf("dist: %s for rank %d from %v at generation %d: %v", what, f.Rank, f.Dir, f.Gen, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// Aborter is implemented by transports that can wake every blocked
// receiver with a cause — how one rank's fault unblocks its siblings so a
// tolerant run can unwind instead of hanging. Both built-in backends
// implement it.
type Aborter interface {
	// Abort poisons every pending and future Recv/Barrier with cause.
	// Idempotent; the first cause wins.
	Abort(cause error)
}

// CkptCarrier is implemented by transports that can carry buddy-checkpoint
// snapshots over the halo edges as a distinct frame kind, keeping them out
// of the halo FIFO sequencing. Both built-in backends implement it.
type CkptCarrier[T num.Float] interface {
	// SendCkpt posts rank from's packed snapshot (stamped with the
	// checkpoint iteration gen) toward its neighbour in direction d. Same
	// non-blocking contract and payload lifetime as Send.
	SendCkpt(from int, d Dir, gen int, data []T)
	// RecvCkpt returns the next snapshot the neighbour of rank to in
	// direction d sent, with its iteration stamp. Unlike Recv it returns
	// transport faults instead of panicking: checkpoint exchange is the
	// resilience layer's own traffic, and that layer wants errors.
	RecvCkpt(to int, d Dir) (data []T, gen int, err error)
}
