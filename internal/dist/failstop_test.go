package dist

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestEdgeBoxPoisonConcurrentDeath pins the poison contract under a
// concurrent rank death (run it with -race): receivers blocked on halos,
// tokens and checkpoints all wake with the same first cause, and out of
// many racing poison calls — a dying connection reader racing repeated
// Close calls — exactly one reports having poisoned the box.
func TestEdgeBoxPoisonConcurrentDeath(t *testing.T) {
	box := newEdgeBox[float64](4)
	cause := errors.New("peer process died")

	const receivers = 4
	errs := make(chan error, 3*receivers)
	var wg sync.WaitGroup
	for i := 0; i < receivers; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := box.recvHalo(5 * time.Second)
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := box.recvToken(5 * time.Second)
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := box.recvCkpt(5 * time.Second)
			errs <- err
		}()
	}

	const poisoners = 8
	var first atomic.Int64
	var pg sync.WaitGroup
	for i := 0; i < poisoners; i++ {
		pg.Add(1)
		go func() {
			defer pg.Done()
			if box.poison(cause) {
				first.Add(1)
			}
			// Repeats — a second Close, a late connection-reader fault —
			// must stay safe and unreported.
			if box.poison(errors.New("late repeat cause")) {
				first.Add(1)
			}
		}()
	}
	pg.Wait()
	wg.Wait()
	close(errs)

	if got := first.Load(); got != 1 {
		t.Fatalf("%d poison calls reported first, want exactly 1", got)
	}
	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, cause) {
			t.Fatalf("receiver woke with %v, want the first cause", err)
		}
	}
	if n != 3*receivers {
		t.Fatalf("%d receivers woke, want %d", n, 3*receivers)
	}
}

// TestRunRecoverUnwindsOnAbort pins the tolerant run: when one rank's
// transport aborts mid-run (the in-process stand-in for a peer process
// death), RunRecover returns the cause after every rank goroutine has
// unwound, and the cluster's iteration counter stays at the last completed
// Run — the mid-iteration state is explicitly not advanced.
func TestRunRecoverUnwindsOnAbort(t *testing.T) {
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := testInit(32, 32)

	opt := strictOpts()
	var c *Cluster[float64]
	cause := errors.New("simulated rank death")
	opt.AfterStep = func(rank, iter int) {
		if rank == 3 && iter == 5 {
			c.Transport().(Aborter).Abort(cause)
		}
	}
	var err error
	c, err = NewClusterGrid(op, init, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3) // healthy prefix
	runErr := c.RunRecover(20)
	if runErr == nil {
		t.Fatal("RunRecover completed through an aborted transport")
	}
	if !errors.Is(runErr, cause) && !strings.Contains(runErr.Error(), cause.Error()) {
		t.Fatalf("RunRecover error %v does not carry the abort cause", runErr)
	}
	if c.Iter() != 3 {
		t.Fatalf("iteration counter advanced to %d through a faulted run, want 3", c.Iter())
	}
}

// TestClusterStateRoundTripBitIdentical pins the resilience snapshot
// contract end to end: packing every rank at iteration k, restoring the
// packs into a freshly built cluster, rebasing with SetIter and running the
// remainder must reproduce the uninterrupted run bit for bit — the property
// the whole rollback-recovery scheme rests on.
func TestClusterStateRoundTripBitIdentical(t *testing.T) {
	const nx, ny, k, total = 33, 29, 10, 24
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: bc, BCValue: 42}
		init := testInit(nx, ny)

		c, err := NewClusterGrid(op, init, 2, 2, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		c.Run(k)
		packs := make(map[int][]float64)
		for _, id := range c.LocalRanks() {
			buf := make([]float64, c.StateLen(id))
			c.PackState(id, buf)
			packs[id] = buf
		}
		c.Run(total - k)
		want := c.Gather()

		// A cold cluster restored from the packs must continue identically.
		r, err := NewClusterGrid(op, init, 2, 2, strictOpts())
		if err != nil {
			t.Fatal(err)
		}
		for id, buf := range packs {
			r.RestoreState(id, buf)
		}
		r.SetIter(k)
		r.Run(total - k)
		if r.Iter() != total {
			t.Fatalf("restored cluster at iteration %d, want %d", r.Iter(), total)
		}
		if diff := r.Gather().MaxAbsDiff(want); diff != 0 {
			t.Fatalf("%v: restored run deviates from uninterrupted run by %g", bc, diff)
		}
	}
}

// TestChanTransportCkptCarrier pins the in-process checkpoint channel: a
// snapshot sent toward a neighbour arrives intact with its iteration stamp,
// independent of the halo FIFO, and an aborted transport surfaces the cause
// as an error (never a panic) from RecvCkpt.
func TestChanTransportCkptCarrier(t *testing.T) {
	tr := NewChanTransport[float64](2, 1, false)
	snap := []float64{1.5, -2.25, 3.125}
	tr.SendCkpt(0, Right, 7, snap)
	data, gen, err := tr.RecvCkpt(1, Left)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || len(data) != 3 || data[0] != 1.5 || data[2] != 3.125 {
		t.Fatalf("checkpoint arrived as gen=%d data=%v", gen, data)
	}

	cause := errors.New("buddy died")
	tr.Abort(cause)
	if _, _, err := tr.RecvCkpt(0, Right); !errors.Is(err, cause) {
		t.Fatalf("RecvCkpt after abort = %v, want the abort cause", err)
	}
}
