package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stencilabft/internal/num"
	"stencilabft/internal/telemetry"
)

// TCPConfig configures a TCPTransport: the rank-grid geometry it spans, the
// subset of ranks this process hosts, and the rendezvous bootstrap that
// turns N independent processes into one wired cluster.
type TCPConfig struct {
	// RanksX, RanksY shape the Cartesian rank grid (columns × rows), the
	// same convention as Decomp; Ring closes both axes into a torus
	// (periodic global boundaries).
	RanksX, RanksY int
	Ring           bool

	// LocalRanks lists the ranks this process hosts (each rank of the grid
	// must be hosted by exactly one process across the cluster). Nil hosts
	// every rank in-process — halo traffic still crosses real loopback
	// sockets, which is what lets one process certify the backend.
	LocalRanks []int

	// Rendezvous is the host:port every process meets at to exchange data
	// listener addresses. The process hosting rank 0 binds and serves it;
	// the others dial it with retry until DialTimeout. It may be empty only
	// when LocalRanks covers the whole grid (nothing to exchange).
	Rendezvous string

	// RendezvousListener optionally supplies a pre-bound listener for the
	// rendezvous service instead of binding Rendezvous — how tests avoid
	// bind races on a picked port. Only the rank-0 host may set it.
	RendezvousListener net.Listener

	// Bind is the address the per-process halo data listener binds
	// (default "127.0.0.1:0"). Use a routable interface ("0.0.0.0:0") for
	// multi-host LAN clusters.
	Bind string

	// DialTimeout bounds the whole bootstrap: rendezvous dial-with-retry,
	// the wait for all ranks to register, and the per-neighbour data
	// connections. Default 30s.
	DialTimeout time.Duration

	// IOTimeout bounds each halo receive and each barrier-token wait once
	// the cluster is running, so a hung peer surfaces as a classified
	// timeout fault instead of a deadlock. Default 2m; negative disables
	// the bound.
	IOTimeout time.Duration

	// DeathDeadline bounds transient-fault healing: how long a broken edge
	// may spend reconnecting (sender side) or waiting for its peer to
	// reconnect (receiver side) before the edge is declared permanently
	// dead and the buddy-recovery ladder takes over. Default 15s; negative
	// disables healing entirely — the first disconnect is fatal, the
	// pre-healing behaviour.
	DeathDeadline time.Duration

	// ResendWindow is how many sealed data frames each outbound edge
	// retains for replay after a reconnect. A window too small to cover
	// the frames in flight when a connection died makes the edge
	// unhealable (it is then declared dead). Default 64 — an order of
	// magnitude above one barrier generation's traffic per edge.
	ResendWindow int

	// KeepalivePeriod is the idle interval after which an outbound edge
	// writes a heartbeat frame, so a silently severed connection is
	// discovered (and healed) between halo exchanges instead of at the
	// next one. Default DeathDeadline/3 when healing is enabled; negative
	// disables keepalives.
	KeepalivePeriod time.Duration

	// WrapConn, when non-nil, wraps every outbound data connection as it
	// is established — at bootstrap and on every reconnect. This is the
	// chaos-injection seam: a wrapper that drops, corrupts, duplicates,
	// reorders or kills frames exercises exactly the healing machinery a
	// flaky network would. from/to name the directed edge, d the direction
	// from sends toward.
	WrapConn func(conn net.Conn, from, to int, d Dir) net.Conn
}

// DefaultDeathDeadline is the TCPConfig.DeathDeadline a zero config gets:
// how long a broken edge may heal before its peer is classified dead.
// Exported because control-plane timeouts (the recovery coordinator's
// stall escalation) must outlast the detection cascade it implies.
const DefaultDeathDeadline = 15 * time.Second

const (
	defaultDialTimeout  = 30 * time.Second
	defaultIOTimeout    = 2 * time.Minute
	defaultResendWindow = 64
	dialRetryStep       = 20 * time.Millisecond
	reconnectBackoffMin = 10 * time.Millisecond
	reconnectBackoffMax = 640 * time.Millisecond
)

// withDefaults returns a copy of cfg with zero fields defaulted.
func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.IOTimeout < 0 {
		cfg.IOTimeout = 0 // 0 means "no bound" internally
	}
	if cfg.DeathDeadline == 0 {
		cfg.DeathDeadline = DefaultDeathDeadline
	}
	if cfg.DeathDeadline < 0 {
		cfg.DeathDeadline = 0 // 0 means "healing disabled" internally
	}
	if cfg.ResendWindow == 0 {
		cfg.ResendWindow = defaultResendWindow
	}
	if cfg.KeepalivePeriod == 0 && cfg.DeathDeadline > 0 {
		cfg.KeepalivePeriod = cfg.DeathDeadline / 3
	}
	if cfg.KeepalivePeriod < 0 {
		cfg.KeepalivePeriod = 0
	}
	return cfg
}

// edgeKey identifies a directed halo edge from one rank's point of view:
// for inbound boxes, {rank, d} holds what rank's d-neighbour sent; for
// outbound edges, {rank, d} carries what rank sends toward d.
type edgeKey struct {
	rank int
	dir  Dir
}

// tokenMsg is a decoded barrier token.
type tokenMsg struct {
	gen   uint32
	round uint16
}

// classedError carries a FaultClass alongside a poison cause, so Recv and
// Barrier can classify the *Fault they raise from the box's stored error.
type classedError struct {
	class FaultClass
	err   error
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

// classOf extracts the FaultClass a poison path attached to err.
func classOf(err error) FaultClass {
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	return ClassUnknown
}

// edgeBox is the inbound queue of one directed edge. A connection-reader
// goroutine fills it; the owning rank drains it from Recv and Barrier.
//
// Unlike the pre-healing design, the binding between the box and its
// connection is not permanent: when a connection dies the box enters a
// grace period (the death deadline) during which a reconnecting peer may
// rebind it with a fresh hello and resume the sequence exactly where the
// old stream left off. Only deadline expiry — or a fault reconnection
// cannot heal — poisons the box: done closes and err holds the cause, so
// a blocked receiver wakes with a real, classified error instead of
// hanging.
type edgeBox[T num.Float] struct {
	halo chan []T
	tok  chan tokenMsg
	ck   chan ckptParcel[T] // buddy snapshots; at most one in flight per period

	// Halo and checkpoint traffic received on this edge (frames and
	// payload bytes), counted by the connection reader as frames land in
	// the box; dupFrames counts replayed data frames dropped by the
	// sequence dedup, crcErrors frames rejected by the wire checksum.
	framesRecv, bytesRecv atomic.Int64
	dupFrames, crcErrors  atomic.Int64

	mu         sync.Mutex
	err        error
	done       chan struct{}
	nextSeq    uint32        // next data-frame sequence expected; starts at 1
	reader     chan struct{} // closed when the currently bound reader exits; nil if none
	readerConn net.Conn      // the currently bound connection
	bindCount  int           // how many connections have ever bound this edge
	deathT     *time.Timer   // pending death-deadline poison after a disconnect
}

func newEdgeBox[T num.Float](tokCap int) *edgeBox[T] {
	return &edgeBox[T]{
		halo:    make(chan []T, 4),
		tok:     make(chan tokenMsg, tokCap),
		ck:      make(chan ckptParcel[T], 2),
		done:    make(chan struct{}),
		nextSeq: 1,
	}
}

// poison records the first error and wakes every blocked receiver. It
// reports whether this call was the one that poisoned the box, so fault
// paths can count poison events without double-counting repeats.
func (b *edgeBox[T]) poison(err error) bool {
	b.mu.Lock()
	first := b.err == nil
	if first {
		b.err = err
		close(b.done)
	}
	b.mu.Unlock()
	return first
}

func (b *edgeBox[T]) cause() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// admitSeq applies the per-edge sequence discipline to one inbound data
// frame: in-order frames advance the expectation, already-seen frames are
// duplicates from a replay (dropped silently — dedup is what makes the
// resend window idempotent), and a gap means frames were lost on a live
// stream — unhealable in place, so the reader must force the sender to
// reconnect and replay by dropping the connection. seq 0 is unsequenced
// (hand-crafted frames in tests) and always admitted.
func (b *edgeBox[T]) admitSeq(seq uint32) (accept bool, gapErr error) {
	if seq == 0 {
		return true, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case seq == b.nextSeq:
		b.nextSeq++
		return true, nil
	case seq < b.nextSeq:
		b.dupFrames.Add(1)
		return false, nil
	default:
		return false, fmt.Errorf("dist: sequence gap on the edge: got frame %d, expected %d (frames lost on the wire)", seq, b.nextSeq)
	}
}

// heartbeatGap checks a keepalive's sequence claim against the edge's
// expectation: the frame's seq is the sender's last sealed sequence
// number, so seq >= nextSeq means frames were sealed that never arrived —
// a silent loss on an otherwise idle edge. seq 0 is an unsequenced probe
// (nothing sealed yet) and always passes.
func (b *edgeBox[T]) heartbeatGap(seq uint32) error {
	if seq == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq >= b.nextSeq {
		return fmt.Errorf("dist: sequence gap on the edge: keepalive claims frame %d was sent, expected %d next (frames lost on the wire)", seq, b.nextSeq)
	}
	return nil
}

// recvHalo returns the next halo strip, the poisoning error, or a timeout.
func (b *edgeBox[T]) recvHalo(timeout time.Duration) ([]T, error) {
	select {
	case d := <-b.halo:
		return d, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case d := <-b.halo:
		return d, nil
	case <-b.done:
		// Drain anything enqueued before the connection died.
		select {
		case d := <-b.halo:
			return d, nil
		default:
		}
		return nil, b.cause()
	case <-expire:
		return nil, &classedError{class: ClassTimeout,
			err: fmt.Errorf("timed out after %v waiting for the halo strip", timeout)}
	}
}

// recvCkpt returns the next buddy snapshot, the poisoning error, or a
// timeout.
func (b *edgeBox[T]) recvCkpt(timeout time.Duration) (ckptParcel[T], error) {
	select {
	case p := <-b.ck:
		return p, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case p := <-b.ck:
		return p, nil
	case <-b.done:
		select {
		case p := <-b.ck:
			return p, nil
		default:
		}
		return ckptParcel[T]{}, b.cause()
	case <-expire:
		return ckptParcel[T]{}, &classedError{class: ClassTimeout,
			err: fmt.Errorf("timed out after %v waiting for the buddy checkpoint", timeout)}
	}
}

// recvToken returns the next barrier token, the poisoning error, or a
// timeout.
func (b *edgeBox[T]) recvToken(timeout time.Duration) (tokenMsg, error) {
	select {
	case m := <-b.tok:
		return m, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case m := <-b.tok:
		return m, nil
	case <-b.done:
		select {
		case m := <-b.tok:
			return m, nil
		default:
		}
		return tokenMsg{}, b.cause()
	case <-expire:
		return tokenMsg{}, &classedError{class: ClassTimeout,
			err: fmt.Errorf("timed out after %v waiting for the barrier token", timeout)}
	}
}

// outEdge is the outbound half of one directed edge: a persistent
// connection fed by a writer goroutine, so Send never blocks on the
// socket. The writer owns the edge's sequence counter and resend window —
// every data frame is stamped, sealed and retained before it hits the
// wire, so after a reconnect the writer can replay exactly the frames the
// receiver names in its hello acknowledgement.
type outEdge struct {
	ch       chan []byte
	conn     net.Conn
	addr     string
	from, to int
	dir      Dir
	hello    []byte // sealed hello frame, re-sent on every reconnect

	// Writer-goroutine-owned reliability state (no locks needed).
	seq     uint32   // last data sequence assigned
	flushed uint32   // last sequence successfully written to the current conn
	ring    [][]byte // sealed frames (seq-len(ring)+1 .. seq], oldest first
	dead    bool     // edge declared unhealable; frames are dropped

	// free recycles sealed frames evicted from the resend window back to
	// Send: once a frame falls out of the window it can never be replayed
	// again, so its buffer is fenced off from the writer goroutine and a
	// steady-state halo cadence reuses wire buffers instead of allocating
	// one per frame. Push and pop are both non-blocking — a full list drops
	// the buffer (GC takes it), an empty list makes Send allocate.
	free chan []byte

	// framesSent/bytesSent count halo traffic enqueued on the edge (payload
	// bytes, headers and tokens excluded, so counts compare across
	// backends); queueHW is the deepest writer-queue backlog observed at
	// any enqueue — tokens included, since backlog is a property of the
	// socket, not of what is queued. A non-trivial queueHW means the halo
	// cadence outran this socket. reconnects counts connections rebuilt
	// after an I/O fault, resends data frames replayed from the window.
	framesSent, bytesSent, queueHW atomic.Int64
	reconnects, resends            atomic.Int64
}

// noteDepth records the writer queue's depth after an enqueue, keeping the
// high-water mark.
func (oe *outEdge) noteDepth() {
	d := int64(len(oe.ch))
	for {
		cur := oe.queueHW.Load()
		if d <= cur || oe.queueHW.CompareAndSwap(cur, d) {
			return
		}
	}
}

// TCPTransport is the socket backend of the Transport seam: the same
// 4-direction halo contract and barrier semantics as ChanTransport, carried
// over per-neighbour persistent TCP connections so the ranks can be real OS
// processes on one host (loopback) or several (LAN). Construction is a
// rendezvous bootstrap — every process publishes its data listener address
// at cfg.Rendezvous, receives the full address book, and dials one
// persistent connection per outbound directed edge.
//
// The iteration barrier is a generation-tagged token exchange with the
// neighbours: each round every hosted rank posts a token on all its
// outbound edges, then collects one on all its inbound edges, and the
// number of rounds equals the rank graph's diameter — by induction a rank
// that completes round r knows every rank within distance r has entered the
// barrier, so completing all rounds is the global barrier the lockstep
// schedule needs. No coordinator, no extra connections: the tokens ride the
// halo edges.
//
// Transient wire faults are healed in place, invisibly to the ranks: every
// data frame carries a CRC-32C and a per-edge sequence number; a receiver
// that sees corruption, loss or reordering drops the connection, and the
// sender rebuilds it with bounded exponential backoff, re-handshakes
// (hello → helloAck naming the next expected sequence) and replays its
// resend window — exactly-once delivery restored, no recovery epoch,
// bit-identical results. Only a fault that outlives the death deadline
// becomes fatal: Recv and Barrier then panic with a classified *Fault
// naming the rank, direction, generation and class —
// MPI_ERRORS_ARE_FATAL semantics, which is what a bulk-synchronous stencil
// wants since no iteration can complete without its neighbours.
type TCPTransport[T num.Float] struct {
	geo       Decomp
	ring      bool
	local     []int
	rounds    int
	ioWait    atomic.Int64  // recv/write deadline in ns; 0 = unbounded
	deadline  time.Duration // death deadline; 0 = healing disabled
	keepalive time.Duration
	window    int
	wrapConn  func(conn net.Conn, from, to int, d Dir) net.Conn

	ln    net.Listener
	boxes map[edgeKey]*edgeBox[T]
	outs  map[edgeKey]*outEdge

	// Local-party cyclic barrier: the last hosted rank to arrive runs the
	// cross-process token exchange on behalf of all hosted ranks, then
	// releases the generation.
	barMu    sync.Mutex
	barCond  *sync.Cond
	barN     int
	barCount int
	barGen   int
	barErr   error // first barrier fault or Abort cause; sticky, fails every later Barrier

	dialRetries atomic.Int64 // bootstrap connect attempts beyond each first
	poisoned    atomic.Int64 // edges killed by I/O faults (Close's deliberate poisons excluded)

	gen    atomic.Uint32 // completed barrier generations, for error reports
	quit   chan struct{}
	flushq chan struct{} // closed first on Close: writers drain their queues
	closed atomic.Bool
	wg     sync.WaitGroup
	wgW    sync.WaitGroup // writer goroutines, joined before connections close

	connMu sync.Mutex
	conns  []net.Conn
}

// NewTCPTransport bootstraps the socket backend for cfg's rank grid and
// wires every directed halo edge of the hosted ranks. It returns once all
// rendezvous registration and per-neighbour connections are established, so
// a successful return means the hosted ranks can run.
func NewTCPTransport[T num.Float](cfg TCPConfig) (*TCPTransport[T], error) {
	cfg = cfg.withDefaults()
	geo := Decomp{RanksX: cfg.RanksX, RanksY: cfg.RanksY}
	n := geo.NumRanks()
	if cfg.RanksX < 1 || cfg.RanksY < 1 {
		return nil, fmt.Errorf("dist: tcp transport needs a rank grid with both factors >= 1 (got %dx%d)", cfg.RanksY, cfg.RanksX)
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("dist: tcp transport rank ids are 16-bit on the wire; %d ranks exceed that", n)
	}
	local, err := resolveLocalRanks(cfg.LocalRanks, n)
	if err != nil {
		return nil, err
	}
	allLocal := len(local) == n
	if cfg.Rendezvous == "" && cfg.RendezvousListener == nil && !allLocal {
		return nil, fmt.Errorf("dist: tcp transport hosting %d of %d ranks needs a rendezvous address to find its peers", len(local), n)
	}

	t := &TCPTransport[T]{
		geo:       geo,
		ring:      cfg.Ring,
		local:     local,
		rounds:    geo.diameter(cfg.Ring),
		deadline:  cfg.DeathDeadline,
		keepalive: cfg.KeepalivePeriod,
		window:    cfg.ResendWindow,
		wrapConn:  cfg.WrapConn,
		barN:      len(local),
		boxes:     make(map[edgeKey]*edgeBox[T]),
		outs:      make(map[edgeKey]*outEdge),
		quit:      make(chan struct{}),
		flushq:    make(chan struct{}),
	}
	t.barCond = sync.NewCond(&t.barMu)
	t.ioWait.Store(int64(cfg.IOTimeout))

	ln, err := net.Listen("tcp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("dist: tcp transport data listener: %w", err)
	}
	t.ln = ln

	// Inbound boxes exist before any connection can arrive, so a frame for
	// an edge the geometry does not declare is a protocol error, never a
	// missing map entry. Token capacity covers the rounds of two
	// generations — a neighbour can run at most one generation ahead.
	tokCap := 2*t.rounds + 2
	for _, id := range local {
		for d := Dir(0); d < NumDirs; d++ {
			if _, ok := geo.Neighbor(id, d, cfg.Ring); ok {
				t.boxes[edgeKey{id, d}] = newEdgeBox[T](tokCap)
			}
		}
	}

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.acceptLoop()
	}()

	book, err := t.exchangeAddresses(cfg)
	if err != nil {
		t.Close()
		return nil, err
	}
	if err := t.dialEdges(cfg, book); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// Addr returns the data listener's address — where neighbours dial this
// process's hosted ranks.
func (t *TCPTransport[T]) Addr() string { return t.ln.Addr().String() }

// LocalRanks returns the ranks this transport hosts, sorted.
func (t *TCPTransport[T]) LocalRanks() []int { return append([]int(nil), t.local...) }

// exchangeAddresses produces the rank → data-listener address book. With
// every rank local the book is trivial; otherwise the rank-0 host serves
// the rendezvous point and everyone else registers with it.
func (t *TCPTransport[T]) exchangeAddresses(cfg TCPConfig) (map[int]string, error) {
	self := t.Addr()
	if cfg.Rendezvous == "" && cfg.RendezvousListener == nil {
		book := make(map[int]string, t.geo.NumRanks())
		for i := 0; i < t.geo.NumRanks(); i++ {
			book[i] = self
		}
		return book, nil
	}
	if t.local[0] == 0 {
		ln := cfg.RendezvousListener
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", cfg.Rendezvous)
			if err != nil {
				return nil, fmt.Errorf("dist: rendezvous listener %s: %w", cfg.Rendezvous, err)
			}
		}
		return serveRendezvous(ln, t.geo.NumRanks(), t.local, self, cfg.DialTimeout)
	}
	return registerAtRendezvous(cfg.Rendezvous, t.local, self, cfg.DialTimeout, &t.dialRetries)
}

// serveRendezvous runs the bootstrap service on the rank-0 host: collect a
// register frame from every peer process until all n ranks are accounted
// for, then publish the complete address book to every registered
// connection. The listener is closed before returning — rendezvous is a
// bootstrap, not a runtime dependency.
func serveRendezvous(ln net.Listener, n int, selfRanks []int, selfAddr string, deadline time.Duration) (map[int]string, error) {
	defer ln.Close()
	book := make(map[int]string, n)
	for _, id := range selfRanks {
		book[id] = selfAddr
	}
	expire := time.Now().Add(deadline)
	var peers []net.Conn
	defer func() {
		for _, c := range peers {
			c.Close()
		}
	}()
	// Bound the whole collection by the deadline: a TCP listener takes it
	// directly; any other (wrapped) listener gets a watchdog that closes
	// it at expiry, failing Accept with the same x-of-n diagnosis.
	tl, hasDeadline := ln.(*net.TCPListener)
	if !hasDeadline {
		watchdog := time.AfterFunc(time.Until(expire), func() { ln.Close() })
		defer watchdog.Stop()
	}
	for len(book) < n {
		if hasDeadline {
			tl.SetDeadline(expire)
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: rendezvous: %d of %d ranks registered before the %v deadline: %w", len(book), n, deadline, err)
		}
		conn.SetDeadline(expire)
		f, err := readFrame(conn)
		if err != nil || f.kind != frameRegister {
			// Not a peer: a port scanner, health probe, or stray connect
			// on the (possibly well-known) rendezvous port. Drop it and
			// keep accepting — only registered peers can fail the
			// bootstrap.
			conn.Close()
			continue
		}
		var reg registerMsg
		if err := json.Unmarshal(f.payload, &reg); err != nil {
			conn.Close()
			continue
		}
		if err := admitRegistration(book, reg, n); err != nil {
			nack, _ := json.Marshal(nackMsg{Error: err.Error()})
			conn.Write(appendFrame(nil, frame{kind: frameNack, payload: nack}))
			conn.Close()
			return nil, fmt.Errorf("dist: rendezvous: %w", err)
		}
		for _, id := range reg.Ranks {
			book[id] = reg.Addr
		}
		peers = append(peers, conn)
	}
	payload, err := json.Marshal(bookMsg{Addrs: book})
	if err != nil {
		return nil, err
	}
	buf := appendFrame(nil, frame{kind: frameBook, payload: payload})
	for _, c := range peers {
		if _, err := c.Write(buf); err != nil {
			return nil, fmt.Errorf("dist: rendezvous: publishing the address book: %w", err)
		}
	}
	return book, nil
}

// admitRegistration validates one register message against the book so far.
func admitRegistration(book map[int]string, reg registerMsg, n int) error {
	if reg.Addr == "" || len(reg.Ranks) == 0 {
		return fmt.Errorf("registration without ranks or address")
	}
	for _, id := range reg.Ranks {
		if id < 0 || id >= n {
			return fmt.Errorf("registered rank %d outside the %d-rank grid", id, n)
		}
		if prev, dup := book[id]; dup {
			return fmt.Errorf("rank %d registered twice (%s and %s)", id, prev, reg.Addr)
		}
	}
	return nil
}

// registerAtRendezvous dials the rendezvous service (with retry, since the
// rank-0 host may not be up yet), registers this process's ranks and
// listener address, and blocks until the full address book arrives.
func registerAtRendezvous(addr string, ranks []int, selfAddr string, deadline time.Duration, retries *atomic.Int64) (map[int]string, error) {
	conn, err := dialRetry(addr, deadline, retries)
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous at %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(deadline))
	payload, err := json.Marshal(registerMsg{Ranks: ranks, Addr: selfAddr})
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameRegister, payload: payload})); err != nil {
		return nil, fmt.Errorf("dist: rendezvous registration: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous: waiting for the address book: %w", err)
	}
	switch f.kind {
	case frameBook:
		var book bookMsg
		if err := json.Unmarshal(f.payload, &book); err != nil {
			return nil, fmt.Errorf("dist: rendezvous address book payload: %w", err)
		}
		return book.Addrs, nil
	case frameNack:
		var nack nackMsg
		json.Unmarshal(f.payload, &nack)
		return nil, fmt.Errorf("dist: rendezvous rejected registration: %s", nack.Error)
	default:
		return nil, fmt.Errorf("dist: rendezvous answered with frame kind %d, want the address book", f.kind)
	}
}

// registerMsg and bookMsg are the rendezvous bootstrap payloads (JSON: the
// bootstrap runs once per process, so self-describing beats compact).
type registerMsg struct {
	Ranks []int  `json:"ranks"`
	Addr  string `json:"addr"`
}

type bookMsg struct {
	Addrs map[int]string `json:"addrs"`
}

type nackMsg struct {
	Error string `json:"error"`
}

// dialRetry dials addr until it succeeds or the deadline passes — the
// connect-retry that lets processes start in any order. Every failed
// attempt is tallied into retries (when non-nil): a non-zero count after a
// successful bootstrap measures how long this process waited for its peers.
func dialRetry(addr string, deadline time.Duration, retries *atomic.Int64) (net.Conn, error) {
	expire := time.Now().Add(deadline)
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(expire)
		if remain <= 0 {
			return nil, fmt.Errorf("gave up connecting to %s after %v (%d attempts): %w", addr, deadline, attempt, lastErr)
		}
		step := dialRetryStep
		if step > remain {
			step = remain
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if retries != nil {
			retries.Add(1)
		}
		time.Sleep(step)
	}
}

// wrap applies the chaos-injection hook (when configured) to a freshly
// established outbound connection.
func (t *TCPTransport[T]) wrap(conn net.Conn, oe *outEdge) net.Conn {
	if t.wrapConn == nil {
		return conn
	}
	return t.wrapConn(conn, oe.from, oe.to, oe.dir)
}

// handshake announces the edge on a fresh connection and waits for the
// receiver's acknowledgement naming the next sequence it expects — 1 on a
// first binding, the resume point after a reconnect.
func (t *TCPTransport[T]) handshake(conn net.Conn, oe *outEdge, deadline time.Duration) (uint32, error) {
	if deadline > 0 {
		conn.SetDeadline(time.Now().Add(deadline))
		defer conn.SetDeadline(time.Time{})
	}
	if _, err := conn.Write(oe.hello); err != nil {
		return 0, fmt.Errorf("hello: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("waiting for hello ack: %w", err)
	}
	if f.kind != frameHelloAck {
		return 0, fmt.Errorf("peer answered the hello with frame kind %d, want an ack", f.kind)
	}
	if f.seq == 0 {
		return 0, fmt.Errorf("peer acked with sequence 0")
	}
	return f.seq, nil
}

// dialEdges opens one persistent connection per outbound directed edge of
// the hosted ranks, performs the hello/ack handshake, and starts its
// writer goroutine.
func (t *TCPTransport[T]) dialEdges(cfg TCPConfig, book map[int]string) error {
	for _, id := range t.local {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := t.geo.Neighbor(id, d, t.ring)
			if !ok {
				continue
			}
			addr, ok := book[nb]
			if !ok {
				return fmt.Errorf("dist: address book has no entry for rank %d (neighbour %v of rank %d)", nb, d, id)
			}
			oe := &outEdge{
				ch:    make(chan []byte, 64),
				free:  make(chan []byte, 64),
				addr:  addr,
				from:  id,
				to:    nb,
				dir:   d,
				hello: appendFrame(nil, frame{kind: frameHello, from: uint16(id), to: uint16(nb), dir: byte(d)}),
			}
			conn, err := dialRetry(addr, cfg.DialTimeout, &t.dialRetries)
			if err != nil {
				return fmt.Errorf("dist: halo edge rank %d --%v--> rank %d: %w", id, d, nb, err)
			}
			conn = t.wrap(conn, oe)
			ack, err := t.handshake(conn, oe, cfg.DialTimeout)
			if err != nil {
				conn.Close()
				return fmt.Errorf("dist: halo edge rank %d --%v--> rank %d: %w", id, d, nb, err)
			}
			oe.conn = conn
			oe.seq = ack - 1
			oe.flushed = ack - 1
			t.outs[edgeKey{id, d}] = oe
			t.track(conn)
			t.wgW.Add(1)
			go func() {
				defer t.wgW.Done()
				t.writeLoop(oe)
			}()
		}
	}
	return nil
}

// writeLoop drains one outbound edge's frame queue onto its socket. The
// loop owns the edge's sequence counter and resend window: every data
// frame is stamped and retained before the write, a write error triggers
// reconnect-with-backoff and replay, and only a reconnect that cannot
// complete within the death deadline (or a replay the window no longer
// covers) declares the edge dead — after which frames are dropped and the
// peer's receive side classifies the failure. When the queue idles, a
// keepalive heartbeat probes the connection so silent severance is healed
// before the next halo exchange needs the edge. On Close the loop first
// flushes everything already queued — the last iteration's barrier tokens
// must reach the peers that are still completing that barrier — and only
// then exits, letting Close take the connections down.
func (t *TCPTransport[T]) writeLoop(oe *outEdge) {
	var hb <-chan time.Time
	if t.keepalive > 0 {
		ticker := time.NewTicker(t.keepalive)
		defer ticker.Stop()
		hb = ticker.C
	}
	for {
		select {
		case buf := <-oe.ch:
			t.dispatch(oe, buf, false)
		case <-hb:
			t.heartbeat(oe)
		case <-t.flushq:
			for {
				select {
				case buf := <-oe.ch:
					t.dispatch(oe, buf, true)
				default:
					return
				}
			}
		}
	}
}

// dispatch stamps one data frame with the edge's next sequence number,
// seals it (length + CRC), retains it in the resend window, and flushes.
func (t *TCPTransport[T]) dispatch(oe *outEdge, buf []byte, closing bool) {
	oe.seq++
	sealFrame(buf, oe.seq)
	oe.ring = append(oe.ring, buf)
	if len(oe.ring) > t.window {
		evict := len(oe.ring) - t.window
		for i := 0; i < evict; i++ {
			if oe.flushed >= oe.seq-uint32(len(oe.ring)-1-i) {
				// Written and past the window: safe to hand back to Send.
				select {
				case oe.free <- oe.ring[i]:
				default:
				}
			}
		}
		n := copy(oe.ring, oe.ring[evict:])
		for i := n; i < len(oe.ring); i++ {
			oe.ring[i] = nil
		}
		oe.ring = oe.ring[:n]
	}
	t.flush(oe, closing)
}

// flush writes every retained frame newer than the flushed watermark to
// the connection, reconnecting (and rewinding the watermark to the
// receiver's ack) on write errors. During Close's final drain reconnects
// ioDur is the current I/O deadline; 0 means unbounded waits.
func (t *TCPTransport[T]) ioDur() time.Duration { return time.Duration(t.ioWait.Load()) }

// SetRecvTimeout adjusts the I/O deadline after construction — the same
// knob as TCPConfig.IOTimeout, but settable late so harnesses can bound
// waits uniformly across backends. Non-positive means wait forever.
func (t *TCPTransport[T]) SetRecvTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.ioWait.Store(int64(d))
}

// are skipped — the peers are going away too.
func (t *TCPTransport[T]) flush(oe *outEdge, closing bool) {
	for oe.flushed < oe.seq && !oe.dead {
		idx := len(oe.ring) - int(oe.seq-oe.flushed)
		if idx < 0 {
			// Frames past the window were never written — the receiver can
			// no longer be made whole.
			oe.dead = true
			return
		}
		buf := oe.ring[idx]
		if d := t.ioDur(); d > 0 {
			oe.conn.SetWriteDeadline(time.Now().Add(d))
		}
		if _, err := oe.conn.Write(buf); err == nil {
			oe.flushed++
			continue
		}
		if closing || !t.reconnect(oe) {
			oe.dead = true
			return
		}
	}
}

// heartbeat writes an unsequenced keepalive frame on an idle edge; a
// failure is the early discovery of a severed connection, healed by the
// same reconnect-and-replay path a halo write would take.
func (t *TCPTransport[T]) heartbeat(oe *outEdge) {
	if oe.dead {
		return
	}
	if oe.flushed < oe.seq {
		// Data is pending; flushing it probes the connection anyway.
		t.flush(oe, false)
		return
	}
	// The keepalive carries the last sealed sequence number so the receiver
	// can detect a swallowed frame even when no data follows it.
	buf := appendFrame(nil, frame{kind: frameHeartbeat, from: uint16(oe.from), to: uint16(oe.to), dir: byte(oe.dir), seq: oe.seq})
	if d := t.ioDur(); d > 0 {
		oe.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := oe.conn.Write(buf); err != nil {
		if !t.reconnect(oe) {
			oe.dead = true
			return
		}
		t.flush(oe, false)
	}
}

// reconnect rebuilds a broken edge connection with bounded exponential
// backoff inside the death deadline: dial, re-wrap (the chaos hook applies
// to reconnects too), re-handshake, and rewind the flush watermark to the
// receiver's acknowledged resume point so flush replays what was lost.
// Returns false when the edge cannot be healed — deadline exhausted,
// transport closing, or the receiver needs frames the window no longer
// retains.
func (t *TCPTransport[T]) reconnect(oe *outEdge) bool {
	if t.deadline <= 0 {
		return false
	}
	oe.conn.Close()
	expire := time.Now().Add(t.deadline)
	backoff := reconnectBackoffMin
	for {
		if t.closed.Load() {
			return false
		}
		remain := time.Until(expire)
		if remain <= 0 {
			return false
		}
		if conn, err := net.DialTimeout("tcp", oe.addr, remain); err == nil {
			conn = t.wrap(conn, oe)
			hsDeadline := t.deadline
			if remain < hsDeadline {
				hsDeadline = remain
			}
			ack, herr := t.handshake(conn, oe, hsDeadline)
			if herr == nil {
				ringBase := oe.seq - uint32(len(oe.ring)) + 1
				if len(oe.ring) > 0 && ack < ringBase {
					// The receiver lost frames older than the resend window
					// retains; the edge cannot be made whole.
					conn.Close()
					return false
				}
				if ack > oe.seq+1 {
					ack = oe.seq + 1
				}
				if ack-1 < oe.flushed {
					oe.resends.Add(int64(oe.flushed - (ack - 1)))
				}
				oe.flushed = ack - 1
				oe.conn = conn
				t.track(conn)
				oe.reconnects.Add(1)
				return true
			}
			conn.Close()
		}
		select {
		case <-t.quit:
			return false
		case <-time.After(backoff):
		}
		if backoff < reconnectBackoffMax {
			backoff *= 2
		}
	}
}

// acceptLoop admits inbound edge connections until the listener closes.
func (t *TCPTransport[T]) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.track(conn)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
		}()
	}
}

// bindEdge claims box for conn, superseding (and waiting out) any reader
// still bound to a previous connection so frames from two streams can
// never interleave into the FIFO. It returns the sequence to acknowledge
// and a release func the reader must run on exit, or ok == false when the
// edge cannot be (re)bound — poisoned, or the transport is closing.
func (t *TCPTransport[T]) bindEdge(box *edgeBox[T], conn net.Conn) (ack uint32, release func(), ok bool) {
	for {
		box.mu.Lock()
		if box.err != nil {
			box.mu.Unlock()
			return 0, nil, false
		}
		prev, prevConn := box.reader, box.readerConn
		if prev == nil {
			mine := make(chan struct{})
			box.reader = mine
			box.readerConn = conn
			box.bindCount++
			if box.deathT != nil {
				box.deathT.Stop()
				box.deathT = nil
			}
			ack = box.nextSeq
			box.mu.Unlock()
			release = func() {
				box.mu.Lock()
				if box.reader == mine {
					box.reader = nil
					box.readerConn = nil
				}
				box.mu.Unlock()
				close(mine)
			}
			return ack, release, true
		}
		box.mu.Unlock()
		// A previous connection still holds the edge: it is dead or dying
		// (the peer would not reconnect otherwise). Force its reader out
		// and wait for it, so delivery stays single-streamed.
		prevConn.Close()
		select {
		case <-prev:
		case <-t.quit:
			return 0, nil, false
		}
	}
}

// edgeDown handles a bound connection's death: with healing enabled the
// box enters a grace period — a reconnecting peer may rebind it — and
// only the death deadline expiring poisons it as a permanent, classified
// fault; with healing disabled (or cause already classified as beyond
// repair) the box is poisoned immediately.
func (t *TCPTransport[T]) edgeDown(box *edgeBox[T], from int, cause error) {
	if t.closed.Load() {
		return
	}
	if t.deadline <= 0 {
		t.poisonEdge(box, &classedError{class: ClassPermanent,
			err: fmt.Errorf("dist: halo connection from rank %d: %w", from, cause)})
		return
	}
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.err != nil || box.deathT != nil {
		return
	}
	box.deathT = time.AfterFunc(t.deadline, func() {
		t.poisonEdge(box, &classedError{class: ClassPermanent,
			err: fmt.Errorf("dist: rank %d down: connection lost and no reconnect within the %v death deadline: %w", from, t.deadline, cause)})
	})
}

// serveConn handles one inbound edge connection: validate the hello, bind
// (or rebind) the connection to its inbound box, acknowledge with the next
// expected sequence, then pump halo strips, barrier tokens and checkpoints
// into the box until the connection dies — at which point the box enters
// its reconnect grace period (or is poisoned, when healing is off).
func (t *TCPTransport[T]) serveConn(conn net.Conn) {
	hello, err := readFrame(conn)
	if err != nil || hello.kind != frameHello {
		// Unidentifiable peer: nothing to poison. Drop the connection.
		conn.Close()
		return
	}
	from, to, d := int(hello.from), int(hello.to), Dir(hello.dir)
	if d >= NumDirs {
		conn.Close()
		return
	}
	// A frame sent toward d arrives from direction d.Opposite().
	box, ok := t.boxes[edgeKey{to, d.Opposite()}]
	if !ok {
		conn.Close()
		return
	}
	if nb, ok := t.geo.Neighbor(to, d.Opposite(), t.ring); !ok || nb != from {
		// The claim contradicts this process's geometry. On a never-bound
		// edge the real peer is misconfigured (e.g. a different -rankgrid):
		// fail the edge loudly. On a live edge it is a stray foreign
		// connection: drop it without disturbing the healthy stream.
		box.mu.Lock()
		fresh := box.bindCount == 0
		box.mu.Unlock()
		if fresh {
			t.poisonEdge(box, fmt.Errorf("dist: hello from rank %d claiming to be rank %d's %v neighbour, geometry says rank %d", from, to, d.Opposite(), nb))
		}
		conn.Close()
		return
	}
	ack, release, ok := t.bindEdge(box, conn)
	if !ok {
		conn.Close()
		return
	}
	defer release()
	if d := t.ioDur(); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameHelloAck, from: uint16(to), to: uint16(from), dir: byte(d), seq: ack})); err != nil {
		t.edgeDown(box, from, fmt.Errorf("hello ack: %w", err))
		conn.Close()
		return
	}
	conn.SetWriteDeadline(time.Time{})
	for {
		f, err := readFrame(conn)
		if err != nil {
			if isCorruptFrame(err) {
				// A corrupted frame: reject the stream and let the sender
				// reconnect and replay — the CRC turned silent corruption
				// into a healable transient.
				box.crcErrors.Add(1)
			}
			t.edgeDown(box, from, fmt.Errorf("dist: halo connection from rank %d: %w", from, err))
			conn.Close()
			return
		}
		if f.kind == frameHeartbeat {
			// A keepalive carries the sender's last sealed sequence number, so
			// an idle edge still discovers a swallowed frame: if the sender
			// claims to have sent frames we never admitted, that is a gap with
			// no follow-up data frame to expose it.
			if gapErr := box.heartbeatGap(f.seq); gapErr != nil {
				t.edgeDown(box, from, fmt.Errorf("dist: halo connection from rank %d: %w", from, gapErr))
				conn.Close()
				return
			}
			continue
		}
		accept, gapErr := box.admitSeq(f.seq)
		if gapErr != nil {
			// Frames were lost on a live stream (a chaos drop, a flaky
			// middlebox). Drop the connection: the sender reconnects,
			// learns our resume point from the ack, and replays.
			t.edgeDown(box, from, fmt.Errorf("dist: halo connection from rank %d: %w", from, gapErr))
			conn.Close()
			return
		}
		if !accept {
			continue // duplicate from a replay; already delivered
		}
		switch f.kind {
		case frameHalo:
			data, err := decodeElems[T](f.elem, f.payload)
			if err != nil {
				t.poisonEdge(box, &classedError{class: ClassCorrupt,
					err: fmt.Errorf("dist: halo frame from rank %d: %w", from, err)})
				conn.Close()
				return
			}
			box.framesRecv.Add(1)
			box.bytesRecv.Add(int64(len(f.payload)))
			select {
			case box.halo <- data:
			case <-t.quit:
				conn.Close()
				return
			}
		case frameToken:
			select {
			case box.tok <- tokenMsg{gen: f.gen, round: f.round}:
			case <-t.quit:
				conn.Close()
				return
			}
		case frameCkpt:
			data, err := decodeElems[T](f.elem, f.payload)
			if err != nil {
				t.poisonEdge(box, &classedError{class: ClassCorrupt,
					err: fmt.Errorf("dist: checkpoint frame from rank %d: %w", from, err)})
				conn.Close()
				return
			}
			box.framesRecv.Add(1)
			box.bytesRecv.Add(int64(len(f.payload)))
			select {
			case box.ck <- ckptParcel[T]{gen: int(f.gen), data: data}:
			case <-t.quit:
				conn.Close()
				return
			}
		default:
			t.poisonEdge(box, fmt.Errorf("dist: unexpected frame kind %d from rank %d on a halo edge", f.kind, from))
			conn.Close()
			return
		}
	}
}

// poisonEdge poisons a box on an I/O fault and counts the event — the
// health counter Close's deliberate end-of-run poisons stay out of. During
// teardown a dying connection races Close; treat faults after Close began
// as part of the shutdown, not as failures.
func (t *TCPTransport[T]) poisonEdge(box *edgeBox[T], err error) {
	if box.poison(err) && !t.closed.Load() {
		t.poisoned.Add(1)
	}
}

// track remembers a connection for Close. A connection accepted or dialed
// concurrently with Close (after its snapshot of the list) is closed here
// instead of tracked, so no reader can outlive Close's wait.
func (t *TCPTransport[T]) track(conn net.Conn) {
	t.connMu.Lock()
	if t.closed.Load() {
		t.connMu.Unlock()
		conn.Close()
		return
	}
	t.conns = append(t.conns, conn)
	t.connMu.Unlock()
}

// Neighbor reports whether rank id has a neighbour in direction d — pure
// Decomp geometry, identical to the channel backend.
func (t *TCPTransport[T]) Neighbor(id int, d Dir) bool {
	_, ok := t.geo.Neighbor(id, d, t.ring)
	return ok
}

// Send posts rank from's boundary strip toward its neighbour in direction
// d. The strip is serialised into a fresh wire buffer before Send returns,
// so the caller may reuse the slice after its next Barrier exactly as the
// Transport contract allows; the socket write (and the sequence stamping,
// CRC sealing and resend-window bookkeeping) happens on the edge's writer
// goroutine, so Send never blocks on the network.
func (t *TCPTransport[T]) Send(from int, d Dir, data []T) {
	oe, ok := t.outs[edgeKey{from, d}]
	if !ok {
		panic(fmt.Sprintf("dist: Send(%d, %v) without a neighbour", from, d))
	}
	nb, _ := t.geo.Neighbor(from, d, t.ring)
	var buf []byte
	select {
	case buf = <-oe.free:
	default:
	}
	out := encodeHaloFrameInto(buf, uint16(from), uint16(nb), byte(d), t.gen.Load(), data)
	select {
	case oe.ch <- out:
		oe.framesSent.Add(1)
		oe.bytesSent.Add(int64(len(out) - wireHeaderSize))
		oe.noteDepth()
	case <-t.quit:
	}
}

// Recv returns the strip the neighbour of rank to in direction d sent this
// iteration. A transport fault is fatal (see the type comment); tests and
// tolerant callers can use the error-returning recv.
func (t *TCPTransport[T]) Recv(to int, d Dir) []T {
	data, err := t.recv(to, d)
	if err != nil {
		panic(err)
	}
	return data
}

// recv is Recv with the error surfaced: the returned error is a *Fault
// wrapping the underlying cause and naming the receiving rank, the
// direction, the suspect peer, the barrier generation it happened in, and
// the failure class.
func (t *TCPTransport[T]) recv(to int, d Dir) ([]T, error) {
	box, ok := t.boxes[edgeKey{to, d}]
	if !ok {
		panic(fmt.Sprintf("dist: Recv(%d, %v) without a neighbour", to, d))
	}
	data, err := box.recvHalo(t.ioDur())
	if err != nil {
		return nil, &Fault{Rank: to, Dir: d, Peer: t.peerOf(to, d), Gen: int(t.gen.Load()), Class: classOf(err), Err: err}
	}
	return data, nil
}

// TryRecv returns the halo strip from direction d if one is already queued
// on the edge's inbound box, without blocking; (nil, false) when nothing
// has been delivered yet. A faulted edge also reports false — its failure
// surfaces on the subsequent blocking Recv, keeping the fatal-fault path
// in one place.
func (t *TCPTransport[T]) TryRecv(to int, d Dir) ([]T, bool) {
	box, ok := t.boxes[edgeKey{to, d}]
	if !ok {
		panic(fmt.Sprintf("dist: TryRecv(%d, %v) without a neighbour", to, d))
	}
	select {
	case data := <-box.halo:
		return data, true
	default:
		return nil, false
	}
}

// RecvEither returns the first halo strip to arrive from either direction
// d1 or d2 — the per-edge completion notification the overlap schedule
// sweeps boundary strips by. Like Recv, a transport fault is fatal and
// panics with a *Fault naming the direction whose edge failed.
func (t *TCPTransport[T]) RecvEither(to int, d1, d2 Dir) (Dir, []T) {
	b1, ok1 := t.boxes[edgeKey{to, d1}]
	b2, ok2 := t.boxes[edgeKey{to, d2}]
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("dist: RecvEither(%d, %v, %v) without both neighbours", to, d1, d2))
	}
	// Fast path: a strip already queued on either box.
	select {
	case data := <-b1.halo:
		return d1, data
	default:
	}
	select {
	case data := <-b2.halo:
		return d2, data
	default:
	}
	var expire <-chan time.Time
	if d := t.ioDur(); d > 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		expire = tm.C
	}
	select {
	case data := <-b1.halo:
		return d1, data
	case data := <-b2.halo:
		return d2, data
	case <-b1.done:
		// Drain anything enqueued before the edge died, then fault.
		select {
		case data := <-b1.halo:
			return d1, data
		default:
		}
		err := b1.cause()
		panic(&Fault{Rank: to, Dir: d1, Peer: t.peerOf(to, d1), Gen: int(t.gen.Load()), Class: classOf(err), Err: err})
	case <-b2.done:
		select {
		case data := <-b2.halo:
			return d2, data
		default:
		}
		err := b2.cause()
		panic(&Fault{Rank: to, Dir: d2, Peer: t.peerOf(to, d2), Gen: int(t.gen.Load()), Class: classOf(err), Err: err})
	case <-expire:
		err := &classedError{class: ClassTimeout,
			err: fmt.Errorf("timed out after %v waiting for a halo strip from %v or %v", t.ioDur(), d1, d2)}
		panic(&Fault{Rank: to, Dir: d1, Peer: t.peerOf(to, d1), Gen: int(t.gen.Load()), Class: ClassTimeout, Err: err})
	}
}

// peerOf names the geometric neighbour behind rank to's inbound edge d, or
// -1 when the geometry has none.
func (t *TCPTransport[T]) peerOf(to int, d Dir) int {
	if nb, ok := t.geo.Neighbor(to, d, t.ring); ok {
		return nb
	}
	return -1
}

// SendCkpt posts rank from's packed buddy snapshot toward its neighbour in
// direction d, stamped with the checkpoint iteration. Checkpoints ride the
// same persistent edge connections as halos but as their own frame kind and
// inbound queue, so overlapping a buddy save with the halo exchange never
// perturbs the halo FIFO the lockstep relies on.
func (t *TCPTransport[T]) SendCkpt(from int, d Dir, gen int, data []T) {
	oe, ok := t.outs[edgeKey{from, d}]
	if !ok {
		panic(fmt.Sprintf("dist: SendCkpt(%d, %v) without a neighbour", from, d))
	}
	nb, _ := t.geo.Neighbor(from, d, t.ring)
	es := elemSize[T]()
	out := make([]byte, wireHeaderSize, wireHeaderSize+len(data)*int(es))
	putHeader(out, frame{kind: frameCkpt, from: uint16(from), to: uint16(nb), dir: byte(d), elem: es, gen: uint32(gen)})
	out = appendElems(out, data)
	select {
	case oe.ch <- out:
		oe.framesSent.Add(1)
		oe.bytesSent.Add(int64(len(out) - wireHeaderSize))
		oe.noteDepth()
	case <-t.quit:
	}
}

// RecvCkpt returns the next buddy snapshot the neighbour of rank to in
// direction d sent, with its iteration stamp. Unlike Recv it returns
// transport faults instead of panicking — checkpoint traffic belongs to the
// resilience layer, which handles its own errors.
func (t *TCPTransport[T]) RecvCkpt(to int, d Dir) ([]T, int, error) {
	box, ok := t.boxes[edgeKey{to, d}]
	if !ok {
		panic(fmt.Sprintf("dist: RecvCkpt(%d, %v) without a neighbour", to, d))
	}
	p, err := box.recvCkpt(t.ioDur())
	if err != nil {
		return nil, 0, fmt.Errorf("dist: ckpt recv for rank %d from %v: %w", to, d, err)
	}
	return p.data, p.gen, nil
}

// Barrier blocks until every rank of the grid — hosted here or in peer
// processes — has arrived at the current generation. The last hosted rank
// to arrive runs the token exchange for all hosted ranks, then releases
// them together.
func (t *TCPTransport[T]) Barrier() {
	t.barMu.Lock()
	if t.barErr != nil {
		err := t.barErr
		t.barMu.Unlock()
		panic(err)
	}
	gen := t.barGen
	t.barCount++
	if t.barCount == t.barN {
		err := t.exchangeTokens(uint32(gen))
		t.barCount = 0
		if err != nil && t.barErr == nil {
			t.barErr = err
		}
		fail := t.barErr
		if fail == nil {
			t.barGen++
			t.gen.Store(uint32(t.barGen))
		}
		t.barCond.Broadcast()
		t.barMu.Unlock()
		if fail != nil {
			panic(fail)
		}
		return
	}
	for gen == t.barGen && t.barErr == nil {
		t.barCond.Wait()
	}
	released := gen != t.barGen
	err := t.barErr
	t.barMu.Unlock()
	if !released && err != nil {
		panic(err)
	}
}

// Abort poisons every inbound edge and fails the local barrier with cause,
// waking every hosted rank blocked in Recv, RecvCkpt or Barrier. It is how
// one rank's transport fault unwinds its siblings in the same process so a
// tolerant run (Cluster.RunRecover) can hand the fault to the resilience
// layer instead of hanging on a barrier no one will complete. Idempotent;
// the first cause wins. Boxes are poisoned before the barrier lock is taken
// because the exchanging rank holds barMu while blocked in recvToken — the
// poison is what wakes it.
func (t *TCPTransport[T]) Abort(cause error) {
	for _, box := range t.boxes {
		box.poison(cause)
	}
	t.barMu.Lock()
	if t.barErr == nil {
		t.barErr = cause
	}
	t.barCond.Broadcast()
	t.barMu.Unlock()
}

// exchangeTokens runs the neighbour token rounds of barrier generation gen
// on behalf of every hosted rank. Each round posts one token per outbound
// edge and collects one per inbound edge; diameter-many rounds make the
// barrier global (see the type comment).
func (t *TCPTransport[T]) exchangeTokens(gen uint32) error {
	for round := 1; round <= t.rounds; round++ {
		for _, id := range t.local {
			for d := Dir(0); d < NumDirs; d++ {
				oe, ok := t.outs[edgeKey{id, d}]
				if !ok {
					continue
				}
				f := frame{kind: frameToken, from: uint16(id), dir: byte(d), gen: gen, round: uint16(round)}
				if nb, ok := t.geo.Neighbor(id, d, t.ring); ok {
					f.to = uint16(nb)
				}
				buf := appendFrame(make([]byte, 0, wireHeaderSize), f)
				select {
				case oe.ch <- buf:
					oe.noteDepth() // tokens count toward backlog, not halo frames
				case <-t.quit:
					return errors.New("dist: transport closed during barrier")
				}
			}
		}
		for _, id := range t.local {
			for d := Dir(0); d < NumDirs; d++ {
				box, ok := t.boxes[edgeKey{id, d}]
				if !ok {
					continue
				}
				tok, err := box.recvToken(t.ioDur())
				if err != nil {
					return &Fault{Rank: id, Dir: d, Peer: t.peerOf(id, d), Gen: int(gen), Barrier: true, Class: classOf(err),
						Err: fmt.Errorf("round %d/%d: %w", round, t.rounds, err)}
				}
				if tok.gen != gen || int(tok.round) != round {
					return &Fault{Rank: id, Dir: d, Peer: t.peerOf(id, d), Gen: int(gen), Barrier: true,
						Err: fmt.Errorf("token for generation %d round %d, want generation %d round %d (lockstep violated)",
							tok.gen, tok.round, gen, round)}
				}
			}
		}
	}
	return nil
}

// Close tears the transport down: listener, every edge connection, and all
// reader/writer goroutines. Safe to call more than once. Ranks blocked in
// Recv or Barrier when their peer's transport closes observe a poisoned
// edge, not a hang.
func (t *TCPTransport[T]) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Flush before teardown: tokens of the final barrier may still sit in
	// the outbound queues, and neighbours completing that barrier need
	// them before their connection reads EOF.
	close(t.flushq)
	t.wgW.Wait()
	close(t.quit)
	t.ln.Close()
	t.connMu.Lock()
	conns := t.conns
	t.conns = nil
	t.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	for _, box := range t.boxes {
		box.mu.Lock()
		if box.deathT != nil {
			box.deathT.Stop()
			box.deathT = nil
		}
		box.mu.Unlock()
		box.poison(errors.New("dist: transport closed"))
	}
	return nil
}

// Metrics returns the per-edge halo traffic of the hosted ranks plus the
// backend's health counters — including the self-healing ones: connections
// rebuilt (Reconnects), frames replayed from resend windows (Resends),
// frames rejected by the wire CRC (CrcErrors) and replay duplicates
// dropped by the sequence dedup (DupFrames). Each process of a
// multi-process cluster reports its own edges; the launcher's MergeAll
// sums the totals. Safe to call live (the counters are atomic) and after
// Close.
func (t *TCPTransport[T]) Metrics() telemetry.TransportMetrics {
	var m telemetry.TransportMetrics
	for _, id := range t.local {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := t.geo.Neighbor(id, d, t.ring)
			if !ok {
				continue
			}
			e := telemetry.EdgeStat{From: id, To: nb, Dir: d.String()}
			if oe, ok := t.outs[edgeKey{id, d}]; ok {
				e.FramesSent = oe.framesSent.Load()
				e.BytesSent = oe.bytesSent.Load()
				e.QueueHW = oe.queueHW.Load()
				m.Reconnects += oe.reconnects.Load()
				m.Resends += oe.resends.Load()
			}
			if box, ok := t.boxes[edgeKey{id, d}]; ok {
				e.FramesRecv = box.framesRecv.Load()
				e.BytesRecv = box.bytesRecv.Load()
				m.CrcErrors += box.crcErrors.Load()
				m.DupFrames += box.dupFrames.Load()
			}
			m.Edges = append(m.Edges, e)
		}
	}
	m.SortEdges()
	m.DialRetries = t.dialRetries.Load()
	m.Poisoned = t.poisoned.Load()
	return m
}
