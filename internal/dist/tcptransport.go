package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stencilabft/internal/num"
	"stencilabft/internal/telemetry"
)

// TCPConfig configures a TCPTransport: the rank-grid geometry it spans, the
// subset of ranks this process hosts, and the rendezvous bootstrap that
// turns N independent processes into one wired cluster.
type TCPConfig struct {
	// RanksX, RanksY shape the Cartesian rank grid (columns × rows), the
	// same convention as Decomp; Ring closes both axes into a torus
	// (periodic global boundaries).
	RanksX, RanksY int
	Ring           bool

	// LocalRanks lists the ranks this process hosts (each rank of the grid
	// must be hosted by exactly one process across the cluster). Nil hosts
	// every rank in-process — halo traffic still crosses real loopback
	// sockets, which is what lets one process certify the backend.
	LocalRanks []int

	// Rendezvous is the host:port every process meets at to exchange data
	// listener addresses. The process hosting rank 0 binds and serves it;
	// the others dial it with retry until DialTimeout. It may be empty only
	// when LocalRanks covers the whole grid (nothing to exchange).
	Rendezvous string

	// RendezvousListener optionally supplies a pre-bound listener for the
	// rendezvous service instead of binding Rendezvous — how tests avoid
	// bind races on a picked port. Only the rank-0 host may set it.
	RendezvousListener net.Listener

	// Bind is the address the per-process halo data listener binds
	// (default "127.0.0.1:0"). Use a routable interface ("0.0.0.0:0") for
	// multi-host LAN clusters.
	Bind string

	// DialTimeout bounds the whole bootstrap: rendezvous dial-with-retry,
	// the wait for all ranks to register, and the per-neighbour data
	// connections. Default 30s.
	DialTimeout time.Duration

	// IOTimeout bounds each halo receive and each barrier-token wait once
	// the cluster is running, so a hung peer surfaces as an error instead
	// of a deadlock. Default 2m; negative disables the bound.
	IOTimeout time.Duration
}

const (
	defaultDialTimeout = 30 * time.Second
	defaultIOTimeout   = 2 * time.Minute
	dialRetryStep      = 20 * time.Millisecond
)

// withDefaults returns a copy of cfg with zero fields defaulted.
func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.IOTimeout < 0 {
		cfg.IOTimeout = 0 // 0 means "no bound" internally
	}
	return cfg
}

// edgeKey identifies a directed halo edge from one rank's point of view:
// for inbound boxes, {rank, d} holds what rank's d-neighbour sent; for
// outbound edges, {rank, d} carries what rank sends toward d.
type edgeKey struct {
	rank int
	dir  Dir
}

// tokenMsg is a decoded barrier token.
type tokenMsg struct {
	gen   uint32
	round uint16
}

// edgeBox is the inbound queue of one directed edge. A connection-reader
// goroutine fills it; the owning rank drains it from Recv and Barrier. When
// the connection dies the box is poisoned: done closes and err holds the
// cause, so a blocked receiver wakes with a real error instead of hanging.
type edgeBox[T num.Float] struct {
	halo chan []T
	tok  chan tokenMsg
	ck   chan ckptParcel[T] // buddy snapshots; at most one in flight per period

	// bound guards the edge's one-connection invariant: the barrier's
	// lockstep and the halo sequencing rely on per-edge FIFO order, which
	// two interleaving reader streams would break.
	bound atomic.Bool

	// Halo and checkpoint traffic received on this edge (frames and
	// payload bytes), counted by the connection reader as frames land in
	// the box.
	framesRecv, bytesRecv atomic.Int64

	mu   sync.Mutex
	err  error
	done chan struct{}
}

func newEdgeBox[T num.Float](tokCap int) *edgeBox[T] {
	return &edgeBox[T]{
		halo: make(chan []T, 4),
		tok:  make(chan tokenMsg, tokCap),
		ck:   make(chan ckptParcel[T], 2),
		done: make(chan struct{}),
	}
}

// poison records the first error and wakes every blocked receiver. It
// reports whether this call was the one that poisoned the box, so fault
// paths can count poison events without double-counting repeats.
func (b *edgeBox[T]) poison(err error) bool {
	b.mu.Lock()
	first := b.err == nil
	if first {
		b.err = err
		close(b.done)
	}
	b.mu.Unlock()
	return first
}

func (b *edgeBox[T]) cause() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// recvHalo returns the next halo strip, the poisoning error, or a timeout.
func (b *edgeBox[T]) recvHalo(timeout time.Duration) ([]T, error) {
	select {
	case d := <-b.halo:
		return d, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case d := <-b.halo:
		return d, nil
	case <-b.done:
		// Drain anything enqueued before the connection died.
		select {
		case d := <-b.halo:
			return d, nil
		default:
		}
		return nil, b.cause()
	case <-expire:
		return nil, fmt.Errorf("timed out after %v waiting for the halo strip", timeout)
	}
}

// recvCkpt returns the next buddy snapshot, the poisoning error, or a
// timeout.
func (b *edgeBox[T]) recvCkpt(timeout time.Duration) (ckptParcel[T], error) {
	select {
	case p := <-b.ck:
		return p, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case p := <-b.ck:
		return p, nil
	case <-b.done:
		select {
		case p := <-b.ck:
			return p, nil
		default:
		}
		return ckptParcel[T]{}, b.cause()
	case <-expire:
		return ckptParcel[T]{}, fmt.Errorf("timed out after %v waiting for the buddy checkpoint", timeout)
	}
}

// recvToken returns the next barrier token, the poisoning error, or a
// timeout.
func (b *edgeBox[T]) recvToken(timeout time.Duration) (tokenMsg, error) {
	select {
	case m := <-b.tok:
		return m, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case m := <-b.tok:
		return m, nil
	case <-b.done:
		select {
		case m := <-b.tok:
			return m, nil
		default:
		}
		return tokenMsg{}, b.cause()
	case <-expire:
		return tokenMsg{}, fmt.Errorf("timed out after %v waiting for the barrier token", timeout)
	}
}

// outEdge is the outbound half of one directed edge: a persistent
// connection fed by a writer goroutine, so Send never blocks on the socket.
type outEdge struct {
	ch   chan []byte
	conn net.Conn

	// framesSent/bytesSent count halo traffic enqueued on the edge (payload
	// bytes, headers and tokens excluded, so counts compare across
	// backends); queueHW is the deepest writer-queue backlog observed at
	// any enqueue — tokens included, since backlog is a property of the
	// socket, not of what is queued. A non-trivial queueHW means the halo
	// cadence outran this socket.
	framesSent, bytesSent, queueHW atomic.Int64
}

// noteDepth records the writer queue's depth after an enqueue, keeping the
// high-water mark.
func (oe *outEdge) noteDepth() {
	d := int64(len(oe.ch))
	for {
		cur := oe.queueHW.Load()
		if d <= cur || oe.queueHW.CompareAndSwap(cur, d) {
			return
		}
	}
}

// TCPTransport is the socket backend of the Transport seam: the same
// 4-direction halo contract and barrier semantics as ChanTransport, carried
// over per-neighbour persistent TCP connections so the ranks can be real OS
// processes on one host (loopback) or several (LAN). Construction is a
// rendezvous bootstrap — every process publishes its data listener address
// at cfg.Rendezvous, receives the full address book, and dials one
// persistent connection per outbound directed edge.
//
// The iteration barrier is a generation-tagged token exchange with the
// neighbours: each round every hosted rank posts a token on all its
// outbound edges, then collects one on all its inbound edges, and the
// number of rounds equals the rank graph's diameter — by induction a rank
// that completes round r knows every rank within distance r has entered the
// barrier, so completing all rounds is the global barrier the lockstep
// schedule needs. No coordinator, no extra connections: the tokens ride the
// halo edges.
//
// A transport fault (peer process death, wire-version mismatch, corrupt
// frame, timeout) is fatal to the calling rank: Recv and Barrier panic with
// a wrapped error naming the rank, direction and barrier generation —
// MPI_ERRORS_ARE_FATAL semantics, which is what a bulk-synchronous stencil
// wants since no iteration can complete without its neighbours.
type TCPTransport[T num.Float] struct {
	geo    Decomp
	ring   bool
	local  []int
	rounds int
	ioWait time.Duration

	ln    net.Listener
	boxes map[edgeKey]*edgeBox[T]
	outs  map[edgeKey]*outEdge

	// Local-party cyclic barrier: the last hosted rank to arrive runs the
	// cross-process token exchange on behalf of all hosted ranks, then
	// releases the generation.
	barMu    sync.Mutex
	barCond  *sync.Cond
	barN     int
	barCount int
	barGen   int
	barErr   error // first barrier fault or Abort cause; sticky, fails every later Barrier

	dialRetries atomic.Int64 // bootstrap connect attempts beyond each first
	poisoned    atomic.Int64 // edges killed by I/O faults (Close's deliberate poisons excluded)

	gen    atomic.Uint32 // completed barrier generations, for error reports
	quit   chan struct{}
	flushq chan struct{} // closed first on Close: writers drain their queues
	closed atomic.Bool
	wg     sync.WaitGroup
	wgW    sync.WaitGroup // writer goroutines, joined before connections close

	connMu sync.Mutex
	conns  []net.Conn
}

// NewTCPTransport bootstraps the socket backend for cfg's rank grid and
// wires every directed halo edge of the hosted ranks. It returns once all
// rendezvous registration and per-neighbour connections are established, so
// a successful return means the hosted ranks can run.
func NewTCPTransport[T num.Float](cfg TCPConfig) (*TCPTransport[T], error) {
	cfg = cfg.withDefaults()
	geo := Decomp{RanksX: cfg.RanksX, RanksY: cfg.RanksY}
	n := geo.NumRanks()
	if cfg.RanksX < 1 || cfg.RanksY < 1 {
		return nil, fmt.Errorf("dist: tcp transport needs a rank grid with both factors >= 1 (got %dx%d)", cfg.RanksY, cfg.RanksX)
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("dist: tcp transport rank ids are 16-bit on the wire; %d ranks exceed that", n)
	}
	local, err := resolveLocalRanks(cfg.LocalRanks, n)
	if err != nil {
		return nil, err
	}
	allLocal := len(local) == n
	if cfg.Rendezvous == "" && cfg.RendezvousListener == nil && !allLocal {
		return nil, fmt.Errorf("dist: tcp transport hosting %d of %d ranks needs a rendezvous address to find its peers", len(local), n)
	}

	t := &TCPTransport[T]{
		geo:    geo,
		ring:   cfg.Ring,
		local:  local,
		rounds: geo.diameter(cfg.Ring),
		ioWait: cfg.IOTimeout,
		barN:   len(local),
		boxes:  make(map[edgeKey]*edgeBox[T]),
		outs:   make(map[edgeKey]*outEdge),
		quit:   make(chan struct{}),
		flushq: make(chan struct{}),
	}
	t.barCond = sync.NewCond(&t.barMu)

	ln, err := net.Listen("tcp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("dist: tcp transport data listener: %w", err)
	}
	t.ln = ln

	// Inbound boxes exist before any connection can arrive, so a frame for
	// an edge the geometry does not declare is a protocol error, never a
	// missing map entry. Token capacity covers the rounds of two
	// generations — a neighbour can run at most one generation ahead.
	tokCap := 2*t.rounds + 2
	for _, id := range local {
		for d := Dir(0); d < NumDirs; d++ {
			if _, ok := geo.Neighbor(id, d, cfg.Ring); ok {
				t.boxes[edgeKey{id, d}] = newEdgeBox[T](tokCap)
			}
		}
	}

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.acceptLoop()
	}()

	book, err := t.exchangeAddresses(cfg)
	if err != nil {
		t.Close()
		return nil, err
	}
	if err := t.dialEdges(cfg, book); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// Addr returns the data listener's address — where neighbours dial this
// process's hosted ranks.
func (t *TCPTransport[T]) Addr() string { return t.ln.Addr().String() }

// LocalRanks returns the ranks this transport hosts, sorted.
func (t *TCPTransport[T]) LocalRanks() []int { return append([]int(nil), t.local...) }

// exchangeAddresses produces the rank → data-listener address book. With
// every rank local the book is trivial; otherwise the rank-0 host serves
// the rendezvous point and everyone else registers with it.
func (t *TCPTransport[T]) exchangeAddresses(cfg TCPConfig) (map[int]string, error) {
	self := t.Addr()
	if cfg.Rendezvous == "" && cfg.RendezvousListener == nil {
		book := make(map[int]string, t.geo.NumRanks())
		for i := 0; i < t.geo.NumRanks(); i++ {
			book[i] = self
		}
		return book, nil
	}
	if t.local[0] == 0 {
		ln := cfg.RendezvousListener
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", cfg.Rendezvous)
			if err != nil {
				return nil, fmt.Errorf("dist: rendezvous listener %s: %w", cfg.Rendezvous, err)
			}
		}
		return serveRendezvous(ln, t.geo.NumRanks(), t.local, self, cfg.DialTimeout)
	}
	return registerAtRendezvous(cfg.Rendezvous, t.local, self, cfg.DialTimeout, &t.dialRetries)
}

// serveRendezvous runs the bootstrap service on the rank-0 host: collect a
// register frame from every peer process until all n ranks are accounted
// for, then publish the complete address book to every registered
// connection. The listener is closed before returning — rendezvous is a
// bootstrap, not a runtime dependency.
func serveRendezvous(ln net.Listener, n int, selfRanks []int, selfAddr string, deadline time.Duration) (map[int]string, error) {
	defer ln.Close()
	book := make(map[int]string, n)
	for _, id := range selfRanks {
		book[id] = selfAddr
	}
	expire := time.Now().Add(deadline)
	var peers []net.Conn
	defer func() {
		for _, c := range peers {
			c.Close()
		}
	}()
	// Bound the whole collection by the deadline: a TCP listener takes it
	// directly; any other (wrapped) listener gets a watchdog that closes
	// it at expiry, failing Accept with the same x-of-n diagnosis.
	tl, hasDeadline := ln.(*net.TCPListener)
	if !hasDeadline {
		watchdog := time.AfterFunc(time.Until(expire), func() { ln.Close() })
		defer watchdog.Stop()
	}
	for len(book) < n {
		if hasDeadline {
			tl.SetDeadline(expire)
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: rendezvous: %d of %d ranks registered before the %v deadline: %w", len(book), n, deadline, err)
		}
		conn.SetDeadline(expire)
		f, err := readFrame(conn)
		if err != nil || f.kind != frameRegister {
			// Not a peer: a port scanner, health probe, or stray connect
			// on the (possibly well-known) rendezvous port. Drop it and
			// keep accepting — only registered peers can fail the
			// bootstrap.
			conn.Close()
			continue
		}
		var reg registerMsg
		if err := json.Unmarshal(f.payload, &reg); err != nil {
			conn.Close()
			continue
		}
		if err := admitRegistration(book, reg, n); err != nil {
			nack, _ := json.Marshal(nackMsg{Error: err.Error()})
			conn.Write(appendFrame(nil, frame{kind: frameNack, payload: nack}))
			conn.Close()
			return nil, fmt.Errorf("dist: rendezvous: %w", err)
		}
		for _, id := range reg.Ranks {
			book[id] = reg.Addr
		}
		peers = append(peers, conn)
	}
	payload, err := json.Marshal(bookMsg{Addrs: book})
	if err != nil {
		return nil, err
	}
	buf := appendFrame(nil, frame{kind: frameBook, payload: payload})
	for _, c := range peers {
		if _, err := c.Write(buf); err != nil {
			return nil, fmt.Errorf("dist: rendezvous: publishing the address book: %w", err)
		}
	}
	return book, nil
}

// admitRegistration validates one register message against the book so far.
func admitRegistration(book map[int]string, reg registerMsg, n int) error {
	if reg.Addr == "" || len(reg.Ranks) == 0 {
		return fmt.Errorf("registration without ranks or address")
	}
	for _, id := range reg.Ranks {
		if id < 0 || id >= n {
			return fmt.Errorf("registered rank %d outside the %d-rank grid", id, n)
		}
		if prev, dup := book[id]; dup {
			return fmt.Errorf("rank %d registered twice (%s and %s)", id, prev, reg.Addr)
		}
	}
	return nil
}

// registerAtRendezvous dials the rendezvous service (with retry, since the
// rank-0 host may not be up yet), registers this process's ranks and
// listener address, and blocks until the full address book arrives.
func registerAtRendezvous(addr string, ranks []int, selfAddr string, deadline time.Duration, retries *atomic.Int64) (map[int]string, error) {
	conn, err := dialRetry(addr, deadline, retries)
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous at %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(deadline))
	payload, err := json.Marshal(registerMsg{Ranks: ranks, Addr: selfAddr})
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(appendFrame(nil, frame{kind: frameRegister, payload: payload})); err != nil {
		return nil, fmt.Errorf("dist: rendezvous registration: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous: waiting for the address book: %w", err)
	}
	switch f.kind {
	case frameBook:
		var book bookMsg
		if err := json.Unmarshal(f.payload, &book); err != nil {
			return nil, fmt.Errorf("dist: rendezvous address book payload: %w", err)
		}
		return book.Addrs, nil
	case frameNack:
		var nack nackMsg
		json.Unmarshal(f.payload, &nack)
		return nil, fmt.Errorf("dist: rendezvous rejected registration: %s", nack.Error)
	default:
		return nil, fmt.Errorf("dist: rendezvous answered with frame kind %d, want the address book", f.kind)
	}
}

// registerMsg and bookMsg are the rendezvous bootstrap payloads (JSON: the
// bootstrap runs once per process, so self-describing beats compact).
type registerMsg struct {
	Ranks []int  `json:"ranks"`
	Addr  string `json:"addr"`
}

type bookMsg struct {
	Addrs map[int]string `json:"addrs"`
}

type nackMsg struct {
	Error string `json:"error"`
}

// dialRetry dials addr until it succeeds or the deadline passes — the
// connect-retry that lets processes start in any order. Every failed
// attempt is tallied into retries (when non-nil): a non-zero count after a
// successful bootstrap measures how long this process waited for its peers.
func dialRetry(addr string, deadline time.Duration, retries *atomic.Int64) (net.Conn, error) {
	expire := time.Now().Add(deadline)
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(expire)
		if remain <= 0 {
			return nil, fmt.Errorf("gave up connecting to %s after %v (%d attempts): %w", addr, deadline, attempt, lastErr)
		}
		step := dialRetryStep
		if step > remain {
			step = remain
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if retries != nil {
			retries.Add(1)
		}
		time.Sleep(step)
	}
}

// dialEdges opens one persistent connection per outbound directed edge of
// the hosted ranks, announces the edge with a hello frame, and starts its
// writer goroutine.
func (t *TCPTransport[T]) dialEdges(cfg TCPConfig, book map[int]string) error {
	for _, id := range t.local {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := t.geo.Neighbor(id, d, t.ring)
			if !ok {
				continue
			}
			addr, ok := book[nb]
			if !ok {
				return fmt.Errorf("dist: address book has no entry for rank %d (neighbour %v of rank %d)", nb, d, id)
			}
			conn, err := dialRetry(addr, cfg.DialTimeout, &t.dialRetries)
			if err != nil {
				return fmt.Errorf("dist: halo edge rank %d --%v--> rank %d: %w", id, d, nb, err)
			}
			hello := appendFrame(nil, frame{kind: frameHello, from: uint16(id), to: uint16(nb), dir: byte(d)})
			if _, err := conn.Write(hello); err != nil {
				conn.Close()
				return fmt.Errorf("dist: halo edge rank %d --%v--> rank %d: hello: %w", id, d, nb, err)
			}
			oe := &outEdge{ch: make(chan []byte, 64), conn: conn}
			t.outs[edgeKey{id, d}] = oe
			t.track(conn)
			t.wgW.Add(1)
			go func() {
				defer t.wgW.Done()
				t.writeLoop(oe)
			}()
		}
	}
	return nil
}

// writeLoop drains one outbound edge's frame queue onto its socket. A write
// error is terminal for the edge; the peer's death will also surface on the
// receive side, so the loop keeps draining to avoid blocking senders. On
// Close the loop first flushes everything already queued — the last
// iteration's barrier tokens must reach the peers that are still completing
// that barrier — and only then exits, letting Close take the connections
// down.
func (t *TCPTransport[T]) writeLoop(oe *outEdge) {
	var dead bool
	write := func(buf []byte) {
		if dead {
			return
		}
		// The write deadline is what keeps Close from hanging on a
		// hung-but-alive peer whose receive buffer is full: IOTimeout
		// bounds the send side here just as it bounds the receive side
		// in recvHalo/recvToken.
		if t.ioWait > 0 {
			oe.conn.SetWriteDeadline(time.Now().Add(t.ioWait))
		}
		if _, err := oe.conn.Write(buf); err != nil {
			dead = true
		}
	}
	for {
		select {
		case buf := <-oe.ch:
			write(buf)
		case <-t.flushq:
			for {
				select {
				case buf := <-oe.ch:
					write(buf)
				default:
					return
				}
			}
		}
	}
}

// acceptLoop admits inbound edge connections until the listener closes.
func (t *TCPTransport[T]) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.track(conn)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
		}()
	}
}

// serveConn handles one inbound edge connection: validate the hello, bind
// the connection to its inbound box, then pump halo strips and barrier
// tokens into it until the connection dies — at which point the box is
// poisoned so the owning rank sees the cause.
func (t *TCPTransport[T]) serveConn(conn net.Conn) {
	hello, err := readFrame(conn)
	if err != nil || hello.kind != frameHello {
		// Unidentifiable peer: nothing to poison. Drop the connection.
		conn.Close()
		return
	}
	from, to, d := int(hello.from), int(hello.to), Dir(hello.dir)
	if d >= NumDirs {
		conn.Close()
		return
	}
	// A frame sent toward d arrives from direction d.Opposite().
	box, ok := t.boxes[edgeKey{to, d.Opposite()}]
	if !ok {
		conn.Close()
		return
	}
	if !box.bound.CompareAndSwap(false, true) {
		// The edge already has its persistent connection; any later
		// hello naming it (a stray reconnect, a misconfigured foreign
		// cluster) is dropped rather than letting a second stream
		// interleave into — or poison — the live FIFO box. If the first
		// connection is in fact dead, its reader poisons the box and the
		// rank fails with that cause.
		conn.Close()
		return
	}
	if nb, ok := t.geo.Neighbor(to, d.Opposite(), t.ring); !ok || nb != from {
		// First claimant of the edge but the claim contradicts this
		// process's geometry: the real peer is misconfigured (e.g. a
		// different -rankgrid). Fail the edge loudly.
		t.poisonEdge(box, fmt.Errorf("dist: hello from rank %d claiming to be rank %d's %v neighbour, geometry says rank %d", from, to, d.Opposite(), nb))
		conn.Close()
		return
	}
	for {
		f, err := readFrame(conn)
		if err != nil {
			t.poisonEdge(box, fmt.Errorf("dist: halo connection from rank %d: %w", from, err))
			conn.Close()
			return
		}
		switch f.kind {
		case frameHalo:
			data, err := decodeElems[T](f.elem, f.payload)
			if err != nil {
				t.poisonEdge(box, fmt.Errorf("dist: halo frame from rank %d: %w", from, err))
				conn.Close()
				return
			}
			box.framesRecv.Add(1)
			box.bytesRecv.Add(int64(len(f.payload)))
			select {
			case box.halo <- data:
			case <-t.quit:
				conn.Close()
				return
			}
		case frameToken:
			select {
			case box.tok <- tokenMsg{gen: f.gen, round: f.round}:
			case <-t.quit:
				conn.Close()
				return
			}
		case frameCkpt:
			data, err := decodeElems[T](f.elem, f.payload)
			if err != nil {
				t.poisonEdge(box, fmt.Errorf("dist: checkpoint frame from rank %d: %w", from, err))
				conn.Close()
				return
			}
			box.framesRecv.Add(1)
			box.bytesRecv.Add(int64(len(f.payload)))
			select {
			case box.ck <- ckptParcel[T]{gen: int(f.gen), data: data}:
			case <-t.quit:
				conn.Close()
				return
			}
		default:
			t.poisonEdge(box, fmt.Errorf("dist: unexpected frame kind %d from rank %d on a halo edge", f.kind, from))
			conn.Close()
			return
		}
	}
}

// poisonEdge poisons a box on an I/O fault and counts the event — the
// health counter Close's deliberate end-of-run poisons stay out of. During
// teardown a dying connection races Close; treat faults after Close began
// as part of the shutdown, not as failures.
func (t *TCPTransport[T]) poisonEdge(box *edgeBox[T], err error) {
	if box.poison(err) && !t.closed.Load() {
		t.poisoned.Add(1)
	}
}

// track remembers a connection for Close. A connection accepted or dialed
// concurrently with Close (after its snapshot of the list) is closed here
// instead of tracked, so no reader can outlive Close's wait.
func (t *TCPTransport[T]) track(conn net.Conn) {
	t.connMu.Lock()
	if t.closed.Load() {
		t.connMu.Unlock()
		conn.Close()
		return
	}
	t.conns = append(t.conns, conn)
	t.connMu.Unlock()
}

// Neighbor reports whether rank id has a neighbour in direction d — pure
// Decomp geometry, identical to the channel backend.
func (t *TCPTransport[T]) Neighbor(id int, d Dir) bool {
	_, ok := t.geo.Neighbor(id, d, t.ring)
	return ok
}

// Send posts rank from's boundary strip toward its neighbour in direction
// d. The strip is serialised into a fresh wire buffer before Send returns,
// so the caller may reuse the slice after its next Barrier exactly as the
// Transport contract allows; the socket write happens on the edge's writer
// goroutine, so Send never blocks on the network.
func (t *TCPTransport[T]) Send(from int, d Dir, data []T) {
	oe, ok := t.outs[edgeKey{from, d}]
	if !ok {
		panic(fmt.Sprintf("dist: Send(%d, %v) without a neighbour", from, d))
	}
	nb, _ := t.geo.Neighbor(from, d, t.ring)
	out := encodeHaloFrame(uint16(from), uint16(nb), byte(d), t.gen.Load(), data)
	select {
	case oe.ch <- out:
		oe.framesSent.Add(1)
		oe.bytesSent.Add(int64(len(out) - wireHeaderSize))
		oe.noteDepth()
	case <-t.quit:
	}
}

// Recv returns the strip the neighbour of rank to in direction d sent this
// iteration. A transport fault is fatal (see the type comment); tests and
// tolerant callers can use the error-returning recv.
func (t *TCPTransport[T]) Recv(to int, d Dir) []T {
	data, err := t.recv(to, d)
	if err != nil {
		panic(err)
	}
	return data
}

// recv is Recv with the error surfaced: the returned error is a *Fault
// wrapping the underlying cause and naming the receiving rank, the
// direction, the suspect peer and the barrier generation it happened in.
func (t *TCPTransport[T]) recv(to int, d Dir) ([]T, error) {
	box, ok := t.boxes[edgeKey{to, d}]
	if !ok {
		panic(fmt.Sprintf("dist: Recv(%d, %v) without a neighbour", to, d))
	}
	data, err := box.recvHalo(t.ioWait)
	if err != nil {
		return nil, &Fault{Rank: to, Dir: d, Peer: t.peerOf(to, d), Gen: int(t.gen.Load()), Err: err}
	}
	return data, nil
}

// peerOf names the geometric neighbour behind rank to's inbound edge d, or
// -1 when the geometry has none.
func (t *TCPTransport[T]) peerOf(to int, d Dir) int {
	if nb, ok := t.geo.Neighbor(to, d, t.ring); ok {
		return nb
	}
	return -1
}

// SendCkpt posts rank from's packed buddy snapshot toward its neighbour in
// direction d, stamped with the checkpoint iteration. Checkpoints ride the
// same persistent edge connections as halos but as their own frame kind and
// inbound queue, so overlapping a buddy save with the halo exchange never
// perturbs the halo FIFO the lockstep relies on.
func (t *TCPTransport[T]) SendCkpt(from int, d Dir, gen int, data []T) {
	oe, ok := t.outs[edgeKey{from, d}]
	if !ok {
		panic(fmt.Sprintf("dist: SendCkpt(%d, %v) without a neighbour", from, d))
	}
	nb, _ := t.geo.Neighbor(from, d, t.ring)
	es := elemSize[T]()
	out := make([]byte, wireHeaderSize, wireHeaderSize+len(data)*int(es))
	putHeader(out, frame{kind: frameCkpt, from: uint16(from), to: uint16(nb), dir: byte(d), elem: es, gen: uint32(gen)}, 0)
	out = appendElems(out, data)
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(out)-wireHeaderSize))
	select {
	case oe.ch <- out:
		oe.framesSent.Add(1)
		oe.bytesSent.Add(int64(len(out) - wireHeaderSize))
		oe.noteDepth()
	case <-t.quit:
	}
}

// RecvCkpt returns the next buddy snapshot the neighbour of rank to in
// direction d sent, with its iteration stamp. Unlike Recv it returns
// transport faults instead of panicking — checkpoint traffic belongs to the
// resilience layer, which handles its own errors.
func (t *TCPTransport[T]) RecvCkpt(to int, d Dir) ([]T, int, error) {
	box, ok := t.boxes[edgeKey{to, d}]
	if !ok {
		panic(fmt.Sprintf("dist: RecvCkpt(%d, %v) without a neighbour", to, d))
	}
	p, err := box.recvCkpt(t.ioWait)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: ckpt recv for rank %d from %v: %w", to, d, err)
	}
	return p.data, p.gen, nil
}

// Barrier blocks until every rank of the grid — hosted here or in peer
// processes — has arrived at the current generation. The last hosted rank
// to arrive runs the token exchange for all hosted ranks, then releases
// them together.
func (t *TCPTransport[T]) Barrier() {
	t.barMu.Lock()
	if t.barErr != nil {
		err := t.barErr
		t.barMu.Unlock()
		panic(err)
	}
	gen := t.barGen
	t.barCount++
	if t.barCount == t.barN {
		err := t.exchangeTokens(uint32(gen))
		t.barCount = 0
		if err != nil && t.barErr == nil {
			t.barErr = err
		}
		fail := t.barErr
		if fail == nil {
			t.barGen++
			t.gen.Store(uint32(t.barGen))
		}
		t.barCond.Broadcast()
		t.barMu.Unlock()
		if fail != nil {
			panic(fail)
		}
		return
	}
	for gen == t.barGen && t.barErr == nil {
		t.barCond.Wait()
	}
	released := gen != t.barGen
	err := t.barErr
	t.barMu.Unlock()
	if !released && err != nil {
		panic(err)
	}
}

// Abort poisons every inbound edge and fails the local barrier with cause,
// waking every hosted rank blocked in Recv, RecvCkpt or Barrier. It is how
// one rank's transport fault unwinds its siblings in the same process so a
// tolerant run (Cluster.RunRecover) can hand the fault to the resilience
// layer instead of hanging on a barrier no one will complete. Idempotent;
// the first cause wins. Boxes are poisoned before the barrier lock is taken
// because the exchanging rank holds barMu while blocked in recvToken — the
// poison is what wakes it.
func (t *TCPTransport[T]) Abort(cause error) {
	for _, box := range t.boxes {
		box.poison(cause)
	}
	t.barMu.Lock()
	if t.barErr == nil {
		t.barErr = cause
	}
	t.barCond.Broadcast()
	t.barMu.Unlock()
}

// exchangeTokens runs the neighbour token rounds of barrier generation gen
// on behalf of every hosted rank. Each round posts one token per outbound
// edge and collects one per inbound edge; diameter-many rounds make the
// barrier global (see the type comment).
func (t *TCPTransport[T]) exchangeTokens(gen uint32) error {
	for round := 1; round <= t.rounds; round++ {
		for _, id := range t.local {
			for d := Dir(0); d < NumDirs; d++ {
				oe, ok := t.outs[edgeKey{id, d}]
				if !ok {
					continue
				}
				f := frame{kind: frameToken, from: uint16(id), dir: byte(d), gen: gen, round: uint16(round)}
				if nb, ok := t.geo.Neighbor(id, d, t.ring); ok {
					f.to = uint16(nb)
				}
				buf := appendFrame(make([]byte, 0, wireHeaderSize), f)
				select {
				case oe.ch <- buf:
					oe.noteDepth() // tokens count toward backlog, not halo frames
				case <-t.quit:
					return errors.New("dist: transport closed during barrier")
				}
			}
		}
		for _, id := range t.local {
			for d := Dir(0); d < NumDirs; d++ {
				box, ok := t.boxes[edgeKey{id, d}]
				if !ok {
					continue
				}
				tok, err := box.recvToken(t.ioWait)
				if err != nil {
					return &Fault{Rank: id, Dir: d, Peer: t.peerOf(id, d), Gen: int(gen), Barrier: true,
						Err: fmt.Errorf("round %d/%d: %w", round, t.rounds, err)}
				}
				if tok.gen != gen || int(tok.round) != round {
					return &Fault{Rank: id, Dir: d, Peer: t.peerOf(id, d), Gen: int(gen), Barrier: true,
						Err: fmt.Errorf("token for generation %d round %d, want generation %d round %d (lockstep violated)",
							tok.gen, tok.round, gen, round)}
				}
			}
		}
	}
	return nil
}

// Close tears the transport down: listener, every edge connection, and all
// reader/writer goroutines. Safe to call more than once. Ranks blocked in
// Recv or Barrier when their peer's transport closes observe a poisoned
// edge, not a hang.
func (t *TCPTransport[T]) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Flush before teardown: tokens of the final barrier may still sit in
	// the outbound queues, and neighbours completing that barrier need
	// them before their connection reads EOF.
	close(t.flushq)
	t.wgW.Wait()
	close(t.quit)
	t.ln.Close()
	t.connMu.Lock()
	conns := t.conns
	t.conns = nil
	t.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	for _, box := range t.boxes {
		box.poison(errors.New("dist: transport closed"))
	}
	return nil
}

// Metrics returns the per-edge halo traffic of the hosted ranks plus the
// backend's health counters. Each process of a multi-process cluster
// reports its own edges; the launcher's MergeAll sums the totals. Safe to
// call live (the counters are atomic) and after Close.
func (t *TCPTransport[T]) Metrics() telemetry.TransportMetrics {
	var m telemetry.TransportMetrics
	for _, id := range t.local {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := t.geo.Neighbor(id, d, t.ring)
			if !ok {
				continue
			}
			e := telemetry.EdgeStat{From: id, To: nb, Dir: d.String()}
			if oe, ok := t.outs[edgeKey{id, d}]; ok {
				e.FramesSent = oe.framesSent.Load()
				e.BytesSent = oe.bytesSent.Load()
				e.QueueHW = oe.queueHW.Load()
			}
			if box, ok := t.boxes[edgeKey{id, d}]; ok {
				e.FramesRecv = box.framesRecv.Load()
				e.BytesRecv = box.bytesRecv.Load()
			}
			m.Edges = append(m.Edges, e)
		}
	}
	m.SortEdges()
	m.DialRetries = t.dialRetries.Load()
	m.Poisoned = t.poisoned.Load()
	return m
}
