package dist

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWireFrameRoundTrip pins the frame encoding: every header field and
// the payload survive a serialise/parse cycle.
func TestWireFrameRoundTrip(t *testing.T) {
	in := frame{
		kind: frameToken, from: 3, to: 7, dir: byte(Left), elem: 8,
		gen: 0xDEADBEEF, round: 12, payload: []byte{1, 2, 3, 4, 5},
	}
	out, err := readFrame(bytes.NewReader(appendFrame(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.from != in.from || out.to != in.to ||
		out.dir != in.dir || out.elem != in.elem || out.gen != in.gen ||
		out.round != in.round || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip mangled the frame: sent %+v, got %+v", in, out)
	}
}

// TestWireVersionMismatch checks a frame from another wire revision is
// rejected with an error naming both versions — the contract the satellite
// failure-path tests and serveConn rely on.
func TestWireVersionMismatch(t *testing.T) {
	buf := appendFrame(nil, frame{kind: frameHalo})
	buf[2] = wireVersion + 3
	_, err := readFrame(bytes.NewReader(buf))
	if err == nil {
		t.Fatal("mismatched wire version accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, "version 5") || !strings.Contains(msg, "speaks version 2") {
		t.Errorf("version error %q does not name peer and own versions", msg)
	}
}

// TestWireBadMagicAndTruncation covers the remaining reject paths: foreign
// bytes, an oversized declared payload, and a payload cut short.
func TestWireBadMagicAndTruncation(t *testing.T) {
	if _, err := readFrame(bytes.NewReader(bytes.Repeat([]byte{'x'}, wireHeaderSize))); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("foreign bytes accepted: %v", err)
	}

	huge := appendFrame(nil, frame{kind: frameHalo})
	huge[20], huge[21], huge[22], huge[23] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized payload length accepted: %v", err)
	}

	cut := appendFrame(nil, frame{kind: frameHalo, elem: 8, payload: make([]byte, 64)})
	if _, err := readFrame(bytes.NewReader(cut[:len(cut)-8])); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated payload accepted: %v", err)
	}
}

// TestWireElems pins the halo payload codec: bit-exact round trips for both
// element widths (including NaN payload bits and signed zero) and rejection
// of width mismatches and ragged payloads.
func TestWireElems(t *testing.T) {
	f64 := []float64{0, math.Copysign(0, -1), 1.5, -2.75e300, math.NaN()}
	got64, err := decodeElems[float64](8, appendElems(nil, f64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f64 {
		if math.Float64bits(got64[i]) != math.Float64bits(f64[i]) {
			t.Errorf("float64[%d]: bits %x -> %x", i, math.Float64bits(f64[i]), math.Float64bits(got64[i]))
		}
	}

	f32 := []float32{0, 1.5, -3.25e30, float32(math.NaN())}
	got32, err := decodeElems[float32](4, appendElems(nil, f32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f32 {
		if math.Float32bits(got32[i]) != math.Float32bits(f32[i]) {
			t.Errorf("float32[%d]: bits %x -> %x", i, math.Float32bits(f32[i]), math.Float32bits(got32[i]))
		}
	}

	if _, err := decodeElems[float64](4, make([]byte, 8)); err == nil || !strings.Contains(err.Error(), "element width") {
		t.Errorf("width mismatch accepted: %v", err)
	}
	if _, err := decodeElems[float64](8, make([]byte, 12)); err == nil || !strings.Contains(err.Error(), "whole number") {
		t.Errorf("ragged payload accepted: %v", err)
	}
}

// TestEncodeHaloFrameMatchesAppendFrame pins the single-allocation halo
// encoder against the general frame serialiser byte for byte.
func TestEncodeHaloFrameMatchesAppendFrame(t *testing.T) {
	data := []float64{1.5, -2.25, 3.125}
	want := appendFrame(nil, frame{
		kind: frameHalo, from: 3, to: 5, dir: byte(Up), elem: 8, gen: 17, seq: 9,
		payload: appendElems(nil, data),
	})
	got := encodeHaloFrame(3, 5, byte(Up), 17, data)
	sealFrame(got, 9) // the writer goroutine's final step
	if !bytes.Equal(got, want) {
		t.Fatalf("encodeHaloFrame:\n got %x\nwant %x", got, want)
	}
}
