package core

import (
	"math/rand"
	"testing"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

func hotspotLikeOp3D() *stencil.Op3D[float64] {
	st := stencil.SevenPoint3D(0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10)
	return &stencil.Op3D[float64]{St: st, BC: grid.Clamp}
}

func init3D(nx, ny, nz int) *grid.Grid3D[float64] {
	g := grid.New3D[float64](nx, ny, nz)
	g.FillFunc(func(x, y, z int) float64 { return 300 + float64(x+2*y+3*z) })
	return g
}

// TestOffline2DTwoFaultsInDistinctPeriods: each period's corruption is
// rolled back independently; the final state is exact.
func TestOffline2DTwoFaultsInDistinctPeriods(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 48
	want := referenceRun(op, init, iters)

	plan := fault.NewPlan(
		fault.Injection{Iteration: 5, X: 3, Y: 4, Bit: 58},
		fault.Injection{Iteration: 37, X: 17, Y: 12, Bit: 59},
	)
	o := opts64()
	o.Period = 16
	p, err := NewOffline2D(op, init, o)
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections != 2 || st.Rollbacks != 2 {
		t.Fatalf("expected 2 independent recoveries, got %+v", st)
	}
	if st.RecomputedIters != 32 {
		t.Fatalf("recomputed %d iterations, want 2 full periods (32)", st.RecomputedIters)
	}
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("residual %g", d)
	}
}

// TestOffline2DFaultInFinalPartialPeriod: an error after the last periodic
// check is caught by Finalize.
func TestOffline2DFaultInFinalPartialPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 40 // periods of 16: final partial window is 8 iterations
	want := referenceRun(op, init, iters)

	plan := fault.NewPlan(fault.Injection{Iteration: 36, X: 9, Y: 9, Bit: 58})
	o := opts64()
	o.Period = 16
	p, err := NewOffline2D(op, init, o)
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	if p.Stats().Detections != 0 {
		t.Fatalf("error detected before Finalize: %+v", p.Stats())
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections != 1 || st.Rollbacks != 1 {
		t.Fatalf("Finalize did not recover: %+v", st)
	}
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("residual %g", d)
	}
}

// TestOffline2DPeriodOne degenerates to per-iteration verification.
func TestOffline2DPeriodOne(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nx, ny := 16, 16
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 10

	o := opts64()
	o.Period = 1
	p, err := NewOffline2D(op, init, o)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(iters)
	p.Finalize()
	st := p.Stats()
	if st.Verifications != iters {
		t.Fatalf("verifications %d, want %d", st.Verifications, iters)
	}
	if st.Checkpoint.Saves != iters+1 {
		t.Fatalf("saves %d, want %d", st.Checkpoint.Saves, iters+1)
	}
}

// TestOnline2DSignBitFlip covers the sign-bit case of Figure 10 (bit 31
// for float32, 63 for float64): always detected, accurately corrected.
func TestOnline2DSignBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nx, ny := 20, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 30
	want := referenceRun(op, init, iters)

	plan := fault.NewPlan(fault.Injection{Iteration: 11, X: 4, Y: 15, Bit: 63})
	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	st := p.Stats()
	if st.Detections != 1 || st.CorrectedPoints != 1 {
		t.Fatalf("sign flip not handled: %+v", st)
	}
	if d := p.Grid().MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("residual %g", d)
	}
}

// TestNew2DFactory covers the dynamic constructor used by the CLIs.
func TestNew2DFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	op := testOp(8, 8)
	init := testInit(rng, 8, 8)
	for _, mode := range []string{"none", "online", "offline"} {
		p, err := New2D(mode, op, init, opts64())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		p.Run(3)
		if p.Iter() != 3 {
			t.Fatalf("%s: iter %d", mode, p.Iter())
		}
		p.Finalize() // part of the unified contract: no-op for none/online
		if p.Iter() != 3 {
			t.Fatalf("%s: Finalize changed a clean run's iteration count", mode)
		}
	}
	if _, err := New2D("bogus", op, init, opts64()); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestNew3DFactory mirrors TestNew2DFactory for the 3-D constructors.
func TestNew3DFactory(t *testing.T) {
	op := hotspotLikeOp3D()
	init := init3D(16, 14, 4)
	for _, mode := range []string{"none", "online", "offline"} {
		p, err := New3D(mode, op, init, opts64())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		p.Run(2)
		if p.Iter() != 2 {
			t.Fatalf("%s: iter %d", mode, p.Iter())
		}
	}
	if _, err := New3D("bogus", op, init, opts64()); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
