package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"stencilabft/internal/checkpoint"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// TestOfflineAcrossBoundaryConditions runs the offline protector (whose
// interpolation chain is the most boundary-sensitive code path) under every
// boundary condition, error-free and with one injected flip.
func TestOfflineAcrossBoundaryConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	nx, ny := 20, 18
	const iters = 32
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.18), BC: bc, BCValue: 250}
		init := testInit(rng, nx, ny)
		want := referenceRun(op, init, iters)

		o := opts64()
		o.Period = 8
		p, err := NewOffline2D(op, init, o)
		if err != nil {
			t.Fatalf("bc=%s: %v", bc, err)
		}
		p.Run(iters)
		p.Finalize()
		if st := p.Stats(); st.Detections != 0 {
			t.Fatalf("bc=%s: false positives %+v", bc, st)
		}
		if d := p.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("bc=%s: error-free offline diverged by %g", bc, d)
		}

		// With one exponent flip: detected, erased.
		inj := fault.Injection{Iteration: 11, X: 7, Y: 9, Bit: 58}
		p2, err := NewOffline2D(op, init, o)
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p2.StepInject(injector.HookFor(i))
		}
		p2.Finalize()
		if st := p2.Stats(); st.Detections == 0 || st.Rollbacks == 0 {
			t.Fatalf("bc=%s: injected flip not recovered: %+v", bc, st)
		}
		if d := p2.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("bc=%s: rollback residual %g", bc, d)
		}
	}
}

// TestOnlineAcrossBoundaryConditions mirrors the matrix for the online
// protector with an asymmetric stencil — every BC exercises a different
// alpha/beta code path.
func TestOnlineAcrossBoundaryConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nx, ny := 22, 16
	const iters = 28
	for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero} {
		op := &stencil.Op2D[float64]{St: stencil.Advect2D(0.25, 0.1), BC: bc, BCValue: 100}
		init := testInit(rng, nx, ny)
		want := referenceRun(op, init, iters)

		p, err := NewOnline2D(op, init, opts64())
		if err != nil {
			t.Fatalf("bc=%s: %v", bc, err)
		}
		p.Run(iters)
		if st := p.Stats(); st.Detections != 0 {
			t.Fatalf("bc=%s: false positives %+v", bc, st)
		}
		if d := p.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("bc=%s: online diverged by %g", bc, d)
		}

		inj := fault.Injection{Iteration: 13, X: 11, Y: 5, Bit: 59}
		p2, err := NewOnline2D(op, init, opts64())
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p2.StepInject(injector.HookFor(i))
		}
		if st := p2.Stats(); st.CorrectedPoints == 0 {
			t.Fatalf("bc=%s: flip not corrected: %+v", bc, st)
		}
		if d := p2.Grid().MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("bc=%s: correction residual %g", bc, d)
		}
	}
}

// TestCheckpointFileRestart exercises the on-disk checkpoint as a restart
// mechanism: run, persist, reload into a fresh protector, continue — the
// resumed run must match an uninterrupted one bitwise.
func TestCheckpointFileRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const first, second = 20, 25

	continuous, err := NewNone2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	continuous.Run(first + second)

	// Phase 1: run and persist.
	p1, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	p1.Run(first)
	path := filepath.Join(t.TempDir(), "restart.ckpt")
	b := make([]float64, ny)
	stencil.ChecksumB(p1.Grid(), b)
	if err := checkpoint.WriteFile(path, p1.Iter(), p1.Grid(), b); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reload (as a fresh process would) and continue.
	g, b2, iter, err := checkpoint.ReadFile[float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if iter != first || len(b2) != ny {
		t.Fatalf("checkpoint metadata: iter=%d len=%d", iter, len(b2))
	}
	p2, err := NewOnline2D(op, g, opts64())
	if err != nil {
		t.Fatal(err)
	}
	p2.Run(second)
	if d := p2.Grid().MaxAbsDiff(continuous.Grid()); d != 0 {
		t.Fatalf("restarted run diverged from continuous by %g", d)
	}
}

// TestBlockedEquivalentToOnlineWholeDomain: in an error-free run, the
// per-chunk protector and the whole-domain online protector compute
// identical states for random block geometries.
func TestProtectorsAgreeOnCleanRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		nx := 16 + rng.Intn(24)
		ny := 16 + rng.Intn(24)
		op := testOp(nx, ny)
		init := testInit(rng, nx, ny)
		iters := 10 + rng.Intn(20)

		want := referenceRun(op, init, iters)
		online, err := NewOnline2D(op, init, opts64())
		if err != nil {
			t.Fatal(err)
		}
		online.Run(iters)
		o := opts64()
		o.Period = 1 + rng.Intn(8)
		offline, err := NewOffline2D(op, init, o)
		if err != nil {
			t.Fatal(err)
		}
		offline.Run(iters)
		offline.Finalize()

		if d := online.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: online drifted %g", trial, d)
		}
		if d := offline.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: offline drifted %g", trial, d)
		}
	}
}
