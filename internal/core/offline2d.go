package core

import (
	"stencilabft/internal/checkpoint"
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Offline2D protects a 2-D stencil run with the paper's offline ABFT
// scheme (Section 4): the fused column checksum is accumulated every sweep
// (one extra add per point), but verification happens only every Δ
// iterations, by interpolating the last verified checksum Δ steps forward
// and comparing it with the current fused checksum. A detected corruption
// triggers rollback to the last clean checkpoint and recomputation of the
// lost iterations — the paper's standard checkpoint-and-recovery coupling.
//
// The per-step boundary terms of the interpolation chain need the domain's
// edge strips of every intermediate iteration; those are retained in a ring
// of Δ edge snapshots, O(Δ·r·(nx+ny)) memory.
type Offline2D[T num.Float] struct {
	op     *stencil.Op2D[T]
	buf    *grid.Buffer[T]
	ip     *checksum.Interp2D[T]
	det    checksum.Detector[T]
	pool   *stencil.Pool
	period int
	inj    stencil.InjectSource[T]

	curB     []T // fused column checksums of the current iteration
	verified []T // column checksums at the last verified iteration
	chain    []T // scratch for the interpolation chain
	chainNxt []T

	// Cone-recovery state (allocated only in ConeRecovery mode).
	recovery  RecoveryMode
	verifiedA []T // row checksums at the last verified iteration
	chainA    []T
	chainANxt []T

	ring  []*checksum.EdgeSnapshot[T] // edge strips of the last Δ pre-sweep states
	store checkpoint.Store2D[T]

	iter     int // completed sweeps
	lastSafe int // iteration of the last verified checkpoint
	stats    Stats
	tel      *telemetry.Recorder // nil when telemetry is disabled
}

// NewOffline2D builds an offline protector for op with detection period
// opt.Period (Δ), starting from init (copied). The initial state is
// checkpointed immediately, so the first rollback target always exists.
func NewOffline2D[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], opt Options[T]) (*Offline2D[T], error) {
	opt = opt.withDefaults()
	nx, ny := init.Nx(), init.Ny()
	ip, err := checksum.NewInterp2D(op, nx, ny)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms
	p := &Offline2D[T]{
		op:       op,
		buf:      grid.BufferFrom(init),
		ip:       ip,
		det:      opt.Detector,
		pool:     opt.Pool,
		period:   opt.Period,
		inj:      opt.Inject,
		curB:     make([]T, ny),
		verified: make([]T, ny),
		chain:    make([]T, ny),
		chainNxt: make([]T, ny),
		ring:     make([]*checksum.EdgeSnapshot[T], opt.Period),
		tel:      opt.Telemetry,
	}
	r := ip.EdgeRadius()
	for i := range p.ring {
		p.ring[i] = checksum.NewEdgeSnapshot[T](nx, ny, r, op.BC, op.BCValue)
	}
	p.recovery = opt.Recovery
	if p.recovery == ConeRecovery {
		p.verifiedA = make([]T, nx)
		p.chainA = make([]T, nx)
		p.chainANxt = make([]T, nx)
		stencil.ChecksumA(p.buf.Read, p.verifiedA)
	}
	stencil.ChecksumB(p.buf.Read, p.curB)
	copy(p.verified, p.curB)
	p.store.Save(0, p.buf.Read, p.curB)
	p.stats.Checkpoint = p.store.Stats()
	return p, nil
}

// Grid returns the current domain state.
func (p *Offline2D[T]) Grid() *grid.Grid[T] { return p.buf.Read }

// Iter returns the number of completed sweeps.
func (p *Offline2D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters.
func (p *Offline2D[T]) Stats() Stats {
	s := p.stats
	s.Checkpoint = p.store.Stats()
	return s
}

// Grid3D returns nil: Offline2D protects a 2-D domain.
func (p *Offline2D[T]) Grid3D() *grid.Grid3D[T] { return nil }

// Step advances one sweep applying the configured injection source,
// verifying (and recovering) when the detection period elapses.
func (p *Offline2D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject is Step with an explicit per-call injection hook.
func (p *Offline2D[T]) StepInject(hook stencil.InjectFunc[T]) {
	p.sweep(hook)
	if p.iter-p.lastSafe >= p.period {
		p.verify(p.iter - p.lastSafe)
	}
}

// Run advances count iterations, applying the configured injection source.
func (p *Offline2D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// Finalize verifies any iterations still pending since the last periodic
// check (the "after the application completes" mode of Section 4). Call it
// once after the last Step.
func (p *Offline2D[T]) Finalize() {
	if n := p.iter - p.lastSafe; n > 0 {
		p.verify(n)
	}
}

// sweep runs one fused sweep, capturing the pre-sweep edge strips the
// interpolation chain will need.
func (p *Offline2D[T]) sweep(hook stencil.InjectFunc[T]) {
	src, dst := p.buf.Read, p.buf.Write
	p.tel.SetIter(p.iter)
	t0 := p.tel.Begin()
	p.ring[(p.iter-p.lastSafe)%p.period].Capture(src)
	if p.pool != nil {
		p.op.SweepParallelHook(p.pool, dst, src, p.curB, hook)
	} else {
		p.op.SweepRange(dst, src, 0, src.Ny(), p.curB, hook)
	}
	p.tel.End(telemetry.PhaseSweep, t0)
	p.buf.Swap()
	p.iter++
	p.stats.Iterations++
}

// verify interpolates the last verified checksum steps iterations forward
// and compares with the current fused checksum. Clean: checkpoint and move
// the verification window. Dirty: roll back and recompute; because the
// fault model is transient (a bit-flip corrupts a value once), the
// recomputed segment is clean and its verification succeeds; should it not
// (e.g. a fault injected during recomputation), verify recurses until it
// does, counting every extra rollback.
func (p *Offline2D[T]) verify(steps int) {
	p.stats.Verifications++
	t0 := p.tel.Begin()
	copy(p.chain, p.verified)
	for s := 0; s < steps; s++ {
		p.ip.InterpolateB(p.chain, p.ring[s], p.chainNxt)
		p.chain, p.chainNxt = p.chainNxt, p.chain
	}
	mismatch := p.det.AnyMismatch(p.curB, p.chain)
	p.tel.End(telemetry.PhaseVerify, t0)
	if !mismatch {
		p.markVerified()
		return
	}
	p.stats.Detections++
	// Try light-cone recovery first when configured: repair in place,
	// re-verify, and only fall back to a full rollback if the cone could
	// not be bounded or the repair did not reconcile the checksums.
	if p.recovery == ConeRecovery {
		t0 = p.tel.Begin()
		ok := p.coneRecover(steps)
		p.tel.End(telemetry.PhaseRepair, t0)
		if ok {
			p.stats.ConeRecoveries++
			p.markVerified()
			return
		}
	}
	// Corruption somewhere in the last `steps` sweeps: roll back and
	// recompute the segment. The recomputation attributes itself: the
	// replayed sweeps count as Sweep time and the re-verification as
	// Verify time; only the checkpoint restore is charged to Repair.
	p.stats.Rollbacks++
	target := p.iter
	t0 = p.tel.Begin()
	p.store.Restore(p.buf.Read, p.curB)
	p.tel.End(telemetry.PhaseRepair, t0)
	copy(p.verified, p.curB)
	p.iter = p.lastSafe
	for p.iter < target {
		p.sweep(nil)
		p.stats.RecomputedIters++
	}
	p.verify(target - p.lastSafe)
}

// markVerified promotes the current state to the verification baseline:
// checksums become the chain origin and the domain is checkpointed.
func (p *Offline2D[T]) markVerified() {
	copy(p.verified, p.curB)
	if p.recovery == ConeRecovery {
		stencil.ChecksumA(p.buf.Read, p.verifiedA)
	}
	p.lastSafe = p.iter
	p.store.Save(p.iter, p.buf.Read, p.curB)
}

// coneRecover attempts a light-cone repair of the corruption detected by
// the chain comparison (p.chain holds the interpolated column checksums of
// the current iteration). It returns true when the repair succeeded and
// the checksums reconcile; the caller then re-baselines. On any doubt it
// returns false and the caller performs a full rollback.
func (p *Offline2D[T]) coneRecover(steps int) bool {
	nx, ny := p.buf.Read.Nx(), p.buf.Read.Ny()

	// Locate the corrupted columns with the A-vector chain, mirroring
	// the B-vector detection.
	copy(p.chainA, p.verifiedA)
	for s := 0; s < steps; s++ {
		p.ip.InterpolateA(p.chainA, p.ring[s], p.chainANxt)
		p.chainA, p.chainANxt = p.chainANxt, p.chainA
	}
	directA := make([]T, nx)
	stencil.ChecksumA(p.buf.Read, directA)

	bm := p.det.Compare(p.curB, p.chain)
	am := p.det.Compare(directA, p.chainA)
	if len(am) == 0 || len(bm) == 0 {
		return false // unlocatable (checksum corruption or cancellation)
	}

	// Bounding box of the flagged rows and columns, padded by one
	// stencil radius to cover fringe cells below the detection floor.
	radius := max(p.ip.EdgeRadius(), 1)
	final := rect{
		x0: am[0].Index, x1: am[len(am)-1].Index + 1,
		y0: bm[0].Index, y1: bm[len(bm)-1].Index + 1,
	}.expand(radius, nx, ny)

	window := final.expand(steps*radius, nx, ny)
	if 2*window.area() >= nx*ny {
		return false // the cone covers most of the domain; rollback is cheaper
	}
	// If the cone touched the edge strips the interpolation chain reads,
	// the ring data is polluted and the post-repair re-verification would
	// fail anyway; detect that cheaply up front.
	strip := p.ip.EdgeRadius() + 1
	if window.x0 < strip || window.y0 < strip || window.x1 > nx-strip || window.y1 > ny-strip {
		return false
	}

	w := newConeWindow(window, p.op.BC, p.op.BCValue, nx, ny)
	w.load(p.store.Domain())
	regions := coneRegions(final, steps, radius, nx, ny)
	for _, region := range regions {
		w.sweepRegion(p.op, region)
		p.stats.ConePointsSwept += region.area()
	}
	w.store(p.buf.Read, final)

	// Reconcile: recompute the fused checksums from the repaired domain
	// and re-compare against the already-interpolated chain.
	stencil.ChecksumB(p.buf.Read, p.curB)
	return !p.det.AnyMismatch(p.curB, p.chain)
}
