package core

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Online3D applies the online scheme per z-layer of a 3-D domain (paper
// Section 5.1: "each layer uses its own independent checksums and the
// proposed ABFT method is applied independently within each layer"). The
// interpolation couples neighbouring layers' checksum vectors exactly as
// the layer sums do, so detection remains exact for 3-D stencils.
type Online3D[T num.Float] struct {
	op   *stencil.Op3D[T]
	buf  *grid.Buffer3D[T]
	ip   *checksum.Interp3D[T]
	det  checksum.Detector[T]
	pool *stencil.Pool
	pol  checksum.PairPolicy
	inj  stencil.InjectSource[T]

	prevB   [][]T // verified per-layer column checksums of iteration t
	newB    [][]T // fused per-layer column checksums of iteration t+1
	interpB [][]T // interpolated per-layer column checksums

	// Row-checksum scratch, computed lazily on detection.
	prevA, interpA [][]T
	newA           []T

	flagged []bool // per-layer mismatch scratch, reused every step

	// edges are per-layer live views of the current t-buffer (edges[z]
	// views buf.Read.Layer(z)); edgesAlt views the other half. Boxing a
	// layer view into the EdgeSource interface allocates, so both sets are
	// built once and swapped alongside the buffer.
	edges, edgesAlt []checksum.EdgeSource[T]

	corr  checksum.Corrector[T]
	iter  int
	stats Stats
	tel   *telemetry.Recorder // nil when telemetry is disabled
}

// NewOnline3D builds an online protector for op, starting from init
// (copied).
func NewOnline3D[T num.Float](op *stencil.Op3D[T], init *grid.Grid3D[T], opt Options[T]) (*Online3D[T], error) {
	opt = opt.withDefaults()
	nx, ny, nz := init.Nx(), init.Ny(), init.Nz()
	ip, err := checksum.NewInterp3D(op, nx, ny, nz)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms
	p := &Online3D[T]{
		op:       op,
		buf:      grid.Buffer3DFrom(init),
		ip:       ip,
		det:      opt.Detector,
		pool:     opt.Pool,
		pol:      opt.PairPolicy,
		inj:      opt.Inject,
		prevB:    makeLayers[T](nz, ny),
		newB:     makeLayers[T](nz, ny),
		interpB:  makeLayers[T](nz, ny),
		prevA:    makeLayers[T](nz, nx),
		interpA:  makeLayers[T](nz, nx),
		newA:     make([]T, nx),
		flagged:  make([]bool, nz),
		edges:    make([]checksum.EdgeSource[T], nz),
		edgesAlt: make([]checksum.EdgeSource[T], nz),
		corr:     checksum.Corrector[T]{PaperExact: opt.PaperExactCorrection},
		tel:      opt.Telemetry,
	}
	for z := 0; z < nz; z++ {
		p.edges[z] = checksum.LiveEdges(p.buf.Read.Layer(z), op.BC, op.BCValue)
		p.edgesAlt[z] = checksum.LiveEdges(p.buf.Write.Layer(z), op.BC, op.BCValue)
		stencil.ChecksumB(p.buf.Read.Layer(z), p.prevB[z])
	}
	return p, nil
}

func makeLayers[T num.Float](nz, n int) [][]T {
	out := make([][]T, nz)
	for z := range out {
		out[z] = make([]T, n)
	}
	return out
}

// Grid3D returns the current domain state.
func (p *Online3D[T]) Grid3D() *grid.Grid3D[T] { return p.buf.Read }

// Grid returns nil: Online3D protects a 3-D domain; use Grid3D.
func (p *Online3D[T]) Grid() *grid.Grid[T] { return nil }

// Iter returns the number of completed sweeps.
func (p *Online3D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters.
func (p *Online3D[T]) Stats() Stats { return p.stats }

// Finalize is a no-op: the online scheme verifies every sweep.
func (p *Online3D[T]) Finalize() {}

// Step advances one sweep applying the configured injection source; see
// StepInject for the mechanics.
func (p *Online3D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject advances one sweep: fused per-layer checksums, per-layer
// interpolation and comparison, correction in the rare mismatch case. All
// per-layer phases are partitioned over the pool; the correction slow path
// runs inside the layer that flagged, with no cross-layer writes.
func (p *Online3D[T]) StepInject(hook stencil.InjectFunc[T]) {
	src, dst := p.buf.Read, p.buf.Write
	nz := src.Nz()

	p.tel.SetIter(p.iter)
	t0 := p.tel.Begin()
	if p.pool != nil {
		p.op.SweepParallelHook(p.pool, dst, src, p.newB, hook)
	} else {
		for z := 0; z < nz; z++ {
			p.op.SweepLayer(dst, src, z, p.newB[z], hook)
		}
	}
	p.tel.End(telemetry.PhaseSweep, t0)

	// Interpolate and detect per layer. Mismatching layers are collected
	// and corrected after the parallel phase: corrections mutate the
	// write buffer and checksums of the flagged layer only, but the
	// row-checksum interpolation reads neighbouring layers, so doing it
	// outside the barrier keeps the memory model trivially racefree.
	t0 = p.tel.Begin()
	flagged := p.flagged
	for z := range flagged {
		flagged[z] = false
	}
	detect := func(z int) {
		p.ip.InterpolateB(z, p.prevB, p.edges, p.interpB[z])
		if p.det.AnyMismatch(p.newB[z], p.interpB[z]) {
			flagged[z] = true
		}
	}
	if p.pool != nil {
		p.pool.ForEach(nz, detect)
	} else {
		for z := 0; z < nz; z++ {
			detect(z)
		}
	}
	p.stats.Verifications++

	anyFlagged := false
	for z := 0; z < nz; z++ {
		if flagged[z] {
			anyFlagged = true
			break
		}
	}
	p.tel.End(telemetry.PhaseVerify, t0)
	if anyFlagged {
		p.stats.Detections++
		t0 = p.tel.Begin()
		// The row-checksum interpolation of layer z needs prevA of
		// layers z+dz; compute prevA for every layer once (the slow
		// path is rare and O(nx*ny*nz) total, the cost of one sweep).
		for z := 0; z < nz; z++ {
			stencil.ChecksumA(src.Layer(z), p.prevA[z])
		}
		for z := 0; z < nz; z++ {
			if flagged[z] {
				p.correctLayer(z, dst)
			}
		}
		p.tel.End(telemetry.PhaseRepair, t0)
	}

	p.prevB, p.newB = p.newB, p.prevB
	p.buf.Swap()
	p.edges, p.edgesAlt = p.edgesAlt, p.edges
	p.iter++
	p.stats.Iterations++
}

// Run advances count iterations, applying the configured injection source.
func (p *Online3D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// correctLayer locates and repairs the corrupted points of one flagged
// layer using the 2-D correction algebra on that layer's checksum pairs.
func (p *Online3D[T]) correctLayer(z int, dst *grid.Grid3D[T]) {
	layer := dst.Layer(z)
	p.ip.InterpolateA(z, p.prevA, p.edges, p.interpA[z])
	stencil.ChecksumA(layer, p.newA)

	bm := p.det.Compare(p.newB[z], p.interpB[z])
	am := p.det.Compare(p.newA, p.interpA[z])
	if len(am) == 0 || len(bm) == 0 {
		p.stats.ChecksumRepairs++
		stencil.ChecksumB(layer, p.newB[z])
		return
	}
	direct := &checksum.Vectors[T]{A: p.newA, B: p.newB[z]}
	locs := p.corr.CorrectAll(layer, am, bm, p.pol, direct, p.interpA[z], p.interpB[z])
	p.stats.CorrectedPoints += len(locs)
}
