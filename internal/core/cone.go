package core

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// RecoveryMode selects how the offline protector repairs a detected
// corruption.
type RecoveryMode int

const (
	// FullRollback restores the whole domain from the last checkpoint
	// and re-executes every iteration since — the paper's standard
	// checkpoint-and-recovery coupling (Section 4.2).
	FullRollback RecoveryMode = iota
	// ConeRecovery exploits stencil locality (the approach of Fang,
	// Cavelan, Robert & Chien cited by the paper as a cost reducer):
	// only the error's backward light cone is recomputed from the
	// checkpoint. The region to recompute at step s shrinks by the
	// stencil radius per step, so the work is O(Δ·(rΔ)²) instead of
	// O(Δ·nx·ny). When the cone cannot be bounded (corruption reaching
	// the edge strips the interpolation chain depends on, or checksum
	// corruption with no located column), the protector falls back to a
	// full rollback, so ConeRecovery is always at least as safe.
	ConeRecovery
)

// rect is a half-open region [x0,x1) x [y0,y1) in domain coordinates.
type rect struct {
	x0, y0, x1, y1 int
}

func (r rect) empty() bool { return r.x0 >= r.x1 || r.y0 >= r.y1 }
func (r rect) width() int  { return r.x1 - r.x0 }
func (r rect) height() int { return r.y1 - r.y0 }
func (r rect) area() int   { return r.width() * r.height() }
func (r rect) contains(x, y int) bool {
	return x >= r.x0 && x < r.x1 && y >= r.y0 && y < r.y1
}

// expand grows the region by d on every side, clamped to the domain.
func (r rect) expand(d, nx, ny int) rect {
	return rect{
		x0: max(0, r.x0-d), y0: max(0, r.y0-d),
		x1: min(nx, r.x1+d), y1: min(ny, r.y1+d),
	}
}

// coneRegions returns the region to recompute at each step: regions[s] is
// written at recompute step s (state time t0+s+1) and must equal the final
// target F expanded by (steps-1-s)·radius, so that every read of step s+1
// falls inside regions[s].
func coneRegions(final rect, steps, radius, nx, ny int) []rect {
	regions := make([]rect, steps)
	for s := 0; s < steps; s++ {
		regions[s] = final.expand((steps-1-s)*radius, nx, ny)
	}
	return regions
}

// coneWindow is a region-local double buffer addressed in global domain
// coordinates. Reads outside the window resolve the boundary condition of
// the underlying domain; by the shrinking-region construction they only
// occur for out-of-domain ghosts.
type coneWindow[T num.Float] struct {
	r        rect
	bc       grid.Boundary
	bcValue  T
	nx, ny   int // domain dimensions
	cur, nxt []T // region-local storage, row-major over r
}

func newConeWindow[T num.Float](r rect, bc grid.Boundary, bcValue T, nx, ny int) *coneWindow[T] {
	return &coneWindow[T]{
		r: r, bc: bc, bcValue: bcValue, nx: nx, ny: ny,
		cur: make([]T, r.area()),
		nxt: make([]T, r.area()),
	}
}

// load fills the window's current state from g (global coordinates).
func (w *coneWindow[T]) load(g *grid.Grid[T]) {
	i := 0
	for y := w.r.y0; y < w.r.y1; y++ {
		copy(w.cur[i:i+w.r.width()], g.Row(y)[w.r.x0:w.r.x1])
		i += w.r.width()
	}
}

// at reads the current state at global (x, y), resolving domain ghosts by
// the boundary condition. It panics if an in-domain point outside the
// window is requested — that would break the shrinking-region invariant.
func (w *coneWindow[T]) at(x, y int) T {
	rx, okx := w.bc.ResolveIndex(x, w.nx)
	ry, oky := w.bc.ResolveIndex(y, w.ny)
	if !okx || !oky {
		if w.bc == grid.Constant {
			return w.bcValue
		}
		return 0
	}
	if !w.r.contains(rx, ry) {
		panic("core: cone recompute read outside its window")
	}
	return w.cur[(rx-w.r.x0)+(ry-w.r.y0)*w.r.width()]
}

// sweepRegion computes one stencil step for every cell of region into the
// window's next buffer and swaps. region must satisfy region ⊕ radius ⊆
// current window rect (up to domain clamping).
func (w *coneWindow[T]) sweepRegion(op *stencil.Op2D[T], region rect) {
	width := w.r.width()
	for y := region.y0; y < region.y1; y++ {
		for x := region.x0; x < region.x1; x++ {
			var v T
			if op.C != nil {
				v = op.C.At(x, y)
			}
			for _, p := range op.St.Points {
				v += p.W * w.at(x+p.DX, y+p.DY)
			}
			w.nxt[(x-w.r.x0)+(y-w.r.y0)*width] = v
		}
	}
	// Cells outside `region` are not copied forward: the next step's
	// region is smaller and never reads them.
	w.cur, w.nxt = w.nxt, w.cur
}

// store writes the window's current values of region into g.
func (w *coneWindow[T]) store(g *grid.Grid[T], region rect) {
	width := w.r.width()
	for y := region.y0; y < region.y1; y++ {
		srcOff := (region.x0 - w.r.x0) + (y-w.r.y0)*width
		copy(g.Row(y)[region.x0:region.x1], w.cur[srcOff:srcOff+region.width()])
	}
}
