package core

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// None2D runs a 2-D stencil with no protection at all — the paper's
// "No-ABFT" baseline. It still uses the same sweep engine, so timing
// differences against the protected runs isolate the ABFT overhead.
type None2D[T num.Float] struct {
	op    *stencil.Op2D[T]
	buf   *grid.Buffer[T]
	pool  *stencil.Pool
	inj   stencil.InjectSource[T]
	iter  int
	stats Stats
}

// NewNone2D builds an unprotected runner starting from init (copied).
func NewNone2D[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], opt Options[T]) (*None2D[T], error) {
	if err := op.Validate(init.Nx(), init.Ny()); err != nil {
		return nil, err
	}
	return &None2D[T]{op: op, buf: grid.BufferFrom(init), pool: opt.Pool, inj: opt.Inject}, nil
}

// Grid returns the current domain state.
func (p *None2D[T]) Grid() *grid.Grid[T] { return p.buf.Read }

// Iter returns the number of completed sweeps.
func (p *None2D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters (only Iterations is populated).
func (p *None2D[T]) Stats() Stats { return p.stats }

// Grid3D returns nil: None2D protects a 2-D domain.
func (p *None2D[T]) Grid3D() *grid.Grid3D[T] { return nil }

// Finalize is a no-op: the unprotected runner has no end-of-run obligations.
func (p *None2D[T]) Finalize() {}

// Step advances one sweep, applying the configured injection source.
func (p *None2D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject advances one sweep with no checksum work, applying hook (when
// non-nil) during the sweep.
func (p *None2D[T]) StepInject(hook stencil.InjectFunc[T]) {
	if p.pool != nil {
		p.op.SweepParallelHook(p.pool, p.buf.Write, p.buf.Read, nil, hook)
	} else {
		p.op.SweepRange(p.buf.Write, p.buf.Read, 0, p.buf.Read.Ny(), nil, hook)
	}
	p.buf.Swap()
	p.iter++
	p.stats.Iterations++
}

// Run advances count iterations, applying the configured injection source.
func (p *None2D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// None3D is the unprotected 3-D baseline.
type None3D[T num.Float] struct {
	op    *stencil.Op3D[T]
	buf   *grid.Buffer3D[T]
	pool  *stencil.Pool
	inj   stencil.InjectSource[T]
	iter  int
	stats Stats
}

// NewNone3D builds an unprotected 3-D runner starting from init (copied).
func NewNone3D[T num.Float](op *stencil.Op3D[T], init *grid.Grid3D[T], opt Options[T]) (*None3D[T], error) {
	if err := op.Validate(init.Nx(), init.Ny(), init.Nz()); err != nil {
		return nil, err
	}
	return &None3D[T]{op: op, buf: grid.Buffer3DFrom(init), pool: opt.Pool, inj: opt.Inject}, nil
}

// Grid3D returns the current domain state.
func (p *None3D[T]) Grid3D() *grid.Grid3D[T] { return p.buf.Read }

// Grid returns nil: None3D protects a 3-D domain; use Grid3D.
func (p *None3D[T]) Grid() *grid.Grid[T] { return nil }

// Iter returns the number of completed sweeps.
func (p *None3D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters (only Iterations is populated).
func (p *None3D[T]) Stats() Stats { return p.stats }

// Finalize is a no-op: the unprotected runner has no end-of-run obligations.
func (p *None3D[T]) Finalize() {}

// Step advances one sweep, applying the configured injection source.
func (p *None3D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject advances one sweep with no checksum work, applying hook (when
// non-nil) during the sweep.
func (p *None3D[T]) StepInject(hook stencil.InjectFunc[T]) {
	if p.pool != nil {
		p.op.SweepParallelHook(p.pool, p.buf.Write, p.buf.Read, nil, hook)
	} else {
		for z := 0; z < p.buf.Read.Nz(); z++ {
			p.op.SweepLayer(p.buf.Write, p.buf.Read, z, nil, hook)
		}
	}
	p.buf.Swap()
	p.iter++
	p.stats.Iterations++
}

// Run advances count iterations, applying the configured injection source.
func (p *None3D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}
