package core

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Protector is the protocol shared by every runner regardless of scheme or
// dimensionality: advance sweeps, expose the current state and the unified
// counters, and discharge any end-of-run obligation (Finalize folds the old
// Finalizer type-assertion hack into the contract — protectors without
// pending work implement it as a no-op). A 2-D protector returns nil from
// Grid3D and vice versa; callers pick the accessor matching the spec they
// built. Fault injection is configured up front (Options.Inject), so Step
// takes no arguments; StepInject remains on the concrete types for callers
// that drive injection per call.
type Protector[T num.Float] interface {
	Step()
	Run(count int)
	Grid() *grid.Grid[T]
	Grid3D() *grid.Grid3D[T]
	Iter() int
	Stats() Stats
	Finalize()
}

// Protector2D is the historical name of the unified protocol.
//
// Deprecated: use Protector.
type Protector2D[T num.Float] = Protector[T]

// Protector3D is the historical name of the unified protocol.
//
// Deprecated: use Protector.
type Protector3D[T num.Float] = Protector[T]

// Compile-time interface conformance checks for all six core protectors.
var (
	_ Protector[float32] = (*None2D[float32])(nil)
	_ Protector[float32] = (*Online2D[float32])(nil)
	_ Protector[float32] = (*Offline2D[float32])(nil)
	_ Protector[float32] = (*None3D[float32])(nil)
	_ Protector[float32] = (*Online3D[float32])(nil)
	_ Protector[float32] = (*Offline3D[float32])(nil)
	_ Protector[float64] = (*None2D[float64])(nil)
	_ Protector[float64] = (*Online2D[float64])(nil)
	_ Protector[float64] = (*Offline2D[float64])(nil)
	_ Protector[float64] = (*None3D[float64])(nil)
	_ Protector[float64] = (*Online3D[float64])(nil)
	_ Protector[float64] = (*Offline3D[float64])(nil)
)

// New2D constructs a protector by mode name ("none", "online", "offline").
// The root package's registry-backed Build is the public entry point; this
// remains the internal dynamic constructor it delegates to.
func New2D[T num.Float](mode string, op *stencil.Op2D[T], init *grid.Grid[T], opt Options[T]) (Protector[T], error) {
	switch mode {
	case "none":
		return NewNone2D(op, init, opt)
	case "online":
		return NewOnline2D(op, init, opt)
	case "offline":
		return NewOffline2D(op, init, opt)
	default:
		return nil, errUnknownMode(mode)
	}
}

// New3D constructs a 3-D protector by mode name.
func New3D[T num.Float](mode string, op *stencil.Op3D[T], init *grid.Grid3D[T], opt Options[T]) (Protector[T], error) {
	switch mode {
	case "none":
		return NewNone3D(op, init, opt)
	case "online":
		return NewOnline3D(op, init, opt)
	case "offline":
		return NewOffline3D(op, init, opt)
	default:
		return nil, errUnknownMode(mode)
	}
}

type errUnknownMode string

func (e errUnknownMode) Error() string {
	return "core: unknown protection mode " + string(e) + " (want none|online|offline)"
}
