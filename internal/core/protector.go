package core

import (
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Protector2D is the protocol shared by every 2-D runner (None2D,
// Online2D, Offline2D): advance one sweep with an optional injection hook,
// expose the current state and the counters. Code that compares protection
// methods (the campaign drivers, the CLIs) programs against this interface
// and swaps implementations freely.
type Protector2D[T num.Float] interface {
	Step(hook stencil.InjectFunc[T])
	Run(count int)
	Grid() *grid.Grid[T]
	Iter() int
	Stats() Stats
}

// Protector3D is the 3-D analogue.
type Protector3D[T num.Float] interface {
	Step(hook stencil.InjectFunc[T])
	Run(count int)
	Grid() *grid.Grid3D[T]
	Iter() int
	Stats() Stats
}

// Finalizer is implemented by protectors with end-of-run obligations (the
// offline ones verify any partial period). Callers should type-assert and
// invoke it after the last Step.
type Finalizer interface {
	Finalize()
}

// Compile-time interface conformance checks.
var (
	_ Protector2D[float32] = (*None2D[float32])(nil)
	_ Protector2D[float32] = (*Online2D[float32])(nil)
	_ Protector2D[float32] = (*Offline2D[float32])(nil)
	_ Protector2D[float64] = (*None2D[float64])(nil)
	_ Protector2D[float64] = (*Online2D[float64])(nil)
	_ Protector2D[float64] = (*Offline2D[float64])(nil)
	_ Protector3D[float32] = (*None3D[float32])(nil)
	_ Protector3D[float32] = (*Online3D[float32])(nil)
	_ Protector3D[float32] = (*Offline3D[float32])(nil)
	_ Finalizer            = (*Offline2D[float32])(nil)
	_ Finalizer            = (*Offline3D[float64])(nil)
)

// New2D constructs a protector by mode name ("none", "online", "offline"),
// the dynamic entry point the CLIs use.
func New2D[T num.Float](mode string, op *stencil.Op2D[T], init *grid.Grid[T], opt Options[T]) (Protector2D[T], error) {
	switch mode {
	case "none":
		return NewNone2D(op, init, opt)
	case "online":
		return NewOnline2D(op, init, opt)
	case "offline":
		return NewOffline2D(op, init, opt)
	default:
		return nil, errUnknownMode(mode)
	}
}

// New3D constructs a 3-D protector by mode name.
func New3D[T num.Float](mode string, op *stencil.Op3D[T], init *grid.Grid3D[T], opt Options[T]) (Protector3D[T], error) {
	switch mode {
	case "none":
		return NewNone3D(op, init, opt)
	case "online":
		return NewOnline3D(op, init, opt)
	case "offline":
		return NewOffline3D(op, init, opt)
	default:
		return nil, errUnknownMode(mode)
	}
}

type errUnknownMode string

func (e errUnknownMode) Error() string {
	return "core: unknown protection mode " + string(e) + " (want none|online|offline)"
}
