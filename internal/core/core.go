// Package core assembles the paper's ABFT method into runnable protectors:
//
//   - Online2D / Online3D — Section 3: fused checksum every sweep,
//     interpolation + comparison every iteration, on-the-fly localisation
//     and algebraic correction.
//   - Offline2D / Offline3D — Section 4: fused checksum every sweep,
//     Δ-step interpolation chain verified every Δ iterations, in-memory
//     checkpoint/rollback recovery.
//   - None2D / None3D — the unprotected baseline every experiment
//     compares against.
//
// The 3-D protectors apply the 2-D scheme per z-layer with exact
// cross-layer checksum coupling, layers partitioned over a worker pool —
// the paper's "intrinsically parallel" property (each worker owns its
// layer's checksum vectors; iterations are separated by a single barrier).
package core

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/num"
	"stencilabft/internal/stats"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Options configure a protector. The zero value is usable: paper-default
// detection threshold, residual pairing, sequential execution, Δ=16.
type Options[T num.Float] struct {
	// Detector's Epsilon defaults to the paper's 1e-5 when zero.
	Detector checksum.Detector[T]
	// PairPolicy selects multi-error pairing (default PairByResidual).
	PairPolicy checksum.PairPolicy
	// Pool partitions parallel work; nil runs sequentially. The pool's
	// persistent workers are spawned on first use and live for the pool's
	// lifetime, so a protected Run(iters) pays the spawn cost once, not
	// once per sweep; one pool may be shared by several protectors.
	Pool *stencil.Pool
	// Period is the offline detection/checkpoint period Δ (default 16,
	// the paper's Table 1 value). Ignored by online protectors.
	Period int
	// DropBoundaryTerms reproduces the paper's simplified listings
	// (ablation A1); leave false for exact interpolation.
	DropBoundaryTerms bool
	// PaperExactCorrection uses the paper's literal Equation (10)
	// evaluation, which loses accuracy for overflow-scale corruption
	// (Section 5.3); the default is the numerically stable equivalent.
	PaperExactCorrection bool
	// Recovery selects the offline repair strategy: FullRollback
	// (default, the paper's scheme) or ConeRecovery (recompute only the
	// error's light cone; falls back to a full rollback when the cone
	// cannot be bounded). Offline2D only: the online protectors repair
	// algebraically and Offline3D always uses the full rollback.
	Recovery RecoveryMode
	// Inject schedules fault injection: Step and Run consult it each
	// iteration for the hook to apply during the sweep. Nil runs clean.
	// fault.NewInjector adapts a fault.Plan to this seam.
	Inject stencil.InjectSource[T]
	// Telemetry, when non-nil, attributes the protector's wall-clock to
	// phases (sweep, verify, repair) — a local protector is a single rank,
	// so it records through one Recorder (telemetry.Collector.Recorder(0)
	// by convention). Nil disables timing: the step then pays only nil
	// checks, no clock reads, no allocations.
	Telemetry *telemetry.Recorder
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (o Options[T]) withDefaults() Options[T] {
	if o.Detector.Epsilon == 0 {
		o.Detector = checksum.NewDetector[T]()
	}
	if o.Detector.AbsFloor == 0 {
		o.Detector.AbsFloor = 1
	}
	if o.Period <= 0 {
		o.Period = 16
	}
	return o
}

// Stats aggregates what a protector observed over a run — the unified
// counter model shared with the blocks and dist deployments.
type Stats = stats.Stats
