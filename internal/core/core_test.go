package core

import (
	"math/rand"
	"testing"

	"stencilabft/internal/checksum"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// testOp returns a HotSpot-like diffusive five-point operator under Clamp
// boundaries with a small constant heat source field.
func testOp(nx, ny int) *stencil.Op2D[float64] {
	c := grid.New[float64](nx, ny)
	c.FillFunc(func(x, y int) float64 {
		if x == nx/2 && y == ny/2 {
			return 0.5 // localized heat source
		}
		return 0.01
	})
	return &stencil.Op2D[float64]{
		St: stencil.Laplace5(0.2),
		BC: grid.Clamp,
		C:  c,
	}
}

// opts64 returns protector options with a detection threshold suited to
// float64 state: the paper's 1e-5 targets float32, whose round-off floor is
// nine orders of magnitude higher than float64's.
func opts64() Options[float64] {
	return Options[float64]{Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}}
}

func testInit(rng *rand.Rand, nx, ny int) *grid.Grid[float64] {
	g := grid.New[float64](nx, ny)
	g.FillFunc(func(x, y int) float64 { return 300 + 10*rng.Float64() })
	return g
}

// referenceRun advances init by iters unprotected sweeps and returns the
// final state — the ground truth protected runs are compared against.
func referenceRun(op *stencil.Op2D[float64], init *grid.Grid[float64], iters int) *grid.Grid[float64] {
	p, err := NewNone2D(op, init, opts64())
	if err != nil {
		panic(err)
	}
	p.Run(iters)
	return p.Grid()
}

func TestOnline2DErrorFreeMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	want := referenceRun(op, init, 50)

	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	p.Run(50)
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("online error-free run diverged from baseline by %g", d)
	}
	st := p.Stats()
	if st.Detections != 0 {
		t.Fatalf("false positives: %+v", st)
	}
	if st.Verifications != 50 {
		t.Fatalf("expected 50 verifications, got %d", st.Verifications)
	}
}

func TestOnline2DDetectsAndCorrects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 60
	want := referenceRun(op, init, iters)

	for trial := 0; trial < 40; trial++ {
		inj := fault.RandomSingle(rng, iters, nx, ny, 1, 64)
		// Skip fraction bits too low to clear the detection
		// threshold; those are covered by TestOnlineBelowThreshold.
		if inj.Bit < 30 {
			inj.Bit = 30 + rng.Intn(34)
		}
		p, err := NewOnline2D(op, init, opts64())
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		if len(injector.Hits()) != 1 {
			t.Fatalf("trial %d: injection %v did not land", trial, inj)
		}
		st := p.Stats()
		if st.Detections == 0 {
			t.Fatalf("trial %d: injection %v not detected (stats %v)", trial, inj, st)
		}
		if st.CorrectedPoints == 0 {
			t.Fatalf("trial %d: injection %v detected but not corrected (stats %v)", trial, inj, st)
		}
		// The online correction leaves at most a small residual
		// (paper Section 5.2: "typically lead to a small
		// approximation error").
		if d := p.Grid().MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("trial %d: residual error %g after correction of %v", trial, d, inj)
		}
	}
}

func TestOnline2DBelowThresholdHarmless(t *testing.T) {
	// A flip of fraction bit 0 changes the value by ~1 ULP; it must not
	// crash the protector, and whether or not it is detected the final
	// error must stay tiny (paper Figure 10: bits 0-12 cause errors too
	// small to detect — and too small to matter).
	rng := rand.New(rand.NewSource(3))
	nx, ny := 16, 16
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 40
	want := referenceRun(op, init, iters)

	inj := fault.Injection{Iteration: 10, X: 5, Y: 6, Bit: 0}
	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](fault.NewPlan(inj))
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	if d := p.Grid().MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("1-ULP flip propagated to %g", d)
	}
}

func TestOffline2DErrorFreeMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	want := referenceRun(op, init, 50)

	p, err := func() (*Offline2D[float64], error) { o := opts64(); o.Period = 8; return NewOffline2D(op, init, o) }()
	if err != nil {
		t.Fatal(err)
	}
	p.Run(50)
	p.Finalize()
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("offline error-free run diverged from baseline by %g", d)
	}
	st := p.Stats()
	if st.Detections != 0 || st.Rollbacks != 0 {
		t.Fatalf("false positives: %+v", st)
	}
	// 50 iterations at Δ=8: 6 periodic checks + 1 final partial check.
	if st.Verifications != 7 {
		t.Fatalf("expected 7 verifications, got %d", st.Verifications)
	}
	if st.Checkpoint.Saves != 8 { // initial + 7 clean verifications
		t.Fatalf("expected 8 checkpoint saves, got %d", st.Checkpoint.Saves)
	}
}

func TestOffline2DDetectsAndErasesError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 64
	want := referenceRun(op, init, iters)

	for trial := 0; trial < 25; trial++ {
		inj := fault.RandomSingle(rng, iters, nx, ny, 1, 64)
		if inj.Bit < 30 {
			inj.Bit = 30 + rng.Intn(34)
		}
		p, err := func() (*Offline2D[float64], error) { o := opts64(); o.Period = 16; return NewOffline2D(op, init, o) }()
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		p.Finalize()
		st := p.Stats()
		if st.Detections == 0 {
			t.Fatalf("trial %d: injection %v not detected (stats %v)", trial, inj, st)
		}
		if st.Rollbacks == 0 || st.RecomputedIters == 0 {
			t.Fatalf("trial %d: no rollback recovery (stats %v)", trial, inj)
		}
		// Offline recovery recomputes from a clean checkpoint, so the
		// error is fully erased (paper Figure 10c).
		if d := p.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: residual error %g after rollback of %v", trial, d, inj)
		}
	}
}

func TestOnline2DTwoErrorsSameIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 30
	want := referenceRun(op, init, iters)

	// Two flips in the same iteration, distinct rows and columns: the
	// residual-pairing policy must pair them correctly.
	plan := fault.NewPlan(
		fault.Injection{Iteration: 12, X: 3, Y: 4, Bit: 58},
		fault.Injection{Iteration: 12, X: 15, Y: 11, Bit: 56},
	)
	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	if len(injector.Hits()) != 2 {
		t.Fatalf("wanted 2 hits, got %d", len(injector.Hits()))
	}
	st := p.Stats()
	if st.CorrectedPoints != 2 {
		t.Fatalf("wanted 2 corrected points, got %+v", st)
	}
	if d := p.Grid().MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("residual error %g after double correction", d)
	}
}

func TestParallelMatchesSequential2D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nx, ny := 33, 29
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)

	seq, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	par, err := func() (*Online2D[float64], error) {
		o := opts64()
		o.Pool = &stencil.Pool{Workers: 7}
		return NewOnline2D(op, init, o)
	}()
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(40)
	par.Run(40)
	if d := seq.Grid().MaxAbsDiff(par.Grid()); d != 0 {
		t.Fatalf("parallel online diverged from sequential by %g", d)
	}
	if par.Stats().Detections != 0 {
		t.Fatalf("parallel run raised false positives: %+v", par.Stats())
	}
}

func TestOnline3DDetectsAndCorrects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nx, ny, nz := 16, 14, 6
	st3 := stencil.SevenPoint3D(0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10)
	op := &stencil.Op3D[float64]{St: st3, BC: grid.Clamp}
	init := grid.New3D[float64](nx, ny, nz)
	init.FillFunc(func(x, y, z int) float64 { return 300 + 15*rng.Float64() })
	const iters = 40

	ref, err := NewNone3D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	for trial := 0; trial < 15; trial++ {
		inj := fault.RandomSingle(rng, iters, nx, ny, nz, 64)
		if inj.Bit < 30 {
			inj.Bit = 30 + rng.Intn(34)
		}
		p, err := func() (*Online3D[float64], error) {
			o := opts64()
			o.Pool = &stencil.Pool{Workers: 3}
			return NewOnline3D(op, init, o)
		}()
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		if len(injector.Hits()) != 1 {
			t.Fatalf("trial %d: injection %v did not land", trial, inj)
		}
		st := p.Stats()
		if st.Detections == 0 || st.CorrectedPoints == 0 {
			t.Fatalf("trial %d: injection %v not handled (stats %v)", trial, inj, st)
		}
		if d := p.Grid3D().MaxAbsDiff(ref.Grid3D()); d > 1e-6 {
			t.Fatalf("trial %d: residual error %g after 3-D correction of %v", trial, d, inj)
		}
	}
}

func TestOffline3DDetectsAndErases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nx, ny, nz := 16, 14, 4
	st3 := stencil.SevenPoint3D(0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10)
	op := &stencil.Op3D[float64]{St: st3, BC: grid.Clamp}
	init := grid.New3D[float64](nx, ny, nz)
	init.FillFunc(func(x, y, z int) float64 { return 300 + 15*rng.Float64() })
	const iters = 48

	ref, err := NewNone3D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	for trial := 0; trial < 10; trial++ {
		inj := fault.RandomSingle(rng, iters, nx, ny, nz, 64)
		if inj.Bit < 30 {
			inj.Bit = 30 + rng.Intn(34)
		}
		p, err := func() (*Offline3D[float64], error) { o := opts64(); o.Period = 16; return NewOffline3D(op, init, o) }()
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		p.Finalize()
		st := p.Stats()
		if st.Detections == 0 || st.Rollbacks == 0 {
			t.Fatalf("trial %d: injection %v not handled (stats %v)", trial, inj, st)
		}
		if d := p.Grid3D().MaxAbsDiff(ref.Grid3D()); d != 0 {
			t.Fatalf("trial %d: residual error %g after 3-D rollback of %v", trial, d, inj)
		}
	}
}

// TestOnlineFloat32 runs the paper's element type end to end: float32 state
// with the paper's epsilon of 1e-5.
func TestOnlineFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	nx, ny := 32, 32
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	init := grid.New[float32](nx, ny)
	init.FillFunc(func(x, y int) float32 { return 300 + 10*rng.Float32() })
	const iters = 50

	ref, err := NewNone2D(op, init, Options[float32]{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	inj := fault.Injection{Iteration: 20, X: 9, Y: 17, Bit: 30} // high exponent bit
	p, err := NewOnline2D(op, init, Options[float32]{})
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float32](fault.NewPlan(inj))
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	st := p.Stats()
	if st.Detections == 0 || st.CorrectedPoints == 0 {
		t.Fatalf("float32 injection not handled: %+v", st)
	}
	if d := p.Grid().MaxAbsDiff(ref.Grid()); d > 1e-2 {
		t.Fatalf("float32 residual error %g", d)
	}
}

func TestStatsStringNonEmpty(t *testing.T) {
	s := Stats{Iterations: 3, Verifications: 2}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestNum64Widths(t *testing.T) {
	if num.BitWidth[float32]() != 32 || num.BitWidth[float64]() != 64 {
		t.Fatal("bit widths wrong")
	}
}
