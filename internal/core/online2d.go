package core

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Online2D protects a 2-D stencil run with the paper's online ABFT scheme
// (Section 3). Per iteration it pays one fused checksum accumulation and
// one O(ny·k·(1+r)) interpolation; the O(nx·ny) row-checksum pass and the
// correction machinery run only after a detection.
type Online2D[T num.Float] struct {
	op   *stencil.Op2D[T]
	buf  *grid.Buffer[T]
	ip   *checksum.Interp2D[T]
	det  checksum.Detector[T]
	pool *stencil.Pool
	pol  checksum.PairPolicy
	inj  stencil.InjectSource[T]

	prevB   []T // verified column checksums of iteration t
	newB    []T // fused column checksums of iteration t+1
	interpB []T // interpolated column checksums of iteration t+1

	// edgeRead/edgeWrite are the live-edge views of the two buffer halves,
	// boxed once at construction (boxing a BoundedGrid into the EdgeSource
	// interface allocates) and swapped alongside the buffer so the hot
	// path stays allocation-free. edgeRead always views buf.Read.
	edgeRead, edgeWrite checksum.EdgeSource[T]

	// scratch for the detection/correction slow path
	prevA, newA, interpA []T

	corr  checksum.Corrector[T]
	iter  int
	stats Stats
	tel   *telemetry.Recorder // nil when telemetry is disabled
}

// NewOnline2D builds an online protector for op, starting from the initial
// domain state init (copied; the caller's grid is not retained). The
// initial data and checksums are assumed correct, per Theorem 2.
func NewOnline2D[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], opt Options[T]) (*Online2D[T], error) {
	opt = opt.withDefaults()
	nx, ny := init.Nx(), init.Ny()
	ip, err := checksum.NewInterp2D(op, nx, ny)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms
	p := &Online2D[T]{
		op:      op,
		buf:     grid.BufferFrom(init),
		ip:      ip,
		det:     opt.Detector,
		pool:    opt.Pool,
		pol:     opt.PairPolicy,
		inj:     opt.Inject,
		prevB:   make([]T, ny),
		newB:    make([]T, ny),
		interpB: make([]T, ny),
		prevA:   make([]T, nx),
		newA:    make([]T, nx),
		interpA: make([]T, nx),
		corr:    checksum.Corrector[T]{PaperExact: opt.PaperExactCorrection},
		tel:     opt.Telemetry,
	}
	p.edgeRead = checksum.LiveEdges(p.buf.Read, op.BC, op.BCValue)
	p.edgeWrite = checksum.LiveEdges(p.buf.Write, op.BC, op.BCValue)
	stencil.ChecksumB(p.buf.Read, p.prevB)
	return p, nil
}

// Grid returns the current domain state (iteration Iter()).
func (p *Online2D[T]) Grid() *grid.Grid[T] { return p.buf.Read }

// Iter returns the number of completed sweeps.
func (p *Online2D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters.
func (p *Online2D[T]) Stats() Stats { return p.stats }

// Grid3D returns nil: Online2D protects a 2-D domain.
func (p *Online2D[T]) Grid3D() *grid.Grid3D[T] { return nil }

// Finalize is a no-op: the online scheme verifies every sweep, so nothing
// is ever pending at the end of a run.
func (p *Online2D[T]) Finalize() {}

// Step advances the domain by one sweep, verifying and (when needed)
// correcting afterwards, applying the configured injection source.
func (p *Online2D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject is Step with an explicit per-call injection hook, applied
// during the sweep when non-nil.
func (p *Online2D[T]) StepInject(hook stencil.InjectFunc[T]) {
	src, dst := p.buf.Read, p.buf.Write
	p.tel.SetIter(p.iter)
	t0 := p.tel.Begin()
	if p.pool != nil {
		p.op.SweepParallelHook(p.pool, dst, src, p.newB, hook)
	} else {
		p.op.SweepRange(dst, src, 0, src.Ny(), p.newB, hook)
	}
	p.tel.End(telemetry.PhaseSweep, t0)

	t0 = p.tel.Begin()
	edges := p.edgeRead
	p.ip.InterpolateB(p.prevB, edges, p.interpB)
	p.stats.Verifications++

	mismatch := p.det.AnyMismatch(p.newB, p.interpB)
	p.tel.End(telemetry.PhaseVerify, t0)
	if mismatch {
		p.stats.Detections++
		t0 = p.tel.Begin()
		p.locateAndCorrect(src, dst, edges)
		p.tel.End(telemetry.PhaseRepair, t0)
	}

	p.prevB, p.newB = p.newB, p.prevB
	p.buf.Swap()
	p.edgeRead, p.edgeWrite = p.edgeWrite, p.edgeRead
	p.iter++
	p.stats.Iterations++
}

// Run advances count iterations, applying the configured injection source.
func (p *Online2D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// locateAndCorrect is the detection slow path: compute the row-checksum
// pair lazily (the t-buffer still holds iteration t, so the previous row
// checksum is recomputable on demand — the property that lets the fast
// path maintain only one vector), intersect the mismatch lists and apply
// Equation (10).
func (p *Online2D[T]) locateAndCorrect(src, dst *grid.Grid[T], edges checksum.EdgeSource[T]) {
	stencil.ChecksumA(src, p.prevA)
	p.ip.InterpolateA(p.prevA, edges, p.interpA)
	stencil.ChecksumA(dst, p.newA)

	bm := p.det.Compare(p.newB, p.interpB)
	am := p.det.Compare(p.newA, p.interpA)
	if len(am) == 0 || len(bm) == 0 {
		// Mismatch in one vector only: the corruption sits in a
		// checksum, not the domain (paper Figure 5, scenario 2).
		// The domain is trusted; refresh the column checksums from it.
		p.stats.ChecksumRepairs++
		stencil.ChecksumB(dst, p.newB)
		return
	}
	direct := &checksum.Vectors[T]{A: p.newA, B: p.newB}
	locs := p.corr.CorrectAll(dst, am, bm, p.pol, direct, p.interpA, p.interpB)
	p.stats.CorrectedPoints += len(locs)
}
