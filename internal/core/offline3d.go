package core

import (
	"stencilabft/internal/checkpoint"
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Offline3D applies the offline scheme to a 3-D domain: per-layer fused
// checksums every sweep, per-layer Δ-step interpolation chains verified
// every Δ iterations, and whole-domain checkpoint/rollback recovery. The
// chain for layer z reads neighbouring layers' chain values of the same
// step, so all layers advance the chain in lockstep.
type Offline3D[T num.Float] struct {
	op     *stencil.Op3D[T]
	buf    *grid.Buffer3D[T]
	ip     *checksum.Interp3D[T]
	det    checksum.Detector[T]
	pool   *stencil.Pool
	period int
	inj    stencil.InjectSource[T]

	curB     [][]T // fused per-layer checksums of the current iteration
	verified [][]T // per-layer checksums at the last verified iteration
	chain    [][]T // interpolation chain state, per layer
	chainNxt [][]T

	ring  [][]*checksum.EdgeSnapshot[T] // [step][layer] edge strips
	edges []checksum.EdgeSource[T]      // scratch: per-layer sources for one step
	store checkpoint.Store3D[T]

	iter     int
	lastSafe int
	stats    Stats
	tel      *telemetry.Recorder // nil when telemetry is disabled
}

// NewOffline3D builds an offline protector for op with detection period
// opt.Period, starting from init (copied). The initial state is
// checkpointed immediately.
func NewOffline3D[T num.Float](op *stencil.Op3D[T], init *grid.Grid3D[T], opt Options[T]) (*Offline3D[T], error) {
	opt = opt.withDefaults()
	nx, ny, nz := init.Nx(), init.Ny(), init.Nz()
	ip, err := checksum.NewInterp3D(op, nx, ny, nz)
	if err != nil {
		return nil, err
	}
	ip.DropBoundaryTerms = opt.DropBoundaryTerms
	p := &Offline3D[T]{
		op:       op,
		buf:      grid.Buffer3DFrom(init),
		ip:       ip,
		det:      opt.Detector,
		pool:     opt.Pool,
		period:   opt.Period,
		inj:      opt.Inject,
		curB:     makeLayers[T](nz, ny),
		verified: makeLayers[T](nz, ny),
		chain:    makeLayers[T](nz, ny),
		chainNxt: makeLayers[T](nz, ny),
		ring:     make([][]*checksum.EdgeSnapshot[T], opt.Period),
		edges:    make([]checksum.EdgeSource[T], nz),
		tel:      opt.Telemetry,
	}
	r := ip.EdgeRadius()
	for s := range p.ring {
		p.ring[s] = make([]*checksum.EdgeSnapshot[T], nz)
		for z := 0; z < nz; z++ {
			p.ring[s][z] = checksum.NewEdgeSnapshot[T](nx, ny, r, op.BC, op.BCValue)
		}
	}
	for z := 0; z < nz; z++ {
		stencil.ChecksumB(p.buf.Read.Layer(z), p.curB[z])
		copy(p.verified[z], p.curB[z])
	}
	p.store.Save(0, p.buf.Read, p.curB)
	return p, nil
}

// Grid3D returns the current domain state.
func (p *Offline3D[T]) Grid3D() *grid.Grid3D[T] { return p.buf.Read }

// Grid returns nil: Offline3D protects a 3-D domain; use Grid3D.
func (p *Offline3D[T]) Grid() *grid.Grid[T] { return nil }

// Iter returns the number of completed sweeps.
func (p *Offline3D[T]) Iter() int { return p.iter }

// Stats returns the accumulated counters.
func (p *Offline3D[T]) Stats() Stats {
	s := p.stats
	s.Checkpoint = p.store.Stats()
	return s
}

// Step advances one sweep applying the configured injection source,
// verifying (and recovering) when the detection period elapses.
func (p *Offline3D[T]) Step() { p.StepInject(stencil.HookAt(p.inj, p.iter)) }

// StepInject is Step with an explicit per-call injection hook.
func (p *Offline3D[T]) StepInject(hook stencil.InjectFunc[T]) {
	p.sweep(hook)
	if p.iter-p.lastSafe >= p.period {
		p.verify(p.iter - p.lastSafe)
	}
}

// Run advances count iterations, applying the configured injection source.
func (p *Offline3D[T]) Run(count int) {
	for i := 0; i < count; i++ {
		p.Step()
	}
}

// Finalize verifies any iterations still pending since the last periodic
// check. Call it once after the last Step.
func (p *Offline3D[T]) Finalize() {
	if n := p.iter - p.lastSafe; n > 0 {
		p.verify(n)
	}
}

func (p *Offline3D[T]) sweep(hook stencil.InjectFunc[T]) {
	src, dst := p.buf.Read, p.buf.Write
	nz := src.Nz()
	step := (p.iter - p.lastSafe) % p.period
	p.tel.SetIter(p.iter)
	t0 := p.tel.Begin()
	capture := func(z int) { p.ring[step][z].Capture(src.Layer(z)) }
	if p.pool != nil {
		p.pool.ForEach(nz, capture)
		p.op.SweepParallelHook(p.pool, dst, src, p.curB, hook)
	} else {
		for z := 0; z < nz; z++ {
			capture(z)
			p.op.SweepLayer(dst, src, z, p.curB[z], hook)
		}
	}
	p.tel.End(telemetry.PhaseSweep, t0)
	p.buf.Swap()
	p.iter++
	p.stats.Iterations++
}

// verify advances the per-layer interpolation chains `steps` iterations
// from the last verified checksums and compares them with the current
// fused checksums; on mismatch it rolls back to the last checkpoint and
// recomputes the segment.
func (p *Offline3D[T]) verify(steps int) {
	p.stats.Verifications++
	t0 := p.tel.Begin()
	nz := p.buf.Read.Nz()
	for z := 0; z < nz; z++ {
		copy(p.chain[z], p.verified[z])
	}
	for s := 0; s < steps; s++ {
		for z := 0; z < nz; z++ {
			p.edges[z] = p.ring[s][z]
		}
		interp := func(z int) { p.ip.InterpolateB(z, p.chain, p.edges, p.chainNxt[z]) }
		if p.pool != nil {
			p.pool.ForEach(nz, interp)
		} else {
			for z := 0; z < nz; z++ {
				interp(z)
			}
		}
		p.chain, p.chainNxt = p.chainNxt, p.chain
	}
	dirty := false
	for z := 0; z < nz; z++ {
		if p.det.AnyMismatch(p.curB[z], p.chain[z]) {
			dirty = true
			break
		}
	}
	p.tel.End(telemetry.PhaseVerify, t0)
	if !dirty {
		for z := 0; z < nz; z++ {
			copy(p.verified[z], p.curB[z])
		}
		p.lastSafe = p.iter
		p.store.Save(p.iter, p.buf.Read, p.curB)
		return
	}
	p.stats.Detections++
	p.stats.Rollbacks++
	target := p.iter
	// Recomputed sweeps and the re-verification attribute themselves;
	// only the checkpoint restore is charged to Repair.
	t0 = p.tel.Begin()
	p.store.Restore(p.buf.Read, p.curB)
	p.tel.End(telemetry.PhaseRepair, t0)
	for z := 0; z < nz; z++ {
		copy(p.verified[z], p.curB[z])
	}
	p.iter = p.lastSafe
	for p.iter < target {
		p.sweep(nil)
		p.stats.RecomputedIters++
	}
	p.verify(target - p.lastSafe)
}
