package core

import (
	"stencilabft/internal/checksum"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Calibration reports the floating-point noise floor observed between
// directly computed and interpolated checksums on an error-free run — the
// quantity the detection threshold epsilon must clear to avoid false
// positives (paper Section 3.4: the threshold "depends on the domain,
// chunk, or block size"; Section 5.1 chose 1e-5 for float32 tiles up to
// 512x512 by exactly this kind of measurement).
type Calibration[T num.Float] struct {
	// MaxRelErr is the largest relative checksum deviation observed on
	// any iteration.
	MaxRelErr T
	// SuggestedEpsilon is MaxRelErr with a 16x safety margin, clamped
	// below by one machine epsilon.
	SuggestedEpsilon T
	// Iterations actually measured.
	Iterations int
}

// CalibrateEpsilon runs iters error-free sweeps of op from init, measuring
// the relative deviation between interpolated and direct column checksums
// each iteration, and returns the observed floor with a suggested
// threshold. The run is a measurement only; the caller's grid is not
// modified.
func CalibrateEpsilon[T num.Float](op *stencil.Op2D[T], init *grid.Grid[T], iters int) (Calibration[T], error) {
	nx, ny := init.Nx(), init.Ny()
	ip, err := checksum.NewInterp2D(op, nx, ny)
	if err != nil {
		return Calibration[T]{}, err
	}
	buf := grid.BufferFrom(init)
	prevB := make([]T, ny)
	newB := make([]T, ny)
	interpB := make([]T, ny)
	stencil.ChecksumB(buf.Read, prevB)

	det := checksum.Detector[T]{AbsFloor: 1}
	var cal Calibration[T]
	for i := 0; i < iters; i++ {
		op.SweepFused(buf.Write, buf.Read, newB)
		ip.InterpolateB(prevB, checksum.LiveEdges(buf.Read, op.BC, op.BCValue), interpB)
		if e := det.MaxRelErr(newB, interpB); e > cal.MaxRelErr {
			cal.MaxRelErr = e
		}
		prevB, newB = newB, prevB
		buf.Swap()
		cal.Iterations++
	}
	cal.SuggestedEpsilon = num.Max(cal.MaxRelErr*16, num.EpsilonFor[T]())
	return cal, nil
}
