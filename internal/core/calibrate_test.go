package core

import (
	"math/rand"
	"testing"

	"stencilabft/internal/checksum"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

func TestCalibrateEpsilonFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	nx, ny := 64, 64
	opF := testOpF32(nx, ny)
	init := testInitF32(rng, nx, ny)

	cal, err := CalibrateEpsilon(opF, init, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Iterations != 32 {
		t.Fatalf("iterations %d", cal.Iterations)
	}
	if cal.MaxRelErr <= 0 {
		t.Fatal("float32 noise floor should be positive")
	}
	// The paper's threshold must comfortably clear the measured floor at
	// this tile size.
	if cal.SuggestedEpsilon > 1e-5 {
		t.Fatalf("suggested epsilon %g exceeds the paper's 1e-5 at 64x64", cal.SuggestedEpsilon)
	}
	if cal.SuggestedEpsilon < cal.MaxRelErr {
		t.Fatal("suggestion below the observed floor")
	}

	// Acid test: a protector configured with the suggestion raises no
	// false positives and still catches a real corruption.
	p, err := NewOnline2D(opF, init, Options[float32]{
		Detector: checksum.Detector[float32]{Epsilon: cal.SuggestedEpsilon, AbsFloor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(32)
	if p.Stats().Detections != 0 {
		t.Fatalf("false positives at suggested epsilon: %+v", p.Stats())
	}
	inj := fault.Injection{Iteration: 2, X: 20, Y: 30, Bit: 30}
	injector := fault.NewInjector[float32](fault.NewPlan(inj))
	for i := 0; i < 8; i++ {
		p.StepInject(injector.HookFor(i))
	}
	if p.Stats().Detections == 0 {
		t.Fatalf("suggested epsilon too loose to catch an exponent flip: %+v", p.Stats())
	}
}

func TestCalibrateFloat64FloorBelowFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nx, ny := 48, 48

	op64 := testOp(nx, ny)
	init64 := testInit(rng, nx, ny)
	cal64, err := CalibrateEpsilon(op64, init64, 16)
	if err != nil {
		t.Fatal(err)
	}

	opF := testOpF32(nx, ny)
	initF := testInitF32(rng, nx, ny)
	calF, err := CalibrateEpsilon(opF, initF, 16)
	if err != nil {
		t.Fatal(err)
	}
	if float64(cal64.MaxRelErr) >= float64(calF.MaxRelErr) {
		t.Fatalf("float64 floor %g not below float32 floor %g", cal64.MaxRelErr, calF.MaxRelErr)
	}
}

// testOpF32/testInitF32 mirror the float64 helpers for the paper's element
// type.
func testOpF32(nx, ny int) *stencil.Op2D[float32] {
	op64 := testOp(nx, ny)
	c32 := grid.New[float32](nx, ny)
	c32.FillFunc(func(x, y int) float32 { return float32(op64.C.At(x, y)) })
	return &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: op64.BC, C: c32}
}

func testInitF32(rng *rand.Rand, nx, ny int) *grid.Grid[float32] {
	g := grid.New[float32](nx, ny)
	g.FillFunc(func(x, y int) float32 { return 300 + 10*rng.Float32() })
	return g
}

var _ = num.BitWidth[float32]
