package core

import (
	"math/rand"
	"testing"

	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/stencil"
)

// coneOpts configures an offline protector with cone recovery at a short
// period on a domain large enough that the cone stays interior.
func coneOpts(period int) Options[float64] {
	o := opts64()
	o.Period = period
	o.Recovery = ConeRecovery
	return o
}

func TestConeRecoveryRepairsInteriorError(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	nx, ny := 64, 64
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 48
	want := referenceRun(op, init, iters)

	// Interior injection: the cone (radius 1 * period 8, plus padding)
	// stays far from the edge strips.
	inj := fault.Injection{Iteration: 20, X: 32, Y: 30, Bit: 58}
	p, err := NewOffline2D(op, init, coneOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](fault.NewPlan(inj))
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections != 1 {
		t.Fatalf("detections = %d, want 1 (%+v)", st.Detections, st)
	}
	if st.ConeRecoveries != 1 {
		t.Fatalf("cone recoveries = %d, want 1 (%+v)", st.ConeRecoveries, st)
	}
	if st.Rollbacks != 0 {
		t.Fatalf("full rollback happened despite cone mode (%+v)", st)
	}
	// Cone recomputation must be cheaper than a full segment recompute.
	if full := 8 * nx * ny; st.ConePointsSwept >= full {
		t.Fatalf("cone swept %d points, full recompute is %d", st.ConePointsSwept, full)
	}
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("cone recovery left residual %g", d)
	}
}

func TestConeRecoveryFallsBackNearEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nx, ny := 48, 48
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 32
	want := referenceRun(op, init, iters)

	// Corruption on the domain edge: the cone pollutes the edge strips,
	// so the protector must fall back to a full rollback — and still
	// erase the error exactly.
	inj := fault.Injection{Iteration: 10, X: 0, Y: 5, Bit: 58}
	p, err := NewOffline2D(op, init, coneOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](fault.NewPlan(inj))
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections == 0 || st.Rollbacks == 0 {
		t.Fatalf("edge error not handled by fallback (%+v)", st)
	}
	if st.ConeRecoveries != 0 {
		t.Fatalf("cone recovery claimed an edge error (%+v)", st)
	}
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("fallback left residual %g", d)
	}
}

func TestConeRecoveryRandomCampaign(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	nx, ny := 56, 56
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 64
	want := referenceRun(op, init, iters)

	for trial := 0; trial < 20; trial++ {
		inj := fault.RandomSingle(rng, iters, nx, ny, 1, 64)
		if inj.Bit < 40 {
			inj.Bit = 40 + rng.Intn(24)
		}
		p, err := NewOffline2D(op, init, coneOpts(8))
		if err != nil {
			t.Fatal(err)
		}
		injector := fault.NewInjector[float64](fault.NewPlan(inj))
		for i := 0; i < iters; i++ {
			p.StepInject(injector.HookFor(i))
		}
		p.Finalize()
		st := p.Stats()
		if st.Detections == 0 {
			t.Fatalf("trial %d: %v not detected (%+v)", trial, inj, st)
		}
		if st.ConeRecoveries+st.Rollbacks == 0 {
			t.Fatalf("trial %d: no recovery action (%+v)", trial, st)
		}
		// Whether by cone or rollback, recovery must be exact.
		if d := p.Grid().MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: residual %g after %v (%+v)", trial, d, inj, st)
		}
	}
}

func TestConeRegionsShrink(t *testing.T) {
	final := rect{x0: 10, y0: 10, x1: 12, y1: 12}
	regions := coneRegions(final, 4, 1, 100, 100)
	if len(regions) != 4 {
		t.Fatalf("region count %d", len(regions))
	}
	if regions[3] != final {
		t.Fatalf("last region %+v != final %+v", regions[3], final)
	}
	for s := 1; s < len(regions); s++ {
		prev, cur := regions[s-1], regions[s]
		if cur.x0 < prev.x0 || cur.x1 > prev.x1 || cur.y0 < prev.y0 || cur.y1 > prev.y1 {
			t.Fatalf("region %d grew: %+v -> %+v", s, prev, cur)
		}
	}
	// Each step must guarantee reads within the previous region.
	for s := 1; s < len(regions); s++ {
		grown := regions[s].expand(1, 100, 100)
		prev := regions[s-1]
		if grown.x0 < prev.x0 || grown.x1 > prev.x1 || grown.y0 < prev.y0 || grown.y1 > prev.y1 {
			t.Fatalf("step %d reads outside its source region", s)
		}
	}
}

func TestConeWindowSweepMatchesGlobal(t *testing.T) {
	// Recomputing a window region must reproduce the global sweep's
	// values exactly inside the final region.
	rng := rand.New(rand.NewSource(23))
	nx, ny := 32, 32
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	src := grid.New[float64](nx, ny)
	src.FillFunc(func(x, y int) float64 { return rng.Float64() * 100 })

	const steps = 5
	final := rect{x0: 14, y0: 15, x1: 17, y1: 18}
	window := final.expand(steps, nx, ny)
	w := newConeWindow[float64](window, grid.Clamp, 0, nx, ny)
	w.load(src)
	for _, region := range coneRegions(final, steps, 1, nx, ny) {
		w.sweepRegion(op, region)
	}

	// Global reference: full sweeps.
	buf := grid.BufferFrom(src)
	for s := 0; s < steps; s++ {
		op.Sweep(buf.Write, buf.Read)
		buf.Swap()
	}
	repaired := grid.New[float64](nx, ny)
	repaired.CopyFrom(buf.Read)
	w.store(repaired, final)
	if d := repaired.MaxAbsDiff(buf.Read); d != 0 {
		t.Fatalf("cone window diverged from global sweep by %g", d)
	}
}
