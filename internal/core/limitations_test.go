package core

import (
	"math/rand"
	"testing"

	"stencilabft/internal/fault"
	"stencilabft/internal/num"
)

// The ABFT method's localisation intersects one mismatching row with one
// mismatching column, so multiple simultaneous errors sharing a row (or a
// column) are only partially locatable — an inherent property of the
// paper's scheme, not an implementation defect. These tests pin the
// library's behaviour in that corner: detection always fires, the run
// never crashes or corrupts further, and the final error stays bounded by
// the injected magnitudes (no amplification).

func TestOnline2DTwoErrorsSameRowIsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 30
	want := referenceRun(op, init, iters)

	// Two flips in the same iteration and the same ROW y=7: the column
	// checksum flags one row, the row checksum flags two columns.
	plan := fault.NewPlan(
		fault.Injection{Iteration: 12, X: 3, Y: 7, Bit: 52},
		fault.Injection{Iteration: 12, X: 15, Y: 7, Bit: 53},
	)
	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	st := p.Stats()
	if st.Detections == 0 {
		t.Fatalf("same-row double error not detected at all: %+v", st)
	}
	// Bit 52 flips the lowest exponent bit: the corrupted values change
	// by a factor of ~2, i.e. |delta| is on the order of the state
	// magnitude (~300). The partially corrected run must not amplify
	// beyond that order.
	d := p.Grid().MaxAbsDiff(want)
	if !num.IsFinite(d) || d > 1e4 {
		t.Fatalf("same-row double error amplified to %g", d)
	}
	// And the run must remain internally consistent: further error-free
	// iterations raise no new detections (checksums track the domain).
	before := p.Stats().Detections
	p.Run(10)
	if p.Stats().Detections != before {
		t.Fatalf("post-hoc detections after partial correction: %+v", p.Stats())
	}
}

func TestOffline2DTwoErrorsSameRowStillErased(t *testing.T) {
	// The offline method does not rely on localisation at all — rollback
	// recovery erases same-row double errors exactly.
	rng := rand.New(rand.NewSource(51))
	nx, ny := 24, 20
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)
	const iters = 32
	want := referenceRun(op, init, iters)

	plan := fault.NewPlan(
		fault.Injection{Iteration: 9, X: 3, Y: 7, Bit: 58},
		fault.Injection{Iteration: 9, X: 15, Y: 7, Bit: 57},
	)
	o := opts64()
	o.Period = 16
	p, err := NewOffline2D(op, init, o)
	if err != nil {
		t.Fatal(err)
	}
	injector := fault.NewInjector[float64](plan)
	for i := 0; i < iters; i++ {
		p.StepInject(injector.HookFor(i))
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections == 0 || st.Rollbacks == 0 {
		t.Fatalf("same-row double error not recovered: %+v", st)
	}
	if d := p.Grid().MaxAbsDiff(want); d != 0 {
		t.Fatalf("rollback left residual %g", d)
	}
}

// TestOnline2DCancellingErrorsEscape pins Theorem 2's caveat: two errors
// engineered to cancel in both checksums are undetectable by construction.
func TestOnline2DCancellingErrorsEscape(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	nx, ny := 16, 16
	op := testOp(nx, ny)
	init := testInit(rng, nx, ny)

	p, err := NewOnline2D(op, init, opts64())
	if err != nil {
		t.Fatal(err)
	}
	// +delta and -delta at the same row AND... cancellation in both
	// vectors needs the errors to cancel per-row and per-column, which
	// two errors can only do in the same cell; use the same-row case
	// where the column checksum cancels and only the row checksum can
	// see them.
	const delta = 50.0
	hook := func(x, y, z int, v float64) float64 {
		if y == 5 && x == 3 {
			return v + delta
		}
		if y == 5 && x == 9 {
			return v - delta
		}
		return v
	}
	p.StepInject(hook)
	// The fused column checksum of row 5 is unchanged (+delta-delta), so
	// the cheap per-iteration detector cannot fire — by design, only the
	// lazily computed row checksum could see this pattern, and it is
	// only consulted after a column-checksum hit (paper Theorem 2:
	// "...nor SDCs that cancel each other out").
	if p.Stats().Detections != 0 {
		t.Fatalf("cancelling pair unexpectedly detected: %+v", p.Stats())
	}
}
