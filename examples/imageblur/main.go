// Imageblur: iterated 3x3 box blur over a synthetic image, protected by
// the OFFLINE ABFT scheme — checksums verified every Δ iterations, and a
// detected corruption rolled back to the last in-memory checkpoint and
// recomputed, erasing the error exactly. Image processing is one of the
// stencil application classes the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math"

	abft "stencilabft"
)

const (
	width, height = 256, 256
	iterations    = 64
	period        = 8 // offline detection/checkpoint period Δ
)

// synthImage draws a test pattern: concentric rings plus a diagonal
// gradient, values in [0, 255].
func synthImage() *abft.Grid[float32] {
	img := abft.New[float32](width, height)
	img.FillFunc(func(x, y int) float32 {
		dx := float64(x - width/2)
		dy := float64(y - height/2)
		r := math.Sqrt(dx*dx + dy*dy)
		ring := 127 * (1 + math.Sin(r/6)) / 2
		grad := 64 * float64(x+y) / float64(width+height)
		return float32(ring + grad)
	})
	return img
}

func main() {
	op := &abft.Op2D[float32]{
		St: abft.BoxBlur[float32](),
		BC: abft.Mirror, // mirror edges: standard image-processing padding
	}
	img := synthImage()

	// Corrupt one pixel's sign bit mid-run: a white speck that a blur
	// would otherwise smear over a widening neighbourhood.
	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Offline,
		Op2D:   op,
		Init:   img,
		Period: period,
		Pool:   abft.NewPool(),
		Inject: abft.NewPlan(abft.Injection{Iteration: 29, X: 100, Y: 140, Bit: 31}),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the same blur with no faults and no protection.
	ref, err := abft.Build(abft.Spec[float32]{Op2D: op, Init: img})
	if err != nil {
		log.Fatal(err)
	}
	ref.Run(iterations)

	p.Run(iterations)
	p.Finalize()

	stats := p.Stats()
	var maxDiff float32
	pd, rd := p.Grid().Data(), ref.Grid().Data()
	for i := range pd {
		d := pd[i] - rd[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}

	fmt.Printf("blurred %dx%d for %d iterations (offline ABFT, Δ=%d)\n", width, height, iterations, period)
	fmt.Printf("detections: %d, rollbacks: %d, recomputed iterations: %d\n",
		stats.Detections, stats.Rollbacks, stats.RecomputedIters)
	fmt.Printf("checkpoints saved: %d, restored: %d\n", stats.Checkpoint.Saves, stats.Checkpoint.Restores)
	fmt.Printf("max pixel difference vs clean reference: %g\n", maxDiff)
	if stats.Rollbacks == 0 {
		log.Fatal("the corrupted pixel was not rolled back")
	}
	if maxDiff != 0 {
		log.Fatalf("rollback left a residual of %g; expected exact recovery", maxDiff)
	}
	fmt.Println("the corrupted pixel was detected and erased exactly by rollback")
}
